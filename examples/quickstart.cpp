// Quickstart: build an index over a tiny dataset, run a spatial keyword
// top-k query, then ask a why-not question — reproducing the paper's
// running example (Fig. 1 / Example 3).
//
//   $ ./quickstart
#include <cstdio>

#include "core/engine.h"

namespace {

using namespace wsk;

int Run() {
  // The database of Fig. 1: objects on the x-axis, distances normalized so
  // SDist matches the paper's table (a far dummy pins the diagonal at 1).
  Dataset dataset;
  Vocabulary& vocab = dataset.vocabulary();
  const TermId t1 = vocab.Intern("t1");
  const TermId t2 = vocab.Intern("t2");
  const TermId t3 = vocab.Intern("t3");
  const ObjectId o1 = dataset.Add(Point{0.8, 0.0}, KeywordSet{t1});
  const ObjectId o2 = dataset.Add(Point{0.1, 0.0}, KeywordSet{t1, t3});
  const ObjectId m = dataset.Add(Point{0.5, 0.0}, KeywordSet{t1, t2, t3});
  const ObjectId o3 = dataset.Add(Point{0.6, 0.0}, KeywordSet{t1, t2});
  dataset.Add(Point{1.1, 0.0}, {std::vector<std::string>{"faraway"}});
  (void)o1;
  (void)o2;

  // Build the disk-resident indexes (SetR-tree + KcR-tree).
  WhyNotEngine::Config config;
  config.node_capacity = 4;
  auto engine_or = WhyNotEngine::Build(&dataset, config);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<WhyNotEngine> engine = std::move(engine_or).value();

  // The initial query: top-1 around the origin for {t1, t2}.
  SpatialKeywordQuery query;
  query.loc = Point{0.0, 0.0};
  query.doc = KeywordSet{t1, t2};
  query.k = 1;
  query.alpha = 0.5;

  std::printf("initial top-%u for %s:\n", query.k,
              query.doc.ToString().c_str());
  const std::vector<ScoredObject> hits = engine->TopK(query).value();
  for (const ScoredObject& hit : hits) {
    std::printf("  object %u  score %.3f\n", hit.id, hit.score);
  }
  std::printf("rank of the expected object m (id %u): %u\n", m,
              engine->Rank(query, m).value());
  std::printf("rank of o3 (id %u): %u\n\n", o3,
              engine->Rank(query, o3).value());

  // Why is m missing? Ask each algorithm for the best refined query.
  WhyNotOptions options;
  options.lambda = 0.5;
  for (WhyNotAlgorithm algorithm :
       {WhyNotAlgorithm::kBasic, WhyNotAlgorithm::kAdvanced,
        WhyNotAlgorithm::kKcrBased}) {
    auto result_or = engine->Answer(algorithm, query, {m}, options);
    if (!result_or.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", WhyNotAlgorithmName(algorithm),
                   result_or.status().ToString().c_str());
      return 1;
    }
    const WhyNotResult& result = result_or.value();
    std::printf(
        "%-10s refined doc' = %-14s k' = %u  penalty = %.3f  "
        "(R(m,q) was %u)\n",
        WhyNotAlgorithmName(algorithm), result.refined.doc.ToString().c_str(),
        result.refined.k, result.refined.penalty, result.stats.initial_rank);
  }

  // Show the refined result: m now appears.
  const auto best =
      engine->Answer(WhyNotAlgorithm::kKcrBased, query, {m}, options).value();
  SpatialKeywordQuery refined = query;
  refined.doc = best.refined.doc;
  refined.k = best.refined.k;
  std::printf("\nrefined top-%u for %s:\n", refined.k,
              refined.doc.ToString().c_str());
  const std::vector<ScoredObject> refined_hits =
      engine->TopK(refined).value();
  for (const ScoredObject& hit : refined_hits) {
    std::printf("  object %u  score %.3f%s\n", hit.id, hit.score,
                hit.id == m ? "   <-- the missing object" : "");
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
