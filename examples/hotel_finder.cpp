// Example 1 from the paper: a conference attendee searches for the top-3
// hotels near the venue described as "clean" and "comfortable", is
// surprised that a well-known international hotel is missing, and asks a
// why-not question. The engine adapts the keywords (and, if needed, k) so
// the expected hotel enters the result with minimal change.
//
//   $ ./hotel_finder
#include <cstdio>

#include "core/engine.h"

namespace {

using namespace wsk;

struct Hotel {
  const char* name;
  Point loc;
  std::vector<std::string> keywords;
};

int Run() {
  // A downtown of hotels around the conference venue at (0.5, 0.5).
  const std::vector<Hotel> hotels = {
      {"Budget Inn", {0.50, 0.52}, {"clean", "comfortable", "cheap"}},
      {"Hostel 17", {0.49, 0.49}, {"clean", "comfortable", "shared"}},
      {"City Rooms", {0.52, 0.50}, {"clean", "comfortable", "basic"}},
      {"Grand International", {0.55, 0.55},
       {"luxury", "international", "comfortable", "pool", "conference"}},
      {"Airport Lodge", {0.90, 0.10}, {"clean", "comfortable", "shuttle"}},
      {"Sea View", {0.10, 0.90}, {"luxury", "view", "spa"}},
      {"Old Town B&B", {0.45, 0.56}, {"breakfast", "family", "quiet"}},
      {"Biz Express", {0.53, 0.47}, {"business", "wifi", "clean"}},
      {"Hilltop Suites", {0.60, 0.60}, {"luxury", "suites", "pool"}},
      {"Station Hotel", {0.40, 0.40}, {"clean", "basic", "station"}},
  };

  Dataset dataset;
  for (const Hotel& h : hotels) dataset.Add(h.loc, h.keywords);

  WhyNotEngine::Config config;
  config.node_capacity = 4;
  auto engine = WhyNotEngine::Build(&dataset, config).value();

  const Vocabulary& vocab = dataset.vocabulary();
  SpatialKeywordQuery query;
  query.loc = Point{0.5, 0.5};  // the conference venue
  query.doc = KeywordSet{vocab.Find("clean"), vocab.Find("comfortable")};
  query.k = 3;
  query.alpha = 0.5;

  std::printf("top-%u hotels near the venue for {clean, comfortable}:\n",
              query.k);
  const std::vector<ScoredObject> hits = engine->TopK(query).value();
  for (const ScoredObject& hit : hits) {
    std::printf("  %-20s score %.3f\n", hotels[hit.id].name, hit.score);
  }

  // The attendee expected the Grand International (object 3).
  const ObjectId grand = 3;
  std::printf("\nwhy is \"%s\" missing? (its rank: %u)\n", hotels[grand].name,
              engine->Rank(query, grand).value());

  WhyNotOptions options;
  options.lambda = 0.5;
  const WhyNotResult answer =
      engine->Answer(WhyNotAlgorithm::kKcrBased, query, {grand}, options)
          .value();

  std::printf("suggested refinement (penalty %.3f):\n",
              answer.refined.penalty);
  std::printf("  keywords: {");
  bool first = true;
  for (TermId t : answer.refined.doc) {
    std::printf("%s%s", first ? "" : ", ", vocab.TermString(t).c_str());
    first = false;
  }
  std::printf("}\n  k: %u (was %u)\n\n", answer.refined.k, query.k);

  SpatialKeywordQuery refined = query;
  refined.doc = answer.refined.doc;
  refined.k = answer.refined.k;
  std::printf("refined top-%u:\n", refined.k);
  const std::vector<ScoredObject> refined_hits =
      engine->TopK(refined).value();
  for (const ScoredObject& hit : refined_hits) {
    std::printf("  %-20s score %.3f%s\n", hotels[hit.id].name, hit.score,
                hit.id == grand ? "   <-- the expected hotel" : "");
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
