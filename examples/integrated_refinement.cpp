// The integrated framework sketched in the paper's conclusion: when an
// expected object is missing, compare three refinement models —
//   1. keyword adaption (this paper),
//   2. preference (alpha) adaption (the authors' ICDE'15 companion work),
//   3. query-location adaption (future work, approximate)
// — explain *why* the object missed, and report the cheapest fix.
//
//   $ ./integrated_refinement
#include <cstdio>

#include "core/alpha_refinement.h"
#include "core/explain.h"
#include "core/integrated.h"
#include "core/location_refinement.h"
#include "data/generator.h"

namespace {

using namespace wsk;

int Run() {
  GeneratorConfig config;
  config.num_objects = 6000;
  config.vocab_size = 1200;
  config.seed = 314;
  Dataset dataset = GenerateDataset(config);

  WhyNotEngine::Config engine_config;
  auto engine = WhyNotEngine::Build(&dataset, engine_config).value();

  SpatialKeywordQuery query;
  query.loc = Point{0.35, 0.65};
  query.doc = dataset.object(77).doc;
  query.k = 10;
  query.alpha = 0.5;
  const ObjectId missing = engine->ObjectAtPosition(query, 33).value();

  std::printf("diagnosis:\n  %s\n\n",
              ExplainMiss(*engine, query, missing).value().ToString().c_str());

  const double lambda = 0.5;
  WhyNotOptions options;
  options.lambda = lambda;

  // 1 + 2 via the integrated entry point.
  const IntegratedResult integrated =
      AnswerWhyNotIntegrated(*engine, WhyNotAlgorithm::kKcrBased, query,
                             {missing}, options)
          .value();
  std::printf("keyword adaption:   doc' = %s, k' = %u  -> penalty %.4f\n",
              integrated.keywords.refined.doc.ToString().c_str(),
              integrated.keywords.refined.k,
              integrated.keywords.refined.penalty);
  std::printf("alpha adaption:     alpha' = %.3f (was %.3f), k' = %u  "
              "-> penalty %.4f\n",
              integrated.preference.alpha, query.alpha,
              integrated.preference.k, integrated.preference.penalty);

  // 3. Location adaption.
  const LocationRefineResult location =
      RefineLocationApproximate(dataset, query, {missing}, lambda).value();
  std::printf("location adaption:  loc' = (%.3f, %.3f), moved %.4f, "
              "k' = %u -> penalty %.4f\n",
              location.loc.x, location.loc.y, location.moved, location.k,
              location.penalty);

  const char* winner = RefinementKindName(integrated.kind);
  double best = integrated.best_penalty;
  if (location.penalty < best) {
    winner = "location";
    best = location.penalty;
  }
  std::printf("\ncheapest refinement: %s (penalty %.4f)\n", winner, best);
  return 0;
}

}  // namespace

int main() { return Run(); }
