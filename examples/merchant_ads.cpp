// Example 2 from the paper: a merchant lists a Sichuan restaurant near the
// Oriental Pearl Tower and wants to know which advertising keywords would
// put the restaurant into the local top-10. The restaurant itself is the
// "missing object"; the why-not answer tells the merchant how to adapt the
// ad keywords with minimal edits.
//
//   $ ./merchant_ads
#include <cstdio>

#include "common/rng.h"
#include "core/engine.h"
#include "data/generator.h"

namespace {

using namespace wsk;

int Run() {
  // A synthetic city: thousands of competing businesses with skewed
  // keyword usage, plus the merchant's restaurant near the landmark.
  GeneratorConfig config;
  config.num_objects = 4000;
  config.vocab_size = 800;
  config.seed = 2016;
  Dataset dataset = GenerateDataset(config);
  Vocabulary& vocab = dataset.vocabulary();

  const TermId sichuan = vocab.Intern("sichuan");
  const TermId cuisine = vocab.Intern("cuisine");
  const TermId spicy = vocab.Intern("spicy");
  const TermId hotpot = vocab.Intern("hotpot");
  const TermId noodles = vocab.Intern("noodles");
  const Point landmark{0.62, 0.58};  // the Oriental Pearl Tower

  // A crowded food district: plenty of competitors right by the landmark
  // already advertise "sichuan cuisine", so the newcomer a few blocks away
  // does not make the top-10 for those keywords.
  Rng rng(7);
  for (int i = 0; i < 18; ++i) {
    const Point loc{landmark.x + rng.NextDouble(-0.008, 0.008),
                    landmark.y + rng.NextDouble(-0.008, 0.008)};
    dataset.Add(loc, KeywordSet{sichuan, cuisine,
                                static_cast<TermId>(rng.NextUint64(400))});
  }
  const ObjectId restaurant =
      dataset.Add(Point{landmark.x + 0.03, landmark.y - 0.025},
                  KeywordSet{sichuan, cuisine, spicy, hotpot, noodles});

  WhyNotEngine::Config engine_config;
  auto engine = WhyNotEngine::Build(&dataset, engine_config).value();

  // The merchant's first attempt: advertise "sichuan cuisine" and hope to
  // show up in top-10 searches near the landmark.
  SpatialKeywordQuery query;
  query.loc = landmark;
  query.doc = KeywordSet{sichuan, cuisine};
  query.k = 10;
  query.alpha = 0.5;

  const uint32_t rank = engine->Rank(query, restaurant).value();
  std::printf("searching top-%u near the landmark for {sichuan, cuisine}\n",
              query.k);
  std::printf("the restaurant ranks %u — %s\n\n", rank,
              rank <= query.k ? "it is already visible!"
                              : "not in the result. why not?");

  WhyNotOptions options;
  options.lambda = 0.3;  // the merchant would rather edit keywords than
                         // hope customers scroll past the top-10
  for (WhyNotAlgorithm algorithm :
       {WhyNotAlgorithm::kAdvanced, WhyNotAlgorithm::kKcrBased}) {
    const WhyNotResult answer =
        engine->Answer(algorithm, query, {restaurant}, options).value();
    std::printf("%-10s suggests {", WhyNotAlgorithmName(algorithm));
    bool first = true;
    for (TermId t : answer.refined.doc) {
      std::printf("%s%s", first ? "" : ", ", vocab.TermString(t).c_str());
      first = false;
    }
    std::printf("} with k=%u  (penalty %.3f, %.1f ms, %llu page reads)\n",
                answer.refined.k, answer.refined.penalty,
                answer.stats.elapsed_ms,
                static_cast<unsigned long long>(answer.stats.io_reads));
  }

  // Verify: under the suggested keywords the restaurant is in the top-k'.
  const WhyNotResult best =
      engine->Answer(WhyNotAlgorithm::kKcrBased, query, {restaurant}, options)
          .value();
  SpatialKeywordQuery refined = query;
  refined.doc = best.refined.doc;
  const uint32_t new_rank = engine->Rank(refined, restaurant).value();
  std::printf("\nwith the suggested keywords the restaurant ranks %u "
              "(k' = %u)\n",
              new_rank, best.refined.k);
  return 0;
}

}  // namespace

int main() { return Run(); }
