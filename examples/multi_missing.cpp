// Multiple missing objects and the approximate mode (Section VI).
//
// A user expects several objects in the result; the refined query must
// revive all of them. With many keywords the exact search space explodes,
// so the example also shows the sampling-based approximate algorithm
// trading solution quality for running time.
//
//   $ ./multi_missing
#include <cstdio>

#include "common/timer.h"
#include "core/engine.h"
#include "data/generator.h"

namespace {

using namespace wsk;

int Run() {
  GeneratorConfig config;
  config.num_objects = 8000;
  config.vocab_size = 1500;
  config.seed = 99;
  Dataset dataset = GenerateDataset(config);

  WhyNotEngine::Config engine_config;
  auto engine = WhyNotEngine::Build(&dataset, engine_config).value();

  SpatialKeywordQuery query;
  query.loc = Point{0.5, 0.5};
  query.doc = dataset.object(123).doc;
  query.k = 10;
  query.alpha = 0.5;

  // Three expected-but-missing objects from just outside the top-10.
  std::vector<ObjectId> missing;
  for (uint32_t position : {14u, 22u, 35u}) {
    missing.push_back(engine->ObjectAtPosition(query, position).value());
  }
  std::printf("missing objects (ids):");
  for (ObjectId m : missing) std::printf(" %u", m);
  std::printf("\n\n");

  WhyNotOptions exact;
  exact.lambda = 0.5;
  const WhyNotResult exact_answer =
      engine->Answer(WhyNotAlgorithm::kKcrBased, query, missing, exact)
          .value();
  std::printf("exact KcRBased: doc' = %s, k' = %u, penalty %.3f "
              "(%.1f ms, %llu candidates considered)\n",
              exact_answer.refined.doc.ToString().c_str(),
              exact_answer.refined.k, exact_answer.refined.penalty,
              exact_answer.stats.elapsed_ms,
              static_cast<unsigned long long>(
                  exact_answer.stats.candidates_total));

  // All missing objects are revived.
  SpatialKeywordQuery refined = query;
  refined.doc = exact_answer.refined.doc;
  for (ObjectId m : missing) {
    std::printf("  rank of %u under doc': %u (k' = %u)\n", m,
                engine->Rank(refined, m).value(), exact_answer.refined.k);
  }

  std::printf("\napproximate mode (Section VI-B):\n");
  for (uint32_t sample : {25u, 100u, 400u}) {
    WhyNotOptions approx = exact;
    approx.sample_size = sample;
    const WhyNotResult answer =
        engine->Answer(WhyNotAlgorithm::kKcrBased, query, missing, approx)
            .value();
    std::printf("  sample %-4u -> penalty %.3f (exact %.3f), %.1f ms\n",
                sample, answer.refined.penalty, exact_answer.refined.penalty,
                answer.stats.elapsed_ms);
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
