#include "shard/shard_partition.h"

#include <algorithm>

#include "index/str_pack.h"

namespace wsk {

ShardPartition PartitionDataset(const Dataset& seed, uint32_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  ShardPartition out;
  const std::vector<SpatialObject>& objects = seed.objects();
  const size_t n = objects.size();
  if (n == 0) {
    Dataset tile;
    tile.vocabulary() = seed.vocabulary().CloneDictionary();
    tile.OverrideDiagonal(seed.diagonal());
    out.tiles.push_back(std::move(tile));
    return out;
  }

  std::vector<Point> centers;
  centers.reserve(n);
  for (const SpatialObject& o : objects) centers.push_back(o.loc);
  const uint32_t capacity = std::max<uint32_t>(
      2, static_cast<uint32_t>((n + num_shards - 1) / num_shards));
  std::vector<std::vector<uint32_t>> groups = StrPack(centers, capacity);

  // Per-slab rounding can leave StrPack with more groups than requested
  // shards; fold the surplus tail into the last shard.
  if (groups.size() > num_shards) {
    std::vector<uint32_t>& last = groups[num_shards - 1];
    for (size_t g = num_shards; g < groups.size(); ++g) {
      last.insert(last.end(), groups[g].begin(), groups[g].end());
    }
    groups.resize(num_shards);
  }

  out.tiles.reserve(groups.size());
  for (std::vector<uint32_t>& group : groups) {
    // Ascending id order inside a tile, matching the merge rebuild
    // convention so a tile's bulk-loaded trees are reproducible.
    std::sort(group.begin(), group.end(), [&](uint32_t a, uint32_t b) {
      return objects[a].id < objects[b].id;
    });
    Dataset tile;
    tile.vocabulary() = seed.vocabulary().CloneDictionary();
    tile.OverrideDiagonal(seed.diagonal());
    for (uint32_t index : group) {
      const SpatialObject& o = objects[index];
      tile.AddWithId(o.id, o.loc, o.doc);
    }
    out.tiles.push_back(std::move(tile));
  }
  return out;
}

}  // namespace wsk
