// Spatial tiling for the sharding subsystem (docs/SHARDING.md).
//
// PartitionDataset STR-packs the seed's object centers (str_pack.h — the
// same Sort-Tile-Recursive order both tree bulk loaders use) into
// `num_shards` contiguous tiles and materializes each tile as a Dataset:
// original object ids preserved via AddWithId, the vocabulary cloned from
// the seed so term ids keep matching, and the SDist diagonal pinned to the
// seed's so per-shard scores are comparable with an unsharded engine.
#ifndef WSK_SHARD_SHARD_PARTITION_H_
#define WSK_SHARD_SHARD_PARTITION_H_

#include <vector>

#include "data/dataset.h"

namespace wsk {

struct ShardPartition {
  // One non-empty tile per shard (except for an empty seed, which yields a
  // single empty tile). At most `num_shards` entries; fewer when the seed
  // has too few objects to populate every tile.
  std::vector<Dataset> tiles;
};

// Deterministic: the same seed and shard count always produce the same
// tiles, with each tile's objects added in ascending id order (the same
// convention the segment merge uses so rebuilt trees are bit-identical).
ShardPartition PartitionDataset(const Dataset& seed, uint32_t num_shards);

}  // namespace wsk

#endif  // WSK_SHARD_SHARD_PARTITION_H_
