#include "shard/shard_coordinator.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/macros.h"
#include "common/timer.h"
#include "core/whynot_bs.h"
#include "core/whynot_kcr.h"
#include "segment/merged_source.h"
#include "shard/shard_partition.h"

namespace wsk {

namespace {

// Cross-shard ObjectStore: id lookups fan out over the per-shard stores,
// the vocabulary is the coordinator's global one (corpus-wide document
// frequencies, identical to an unsharded engine's).
class ShardedStore : public ObjectStore {
 public:
  ShardedStore(const Vocabulary* vocabulary,
               std::vector<const ObjectStore*> stores)
      : vocabulary_(vocabulary), stores_(std::move(stores)) {
    for (const ObjectStore* store : stores_) count_ += store->num_objects();
  }

  const SpatialObject* FindObject(ObjectId id) const override {
    for (const ObjectStore* store : stores_) {
      if (const SpatialObject* o = store->FindObject(id)) return o;
    }
    return nullptr;
  }
  size_t num_objects() const override { return count_; }
  const Vocabulary& vocabulary() const override { return *vocabulary_; }

 private:
  const Vocabulary* vocabulary_;
  std::vector<const ObjectStore*> stores_;
  size_t count_ = 0;
};

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t FnvMixDouble(uint64_t hash, double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return FnvMix(hash, bits);
}

}  // namespace

StatusOr<std::unique_ptr<ShardCoordinator>> ShardCoordinator::Build(
    const Dataset& seed, const Config& config) {
  WSK_CHECK_MSG(config.num_shards >= 1, "num_shards must be at least 1");
  std::unique_ptr<ShardCoordinator> c(new ShardCoordinator());
  c->config_ = config;
  c->diagonal_ = seed.diagonal();
  c->vocabulary_ = std::make_unique<Vocabulary>(seed.vocabulary());

  ShardPartition partition = PartitionDataset(seed, config.num_shards);
  ObjectId max_id = 0;
  uint64_t topology = 1469598103934665603ull;  // FNV-1a offset basis
  topology = FnvMix(topology, partition.tiles.size());
  for (size_t i = 0; i < partition.tiles.size(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->tile = std::move(partition.tiles[i]);
    for (const SpatialObject& o : shard->tile.objects()) {
      AbsorbObject(&shard->summary, o.loc, o.doc);
      c->owner_[o.id] = static_cast<uint32_t>(i);
      max_id = std::max(max_id, o.id + 1);
    }
    topology = FnvMix(topology, shard->tile.size());
    topology = FnvMixDouble(topology, shard->summary.mbr.min_x);
    topology = FnvMixDouble(topology, shard->summary.mbr.min_y);
    topology = FnvMixDouble(topology, shard->summary.mbr.max_x);
    topology = FnvMixDouble(topology, shard->summary.mbr.max_y);
    if (config.live) {
      SegmentedEngine::Config ec;
      ec.work_dir = config.work_dir;
      ec.page_size = config.page_size;
      ec.buffer_bytes = config.buffer_bytes;
      ec.node_capacity = config.node_capacity;
      ec.model = config.model;
      ec.node_cache_bytes = config.node_cache_bytes;
      ec.delta_capacity = config.delta_capacity;
      ec.auto_merge = config.auto_merge;
      ec.shared_vocabulary = c->vocabulary_.get();
      StatusOr<std::unique_ptr<SegmentedEngine>> built =
          SegmentedEngine::Build(shard->tile, ec);
      if (!built.ok()) return built.status();
      shard->engine = std::move(built).value();
      // The engine owns the seeded objects now; drop the tile copy.
      shard->tile = Dataset();
    } else {
      WhyNotEngine::Config ec;
      ec.work_dir = config.work_dir;
      ec.page_size = config.page_size;
      ec.buffer_bytes = config.buffer_bytes;
      ec.node_capacity = config.node_capacity;
      ec.model = config.model;
      ec.node_cache_bytes = config.node_cache_bytes;
      StatusOr<std::unique_ptr<WhyNotEngine>> built =
          WhyNotEngine::Build(&shard->tile, ec);
      if (!built.ok()) return built.status();
      shard->frozen = std::move(built).value();
    }
    c->shards_.push_back(std::move(shard));
  }
  c->next_insert_id_ = max_id;
  c->topology_ = topology;
  return c;
}

ShardCoordinator::~ShardCoordinator() = default;

double ShardCoordinator::ShardBound(size_t shard,
                                    const SpatialKeywordQuery& query) const {
  const Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.summary_mu);
  return ShardUpperBound(s.summary, query, diagonal_);
}

// Accumulates the enclosing scope's wall time into a relaxed busy-time
// counter on every exit path (wsk_bg_scatter_busy visibility).
class ScatterBusyScope {
 public:
  explicit ScatterBusyScope(std::atomic<uint64_t>* sink) : sink_(sink) {}
  ~ScatterBusyScope() {
    sink_->fetch_add(static_cast<uint64_t>(timer_.ElapsedMicros()),
                     std::memory_order_relaxed);
  }

 private:
  const Timer timer_;
  std::atomic<uint64_t>* const sink_;
};

std::vector<ShardCoordinator::RankedShard> ShardCoordinator::RankShards(
    const SpatialKeywordQuery& query) const {
  std::vector<RankedShard> order;
  order.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    order.push_back(RankedShard{ShardBound(i, query),
                                static_cast<uint32_t>(i)});
  }
  std::sort(order.begin(), order.end(),
            [](const RankedShard& a, const RankedShard& b) {
              if (a.bound != b.bound) return a.bound > b.bound;
              return a.shard < b.shard;
            });
  return order;
}

StatusOr<std::vector<ScoredObject>> ShardCoordinator::TopK(
    const SpatialKeywordQuery& query, const CancelToken* cancel,
    TraceRecorder* trace) const {
  TraceSpan root_span(trace, TraceStage::kQuery);
  const ScatterBusyScope busy(&scatter_busy_us_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<RankedShard> order = RankShards(query);

  std::vector<ScoredObject> merged;
  size_t next = 0;
  for (; next < order.size(); ++next) {
    const RankedShard& entry = order[next];
    // Theorem 1 shard pruning: once k results are gathered, a shard whose
    // upper bound is strictly below the global kth score cannot contribute
    // (ties cannot displace either: an equal-score object loses only on
    // id, and id-tie objects are unique). Bounds are sorted descending, so
    // every remaining shard is pruned with it.
    if (merged.size() >= query.k && entry.bound < merged.back().score) break;
    if (cancel != nullptr) WSK_RETURN_IF_ERROR(cancel->Check());
    const Shard& shard = *shards_[entry.shard];
    shard.visited.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) {
      trace->Add(TraceCounter::kShardsVisited);
      trace->Annotate(TraceStage::kShardVisit,
                      "shard." + std::to_string(entry.shard),
                      static_cast<int64_t>(entry.shard));
    }
    TraceSpan visit_span(trace, TraceStage::kShardVisit);
    const QueryBackend* backend =
        shard.frozen != nullptr
            ? static_cast<const QueryBackend*>(shard.frozen.get())
            : shard.engine.get();
    StatusOr<std::vector<ScoredObject>> partial =
        backend->TopK(query, cancel, trace);
    if (!partial.ok()) return partial.status();
    std::vector<ScoredObject>& found = partial.value();
    merged.insert(merged.end(), found.begin(), found.end());
    std::sort(merged.begin(), merged.end(), ScoreGreater{});
    if (merged.size() > query.k) merged.resize(query.k);
  }
  for (size_t i = next; i < order.size(); ++i) {
    shards_[order[i].shard]->pruned.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) trace->Add(TraceCounter::kShardsPruned);
  }
  return merged;
}

std::vector<BackendBatchResult> ShardCoordinator::TopKBatch(
    const std::vector<BackendBatchItem>& items, TraceRecorder* trace) const {
  TraceSpan root_span(trace, TraceStage::kQuery);
  const ScatterBusyScope busy(&scatter_busy_us_);
  queries_.fetch_add(items.size(), std::memory_order_relaxed);

  // Per-item replay of the solo scatter-gather: the same RankShards order,
  // the same Theorem 1 prune decision before every visit, the same
  // order-insensitive merge — so each item's result is bit-identical to
  // TopK. The batching is per visited shard: items whose next unpruned
  // shard coincides are answered by one sub-batch against that shard's
  // backend, which amortizes the walk beneath it.
  struct ItemState {
    std::vector<RankedShard> order;
    size_t next = 0;
    std::vector<ScoredObject> merged;
    Status status;
    bool done = false;
  };
  std::vector<ItemState> states(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    states[i].order = RankShards(*items[i].query);
  }

  std::vector<BackendBatchItem> sub_items;
  for (;;) {
    // Advance each item to its next shard visit, applying the prune rule.
    std::unordered_map<uint32_t, size_t> group_of;
    std::vector<uint32_t> group_shards;
    std::vector<std::vector<size_t>> group_members;
    for (size_t i = 0; i < states.size(); ++i) {
      ItemState& s = states[i];
      if (s.done) continue;
      const SpatialKeywordQuery& query = *items[i].query;
      if (s.next >= s.order.size()) {
        s.done = true;
        continue;
      }
      const RankedShard& entry = s.order[s.next];
      if (s.merged.size() >= query.k && entry.bound < s.merged.back().score) {
        for (size_t j = s.next; j < s.order.size(); ++j) {
          shards_[s.order[j].shard]->pruned.fetch_add(
              1, std::memory_order_relaxed);
          if (trace != nullptr) trace->Add(TraceCounter::kShardsPruned);
        }
        s.done = true;
        continue;
      }
      auto [it, inserted] = group_of.emplace(entry.shard, group_shards.size());
      if (inserted) {
        group_shards.push_back(entry.shard);
        group_members.emplace_back();
      }
      group_members[it->second].push_back(i);
    }
    if (group_shards.empty()) break;

    for (size_t g = 0; g < group_shards.size(); ++g) {
      const Shard& shard = *shards_[group_shards[g]];
      std::vector<size_t> live;
      for (size_t i : group_members[g]) {
        ItemState& s = states[i];
        if (items[i].cancel != nullptr) {
          const Status check = items[i].cancel->Check();
          if (!check.ok()) {
            s.status = check;
            s.done = true;
            continue;
          }
        }
        live.push_back(i);
      }
      if (live.empty()) continue;
      shard.visited.fetch_add(live.size(), std::memory_order_relaxed);
      if (trace != nullptr) {
        trace->Add(TraceCounter::kShardsVisited, live.size());
        trace->Annotate(TraceStage::kShardVisit,
                        "shard." + std::to_string(group_shards[g]),
                        static_cast<int64_t>(group_shards[g]));
      }
      TraceSpan visit_span(trace, TraceStage::kShardVisit);
      const QueryBackend* backend =
          shard.frozen != nullptr
              ? static_cast<const QueryBackend*>(shard.frozen.get())
              : shard.engine.get();
      sub_items.clear();
      for (size_t i : live) {
        sub_items.push_back(BackendBatchItem{items[i].query, items[i].cancel});
      }
      std::vector<BackendBatchResult> partials =
          backend->TopKBatch(sub_items, trace);
      for (size_t j = 0; j < live.size(); ++j) {
        ItemState& s = states[live[j]];
        if (!partials[j].status.ok()) {
          s.status = std::move(partials[j].status);
          s.done = true;
          continue;
        }
        const SpatialKeywordQuery& query = *items[live[j]].query;
        std::vector<ScoredObject>& found = partials[j].topk;
        s.merged.insert(s.merged.end(), found.begin(), found.end());
        std::sort(s.merged.begin(), s.merged.end(), ScoreGreater{});
        if (s.merged.size() > query.k) s.merged.resize(query.k);
        ++s.next;
      }
    }
  }

  std::vector<BackendBatchResult> results(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    results[i].status = std::move(states[i].status);
    if (results[i].status.ok()) results[i].topk = std::move(states[i].merged);
  }
  return results;
}

StatusOr<WhyNotResult> ShardCoordinator::Answer(
    WhyNotAlgorithm algorithm, const SpatialKeywordQuery& query,
    const std::vector<ObjectId>& missing, const WhyNotOptions& options) const {
  if (options.cancel != nullptr) {
    WSK_RETURN_IF_ERROR(options.cancel->Check());
  }
  TraceSpan root_span(options.trace, TraceStage::kQuery);
  const bool kcr = algorithm == WhyNotAlgorithm::kKcrBased;

  // Concatenate every shard's sources into one cross-shard plan. Live
  // plans (snapshots + visibility filters) and snapshot stores must stay
  // alive for the whole query.
  std::vector<SegmentedEngine::QueryPlan> live_plans;
  std::vector<std::unique_ptr<SnapshotStore>> live_stores;
  live_plans.reserve(shards_.size());
  std::vector<MergedSegment> setr_segments;
  std::vector<const SpatialObject*> extras;
  KcrMultiSource kcr_source;
  std::vector<const ObjectStore*> stores;
  stores.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->frozen != nullptr) {
      setr_segments.push_back(
          MergedSegment{&shard->frozen->setr_tree(), nullptr});
      if (kcr) {
        kcr_source.segments.push_back(
            KcrSegmentSource{&shard->frozen->kcr_tree(), nullptr, 0});
      }
      stores.push_back(&shard->tile);
    } else {
      live_plans.push_back(shard->engine->CollectPlan(kcr));
      SegmentedEngine::QueryPlan& plan = live_plans.back();
      setr_segments.insert(setr_segments.end(), plan.setr_segments.begin(),
                           plan.setr_segments.end());
      extras.insert(extras.end(), plan.extras.begin(), plan.extras.end());
      if (kcr) {
        kcr_source.segments.insert(kcr_source.segments.end(),
                                   plan.kcr.segments.begin(),
                                   plan.kcr.segments.end());
      }
      live_stores.push_back(
          std::make_unique<SnapshotStore>(vocabulary_.get(), plan.snapshot));
      stores.push_back(live_stores.back().get());
    }
  }
  const ShardedStore store(vocabulary_.get(), std::move(stores));
  const BackendIoSnapshot before = io_snapshot();

  StatusOr<WhyNotResult> result = Status::Internal("unreachable");
  switch (algorithm) {
    case WhyNotAlgorithm::kBasic: {
      WhyNotOptions plain = options;
      plain.opt_early_stop = false;
      plain.opt_enumeration_order = false;
      plain.opt_keyword_filtering = false;
      MergedTopKSource source(setr_segments, extras, diagonal_,
                              options.trace);
      result = AnswerWhyNotBasic(store, source, diagonal_, query, missing,
                                 plain);
      break;
    }
    case WhyNotAlgorithm::kAdvanced: {
      MergedTopKSource source(setr_segments, extras, diagonal_,
                              options.trace);
      result = AnswerWhyNotBasic(store, source, diagonal_, query, missing,
                                 options);
      break;
    }
    case WhyNotAlgorithm::kKcrBased: {
      // The rank source mirrors the traversal's segment set, so R(M, q')
      // and the dominator bounds agree on what exists (the same contract
      // SegmentedEngine::Answer keeps for its own segments).
      std::vector<MergedSegment> kcr_segments;
      kcr_segments.reserve(kcr_source.segments.size());
      for (const KcrSegmentSource& seg : kcr_source.segments) {
        kcr_segments.push_back(MergedSegment{seg.tree, seg.visibility});
      }
      MergedTopKSource rank_source(std::move(kcr_segments), extras,
                                   diagonal_, options.trace);
      kcr_source.extras = extras;
      kcr_source.diagonal = diagonal_;
      kcr_source.rank_source = &rank_source;
      result = AnswerWhyNotKcr(store, kcr_source, query, missing, options);
      break;
    }
  }
  if (result.ok()) {
    // Live shards back onto frozen segments, which serve node reads from
    // the mmap path by default — count both so io_reads means "pages
    // fetched from the index file" regardless of read mode.
    const BackendIoSnapshot after = io_snapshot();
    result.value().stats.io_reads =
        kcr ? (after.kcr_physical - before.kcr_physical) +
                  (after.kcr_mapped - before.kcr_mapped)
            : (after.setr_physical - before.setr_physical) +
                  (after.setr_mapped - before.setr_mapped);
  }
  return result;
}

BackendIoSnapshot ShardCoordinator::io_snapshot() const {
  BackendIoSnapshot total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const QueryBackend* backend =
        shard->frozen != nullptr
            ? static_cast<const QueryBackend*>(shard->frozen.get())
            : shard->engine.get();
    const BackendIoSnapshot s = backend->io_snapshot();
    total.setr_physical += s.setr_physical;
    total.kcr_physical += s.kcr_physical;
    total.setr_logical += s.setr_logical;
    total.kcr_logical += s.kcr_logical;
    total.setr_mapped += s.setr_mapped;
    total.kcr_mapped += s.kcr_mapped;
    total.setr_cache_hits += s.setr_cache_hits;
    total.kcr_cache_hits += s.kcr_cache_hits;
    total.setr_cache_misses += s.setr_cache_misses;
    total.kcr_cache_misses += s.kcr_cache_misses;
  }
  return total;
}

uint64_t ShardCoordinator::dataset_version() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->engine != nullptr) total += shard->engine->dataset_version();
  }
  return total;
}

std::vector<uint64_t> ShardCoordinator::version_vector() const {
  std::vector<uint64_t> versions;
  versions.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    versions.push_back(shard->engine != nullptr
                           ? shard->engine->dataset_version()
                           : 0);
  }
  return versions;
}

bool ShardCoordinator::TopKCacheValid(
    const std::vector<uint64_t>& versions, const SpatialKeywordQuery& query,
    const std::vector<ScoredObject>& results) const {
  const std::vector<uint64_t> current = version_vector();
  if (versions.size() != current.size()) return false;
  if (versions == current) return true;
  // A changed shard invalidates unless it provably cannot alter the cached
  // top-k: the result is full, the shard owns none of its objects (a
  // missing owner means a result object was deleted), and the shard's
  // current bound is strictly below the cached kth score.
  if (results.size() < query.k) return false;
  std::vector<int> result_owner;
  result_owner.reserve(results.size());
  {
    std::lock_guard<std::mutex> lock(owner_mu_);
    for (const ScoredObject& r : results) {
      auto it = owner_.find(r.id);
      result_owner.push_back(it == owner_.end() ? -1
                                                : static_cast<int>(it->second));
    }
  }
  const double kth = results.back().score;
  for (size_t i = 0; i < current.size(); ++i) {
    if (versions[i] == current[i]) continue;
    for (int owner : result_owner) {
      if (owner < 0 || static_cast<size_t>(owner) == i) return false;
    }
    if (!(ShardBound(i, query) < kth)) return false;
  }
  return true;
}

bool ShardCoordinator::WhyNotCacheValid(
    const std::vector<uint64_t>& versions) const {
  return versions == version_vector();
}

SegmentCountersSnapshot ShardCoordinator::segment_counters() const {
  SegmentCountersSnapshot total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (shard->engine == nullptr) continue;
    const SegmentCountersSnapshot s = shard->engine->segment_counters();
    total.valid = total.valid || s.valid;
    total.inserts += s.inserts;
    total.updates += s.updates;
    total.deletes += s.deletes;
    total.merges += s.merges;
    total.rotations += s.rotations;
    total.segments_retired += s.segments_retired;
    total.frozen_segments += s.frozen_segments;
    total.delta_objects += s.delta_objects;
    total.live_objects += s.live_objects;
    total.merge_busy_us += s.merge_busy_us;
    total.merge_last_us = std::max(total.merge_last_us, s.merge_last_us);
    total.tombstones_replayed += s.tombstones_replayed;
  }
  return total;
}

ShardCountersSnapshot ShardCoordinator::shard_counters() const {
  ShardCountersSnapshot snap;
  snap.valid = true;
  snap.num_shards = shards_.size();
  snap.queries = queries_.load(std::memory_order_relaxed);
  snap.scatter_busy_us = scatter_busy_us_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const uint64_t visited = shard->visited.load(std::memory_order_relaxed);
    const uint64_t pruned = shard->pruned.load(std::memory_order_relaxed);
    snap.shards_visited += visited;
    snap.shards_pruned += pruned;
    snap.per_shard_visited.push_back(visited);
    snap.per_shard_pruned.push_back(pruned);
    snap.per_shard_mutations.push_back(
        shard->mutations.load(std::memory_order_relaxed));
    snap.per_shard_objects.push_back(
        shard->engine != nullptr ? shard->engine->manager()->live_objects()
                                 : shard->tile.size());
  }
  return snap;
}

int ShardCoordinator::OwnerShard(ObjectId id) const {
  std::lock_guard<std::mutex> lock(owner_mu_);
  auto it = owner_.find(id);
  return it == owner_.end() ? -1 : static_cast<int>(it->second);
}

uint32_t ShardCoordinator::RouteInsert(Point loc) const {
  uint32_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    double dist;
    {
      std::lock_guard<std::mutex> lock(shard.summary_mu);
      dist = shard.summary.has_objects
                 ? MinDist(loc, shard.summary.mbr)
                 : std::numeric_limits<double>::infinity();
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = static_cast<uint32_t>(i);
    }
  }
  return best;
}

void ShardCoordinator::AbsorbMutation(Shard* shard, Point loc,
                                      const KeywordSet& doc) const {
  std::lock_guard<std::mutex> lock(shard->summary_mu);
  AbsorbObject(&shard->summary, loc, doc);
}

StatusOr<ObjectId> ShardCoordinator::Insert(
    Point loc, const std::vector<std::string>& keywords) const {
  if (!config_.live) {
    return Status::FailedPrecondition("backend is read-only");
  }
  std::lock_guard<std::mutex> lock(mutation_mu_);
  const uint32_t target = RouteInsert(loc);
  Shard& shard = *shards_[target];
  const ObjectId id = next_insert_id_;
  StatusOr<ObjectId> inserted = shard.engine->InsertWithId(id, loc, keywords);
  if (!inserted.ok()) return inserted;
  ++next_insert_id_;
  {
    std::lock_guard<std::mutex> owners(owner_mu_);
    owner_[id] = target;
  }
  AbsorbMutation(&shard, loc, vocabulary_->InternAll(keywords));
  shard.mutations.fetch_add(1, std::memory_order_relaxed);
  return inserted;
}

Status ShardCoordinator::Update(ObjectId id, Point loc,
                                const std::vector<std::string>& keywords) const {
  if (!config_.live) {
    return Status::FailedPrecondition("backend is read-only");
  }
  std::lock_guard<std::mutex> lock(mutation_mu_);
  uint32_t target;
  {
    std::lock_guard<std::mutex> owners(owner_mu_);
    auto it = owner_.find(id);
    if (it == owner_.end()) {
      return Status::NotFound("no live object with this id");
    }
    target = it->second;
  }
  Shard& shard = *shards_[target];
  WSK_RETURN_IF_ERROR(shard.engine->Update(id, loc, keywords));
  AbsorbMutation(&shard, loc, vocabulary_->InternAll(keywords));
  shard.mutations.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status ShardCoordinator::Delete(ObjectId id) const {
  if (!config_.live) {
    return Status::FailedPrecondition("backend is read-only");
  }
  std::lock_guard<std::mutex> lock(mutation_mu_);
  uint32_t target;
  {
    std::lock_guard<std::mutex> owners(owner_mu_);
    auto it = owner_.find(id);
    if (it == owner_.end()) {
      return Status::NotFound("no live object with this id");
    }
    target = it->second;
  }
  Shard& shard = *shards_[target];
  WSK_RETURN_IF_ERROR(shard.engine->Delete(id));
  {
    std::lock_guard<std::mutex> owners(owner_mu_);
    owner_.erase(id);
  }
  shard.mutations.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

}  // namespace wsk
