// ShardCoordinator: scatter-gather top-k and why-not over spatial tiles
// (docs/SHARDING.md).
//
// The seed dataset is STR-packed into `num_shards` tiles
// (shard_partition.h); each tile gets its own backend — a frozen
// WhyNotEngine, or a live SegmentedEngine when Config::live is set. The
// coordinator implements QueryBackend, so QueryService fronts it unchanged
// and composes admission control, deadlines, the result cache, and
// metrics on top.
//
// Top-k visits shards best-first by their Theorem 1 MaxScore upper bound
// (shard_summary.h) and stops as soon as the next bound cannot beat the
// running global kth score — the skipped shards are the shards_pruned
// counter. Why-not never re-implements the algorithms: it concatenates the
// shards' index sources into one cross-shard MergedTopKSource /
// KcrMultiSource (exactly how SegmentedEngine merges its own segments), so
// per-shard MaxDom/MinDom bounds aggregate inside the one keyword-adaption
// search and answers are bit-identical to an unsharded engine.
//
// Mutations route by ownership: inserts to the shard whose summary MBR is
// nearest, updates/deletes to the owning shard. The coordinator allocates
// globally sequential object ids (SegmentManager's forced-id insert), so a
// sharded run assigns the same ids as an unsharded one. All shard engines
// intern through one coordinator-owned vocabulary, keeping term ids and
// corpus-wide document frequencies identical to the unsharded engine.
#ifndef WSK_SHARD_SHARD_COORDINATOR_H_
#define WSK_SHARD_SHARD_COORDINATOR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/backend.h"
#include "core/engine.h"
#include "segment/segmented_engine.h"
#include "shard/shard_summary.h"
#include "storage/pager.h"
#include "text/vocabulary.h"

namespace wsk {

class ShardCoordinator : public QueryBackend {
 public:
  struct Config {
    uint32_t num_shards = 2;
    // false: one frozen WhyNotEngine per shard (read-only).
    // true: one live SegmentedEngine per shard (routed mutations).
    bool live = false;
    std::string work_dir = "/tmp";
    uint32_t page_size = kDefaultPageSize;
    size_t buffer_bytes = 4u << 20;  // per index file, per shard
    uint32_t node_capacity = 100;
    SimilarityModel model = SimilarityModel::kJaccard;
    size_t node_cache_bytes = 8u << 20;  // per shard
    // Live-shard merge policy (forwarded to SegmentedEngine).
    uint32_t delta_capacity = 4096;
    bool auto_merge = true;
  };

  // Tiles `seed` and builds one backend per tile. The actual shard count
  // is min(num_shards, populated tiles) — see shard_counters().num_shards.
  static StatusOr<std::unique_ptr<ShardCoordinator>> Build(
      const Dataset& seed, const Config& config);

  ~ShardCoordinator() override;
  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  // --- QueryBackend query surface (thread-safe) ---

  StatusOr<std::vector<ScoredObject>> TopK(
      const SpatialKeywordQuery& query, const CancelToken* cancel = nullptr,
      TraceRecorder* trace = nullptr) const override;
  // Scatter-gather batching: each item replays its own solo shard order
  // and prune decisions, but items whose next shard coincides are answered
  // by one sub-batch per visited shard, amortizing the per-shard walk
  // (docs/BATCHING.md). Per-item results are bit-identical to TopK.
  std::vector<BackendBatchResult> TopKBatch(
      const std::vector<BackendBatchItem>& items,
      TraceRecorder* trace = nullptr) const override;
  StatusOr<WhyNotResult> Answer(WhyNotAlgorithm algorithm,
                                const SpatialKeywordQuery& query,
                                const std::vector<ObjectId>& missing,
                                const WhyNotOptions& options) const override;

  BackendIoSnapshot io_snapshot() const override;
  uint64_t dataset_version() const override;
  uint64_t topology_fingerprint() const override { return topology_; }
  std::vector<uint64_t> version_vector() const override;

  // A cached top-k survives a mutation when every changed shard provably
  // cannot alter it: the cached result is full (>= k entries), the changed
  // shard owns none of the result objects, and the shard's current
  // MaxScore bound is strictly below the cached kth score (the summary is
  // monotone-conservative, so the bound covers every object the shard
  // held or gained since). Why-not entries require exact version equality.
  bool TopKCacheValid(const std::vector<uint64_t>& versions,
                      const SpatialKeywordQuery& query,
                      const std::vector<ScoredObject>& results) const override;
  bool WhyNotCacheValid(const std::vector<uint64_t>& versions) const override;

  SegmentCountersSnapshot segment_counters() const override;
  ShardCountersSnapshot shard_counters() const override;

  // --- QueryBackend mutation surface (live mode; serialized) ---

  StatusOr<ObjectId> Insert(
      Point loc, const std::vector<std::string>& keywords) const override;
  Status Update(ObjectId id, Point loc,
                const std::vector<std::string>& keywords) const override;
  Status Delete(ObjectId id) const override;

  // --- introspection (tests, benchmarks) ---

  size_t num_shards() const { return shards_.size(); }
  bool live() const { return config_.live; }
  // The shard currently owning `id`, or -1 when unknown.
  int OwnerShard(ObjectId id) const;
  // The shard's current Theorem 1 upper bound for `query`.
  double ShardBound(size_t shard, const SpatialKeywordQuery& query) const;
  const Vocabulary& vocabulary() const { return *vocabulary_; }
  double diagonal() const { return diagonal_; }

 private:
  struct Shard {
    Dataset tile;  // frozen mode: the authoritative object store
    std::unique_ptr<WhyNotEngine> frozen;
    std::unique_ptr<SegmentedEngine> engine;  // live mode
    mutable std::mutex summary_mu;
    ShardSummary summary;
    mutable std::atomic<uint64_t> visited{0};
    mutable std::atomic<uint64_t> pruned{0};
    mutable std::atomic<uint64_t> mutations{0};
  };

  ShardCoordinator() = default;

  // Shards ordered best-first for `query` by their summary bound.
  struct RankedShard {
    double bound;
    uint32_t shard;
  };
  std::vector<RankedShard> RankShards(const SpatialKeywordQuery& query) const;

  // Insert routing: the shard whose summary MBR is nearest to `loc`.
  uint32_t RouteInsert(Point loc) const;
  void AbsorbMutation(Shard* shard, Point loc, const KeywordSet& doc) const;

  Config config_;
  double diagonal_ = 1.0;
  uint64_t topology_ = 0;
  std::unique_ptr<Vocabulary> vocabulary_;  // global: shared by live shards
  std::vector<std::unique_ptr<Shard>> shards_;

  // Mutation state: one writer at a time across the whole coordinator so
  // id allocation and ownership stay consistent with an unsharded engine.
  mutable std::mutex mutation_mu_;
  mutable ObjectId next_insert_id_ = 0;
  mutable std::mutex owner_mu_;
  mutable std::unordered_map<ObjectId, uint32_t> owner_;

  mutable std::atomic<uint64_t> queries_{0};
  // Wall time spent inside scatter-gather TopK/TopKBatch (all exits),
  // exported as wsk_bg_scatter_busy_seconds_total.
  mutable std::atomic<uint64_t> scatter_busy_us_{0};
};

}  // namespace wsk

#endif  // WSK_SHARD_SHARD_COORDINATOR_H_
