// Per-shard pruning metadata: an MBR plus keyword union/intersection sets,
// exactly the summary a SetR-tree inner node carries (Section IV-B), lifted
// to whole shards. ShardUpperBound evaluates the Theorem 1 MaxScore bound
// against the summary, so a shard whose bound cannot beat the running
// global kth score is never visited (docs/SHARDING.md "Bound pruning").
//
// The summary is maintained conservatively under mutations: inserts and
// updates extend the MBR, grow the union, and shrink the intersection;
// deletes leave it untouched. Every transition keeps mbr ⊇ {live
// locations}, uni ⊇ every live doc, and inter ⊆ every live doc, so the
// bound stays an upper bound for the shard's whole lifetime (it only gets
// looser, never unsound).
#ifndef WSK_SHARD_SHARD_SUMMARY_H_
#define WSK_SHARD_SHARD_SUMMARY_H_

#include <limits>

#include "common/geometry.h"
#include "data/query.h"
#include "text/keyword_set.h"
#include "text/similarity.h"

namespace wsk {

struct ShardSummary {
  Rect mbr;
  KeywordSet uni;    // superset of every live document in the shard
  KeywordSet inter;  // subset of every live document in the shard
  bool has_objects = false;
};

inline void AbsorbObject(ShardSummary* summary, Point loc,
                         const KeywordSet& doc) {
  summary->mbr.Extend(loc);
  if (!summary->has_objects) {
    summary->uni = doc;
    summary->inter = doc;
    summary->has_objects = true;
  } else {
    summary->uni = summary->uni.Union(doc);
    summary->inter = summary->inter.Intersect(doc);
  }
}

// Upper-bounds Score(o, query) over every object the shard can contain
// (Theorem 1 applied to the shard summary): the spatial term uses MinDist
// to the MBR, the textual term the same union/intersection bound the
// SetR-tree uses for inner nodes. Empty shards bound at -inf.
inline double ShardUpperBound(const ShardSummary& summary,
                              const SpatialKeywordQuery& query,
                              double diagonal) {
  if (!summary.has_objects) {
    return -std::numeric_limits<double>::infinity();
  }
  const double min_sdist = MinDist(query.loc, summary.mbr) / diagonal;
  const double tsim_bound = NodeSimilarityUpperBound(
      summary.uni.IntersectionSize(query.doc),
      summary.inter.UnionSize(query.doc), summary.inter.size(),
      query.doc.size(), query.model);
  return query.alpha * (1.0 - min_sdist) + (1.0 - query.alpha) * tsim_bound;
}

}  // namespace wsk

#endif  // WSK_SHARD_SHARD_SUMMARY_H_
