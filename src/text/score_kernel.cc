#include "text/score_kernel.h"

#include <algorithm>
#include <bit>

#include "common/macros.h"

namespace wsk {

CandidateUniverse CandidateUniverse::Build(const KeywordSet& universe) {
  CandidateUniverse u;
  if (universe.size() > kMaxUniverseTerms) return u;  // invalid: fallback
  u.terms_ = universe.terms();
  u.valid_ = true;
  return u;
}

CandidateMask CandidateUniverse::MaskOf(const KeywordSet& candidate) const {
  WSK_CHECK(valid_);
  CandidateMask mask = 0;
  size_t i = 0;
  for (TermId t : candidate) {
    while (i < terms_.size() && terms_[i] < t) ++i;
    WSK_CHECK_MSG(i < terms_.size() && terms_[i] == t,
                  "candidate term %u outside the universe", t);
    mask |= uint64_t{1} << i;
    ++i;
  }
  return mask;
}

Footprint CandidateUniverse::FootprintOf(const KeywordSet& doc) const {
  WSK_CHECK(valid_);
  Footprint fp;
  fp.doc_size = static_cast<uint32_t>(doc.size());
  const std::vector<TermId>& d = doc.terms();
  // The universe is tiny; documents can be long. Gallop through the
  // document when it dwarfs the universe, otherwise merge linearly.
  if (d.size() > 8 * terms_.size()) {
    auto it = d.begin();
    for (size_t i = 0; i < terms_.size(); ++i) {
      it = std::lower_bound(it, d.end(), terms_[i]);
      if (it == d.end()) break;
      if (*it == terms_[i]) {
        fp.mask |= uint64_t{1} << i;
        ++it;
      }
    }
    return fp;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < terms_.size() && j < d.size()) {
    if (terms_[i] < d[j]) {
      ++i;
    } else if (d[j] < terms_[i]) {
      ++j;
    } else {
      fp.mask |= uint64_t{1} << i;
      ++i;
      ++j;
    }
  }
  return fp;
}

}  // namespace wsk
