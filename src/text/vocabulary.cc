#include "text/vocabulary.h"

#include <cmath>
#include <utility>

#include "common/macros.h"

namespace wsk {

Vocabulary::Vocabulary(const Vocabulary& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  index_ = other.index_;
  terms_ = other.terms_;
  doc_frequency_ = other.doc_frequency_;
  num_documents_ = other.num_documents_;
}

Vocabulary& Vocabulary::operator=(const Vocabulary& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  index_ = other.index_;
  terms_ = other.terms_;
  doc_frequency_ = other.doc_frequency_;
  num_documents_ = other.num_documents_;
  return *this;
}

Vocabulary::Vocabulary(Vocabulary&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  index_ = std::move(other.index_);
  terms_ = std::move(other.terms_);
  doc_frequency_ = std::move(other.doc_frequency_);
  num_documents_ = other.num_documents_;
  other.num_documents_ = 0;
}

Vocabulary& Vocabulary::operator=(Vocabulary&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  index_ = std::move(other.index_);
  terms_ = std::move(other.terms_);
  doc_frequency_ = std::move(other.doc_frequency_);
  num_documents_ = other.num_documents_;
  other.num_documents_ = 0;
  return *this;
}

TermId Vocabulary::Intern(const std::string& term) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  index_.emplace(term, id);
  terms_.push_back(term);
  doc_frequency_.push_back(0);
  return id;
}

TermId Vocabulary::Find(const std::string& term) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(term);
  return it == index_.end() ? kInvalidTermId : it->second;
}

KeywordSet Vocabulary::InternAll(const std::vector<std::string>& terms) {
  std::vector<TermId> ids;
  ids.reserve(terms.size());
  for (const std::string& t : terms) ids.push_back(Intern(t));
  return KeywordSet(std::move(ids));
}

const std::string& Vocabulary::TermString(TermId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  WSK_CHECK(id < terms_.size());
  return terms_[id];  // deque storage: reference stays valid after unlock
}

void Vocabulary::RecordDocument(const KeywordSet& doc) {
  std::lock_guard<std::mutex> lock(mu_);
  ++num_documents_;
  for (TermId t : doc) {
    if (t >= doc_frequency_.size()) doc_frequency_.resize(t + 1, 0);
    ++doc_frequency_[t];
  }
}

void Vocabulary::UnrecordDocument(const KeywordSet& doc) {
  std::lock_guard<std::mutex> lock(mu_);
  WSK_CHECK(num_documents_ > 0);
  --num_documents_;
  for (TermId t : doc) {
    WSK_CHECK(t < doc_frequency_.size() && doc_frequency_[t] > 0);
    --doc_frequency_[t];
  }
}

uint32_t Vocabulary::DocumentFrequencyLocked(TermId id) const {
  if (id >= doc_frequency_.size()) return 0;
  return doc_frequency_[id];
}

uint32_t Vocabulary::DocumentFrequency(TermId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return DocumentFrequencyLocked(id);
}

uint32_t Vocabulary::num_documents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_documents_;
}

uint32_t Vocabulary::num_terms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(terms_.size());
}

Vocabulary Vocabulary::CloneDictionary() const {
  std::lock_guard<std::mutex> lock(mu_);
  Vocabulary out;
  out.index_ = index_;
  out.terms_ = terms_;
  out.doc_frequency_.assign(doc_frequency_.size(), 0);
  out.num_documents_ = 0;
  return out;
}

std::vector<uint32_t> Vocabulary::DocumentFrequencies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return doc_frequency_;
}

double Vocabulary::IdfLocked(TermId t) const {
  const double n_t = DocumentFrequencyLocked(t);
  const double d = num_documents_;
  return std::log((d - n_t + 0.5) / (n_t + 0.5));
}

double Vocabulary::Idf(TermId t) const {
  std::lock_guard<std::mutex> lock(mu_);
  return IdfLocked(t);
}

double Vocabulary::Particularity(const KeywordSet& doc, TermId t) const {
  std::lock_guard<std::mutex> lock(mu_);
  const double idf = IdfLocked(t);
  return doc.Contains(t) ? idf : -idf;
}

}  // namespace wsk
