#include "text/vocabulary.h"

#include <cmath>

#include "common/macros.h"

namespace wsk {

TermId Vocabulary::Intern(const std::string& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  index_.emplace(term, id);
  terms_.push_back(term);
  doc_frequency_.push_back(0);
  return id;
}

TermId Vocabulary::Find(const std::string& term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kInvalidTermId : it->second;
}

KeywordSet Vocabulary::InternAll(const std::vector<std::string>& terms) {
  std::vector<TermId> ids;
  ids.reserve(terms.size());
  for (const std::string& t : terms) ids.push_back(Intern(t));
  return KeywordSet(std::move(ids));
}

const std::string& Vocabulary::TermString(TermId id) const {
  WSK_CHECK(id < terms_.size());
  return terms_[id];
}

void Vocabulary::RecordDocument(const KeywordSet& doc) {
  ++num_documents_;
  for (TermId t : doc) {
    if (t >= doc_frequency_.size()) doc_frequency_.resize(t + 1, 0);
    ++doc_frequency_[t];
  }
}

uint32_t Vocabulary::DocumentFrequency(TermId id) const {
  if (id >= doc_frequency_.size()) return 0;
  return doc_frequency_[id];
}

double Vocabulary::Idf(TermId t) const {
  const double n_t = DocumentFrequency(t);
  const double d = num_documents_;
  return std::log((d - n_t + 0.5) / (n_t + 0.5));
}

double Vocabulary::Particularity(const KeywordSet& doc, TermId t) const {
  const double idf = Idf(t);
  return doc.Contains(t) ? idf : -idf;
}

}  // namespace wsk
