// Term dictionary and corpus statistics.
//
// Maps keyword strings to dense TermIds, tracks per-term document
// frequencies n_t, and computes the IDF-style "particularity" weight of
// Eqn 7, which drives the candidate enumeration order (Section IV-C2) and
// the approximate algorithm's greedy sampling (Section VI-B).
#ifndef WSK_TEXT_VOCABULARY_H_
#define WSK_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/keyword_set.h"

namespace wsk {

class Vocabulary {
 public:
  // Returns the id of `term`, creating it on first sight.
  TermId Intern(const std::string& term);

  // Returns the id of `term` or kInvalidTermId when unknown.
  static constexpr TermId kInvalidTermId = 0xffffffffu;
  TermId Find(const std::string& term) const;

  // Interns every string and returns the resulting set.
  KeywordSet InternAll(const std::vector<std::string>& terms);

  const std::string& TermString(TermId id) const;

  // Corpus statistics: call once per object document at load time.
  void RecordDocument(const KeywordSet& doc);

  uint32_t DocumentFrequency(TermId id) const;
  uint32_t num_documents() const { return num_documents_; }
  uint32_t num_terms() const { return static_cast<uint32_t>(terms_.size()); }

  // The particularity of term `t` to an object with keyword set `doc`
  // (Eqn 7): +idf(t) when t ∈ doc, -idf(t) otherwise, where
  // idf(t) = log((|D| - n_t + 0.5) / (n_t + 0.5)).
  double Particularity(const KeywordSet& doc, TermId t) const;

  // idf(t) as above; negative for terms appearing in more than half of the
  // corpus, matching the BM25-style weight the paper adopts.
  double Idf(TermId t) const;

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
  std::vector<uint32_t> doc_frequency_;
  uint32_t num_documents_ = 0;
};

}  // namespace wsk

#endif  // WSK_TEXT_VOCABULARY_H_
