// Term dictionary and corpus statistics.
//
// Maps keyword strings to dense TermIds, tracks per-term document
// frequencies n_t, and computes the IDF-style "particularity" weight of
// Eqn 7, which drives the candidate enumeration order (Section IV-C2) and
// the approximate algorithm's greedy sampling (Section VI-B).
//
// The dictionary is internally synchronized so a live engine can intern
// terms and maintain document frequencies while queries read
// particularities concurrently (docs/SEGMENTS.md). Term strings live in a
// deque, so references returned by TermString stay valid across later
// Intern calls.
#ifndef WSK_TEXT_VOCABULARY_H_
#define WSK_TEXT_VOCABULARY_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/keyword_set.h"

namespace wsk {

class Vocabulary {
 public:
  Vocabulary() = default;

  // Copy/move must be user-provided: the mutex is not copyable. Neither is
  // safe against concurrent mutation of the *destination*; the source is
  // locked while read.
  Vocabulary(const Vocabulary& other);
  Vocabulary& operator=(const Vocabulary& other);
  Vocabulary(Vocabulary&& other) noexcept;
  Vocabulary& operator=(Vocabulary&& other) noexcept;

  // Returns the id of `term`, creating it on first sight.
  TermId Intern(const std::string& term);

  // Returns the id of `term` or kInvalidTermId when unknown.
  static constexpr TermId kInvalidTermId = 0xffffffffu;
  TermId Find(const std::string& term) const;

  // Interns every string and returns the resulting set.
  KeywordSet InternAll(const std::vector<std::string>& terms);

  const std::string& TermString(TermId id) const;

  // Corpus statistics: call once per object document at load time (and on
  // live insert).
  void RecordDocument(const KeywordSet& doc);

  // Inverse of RecordDocument, called when an object is deleted or its
  // document replaced, so Eqn 7 particularities track the logically-current
  // corpus exactly (a from-scratch rebuild must see identical n_t).
  void UnrecordDocument(const KeywordSet& doc);

  uint32_t DocumentFrequency(TermId id) const;
  uint32_t num_documents() const;
  uint32_t num_terms() const;

  // A copy sharing this dictionary's term <-> id mapping but with all
  // document frequencies zeroed. Used to rebuild a reference dataset whose
  // term ids line up with a live engine's, so keyword sets and document
  // frequencies compare bit-for-bit after re-recording.
  Vocabulary CloneDictionary() const;

  // Snapshot of every term's document frequency, indexed by TermId.
  std::vector<uint32_t> DocumentFrequencies() const;

  // The particularity of term `t` to an object with keyword set `doc`
  // (Eqn 7): +idf(t) when t ∈ doc, -idf(t) otherwise, where
  // idf(t) = log((|D| - n_t + 0.5) / (n_t + 0.5)).
  double Particularity(const KeywordSet& doc, TermId t) const;

  // idf(t) as above; negative for terms appearing in more than half of the
  // corpus, matching the BM25-style weight the paper adopts.
  double Idf(TermId t) const;

 private:
  double IdfLocked(TermId t) const;
  uint32_t DocumentFrequencyLocked(TermId id) const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, TermId> index_;
  std::deque<std::string> terms_;
  std::vector<uint32_t> doc_frequency_;
  uint32_t num_documents_ = 0;
};

}  // namespace wsk

#endif  // WSK_TEXT_VOCABULARY_H_
