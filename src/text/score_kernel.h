// Candidate-scoring kernel (docs/PERF.md).
//
// The why-not algorithms score the same few documents against thousands of
// candidate keyword sets, and every candidate is a subset of the small
// universe U = doc0 ∪ M.doc. This kernel turns that structure into near-free
// per-candidate scoring: U is frozen into a bit index (≤ 64 terms), each
// candidate becomes a uint64_t mask over U, and each document is reduced
// once to a *footprint* — its mask over U plus the count of its terms
// outside U. Any (document, candidate) similarity is then two popcounts and
// one divide instead of an O(|doc| + |cand|) sorted merge.
//
// Correctness contract: every kernel score is bit-identical to the scalar
// TextualSimilarity(doc, candidate, model) — the same integer intersection
// and union sizes go through the same floating-point expressions, so ranks,
// thresholds, and tie-breaks cannot drift between the two paths. The
// differential tests enforce this.
//
// Universes larger than kMaxUniverseTerms cannot be represented; Build()
// returns an invalid universe and callers fall back to the scalar path.
#ifndef WSK_TEXT_SCORE_KERNEL_H_
#define WSK_TEXT_SCORE_KERNEL_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "text/keyword_set.h"
#include "text/similarity.h"

namespace wsk {

// A candidate mask is a bitset over the universe terms in sorted order:
// bit i set <=> universe term i is in the candidate.
using CandidateMask = uint64_t;

inline constexpr size_t kMaxUniverseTerms = 64;

// A document reduced against a universe: enough to recover |doc ∩ c| and
// |doc| for any candidate c ⊆ U.
struct Footprint {
  CandidateMask mask = 0;  // doc ∩ U, as universe bits
  uint32_t doc_size = 0;   // |doc|, including terms outside U
};

class CandidateUniverse {
 public:
  CandidateUniverse() = default;  // invalid: always fall back to scalar

  // Freezes `universe` into a bit index. The result is invalid when the
  // universe exceeds kMaxUniverseTerms.
  static CandidateUniverse Build(const KeywordSet& universe);

  bool valid() const { return valid_; }
  size_t size() const { return terms_.size(); }
  TermId term(size_t i) const { return terms_[i]; }

  // Mask covering every universe term (the universe itself as a candidate).
  CandidateMask FullMask() const {
    return terms_.empty() ? 0
                          : (~uint64_t{0} >> (64 - terms_.size()));
  }

  // Mask of a candidate keyword set; the candidate must be a subset of the
  // universe (checked in debug builds).
  CandidateMask MaskOf(const KeywordSet& candidate) const;

  // Footprint of an arbitrary document (terms outside the universe only
  // contribute to doc_size).
  Footprint FootprintOf(const KeywordSet& doc) const;

 private:
  std::vector<TermId> terms_;  // sorted, unique
  bool valid_ = false;
};

// Similarity of the footprinted document against one candidate mask.
// Bit-identical to TextualSimilarity(doc, candidate, model): the same
// integer intersection and union sizes go through the same floating-point
// expressions, term for term. Inline — batches as small as 8 candidates
// are call-overhead-bound otherwise.
inline double ScoreCandidate(const Footprint& fp, CandidateMask candidate,
                             SimilarityModel model) {
  const size_t inter = static_cast<size_t>(std::popcount(fp.mask & candidate));
  const size_t cand_size = static_cast<size_t>(std::popcount(candidate));
  const size_t doc_size = fp.doc_size;
  switch (model) {
    case SimilarityModel::kJaccard: {
      const size_t uni = doc_size + cand_size - inter;
      return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
    }
    case SimilarityModel::kDice: {
      const size_t denom = doc_size + cand_size;
      return denom == 0 ? 0.0 : 2.0 * inter / denom;
    }
    case SimilarityModel::kOverlap: {
      const size_t denom = std::min(doc_size, cand_size);
      return denom == 0 ? 0.0 : static_cast<double>(inter) / denom;
    }
  }
  return 0.0;
}

// Batched form: scores `fp` against `count` candidate masks into `out`
// (sized >= count). One node/object visit amortizes its footprint across an
// entire edit-distance batch of candidates. Specialized per-model loops
// keep the switch out of the hot loop; each iteration is two popcounts and
// one divide, independent across iterations so they pipeline/vectorize.
inline void ScoreAllCandidates(const Footprint& fp,
                               const CandidateMask* candidates, size_t count,
                               SimilarityModel model, double* out) {
  const uint64_t doc_mask = fp.mask;
  const size_t doc_size = fp.doc_size;
  switch (model) {
    case SimilarityModel::kJaccard:
      for (size_t i = 0; i < count; ++i) {
        const size_t inter =
            static_cast<size_t>(std::popcount(doc_mask & candidates[i]));
        const size_t uni = doc_size +
                           static_cast<size_t>(std::popcount(candidates[i])) -
                           inter;
        out[i] = uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
      }
      return;
    case SimilarityModel::kDice:
      for (size_t i = 0; i < count; ++i) {
        const size_t inter =
            static_cast<size_t>(std::popcount(doc_mask & candidates[i]));
        const size_t denom =
            doc_size + static_cast<size_t>(std::popcount(candidates[i]));
        out[i] = denom == 0 ? 0.0 : 2.0 * inter / denom;
      }
      return;
    case SimilarityModel::kOverlap:
      for (size_t i = 0; i < count; ++i) {
        const size_t inter =
            static_cast<size_t>(std::popcount(doc_mask & candidates[i]));
        const size_t denom = std::min(
            doc_size, static_cast<size_t>(std::popcount(candidates[i])));
        out[i] = denom == 0 ? 0.0 : static_cast<double>(inter) / denom;
      }
      return;
  }
  for (size_t i = 0; i < count; ++i) out[i] = 0.0;
}

inline void ScoreAllCandidates(const Footprint& fp,
                               const std::vector<CandidateMask>& candidates,
                               SimilarityModel model,
                               std::vector<double>* out) {
  out->resize(candidates.size());
  ScoreAllCandidates(fp, candidates.data(), candidates.size(), model,
                     out->data());
}

}  // namespace wsk

#endif  // WSK_TEXT_SCORE_KERNEL_H_
