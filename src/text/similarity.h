// Textual similarity models.
//
// The paper's ranking function uses Jaccard similarity (Eqn 2); footnote 1
// notes that the framework extends to other set-based models, so Dice and
// Overlap are provided behind the same interface. Each model also exposes
// the node-level upper bound needed by Theorem 1: given a tree node N with
// union keyword set N_u and intersection keyword set N_i, the similarity of
// any object under N to a query keyword set q is at most
// NodeUpperBound(|N_u ∩ q|, |N_i|, |q|), because |o ∩ q| <= |N_u ∩ q| and
// |o ∪ q| >= |N_i ∪ q|.
#ifndef WSK_TEXT_SIMILARITY_H_
#define WSK_TEXT_SIMILARITY_H_

#include <string>

#include "text/keyword_set.h"

namespace wsk {

enum class SimilarityModel {
  kJaccard,  // |a ∩ b| / |a ∪ b|
  kDice,     // 2|a ∩ b| / (|a| + |b|)
  kOverlap,  // |a ∩ b| / min(|a|, |b|)
};

const char* SimilarityModelName(SimilarityModel model);

// Similarity of two keyword sets in [0, 1]. Two empty sets score 0 (there
// is no textual evidence of a match).
double TextualSimilarity(const KeywordSet& a, const KeywordSet& b,
                         SimilarityModel model = SimilarityModel::kJaccard);

// Theorem 1 upper bound on TextualSimilarity(o, q) for any object o inside
// a node whose union set intersects q in `union_inter_query` terms and
// whose intersection set unions with q to `inter_union_query` terms.
//   Jaccard: |N_u ∩ q| / |N_i ∪ q|
//   Dice:    2 |N_u ∩ q| / (|N_i| + |q|)
//   Overlap: |N_u ∩ q| / max(1, min(|N_i|, |q|))
double NodeSimilarityUpperBound(size_t union_inter_query,
                                size_t inter_union_query, size_t inter_size,
                                size_t query_size,
                                SimilarityModel model =
                                    SimilarityModel::kJaccard);

}  // namespace wsk

#endif  // WSK_TEXT_SIMILARITY_H_
