#include "text/keyword_set.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"

namespace wsk {

KeywordSet::KeywordSet(std::vector<TermId> terms) : terms_(std::move(terms)) {
  std::sort(terms_.begin(), terms_.end());
  terms_.erase(std::unique(terms_.begin(), terms_.end()), terms_.end());
}

KeywordSet KeywordSet::FromSorted(std::vector<TermId> terms) {
  KeywordSet set;
#ifndef NDEBUG
  for (size_t i = 1; i < terms.size(); ++i) WSK_CHECK(terms[i - 1] < terms[i]);
#endif
  set.terms_ = std::move(terms);
  return set;
}

bool KeywordSet::Contains(TermId t) const {
  return std::binary_search(terms_.begin(), terms_.end(), t);
}

size_t KeywordSet::IntersectionSize(const KeywordSet& other) const {
  size_t count = 0;
  auto a = terms_.begin();
  auto b = other.terms_.begin();
  while (a != terms_.end() && b != other.terms_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

KeywordSet KeywordSet::Union(const KeywordSet& other) const {
  std::vector<TermId> out;
  out.reserve(size() + other.size());
  std::set_union(terms_.begin(), terms_.end(), other.terms_.begin(),
                 other.terms_.end(), std::back_inserter(out));
  return FromSorted(std::move(out));
}

KeywordSet KeywordSet::Intersect(const KeywordSet& other) const {
  std::vector<TermId> out;
  std::set_intersection(terms_.begin(), terms_.end(), other.terms_.begin(),
                        other.terms_.end(), std::back_inserter(out));
  return FromSorted(std::move(out));
}

KeywordSet KeywordSet::Subtract(const KeywordSet& other) const {
  std::vector<TermId> out;
  std::set_difference(terms_.begin(), terms_.end(), other.terms_.begin(),
                      other.terms_.end(), std::back_inserter(out));
  return FromSorted(std::move(out));
}

KeywordSet KeywordSet::With(TermId t) const {
  if (Contains(t)) return *this;
  std::vector<TermId> out = terms_;
  out.insert(std::upper_bound(out.begin(), out.end(), t), t);
  return FromSorted(std::move(out));
}

KeywordSet KeywordSet::Without(TermId t) const {
  std::vector<TermId> out = terms_;
  auto it = std::lower_bound(out.begin(), out.end(), t);
  if (it != out.end() && *it == t) out.erase(it);
  return FromSorted(std::move(out));
}

void KeywordSet::Serialize(std::vector<uint8_t>* out) const {
  const size_t base = out->size();
  out->resize(base + SerializedSize());
  const uint32_t count = static_cast<uint32_t>(terms_.size());
  std::memcpy(out->data() + base, &count, 4);
  if (count > 0) {
    std::memcpy(out->data() + base + 4, terms_.data(), 4 * terms_.size());
  }
}

KeywordSet KeywordSet::Deserialize(const uint8_t* data, size_t size) {
  WSK_CHECK(size >= 4);
  uint32_t count;
  std::memcpy(&count, data, 4);
  WSK_CHECK(size >= 4 + 4ull * count);
  std::vector<TermId> terms(count);
  if (count > 0) std::memcpy(terms.data(), data + 4, 4ull * count);
  return FromSorted(std::move(terms));
}

std::string KeywordSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(terms_[i]);
  }
  out += "}";
  return out;
}

size_t EditDistance(const KeywordSet& from, const KeywordSet& to) {
  const size_t common = from.IntersectionSize(to);
  return (from.size() - common) + (to.size() - common);
}

}  // namespace wsk
