#include "text/keyword_set.h"

#include <algorithm>
#include <bit>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/macros.h"

namespace wsk {

namespace internal {

size_t IntersectionSizeScalar(const TermId* a, size_t na, const TermId* b,
                              size_t nb) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

size_t IntersectionSizeGalloping(const TermId* s, size_t ns, const TermId* l,
                                 size_t nl) {
  size_t count = 0;
  size_t base = 0;
  for (size_t i = 0; i < ns && base < nl; ++i) {
    const TermId t = s[i];
    // Exponential probe from the previous match position, then a binary
    // search inside the bracketed window.
    size_t offset = 0;
    size_t step = 1;
    while (base + step < nl && l[base + step] < t) {
      offset = step;
      step <<= 1;
    }
    const TermId* it = std::lower_bound(
        l + base + offset, l + std::min(nl, base + step + 1), t);
    base = static_cast<size_t>(it - l);
    if (base < nl && l[base] == t) {
      ++count;
      ++base;
    }
  }
  return count;
}

size_t IntersectionSizeBlock(const TermId* a, size_t na, const TermId* b,
                             size_t nb) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
#if defined(__AVX2__)
  // Compare an 8-lane block of `a` against all 8 rotations of a block of
  // `b`; sets are duplicate-free, so each lane matches at most once and the
  // OR-reduced compare mask counts matches exactly.
  const __m256i rotate1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i cmp = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      vb = _mm256_permutevar8x32_epi32(vb, rotate1);
      cmp = _mm256_or_si256(cmp, _mm256_cmpeq_epi32(va, vb));
    }
    count += static_cast<size_t>(std::popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(cmp)))));
    const TermId amax = a[i + 7];
    const TermId bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
#endif
#if defined(__SSE2__)
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i cmp = _mm_cmpeq_epi32(va, vb);
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2,
                                                                   1))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3,
                                                                   2))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0,
                                                                   3))));
    count += static_cast<size_t>(std::popcount(
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(cmp)))));
    const TermId amax = a[i + 3];
    const TermId bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
#endif
  return count + IntersectionSizeScalar(a + i, na - i, b + j, nb - j);
}

}  // namespace internal

KeywordSet::KeywordSet(std::vector<TermId> terms) : terms_(std::move(terms)) {
  std::sort(terms_.begin(), terms_.end());
  terms_.erase(std::unique(terms_.begin(), terms_.end()), terms_.end());
}

KeywordSet KeywordSet::FromSorted(std::vector<TermId> terms) {
  KeywordSet set;
#ifndef NDEBUG
  for (size_t i = 1; i < terms.size(); ++i) WSK_CHECK(terms[i - 1] < terms[i]);
#endif
  set.terms_ = std::move(terms);
  return set;
}

bool KeywordSet::Contains(TermId t) const {
  return std::binary_search(terms_.begin(), terms_.end(), t);
}

size_t KeywordSet::IntersectionSize(const KeywordSet& other) const {
  const TermId* a = terms_.data();
  const TermId* b = other.terms_.data();
  size_t na = terms_.size();
  size_t nb = other.terms_.size();
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na == 0) return 0;
  // Heavily skewed sizes: gallop through the large set. Comparable sizes
  // big enough to fill SIMD blocks: block compare. Otherwise the plain
  // merge wins on setup cost.
  if (na * 16 < nb) return internal::IntersectionSizeGalloping(a, na, b, nb);
  if (na >= 8) return internal::IntersectionSizeBlock(a, na, b, nb);
  return internal::IntersectionSizeScalar(a, na, b, nb);
}

KeywordSet KeywordSet::Union(const KeywordSet& other) const {
  std::vector<TermId> out;
  out.reserve(size() + other.size());
  std::set_union(terms_.begin(), terms_.end(), other.terms_.begin(),
                 other.terms_.end(), std::back_inserter(out));
  return FromSorted(std::move(out));
}

KeywordSet KeywordSet::Intersect(const KeywordSet& other) const {
  std::vector<TermId> out;
  std::set_intersection(terms_.begin(), terms_.end(), other.terms_.begin(),
                        other.terms_.end(), std::back_inserter(out));
  return FromSorted(std::move(out));
}

KeywordSet KeywordSet::Subtract(const KeywordSet& other) const {
  std::vector<TermId> out;
  std::set_difference(terms_.begin(), terms_.end(), other.terms_.begin(),
                      other.terms_.end(), std::back_inserter(out));
  return FromSorted(std::move(out));
}

KeywordSet KeywordSet::With(TermId t) const {
  if (Contains(t)) return *this;
  std::vector<TermId> out = terms_;
  out.insert(std::upper_bound(out.begin(), out.end(), t), t);
  return FromSorted(std::move(out));
}

KeywordSet KeywordSet::Without(TermId t) const {
  std::vector<TermId> out = terms_;
  auto it = std::lower_bound(out.begin(), out.end(), t);
  if (it != out.end() && *it == t) out.erase(it);
  return FromSorted(std::move(out));
}

void KeywordSet::Serialize(std::vector<uint8_t>* out) const {
  const size_t base = out->size();
  out->resize(base + SerializedSize());
  const uint32_t count = static_cast<uint32_t>(terms_.size());
  std::memcpy(out->data() + base, &count, 4);
  if (count > 0) {
    std::memcpy(out->data() + base + 4, terms_.data(), 4 * terms_.size());
  }
}

KeywordSet KeywordSet::Deserialize(const uint8_t* data, size_t size) {
  WSK_CHECK(size >= 4);
  uint32_t count;
  std::memcpy(&count, data, 4);
  WSK_CHECK(size >= 4 + 4ull * count);
  std::vector<TermId> terms(count);
  if (count > 0) std::memcpy(terms.data(), data + 4, 4ull * count);
  return FromSorted(std::move(terms));
}

std::string KeywordSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(terms_[i]);
  }
  out += "}";
  return out;
}

size_t EditDistance(const KeywordSet& from, const KeywordSet& to) {
  const size_t common = from.IntersectionSize(to);
  return (from.size() - common) + (to.size() - common);
}

}  // namespace wsk
