#include "text/similarity.h"

#include <algorithm>

namespace wsk {

const char* SimilarityModelName(SimilarityModel model) {
  switch (model) {
    case SimilarityModel::kJaccard:
      return "jaccard";
    case SimilarityModel::kDice:
      return "dice";
    case SimilarityModel::kOverlap:
      return "overlap";
  }
  return "unknown";
}

double TextualSimilarity(const KeywordSet& a, const KeywordSet& b,
                         SimilarityModel model) {
  const size_t inter = a.IntersectionSize(b);
  switch (model) {
    case SimilarityModel::kJaccard: {
      const size_t uni = a.size() + b.size() - inter;
      return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
    }
    case SimilarityModel::kDice: {
      const size_t denom = a.size() + b.size();
      return denom == 0 ? 0.0 : 2.0 * inter / denom;
    }
    case SimilarityModel::kOverlap: {
      const size_t denom = std::min(a.size(), b.size());
      return denom == 0 ? 0.0 : static_cast<double>(inter) / denom;
    }
  }
  return 0.0;
}

double NodeSimilarityUpperBound(size_t union_inter_query,
                                size_t inter_union_query, size_t inter_size,
                                size_t query_size, SimilarityModel model) {
  // TextualSimilarity never exceeds 1, so any bound above 1 is slack: clamp
  // it. Without the clamp the kOverlap branch (and kDice when |N_i| < |q|)
  // returns > 1 whenever union_inter_query exceeds the denominator, which
  // inflates node priorities and deepens best-first search for nothing.
  switch (model) {
    case SimilarityModel::kJaccard:
      // With consistent inputs |N_u ∩ q| <= |q| <= |N_i ∪ q| the ratio is
      // already <= 1; the clamp makes the [0, 1] contract unconditional.
      return inter_union_query == 0
                 ? 0.0
                 : std::min(1.0, static_cast<double>(union_inter_query) /
                                     inter_union_query);
    case SimilarityModel::kDice: {
      const size_t denom = inter_size + query_size;
      return denom == 0
                 ? 0.0
                 : std::min(1.0, 2.0 * union_inter_query / denom);
    }
    case SimilarityModel::kOverlap: {
      // Any object's doc has at least |N_i| terms but could be as small as
      // max(1, |N_i|); the query size is fixed.
      const size_t denom = std::max<size_t>(
          1, std::min(inter_size == 0 ? 1 : inter_size, query_size));
      return std::min(1.0, static_cast<double>(union_inter_query) / denom);
    }
  }
  return 1.0;
}

}  // namespace wsk
