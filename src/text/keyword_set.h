// Keyword sets: the textual side of spatial web objects and queries.
//
// A KeywordSet is an immutable-ish sorted, duplicate-free vector of term
// ids. All set algebra used by the paper lives here: intersection/union
// sizes for Jaccard (Eqn 2), set difference for candidate generation, and
// the insertion/deletion edit distance of the penalty model (Eqn 4).
#ifndef WSK_TEXT_KEYWORD_SET_H_
#define WSK_TEXT_KEYWORD_SET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace wsk {

using TermId = uint32_t;

class KeywordSet {
 public:
  KeywordSet() = default;
  KeywordSet(std::initializer_list<TermId> terms)
      : KeywordSet(std::vector<TermId>(terms)) {}
  // Sorts and deduplicates.
  explicit KeywordSet(std::vector<TermId> terms);

  // Wraps a vector that is already sorted and unique (checked in debug).
  static KeywordSet FromSorted(std::vector<TermId> terms);

  bool Contains(TermId t) const;
  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

  const std::vector<TermId>& terms() const { return terms_; }
  auto begin() const { return terms_.begin(); }
  auto end() const { return terms_.end(); }

  size_t IntersectionSize(const KeywordSet& other) const;
  size_t UnionSize(const KeywordSet& other) const {
    return size() + other.size() - IntersectionSize(other);
  }

  KeywordSet Union(const KeywordSet& other) const;
  KeywordSet Intersect(const KeywordSet& other) const;
  // Terms in this set that are not in `other`.
  KeywordSet Subtract(const KeywordSet& other) const;

  // Returns a copy with `t` added / removed.
  KeywordSet With(TermId t) const;
  KeywordSet Without(TermId t) const;

  // Serialization: little-endian u32 count followed by the sorted term ids.
  void Serialize(std::vector<uint8_t>* out) const;
  static KeywordSet Deserialize(const uint8_t* data, size_t size);
  size_t SerializedSize() const { return 4 + 4 * terms_.size(); }

  std::string ToString() const;  // "{1, 5, 9}"

  friend bool operator==(const KeywordSet& a, const KeywordSet& b) {
    return a.terms_ == b.terms_;
  }
  friend bool operator<(const KeywordSet& a, const KeywordSet& b) {
    return a.terms_ < b.terms_;
  }

 private:
  std::vector<TermId> terms_;
};

// Number of insert/delete operations turning `from` into `to`
// (= |from \ to| + |to \ from|); the paper's ED(doc0, doc').
size_t EditDistance(const KeywordSet& from, const KeywordSet& to);

namespace internal {

// The individual intersection paths behind KeywordSet::IntersectionSize,
// exposed so tests and benches can pin each against the others. All inputs
// are sorted and duplicate-free.

// Linear two-pointer merge (the reference).
size_t IntersectionSizeScalar(const TermId* a, size_t na, const TermId* b,
                              size_t nb);

// Exponential (galloping) search of the larger array per element of the
// smaller; wins when the sizes are heavily skewed. Requires ns <= nl.
size_t IntersectionSizeGalloping(const TermId* s, size_t ns, const TermId* l,
                                 size_t nl);

// Block compare over 4-wide (SSE2) / 8-wide (AVX2, when compiled in)
// chunks; portable scalar fallback on other targets. Wins for comparable
// sizes.
size_t IntersectionSizeBlock(const TermId* a, size_t na, const TermId* b,
                             size_t nb);

}  // namespace internal

}  // namespace wsk

#endif  // WSK_TEXT_KEYWORD_SET_H_
