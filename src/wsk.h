// Umbrella header: the library's public API in one include.
//
//   #include "wsk.h"
//
//   wsk::Dataset data = ...;
//   auto engine = wsk::WhyNotEngine::Build(&data, {}).value();
//   auto answer = engine->Answer(wsk::WhyNotAlgorithm::kKcrBased, query,
//                                {missing_id}, {}).value();
//
// Individual headers remain includable on their own; this file is a
// convenience for applications.
#ifndef WSK_WSK_H_
#define WSK_WSK_H_

#include "common/cancel.h"        // cooperative cancellation / deadlines
#include "common/geometry.h"      // Point, Rect, distances
#include "common/status.h"        // Status, StatusOr
#include "core/alpha_refinement.h"     // preference adaption ([8])
#include "core/engine.h"               // WhyNotEngine facade
#include "core/explain.h"              // miss explanations
#include "core/integrated.h"           // keyword vs preference answering
#include "core/location_refinement.h"  // location adaption (future work)
#include "core/whynot.h"               // options & result types
#include "data/dataset.h"         // the object table
#include "data/dataset_io.h"      // CSV import/export
#include "data/generator.h"       // EURO/GN-like synthesis
#include "data/query.h"           // spatial keyword query semantics
#include "data/stats.h"           // Table II-style statistics
#include "index/batch_topk.h"     // multi-query shared traversal
#include "index/inverted_grid_index.h"  // related-work baseline index
#include "index/kcr_tree.h"       // Section V index
#include "index/setr_tree.h"      // Section IV index
#include "index/topk.h"           // incremental top-k
#include "index/verify.h"         // index fsck
#include "service/metrics.h"        // counters + latency histograms
#include "service/query_service.h"  // concurrent service front end
#include "service/result_cache.h"   // shared LRU result cache
#include "text/keyword_set.h"     // keyword-set algebra
#include "text/similarity.h"      // Jaccard / Dice / Overlap
#include "text/vocabulary.h"      // term dictionary + particularity

#endif  // WSK_WSK_H_
