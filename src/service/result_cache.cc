#include "service/result_cache.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace wsk {

namespace {

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

// Quantizes a real parameter so that equal-up-to-noise values collide.
int64_t Quantize(double v, double quantum) {
  return static_cast<int64_t>(std::llround(v / quantum));
}

void AppendQueryCore(std::string* out, const SpatialKeywordQuery& query,
                     double location_quantum) {
  WSK_CHECK(location_quantum > 0.0);
  AppendI64(out, Quantize(query.loc.x, location_quantum));
  AppendI64(out, Quantize(query.loc.y, location_quantum));
  AppendU64(out, query.k);
  AppendI64(out, Quantize(query.alpha, 1e-9));
  AppendU64(out, static_cast<uint64_t>(query.model));
  // KeywordSet is sorted and deduplicated by construction: canonical.
  AppendU64(out, query.doc.size());
  for (TermId t : query.doc) AppendU64(out, t);
}

}  // namespace

std::string FingerprintTopK(const SpatialKeywordQuery& query,
                            double location_quantum,
                            uint64_t dataset_version) {
  std::string key;
  key.push_back('T');
  AppendU64(&key, dataset_version);
  AppendQueryCore(&key, query, location_quantum);
  return key;
}

std::string FingerprintWhyNot(WhyNotAlgorithm algorithm,
                              const SpatialKeywordQuery& query,
                              const std::vector<ObjectId>& missing,
                              const WhyNotOptions& options,
                              double location_quantum,
                              uint64_t dataset_version) {
  std::string key;
  key.push_back('W');
  key.push_back(static_cast<char>(algorithm));
  AppendU64(&key, dataset_version);
  AppendQueryCore(&key, query, location_quantum);
  std::vector<ObjectId> sorted = missing;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  AppendU64(&key, sorted.size());
  for (ObjectId id : sorted) AppendU64(&key, id);
  AppendI64(&key, Quantize(options.lambda, 1e-9));
  AppendU64(&key, options.sample_size);
  return key;
}

std::shared_ptr<const ResultCache::Entry> ResultCache::Lookup(
    const std::string& key, const Validator& validator) {
  if (capacity_ == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (validator != nullptr && !validator(*it->second.entry)) {
    lru_.erase(it->second.lru_it);
    map_.erase(it);
    ++stats_.stale;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.entry;
}

void ResultCache::Insert(const std::string& key,
                         std::shared_ptr<const Entry> entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh: concurrent misses on the same key both compute and insert.
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  map_[key] = Slot{std::move(entry), lru_.begin()};
  ++stats_.insertions;
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace wsk
