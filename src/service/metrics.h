// Lock-free service metrics: named atomic counters and fixed-bucket
// latency histograms with percentile snapshots.
//
// The registry is the observability surface of the query service: every
// request increments a handful of counters and records one histogram
// sample, so the write path must be wait-free (relaxed atomics, no
// allocation). Reads (snapshots, the formatted report) are rare and may
// be mildly inconsistent across metrics — each individual counter and
// bucket is exact.
#ifndef WSK_SERVICE_METRICS_H_
#define WSK_SERVICE_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "observability/histogram.h"

namespace wsk {

// A monotone event counter. Writers never contend on anything but the
// cache line of the atomic itself.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Latency histogram over fixed exponential buckets: bucket i holds samples
// in (2^(i-1), 2^i] microseconds, covering 1 us .. ~17 min. Percentiles
// are read from the bucket boundaries, so their resolution is a factor of
// two — ample for p50/p95/p99 tail reporting, and in exchange Record() is
// two relaxed fetch_adds and a handful of bit operations. The bucket and
// quantile math lives in observability/histogram.h, shared with the rolling
// telemetry windows so windowed and cumulative quantiles can never diverge.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = kLatencyBuckets;

  struct Snapshot {
    uint64_t count = 0;
    double sum_ms = 0.0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;  // largest sample observed (exact, not a bucket bound)
    uint64_t bucket_counts[kNumBuckets] = {};  // per-bucket sample counts
  };

  void Record(double ms);
  Snapshot TakeSnapshot() const;

  // Upper bound of bucket `i` in milliseconds (bucket i covers
  // (2^(i-1), 2^i] microseconds). Exposed for exporters that need the
  // boundary values, e.g. Prometheus `le` labels.
  static double BucketBoundMs(size_t i);

 private:
  static size_t BucketFor(double ms);

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_us_{0};
  // True observed maximum, maintained with a relaxed CAS loop; a bucket
  // bound would overstate the max by up to 2x.
  std::atomic<double> max_ms_{0.0};
};

// Name -> metric registry. counter()/histogram() intern the name on first
// use and return a stable reference; the returned objects live as long as
// the registry, so hot paths should look a metric up once and keep the
// reference.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  // Human-readable dump, one metric per line, sorted by name.
  std::string Report() const;

  // Prometheus text exposition (version 0.0.4) of every registered metric.
  // Counter `a.b.c` becomes `wsk_a_b_c_total`; histogram `a.b.ms` becomes
  // `wsk_a_b_ms` with cumulative `_bucket{le=...}` series (seconds),
  // `_sum`/`_count`, and a `wsk_..._max` gauge for the observed maximum.
  std::string PrometheusText() const;

 private:
  mutable std::mutex mu_;  // guards the maps, not the metrics themselves
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace wsk

#endif  // WSK_SERVICE_METRICS_H_
