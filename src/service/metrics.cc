#include "service/metrics.h"

#include <cmath>
#include <cstdio>

namespace wsk {

namespace {

// Prometheus metric names admit [a-zA-Z0-9_:]; our dotted registry names
// map dots (and anything else) to underscores, prefixed with wsk_.
std::string PrometheusName(const std::string& name) {
  std::string out = "wsk_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

size_t LatencyHistogram::BucketFor(double ms) { return LatencyBucketIndex(ms); }

double LatencyHistogram::BucketBoundMs(size_t i) {
  return LatencyBucketBoundMs(i);
}

void LatencyHistogram::Record(double ms) {
  buckets_[BucketFor(ms)].fetch_add(1, std::memory_order_relaxed);
  const double us = ms > 0.0 ? ms * 1000.0 : 0.0;
  sum_us_.fetch_add(static_cast<uint64_t>(us), std::memory_order_relaxed);
  // Keep the true maximum (not the bucket bound). Lost CAS races only
  // happen when another writer installed a value at least as large.
  double seen = max_ms_.load(std::memory_order_relaxed);
  const double sample = ms > 0.0 ? ms : 0.0;
  while (sample > seen &&
         !max_ms_.compare_exchange_weak(seen, sample,
                                        std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  Snapshot snap;
  snap.count = total;
  snap.sum_ms =
      static_cast<double>(sum_us_.load(std::memory_order_relaxed)) / 1000.0;
  for (size_t i = 0; i < kNumBuckets; ++i) snap.bucket_counts[i] = counts[i];
  if (total == 0) return snap;
  snap.mean_ms = snap.sum_ms / static_cast<double>(total);
  snap.p50_ms = LatencyQuantileMs(counts, total, 0.50);
  snap.p95_ms = LatencyQuantileMs(counts, total, 0.95);
  snap.p99_ms = LatencyQuantileMs(counts, total, 0.99);
  snap.max_ms = max_ms_.load(std::memory_order_relaxed);
  return snap;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<LatencyHistogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

std::string MetricsRegistry::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(line, sizeof(line), "counter   %-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter->value()));
    out += line;
  }
  for (const auto& [name, histogram] : histograms_) {
    const LatencyHistogram::Snapshot s = histogram->TakeSnapshot();
    std::snprintf(line, sizeof(line),
                  "histogram %-32s count %llu mean %.3f ms p50 %.3f ms "
                  "p95 %.3f ms p99 %.3f ms max %.3f ms\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.mean_ms, s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms);
    out += line;
  }
  return out;
}

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [name, counter] : counters_) {
    const std::string pname = PrometheusName(name) + "_total";
    out += "# HELP " + pname + " Cumulative count of " + name + " events.\n";
    out += "# TYPE " + pname + " counter\n";
    std::snprintf(line, sizeof(line), "%s %llu\n", pname.c_str(),
                  static_cast<unsigned long long>(counter->value()));
    out += line;
  }
  for (const auto& [name, histogram] : histograms_) {
    const LatencyHistogram::Snapshot s = histogram->TakeSnapshot();
    const std::string pname = PrometheusName(name);
    out += "# HELP " + pname + " Distribution of " + name +
           " samples (seconds).\n";
    out += "# TYPE " + pname + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      cumulative += s.bucket_counts[i];
      // Bucket bounds are milliseconds internally; Prometheus convention
      // for *_seconds-style latencies is seconds, so convert.
      std::snprintf(line, sizeof(line), "%s_bucket{le=\"%.9g\"} %llu\n",
                    pname.c_str(), LatencyHistogram::BucketBoundMs(i) / 1000.0,
                    static_cast<unsigned long long>(cumulative));
      out += line;
    }
    std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %llu\n",
                  pname.c_str(), static_cast<unsigned long long>(s.count));
    out += line;
    std::snprintf(line, sizeof(line), "%s_sum %.9g\n", pname.c_str(),
                  s.sum_ms / 1000.0);
    out += line;
    std::snprintf(line, sizeof(line), "%s_count %llu\n", pname.c_str(),
                  static_cast<unsigned long long>(s.count));
    out += line;
    out += "# HELP " + pname + "_max Largest observed " + name +
           " sample (seconds).\n";
    out += "# TYPE " + pname + "_max gauge\n";
    std::snprintf(line, sizeof(line), "%s_max %.9g\n", pname.c_str(),
                  s.max_ms / 1000.0);
    out += line;
  }
  return out;
}

}  // namespace wsk
