#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/macros.h"
#include "common/timer.h"
#include "common/version.h"

namespace wsk {

QueryService::QueryService(const QueryBackend* backend,
                           const QueryServiceConfig& config)
    : backend_(backend),
      config_(config),
      cache_(config.cache_capacity),
      requests_total_(metrics_.counter("requests.total")),
      requests_topk_(metrics_.counter("requests.topk")),
      requests_whynot_(metrics_.counter("requests.whynot")),
      responses_ok_(metrics_.counter("responses.ok")),
      responses_rejected_(metrics_.counter("responses.rejected_overload")),
      responses_cancelled_(metrics_.counter("responses.cancelled")),
      responses_deadline_(metrics_.counter("responses.deadline_exceeded")),
      responses_error_(metrics_.counter("responses.error")),
      io_setr_physical_(metrics_.counter("io.setr.physical_reads")),
      io_kcr_physical_(metrics_.counter("io.kcr.physical_reads")),
      io_setr_logical_(metrics_.counter("io.setr.logical_reads")),
      io_kcr_logical_(metrics_.counter("io.kcr.logical_reads")),
      io_setr_mapped_(metrics_.counter("io.setr.mapped_reads")),
      io_kcr_mapped_(metrics_.counter("io.kcr.mapped_reads")),
      io_setr_node_cache_hits_(metrics_.counter("io.setr.node_cache_hits")),
      io_kcr_node_cache_hits_(metrics_.counter("io.kcr.node_cache_hits")),
      io_setr_node_cache_misses_(
          metrics_.counter("io.setr.node_cache_misses")),
      io_kcr_node_cache_misses_(metrics_.counter("io.kcr.node_cache_misses")),
      latency_topk_(metrics_.histogram("latency.topk.ms")),
      latency_whynot_(metrics_.histogram("latency.whynot.ms")),
      mutations_insert_(metrics_.counter("mutations.insert")),
      mutations_update_(metrics_.counter("mutations.update")),
      mutations_delete_(metrics_.counter("mutations.delete")),
      mutations_failed_(metrics_.counter("mutations.failed")),
      latency_mutation_(metrics_.histogram("latency.mutation.ms")),
      batch_batches_(metrics_.counter("batch.batches")),
      batch_queries_(metrics_.counter("batch.queries")),
      batch_dedup_(metrics_.counter("batch.dedup")),
      batch_fallback_solo_(metrics_.counter("batch.fallback_solo")),
      batch_occupancy_(metrics_.histogram("batch.occupancy")),
      batch_window_wait_(metrics_.histogram("batch.window_wait.ms")),
      trace_dropped_(metrics_.counter("trace.dropped_events")),
      bg_collector_dispatches_(metrics_.counter("bg.collector.dispatches")),
      bg_collector_exec_(metrics_.histogram("bg.collector.exec.ms")) {
  WSK_CHECK_MSG(backend_ != nullptr, "QueryService requires a backend");
  WSK_CHECK_MSG(config_.num_workers >= 1,
                "QueryService requires at least one worker (got %d)",
                config_.num_workers);
  WSK_CHECK(config_.cache_location_quantum > 0.0);
  if (config_.collect_stage_metrics) {
    for (size_t i = 0; i < kNumTraceStages; ++i) {
      stage_hist_[i] = &metrics_.histogram(
          std::string("stage.") +
          TraceStageName(static_cast<TraceStage>(i)) + ".ms");
    }
    for (size_t i = 0; i < kNumTraceCounters; ++i) {
      prune_counter_[i] = &metrics_.counter(
          std::string("prune.") +
          TraceCounterName(static_cast<TraceCounter>(i)));
    }
  }
  if (config_.telemetry.enabled) {
    telemetry_ = std::make_unique<TelemetryHub>(config_.telemetry);
  }
  pool_ = std::make_unique<ThreadPool>(config_.num_workers, config_.max_queue);
  if (config_.batch_max_size > 1) {
    batch_collector_ = std::thread([this] { BatchCollectorLoop(); });
  }
}

QueryService::~QueryService() {
  // Stop the collector first: it flushes whatever is still pending into
  // the pool on its way out, and must not touch the pool after reset.
  if (batch_collector_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(batch_mu_);
      batch_stop_ = true;
    }
    batch_cv_.notify_all();
    batch_collector_.join();
  }
  // ThreadPool's destructor drains the queue and joins, so every admitted
  // request fulfils its promise before the service's members go away.
  pool_.reset();
}

bool QueryService::Admit() {
  requests_total_.Increment();
  const int64_t admitted = inflight_.fetch_add(1, std::memory_order_relaxed);
  if (config_.max_inflight > 0 &&
      admitted >= static_cast<int64_t>(config_.max_inflight)) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    responses_rejected_.Increment();
    if (telemetry_ != nullptr) telemetry_->ReportShed();
    return false;
  }
  return true;
}

CancelToken QueryService::EffectiveToken(const RequestOptions& opts) const {
  const double timeout_ms =
      opts.timeout_ms < 0.0 ? config_.default_timeout_ms : opts.timeout_ms;
  if (timeout_ms > 0.0) {
    // Observes the client's token (if any) AND the deadline. A null client
    // token derives into a plain deadline token.
    return opts.cancel.DeriveWithTimeout(timeout_ms);
  }
  return opts.cancel;
}

void QueryService::AccountStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      responses_ok_.Increment();
      return;
    case StatusCode::kCancelled:
      responses_cancelled_.Increment();
      return;
    case StatusCode::kDeadlineExceeded:
      responses_deadline_.Increment();
      return;
    default:
      responses_error_.Increment();
      return;
  }
}

QueryService::IoSnapshot QueryService::TakeIoSnapshot() const {
  return backend_->io_snapshot();
}

QueryService::IoDelta QueryService::AccountIo(const IoSnapshot& before) {
  const IoSnapshot after = TakeIoSnapshot();
  io_setr_physical_.Increment(after.setr_physical - before.setr_physical);
  io_kcr_physical_.Increment(after.kcr_physical - before.kcr_physical);
  io_setr_logical_.Increment(after.setr_logical - before.setr_logical);
  io_kcr_logical_.Increment(after.kcr_logical - before.kcr_logical);
  io_setr_mapped_.Increment(after.setr_mapped - before.setr_mapped);
  io_kcr_mapped_.Increment(after.kcr_mapped - before.kcr_mapped);
  io_setr_node_cache_hits_.Increment(after.setr_cache_hits -
                                     before.setr_cache_hits);
  io_kcr_node_cache_hits_.Increment(after.kcr_cache_hits -
                                    before.kcr_cache_hits);
  io_setr_node_cache_misses_.Increment(after.setr_cache_misses -
                                       before.setr_cache_misses);
  io_kcr_node_cache_misses_.Increment(after.kcr_cache_misses -
                                      before.kcr_cache_misses);
  IoDelta delta;
  delta.physical = (after.setr_physical - before.setr_physical) +
                   (after.kcr_physical - before.kcr_physical);
  delta.mapped = (after.setr_mapped - before.setr_mapped) +
                 (after.kcr_mapped - before.kcr_mapped);
  delta.cache_hits = (after.setr_cache_hits - before.setr_cache_hits) +
                     (after.kcr_cache_hits - before.kcr_cache_hits);
  return delta;
}

void QueryService::AbsorbTrace(const TraceRecorder& trace) {
  trace_dropped_.Increment(trace.dropped_events());
  // Stage/prune interning only happens under collect_stage_metrics; a
  // telemetry-only recorder still accounts its drops above.
  if (stage_hist_[0] == nullptr) return;
  for (size_t i = 0; i < kNumTraceStages; ++i) {
    if (trace.StageCount(static_cast<TraceStage>(i)) == 0) continue;
    stage_hist_[i]->Record(
        static_cast<double>(trace.StageTotalUs(static_cast<TraceStage>(i))) /
        1000.0);
  }
  for (size_t i = 0; i < kNumTraceCounters; ++i) {
    const uint64_t v = trace.counter(static_cast<TraceCounter>(i));
    if (v > 0) prune_counter_[i]->Increment(v);
  }
}

std::future<StatusOr<QueryService::TopKResponse>> QueryService::SubmitTopK(
    const SpatialKeywordQuery& query, const RequestOptions& opts) {
  requests_topk_.Increment();
  auto promise = std::make_shared<std::promise<StatusOr<TopKResponse>>>();
  std::future<StatusOr<TopKResponse>> future = promise->get_future();

  if (!Admit()) {
    promise->set_value(Status::ResourceExhausted(
        "query service overloaded: max_inflight reached"));
    return future;
  }

  CancelToken token = EffectiveToken(opts);
  const std::string key =
      opts.bypass_cache
          ? std::string()
          : FingerprintTopK(query, config_.cache_location_quantum,
                            backend_->topology_fingerprint());

  if (config_.batch_max_size > 1) {
    const Timer timer;
    // Cache lookup happens BEFORE the request enqueues into the
    // collector: a hit is answered immediately and never waits out the
    // collection window, and a pending request always needs computing.
    if (!key.empty()) {
      if (std::shared_ptr<const ResultCache::Entry> hit = cache_.Lookup(
              key, [this, &query](const ResultCache::Entry& e) {
                return backend_->TopKCacheValid(e.versions, query, e.topk);
              })) {
        TopKResponse response;
        response.results = hit->topk;
        response.cache_hit = true;
        response.latency_ms = timer.ElapsedMillis();
        AccountStatus(Status());
        latency_topk_.Record(response.latency_ms);
        if (telemetry_ != nullptr) {
          QueryProfile profile;
          profile.kind = ProfileKind::kTopK;
          profile.algorithm = "topk";
          profile.fingerprint = std::hash<std::string>{}(key);
          profile.status = StatusCodeName(StatusCode::kOk);
          profile.ok = true;
          profile.cache_hit = true;
          profile.wall_ms = response.latency_ms;
          telemetry_->Report(std::move(profile), nullptr);
        }
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        promise->set_value(std::move(response));
        return future;
      }
    }
    PendingTopK item;
    item.promise = promise;
    item.query = query;
    item.token = std::move(token);
    item.key = key;
    item.timer = timer;
    {
      std::lock_guard<std::mutex> lock(batch_mu_);
      batch_queue_.push_back(std::move(item));
    }
    batch_cv_.notify_one();
    return future;
  }

  auto task = [this, promise, query, token = std::move(token), key,
               bypass_cache = opts.bypass_cache, timer = Timer()]() {
    StatusOr<TopKResponse> outcome =
        Status::Internal("query task did not produce a result");
    // Sampling decision up front: every sample_every'th request gets an
    // event-capacity recorder; the rest get the capacity-0 aggregation
    // recorder (stage totals and pruning counters, no event buffer).
    const size_t event_capacity =
        telemetry_ != nullptr ? telemetry_->NextEventCapacity() : 0;
    TraceRecorder stage_trace(event_capacity);
    TraceRecorder* const trace =
        (config_.collect_stage_metrics || telemetry_ != nullptr)
            ? &stage_trace
            : nullptr;
    bool executed = false;
    bool cache_hit = false;
    double exec_ms = 0.0;
    IoDelta io;
    try {
      outcome = [&]() -> StatusOr<TopKResponse> {
        // Fail fast: a request that was cancelled, or sat in the queue past
        // its deadline, is rejected before any work — including the cache
        // lookup, since its client is no longer waiting for an answer.
        WSK_RETURN_IF_ERROR(token.Check());
        TopKResponse response;
        std::vector<uint64_t> versions;
        if (!bypass_cache) {
          if (std::shared_ptr<const ResultCache::Entry> hit = cache_.Lookup(
                  key, [this, &query](const ResultCache::Entry& e) {
                    return backend_->TopKCacheValid(e.versions, query, e.topk);
                  })) {
            response.results = hit->topk;
            response.cache_hit = true;
            cache_hit = true;
            return response;
          }
          // Captured before the query runs: a mutation racing the
          // computation makes the entry look staler than it is, never
          // fresher.
          versions = backend_->version_vector();
        }
        const IoSnapshot io_before = TakeIoSnapshot();
        const Timer exec_timer;
        executed = true;
        StatusOr<std::vector<ScoredObject>> results =
            backend_->TopK(query, &token, trace);
        exec_ms = exec_timer.ElapsedMillis();
        if (trace != nullptr) AbsorbTrace(stage_trace);
        if (!results.ok()) return results.status();
        response.results = std::move(results).value();
        io = AccountIo(io_before);
        if (!bypass_cache) {
          auto entry = std::make_shared<ResultCache::Entry>();
          entry->is_whynot = false;
          entry->topk = response.results;
          entry->versions = std::move(versions);
          cache_.Insert(key, std::move(entry));
        }
        return response;
      }();
    } catch (const std::exception& e) {
      outcome = Status::Internal(std::string("top-k task threw: ") + e.what());
    } catch (...) {
      outcome = Status::Internal("top-k task threw a non-std exception");
    }
    const double latency_ms = timer.ElapsedMillis();
    if (outcome.ok()) outcome.value().latency_ms = latency_ms;
    AccountStatus(outcome.status());
    latency_topk_.Record(latency_ms);
    if (telemetry_ != nullptr) {
      QueryProfile profile;
      profile.kind = ProfileKind::kTopK;
      profile.algorithm = "topk";
      profile.fingerprint = key.empty() ? 0 : std::hash<std::string>{}(key);
      profile.status = StatusCodeName(outcome.status().code());
      profile.ok = outcome.ok();
      profile.cache_hit = cache_hit;
      profile.wall_ms = executed ? exec_ms : latency_ms;
      profile.queue_ms = executed ? std::max(0.0, latency_ms - exec_ms) : 0.0;
      profile.io_physical = io.physical;
      profile.io_mapped = io.mapped;
      profile.io_cache_hits = io.cache_hits;
      telemetry_->Report(std::move(profile), executed ? trace : nullptr);
    }
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    promise->set_value(std::move(outcome));
  };

  if (!pool_->TrySubmit(std::move(task))) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    responses_rejected_.Increment();
    if (telemetry_ != nullptr) telemetry_->ReportShed();
    promise->set_value(Status::ResourceExhausted(
        "query service overloaded: worker queue full"));
  }
  return future;
}

void QueryService::BatchCollectorLoop() {
  std::unique_lock<std::mutex> lock(batch_mu_);
  for (;;) {
    batch_cv_.wait(lock,
                   [this] { return batch_stop_ || !batch_queue_.empty(); });
    if (batch_queue_.empty()) return;  // stopping, nothing left to flush
    // The window opens when the first request of a batch arrives. A full
    // batch dispatches immediately; shutdown flushes without waiting.
    const Timer wait_timer;
    if (!batch_stop_ && config_.batch_window_ms > 0.0 &&
        batch_queue_.size() < config_.batch_max_size) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(
                  config_.batch_window_ms));
      batch_cv_.wait_until(lock, deadline, [this] {
        return batch_stop_ || batch_queue_.size() >= config_.batch_max_size;
      });
    }
    const size_t take = std::min(batch_queue_.size(), config_.batch_max_size);
    auto batch = std::make_shared<std::vector<PendingTopK>>();
    batch->reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch->push_back(std::move(batch_queue_.front()));
      batch_queue_.pop_front();
    }
    lock.unlock();
    batch_window_wait_.Record(wait_timer.ElapsedMillis());
    batch_occupancy_.Record(static_cast<double>(batch->size()));
    // Execution runs on the worker pool so the collector can keep forming
    // batches while earlier ones are still walking the index. Submit (not
    // TrySubmit): every request in the batch was already admitted.
    pool_->Submit([this, batch] { ExecuteTopKBatch(std::move(*batch)); });
    bg_collector_dispatches_.Increment();
    lock.lock();
  }
}

void QueryService::ExecuteTopKBatch(std::vector<PendingTopK> batch) {
  // Fail fast per request, exactly as the solo task does: one that was
  // cancelled, or waited out its deadline in the collector, finishes
  // before any work.
  std::vector<PendingTopK> live;
  live.reserve(batch.size());
  for (PendingTopK& item : batch) {
    if (Status status = item.token.Check(); !status.ok()) {
      FinishBatchedTopK(std::move(item), std::move(status));
    } else {
      live.push_back(std::move(item));
    }
  }
  if (live.empty()) return;

  // Within-batch dedupe: requests with identical cache fingerprints
  // execute once and fan the answer out. Bypass-cache requests carry an
  // empty key and never dedupe.
  std::vector<size_t> reps;                  // group -> representative
  std::vector<std::vector<size_t>> members;  // group -> all items (rep first)
  {
    std::unordered_map<std::string_view, size_t> by_key;
    for (size_t i = 0; i < live.size(); ++i) {
      if (!live[i].key.empty()) {
        auto [it, inserted] = by_key.emplace(live[i].key, members.size());
        if (!inserted) {
          members[it->second].push_back(i);
          batch_dedup_.Increment();
          continue;
        }
      }
      reps.push_back(i);
      members.push_back({i});
    }
  }

  bool want_versions = false;
  for (size_t rep : reps) want_versions |= !live[rep].key.empty();

  // The dispatch itself is background work: one sampled batch profile can
  // cover the shared traversal, while each member request reports its own
  // completion through FinishBatchedTopK.
  const size_t event_capacity =
      telemetry_ != nullptr ? telemetry_->NextEventCapacity() : 0;
  TraceRecorder stage_trace(event_capacity);
  TraceRecorder* const trace =
      (config_.collect_stage_metrics || telemetry_ != nullptr) ? &stage_trace
                                                               : nullptr;
  const Timer exec_timer;
  IoDelta io;
  std::vector<uint64_t> versions;
  std::vector<BackendBatchResult> results;
  try {
    // Captured before the batch runs, as in the solo path: a racing
    // mutation makes cached entries look staler than they are, never
    // fresher.
    if (want_versions) versions = backend_->version_vector();
    std::vector<BackendBatchItem> items(reps.size());
    for (size_t g = 0; g < reps.size(); ++g) {
      items[g].query = &live[reps[g]].query;
      items[g].cancel = &live[reps[g]].token;
    }
    const IoSnapshot io_before = TakeIoSnapshot();
    results = backend_->TopKBatch(items, trace);
    if (trace != nullptr) AbsorbTrace(stage_trace);
    io = AccountIo(io_before);
  } catch (const std::exception& e) {
    results.assign(reps.size(),
                   BackendBatchResult{Status::Internal(
                       std::string("batched top-k threw: ") + e.what()), {}});
  } catch (...) {
    results.assign(
        reps.size(),
        BackendBatchResult{
            Status::Internal("batched top-k threw a non-std exception"), {}});
  }
  while (results.size() < reps.size()) {
    results.push_back(BackendBatchResult{
        Status::Internal("backend returned a short batch result"), {}});
  }
  const double exec_ms = exec_timer.ElapsedMillis();
  bg_collector_exec_.Record(exec_ms);
  batch_batches_.Increment();
  batch_queries_.Increment(live.size());
  if (telemetry_ != nullptr) {
    QueryProfile profile;
    profile.kind = ProfileKind::kBatch;
    profile.algorithm = "batch";
    profile.status = StatusCodeName(StatusCode::kOk);
    profile.ok = true;
    profile.wall_ms = exec_ms;
    profile.io_physical = io.physical;
    profile.io_mapped = io.mapped;
    profile.io_cache_hits = io.cache_hits;
    telemetry_->Report(std::move(profile), trace);
  }

  for (size_t g = 0; g < reps.size(); ++g) {
    BackendBatchResult& r = results[g];
    const std::string& key = live[reps[g]].key;
    if (r.status.ok() && !key.empty()) {
      // One insertion per unique fingerprint per batch, no matter how
      // many requests the group fanned out to.
      auto entry = std::make_shared<ResultCache::Entry>();
      entry->is_whynot = false;
      entry->topk = r.topk;
      entry->versions = versions;
      cache_.Insert(key, std::move(entry));
    }
    for (size_t m : members[g]) {
      PendingTopK& item = live[m];
      if (r.status.ok()) {
        TopKResponse response;
        response.results = r.topk;
        FinishBatchedTopK(std::move(item), std::move(response));
      } else if (m != reps[g] &&
                 (r.status.code() == StatusCode::kCancelled ||
                  r.status.code() == StatusCode::kDeadlineExceeded) &&
                 item.token.Check().ok()) {
        // The representative's token fired mid-walk but this duplicate is
        // still live: re-run it solo so one client's cancellation never
        // cancels another client's request.
        batch_fallback_solo_.Increment();
        ExecuteSoloTopKFallback(std::move(item), versions);
      } else {
        FinishBatchedTopK(std::move(item), r.status);
      }
    }
  }
}

void QueryService::ExecuteSoloTopKFallback(
    PendingTopK item, const std::vector<uint64_t>& versions) {
  StatusOr<TopKResponse> outcome =
      Status::Internal("solo fallback did not produce a result");
  try {
    outcome = [&]() -> StatusOr<TopKResponse> {
      const IoSnapshot io_before = TakeIoSnapshot();
      TraceRecorder stage_trace(0);
      TraceRecorder* const trace =
          config_.collect_stage_metrics ? &stage_trace : nullptr;
      StatusOr<std::vector<ScoredObject>> results =
          backend_->TopK(item.query, &item.token, trace);
      if (trace != nullptr) AbsorbTrace(stage_trace);
      if (!results.ok()) return results.status();
      AccountIo(io_before);
      TopKResponse response;
      response.results = std::move(results).value();
      if (!item.key.empty()) {
        // The representative failed, so this group made no insertion yet.
        auto entry = std::make_shared<ResultCache::Entry>();
        entry->is_whynot = false;
        entry->topk = response.results;
        entry->versions = versions;
        cache_.Insert(item.key, std::move(entry));
      }
      return response;
    }();
  } catch (const std::exception& e) {
    outcome =
        Status::Internal(std::string("solo fallback threw: ") + e.what());
  } catch (...) {
    outcome = Status::Internal("solo fallback threw a non-std exception");
  }
  FinishBatchedTopK(std::move(item), std::move(outcome));
}

void QueryService::FinishBatchedTopK(PendingTopK item,
                                     StatusOr<TopKResponse> outcome) {
  const double latency_ms = item.timer.ElapsedMillis();
  if (outcome.ok()) outcome.value().latency_ms = latency_ms;
  AccountStatus(outcome.status());
  latency_topk_.Record(latency_ms);
  if (telemetry_ != nullptr) {
    // Windows-only completion: the stage breakdown lives in the shared
    // batch profile, so a batched request reports its end-to-end latency
    // without a recorder of its own.
    QueryProfile profile;
    profile.kind = ProfileKind::kTopK;
    profile.algorithm = "topk";
    profile.fingerprint =
        item.key.empty() ? 0 : std::hash<std::string>{}(item.key);
    profile.status = StatusCodeName(outcome.status().code());
    profile.ok = outcome.ok();
    profile.wall_ms = latency_ms;
    telemetry_->Report(std::move(profile), nullptr);
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  item.promise->set_value(std::move(outcome));
}

size_t QueryService::BatchQueueDepth() const {
  std::lock_guard<std::mutex> lock(batch_mu_);
  return batch_queue_.size();
}

std::future<StatusOr<QueryService::WhyNotResponse>> QueryService::SubmitWhyNot(
    WhyNotAlgorithm algorithm, const SpatialKeywordQuery& query,
    const std::vector<ObjectId>& missing, const WhyNotOptions& options,
    const RequestOptions& opts) {
  requests_whynot_.Increment();
  auto promise = std::make_shared<std::promise<StatusOr<WhyNotResponse>>>();
  std::future<StatusOr<WhyNotResponse>> future = promise->get_future();

  if (!Admit()) {
    promise->set_value(Status::ResourceExhausted(
        "query service overloaded: max_inflight reached"));
    return future;
  }

  CancelToken token = EffectiveToken(opts);
  const std::string key =
      opts.bypass_cache
          ? std::string()
          : FingerprintWhyNot(algorithm, query, missing, options,
                              config_.cache_location_quantum,
                              backend_->topology_fingerprint());

  auto task = [this, promise, algorithm, query, missing, options,
               token = std::move(token), key,
               bypass_cache = opts.bypass_cache, timer = Timer()]() {
    StatusOr<WhyNotResponse> outcome =
        Status::Internal("query task did not produce a result");
    // Install our own recorder unless the client brought one (a client
    // recorder may span several requests, so it is never folded into the
    // per-request stage metrics or sampled into a profile).
    const bool own_trace =
        (config_.collect_stage_metrics || telemetry_ != nullptr) &&
        options.trace == nullptr;
    const size_t event_capacity = own_trace && telemetry_ != nullptr
                                      ? telemetry_->NextEventCapacity()
                                      : 0;
    TraceRecorder stage_trace(event_capacity);
    bool executed = false;
    bool cache_hit = false;
    double exec_ms = 0.0;
    IoDelta io;
    try {
      outcome = [&]() -> StatusOr<WhyNotResponse> {
        WSK_RETURN_IF_ERROR(token.Check());  // fail fast, as in SubmitTopK
        WhyNotResponse response;
        std::vector<uint64_t> versions;
        if (!bypass_cache) {
          if (std::shared_ptr<const ResultCache::Entry> hit = cache_.Lookup(
                  key, [this](const ResultCache::Entry& e) {
                    return backend_->WhyNotCacheValid(e.versions);
                  })) {
            response.result = hit->whynot;
            response.cache_hit = true;
            cache_hit = true;
            return response;
          }
          versions = backend_->version_vector();  // before the query runs
        }
        WhyNotOptions effective = options;
        effective.cancel = &token;
        if (own_trace) effective.trace = &stage_trace;
        const IoSnapshot io_before = TakeIoSnapshot();
        const Timer exec_timer;
        executed = true;
        StatusOr<WhyNotResult> result =
            backend_->Answer(algorithm, query, missing, effective);
        exec_ms = exec_timer.ElapsedMillis();
        if (own_trace) AbsorbTrace(stage_trace);
        if (!result.ok()) return result.status();
        response.result = std::move(result).value();
        io = AccountIo(io_before);
        if (!bypass_cache) {
          auto entry = std::make_shared<ResultCache::Entry>();
          entry->is_whynot = true;
          entry->whynot = response.result;
          entry->versions = std::move(versions);
          cache_.Insert(key, std::move(entry));
        }
        return response;
      }();
    } catch (const std::exception& e) {
      outcome =
          Status::Internal(std::string("why-not task threw: ") + e.what());
    } catch (...) {
      outcome = Status::Internal("why-not task threw a non-std exception");
    }
    const double latency_ms = timer.ElapsedMillis();
    if (outcome.ok()) outcome.value().latency_ms = latency_ms;
    AccountStatus(outcome.status());
    latency_whynot_.Record(latency_ms);
    if (telemetry_ != nullptr) {
      QueryProfile profile;
      profile.kind = ProfileKind::kWhyNot;
      profile.algorithm = WhyNotAlgorithmName(algorithm);
      profile.fingerprint = key.empty() ? 0 : std::hash<std::string>{}(key);
      profile.status = StatusCodeName(outcome.status().code());
      profile.ok = outcome.ok();
      profile.cache_hit = cache_hit;
      profile.wall_ms = executed ? exec_ms : latency_ms;
      profile.queue_ms = executed ? std::max(0.0, latency_ms - exec_ms) : 0.0;
      profile.io_physical = io.physical;
      profile.io_mapped = io.mapped;
      profile.io_cache_hits = io.cache_hits;
      telemetry_->Report(std::move(profile),
                         executed && own_trace ? &stage_trace : nullptr);
    }
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    promise->set_value(std::move(outcome));
  };

  if (!pool_->TrySubmit(std::move(task))) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    responses_rejected_.Increment();
    if (telemetry_ != nullptr) telemetry_->ReportShed();
    promise->set_value(Status::ResourceExhausted(
        "query service overloaded: worker queue full"));
  }
  return future;
}

StatusOr<QueryService::MutationResponse> QueryService::FinishMutation(
    StatusOr<ObjectId> outcome, Counter& kind_counter, double latency_ms) {
  latency_mutation_.Record(latency_ms);
  if (!outcome.ok()) {
    mutations_failed_.Increment();
    return outcome.status();
  }
  kind_counter.Increment();
  MutationResponse response;
  response.id = outcome.value();
  response.dataset_version = backend_->dataset_version();
  response.latency_ms = latency_ms;
  return response;
}

StatusOr<QueryService::MutationResponse> QueryService::Insert(
    Point location, const std::vector<std::string>& keywords) {
  const Timer timer;
  StatusOr<ObjectId> id = backend_->Insert(location, keywords);
  return FinishMutation(std::move(id), mutations_insert_,
                        timer.ElapsedMillis());
}

StatusOr<QueryService::MutationResponse> QueryService::Update(
    ObjectId id, Point location, const std::vector<std::string>& keywords) {
  const Timer timer;
  StatusOr<ObjectId> outcome = id;
  if (Status status = backend_->Update(id, location, keywords); !status.ok()) {
    outcome = status;
  }
  return FinishMutation(std::move(outcome), mutations_update_,
                        timer.ElapsedMillis());
}

StatusOr<QueryService::MutationResponse> QueryService::Delete(ObjectId id) {
  const Timer timer;
  StatusOr<ObjectId> outcome = id;
  if (Status status = backend_->Delete(id); !status.ok()) {
    outcome = status;
  }
  return FinishMutation(std::move(outcome), mutations_delete_,
                        timer.ElapsedMillis());
}

std::string QueryService::MetricsReport() const {
  std::string out = metrics_.Report();
  char line[256];
  const ResultCache::Stats cs = cache_.stats();
  std::snprintf(line, sizeof(line),
                "cache     hits %llu misses %llu stale %llu insertions %llu "
                "evictions %llu size %zu capacity %zu\n",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.stale),
                static_cast<unsigned long long>(cs.insertions),
                static_cast<unsigned long long>(cs.evictions), cache_.size(),
                cache_.capacity());
  out += line;
  const IoSnapshot io = TakeIoSnapshot();
  std::snprintf(line, sizeof(line),
                "engine_io setr physical %llu logical %llu mapped %llu | "
                "kcr physical %llu logical %llu mapped %llu\n",
                static_cast<unsigned long long>(io.setr_physical),
                static_cast<unsigned long long>(io.setr_logical),
                static_cast<unsigned long long>(io.setr_mapped),
                static_cast<unsigned long long>(io.kcr_physical),
                static_cast<unsigned long long>(io.kcr_logical),
                static_cast<unsigned long long>(io.kcr_mapped));
  out += line;
  if (const SegmentCountersSnapshot seg = backend_->segment_counters();
      seg.valid) {
    std::snprintf(line, sizeof(line),
                  "segments  frozen %llu delta_objects %llu live %llu | "
                  "inserts %llu updates %llu deletes %llu\n",
                  static_cast<unsigned long long>(seg.frozen_segments),
                  static_cast<unsigned long long>(seg.delta_objects),
                  static_cast<unsigned long long>(seg.live_objects),
                  static_cast<unsigned long long>(seg.inserts),
                  static_cast<unsigned long long>(seg.updates),
                  static_cast<unsigned long long>(seg.deletes));
    out += line;
    std::snprintf(line, sizeof(line),
                  "compaction merges %llu rotations %llu retired %llu "
                  "busy_ms %.1f last_ms %.1f tombstones %llu\n",
                  static_cast<unsigned long long>(seg.merges),
                  static_cast<unsigned long long>(seg.rotations),
                  static_cast<unsigned long long>(seg.segments_retired),
                  static_cast<double>(seg.merge_busy_us) / 1000.0,
                  static_cast<double>(seg.merge_last_us) / 1000.0,
                  static_cast<unsigned long long>(seg.tombstones_replayed));
    out += line;
  }
  if (const ShardCountersSnapshot sh = backend_->shard_counters(); sh.valid) {
    std::snprintf(line, sizeof(line),
                  "shards    count %llu queries %llu visited %llu "
                  "pruned %llu scatter_busy_ms %.1f\n",
                  static_cast<unsigned long long>(sh.num_shards),
                  static_cast<unsigned long long>(sh.queries),
                  static_cast<unsigned long long>(sh.shards_visited),
                  static_cast<unsigned long long>(sh.shards_pruned),
                  static_cast<double>(sh.scatter_busy_us) / 1000.0);
    out += line;
    for (size_t i = 0; i < sh.per_shard_visited.size(); ++i) {
      std::snprintf(
          line, sizeof(line),
          "shard.%zu   visited %llu pruned %llu mutations %llu objects "
          "%llu\n",
          i, static_cast<unsigned long long>(sh.per_shard_visited[i]),
          static_cast<unsigned long long>(sh.per_shard_pruned[i]),
          static_cast<unsigned long long>(sh.per_shard_mutations[i]),
          static_cast<unsigned long long>(sh.per_shard_objects[i]));
      out += line;
    }
  }
  if (const NodeCache* nc = backend_->node_cache()) {
    const NodeCache::Stats ns = nc->GetStats();
    std::snprintf(line, sizeof(line),
                  "node_cache hits %llu misses %llu evictions %llu "
                  "entries %llu bytes %llu capacity %llu\n",
                  static_cast<unsigned long long>(ns.hits),
                  static_cast<unsigned long long>(ns.misses),
                  static_cast<unsigned long long>(ns.evictions),
                  static_cast<unsigned long long>(ns.entries),
                  static_cast<unsigned long long>(ns.bytes_in_use),
                  static_cast<unsigned long long>(ns.capacity_bytes));
    out += line;
  }
  if (config_.batch_max_size > 1) {
    std::snprintf(line, sizeof(line),
                  "batching  max_size %zu window_ms %.3f pending %zu\n",
                  config_.batch_max_size, config_.batch_window_ms,
                  BatchQueueDepth());
    out += line;
  }
  if (telemetry_ != nullptr) {
    const TelemetryStats ts = telemetry_->stats();
    std::snprintf(line, sizeof(line),
                  "telemetry observed %llu sampled %llu slow %llu "
                  "threshold_ms %.3f reservoir %zu slow_ring %zu\n",
                  static_cast<unsigned long long>(ts.requests_observed),
                  static_cast<unsigned long long>(ts.profiles_sampled),
                  static_cast<unsigned long long>(ts.slow_queries),
                  ts.slow_threshold_ms, ts.reservoir_size, ts.slow_log_size);
    out += line;
    for (const uint64_t w : {uint64_t{1}, uint64_t{10}, uint64_t{60}}) {
      const RollingWindows::Snapshot s = telemetry_->Window(w);
      char label[16];
      std::snprintf(label, sizeof(label), "%llus",
                    static_cast<unsigned long long>(w));
      std::snprintf(line, sizeof(line),
                    "window.%-4s requests %llu qps %.1f shed %.2f hit %.2f "
                    "p50 %.3f p99 %.3f ms\n", label,
                    static_cast<unsigned long long>(s.requests), s.qps,
                    s.shed_ratio, s.hit_ratio, s.p50_ms, s.p99_ms);
      out += line;
    }
  }
  std::snprintf(line, sizeof(line),
                "pool      workers %d queue_depth %zu task_exceptions %llu\n",
                config_.num_workers, pool_->queue_depth(),
                static_cast<unsigned long long>(pool_->num_task_exceptions()));
  out += line;
  return out;
}

std::string QueryService::PrometheusReport() const {
  std::string out = metrics_.PrometheusText();
  char line[256];
  const auto sample = [&](const char* name, const char* help,
                          const char* type, double value) {
    out += std::string("# HELP ") + name + " " + help + "\n";
    out += std::string("# TYPE ") + name + " " + type + "\n";
    std::snprintf(line, sizeof(line), "%s %.17g\n", name, value);
    out += line;
  };
  const auto counter_line = [&](const char* name, const char* help,
                                uint64_t value) {
    sample(name, help, "counter", static_cast<double>(value));
  };
  const auto gauge_line = [&](const char* name, const char* help,
                              uint64_t value) {
    sample(name, help, "gauge", static_cast<double>(value));
  };
  const ResultCache::Stats cs = cache_.stats();
  counter_line("wsk_result_cache_hits_total",
               "Result-cache lookups answered from cache.", cs.hits);
  counter_line("wsk_result_cache_misses_total",
               "Result-cache lookups that missed.", cs.misses);
  counter_line("wsk_result_cache_stale_total",
               "Cached entries rejected by version validation.", cs.stale);
  counter_line("wsk_result_cache_insertions_total",
               "Entries inserted into the result cache.", cs.insertions);
  counter_line("wsk_result_cache_evictions_total",
               "Entries evicted from the result cache.", cs.evictions);
  gauge_line("wsk_result_cache_size", "Entries currently cached.",
             cache_.size());
  const IoSnapshot io = TakeIoSnapshot();
  counter_line("wsk_engine_setr_physical_reads_total",
               "SETR tree pages read from disk.", io.setr_physical);
  counter_line("wsk_engine_setr_logical_reads_total",
               "SETR tree node accesses.", io.setr_logical);
  counter_line("wsk_engine_setr_mapped_reads_total",
               "SETR tree nodes served zero-copy from mmap.", io.setr_mapped);
  counter_line("wsk_engine_kcr_physical_reads_total",
               "KcR tree pages read from disk.", io.kcr_physical);
  counter_line("wsk_engine_kcr_logical_reads_total",
               "KcR tree node accesses.", io.kcr_logical);
  counter_line("wsk_engine_kcr_mapped_reads_total",
               "KcR tree nodes served zero-copy from mmap.", io.kcr_mapped);
  if (const SegmentCountersSnapshot seg = backend_->segment_counters();
      seg.valid) {
    counter_line("wsk_segment_inserts_total", "Objects inserted.",
                 seg.inserts);
    counter_line("wsk_segment_updates_total", "Objects updated.",
                 seg.updates);
    counter_line("wsk_segment_deletes_total", "Objects deleted.",
                 seg.deletes);
    counter_line("wsk_segment_merges_total", "Merge passes completed.",
                 seg.merges);
    counter_line("wsk_segment_rotations_total",
                 "Delta-to-frozen segment rotations.", seg.rotations);
    counter_line("wsk_segment_retired_total",
                 "Frozen segments retired after merges.",
                 seg.segments_retired);
    gauge_line("wsk_segment_frozen_segments", "Frozen segments live now.",
               seg.frozen_segments);
    gauge_line("wsk_segment_delta_objects",
               "Objects in the mutable delta segment.", seg.delta_objects);
    gauge_line("wsk_segment_live_objects", "Live objects across segments.",
               seg.live_objects);
    gauge_line("wsk_segment_dataset_version",
               "Backend dataset version (bumped by every mutation).",
               backend_->dataset_version());
    // Background-task visibility: compaction work as rates and durations.
    counter_line("wsk_bg_merge_passes_total",
                 "Background merge passes started (success or failure).",
                 seg.merges);
    sample("wsk_bg_merge_busy_seconds_total",
           "Wall time spent inside background merge passes.", "counter",
           static_cast<double>(seg.merge_busy_us) / 1e6);
    sample("wsk_bg_merge_last_seconds",
           "Duration of the most recent merge pass.", "gauge",
           static_cast<double>(seg.merge_last_us) / 1e6);
    counter_line("wsk_bg_merge_tombstones_total",
                 "Tombstones replayed onto freshly merged segments.",
                 seg.tombstones_replayed);
    counter_line("wsk_bg_segments_retired_total",
                 "Segments handed to epoch-based reclamation.",
                 seg.segments_retired);
  }
  if (const ShardCountersSnapshot sh = backend_->shard_counters(); sh.valid) {
    gauge_line("wsk_shards", "Shards the coordinator fans out to.",
               sh.num_shards);
    counter_line("wsk_shard_queries_total",
                 "Queries answered by scatter-gather.", sh.queries);
    counter_line("wsk_shards_visited_total",
                 "Per-query shard visits (bound not reached).",
                 sh.shards_visited);
    counter_line("wsk_shards_pruned_total",
                 "Shards skipped by the MaxScore bound.", sh.shards_pruned);
    sample("wsk_bg_scatter_busy_seconds_total",
           "Wall time spent inside scatter-gather top-k.", "counter",
           static_cast<double>(sh.scatter_busy_us) / 1e6);
  }
  if (const NodeCache* nc = backend_->node_cache()) {
    const NodeCache::Stats ns = nc->GetStats();
    counter_line("wsk_node_cache_hits_total", "Node-cache hits.", ns.hits);
    counter_line("wsk_node_cache_misses_total", "Node-cache misses.",
                 ns.misses);
    counter_line("wsk_node_cache_evictions_total", "Node-cache evictions.",
                 ns.evictions);
    gauge_line("wsk_node_cache_bytes", "Bytes of cached nodes resident.",
               ns.bytes_in_use);
  }
  gauge_line("wsk_inflight_requests",
             "Admitted requests not yet completed.", inflight());
  if (config_.batch_max_size > 1) {
    // wsk_batch_* counters/histograms come from the registry above; the
    // pending-queue depth is the one live gauge the registry cannot hold.
    gauge_line("wsk_batch_pending_requests",
               "Requests waiting in the batch collector.", BatchQueueDepth());
  }
  gauge_line("wsk_pool_queue_depth", "Tasks queued for the worker pool.",
             pool_->queue_depth());
  counter_line("wsk_pool_task_exceptions_total",
               "Worker tasks that escaped with an exception.",
               pool_->num_task_exceptions());
  if (telemetry_ != nullptr) {
    const TelemetryStats ts = telemetry_->stats();
    counter_line("wsk_telemetry_requests_observed_total",
                 "Request completions the telemetry hub observed.",
                 ts.requests_observed);
    counter_line("wsk_telemetry_profiles_sampled_total",
                 "Requests that carried an event-capacity profile recorder.",
                 ts.profiles_sampled);
    counter_line("wsk_telemetry_slow_queries_total",
                 "Requests captured by the rolling slow threshold.",
                 ts.slow_queries);
    sample("wsk_telemetry_slow_threshold_seconds",
           "Current slow-query capture threshold.", "gauge",
           ts.slow_threshold_ms / 1e3);
    gauge_line("wsk_telemetry_reservoir_profiles",
               "Sampled profiles retained in the reservoir.",
               ts.reservoir_size);
    const RollingWindows::Snapshot w1 = telemetry_->Window(1);
    const RollingWindows::Snapshot w10 = telemetry_->Window(10);
    const RollingWindows::Snapshot w60 = telemetry_->Window(60);
    const auto window_gauge = [&](const char* name, const char* help,
                                  double v1, double v10, double v60) {
      out += std::string("# HELP ") + name + " " + help + "\n";
      out += std::string("# TYPE ") + name + " gauge\n";
      const char* const windows[3] = {"1s", "10s", "60s"};
      const double values[3] = {v1, v10, v60};
      for (int i = 0; i < 3; ++i) {
        std::snprintf(line, sizeof(line), "%s{window=\"%s\"} %.17g\n", name,
                      windows[i], values[i]);
        out += line;
      }
    };
    window_gauge("wsk_window_request_rate",
                 "Completed requests per second over the window.", w1.qps,
                 w10.qps, w60.qps);
    window_gauge("wsk_window_shed_ratio",
                 "Admission rejections over offered load in the window.",
                 w1.shed_ratio, w10.shed_ratio, w60.shed_ratio);
    window_gauge("wsk_window_cache_hit_ratio",
                 "Result-cache hits over completions in the window.",
                 w1.hit_ratio, w10.hit_ratio, w60.hit_ratio);
    window_gauge("wsk_window_latency_p50_seconds",
                 "Median request execution wall time in the window.",
                 w1.p50_ms / 1e3, w10.p50_ms / 1e3, w60.p50_ms / 1e3);
    window_gauge("wsk_window_latency_p99_seconds",
                 "99th-percentile request execution wall time in the window.",
                 w1.p99_ms / 1e3, w10.p99_ms / 1e3, w60.p99_ms / 1e3);
  }
  out += "# HELP wsk_build_info Build metadata; the value is always 1.\n";
  out += "# TYPE wsk_build_info gauge\n";
  std::snprintf(line, sizeof(line),
                "wsk_build_info{version=\"%s\",isa=\"%s\",node_format=\"%s\"}"
                " 1\n",
                kBuildVersion, BuildIsa(), kNodeFormatName);
  out += line;
  sample("wsk_process_uptime_seconds", "Seconds since process start.",
         "gauge", ProcessUptimeSeconds());
  gauge_line("wsk_process_resident_memory_bytes",
             "Resident set size of the process.", ProcessResidentBytes());
  return out;
}

}  // namespace wsk
