// Shared LRU result cache for the query service.
//
// WISK-style workload skew (repeated queries from popular locations and
// keyword sets) is exactly what a service-level cache captures: the cache
// key is a *canonical fingerprint* of the request, so textually different
// but semantically identical requests share an entry:
//   - the location is quantized to a grid cell (two queries within the
//     same ~quantum-sized cell are served the same answer),
//   - keywords are the Vocabulary's dense term ids, which KeywordSet keeps
//     sorted and deduplicated — set semantics, order-independent,
//   - missing-object ids are sorted and deduplicated,
//   - alpha / lambda are quantized to 1e-9 so bit-identical parameters
//     never miss on formatting noise,
//   - the why-not algorithm and sample_size are part of the key (they can
//     change the answer); pure optimization switches (opt_*, num_threads,
//     kcr_single_batch) are NOT — the differential suite guarantees they
//     do not change results,
//   - the backend's topology fingerprint
//     (QueryBackend::topology_fingerprint(): shard count + tile layout;
//     constant 0 on unsharded backends) is part of every key, so entries
//     never survive a re-partitioning. Data *freshness* is handled by
//     validation instead of the key: each entry stores the backend's
//     version vector captured before the answer was computed, and Lookup
//     re-checks it through a caller-supplied validator
//     (QueryBackend::TopKCacheValid / WhyNotCacheValid). The default
//     validators require exact version equality — the pre-sharding
//     "any mutation invalidates" contract — while a sharded backend keeps
//     top-k entries alive when only provably irrelevant shards changed
//     (docs/SHARDING.md "Cache versioning").
//
// Entries are immutable and shared via shared_ptr, so a hit never copies
// the payload and eviction never invalidates a response already handed to
// a client. All operations are internally synchronized.
#ifndef WSK_SERVICE_RESULT_CACHE_H_
#define WSK_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/whynot.h"
#include "data/query.h"

namespace wsk {

// Canonical cache keys. The returned string is an opaque byte sequence;
// equal requests (in the sense above) produce equal strings. The version
// argument is whatever structural stamp the caller wants baked into the
// key — QueryService passes the backend's topology fingerprint.
std::string FingerprintTopK(const SpatialKeywordQuery& query,
                            double location_quantum,
                            uint64_t dataset_version = 0);
std::string FingerprintWhyNot(WhyNotAlgorithm algorithm,
                              const SpatialKeywordQuery& query,
                              const std::vector<ObjectId>& missing,
                              const WhyNotOptions& options,
                              double location_quantum,
                              uint64_t dataset_version = 0);

class ResultCache {
 public:
  // One cached answer; `is_whynot` selects which payload is meaningful.
  // `versions` is the backend version vector captured *before* the answer
  // was computed (conservative: a mutation racing the computation makes
  // the entry look staler than it is, never fresher).
  struct Entry {
    bool is_whynot = false;
    std::vector<ScoredObject> topk;
    WhyNotResult whynot;
    std::vector<uint64_t> versions;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t stale = 0;  // hits rejected by the validator (counted as misses)
  };

  // Freshness check applied on lookup; false evicts the entry and turns
  // the hit into a miss.
  using Validator = std::function<bool(const Entry&)>;

  // `capacity` is a number of entries; 0 disables the cache (Lookup always
  // misses, Insert is a no-op).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // nullptr on miss; promotes the entry to most-recently-used on hit. A
  // non-null `validator` vets the entry first — stale entries are erased
  // and reported as misses.
  std::shared_ptr<const Entry> Lookup(const std::string& key,
                                      const Validator& validator = nullptr);

  // Inserts (or refreshes) the entry, evicting the coldest on overflow.
  void Insert(const std::string& key, std::shared_ptr<const Entry> entry);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  struct Slot {
    std::shared_ptr<const Entry> entry;
    std::list<std::string>::iterator lru_it;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<std::string> lru_;  // front = hottest
  std::unordered_map<std::string, Slot> map_;
  Stats stats_;
};

}  // namespace wsk

#endif  // WSK_SERVICE_RESULT_CACHE_H_
