// QueryService: the concurrent, servable front end over a QueryBackend
// (the static WhyNotEngine or the live SegmentedEngine).
//
// Request lifecycle (see docs/SERVICE.md):
//
//   admission -> result cache -> execute (with deadline/cancel) -> metrics
//
// Mutations (Insert/Update/Delete) run synchronously on the caller's
// thread — the backend serializes writers internally, and a mutation's
// latency is the write path itself, not queueing. Cache keys embed the
// backend's topology fingerprint, and every cached entry stores the
// backend's version vector from before its answer was computed; lookups
// re-validate through QueryBackend::TopKCacheValid / WhyNotCacheValid, so
// a stale answer is structurally unservable. For unsharded backends the
// default validators require exact version equality (any mutation
// invalidates, exactly the pre-sharding contract); a sharded backend keeps
// top-k entries whose changed shards provably cannot affect them
// (docs/SERVICE.md "Mutations and cache invalidation", docs/SHARDING.md).
//
// Admission control bounds load two ways: `max_inflight` caps admitted
// requests (queued + executing) and the worker pool's `max_queue` bounds
// the pending backlog; either limit rejects new work immediately with
// kResourceExhausted so an overloaded service degrades by shedding load
// instead of queueing unboundedly. Admitted requests execute on a shared
// ThreadPool, each under a CancelToken that combines the client's token
// with the request deadline; the engine's algorithms observe the token at
// node-visit / candidate granularity, so a timed-out query returns
// kDeadlineExceeded within one unit of work. Successful answers land in a
// shared LRU ResultCache keyed on a canonical query fingerprint, and every
// request is accounted in the MetricsRegistry (status counters, latency
// histograms, and I/O counter deltas from storage/io_stats.h).
//
// Thread safety: all public methods may be called concurrently. The
// service relies on the backend's documented contract that const query
// methods are concurrency-safe; for WhyNotEngine, do not call
// engine->DropCaches() / ResetIoStats() while the service has requests in
// flight.
#ifndef WSK_SERVICE_QUERY_SERVICE_H_
#define WSK_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/backend.h"
#include "core/engine.h"
#include "observability/telemetry.h"
#include "observability/trace.h"
#include "service/metrics.h"
#include "service/result_cache.h"

namespace wsk {

struct QueryServiceConfig {
  int num_workers = 4;       // worker threads executing queries (>= 1)
  size_t max_queue = 128;    // pending tasks the pool accepts (0 = unbounded)
  size_t max_inflight = 256;  // admitted (queued + executing); 0 = unlimited
  double default_timeout_ms = 0.0;  // per-request deadline; 0 = none
  size_t cache_capacity = 1024;     // result cache entries; 0 disables
  double cache_location_quantum = 1e-6;  // fingerprint grid cell size
  // Attach a capacity-0 TraceRecorder (counters and stage totals only, no
  // event buffer) to each executed request and fold the aggregates into
  // the registry: per-stage wall time into `stage.<name>.ms` histograms,
  // pruning counters into `prune.<name>` counters (docs/OBSERVABILITY.md).
  bool collect_stage_metrics = true;
  // Batched top-k execution (docs/BATCHING.md). With batch_max_size > 1 a
  // collector thread groups admitted top-k requests behind a short
  // collection window and drives them through QueryBackend::TopKBatch —
  // one shared index traversal per batch, bit-identical results per query.
  // 1 disables batching (the default: every request executes solo).
  // Why-not requests are never batched.
  size_t batch_max_size = 1;
  // How long the collector holds an open batch waiting for more requests
  // once the first one arrives, in milliseconds. A full batch dispatches
  // immediately; 0 dispatches whatever is queued without waiting.
  double batch_window_ms = 0.25;
  // Continuous telemetry (docs/OBSERVABILITY.md "Continuous telemetry"):
  // always-on sampled profiling, slow-query capture, and rolling-window
  // metrics. On by default — the sampling-overhead CI gate holds the
  // default rate to <= 1.05x of a telemetry-off service. Set
  // telemetry.enabled = false for measurement runs that must exclude it.
  TelemetryConfig telemetry;
};

// Per-request knobs.
struct RequestOptions {
  // Overrides the service default deadline; < 0 uses the default, 0
  // disables the deadline for this request.
  double timeout_ms = -1.0;
  // Optional client-side cancellation; combined with the deadline.
  CancelToken cancel;
  // Skip cache lookup AND insertion (measurement / debugging).
  bool bypass_cache = false;
};

class QueryService {
 public:
  struct TopKResponse {
    std::vector<ScoredObject> results;
    bool cache_hit = false;
    double latency_ms = 0.0;  // admission to completion
  };

  struct WhyNotResponse {
    WhyNotResult result;
    bool cache_hit = false;
    double latency_ms = 0.0;
  };

  struct MutationResponse {
    ObjectId id = 0;                // assigned (insert) or targeted id
    uint64_t dataset_version = 0;   // backend version after the mutation
    double latency_ms = 0.0;
  };

  // `backend` is borrowed and must outlive the service.
  QueryService(const QueryBackend* backend, const QueryServiceConfig& config);
  // Convenience for the common static-engine case (WhyNotEngine is a
  // QueryBackend; mutations will return kFailedPrecondition).
  QueryService(const WhyNotEngine* engine, const QueryServiceConfig& config)
      : QueryService(static_cast<const QueryBackend*>(engine), config) {}

  // Drains: blocks until every admitted request has completed.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Asynchronous entry points. The returned future is always fulfilled —
  // with kResourceExhausted immediately when admission rejects the
  // request, with kCancelled / kDeadlineExceeded when its token fires, or
  // with the answer.
  std::future<StatusOr<TopKResponse>> SubmitTopK(
      const SpatialKeywordQuery& query, const RequestOptions& opts = {});
  std::future<StatusOr<WhyNotResponse>> SubmitWhyNot(
      WhyNotAlgorithm algorithm, const SpatialKeywordQuery& query,
      const std::vector<ObjectId>& missing, const WhyNotOptions& options,
      const RequestOptions& opts = {});

  // Blocking conveniences.
  StatusOr<TopKResponse> TopK(const SpatialKeywordQuery& query,
                              const RequestOptions& opts = {}) {
    return SubmitTopK(query, opts).get();
  }
  StatusOr<WhyNotResponse> WhyNot(WhyNotAlgorithm algorithm,
                                  const SpatialKeywordQuery& query,
                                  const std::vector<ObjectId>& missing,
                                  const WhyNotOptions& options,
                                  const RequestOptions& opts = {}) {
    return SubmitWhyNot(algorithm, query, missing, options, opts).get();
  }

  // Synchronous mutation entry points. kFailedPrecondition on read-only
  // backends. A successful mutation bumps the backend's dataset version,
  // which every cache key embeds — cached pre-mutation answers become
  // unreachable immediately (and age out of the LRU).
  StatusOr<MutationResponse> Insert(Point location,
                                    const std::vector<std::string>& keywords);
  StatusOr<MutationResponse> Update(ObjectId id, Point location,
                                    const std::vector<std::string>& keywords);
  StatusOr<MutationResponse> Delete(ObjectId id);

  // Admitted requests not yet completed (racy diagnostic).
  size_t inflight() const {
    return static_cast<size_t>(inflight_.load(std::memory_order_relaxed));
  }

  MetricsRegistry& metrics() { return metrics_; }
  const ResultCache& cache() const { return cache_; }
  const QueryServiceConfig& config() const { return config_; }
  // Continuous-telemetry hub: sampled profiles, the slow-query ring, and
  // rolling-window rates. nullptr when config.telemetry.enabled is false.
  TelemetryHub* telemetry() const { return telemetry_.get(); }

  // The metrics registry dump plus cache statistics, engine I/O counters,
  // and worker-pool health — the service's full observability snapshot.
  std::string MetricsReport() const;

  // The same snapshot in Prometheus text exposition format: every
  // registered counter/histogram via MetricsRegistry::PrometheusText()
  // plus result-cache, node-cache, pool, and inflight gauges.
  std::string PrometheusReport() const;

 private:
  using IoSnapshot = BackendIoSnapshot;

  // Combines admission bookkeeping shared by both Submit paths. Returns
  // false (after accounting) when the request must be rejected.
  bool Admit();
  // Builds the effective token for one request.
  CancelToken EffectiveToken(const RequestOptions& opts) const;
  // Classifies a terminal status into the response counters.
  void AccountStatus(const Status& status);
  IoSnapshot TakeIoSnapshot() const;
  // Per-request read attribution, summed across the SETR and KcR trees.
  // Returned by AccountIo so query profiles can carry the same numbers the
  // io.* counters absorb.
  struct IoDelta {
    uint64_t physical = 0;
    uint64_t mapped = 0;
    uint64_t cache_hits = 0;
  };
  // Adds the request's I/O delta to the io.* counters and returns it.
  // Attribution is approximate under concurrency (the counters are shared;
  // overlapping queries see each other's reads) — the aggregate engine
  // snapshot in MetricsReport() is the exact total.
  IoDelta AccountIo(const IoSnapshot& before);
  // Folds a finished request's stage totals and pruning counters into the
  // interned stage.* histograms / prune.* counters.
  void AbsorbTrace(const TraceRecorder& trace);
  // Shared tail of the three mutation entry points.
  StatusOr<MutationResponse> FinishMutation(StatusOr<ObjectId> outcome,
                                            Counter& kind_counter,
                                            double latency_ms);

  // One admitted top-k request waiting in the batch collector. The cache
  // lookup already happened (and missed) before the request enqueued, so a
  // pending request always represents real work.
  struct PendingTopK {
    std::shared_ptr<std::promise<StatusOr<TopKResponse>>> promise;
    SpatialKeywordQuery query;
    CancelToken token;
    std::string key;  // cache fingerprint; empty = bypass_cache
    Timer timer;      // started at admission; end-to-end latency
  };

  // Collector thread body: waits for pending requests, holds the batch
  // open for up to batch_window_ms (or until batch_max_size), then hands
  // the batch to the worker pool for execution.
  void BatchCollectorLoop();
  // Executes one formed batch: per-item fail-fast, within-batch dedupe by
  // fingerprint, one QueryBackend::TopKBatch call, cache insertion (one
  // per unique fingerprint), and promise fan-out.
  void ExecuteTopKBatch(std::vector<PendingTopK> batch);
  // Re-runs one request solo; used when a deduped duplicate's
  // representative was cancelled but the duplicate's own token is live.
  void ExecuteSoloTopKFallback(PendingTopK item,
                               const std::vector<uint64_t>& versions);
  // Accounts a batched request's terminal outcome and fulfils its promise.
  void FinishBatchedTopK(PendingTopK item, StatusOr<TopKResponse> outcome);
  size_t BatchQueueDepth() const;

  const QueryBackend* const backend_;
  const QueryServiceConfig config_;
  MetricsRegistry metrics_;
  ResultCache cache_;
  std::atomic<int64_t> inflight_{0};

  // Hot-path metrics, interned once at construction (registry lookups take
  // the registry mutex; the request path must not).
  Counter& requests_total_;
  Counter& requests_topk_;
  Counter& requests_whynot_;
  Counter& responses_ok_;
  Counter& responses_rejected_;
  Counter& responses_cancelled_;
  Counter& responses_deadline_;
  Counter& responses_error_;
  Counter& io_setr_physical_;
  Counter& io_kcr_physical_;
  Counter& io_setr_logical_;
  Counter& io_kcr_logical_;
  Counter& io_setr_mapped_;
  Counter& io_kcr_mapped_;
  Counter& io_setr_node_cache_hits_;
  Counter& io_kcr_node_cache_hits_;
  Counter& io_setr_node_cache_misses_;
  Counter& io_kcr_node_cache_misses_;
  LatencyHistogram& latency_topk_;
  LatencyHistogram& latency_whynot_;
  Counter& mutations_insert_;
  Counter& mutations_update_;
  Counter& mutations_delete_;
  Counter& mutations_failed_;
  LatencyHistogram& latency_mutation_;
  // Batched-execution metrics (docs/BATCHING.md): batches dispatched,
  // requests routed through them, duplicates answered by a shared
  // execution, solo re-runs after a representative's cancellation, batch
  // size at dispatch, and how long the collection window held each batch.
  Counter& batch_batches_;
  Counter& batch_queries_;
  Counter& batch_dedup_;
  Counter& batch_fallback_solo_;
  LatencyHistogram& batch_occupancy_;
  LatencyHistogram& batch_window_wait_;
  // Events the bounded trace buffers had to discard (satellite of the
  // telemetry pipeline: sampling must be observable itself).
  Counter& trace_dropped_;
  // Background-task visibility for the batch collector: batches handed to
  // the pool and the wall time each dispatch spent in TopKBatch.
  Counter& bg_collector_dispatches_;
  LatencyHistogram& bg_collector_exec_;
  // Per-stage wall-time histograms and pruning counters, interned at
  // construction (indexed by TraceStage / TraceCounter) so AbsorbTrace
  // never takes the registry mutex.
  LatencyHistogram* stage_hist_[kNumTraceStages] = {};
  Counter* prune_counter_[kNumTraceCounters] = {};
  // Constructed iff config.telemetry.enabled. Declared before pool_ so
  // draining workers can still report completions during teardown.
  std::unique_ptr<TelemetryHub> telemetry_;
  // Batch collector state. The queue is bounded indirectly by
  // max_inflight (only admitted requests enqueue); the collector thread is
  // joined in the destructor before the pool drains.
  mutable std::mutex batch_mu_;
  std::condition_variable batch_cv_;
  std::deque<PendingTopK> batch_queue_;
  bool batch_stop_ = false;
  // Declared last so teardown destroys it first: workers drain while the
  // metrics/cache members their tasks touch are still alive.
  std::unique_ptr<ThreadPool> pool_;
  std::thread batch_collector_;  // joined explicitly before pool_ resets
};

}  // namespace wsk

#endif  // WSK_SERVICE_QUERY_SERVICE_H_
