// Public types of the keyword-adapted why-not query (Definition 2).
#ifndef WSK_CORE_WHYNOT_H_
#define WSK_CORE_WHYNOT_H_

#include <cstdint>
#include <vector>

#include "common/cancel.h"
#include "data/dataset.h"
#include "data/query.h"
#include "text/keyword_set.h"

namespace wsk {

class TraceRecorder;  // observability/trace.h

// Tuning knobs for the why-not algorithms. The three opt_* switches map to
// the Section IV-C optimizations (Fig. 11's Opt1/Opt2/Opt3); all of them
// only affect the basic/advanced algorithm family.
struct WhyNotOptions {
  // User preference between modifying k and modifying the keywords (Eqn 4).
  double lambda = 0.5;

  // Opt1 — early stop: abort a candidate's spatial keyword query once the
  // Eqn 6 rank bound is exceeded.
  bool opt_early_stop = true;

  // Opt2 — enumeration order: consider candidates by (edit distance,
  // particularity benefit) and stop when the next candidate's keyword
  // penalty alone reaches the best penalty.
  bool opt_enumeration_order = true;

  // Opt3 — keyword-set filtering: cache dominators of the missing objects
  // and skip candidates whose cached dominators already exceed the rank
  // bound.
  bool opt_keyword_filtering = true;

  // Worker threads for candidate evaluation (Section IV-C4); 0 runs inline.
  int num_threads = 0;

  // KcRBased only — Section V-D strategy switch. The default (false)
  // processes candidates in batches of equal edit distance with the early
  // stop between batches (Algorithm 4); true feeds every candidate to a
  // single Algorithm 3 traversal, the "straightforward way" the paper
  // describes and argues against for large candidate sets.
  bool kcr_single_batch = false;

  // Section VI-B approximate mode: evaluate only the `sample_size`
  // candidates with the highest particularity benefit. 0 = exact.
  uint32_t sample_size = 0;

  // Candidate-scoring kernel (docs/PERF.md): represent candidates as bit
  // masks over doc0 ∪ M.doc and score via footprint popcounts instead of
  // sorted merges. Results are bit-identical either way (the differential
  // tests compare the two paths); false forces the scalar reference path.
  // The kernel also disables itself when the universe exceeds 64 terms.
  bool use_score_kernel = true;

  // Decoded-node cache (docs/STORAGE.md "Node cache"): serve tree node
  // accesses from the engine's shared cache of materialized nodes instead
  // of re-reading and re-decoding pages per visit. Results are bit-identical
  // either way (the cache stores exactly what a fresh decode produces; the
  // differential tests replay both paths); false forces the uncached reads.
  // No effect when the engine has no cache attached.
  bool use_node_cache = true;

  // Optional cooperative cancellation (borrowed; must outlive the query).
  // All three algorithms check it at candidate / node-visit granularity and
  // return kCancelled or kDeadlineExceeded instead of running to
  // completion. nullptr = never cancelled.
  const CancelToken* cancel = nullptr;

  // Optional per-query trace sink (borrowed; must outlive the query). The
  // algorithms record stage spans and pruning counters into it
  // (docs/OBSERVABILITY.md). nullptr — the default — disables tracing;
  // every instrumentation site then reduces to a pointer test, which the
  // CI trace-overhead gate holds to the untraced baseline.
  TraceRecorder* trace = nullptr;
};

// The answer: the refined query q' = (loc, doc', k', alpha). loc and alpha
// are unchanged from the original query.
struct RefinedQuery {
  KeywordSet doc;           // doc'
  uint32_t k = 0;           // k'
  uint32_t rank = 0;        // R(M, q') under the refined keywords
  uint32_t edit_distance = 0;
  double penalty = 0.0;     // Eqn 4
};

// Per-query work accounting. All three algorithms populate every
// applicable field with the same meaning, and every enumerated candidate
// lands in exactly one disposition bucket:
//
//   candidates_total = candidates_evaluated + candidates_filtered
//                    + candidates_skipped_order + candidates_pruned_bounds
//
// (asserted against the brute-force oracle by the differential tests).
struct WhyNotStats {
  uint32_t initial_rank = 0;  // R(M, q)
  uint64_t candidates_total = 0;
  // BS/AdvancedBS: spatial keyword queries run (including Opt1-capped
  // ones). KcRBased: candidates whose rank bounds converged to an exact
  // penalty.
  uint64_t candidates_evaluated = 0;
  uint64_t candidates_filtered = 0;       // pruned by the dominator cache
  uint64_t candidates_skipped_order = 0;  // skipped by the Opt2 order stop
  // Pruned by a rank/penalty bound before any exact evaluation: the Eqn 6
  // bound in BS/AdvancedBS, the MaxDom/MinDom penalty bounds in KcRBased.
  uint64_t candidates_pruned_bounds = 0;
  // Index nodes materialized: KcR Algorithm 3 unfoldings plus every node
  // expanded by the rank traversals (initial rank and per candidate).
  uint64_t nodes_expanded = 0;
  double elapsed_ms = 0.0;
  uint64_t io_reads = 0;  // physical page reads during the query
};

struct WhyNotResult {
  // True when every missing object already ranks within the original top-k;
  // `refined` then equals the original query with penalty 0.
  bool already_in_result = false;
  RefinedQuery refined;
  WhyNotStats stats;
};

}  // namespace wsk

#endif  // WSK_CORE_WHYNOT_H_
