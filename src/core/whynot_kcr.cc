#include "core/whynot_kcr.h"

#include <algorithm>
#include <bit>
#include <mutex>
#include <queue>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/candidates.h"
#include "core/penalty.h"
#include "core/whynot_common.h"
#include "index/dom_bounds.h"
#include "observability/trace.h"

namespace wsk {

namespace {

using internal::MissingSet;
using internal::RankFromIndex;
using internal::WhyNotScorer;

// Per-candidate search state during one Algorithm 3 batch. The frontier
// dominator sums are kept per missing object; the rank bound of the set M
// is the max over the per-object bounds (Section VI-A).
struct CandState {
  const Candidate* cand = nullptr;
  CandidateMask mask = 0;      // kernel path: bits over doc0 ∪ M.doc
  uint32_t cand_size = 0;      // popcount(mask)
  std::vector<double> tsim;           // TSim(m_i, S)
  std::vector<double> missing_score;  // ST(m_i, q_S)
  std::vector<int64_t> sum_hi;        // Σ_frontier MaxDom per missing
  std::vector<int64_t> sum_lo;        // Σ_frontier MinDom per missing
  bool alive = true;

  int64_t RankHi() const {
    int64_t r = 0;
    for (int64_t v : sum_hi) r = std::max(r, v);
    return r + 1;
  }
  int64_t RankLo() const {
    int64_t r = 0;
    for (int64_t v : sum_lo) r = std::max(r, v);
    return r + 1;
  }
  bool Converged() const { return sum_hi == sum_lo; }
};

// A frontier node awaiting expansion, with the dominator bounds it
// currently contributes to every candidate (flattened [cand][missing]).
// `source` indexes the segment the page belongs to.
struct QueueNode {
  PageId page = kInvalidPageId;
  uint32_t source = 0;
  double priority = 0.0;  // total hi-lo gap at enqueue time
  std::vector<int64_t> hi;
  std::vector<int64_t> lo;
};

struct QueueNodeLess {
  bool operator()(const QueueNode& a, const QueueNode& b) const {
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.source != b.source) return a.source > b.source;  // deterministic
    return a.page > b.page;
  }
};

// MinDom slack for tombstones: any of the segment's `shadow` hidden objects
// might lie below this node, so the certain-dominator count can only be
// trusted down to lo - shadow (clamped at zero). Never applied to MaxDom —
// hiding objects cannot create dominators.
int64_t ClampLo(int64_t lo, uint32_t shadow) {
  return std::max<int64_t>(0, lo - static_cast<int64_t>(shadow));
}

// The currently best refined query and pruning threshold p_c, shared (and
// synchronized) across parallel batch workers as in Section VII-B7.
class BestTracker {
 public:
  double Threshold() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pruning_threshold_;
  }

  // Records a penalty *upper bound* seen for some candidate.
  void Tighten(double pen_hi) {
    std::lock_guard<std::mutex> lock(mu_);
    pruning_threshold_ = std::min(pruning_threshold_, pen_hi);
  }

  // Accepts an exactly-known candidate penalty. Ties go to the basic
  // refinement (the seed), then to the canonically-first candidate, so the
  // winner is independent of batch chunking and thread schedule.
  void OfferExact(const Candidate& cand, uint32_t rank, uint32_t k0,
                  double penalty) {
    std::lock_guard<std::mutex> lock(mu_);
    if (penalty < best_.penalty ||
        (penalty == best_.penalty && !best_is_seed_ &&
         CanonicalOrderLess(cand, best_cand_))) {
      best_.doc = cand.doc;
      best_.rank = rank;
      best_.k = std::max(k0, rank);
      best_.edit_distance = cand.edit_distance;
      best_.penalty = penalty;
      best_is_seed_ = false;
      best_cand_ = cand;
    }
    pruning_threshold_ = std::min(pruning_threshold_, penalty);
  }

  void SeedBasic(const KeywordSet& doc0, uint32_t initial_rank,
                 double lambda) {
    best_.doc = doc0;
    best_.k = initial_rank;
    best_.rank = initial_rank;
    best_.edit_distance = 0;
    best_.penalty = lambda;
    pruning_threshold_ = lambda;
  }

  RefinedQuery best() const {
    std::lock_guard<std::mutex> lock(mu_);
    return best_;
  }

 private:
  mutable std::mutex mu_;
  double pruning_threshold_ = 1.0;
  RefinedQuery best_;
  bool best_is_seed_ = true;
  Candidate best_cand_;  // tie-break key, valid once !best_is_seed_
};

class KcrBatchRunner {
 public:
  KcrBatchRunner(const KcrMultiSource& src,
                 const SpatialKeywordQuery& original,
                 const MissingSet& missing, const WhyNotScorer& scorer,
                 const PenaltyModel& pm, WhyNotStats* stats,
                 const CancelToken* cancel, bool use_node_cache,
                 TraceRecorder* trace)
      : src_(src),
        original_(original),
        missing_(missing),
        scorer_(scorer),
        pm_(pm),
        stats_(stats),
        cancel_(cancel),
        use_node_cache_(use_node_cache),
        trace_(trace) {
    dom_ctx_.reserve(missing.size());
    for (size_t i = 0; i < missing.size(); ++i) {
      DomContext ctx;
      ctx.query_loc = original.loc;
      ctx.alpha = original.alpha;
      ctx.diagonal = src.diagonal;
      ctx.missing_sdist =
          Distance(missing.locs[i], original.loc) / src.diagonal;
      dom_ctx_.push_back(ctx);
    }
  }

  // Runs Algorithm 3 on the candidate batch [begin, end) of the ordered
  // candidate list.
  Status RunBatch(const Candidate* begin, const Candidate* end,
                  BestTracker* tracker);

 private:
  // Evaluates the node-level bounds for one candidate, one missing object.
  // `uc` carries the node's universe-term counts when the kernel is on
  // (nullptr selects the scalar count-map path). `shadow` is the owning
  // segment's tombstone count (MinDom slack).
  void NodeBounds(const NodeDomStats& stats, const NodeUniverseCounts* uc,
                  const CandState& cand, size_t i, uint32_t shadow,
                  int64_t* hi, int64_t* lo) const {
    if (uc != nullptr) {
      *hi = MaxDom(stats, *uc, cand.mask, cand.cand_size, cand.tsim[i],
                   dom_ctx_[i]);
      *lo = ClampLo(MinDom(stats, *uc, cand.mask, cand.cand_size,
                           cand.tsim[i], dom_ctx_[i]),
                    shadow);
      return;
    }
    *hi = MaxDom(stats, cand.cand->doc, cand.tsim[i], dom_ctx_[i]);
    *lo = ClampLo(MinDom(stats, cand.cand->doc, cand.tsim[i], dom_ctx_[i]),
                  shadow);
  }

  // Re-derives penalty bounds for `cand` and applies pruning / threshold
  // tightening. Returns false when the candidate was pruned.
  bool Reassess(CandState* cand, BestTracker* tracker) {
    if (!cand->alive) return false;
    const double pen_hi =
        pm_.Penalty(static_cast<uint64_t>(cand->RankHi()),
                    cand->cand->edit_distance);
    const double pen_lo =
        pm_.Penalty(static_cast<uint64_t>(cand->RankLo()),
                    cand->cand->edit_distance);
    tracker->Tighten(pen_hi);
    if (pen_lo > tracker->Threshold()) {
      cand->alive = false;
      ++stats_->candidates_pruned_bounds;
      return false;
    }
    return true;
  }

  const KcrMultiSource& src_;
  const SpatialKeywordQuery& original_;
  const MissingSet& missing_;
  const WhyNotScorer& scorer_;
  const PenaltyModel& pm_;
  WhyNotStats* stats_;
  const CancelToken* cancel_;
  const bool use_node_cache_;
  TraceRecorder* const trace_;
  std::vector<DomContext> dom_ctx_;
};

Status KcrBatchRunner::RunBatch(const Candidate* begin, const Candidate* end,
                                BestTracker* tracker) {
  const size_t num_cands = static_cast<size_t>(end - begin);
  const size_t num_missing = missing_.size();
  if (num_cands == 0) return Status::Ok();
  TraceSpan batch_span(trace_, TraceStage::kBatch);
  // Node accounting for this traversal; the invariant
  // seen = visited + pruned is flushed to the trace at the end.
  uint64_t nodes_seen = 0;
  uint64_t nodes_visited = 0;
  uint64_t leaf_objects_scored = 0;
  if (trace_ != nullptr) {
    trace_->Add(TraceCounter::kBatches);
    trace_->Add(TraceCounter::kBatchCandidates, num_cands);
  }

  // Per-candidate precomputation: textual similarity and exact score of
  // each missing object under the candidate keywords. With the kernel on,
  // each candidate is frozen into a mask once and every TSim is a popcount
  // against the precomputed missing-object footprints.
  const bool kernel = scorer_.kernel_enabled();
  std::vector<CandState> cands(num_cands);
  std::vector<CandidateMask> batch_masks;
  if (kernel) batch_masks.resize(num_cands);
  for (size_t c = 0; c < num_cands; ++c) {
    CandState& state = cands[c];
    state.cand = begin + c;
    state.tsim.resize(num_missing);
    state.missing_score.resize(num_missing);
    state.sum_hi.assign(num_missing, 0);
    state.sum_lo.assign(num_missing, 0);
    if (kernel) {
      state.mask = scorer_.universe().MaskOf(state.cand->doc);
      state.cand_size = static_cast<uint32_t>(std::popcount(state.mask));
      batch_masks[c] = state.mask;
      if (trace_ != nullptr) {
        trace_->Add(TraceCounter::kKernelInvocations);
      }
    }
    for (size_t i = 0; i < num_missing; ++i) {
      state.tsim[i] = kernel
                          ? scorer_.MissingTsim(i, state.mask)
                          : TextualSimilarity(*missing_.docs[i],
                                              state.cand->doc,
                                              original_.model);
      state.missing_score[i] =
          original_.alpha * (1.0 - dom_ctx_[i].missing_sdist) +
          (1.0 - original_.alpha) * state.tsim[i];
    }
  }

  // Delta extras: exactly-scored objects outside any tree. Their dominate
  // counts are final, so they enter both bound sums up front and never
  // appear in the frontier.
  if (!src_.extras.empty()) {
    TraceSpan extras_span(trace_, TraceStage::kLeafScoring);
    leaf_objects_scored += src_.extras.size();
    if (trace_ != nullptr && kernel) {
      trace_->Add(TraceCounter::kKernelInvocations, src_.extras.size());
    }
    std::vector<double> batch_tsim;
    for (const SpatialObject* o : src_.extras) {
      const double sdist = Distance(o->loc, original_.loc) / src_.diagonal;
      if (kernel) {
        const Footprint fp = scorer_.universe().FootprintOf(o->doc);
        ScoreAllCandidates(fp, batch_masks, original_.model, &batch_tsim);
      }
      for (size_t c = 0; c < num_cands; ++c) {
        const double tsim = kernel ? batch_tsim[c]
                                   : TextualSimilarity(o->doc,
                                                       cands[c].cand->doc,
                                                       original_.model);
        const double score = original_.alpha * (1.0 - sdist) +
                             (1.0 - original_.alpha) * tsim;
        for (size_t i = 0; i < num_missing; ++i) {
          const int64_t dominates =
              score > cands[c].missing_score[i] ? 1 : 0;
          cands[c].sum_hi[i] += dominates;
          cands[c].sum_lo[i] += dominates;
        }
      }
    }
  }

  // Algorithm 3 lines 2-6: bound every candidate using each segment's root
  // summary; the per-object sums accumulate across segments (and extras).
  std::vector<QueueNode> root_entries;
  root_entries.reserve(src_.segments.size());
  for (uint32_t s = 0; s < src_.segments.size(); ++s) {
    const KcrSegmentSource& seg = src_.segments[s];
    StatusOr<KeywordCountMap> root_kcm = seg.tree->ReadRootKcm();
    if (!root_kcm.ok()) return root_kcm.status();
    const NodeDomStats root_stats(&root_kcm.value(), seg.tree->root_cnt(),
                                  seg.tree->root_mbr());
    NodeUniverseCounts root_uc;
    if (kernel) {
      root_uc = NodeUniverseCounts::Build(root_stats, scorer_.universe());
    }
    QueueNode root_entry;
    root_entry.page = seg.tree->SearchRoot();
    root_entry.source = s;
    ++nodes_seen;  // the root was bounded even if never expanded
    root_entry.hi.assign(num_cands * num_missing, 0);
    root_entry.lo.assign(num_cands * num_missing, 0);
    for (size_t c = 0; c < num_cands; ++c) {
      for (size_t i = 0; i < num_missing; ++i) {
        int64_t hi, lo;
        NodeBounds(root_stats, kernel ? &root_uc : nullptr, cands[c], i,
                   seg.shadow_count, &hi, &lo);
        root_entry.hi[c * num_missing + i] = hi;
        root_entry.lo[c * num_missing + i] = lo;
        cands[c].sum_hi[i] += hi;
        cands[c].sum_lo[i] += lo;
        root_entry.priority += static_cast<double>(hi - lo);
      }
    }
    root_entries.push_back(std::move(root_entry));
  }
  size_t num_alive = 0;
  for (size_t c = 0; c < num_cands; ++c) {
    if (Reassess(&cands[c], tracker)) ++num_alive;
  }

  std::priority_queue<QueueNode, std::vector<QueueNode>, QueueNodeLess> queue;
  for (QueueNode& root_entry : root_entries) {
    if (num_alive > 0 && root_entry.priority > 0.0) {
      queue.push(std::move(root_entry));
    }
  }

  while (!queue.empty() && num_alive > 0) {
    // Node-visit granularity cancellation (Algorithm 3's unit of work).
    if (cancel_ != nullptr) WSK_RETURN_IF_ERROR(cancel_->Check());
    const QueueNode entry = queue.top();
    queue.pop();
    const KcrSegmentSource& seg = src_.segments[entry.source];
    // Decoded read: entry payloads are already materialized (and, for
    // inner nodes, the per-child NodeDomStats precomputed) — either shared
    // from the engine cache or built fresh for this visit.
    StatusOr<std::shared_ptr<const KcrTree::DecodedNode>> read =
        seg.tree->ReadDecodedNode(entry.page, use_node_cache_);
    if (!read.ok()) return read.status();
    const KcrTree::DecodedNode& decoded = *read.value();
    const KcrTree::Node& node = decoded.node;
    ++stats_->nodes_expanded;
    ++nodes_visited;

    // Child bound matrices (flattened like QueueNode::hi/lo).
    const size_t num_children = node.size();
    std::vector<std::vector<int64_t>> child_hi(num_children);
    std::vector<std::vector<int64_t>> child_lo(num_children);

    if (node.is_leaf) {
      // Children are objects: evaluate domination exactly. One footprint
      // per object scores the whole candidate batch (ScoreAllCandidates)
      // instead of one sorted merge per (object, candidate) pair.
      // Tombstoned objects contribute nothing (their zero row is exact).
      TraceSpan leaf_span(trace_, TraceStage::kLeafScoring);
      std::vector<double> batch_tsim;
      for (size_t j = 0; j < num_children; ++j) {
        const KcrTree::LeafEntry& e = node.leaf_entries[j];
        child_hi[j].assign(num_cands * num_missing, 0);
        child_lo[j].assign(num_cands * num_missing, 0);
        if (seg.visibility != nullptr && !seg.visibility->IsVisible(e.object)) {
          continue;
        }
        ++leaf_objects_scored;
        const KeywordSet& doc = decoded.leaf_docs[j];
        const double sdist = Distance(e.loc, original_.loc) / src_.diagonal;
        if (kernel) {
          const Footprint fp = scorer_.universe().FootprintOf(doc);
          ScoreAllCandidates(fp, batch_masks, original_.model, &batch_tsim);
          if (trace_ != nullptr) {
            trace_->Add(TraceCounter::kKernelInvocations);
          }
        }
        for (size_t c = 0; c < num_cands; ++c) {
          if (!cands[c].alive) continue;
          const double tsim = kernel
                                  ? batch_tsim[c]
                                  : TextualSimilarity(doc,
                                                      cands[c].cand->doc,
                                                      original_.model);
          const double score = original_.alpha * (1.0 - sdist) +
                               (1.0 - original_.alpha) * tsim;
          for (size_t i = 0; i < num_missing; ++i) {
            const int64_t dominates =
                score > cands[c].missing_score[i] ? 1 : 0;
            child_hi[j][c * num_missing + i] = dominates;
            child_lo[j][c * num_missing + i] = dominates;
          }
        }
      }
    } else {
      TraceSpan bounds_span(trace_, TraceStage::kBoundTightening);
      nodes_seen += num_children;
      for (size_t j = 0; j < num_children; ++j) {
        // The suffix-histogram stats are query-independent, so they ride
        // along with the decoded node (precomputed once at materialization
        // instead of once per visit). The universe counts are
        // query-dependent and stay per batch.
        const NodeDomStats& child_stats = decoded.child_stats[j];
        NodeUniverseCounts child_uc;
        if (kernel) {
          child_uc = NodeUniverseCounts::Build(child_stats,
                                               scorer_.universe());
        }
        child_hi[j].assign(num_cands * num_missing, 0);
        child_lo[j].assign(num_cands * num_missing, 0);
        for (size_t c = 0; c < num_cands; ++c) {
          if (!cands[c].alive) continue;
          for (size_t i = 0; i < num_missing; ++i) {
            int64_t hi, lo;
            NodeBounds(child_stats, kernel ? &child_uc : nullptr, cands[c],
                       i, seg.shadow_count, &hi, &lo);
            child_hi[j][c * num_missing + i] = hi;
            child_lo[j][c * num_missing + i] = lo;
          }
        }
      }
    }

    // Replace the node's contribution by its children's (Alg. 3 lines
    // 16-19), then reassess every alive candidate.
    num_alive = 0;
    for (size_t c = 0; c < num_cands; ++c) {
      if (!cands[c].alive) continue;
      for (size_t i = 0; i < num_missing; ++i) {
        int64_t total_hi = 0;
        int64_t total_lo = 0;
        for (size_t j = 0; j < num_children; ++j) {
          total_hi += child_hi[j][c * num_missing + i];
          total_lo += child_lo[j][c * num_missing + i];
        }
        cands[c].sum_hi[i] += total_hi - entry.hi[c * num_missing + i];
        cands[c].sum_lo[i] += total_lo - entry.lo[c * num_missing + i];
      }
      if (Reassess(&cands[c], tracker)) ++num_alive;
    }

    // Enqueue children that can still tighten some alive candidate
    // (Alg. 3 lines 29-32); objects are final and never enqueued.
    if (!node.is_leaf) {
      for (size_t j = 0; j < num_children; ++j) {
        double gap = 0.0;
        for (size_t c = 0; c < num_cands; ++c) {
          if (!cands[c].alive) continue;
          for (size_t i = 0; i < num_missing; ++i) {
            gap += static_cast<double>(child_hi[j][c * num_missing + i] -
                                       child_lo[j][c * num_missing + i]);
          }
        }
        if (gap > 0.0) {
          QueueNode child_entry;
          child_entry.page = node.inner_entries[j].child;
          child_entry.source = entry.source;
          child_entry.priority = gap;
          child_entry.hi = std::move(child_hi[j]);
          child_entry.lo = std::move(child_lo[j]);
          queue.push(std::move(child_entry));
        }
      }
    }
  }

  // Every surviving candidate has converged bounds: offer exact penalties.
  for (CandState& cand : cands) {
    if (!cand.alive) continue;
    WSK_CHECK_MSG(cand.Converged(),
                  "KcR batch ended with unconverged candidate bounds");
    ++stats_->candidates_evaluated;
    const uint32_t rank = static_cast<uint32_t>(cand.RankHi());
    const double penalty = pm_.Penalty(rank, cand.cand->edit_distance);
    tracker->OfferExact(*cand.cand, rank, original_.k, penalty);
  }
  if (trace_ != nullptr) {
    trace_->Add(TraceCounter::kNodesSeen, nodes_seen);
    trace_->Add(TraceCounter::kNodesVisited, nodes_visited);
    trace_->Add(TraceCounter::kNodesPruned, nodes_seen - nodes_visited);
    trace_->Add(TraceCounter::kLeafObjectsScored, leaf_objects_scored);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<WhyNotResult> AnswerWhyNotKcr(const ObjectStore& store,
                                       const KcrMultiSource& source,
                                       const SpatialKeywordQuery& original,
                                       const std::vector<ObjectId>& missing,
                                       const WhyNotOptions& options) {
  Timer timer;
  WSK_RETURN_IF_ERROR(internal::ValidateWhyNotInput(original, missing, options,
                                                    store.num_objects()));
  if (original.model != SimilarityModel::kJaccard) {
    return Status::InvalidArgument(
        "the KcR-based algorithm requires the Jaccard similarity model");
  }
  if (source.rank_source == nullptr || source.segments.empty()) {
    return Status::InvalidArgument("KcR source has no segments");
  }
  for (const KcrSegmentSource& seg : source.segments) {
    if (seg.tree == nullptr) {
      return Status::InvalidArgument("KcR segment has no tree");
    }
  }
  StatusOr<MissingSet> built = MissingSet::Build(store, missing);
  if (!built.ok()) return built.status();
  const MissingSet missing_set = std::move(built).value();

  WhyNotResult result;

  // Algorithm 4 line 1: R(M, q).
  const double initial_min_score =
      missing_set.MinScore(original, source.diagonal);
  bool exceeded = false;
  StatusOr<uint32_t> initial_rank = Status::Internal("unreachable");
  {
    TraceSpan span(options.trace, TraceStage::kInitialRank);
    initial_rank = RankFromIndex(*source.rank_source, original,
                                 initial_min_score,
                                 /*limit=*/0, &exceeded, nullptr,
                                 options.cancel, options.use_node_cache,
                                 options.trace,
                                 &result.stats.nodes_expanded);
  }
  if (!initial_rank.ok()) return initial_rank.status();
  result.stats.initial_rank = initial_rank.value();

  if (initial_rank.value() <= original.k) {
    result.already_in_result = true;
    result.refined.doc = original.doc;
    result.refined.k = original.k;
    result.refined.rank = initial_rank.value();
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }

  const uint64_t enum_start_us =
      options.trace != nullptr ? options.trace->NowUs() : 0;
  CandidateEnumerator enumerator(original.doc, missing_set.docs,
                                 store.vocabulary());
  const PenaltyModel pm(options.lambda, original.k, initial_rank.value(),
                        enumerator.universe_size());
  const WhyNotScorer scorer(store, missing_set, original, source.diagonal,
                            enumerator.universe(), options.use_score_kernel);

  BestTracker tracker;
  tracker.SeedBasic(original.doc, initial_rank.value(), options.lambda);

  const std::vector<Candidate> candidates =
      options.sample_size > 0 ? enumerator.SampleByBenefit(options.sample_size)
                              : enumerator.ordered();
  result.stats.candidates_total = candidates.size();
  if (options.trace != nullptr) {
    options.trace->RecordSpan(TraceStage::kEnumeration, enum_start_us,
                              options.trace->NowUs());
  }

  // Algorithm 4 lines 3-7: batches in ascending edit distance, stopping
  // when the keyword penalty alone reaches the best penalty. With
  // num_threads > 0 each batch is divided among workers that share the
  // tracker (Section VII-B7). With kcr_single_batch the whole candidate
  // set goes through one traversal (the Section V-D strawman).
  size_t start = 0;
  while (start < candidates.size()) {
    if (options.cancel != nullptr) {
      WSK_RETURN_IF_ERROR(options.cancel->Check());
    }
    size_t end = start + 1;
    if (options.kcr_single_batch) {
      end = candidates.size();
    } else {
      while (end < candidates.size() &&
             candidates[end].edit_distance ==
                 candidates[start].edit_distance) {
        ++end;
      }
      if (pm.DocPenalty(candidates[start].edit_distance) >=
          tracker.Threshold()) {
        result.stats.candidates_skipped_order += candidates.size() - start;
        break;
      }
    }
    const size_t batch_size = end - start;
    const size_t num_chunks =
        options.num_threads > 0
            ? std::min<size_t>(options.num_threads, batch_size)
            : 1;
    std::vector<WhyNotStats> chunk_stats(num_chunks);
    std::vector<Status> chunk_status(num_chunks);
    auto run_chunk = [&](size_t chunk) {
      const size_t chunk_begin =
          start + chunk * batch_size / num_chunks;
      const size_t chunk_end =
          start + (chunk + 1) * batch_size / num_chunks;
      if (chunk_begin >= chunk_end) return;
      KcrBatchRunner runner(source, original, missing_set, scorer,
                            pm, &chunk_stats[chunk], options.cancel,
                            options.use_node_cache, options.trace);
      chunk_status[chunk] = runner.RunBatch(candidates.data() + chunk_begin,
                                            candidates.data() + chunk_end,
                                            &tracker);
    };
    if (num_chunks > 1) {
      ThreadPool pool(options.num_threads);
      for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
        pool.Submit([&run_chunk, chunk] { run_chunk(chunk); });
      }
      pool.Wait();
    } else {
      run_chunk(0);
    }
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      WSK_RETURN_IF_ERROR(chunk_status[chunk]);
      result.stats.nodes_expanded += chunk_stats[chunk].nodes_expanded;
      result.stats.candidates_pruned_bounds +=
          chunk_stats[chunk].candidates_pruned_bounds;
      // Evaluated = converged to an exact penalty; batch candidates pruned
      // by the penalty bounds are accounted separately, so the candidate
      // dispositions partition the batch.
      result.stats.candidates_evaluated +=
          chunk_stats[chunk].candidates_evaluated;
    }
    start = end;
  }

  result.refined = tracker.best();
  result.stats.elapsed_ms = timer.ElapsedMillis();
  if (options.trace != nullptr) {
    TraceRecorder& t = *options.trace;
    t.Add(TraceCounter::kCandidatesEnumerated, result.stats.candidates_total);
    t.Add(TraceCounter::kCandidatesKept, result.stats.candidates_evaluated);
    t.Add(TraceCounter::kCandidatesPrunedEarlyStop,
          result.stats.candidates_pruned_bounds +
              result.stats.candidates_skipped_order);
    t.Add(TraceCounter::kCandidatesPrunedDominator,
          result.stats.candidates_filtered);
  }
  return result;
}

}  // namespace wsk
