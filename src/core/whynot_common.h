// Internal helpers shared by the why-not algorithm implementations.
#ifndef WSK_CORE_WHYNOT_COMMON_H_
#define WSK_CORE_WHYNOT_COMMON_H_

#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/whynot.h"
#include "data/dataset.h"
#include "data/query.h"
#include "index/topk.h"
#include "text/score_kernel.h"

namespace wsk::internal {

// Materialized view of the missing-object set M.
struct MissingSet {
  std::vector<ObjectId> ids;
  std::vector<Point> locs;
  std::vector<const KeywordSet*> docs;  // borrowed from the store
  KeywordSet union_doc;                 // M.doc

  static StatusOr<MissingSet> Build(const ObjectStore& store,
                                    const std::vector<ObjectId>& missing);

  size_t size() const { return ids.size(); }

  // min_i ST(m_i, query): the score threshold above which an object counts
  // toward R(M, query).
  double MinScore(const SpatialKeywordQuery& query, double diagonal) const;
};

// Per-invocation candidate scorer (docs/PERF.md): freezes the candidate
// universe doc0 ∪ M.doc into a bit index, footprints every missing object's
// doc once (instead of re-scoring it per candidate), and memoizes
// dataset-object footprints for the Opt3 dominator re-checks. All scores
// are bit-identical to the scalar expressions they replace; when the kernel
// is disabled (options or a > 64-term universe) kernel_enabled() is false
// and callers take the scalar reference path.
class WhyNotScorer {
 public:
  // `universe` is the enumerator's doc0 ∪ M.doc: every candidate mask
  // passed to the scoring methods must be a subset of it.
  WhyNotScorer(const ObjectStore& store, const MissingSet& missing,
               const SpatialKeywordQuery& original, double diagonal,
               const KeywordSet& universe, bool enable_kernel);

  bool kernel_enabled() const { return universe_.valid(); }
  const CandidateUniverse& universe() const { return universe_; }

  size_t num_missing() const { return missing_fp_.size(); }
  const Footprint& missing_footprint(size_t i) const {
    return missing_fp_[i];
  }
  // SDist(m_i, q), normalized — precomputed once per invocation.
  double missing_sdist(size_t i) const { return missing_sdist_[i]; }

  // TSim(m_i, cand): bit-identical to TextualSimilarity(m_i.doc, cand.doc).
  double MissingTsim(size_t i, CandidateMask cand) const {
    return ScoreCandidate(missing_fp_[i], cand, model_);
  }

  // min_i ST(m_i, q') for the candidate with mask `cand`; bit-identical to
  // MissingSet::MinScore of the equivalent refined query.
  double MinScore(CandidateMask cand) const;

  // ST(o, q') for the candidate with mask `cand`; bit-identical to
  // Score(o, refined, diagonal). The object's footprint and normalized
  // distance are memoized across candidates (thread-safe).
  double ObjectScore(ObjectId id, CandidateMask cand) const;

 private:
  struct ObjectEntry {
    Footprint fp;
    double sdist = 0.0;
  };

  const ObjectStore& store_;
  CandidateUniverse universe_;
  Point query_loc_;
  double diagonal_ = 1.0;
  double alpha_ = 0.5;
  SimilarityModel model_ = SimilarityModel::kJaccard;
  std::vector<Footprint> missing_fp_;
  std::vector<double> missing_sdist_;
  mutable std::mutex memo_mu_;
  mutable std::unordered_map<ObjectId, ObjectEntry> memo_;
};

// Validates the original query + options; returns a non-OK status for
// out-of-domain arguments.
Status ValidateWhyNotInput(const SpatialKeywordQuery& original,
                           const std::vector<ObjectId>& missing,
                           const WhyNotOptions& options, size_t dataset_size);

// R(M, query) = 1 + #objects scoring strictly above `min_score`, streamed
// from the index. With `limit` > 0, gives up once the count proves the rank
// exceeds `limit` (sets *exceeded). Dominator ids are appended to
// *dominators when it is non-null. `cancel` aborts the underlying
// traversal at node-visit granularity. `trace` receives a rank_query span
// plus the traversal's node counters; *nodes_expanded (when non-null) is
// incremented by the nodes this traversal materialized.
StatusOr<uint32_t> RankFromIndex(const TopKSource& tree,
                                 const SpatialKeywordQuery& query,
                                 double min_score, int64_t limit,
                                 bool* exceeded,
                                 std::vector<ObjectId>* dominators,
                                 const CancelToken* cancel = nullptr,
                                 bool use_cache = true,
                                 TraceRecorder* trace = nullptr,
                                 uint64_t* nodes_expanded = nullptr);

}  // namespace wsk::internal

#endif  // WSK_CORE_WHYNOT_COMMON_H_
