// Internal helpers shared by the why-not algorithm implementations.
#ifndef WSK_CORE_WHYNOT_COMMON_H_
#define WSK_CORE_WHYNOT_COMMON_H_

#include <vector>

#include "common/status.h"
#include "core/whynot.h"
#include "data/dataset.h"
#include "data/query.h"
#include "index/topk.h"

namespace wsk::internal {

// Materialized view of the missing-object set M.
struct MissingSet {
  std::vector<ObjectId> ids;
  std::vector<Point> locs;
  std::vector<const KeywordSet*> docs;  // borrowed from the dataset
  KeywordSet union_doc;                 // M.doc

  static StatusOr<MissingSet> Build(const Dataset& dataset,
                                    const std::vector<ObjectId>& missing);

  size_t size() const { return ids.size(); }

  // min_i ST(m_i, query): the score threshold above which an object counts
  // toward R(M, query).
  double MinScore(const SpatialKeywordQuery& query, double diagonal) const;
};

// Validates the original query + options; returns a non-OK status for
// out-of-domain arguments.
Status ValidateWhyNotInput(const SpatialKeywordQuery& original,
                           const std::vector<ObjectId>& missing,
                           const WhyNotOptions& options, size_t dataset_size);

// R(M, query) = 1 + #objects scoring strictly above `min_score`, streamed
// from the index. With `limit` > 0, gives up once the count proves the rank
// exceeds `limit` (sets *exceeded). Dominator ids are appended to
// *dominators when it is non-null. `cancel` aborts the underlying
// traversal at node-visit granularity.
StatusOr<uint32_t> RankFromIndex(const TopKSource& tree,
                                 const SpatialKeywordQuery& query,
                                 double min_score, int64_t limit,
                                 bool* exceeded,
                                 std::vector<ObjectId>* dominators,
                                 const CancelToken* cancel = nullptr);

}  // namespace wsk::internal

#endif  // WSK_CORE_WHYNOT_COMMON_H_
