#include "core/candidates.h"

#include <algorithm>

#include "common/macros.h"

namespace wsk {

bool CanonicalOrderLess(const Candidate& a, const Candidate& b) {
  if (a.edit_distance != b.edit_distance)
    return a.edit_distance < b.edit_distance;
  if (a.benefit != b.benefit) return a.benefit > b.benefit;
  return a.doc < b.doc;
}

CandidateEnumerator::CandidateEnumerator(
    const KeywordSet& doc0, const std::vector<const KeywordSet*>& missing_docs,
    const Vocabulary& vocabulary) {
  KeywordSet m_union;
  for (const KeywordSet* doc : missing_docs) m_union = m_union.Union(*doc);
  universe_ = doc0.Union(m_union);
  const uint32_t n = static_cast<uint32_t>(universe_.size());
  WSK_CHECK_MSG(n <= 24, "candidate universe too large: %u terms", n);
  if (n == 0) return;

  // Per-term data: membership in doc0 and total particularity over the
  // missing objects. Parti(M, t) = Σ_i Parti(m_i, t).
  const std::vector<TermId>& terms = universe_.terms();
  std::vector<bool> in_doc0(n);
  std::vector<double> particularity(n, 0.0);
  for (uint32_t i = 0; i < n; ++i) {
    in_doc0[i] = doc0.Contains(terms[i]);
    for (const KeywordSet* doc : missing_docs) {
      particularity[i] += vocabulary.Particularity(*doc, terms[i]);
    }
  }

  const uint32_t total = (1u << n) - 1;  // skip the empty set (mask 0)
  ordered_.reserve(total);
  for (uint32_t mask = 1; mask <= total; ++mask) {
    KeywordSet doc;
    {
      std::vector<TermId> picked;
      for (uint32_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) picked.push_back(terms[i]);
      }
      doc = KeywordSet::FromSorted(std::move(picked));
    }
    uint32_t ed = 0;
    double benefit = 0.0;
    for (uint32_t i = 0; i < n; ++i) {
      const bool in_candidate = (mask & (1u << i)) != 0;
      if (in_candidate == in_doc0[i]) continue;
      ++ed;
      // Insertions of particular terms help; deletions of particular terms
      // hurt (and deleting a term irrelevant to M, whose particularity is
      // negative, helps).
      benefit += in_candidate ? particularity[i] : -particularity[i];
    }
    if (ed == 0) continue;  // the candidate equals doc0
    ordered_.push_back(Candidate{std::move(doc), ed, benefit});
  }

  std::sort(ordered_.begin(), ordered_.end(), CanonicalOrderLess);
}

std::vector<Candidate> CandidateEnumerator::UnorderedCopy() const {
  std::vector<Candidate> copy = ordered_;
  // Deterministic but order-agnostic: sort purely by keyword set.
  std::sort(copy.begin(), copy.end(),
            [](const Candidate& a, const Candidate& b) { return a.doc < b.doc; });
  return copy;
}

std::vector<Candidate> CandidateEnumerator::SampleByBenefit(
    uint32_t sample_size) const {
  if (sample_size >= ordered_.size()) return ordered_;
  std::vector<Candidate> by_benefit = ordered_;
  std::sort(by_benefit.begin(), by_benefit.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.benefit != b.benefit) return a.benefit > b.benefit;
              if (a.edit_distance != b.edit_distance)
                return a.edit_distance < b.edit_distance;
              return a.doc < b.doc;
            });
  by_benefit.resize(sample_size);
  std::sort(by_benefit.begin(), by_benefit.end(), CanonicalOrderLess);
  return by_benefit;
}

}  // namespace wsk
