// Diagnostic decomposition of a why-not situation: *why* is the object
// missing — too far, or textually too dissimilar? Useful for surfacing the
// refined query's rationale to end users (the examples print it) and for
// deciding between keyword and preference refinement.
#ifndef WSK_CORE_EXPLAIN_H_
#define WSK_CORE_EXPLAIN_H_

#include <string>

#include "common/status.h"
#include "core/engine.h"
#include "data/query.h"
#include "observability/trace.h"

namespace wsk {

struct MissExplanation {
  bool in_result = false;  // the object is not actually missing
  uint32_t rank = 0;
  uint32_t k = 0;

  // Score decomposition of the missing object: ST = spatial + textual.
  double missing_score = 0.0;
  double spatial_term = 0.0;  // alpha * (1 - SDist)
  double textual_term = 0.0;  // (1-alpha) * TSim

  // The k-th result object's score: what the missing object must beat.
  double kth_score = 0.0;
  double deficit = 0.0;  // kth_score - missing_score (>= 0 when missing)

  // Keyword overlap between the query and the object.
  size_t matched_keywords = 0;
  size_t query_keywords = 0;

  // Human-readable one-paragraph summary.
  std::string ToString() const;
};

// Explains the standing of `object` under `query` using the engine's
// indexes for the ranking. `trace` (optional, borrowed) records the
// explain span and one annotation per explained object — the why-not CLI
// attaches these to the exported Chrome trace.
StatusOr<MissExplanation> ExplainMiss(const WhyNotEngine& engine,
                                      const SpatialKeywordQuery& query,
                                      ObjectId object,
                                      TraceRecorder* trace = nullptr);

}  // namespace wsk

#endif  // WSK_CORE_EXPLAIN_H_
