#include "core/whynot_bs.h"

#include <atomic>
#include <mutex>
#include <unordered_set>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/candidates.h"
#include "core/penalty.h"
#include "core/whynot_common.h"
#include "observability/trace.h"

namespace wsk {

namespace {

using internal::MissingSet;
using internal::RankFromIndex;
using internal::WhyNotScorer;

// Search state shared between candidate-evaluation workers (Section IV-C4:
// p_c and the rank bounds must be synchronized across threads).
struct SharedState {
  std::mutex mu;

  double best_penalty;      // p_c
  RefinedQuery best;
  bool best_is_seed = true;  // the basic refinement wins ties outright
  Candidate best_cand;       // tie-break key, valid once !best_is_seed

  // Candidates at enumeration index >= stop_order are skipped (the
  // enumeration-order early termination). An index rather than a flag so
  // that a worker still holding an earlier candidate finishes it —
  // otherwise the thread schedule could decide which candidate wins.
  uint64_t stop_order = UINT64_MAX;

  // Opt3: objects seen to dominate the missing set under some candidate.
  std::unordered_set<ObjectId> dominator_cache;
  std::vector<ObjectId> dominator_list;  // stable snapshot source

  // Counters (guarded by mu). Every candidate fetched by a worker lands in
  // exactly one of the first four (the unfetched tail is folded into the
  // skipped total afterwards), which keeps
  //   total = evaluated + filtered + skipped + pruned_bounds
  // exact — the invariant the differential tests check per algorithm.
  uint64_t evaluated = 0;      // rank queries run (including capped ones)
  uint64_t filtered = 0;       // Opt3 dominator-cache prunes
  uint64_t skipped = 0;        // Opt2 order-stop skips, fetched candidates
  uint64_t pruned_bounds = 0;  // Eqn 6 rank bound < 1
  uint64_t nodes_expanded = 0;  // nodes materialized by the rank queries
};

// Evaluates candidate `cand` (enumeration position `order`) and updates the
// shared state. Returns non-OK only on I/O failure.
Status EvaluateCandidate(const ObjectStore& store, const TopKSource& source,
                         double diagonal,
                         const SpatialKeywordQuery& original,
                         const MissingSet& missing,
                         const WhyNotScorer& scorer, const PenaltyModel& pm,
                         const WhyNotOptions& options, const Candidate& cand,
                         uint64_t order, SharedState* state) {
  // Cancellation check per candidate; the rank query below re-checks at
  // every node visit through the token passed to RankFromIndex.
  if (options.cancel != nullptr) {
    WSK_RETURN_IF_ERROR(options.cancel->Check());
  }
  TraceSpan eval_span(options.trace, TraceStage::kCandidateEval);
  double p_c;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (order >= state->stop_order) {
      ++state->skipped;
      return Status::Ok();
    }
    p_c = state->best_penalty;
  }

  const double doc_pen = pm.DocPenalty(cand.edit_distance);
  if (options.opt_enumeration_order && doc_pen >= p_c) {
    // Candidates are ordered canonically, so neither this candidate nor any
    // later one can beat p_c on the keyword penalty alone: stop the
    // enumeration here. Exception: at doc_pen == p_c this candidate can
    // still tie, and it wins the tie when it precedes the incumbent in
    // canonical order — then it must be evaluated, not stopped on. (Every
    // later candidate is canonically after this one, so the stop itself
    // never needs to move past `order`.)
    std::lock_guard<std::mutex> lock(state->mu);
    // best_penalty only decreases, so doc_pen >= best_penalty still holds.
    const bool wins_tie = doc_pen == state->best_penalty &&
                          !state->best_is_seed &&
                          CanonicalOrderLess(cand, state->best_cand);
    if (!wins_tie) {
      state->stop_order = std::min(state->stop_order, order);
      ++state->skipped;  // the triggering candidate is skipped, not run
      return Status::Ok();
    }
  }

  // Eqn 6 rank bound: shared by Opt1 (query early stop) and Opt3 (cache
  // filtering); the two optimizations consume it independently.
  const int64_t rank_bound = pm.RankUpperBound(p_c, cand.edit_distance);

  // Opt1: abort hopeless candidates outright and cap query processing.
  int64_t rank_limit = 0;  // 0 = run the query to completion (plain BS)
  if (options.opt_early_stop) {
    if (rank_bound < 1) {  // cannot win at any rank
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->pruned_bounds;
      return Status::Ok();
    }
    rank_limit = rank_bound;
  }

  SpatialKeywordQuery refined = original;
  refined.doc = cand.doc;
  // Kernel path: the candidate becomes a mask over doc0 ∪ M.doc; the
  // missing objects' footprints and distances were computed once up front.
  const bool kernel = scorer.kernel_enabled();
  const CandidateMask cand_mask =
      kernel ? scorer.universe().MaskOf(cand.doc) : 0;
  const double min_score = kernel ? scorer.MinScore(cand_mask)
                                  : missing.MinScore(refined, diagonal);

  // Opt3: prune the candidate before running its query — immediately when
  // no rank can beat p_c (the Eqn 6 bound again, so it counts as a bound
  // prune), otherwise by counting cached dominators that still dominate
  // under the new keywords against the rank bound.
  if (options.opt_keyword_filtering && rank_bound < 1) {
    std::lock_guard<std::mutex> lock(state->mu);
    ++state->pruned_bounds;
    return Status::Ok();
  }
  if (options.opt_keyword_filtering) {
    TraceSpan probe_span(options.trace, TraceStage::kDominatorProbe);
    std::vector<ObjectId> snapshot;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      snapshot = state->dominator_list;
    }
    int64_t still_dominating = 0;
    uint64_t probes = 0;
    for (ObjectId id : snapshot) {
      const double score = kernel
                               ? scorer.ObjectScore(id, cand_mask)
                               : Score(*store.FindObject(id), refined,
                                       diagonal);
      ++probes;
      if (score > min_score) ++still_dominating;
      if (still_dominating >= rank_bound) break;
    }
    if (options.trace != nullptr) {
      options.trace->Add(TraceCounter::kDominatorCacheProbes, probes);
      if (kernel) {
        options.trace->Add(TraceCounter::kKernelInvocations, probes);
      }
    }
    if (still_dominating >= rank_bound) {
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->filtered;
      return Status::Ok();
    }
  }
  if (options.trace != nullptr && kernel) {
    // MaskOf + MinScore above dispatched one kernel scoring pass.
    options.trace->Add(TraceCounter::kKernelInvocations);
  }

  bool exceeded = false;
  std::vector<ObjectId> dominators;
  uint64_t rank_nodes = 0;
  StatusOr<uint32_t> rank = RankFromIndex(
      source, refined, min_score, rank_limit, &exceeded,
      options.opt_keyword_filtering ? &dominators : nullptr, options.cancel,
      options.use_node_cache, options.trace, &rank_nodes);
  if (!rank.ok()) return rank.status();

  std::lock_guard<std::mutex> lock(state->mu);
  ++state->evaluated;
  state->nodes_expanded += rank_nodes;
  if (options.opt_keyword_filtering) {
    for (ObjectId id : dominators) {
      if (state->dominator_cache.insert(id).second) {
        state->dominator_list.push_back(id);
      }
    }
  }
  if (exceeded) return Status::Ok();

  const double penalty = pm.Penalty(rank.value(), cand.edit_distance);
  if (penalty < state->best_penalty ||
      (penalty == state->best_penalty && !state->best_is_seed &&
       CanonicalOrderLess(cand, state->best_cand))) {
    state->best_penalty = penalty;
    state->best_is_seed = false;
    state->best_cand = cand;
    state->best.doc = cand.doc;
    state->best.rank = rank.value();
    state->best.k = std::max(original.k, rank.value());
    state->best.edit_distance = cand.edit_distance;
    state->best.penalty = penalty;
  }
  return Status::Ok();
}

}  // namespace

StatusOr<WhyNotResult> AnswerWhyNotBasic(const ObjectStore& store,
                                         const TopKSource& source,
                                         double diagonal,
                                         const SpatialKeywordQuery& original,
                                         const std::vector<ObjectId>& missing,
                                         const WhyNotOptions& options) {
  Timer timer;
  WSK_RETURN_IF_ERROR(internal::ValidateWhyNotInput(original, missing, options,
                                                    store.num_objects()));
  StatusOr<MissingSet> built = MissingSet::Build(store, missing);
  if (!built.ok()) return built.status();
  const MissingSet missing_set = std::move(built).value();

  WhyNotResult result;

  // Step 1: R(M, q) under the original query.
  const double initial_min_score = missing_set.MinScore(original, diagonal);
  bool exceeded = false;
  StatusOr<uint32_t> initial_rank = Status::Internal("unreachable");
  {
    TraceSpan span(options.trace, TraceStage::kInitialRank);
    initial_rank = RankFromIndex(source, original, initial_min_score,
                                 /*limit=*/0, &exceeded, nullptr,
                                 options.cancel, options.use_node_cache,
                                 options.trace,
                                 &result.stats.nodes_expanded);
  }
  if (!initial_rank.ok()) return initial_rank.status();
  result.stats.initial_rank = initial_rank.value();

  if (initial_rank.value() <= original.k) {
    result.already_in_result = true;
    result.refined.doc = original.doc;
    result.refined.k = original.k;
    result.refined.rank = initial_rank.value();
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }

  // Step 2: enumerate candidates and seed the best refined query with the
  // "basic" refinement (keep doc0, enlarge k to R), whose penalty is lambda.
  const uint64_t enum_start_us =
      options.trace != nullptr ? options.trace->NowUs() : 0;
  CandidateEnumerator enumerator(original.doc, missing_set.docs,
                                 store.vocabulary());
  const PenaltyModel pm(options.lambda, original.k, initial_rank.value(),
                        enumerator.universe_size());
  const WhyNotScorer scorer(store, missing_set, original, diagonal,
                            enumerator.universe(), options.use_score_kernel);

  SharedState state;
  state.best_penalty = options.lambda;
  state.best.doc = original.doc;
  state.best.k = initial_rank.value();
  state.best.rank = initial_rank.value();
  state.best.edit_distance = 0;
  state.best.penalty = options.lambda;

  std::vector<Candidate> candidates =
      options.sample_size > 0
          ? enumerator.SampleByBenefit(options.sample_size)
          : (options.opt_enumeration_order ? enumerator.ordered()
                                           : enumerator.UnorderedCopy());
  result.stats.candidates_total = candidates.size();
  if (options.trace != nullptr) {
    options.trace->RecordSpan(TraceStage::kEnumeration, enum_start_us,
                              options.trace->NowUs());
  }

  Status worker_status;  // first error, guarded by status_mu
  std::mutex status_mu;
  std::atomic<size_t> next_index{0};

  auto worker = [&]() {
    for (;;) {
      const size_t i = next_index.fetch_add(1);
      if (i >= candidates.size()) return;
      {
        std::lock_guard<std::mutex> lock(state.mu);
        if (i >= state.stop_order) {
          ++state.skipped;  // this index was fetched; the rest are tail
          return;
        }
      }
      Status s = EvaluateCandidate(store, source, diagonal, original,
                                   missing_set, scorer, pm, options,
                                   candidates[i], i, &state);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(status_mu);
        if (worker_status.ok()) worker_status = s;
        return;
      }
    }
  };

  if (options.num_threads > 0) {
    ThreadPool pool(options.num_threads);
    for (int t = 0; t < options.num_threads; ++t) pool.Submit(worker);
    pool.Wait();
  } else {
    worker();
  }
  WSK_RETURN_IF_ERROR(worker_status);

  result.refined = state.best;
  result.stats.candidates_evaluated = state.evaluated;
  result.stats.candidates_filtered = state.filtered;
  result.stats.candidates_pruned_bounds = state.pruned_bounds;
  // Fetched candidates were counted where they were dispatched; the
  // unfetched tail behind the order stop is skipped wholesale.
  result.stats.candidates_skipped_order =
      state.skipped + candidates.size() -
      std::min<uint64_t>(next_index.load(), candidates.size());
  result.stats.nodes_expanded += state.nodes_expanded;
  result.stats.elapsed_ms = timer.ElapsedMillis();
  if (options.trace != nullptr) {
    TraceRecorder& t = *options.trace;
    t.Add(TraceCounter::kCandidatesEnumerated, result.stats.candidates_total);
    t.Add(TraceCounter::kCandidatesKept, result.stats.candidates_evaluated);
    t.Add(TraceCounter::kCandidatesPrunedEarlyStop,
          result.stats.candidates_pruned_bounds +
              result.stats.candidates_skipped_order);
    t.Add(TraceCounter::kCandidatesPrunedDominator,
          result.stats.candidates_filtered);
  }
  return result;
}

}  // namespace wsk
