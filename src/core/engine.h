// WhyNotEngine: the library facade.
//
// Owns the disk-resident SetR-tree and KcR-tree built over a dataset (each
// in its own paged file with its own 4 MiB LRU buffer, as in the paper's
// setup), answers spatial keyword top-k queries, and dispatches why-not
// queries to the three algorithms:
//   kBasic      — BS        (Section IV-B; no optimizations, SetR-tree)
//   kAdvanced   — AdvancedBS (Section IV-C optimizations, SetR-tree)
//   kKcrBased   — KcRBased  (Section V bound-and-prune, KcR-tree)
#ifndef WSK_CORE_ENGINE_H_
#define WSK_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "core/backend.h"
#include "core/whynot.h"
#include "data/dataset.h"
#include "data/query.h"
#include "index/kcr_tree.h"
#include "index/setr_tree.h"
#include "storage/buffer_pool.h"
#include "storage/node_cache.h"
#include "storage/pager.h"

namespace wsk {

class WhyNotEngine : public QueryBackend {
 public:
  struct Config {
    std::string work_dir = "/tmp";        // index files land here
    uint32_t page_size = kDefaultPageSize;  // 4 KiB (Section VII-A1)
    size_t buffer_bytes = 4u << 20;         // 4 MiB per index
    uint32_t node_capacity = 100;
    SimilarityModel model = SimilarityModel::kJaccard;
    // Byte budget of the shared decoded-node cache both trees use after
    // bulk load (docs/STORAGE.md "Node cache"). 0 disables the cache
    // entirely (every node access re-reads and re-decodes pages).
    size_t node_cache_bytes = 8u << 20;  // 8 MiB
    // Node format for the built indexes and whether to serve reads from an
    // mmap of the finalized files. Both default to the paper's setup (v1,
    // buffered) so physical-read counts keep matching the published I/O
    // accounting; frozen segments opt into v2+mmap on their own
    // (docs/STORAGE.md "v2 node format & mmap").
    uint8_t node_format = kNodeFormatV1;
    bool mmap_reads = false;
  };

  // Bulk-loads both indexes over `dataset`. The dataset must outlive the
  // engine (it is the authoritative object table; the missing objects'
  // keyword sets are read from it).
  static StatusOr<std::unique_ptr<WhyNotEngine>> Build(const Dataset* dataset,
                                                       const Config& config);

  ~WhyNotEngine();
  WhyNotEngine(const WhyNotEngine&) = delete;
  WhyNotEngine& operator=(const WhyNotEngine&) = delete;

  // Thread-safety contract
  // ----------------------
  // The const query methods — Answer(), TopK(), Rank(), ObjectAtPosition()
  // — are safe to call concurrently from any number of threads over one
  // engine: the shared buffer pools are internally synchronized, the
  // per-pager IoStats counters are relaxed atomics, and all per-query
  // state is local. The service layer (src/service/) relies on this.
  //
  // DropCaches() and ResetIoStats() mutate shared state and require
  // exclusive access: they must not run while any query is in flight.
  // That contract is enforced — both WSK_CHECK that no query is active
  // (tracked by an inflight counter the query methods maintain).
  //
  // Note: WhyNotResult.stats.io_reads is a before/after delta of the
  // shared physical-read counter, so under concurrent queries it
  // attributes overlapping I/O to every query that was in flight; treat it
  // as exact only for sequential use (aggregate counters stay exact).

  // Answers the keyword-adapted why-not query (Definition 2) with the given
  // algorithm. When options.num_threads is 0 and the algorithm is kBasic,
  // this reproduces the paper's unoptimized BS exactly (the optimization
  // switches in `options` are ignored for kBasic — they are forced off).
  // options.cancel aborts the query with kCancelled / kDeadlineExceeded.
  StatusOr<WhyNotResult> Answer(WhyNotAlgorithm algorithm,
                                const SpatialKeywordQuery& query,
                                const std::vector<ObjectId>& missing,
                                const WhyNotOptions& options) const override;

  // Spatial keyword top-k over the SetR-tree. `cancel` (optional,
  // borrowed) aborts the traversal at node-visit granularity; `trace`
  // (optional, borrowed) records the traversal span and node counters.
  StatusOr<std::vector<ScoredObject>> TopK(
      const SpatialKeywordQuery& query, const CancelToken* cancel = nullptr,
      TraceRecorder* trace = nullptr) const override;

  // One shared SetR-tree walk for all items; per-item results bit-identical
  // to TopK (docs/BATCHING.md).
  std::vector<BackendBatchResult> TopKBatch(
      const std::vector<BackendBatchItem>& items,
      TraceRecorder* trace = nullptr) const override;

  // R(object, query) per Eqn 3.
  StatusOr<uint32_t> Rank(const SpatialKeywordQuery& query,
                          ObjectId object) const;

  // The object at the given 1-based position of the ranked stream (used by
  // the experiments to pick "the object ranked 5*k0+1").
  StatusOr<ObjectId> ObjectAtPosition(const SpatialKeywordQuery& query,
                                      uint32_t position) const;

  // Queries currently executing inside this engine (diagnostics / tests).
  int inflight_queries() const {
    return inflight_queries_.load(std::memory_order_relaxed);
  }

  // Drops both buffer pools and the decoded-node cache (cold-cache
  // experiments). Requires no query in flight (see the thread-safety
  // contract above).
  Status DropCaches() const;

  // The shared decoded-node cache, or nullptr when disabled
  // (config.node_cache_bytes == 0).
  NodeCache* node_cache() const override { return node_cache_.get(); }

  // QueryBackend I/O view: the two pagers' cumulative counters.
  BackendIoSnapshot io_snapshot() const override;

  const Dataset& dataset() const { return *dataset_; }
  const SetRTree& setr_tree() const { return *setr_tree_; }
  const KcrTree& kcr_tree() const { return *kcr_tree_; }
  const Config& config() const { return config_; }

  // I/O counters of the two index files.
  IoStats& setr_io() const { return setr_pager_->io_stats(); }
  IoStats& kcr_io() const { return kcr_pager_->io_stats(); }

  // The backing pagers (file size / map state introspection, wsk_cli
  // inspect).
  const Pager& setr_pager() const { return *setr_pager_; }
  const Pager& kcr_pager() const { return *kcr_pager_; }

  // Requires no query in flight (see the thread-safety contract above).
  void ResetIoStats() const;

 private:
  WhyNotEngine() = default;

  // RAII inflight-query marker backing the thread-safety contract.
  class QueryScope {
   public:
    explicit QueryScope(const WhyNotEngine* engine) : engine_(engine) {
      engine_->inflight_queries_.fetch_add(1, std::memory_order_relaxed);
    }
    ~QueryScope() {
      engine_->inflight_queries_.fetch_sub(1, std::memory_order_relaxed);
    }
    QueryScope(const QueryScope&) = delete;
    QueryScope& operator=(const QueryScope&) = delete;

   private:
    const WhyNotEngine* engine_;
  };

  const Dataset* dataset_ = nullptr;
  Config config_;
  std::string setr_path_;
  std::string kcr_path_;
  std::unique_ptr<Pager> setr_pager_;
  std::unique_ptr<Pager> kcr_pager_;
  std::unique_ptr<BufferPool> setr_pool_;
  std::unique_ptr<BufferPool> kcr_pool_;
  std::unique_ptr<SetRTree> setr_tree_;
  std::unique_ptr<KcrTree> kcr_tree_;
  std::unique_ptr<NodeCache> node_cache_;
  mutable std::atomic<int> inflight_queries_{0};
};

}  // namespace wsk

#endif  // WSK_CORE_ENGINE_H_
