// WhyNotEngine: the library facade.
//
// Owns the disk-resident SetR-tree and KcR-tree built over a dataset (each
// in its own paged file with its own 4 MiB LRU buffer, as in the paper's
// setup), answers spatial keyword top-k queries, and dispatches why-not
// queries to the three algorithms:
//   kBasic      — BS        (Section IV-B; no optimizations, SetR-tree)
//   kAdvanced   — AdvancedBS (Section IV-C optimizations, SetR-tree)
//   kKcrBased   — KcRBased  (Section V bound-and-prune, KcR-tree)
#ifndef WSK_CORE_ENGINE_H_
#define WSK_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/whynot.h"
#include "data/dataset.h"
#include "data/query.h"
#include "index/kcr_tree.h"
#include "index/setr_tree.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace wsk {

enum class WhyNotAlgorithm {
  kBasic,     // BS
  kAdvanced,  // AdvancedBS
  kKcrBased,  // KcRBased
};

const char* WhyNotAlgorithmName(WhyNotAlgorithm algorithm);

class WhyNotEngine {
 public:
  struct Config {
    std::string work_dir = "/tmp";        // index files land here
    uint32_t page_size = kDefaultPageSize;  // 4 KiB (Section VII-A1)
    size_t buffer_bytes = 4u << 20;         // 4 MiB per index
    uint32_t node_capacity = 100;
    SimilarityModel model = SimilarityModel::kJaccard;
  };

  // Bulk-loads both indexes over `dataset`. The dataset must outlive the
  // engine (it is the authoritative object table; the missing objects'
  // keyword sets are read from it).
  static StatusOr<std::unique_ptr<WhyNotEngine>> Build(const Dataset* dataset,
                                                       const Config& config);

  ~WhyNotEngine();
  WhyNotEngine(const WhyNotEngine&) = delete;
  WhyNotEngine& operator=(const WhyNotEngine&) = delete;

  // Answers the keyword-adapted why-not query (Definition 2) with the given
  // algorithm. When options.num_threads is 0 and the algorithm is kBasic,
  // this reproduces the paper's unoptimized BS exactly (the optimization
  // switches in `options` are ignored for kBasic — they are forced off).
  StatusOr<WhyNotResult> Answer(WhyNotAlgorithm algorithm,
                                const SpatialKeywordQuery& query,
                                const std::vector<ObjectId>& missing,
                                const WhyNotOptions& options) const;

  // Spatial keyword top-k over the SetR-tree.
  StatusOr<std::vector<ScoredObject>> TopK(
      const SpatialKeywordQuery& query) const;

  // R(object, query) per Eqn 3.
  StatusOr<uint32_t> Rank(const SpatialKeywordQuery& query,
                          ObjectId object) const;

  // The object at the given 1-based position of the ranked stream (used by
  // the experiments to pick "the object ranked 5*k0+1").
  StatusOr<ObjectId> ObjectAtPosition(const SpatialKeywordQuery& query,
                                      uint32_t position) const;

  // Drops both buffer pools (cold-cache experiments).
  Status DropCaches() const;

  const Dataset& dataset() const { return *dataset_; }
  const SetRTree& setr_tree() const { return *setr_tree_; }
  const KcrTree& kcr_tree() const { return *kcr_tree_; }
  const Config& config() const { return config_; }

  // I/O counters of the two index files.
  IoStats& setr_io() const { return setr_pager_->io_stats(); }
  IoStats& kcr_io() const { return kcr_pager_->io_stats(); }
  void ResetIoStats() const;

 private:
  WhyNotEngine() = default;

  const Dataset* dataset_ = nullptr;
  Config config_;
  std::string setr_path_;
  std::string kcr_path_;
  std::unique_ptr<Pager> setr_pager_;
  std::unique_ptr<Pager> kcr_pager_;
  std::unique_ptr<BufferPool> setr_pool_;
  std::unique_ptr<BufferPool> kcr_pool_;
  std::unique_ptr<SetRTree> setr_tree_;
  std::unique_ptr<KcrTree> kcr_tree_;
};

}  // namespace wsk

#endif  // WSK_CORE_ENGINE_H_
