// The basic why-not algorithm and its optimized variant (Section IV).
//
// For every candidate keyword set doc', a spatial keyword query is run on
// the SetR-tree until all missing objects are retrieved (or, with Opt1,
// until the Eqn 6 rank bound proves the candidate cannot beat the best
// penalty). Options toggle the Section IV-C optimizations:
//   * all switches off + num_threads 0  →  the paper's BS
//   * all switches on (+ threads)       →  AdvancedBS
#ifndef WSK_CORE_WHYNOT_BS_H_
#define WSK_CORE_WHYNOT_BS_H_

#include <vector>

#include "core/whynot.h"
#include "data/dataset.h"
#include "data/query.h"
#include "index/setr_tree.h"

namespace wsk {

// Answers the keyword-adapted why-not query (Definition 2) by candidate
// enumeration over any best-first top-k source. `missing` must be
// non-empty; the missing objects must not already rank within the original
// top-k (if they do, the result reports already_in_result). The original
// query's doc must be non-empty and alpha strictly inside (0, 1).
//
// The generalized form runs over (object store, top-k source, diagonal) so
// the same implementation serves a single frozen SetR-tree and a live
// multi-segment snapshot (docs/SEGMENTS.md).
StatusOr<WhyNotResult> AnswerWhyNotBasic(const ObjectStore& store,
                                         const TopKSource& source,
                                         double diagonal,
                                         const SpatialKeywordQuery& original,
                                         const std::vector<ObjectId>& missing,
                                         const WhyNotOptions& options);

// Single-tree convenience used by the frozen-dataset engine and tests.
inline StatusOr<WhyNotResult> AnswerWhyNotBasic(
    const Dataset& dataset, const SetRTree& tree,
    const SpatialKeywordQuery& original, const std::vector<ObjectId>& missing,
    const WhyNotOptions& options) {
  return AnswerWhyNotBasic(dataset, tree, tree.diagonal(), original, missing,
                           options);
}

}  // namespace wsk

#endif  // WSK_CORE_WHYNOT_BS_H_
