// The basic why-not algorithm and its optimized variant (Section IV).
//
// For every candidate keyword set doc', a spatial keyword query is run on
// the SetR-tree until all missing objects are retrieved (or, with Opt1,
// until the Eqn 6 rank bound proves the candidate cannot beat the best
// penalty). Options toggle the Section IV-C optimizations:
//   * all switches off + num_threads 0  →  the paper's BS
//   * all switches on (+ threads)       →  AdvancedBS
#ifndef WSK_CORE_WHYNOT_BS_H_
#define WSK_CORE_WHYNOT_BS_H_

#include <vector>

#include "core/whynot.h"
#include "data/dataset.h"
#include "data/query.h"
#include "index/setr_tree.h"

namespace wsk {

// Answers the keyword-adapted why-not query (Definition 2) by candidate
// enumeration over the SetR-tree. `missing` must be non-empty; the missing
// objects must not already rank within the original top-k (if they do, the
// result reports already_in_result). The original query's doc must be
// non-empty and alpha strictly inside (0, 1).
StatusOr<WhyNotResult> AnswerWhyNotBasic(const Dataset& dataset,
                                         const SetRTree& tree,
                                         const SpatialKeywordQuery& original,
                                         const std::vector<ObjectId>& missing,
                                         const WhyNotOptions& options);

}  // namespace wsk

#endif  // WSK_CORE_WHYNOT_BS_H_
