// QueryBackend: the servable surface the service layer runs against.
//
// Two implementations exist: WhyNotEngine (a frozen dataset, bulk-loaded
// trees, no mutations) and SegmentedEngine (src/segment/: a live dataset
// with a mutable delta segment and background merge). QueryService talks
// only to this interface, so the same front end serves both
// (docs/SERVICE.md, docs/SEGMENTS.md).
#ifndef WSK_CORE_BACKEND_H_
#define WSK_CORE_BACKEND_H_

#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/whynot.h"
#include "data/dataset.h"
#include "data/query.h"
#include "observability/trace.h"
#include "storage/node_cache.h"

namespace wsk {

enum class WhyNotAlgorithm {
  kBasic,     // BS
  kAdvanced,  // AdvancedBS
  kKcrBased,  // KcRBased
};

const char* WhyNotAlgorithmName(WhyNotAlgorithm algorithm);

// Point-in-time view of the backend's cumulative I/O counters, split by
// index family. Monotonic across the backend's lifetime — a segmented
// backend folds retired segments' totals into these numbers so counters
// never run backwards across a merge.
struct BackendIoSnapshot {
  uint64_t setr_physical = 0;
  uint64_t kcr_physical = 0;
  uint64_t setr_logical = 0;
  uint64_t kcr_logical = 0;
  // Pages served from the mmap zero-copy path (frozen segments). Counted
  // apart from physical reads so the paper's buffered-I/O metric keeps its
  // meaning when mapping is on.
  uint64_t setr_mapped = 0;
  uint64_t kcr_mapped = 0;
  uint64_t setr_cache_hits = 0;
  uint64_t kcr_cache_hits = 0;
  uint64_t setr_cache_misses = 0;
  uint64_t kcr_cache_misses = 0;
};

// Live-dataset counters for the segment subsystem; `valid` is false on
// frozen backends (the segment.* metrics lines are omitted).
struct SegmentCountersSnapshot {
  bool valid = false;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t merges = 0;
  uint64_t rotations = 0;
  uint64_t segments_retired = 0;
  uint64_t frozen_segments = 0;  // gauge
  uint64_t delta_objects = 0;    // gauge (active + sealed deltas)
  uint64_t live_objects = 0;     // gauge
  // Background-merge visibility (docs/OBSERVABILITY.md "Continuous
  // telemetry"): total wall time the merge worker spent in completed
  // passes, the duration of the most recent pass, and how many post-
  // watermark tombstones swaps replayed onto fresh segments.
  uint64_t merge_busy_us = 0;
  uint64_t merge_last_us = 0;        // gauge
  uint64_t tombstones_replayed = 0;
};

// Scatter-gather counters for sharded backends; `valid` is false on
// unsharded backends (the shard.* metrics lines are omitted).
struct ShardCountersSnapshot {
  bool valid = false;
  uint64_t num_shards = 0;       // gauge
  uint64_t queries = 0;          // scatter-gather top-k invocations
  uint64_t shards_visited = 0;   // shard top-k calls actually executed
  uint64_t shards_pruned = 0;    // shards skipped by the MaxScore bound
  uint64_t scatter_busy_us = 0;  // wall time inside scatter-gather top-k
  std::vector<uint64_t> per_shard_visited;
  std::vector<uint64_t> per_shard_pruned;
  std::vector<uint64_t> per_shard_mutations;
  std::vector<uint64_t> per_shard_objects;  // gauge: owned live objects
};

// One query's slot in a backend batch (docs/BATCHING.md). `query` and
// `cancel` are borrowed and must outlive the call.
struct BackendBatchItem {
  const SpatialKeywordQuery* query = nullptr;
  const CancelToken* cancel = nullptr;
};

struct BackendBatchResult {
  Status status;
  std::vector<ScoredObject> topk;  // valid only when status.ok()
};

class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  // Query surface; const methods are safe for concurrent callers.
  virtual StatusOr<std::vector<ScoredObject>> TopK(
      const SpatialKeywordQuery& query, const CancelToken* cancel = nullptr,
      TraceRecorder* trace = nullptr) const = 0;

  // Answers every item over one shared index traversal where the backend
  // supports it; results[i] corresponds to items[i] and each slot is
  // bit-identical to TopK(*items[i].query, items[i].cancel). The default
  // runs the items solo in order, so every backend accepts a batch;
  // engines override it with the amortized walk (docs/BATCHING.md).
  // `trace` (optional, borrowed) receives the whole batch's spans/counters.
  virtual std::vector<BackendBatchResult> TopKBatch(
      const std::vector<BackendBatchItem>& items,
      TraceRecorder* trace = nullptr) const {
    std::vector<BackendBatchResult> results(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      StatusOr<std::vector<ScoredObject>> one =
          TopK(*items[i].query, items[i].cancel, trace);
      if (one.ok()) {
        results[i].topk = std::move(one).value();
      } else {
        results[i].status = one.status();
      }
    }
    return results;
  }
  virtual StatusOr<WhyNotResult> Answer(
      WhyNotAlgorithm algorithm, const SpatialKeywordQuery& query,
      const std::vector<ObjectId>& missing,
      const WhyNotOptions& options) const = 0;

  virtual BackendIoSnapshot io_snapshot() const = 0;

  // The shared decoded-node cache, or nullptr when disabled.
  virtual NodeCache* node_cache() const { return nullptr; }

  // Strictly increases with every applied mutation. Result-cache
  // fingerprints mix this in, so a cached answer can never be served after
  // the dataset changed (the invalidation contract, docs/SERVICE.md).
  // Frozen backends return a constant.
  virtual uint64_t dataset_version() const { return 0; }

  // Identifies the backend's structural layout (shard count + tile
  // boundaries for a sharded backend). Result-cache fingerprints embed
  // this instead of the scalar dataset version; data freshness is covered
  // separately by `version_vector()` + the *CacheValid hooks below, so a
  // mutation no longer has to orphan every cached entry (docs/SHARDING.md
  // "Cache versioning"). Unsharded backends return a constant.
  virtual uint64_t topology_fingerprint() const { return 0; }

  // Per-partition dataset versions, captured by the service layer before
  // a query executes and stored with the cached result. Unsharded
  // backends degenerate to the single dataset version.
  virtual std::vector<uint64_t> version_vector() const {
    return {dataset_version()};
  }

  // Whether a result cached at `versions` may still be served. The default
  // (exact version-vector equality) reproduces the pre-sharding contract:
  // any mutation invalidates. A sharded backend may keep a top-k entry
  // alive when only shards that provably cannot affect it have changed.
  virtual bool TopKCacheValid(const std::vector<uint64_t>& versions,
                              const SpatialKeywordQuery& query,
                              const std::vector<ScoredObject>& results) const {
    (void)query;
    (void)results;
    return versions == version_vector();
  }
  virtual bool WhyNotCacheValid(const std::vector<uint64_t>& versions) const {
    return versions == version_vector();
  }

  // Dataset lifecycle. Mutations are const like the query surface (the
  // "const = thread-safe" convention); read-only backends reject them.
  virtual StatusOr<ObjectId> Insert(
      Point loc, const std::vector<std::string>& keywords) const {
    (void)loc;
    (void)keywords;
    return Status::FailedPrecondition("backend is read-only");
  }
  virtual Status Update(ObjectId id, Point loc,
                        const std::vector<std::string>& keywords) const {
    (void)id;
    (void)loc;
    (void)keywords;
    return Status::FailedPrecondition("backend is read-only");
  }
  virtual Status Delete(ObjectId id) const {
    (void)id;
    return Status::FailedPrecondition("backend is read-only");
  }

  virtual SegmentCountersSnapshot segment_counters() const { return {}; }
  virtual ShardCountersSnapshot shard_counters() const { return {}; }
};

}  // namespace wsk

#endif  // WSK_CORE_BACKEND_H_
