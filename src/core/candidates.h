// Candidate keyword-set enumeration (Sections IV-B, IV-C2, VI-B).
//
// Candidates are the non-empty subsets of doc0 ∪ M.doc other than doc0
// itself (doc0 with an enlarged k is the "basic refined query" that seeds
// the search). Each candidate carries its edit distance to doc0 and an
// ordering benefit derived from the Eqn 7 particularity: inserting terms
// that are particular to the missing objects (rare terms they contain)
// ranks earlier; deleting such terms ranks later.
#ifndef WSK_CORE_CANDIDATES_H_
#define WSK_CORE_CANDIDATES_H_

#include <cstdint>
#include <vector>

#include "text/keyword_set.h"
#include "text/vocabulary.h"

namespace wsk {

struct Candidate {
  KeywordSet doc;          // doc'
  uint32_t edit_distance;  // ED(doc0, doc')
  double benefit;          // higher = expected closer to the best refinement
};

// The canonical candidate order: edit distance ascending, benefit
// descending, keyword set ascending. It is both the Section IV-C2
// enumeration order and the documented tie-break among co-optimal
// refinements: every algorithm returns the canonically-first candidate
// achieving the minimum penalty (the basic refinement — doc0 with an
// enlarged k — wins ties against all candidates). A strict total order:
// the keyword set is unique per candidate.
bool CanonicalOrderLess(const Candidate& a, const Candidate& b);

class CandidateEnumerator {
 public:
  // `missing_docs` are the keyword sets of the missing objects (their union
  // with doc0 spans the candidate universe). The vocabulary supplies the
  // particularity weights. The universe size |doc0 ∪ M.doc| is capped at
  // 24 terms (2^24 subsets) as a safety bound.
  CandidateEnumerator(const KeywordSet& doc0,
                      const std::vector<const KeywordSet*>& missing_docs,
                      const Vocabulary& vocabulary);

  // All candidates sorted by (edit distance asc, benefit desc, doc asc) —
  // the Section IV-C2 enumeration order.
  const std::vector<Candidate>& ordered() const { return ordered_; }

  // Candidates in raw subset-mask order: the unoptimized basic algorithm's
  // enumeration.
  std::vector<Candidate> UnorderedCopy() const;

  // The Section VI-B approximate sample: the `sample_size` candidates with
  // the highest benefit, returned in enumeration order. Returns everything
  // when sample_size >= total.
  std::vector<Candidate> SampleByBenefit(uint32_t sample_size) const;

  // |doc0 ∪ M.doc| — the penalty's keyword normalizer.
  uint32_t universe_size() const {
    return static_cast<uint32_t>(universe_.size());
  }
  const KeywordSet& universe() const { return universe_; }

 private:
  KeywordSet universe_;
  std::vector<Candidate> ordered_;
};

}  // namespace wsk

#endif  // WSK_CORE_CANDIDATES_H_
