#include "core/explain.h"

#include <cstdio>

namespace wsk {

std::string MissExplanation::ToString() const {
  char buf[512];
  if (in_result) {
    std::snprintf(buf, sizeof(buf),
                  "object ranks %u and is inside the top-%u result", rank, k);
    return buf;
  }
  const char* dominant_cause =
      textual_term < spatial_term ? "textual similarity" : "spatial distance";
  std::snprintf(
      buf, sizeof(buf),
      "object ranks %u (top-%u requested); score %.4f = %.4f spatial + "
      "%.4f textual vs %.4f needed (deficit %.4f); matches %zu/%zu query "
      "keywords; the weaker component is %s",
      rank, k, missing_score, spatial_term, textual_term, kth_score, deficit,
      matched_keywords, query_keywords, dominant_cause);
  return buf;
}

StatusOr<MissExplanation> ExplainMiss(const WhyNotEngine& engine,
                                      const SpatialKeywordQuery& query,
                                      ObjectId object, TraceRecorder* trace) {
  if (object >= engine.dataset().size()) {
    return Status::InvalidArgument("object id out of range");
  }
  if (query.k == 0) {
    return Status::InvalidArgument("k must be at least 1");
  }
  TraceSpan span(trace, TraceStage::kExplain);
  MissExplanation out;
  out.k = query.k;

  const Dataset& dataset = engine.dataset();
  const SpatialObject& o = dataset.object(object);
  const double diagonal = engine.setr_tree().diagonal();
  const double sdist = Distance(o.loc, query.loc) / diagonal;
  const double tsim = TextualSimilarity(o.doc, query.doc, query.model);
  out.spatial_term = query.alpha * (1.0 - sdist);
  out.textual_term = (1.0 - query.alpha) * tsim;
  out.missing_score = out.spatial_term + out.textual_term;
  out.matched_keywords = o.doc.IntersectionSize(query.doc);
  out.query_keywords = query.doc.size();

  StatusOr<uint32_t> rank = engine.Rank(query, object);
  if (!rank.ok()) return rank.status();
  out.rank = rank.value();
  out.in_result = out.rank <= query.k;

  StatusOr<std::vector<ScoredObject>> top =
      engine.TopK(query, /*cancel=*/nullptr, trace);
  if (!top.ok()) return top.status();
  if (!top.value().empty()) {
    const std::vector<ScoredObject>& hits = top.value();
    out.kth_score = hits.back().score;
    out.deficit = out.in_result ? 0.0 : out.kth_score - out.missing_score;
  }
  if (trace != nullptr) {
    trace->Annotate(TraceStage::kExplain, out.ToString(),
                    static_cast<int64_t>(object));
  }
  return out;
}

}  // namespace wsk
