#include "core/alpha_refinement.h"

#include <algorithm>
#include <cmath>

namespace wsk {

namespace {

// ST_alpha(o) = alpha * slope_o + tsim_o with slope_o = (1-SDist) - TSim.
struct ScoreLine {
  double slope = 0.0;
  double tsim = 0.0;

  double At(double alpha) const { return alpha * slope + tsim; }
};

ScoreLine LineFor(const SpatialObject& object,
                  const SpatialKeywordQuery& query, double diagonal) {
  const double sdist = Distance(object.loc, query.loc) / diagonal;
  const double tsim = TextualSimilarity(object.doc, query.doc, query.model);
  return ScoreLine{(1.0 - sdist) - tsim, tsim};
}

}  // namespace

StatusOr<AlphaRefineResult> RefineAlpha(const Dataset& dataset,
                                        const SpatialKeywordQuery& original,
                                        const std::vector<ObjectId>& missing,
                                        double lambda, double alpha_min,
                                        double alpha_max) {
  if (original.alpha <= 0.0 || original.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must lie strictly inside (0, 1)");
  }
  if (missing.empty()) {
    return Status::InvalidArgument("no missing objects given");
  }
  if (lambda < 0.0 || lambda > 1.0) {
    return Status::InvalidArgument("lambda must lie in [0, 1]");
  }
  if (!(alpha_min > 0.0 && alpha_min < alpha_max && alpha_max < 1.0)) {
    return Status::InvalidArgument("need 0 < alpha_min < alpha_max < 1");
  }
  if (original.alpha < alpha_min || original.alpha > alpha_max) {
    return Status::InvalidArgument("original alpha outside the search range");
  }
  for (ObjectId id : missing) {
    if (id >= dataset.size()) {
      return Status::InvalidArgument("missing object id out of range");
    }
  }

  const double diagonal = dataset.diagonal();
  std::vector<ScoreLine> lines;
  lines.reserve(dataset.size());
  for (const SpatialObject& o : dataset.objects()) {
    lines.push_back(LineFor(o, original, diagonal));
  }

  // Rank of the missing set at a given alpha: strict dominators of the
  // worst-scored missing object, plus one (Eqn 3 extended to sets).
  auto rank_at = [&](double alpha) -> uint32_t {
    double min_score = std::numeric_limits<double>::infinity();
    for (ObjectId m : missing) min_score = std::min(min_score,
                                                    lines[m].At(alpha));
    uint32_t better = 0;
    for (const ScoreLine& line : lines) {
      if (line.At(alpha) > min_score) ++better;
    }
    return better + 1;
  };

  AlphaRefineResult result;
  result.initial_rank = rank_at(original.alpha);
  if (result.initial_rank <= original.k) {
    result.already_in_result = true;
    result.alpha = original.alpha;
    result.k = original.k;
    result.rank = result.initial_rank;
    result.penalty = 0.0;
    return result;
  }

  // Candidate breakpoints: every alpha where some object's score line
  // crosses a missing object's line (rank changes only there), plus the
  // range ends and the original alpha.
  std::vector<double> breakpoints{alpha_min, alpha_max, original.alpha};
  for (ObjectId m : missing) {
    const ScoreLine& lm = lines[m];
    for (const ScoreLine& lo : lines) {
      const double denom = lm.slope - lo.slope;
      if (denom == 0.0) continue;
      const double crossing = (lo.tsim - lm.tsim) / denom;
      if (crossing > alpha_min && crossing < alpha_max) {
        breakpoints.push_back(crossing);
      }
    }
  }
  std::sort(breakpoints.begin(), breakpoints.end());
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end()),
                    breakpoints.end());

  const double alpha_normalizer =
      std::max(original.alpha - 0.0, 1.0 - original.alpha);
  const double k_normalizer =
      static_cast<double>(result.initial_rank - original.k);

  // Seed with the basic refinement: keep alpha, enlarge k (penalty lambda).
  result.alpha = original.alpha;
  result.rank = result.initial_rank;
  result.k = result.initial_rank;
  result.penalty = lambda;

  // Within each interval between breakpoints the rank is constant, so the
  // best alpha inside is the one closest to the original. Evaluate exactly
  // at that point (nudged off the boundary, where ties flip).
  for (size_t i = 0; i + 1 < breakpoints.size(); ++i) {
    const double lo = breakpoints[i];
    const double hi = breakpoints[i + 1];
    if (hi - lo <= 1e-12) continue;
    const double nudge = (hi - lo) * 1e-6;
    const double alpha =
        std::clamp(original.alpha, lo + nudge, hi - nudge);
    const uint32_t rank = rank_at(alpha);
    const double dk = rank > original.k
                          ? static_cast<double>(rank - original.k)
                          : 0.0;
    const double penalty =
        lambda * dk / k_normalizer +
        (1.0 - lambda) * std::abs(alpha - original.alpha) / alpha_normalizer;
    const bool better =
        penalty < result.penalty ||
        (penalty == result.penalty &&
         std::abs(alpha - original.alpha) <
             std::abs(result.alpha - original.alpha));
    if (better) {
      result.alpha = alpha;
      result.rank = rank;
      result.k = std::max(original.k, rank);
      result.penalty = penalty;
    }
  }
  return result;
}

}  // namespace wsk
