#include "core/whynot_common.h"

#include <algorithm>

#include "common/macros.h"

namespace wsk::internal {

StatusOr<MissingSet> MissingSet::Build(const ObjectStore& store,
                                       const std::vector<ObjectId>& missing) {
  MissingSet set;
  for (ObjectId id : missing) {
    const SpatialObject* o = store.FindObject(id);
    if (o == nullptr) {
      return Status::InvalidArgument("missing object id out of range");
    }
    if (std::find(set.ids.begin(), set.ids.end(), id) != set.ids.end()) {
      continue;  // ignore duplicates
    }
    set.ids.push_back(id);
    set.locs.push_back(o->loc);
    set.docs.push_back(&o->doc);
    set.union_doc = set.union_doc.Union(o->doc);
  }
  if (set.ids.empty()) {
    return Status::InvalidArgument("missing object set is empty");
  }
  return set;
}

double MissingSet::MinScore(const SpatialKeywordQuery& query,
                            double diagonal) const {
  double min_score = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < ids.size(); ++i) {
    const double sdist = Distance(locs[i], query.loc) / diagonal;
    const double tsim = TextualSimilarity(*docs[i], query.doc, query.model);
    const double score =
        query.alpha * (1.0 - sdist) + (1.0 - query.alpha) * tsim;
    min_score = std::min(min_score, score);
  }
  return min_score;
}

WhyNotScorer::WhyNotScorer(const ObjectStore& store, const MissingSet& missing,
                           const SpatialKeywordQuery& original,
                           double diagonal, const KeywordSet& universe,
                           bool enable_kernel)
    : store_(store),
      query_loc_(original.loc),
      diagonal_(diagonal),
      alpha_(original.alpha),
      model_(original.model) {
  if (!enable_kernel) return;  // universe_ stays invalid: scalar path
  universe_ = CandidateUniverse::Build(universe);
  if (!universe_.valid()) return;
  missing_fp_.reserve(missing.size());
  missing_sdist_.reserve(missing.size());
  for (size_t i = 0; i < missing.size(); ++i) {
    missing_fp_.push_back(universe_.FootprintOf(*missing.docs[i]));
    // Same expression as MissingSet::MinScore so the doubles match bit for
    // bit.
    missing_sdist_.push_back(Distance(missing.locs[i], query_loc_) /
                             diagonal);
  }
}

double WhyNotScorer::MinScore(CandidateMask cand) const {
  double min_score = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < missing_fp_.size(); ++i) {
    const double sdist = missing_sdist_[i];
    const double tsim = ScoreCandidate(missing_fp_[i], cand, model_);
    const double score = alpha_ * (1.0 - sdist) + (1.0 - alpha_) * tsim;
    min_score = std::min(min_score, score);
  }
  return min_score;
}

double WhyNotScorer::ObjectScore(ObjectId id, CandidateMask cand) const {
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    auto it = memo_.find(id);
    if (it != memo_.end()) {
      const double tsim = ScoreCandidate(it->second.fp, cand, model_);
      return alpha_ * (1.0 - it->second.sdist) + (1.0 - alpha_) * tsim;
    }
  }
  const SpatialObject* o = store_.FindObject(id);
  WSK_CHECK(o != nullptr);
  ObjectEntry entry;
  entry.fp = universe_.FootprintOf(o->doc);
  // Mirrors Score(): sdist normalized against the same diagonal.
  entry.sdist = Distance(o->loc, query_loc_) / diagonal_;
  const double tsim = ScoreCandidate(entry.fp, cand, model_);
  const double score =
      alpha_ * (1.0 - entry.sdist) + (1.0 - alpha_) * tsim;
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    memo_.emplace(id, entry);
  }
  return score;
}

Status ValidateWhyNotInput(const SpatialKeywordQuery& original,
                           const std::vector<ObjectId>& missing,
                           const WhyNotOptions& options, size_t dataset_size) {
  if (original.alpha <= 0.0 || original.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must lie strictly inside (0, 1)");
  }
  if (original.doc.empty()) {
    return Status::InvalidArgument("original query has no keywords");
  }
  if (original.k == 0) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (missing.empty()) {
    return Status::InvalidArgument("no missing objects given");
  }
  if (missing.size() >= dataset_size) {
    return Status::InvalidArgument("more missing objects than data objects");
  }
  if (options.lambda < 0.0 || options.lambda > 1.0) {
    return Status::InvalidArgument("lambda must lie in [0, 1]");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be non-negative");
  }
  return Status::Ok();
}

StatusOr<uint32_t> RankFromIndex(const TopKSource& tree,
                                 const SpatialKeywordQuery& query,
                                 double min_score, int64_t limit,
                                 bool* exceeded,
                                 std::vector<ObjectId>* dominators,
                                 const CancelToken* cancel, bool use_cache,
                                 TraceRecorder* trace,
                                 uint64_t* nodes_expanded) {
  *exceeded = false;
  TraceSpan span(trace, TraceStage::kRankQuery);
  TopKIterator it(&tree, query, cancel, use_cache, trace);
  uint32_t strictly_better = 0;
  std::optional<ScoredObject> next;
  for (;;) {
    Status s = it.Next(&next);
    if (!s.ok()) {
      if (nodes_expanded != nullptr) *nodes_expanded += it.num_expanded();
      return s;
    }
    if (!next || next->score <= min_score) break;
    ++strictly_better;
    if (dominators != nullptr) dominators->push_back(next->id);
    if (limit > 0 && static_cast<int64_t>(strictly_better) + 1 > limit) {
      *exceeded = true;
      break;
    }
  }
  if (nodes_expanded != nullptr) *nodes_expanded += it.num_expanded();
  return strictly_better + 1;
}

}  // namespace wsk::internal
