#include "core/integrated.h"

namespace wsk {

const char* RefinementKindName(RefinementKind kind) {
  switch (kind) {
    case RefinementKind::kNone:
      return "none";
    case RefinementKind::kKeywords:
      return "keywords";
    case RefinementKind::kPreference:
      return "preference";
  }
  return "unknown";
}

StatusOr<IntegratedResult> AnswerWhyNotIntegrated(
    const WhyNotEngine& engine, WhyNotAlgorithm algorithm,
    const SpatialKeywordQuery& query, const std::vector<ObjectId>& missing,
    const WhyNotOptions& options) {
  IntegratedResult result;

  StatusOr<WhyNotResult> keywords =
      engine.Answer(algorithm, query, missing, options);
  if (!keywords.ok()) return keywords.status();
  result.keywords = std::move(keywords).value();

  StatusOr<AlphaRefineResult> preference =
      RefineAlpha(engine.dataset(), query, missing, options.lambda);
  if (!preference.ok()) return preference.status();
  result.preference = std::move(preference).value();

  if (result.keywords.already_in_result) {
    result.kind = RefinementKind::kNone;
    result.best_penalty = 0.0;
    return result;
  }
  if (result.keywords.refined.penalty <= result.preference.penalty) {
    result.kind = RefinementKind::kKeywords;
    result.best_penalty = result.keywords.refined.penalty;
  } else {
    result.kind = RefinementKind::kPreference;
    result.best_penalty = result.preference.penalty;
  }
  return result;
}

}  // namespace wsk
