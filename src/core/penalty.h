// The penalty model of Eqn 4 and the Eqn 6 rank bound used for early
// stopping.
//
// For a why-not query with original rank R = R(M, q) (> k0) and keyword
// normalizer |doc0 ∪ M.doc|:
//   Penalty(q') = lambda * max(0, R(M,q') - k0) / (R - k0)
//               + (1-lambda) * ED(doc0, doc') / |doc0 ∪ M.doc|
#ifndef WSK_CORE_PENALTY_H_
#define WSK_CORE_PENALTY_H_

#include <cstdint>

#include "common/macros.h"

namespace wsk {

class PenaltyModel {
 public:
  // Requires initial_rank > k0 (otherwise nothing is missing) and
  // doc_normalizer >= 1. lambda in [0, 1].
  PenaltyModel(double lambda, uint32_t k0, uint32_t initial_rank,
               uint32_t doc_normalizer)
      : lambda_(lambda),
        k0_(k0),
        initial_rank_(initial_rank),
        k_normalizer_(initial_rank - k0),
        doc_normalizer_(doc_normalizer) {
    WSK_CHECK(lambda >= 0.0 && lambda <= 1.0);
    WSK_CHECK(initial_rank > k0);
    WSK_CHECK(doc_normalizer >= 1);
  }

  double lambda() const { return lambda_; }
  uint32_t k0() const { return k0_; }
  uint32_t initial_rank() const { return initial_rank_; }

  // (1-lambda) * ed / |doc0 ∪ M.doc| — the textual half of the penalty.
  double DocPenalty(uint64_t edit_distance) const {
    return (1.0 - lambda_) * static_cast<double>(edit_distance) /
           doc_normalizer_;
  }

  // lambda * max(0, rank - k0) / (R - k0) — the cardinality half.
  double KPenalty(uint64_t rank) const {
    const double dk = rank > k0_ ? static_cast<double>(rank - k0_) : 0.0;
    return lambda_ * dk / k_normalizer_;
  }

  double Penalty(uint64_t rank, uint64_t edit_distance) const {
    return KPenalty(rank) + DocPenalty(edit_distance);
  }

  // Eqn 6: the largest rank R(M, q') a candidate with the given edit
  // distance may have while its penalty stays <= best_penalty. Returns a
  // value < 1 when the candidate cannot win regardless of rank, and
  // INT64_MAX when lambda == 0 (rank does not contribute to the penalty).
  int64_t RankUpperBound(double best_penalty, uint64_t edit_distance) const {
    const double headroom = best_penalty - DocPenalty(edit_distance);
    if (headroom < 0.0) return 0;
    if (lambda_ == 0.0) return INT64_MAX;
    const double bound =
        static_cast<double>(k0_) + headroom / lambda_ * k_normalizer_;
    if (bound >= 9e18) return INT64_MAX;
    return static_cast<int64_t>(bound);  // floor for non-negative values
  }

 private:
  double lambda_;
  uint32_t k0_;
  uint32_t initial_rank_;
  double k_normalizer_;
  double doc_normalizer_;
};

}  // namespace wsk

#endif  // WSK_CORE_PENALTY_H_
