#include "core/engine.h"

#include <atomic>
#include <cstdio>

#include <unistd.h>

#include "core/whynot_bs.h"
#include "core/whynot_kcr.h"
#include "index/batch_topk.h"
#include "index/topk.h"
#include "observability/trace.h"

namespace wsk {

namespace {

std::string UniqueIndexPath(const std::string& work_dir, const char* kind) {
  static std::atomic<uint64_t> counter{0};
  const uint64_t id = counter.fetch_add(1);
  return work_dir + "/wsk_" + std::to_string(getpid()) + "_" +
         std::to_string(id) + "_" + kind + ".idx";
}

}  // namespace

const char* WhyNotAlgorithmName(WhyNotAlgorithm algorithm) {
  switch (algorithm) {
    case WhyNotAlgorithm::kBasic:
      return "BS";
    case WhyNotAlgorithm::kAdvanced:
      return "AdvancedBS";
    case WhyNotAlgorithm::kKcrBased:
      return "KcRBased";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<WhyNotEngine>> WhyNotEngine::Build(
    const Dataset* dataset, const Config& config) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("dataset is null");
  }
  std::unique_ptr<WhyNotEngine> engine(new WhyNotEngine());
  engine->dataset_ = dataset;
  engine->config_ = config;
  engine->setr_path_ = UniqueIndexPath(config.work_dir, "setr");
  engine->kcr_path_ = UniqueIndexPath(config.work_dir, "kcr");

  StatusOr<std::unique_ptr<Pager>> setr_pager =
      Pager::Create(engine->setr_path_, config.page_size);
  if (!setr_pager.ok()) return setr_pager.status();
  engine->setr_pager_ = std::move(setr_pager).value();
  engine->setr_pool_ = std::make_unique<BufferPool>(engine->setr_pager_.get(),
                                                    config.buffer_bytes);

  StatusOr<std::unique_ptr<Pager>> kcr_pager =
      Pager::Create(engine->kcr_path_, config.page_size);
  if (!kcr_pager.ok()) return kcr_pager.status();
  engine->kcr_pager_ = std::move(kcr_pager).value();
  engine->kcr_pool_ = std::make_unique<BufferPool>(engine->kcr_pager_.get(),
                                                   config.buffer_bytes);

  SetRTree::Options setr_options;
  setr_options.capacity = config.node_capacity;
  setr_options.model = config.model;
  setr_options.format = config.node_format;
  StatusOr<std::unique_ptr<SetRTree>> setr =
      SetRTree::BulkLoad(*dataset, engine->setr_pool_.get(), setr_options);
  if (!setr.ok()) return setr.status();
  engine->setr_tree_ = std::move(setr).value();

  KcrTree::Options kcr_options;
  kcr_options.capacity = config.node_capacity;
  kcr_options.model = config.model;
  kcr_options.format = config.node_format;
  StatusOr<std::unique_ptr<KcrTree>> kcr =
      KcrTree::BulkLoad(*dataset, engine->kcr_pool_.get(), kcr_options);
  if (!kcr.ok()) return kcr.status();
  engine->kcr_tree_ = std::move(kcr).value();

  if (config.mmap_reads) {
    // Indexes are finalized by bulk load; map them read-only. A non-OK
    // result just keeps the buffered pread path — same bytes, more copies.
    (void)engine->setr_pager_->EnableMappedReads();
    (void)engine->kcr_pager_->EnableMappedReads();
  }

  if (config.node_cache_bytes > 0) {
    engine->node_cache_ = std::make_unique<NodeCache>(config.node_cache_bytes);
    engine->setr_tree_->AttachNodeCache(engine->node_cache_.get());
    engine->kcr_tree_->AttachNodeCache(engine->node_cache_.get());
  }

  engine->ResetIoStats();
  return engine;
}

WhyNotEngine::~WhyNotEngine() {
  // Trees and pools must close before the backing files are removed.
  setr_tree_.reset();
  kcr_tree_.reset();
  setr_pool_.reset();
  kcr_pool_.reset();
  setr_pager_.reset();
  kcr_pager_.reset();
  if (!setr_path_.empty()) std::remove(setr_path_.c_str());
  if (!kcr_path_.empty()) std::remove(kcr_path_.c_str());
}

StatusOr<WhyNotResult> WhyNotEngine::Answer(
    WhyNotAlgorithm algorithm, const SpatialKeywordQuery& query,
    const std::vector<ObjectId>& missing, const WhyNotOptions& options) const {
  QueryScope scope(this);
  if (options.cancel != nullptr) {
    WSK_RETURN_IF_ERROR(options.cancel->Check());
  }
  // Root span: encloses the whole invocation so every stage span nests
  // inside it (the coverage property the trace tests assert).
  TraceSpan root_span(options.trace, TraceStage::kQuery);
  const IoStats& io = algorithm == WhyNotAlgorithm::kKcrBased
                          ? kcr_pager_->io_stats()
                          : setr_pager_->io_stats();
  const uint64_t reads_before = io.physical_reads();

  StatusOr<WhyNotResult> result = Status::Internal("unreachable");
  switch (algorithm) {
    case WhyNotAlgorithm::kBasic: {
      WhyNotOptions plain = options;
      plain.opt_early_stop = false;
      plain.opt_enumeration_order = false;
      plain.opt_keyword_filtering = false;
      result = AnswerWhyNotBasic(*dataset_, *setr_tree_, query, missing,
                                 plain);
      break;
    }
    case WhyNotAlgorithm::kAdvanced:
      result = AnswerWhyNotBasic(*dataset_, *setr_tree_, query, missing,
                                 options);
      break;
    case WhyNotAlgorithm::kKcrBased:
      result = AnswerWhyNotKcr(*dataset_, *kcr_tree_, query, missing,
                               options);
      break;
  }
  if (result.ok()) {
    result.value().stats.io_reads = io.physical_reads() - reads_before;
  }
  return result;
}

StatusOr<std::vector<ScoredObject>> WhyNotEngine::TopK(
    const SpatialKeywordQuery& query, const CancelToken* cancel,
    TraceRecorder* trace) const {
  QueryScope scope(this);
  TraceSpan root_span(trace, TraceStage::kQuery);
  return IndexTopK(*setr_tree_, query, cancel, /*use_cache=*/true, trace);
}

std::vector<BackendBatchResult> WhyNotEngine::TopKBatch(
    const std::vector<BackendBatchItem>& items, TraceRecorder* trace) const {
  QueryScope scope(this);
  TraceSpan root_span(trace, TraceStage::kQuery);
  std::vector<BatchTopKRequest> requests(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    requests[i].query = items[i].query;
    requests[i].cancel = items[i].cancel;
  }
  std::vector<BatchTopKResult> raw =
      BatchedIndexTopK(*setr_tree_, requests, /*use_cache=*/true, trace);
  std::vector<BackendBatchResult> results(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    results[i].status = std::move(raw[i].status);
    results[i].topk = std::move(raw[i].topk);
  }
  return results;
}

StatusOr<uint32_t> WhyNotEngine::Rank(const SpatialKeywordQuery& query,
                                      ObjectId object) const {
  QueryScope scope(this);
  if (object >= dataset_->size()) {
    return Status::InvalidArgument("object id out of range");
  }
  const double score =
      Score(dataset_->object(object), query, setr_tree_->diagonal());
  TopKIterator it(setr_tree_.get(), query);
  uint32_t strictly_better = 0;
  std::optional<ScoredObject> next;
  for (;;) {
    WSK_RETURN_IF_ERROR(it.Next(&next));
    if (!next || next->score <= score) break;
    ++strictly_better;
  }
  return strictly_better + 1;
}

StatusOr<ObjectId> WhyNotEngine::ObjectAtPosition(
    const SpatialKeywordQuery& query, uint32_t position) const {
  QueryScope scope(this);
  if (position == 0) {
    return Status::InvalidArgument("positions are 1-based");
  }
  TopKIterator it(setr_tree_.get(), query);
  std::optional<ScoredObject> next;
  for (uint32_t i = 0; i < position; ++i) {
    WSK_RETURN_IF_ERROR(it.Next(&next));
    if (!next) {
      return Status::NotFound("dataset has fewer objects than the position");
    }
  }
  return next->id;
}

BackendIoSnapshot WhyNotEngine::io_snapshot() const {
  const IoStats& setr = setr_pager_->io_stats();
  const IoStats& kcr = kcr_pager_->io_stats();
  BackendIoSnapshot snap;
  snap.setr_physical = setr.physical_reads();
  snap.kcr_physical = kcr.physical_reads();
  snap.setr_logical = setr.logical_reads();
  snap.kcr_logical = kcr.logical_reads();
  snap.setr_mapped = setr.mapped_reads();
  snap.kcr_mapped = kcr.mapped_reads();
  snap.setr_cache_hits = setr.node_cache_hits();
  snap.kcr_cache_hits = kcr.node_cache_hits();
  snap.setr_cache_misses = setr.node_cache_misses();
  snap.kcr_cache_misses = kcr.node_cache_misses();
  return snap;
}

Status WhyNotEngine::DropCaches() const {
  WSK_CHECK_MSG(inflight_queries() == 0,
                "DropCaches requires exclusive access (%d queries in flight)",
                inflight_queries());
  if (node_cache_ != nullptr) node_cache_->Clear();
  WSK_RETURN_IF_ERROR(setr_pool_->InvalidateAll());
  return kcr_pool_->InvalidateAll();
}

void WhyNotEngine::ResetIoStats() const {
  WSK_CHECK_MSG(inflight_queries() == 0,
                "ResetIoStats requires exclusive access (%d queries in flight)",
                inflight_queries());
  setr_pager_->io_stats().Reset();
  kcr_pager_->io_stats().Reset();
}

}  // namespace wsk
