// Why-not answering via preference (alpha) adaption — the refinement model
// of the authors' companion paper [8] (Chen et al., "Answering why-not
// questions on spatial keyword top-k queries", ICDE 2015), which this
// paper's conclusion proposes integrating with keyword adaption.
//
// Instead of editing the keywords, the user's preference alpha between
// spatial proximity and textual similarity is adjusted: the refined query
// is q' = (loc, doc0, k', alpha') minimizing
//
//   Penalty(q') = lambda * max(0, R(M,q') - k0) / (R(M,q) - k0)
//               + (1-lambda) * |alpha' - alpha0| / max(alpha0, 1 - alpha0)
//
// subject to every missing object ranking within k'. Because each object's
// score ST_alpha(o) = alpha (1 - SDist) + (1-alpha) TSim is linear in
// alpha, an object's rank only changes where score lines cross; the exact
// optimum is found by sweeping the O(|D| * |M|) crossing points.
#ifndef WSK_CORE_ALPHA_REFINEMENT_H_
#define WSK_CORE_ALPHA_REFINEMENT_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/query.h"

namespace wsk {

struct AlphaRefineResult {
  bool already_in_result = false;
  double alpha = 0.5;      // alpha'
  uint32_t k = 0;          // k'
  uint32_t rank = 0;       // R(M, q') at alpha'
  double penalty = 0.0;
  uint32_t initial_rank = 0;  // R(M, q) at the original alpha
};

// Exact preference refinement over the in-memory dataset. `lambda` weighs
// enlarging k against moving alpha. The search space is the open interval
// (alpha_min, alpha_max) ⊂ (0, 1); the defaults keep a safety margin so
// the ranking function stays a genuine mix of both components.
StatusOr<AlphaRefineResult> RefineAlpha(const Dataset& dataset,
                                        const SpatialKeywordQuery& original,
                                        const std::vector<ObjectId>& missing,
                                        double lambda,
                                        double alpha_min = 0.01,
                                        double alpha_max = 0.99);

}  // namespace wsk

#endif  // WSK_CORE_ALPHA_REFINEMENT_H_
