#include "core/location_refinement.h"

#include <algorithm>
#include <cmath>

namespace wsk {

namespace {

// R(M, q) with the query relocated to `loc` (exact, in-memory).
uint32_t RankAt(const Dataset& dataset, const SpatialKeywordQuery& original,
                const std::vector<ObjectId>& missing, Point loc) {
  SpatialKeywordQuery q = original;
  q.loc = loc;
  const double diagonal = dataset.diagonal();
  double min_score = std::numeric_limits<double>::infinity();
  for (ObjectId m : missing) {
    min_score = std::min(min_score, Score(dataset.object(m), q, diagonal));
  }
  uint32_t better = 0;
  for (const SpatialObject& o : dataset.objects()) {
    if (Score(o, q, diagonal) > min_score) ++better;
  }
  return better + 1;
}

}  // namespace

StatusOr<LocationRefineResult> RefineLocationApproximate(
    const Dataset& dataset, const SpatialKeywordQuery& original,
    const std::vector<ObjectId>& missing, double lambda, uint32_t samples) {
  if (original.alpha <= 0.0 || original.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must lie strictly inside (0, 1)");
  }
  if (missing.empty()) {
    return Status::InvalidArgument("no missing objects given");
  }
  if (lambda < 0.0 || lambda > 1.0) {
    return Status::InvalidArgument("lambda must lie in [0, 1]");
  }
  if (samples < 2) {
    return Status::InvalidArgument("need at least 2 samples");
  }
  for (ObjectId id : missing) {
    if (id >= dataset.size()) {
      return Status::InvalidArgument("missing object id out of range");
    }
  }

  LocationRefineResult result;
  result.initial_rank = RankAt(dataset, original, missing, original.loc);
  if (result.initial_rank <= original.k) {
    result.already_in_result = true;
    result.loc = original.loc;
    result.k = original.k;
    result.rank = result.initial_rank;
    return result;
  }

  // Search direction: toward the missing objects' centroid — the move that
  // most directly raises their spatial component.
  Point centroid{0.0, 0.0};
  for (ObjectId m : missing) {
    centroid.x += dataset.object(m).loc.x;
    centroid.y += dataset.object(m).loc.y;
  }
  centroid.x /= static_cast<double>(missing.size());
  centroid.y /= static_cast<double>(missing.size());

  const double diagonal = dataset.diagonal();
  const double k_normalizer =
      static_cast<double>(result.initial_rank - original.k);

  auto evaluate = [&](double t) {
    const Point loc{original.loc.x + t * (centroid.x - original.loc.x),
                    original.loc.y + t * (centroid.y - original.loc.y)};
    const uint32_t rank = RankAt(dataset, original, missing, loc);
    const double moved = Distance(loc, original.loc);
    const double dk =
        rank > original.k ? static_cast<double>(rank - original.k) : 0.0;
    const double penalty =
        lambda * dk / k_normalizer + (1.0 - lambda) * moved / diagonal;
    return std::tuple<double, Point, uint32_t, double>(penalty, loc, rank,
                                                       moved);
  };

  // Seed with the basic refinement (stay put, enlarge k): penalty lambda.
  result.loc = original.loc;
  result.rank = result.initial_rank;
  result.k = result.initial_rank;
  result.penalty = lambda;
  result.moved = 0.0;

  double best_t = 0.0;
  for (uint32_t i = 0; i <= samples; ++i) {
    const double t = static_cast<double>(i) / samples;
    const auto [penalty, loc, rank, moved] = evaluate(t);
    if (penalty < result.penalty) {
      result.penalty = penalty;
      result.loc = loc;
      result.rank = rank;
      result.k = std::max(original.k, rank);
      result.moved = moved;
      best_t = t;
    }
  }

  // Local shrink around the best sample: halve the bracket a few times and
  // retest the midpoints (the penalty is piecewise linear in t between rank
  // changes, so the optimum within the winning bracket hugs a boundary).
  double lo = std::max(0.0, best_t - 1.0 / samples);
  double hi = std::min(1.0, best_t + 1.0 / samples);
  for (int round = 0; round < 20; ++round) {
    const double mid_lo = lo + (hi - lo) / 3.0;
    const double mid_hi = hi - (hi - lo) / 3.0;
    for (double t : {mid_lo, mid_hi}) {
      const auto [penalty, loc, rank, moved] = evaluate(t);
      if (penalty < result.penalty) {
        result.penalty = penalty;
        result.loc = loc;
        result.rank = rank;
        result.k = std::max(original.k, rank);
        result.moved = moved;
        best_t = t;
      }
    }
    if (best_t <= mid_lo) {
      hi = mid_lo;
    } else if (best_t >= mid_hi) {
      lo = mid_hi;
    } else {
      lo = mid_lo;
      hi = mid_hi;
    }
  }
  return result;
}

}  // namespace wsk
