// Integrated why-not answering: keyword adaption (this paper) and
// preference adaption ([8]) side by side, returning whichever refinement is
// cheaper. This is the direction the paper's conclusion sketches — "an
// integrated framework that supports ... the refinement of parameter
// alpha, the query keyword set ... in a concerted fashion".
#ifndef WSK_CORE_INTEGRATED_H_
#define WSK_CORE_INTEGRATED_H_

#include <vector>

#include "core/alpha_refinement.h"
#include "core/engine.h"
#include "core/whynot.h"

namespace wsk {

enum class RefinementKind {
  kNone,        // the missing objects were already in the result
  kKeywords,    // adapting doc (and possibly k) won
  kPreference,  // adapting alpha (and possibly k) won
};

const char* RefinementKindName(RefinementKind kind);

struct IntegratedResult {
  RefinementKind kind = RefinementKind::kNone;
  double best_penalty = 0.0;
  WhyNotResult keywords;      // the keyword-adaption answer
  AlphaRefineResult preference;  // the alpha-adaption answer
};

// Runs both refinement models (keyword adaption with `algorithm`,
// preference adaption exactly) under the same lambda and reports the
// cheaper one. Ties prefer keyword adaption, the paper's subject.
StatusOr<IntegratedResult> AnswerWhyNotIntegrated(
    const WhyNotEngine& engine, WhyNotAlgorithm algorithm,
    const SpatialKeywordQuery& query, const std::vector<ObjectId>& missing,
    const WhyNotOptions& options);

}  // namespace wsk

#endif  // WSK_CORE_INTEGRATED_H_
