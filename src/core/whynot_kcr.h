// The KcR-tree-based bound-and-prune why-not algorithm (Section V).
//
// Candidates are processed in batches of equal edit distance (Algorithm 4);
// each batch is resolved in a single traversal of the KcR-tree
// (Algorithm 3): every frontier node contributes MaxDom/MinDom dominator
// bounds per candidate, expanding a node replaces its contribution with its
// children's tighter bounds, and candidates are pruned as soon as their
// penalty lower bound exceeds the best known penalty.
#ifndef WSK_CORE_WHYNOT_KCR_H_
#define WSK_CORE_WHYNOT_KCR_H_

#include <vector>

#include "core/whynot.h"
#include "data/dataset.h"
#include "data/query.h"
#include "index/kcr_tree.h"

namespace wsk {

// Answers the keyword-adapted why-not query over the KcR-tree. Requires the
// Jaccard similarity model (Theorem 3's pseudo-similarity algebra); other
// models are rejected with InvalidArgument. Multiple missing objects are
// supported per Section VI-A: a node's bounds w.r.t. M aggregate the
// per-object bounds.
StatusOr<WhyNotResult> AnswerWhyNotKcr(const Dataset& dataset,
                                       const KcrTree& tree,
                                       const SpatialKeywordQuery& original,
                                       const std::vector<ObjectId>& missing,
                                       const WhyNotOptions& options);

}  // namespace wsk

#endif  // WSK_CORE_WHYNOT_KCR_H_
