// The KcR-tree-based bound-and-prune why-not algorithm (Section V).
//
// Candidates are processed in batches of equal edit distance (Algorithm 4);
// each batch is resolved in a single traversal of the KcR-tree
// (Algorithm 3): every frontier node contributes MaxDom/MinDom dominator
// bounds per candidate, expanding a node replaces its contribution with its
// children's tighter bounds, and candidates are pruned as soon as their
// penalty lower bound exceeds the best known penalty.
//
// The generalized entry point traverses several KcR-trees at once (one per
// frozen segment of a live dataset, docs/SEGMENTS.md) plus a set of
// exactly-scored extra objects (the in-memory delta). Tombstoned objects
// are masked per segment: leaf evaluation skips invisible objects, and
// inner-node MinDom bounds are slackened by the segment's tombstone count
// (a valid lower bound — hidden objects can only remove dominators), which
// also forces any node that could hide a tombstoned dominator open until
// its leaves resolve visibility exactly. With a single fully-visible
// segment and no extras the traversal is bit-identical to the frozen-tree
// algorithm.
#ifndef WSK_CORE_WHYNOT_KCR_H_
#define WSK_CORE_WHYNOT_KCR_H_

#include <vector>

#include "core/whynot.h"
#include "data/dataset.h"
#include "data/query.h"
#include "index/kcr_tree.h"
#include "index/topk.h"

namespace wsk {

// Per-object visibility filter over one frozen segment (tombstones at a
// snapshot sequence number). Implementations must be safe for concurrent
// use by query threads.
class ObjectVisibility {
 public:
  virtual ~ObjectVisibility() = default;
  virtual bool IsVisible(ObjectId id) const = 0;
};

// One frozen segment's KcR-tree plus its visibility mask.
struct KcrSegmentSource {
  const KcrTree* tree = nullptr;
  // nullptr: every object in the tree is visible.
  const ObjectVisibility* visibility = nullptr;
  // Number of objects in `tree` hidden by `visibility` (an upper bound is
  // sound; the exact count gives the tightest MinDom slack).
  uint32_t shadow_count = 0;
};

// The full multi-segment traversal input. `rank_source` answers the
// R(M, q) rank queries (a merged best-first source over the same segments);
// `extras` are delta objects scored exactly (their dominate counts feed
// both bound sums, so they never delay convergence).
struct KcrMultiSource {
  std::vector<KcrSegmentSource> segments;
  std::vector<const SpatialObject*> extras;
  const TopKSource* rank_source = nullptr;
  double diagonal = 1.0;
};

// Answers the keyword-adapted why-not query over the KcR-tree(s). Requires
// the Jaccard similarity model (Theorem 3's pseudo-similarity algebra);
// other models are rejected with InvalidArgument. Multiple missing objects
// are supported per Section VI-A: a node's bounds w.r.t. M aggregate the
// per-object bounds.
StatusOr<WhyNotResult> AnswerWhyNotKcr(const ObjectStore& store,
                                       const KcrMultiSource& source,
                                       const SpatialKeywordQuery& original,
                                       const std::vector<ObjectId>& missing,
                                       const WhyNotOptions& options);

// Single-tree convenience used by the frozen-dataset engine and tests.
inline StatusOr<WhyNotResult> AnswerWhyNotKcr(
    const Dataset& dataset, const KcrTree& tree,
    const SpatialKeywordQuery& original, const std::vector<ObjectId>& missing,
    const WhyNotOptions& options) {
  KcrMultiSource source;
  source.segments.push_back(KcrSegmentSource{&tree, nullptr, 0});
  source.rank_source = &tree;
  source.diagonal = tree.diagonal();
  return AnswerWhyNotKcr(dataset, source, original, missing, options);
}

}  // namespace wsk

#endif  // WSK_CORE_WHYNOT_KCR_H_
