// Why-not answering via query-location refinement — the other future-work
// direction named in the paper's conclusion ("the refinement of query
// location in spatial keyword top-k queries").
//
// The refined query q' = (loc', doc0, k', alpha) moves the query point the
// minimum (penalized) distance so that the missing objects enter the
// result:
//
//   Penalty(q') = lambda * max(0, R(M,q') - k0) / (R(M,q) - k0)
//               + (1-lambda) * |loc' - loc| / diagonal
//
// Unlike alpha, rank is not piecewise constant along a simple parameter, so
// this module searches the segment from the original location toward the
// missing objects' centroid — the direction that monotonically improves the
// missing objects' spatial score — with an exact rank evaluation at each
// candidate point, then locally refines around the best sample. The result
// is exact over the sampled line, not over the whole plane; that contract
// is part of the API name (Approximate).
#ifndef WSK_CORE_LOCATION_REFINEMENT_H_
#define WSK_CORE_LOCATION_REFINEMENT_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/query.h"

namespace wsk {

struct LocationRefineResult {
  bool already_in_result = false;
  Point loc;            // loc'
  uint32_t k = 0;       // k'
  uint32_t rank = 0;    // R(M, q') at loc'
  double penalty = 0.0;
  double moved = 0.0;   // |loc' - loc| (unnormalized)
  uint32_t initial_rank = 0;
};

// Approximate location refinement along the centroid direction; `samples`
// controls the line discretization (the local refinement adds a golden-
// section-style shrink around the best sample).
StatusOr<LocationRefineResult> RefineLocationApproximate(
    const Dataset& dataset, const SpatialKeywordQuery& original,
    const std::vector<ObjectId>& missing, double lambda,
    uint32_t samples = 64);

}  // namespace wsk

#endif  // WSK_CORE_LOCATION_REFINEMENT_H_
