#include "testing/scenario_gen.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"

namespace wsk::testing {

namespace {

// The object at 1-based `position` of the reference ranking (score
// descending, id ascending), by full sort — the generator never consults an
// index, so a broken index cannot bias instance selection.
ObjectId ObjectAtReferencePosition(const std::vector<ScoredObject>& ranking,
                                   uint32_t position) {
  return ranking[position - 1].id;
}

std::vector<ScoredObject> ReferenceRanking(const Dataset& dataset,
                                           const SpatialKeywordQuery& query) {
  const double diagonal = dataset.diagonal();
  std::vector<ScoredObject> scored;
  scored.reserve(dataset.size());
  for (const SpatialObject& o : dataset.objects()) {
    scored.push_back(ScoredObject{o.id, Score(o, query, diagonal)});
  }
  std::sort(scored.begin(), scored.end(), ScoreGreater());
  return scored;
}

}  // namespace

std::string WhyNotScenario::Describe() const {
  char buf[512];
  std::string missing_str;
  for (ObjectId id : missing) {
    if (!missing_str.empty()) missing_str += ",";
    missing_str += std::to_string(id);
  }
  std::snprintf(buf, sizeof(buf),
                "seed=%llu objects=%u vocab=%u zipf=%.3f clusters=%u "
                "uniform=%.3f dseed=%llu k0=%u alpha=%.17g lambda=%.17g "
                "threads=%d doc0=%s missing=[%s]",
                static_cast<unsigned long long>(seed),
                dataset_config.num_objects, dataset_config.vocab_size,
                dataset_config.zipf_skew, dataset_config.num_clusters,
                dataset_config.uniform_fraction,
                static_cast<unsigned long long>(dataset_config.seed), query.k,
                query.alpha, options.lambda, options.num_threads,
                query.doc.ToString().c_str(), missing_str.c_str());
  return std::string(buf) +
         "  (rebuild with wsk::testing::MakeScenario(seed))";
}

std::optional<WhyNotScenario> MakeScenario(uint64_t seed,
                                           const ScenarioOptions& opts) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x51ed270b0ull);

  WhyNotScenario scenario;
  scenario.seed = seed;

  GeneratorConfig config;
  config.num_objects =
      opts.min_objects + static_cast<uint32_t>(rng.NextUint64(
                             opts.max_objects - opts.min_objects + 1));
  config.vocab_size = 24 + static_cast<uint32_t>(rng.NextUint64(40));
  config.zipf_skew = rng.NextDouble(0.0, 1.4);
  config.doc_size_mean = rng.NextDouble(2.5, 5.5);
  config.doc_size_min = 1;
  switch (rng.NextUint64(3)) {
    case 0:  // pure uniform layout
      config.num_clusters = 1;
      config.uniform_fraction = 1.0;
      break;
    case 1:  // pure clustered layout
      config.num_clusters = 1 + static_cast<uint32_t>(rng.NextUint64(12));
      config.uniform_fraction = 0.0;
      break;
    default:  // mixed
      config.num_clusters = 1 + static_cast<uint32_t>(rng.NextUint64(12));
      config.uniform_fraction = rng.NextDouble();
      break;
  }
  config.cluster_stddev = rng.NextDouble(0.01, 0.06);
  config.seed = seed * 977 + 13;
  scenario.dataset_config = config;
  scenario.dataset = GenerateDataset(config);
  const Dataset& dataset = scenario.dataset;

  // Query shape, with deliberate boundary mass on k0 = 1 and extreme alpha.
  scenario.query.k =
      rng.NextBool(0.15) ? 1 : 2 + static_cast<uint32_t>(rng.NextUint64(8));
  if (rng.NextBool(0.1)) {
    scenario.query.alpha = 0.05;
  } else if (rng.NextBool(0.1)) {
    scenario.query.alpha = 0.95;
  } else {
    scenario.query.alpha = rng.NextDouble(0.1, 0.9);
  }
  if (opts.boundary_lambda && rng.NextBool(0.07)) {
    scenario.options.lambda = 0.0;
  } else if (opts.boundary_lambda && rng.NextBool(0.07)) {
    scenario.options.lambda = 1.0;
  } else {
    scenario.options.lambda = rng.NextDouble(0.05, 0.95);
  }
  if (opts.vary_threads && rng.NextBool(0.3)) {
    scenario.options.num_threads =
        2 + static_cast<int>(rng.NextUint64(2));
  }
  scenario.query.loc = Point{rng.NextDouble(), rng.NextDouble()};

  // doc0 and the missing set, retried within the seed's deterministic
  // stream until the candidate universe fits the oracle budget.
  for (int attempt = 0; attempt < 8; ++attempt) {
    const KeywordSet& pivot =
        dataset.object(static_cast<ObjectId>(rng.NextUint64(dataset.size())))
            .doc;
    std::vector<TermId> doc0_terms(pivot.begin(), pivot.end());
    rng.Shuffle(doc0_terms);
    const size_t doc0_size =
        std::min<size_t>(doc0_terms.size(),
                         1 + static_cast<size_t>(rng.NextUint64(4)));
    doc0_terms.resize(doc0_size);
    if (doc0_terms.empty()) continue;
    scenario.query.doc = KeywordSet(std::move(doc0_terms));

    const std::vector<ScoredObject> ranking =
        ReferenceRanking(dataset, scenario.query);
    const uint32_t num_missing =
        1 + static_cast<uint32_t>(rng.NextUint64(opts.max_missing));
    std::vector<ObjectId> missing;
    KeywordSet universe = scenario.query.doc;
    for (uint32_t m = 0; m < num_missing; ++m) {
      const uint32_t position =
          scenario.query.k + 1 +
          static_cast<uint32_t>(rng.NextUint64(3 * scenario.query.k + 2));
      if (position > dataset.size()) continue;
      const ObjectId id = ObjectAtReferencePosition(ranking, position);
      if (std::find(missing.begin(), missing.end(), id) != missing.end()) {
        continue;
      }
      const KeywordSet grown = universe.Union(dataset.object(id).doc);
      if (grown.size() > opts.max_universe) continue;  // would blow budget
      universe = grown;
      missing.push_back(id);
    }
    if (missing.empty()) continue;
    scenario.missing = std::move(missing);
    return scenario;
  }
  return std::nullopt;
}

}  // namespace wsk::testing
