// Seeded generation of randomized why-not instances for differential
// testing.
//
// Every instance is a pure function of a single uint64 seed: the dataset
// (clustered, uniform, or mixed layout; zipfian keyword skew), the query
// (including boundary k0 / alpha values), the missing-object set (1..3
// objects drawn from beyond the top-k by reference ranking), and the
// algorithm options (boundary lambda values, occasional multi-threaded
// evaluation). A failing test therefore reproduces from one line: feed the
// printed seed back into MakeScenario with the same ScenarioOptions.
#ifndef WSK_TESTING_SCENARIO_GEN_H_
#define WSK_TESTING_SCENARIO_GEN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/whynot.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "data/query.h"

namespace wsk::testing {

struct ScenarioOptions {
  uint32_t min_objects = 80;
  uint32_t max_objects = 200;

  // Cap on |doc0 ∪ M.doc|: the oracle enumerates 2^universe subsets and
  // ranks each by linear scan, so this bounds the per-instance cost.
  uint32_t max_universe = 11;

  uint32_t max_missing = 3;

  // Occasionally emit the exact boundary values lambda = 0 and lambda = 1.
  bool boundary_lambda = true;

  // Occasionally set WhyNotOptions::num_threads to 2..3 so the parallel
  // candidate path runs under the harness (and under TSan in CI).
  bool vary_threads = false;
};

struct WhyNotScenario {
  uint64_t seed = 0;
  GeneratorConfig dataset_config;
  Dataset dataset;
  SpatialKeywordQuery query;
  std::vector<ObjectId> missing;
  WhyNotOptions options;  // lambda (and sometimes num_threads) filled in

  // One-line repro: every derived parameter plus the seed that regenerates
  // the instance deterministically.
  std::string Describe() const;
};

// Builds the instance for `seed`. Returns nullopt when the seed yields no
// usable instance (e.g., the candidate universe cannot be kept within
// opts.max_universe); callers should simply skip such seeds. Instances
// where the missing objects already rank within the top-k are returned
// (already_in_result is a contract worth testing), but the generator aims
// beyond the top-k so they are rare.
std::optional<WhyNotScenario> MakeScenario(uint64_t seed,
                                           const ScenarioOptions& opts = {});

}  // namespace wsk::testing

#endif  // WSK_TESTING_SCENARIO_GEN_H_
