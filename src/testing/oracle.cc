#include "testing/oracle.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "core/penalty.h"
#include "text/similarity.h"

namespace wsk::testing {

namespace {

// Canonical order over refinements: edit distance ascending, benefit
// descending, keyword set ascending. The basic refinement (edit distance 0)
// sorts before every candidate, which encodes the seed-wins-ties rule.
bool CanonicalRefinementLess(const OracleRefinement& a,
                             const OracleRefinement& b) {
  if (a.edit_distance != b.edit_distance)
    return a.edit_distance < b.edit_distance;
  if (a.benefit != b.benefit) return a.benefit > b.benefit;
  return a.doc < b.doc;
}

}  // namespace

uint32_t OracleRank(const Dataset& dataset, const SpatialKeywordQuery& query,
                    const std::vector<ObjectId>& missing) {
  WSK_CHECK(!missing.empty());
  const double diagonal = dataset.diagonal();
  double min_score = std::numeric_limits<double>::infinity();
  for (ObjectId id : missing) {
    min_score =
        std::min(min_score, Score(dataset.object(id), query, diagonal));
  }
  uint32_t better = 0;
  for (const SpatialObject& o : dataset.objects()) {
    if (Score(o, query, diagonal) > min_score) ++better;
  }
  return better + 1;
}

OracleResult SolveWhyNotOracle(const Dataset& dataset,
                               const SpatialKeywordQuery& original,
                               const std::vector<ObjectId>& missing,
                               double lambda) {
  WSK_CHECK(!original.doc.empty());
  WSK_CHECK(!missing.empty());
  WSK_CHECK(lambda >= 0.0 && lambda <= 1.0);
  // Ids may be sparse (a reference dataset mirroring a mutated engine has
  // holes where deletions happened), so membership is the only valid check.
  for (ObjectId id : missing) WSK_CHECK(dataset.FindObject(id) != nullptr);

  OracleResult out;
  out.initial_rank = OracleRank(dataset, original, missing);
  if (out.initial_rank <= original.k) {
    out.already_in_result = true;
    out.best.doc = original.doc;
    out.best.rank = out.initial_rank;
    out.best.k = original.k;
    out.best.penalty = 0.0;
    return out;
  }

  // The candidate universe doc0 ∪ M.doc, with per-term doc0 membership and
  // the aggregate particularity Parti(M, t) = Σ_i Parti(m_i, t).
  const KeywordSet universe = original.doc.Union(dataset.UnionDocs(missing));
  const uint32_t n = static_cast<uint32_t>(universe.size());
  WSK_CHECK_MSG(n >= 1 && n <= 20, "oracle universe has %u terms", n);
  const std::vector<TermId>& terms = universe.terms();
  std::vector<bool> in_doc0(n);
  std::vector<double> particularity(n, 0.0);
  for (uint32_t i = 0; i < n; ++i) {
    in_doc0[i] = original.doc.Contains(terms[i]);
    for (ObjectId id : missing) {
      particularity[i] +=
          dataset.vocabulary().Particularity(dataset.object(id).doc, terms[i]);
    }
  }

  const PenaltyModel pm(lambda, original.k, out.initial_rank, n);

  // Per-object spatial part of Eqn 1, precomputed once; the per-candidate
  // score reproduces Score()'s arithmetic exactly. Indexed by storage
  // position, not id, so sparse-id reference datasets work.
  const double diagonal = dataset.diagonal();
  const std::vector<SpatialObject>& objects = dataset.objects();
  std::vector<double> sdist(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    sdist[i] = Distance(objects[i].loc, original.loc) / diagonal;
  }
  const auto sdist_of = [&](const SpatialObject& o) {
    return Distance(o.loc, original.loc) / diagonal;
  };

  double min_penalty = std::numeric_limits<double>::infinity();
  std::vector<OracleRefinement> co_optimal;
  auto offer = [&](OracleRefinement refinement) {
    if (refinement.penalty < min_penalty) {
      min_penalty = refinement.penalty;
      co_optimal.clear();
    }
    if (refinement.penalty == min_penalty) {
      co_optimal.push_back(std::move(refinement));
    }
  };

  // The basic refinement: keep doc0, enlarge k' to R. Penalty = lambda.
  {
    OracleRefinement seed;
    seed.doc = original.doc;
    seed.edit_distance = 0;
    seed.rank = out.initial_rank;
    seed.k = std::max(original.k, out.initial_rank);
    seed.benefit = 0.0;
    // Eqn 4 gives exactly lambda for the basic refinement (the rank ratio
    // is R-k0 over itself); the literal avoids the (lambda * dk) / dk
    // rounding that pm.Penalty would introduce and matches the value the
    // algorithms seed their search with.
    seed.penalty = lambda;
    offer(std::move(seed));
    ++out.refinements_enumerated;
  }

  const uint32_t total = (1u << n) - 1;
  for (uint32_t mask = 1; mask <= total; ++mask) {
    uint32_t ed = 0;
    double benefit = 0.0;
    for (uint32_t i = 0; i < n; ++i) {
      const bool in_candidate = (mask & (1u << i)) != 0;
      if (in_candidate == in_doc0[i]) continue;
      ++ed;
      benefit += in_candidate ? particularity[i] : -particularity[i];
    }
    if (ed == 0) continue;  // doc0 itself, covered by the basic refinement
    ++out.refinements_enumerated;

    std::vector<TermId> picked;
    for (uint32_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) picked.push_back(terms[i]);
    }
    const KeywordSet doc = KeywordSet::FromSorted(std::move(picked));

    // R(M, q') by linear scan, mirroring Score (Eqn 1) exactly.
    double min_score = std::numeric_limits<double>::infinity();
    for (ObjectId id : missing) {
      const SpatialObject& m = dataset.object(id);
      const double tsim = TextualSimilarity(m.doc, doc, original.model);
      const double score = original.alpha * (1.0 - sdist_of(m)) +
                           (1.0 - original.alpha) * tsim;
      min_score = std::min(min_score, score);
    }
    uint32_t better = 0;
    for (size_t i = 0; i < objects.size(); ++i) {
      const double tsim =
          TextualSimilarity(objects[i].doc, doc, original.model);
      const double score = original.alpha * (1.0 - sdist[i]) +
                           (1.0 - original.alpha) * tsim;
      if (score > min_score) ++better;
    }
    const uint32_t rank = better + 1;

    OracleRefinement refinement;
    refinement.doc = doc;
    refinement.edit_distance = ed;
    refinement.rank = rank;
    refinement.k = std::max(original.k, rank);
    refinement.benefit = benefit;
    refinement.penalty = pm.Penalty(rank, ed);
    offer(std::move(refinement));
  }

  std::sort(co_optimal.begin(), co_optimal.end(), CanonicalRefinementLess);
  out.best = co_optimal.front();
  out.co_optimal = std::move(co_optimal);
  return out;
}

}  // namespace wsk::testing
