// Brute-force reference oracle for the keyword-adapted why-not query.
//
// The oracle is deliberately independent of the production code paths it
// checks: candidates are enumerated from raw subset masks (not through
// CandidateEnumerator's ordering machinery), ranks are computed by a linear
// scan over the object table (never through the SetR-/KcR-tree), and the
// full co-optimal set is materialized instead of a single winner. A bug in
// the enumeration order, the Eqn 6 rank bound, the dominator bounds, or the
// index traversal therefore cannot hide in the reference. The only shared
// arithmetic is Score (Eqn 1, the reference ranking semantics) and
// PenaltyModel (Eqn 4), so penalties compare bit-exactly against the
// algorithms' output.
#ifndef WSK_TESTING_ORACLE_H_
#define WSK_TESTING_ORACLE_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/query.h"
#include "text/keyword_set.h"

namespace wsk::testing {

// One refined query considered by the oracle. `benefit` is the Eqn 7
// particularity sum that the canonical tie-break order uses.
struct OracleRefinement {
  KeywordSet doc;              // doc'
  uint32_t edit_distance = 0;  // ED(doc0, doc'); 0 only for doc0 itself
  uint32_t rank = 0;           // R(M, q') by linear scan
  uint32_t k = 0;              // k' = max(k0, rank)
  double benefit = 0.0;
  double penalty = 0.0;        // Eqn 4
};

struct OracleResult {
  uint32_t initial_rank = 0;       // R(M, q)
  bool already_in_result = false;  // initial_rank <= k0

  // The canonical winner every algorithm must return: the basic refinement
  // (doc0 with k' = R) when it ties the optimum, otherwise the co-optimal
  // candidate earliest in the canonical enumeration order (edit distance
  // ascending, benefit descending, keyword set ascending).
  OracleRefinement best;

  // Every refinement achieving the exact minimum penalty, in canonical
  // order; best == co_optimal.front(). Empty iff already_in_result.
  std::vector<OracleRefinement> co_optimal;

  uint64_t refinements_enumerated = 0;  // subsets tried (incl. doc0)
};

// R(M, query) = 1 + number of objects scoring strictly above the worst
// missing object, computed by a linear scan over the dataset.
uint32_t OracleRank(const Dataset& dataset, const SpatialKeywordQuery& query,
                    const std::vector<ObjectId>& missing);

// Exact solution by exhaustive enumeration: every non-empty subset of
// doc0 ∪ M.doc is ranked by linear scan (doc0 itself contributes the basic
// refinement with k' = R). Preconditions: doc0 non-empty, missing non-empty
// and in range, alpha in (0, 1), lambda in [0, 1], and |doc0 ∪ M.doc| <= 20
// (2^20 subsets is the cost ceiling a test should ever pay).
OracleResult SolveWhyNotOracle(const Dataset& dataset,
                               const SpatialKeywordQuery& original,
                               const std::vector<ObjectId>& missing,
                               double lambda);

}  // namespace wsk::testing

#endif  // WSK_TESTING_ORACLE_H_
