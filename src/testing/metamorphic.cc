#include "testing/metamorphic.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/rng.h"
#include "testing/oracle.h"

namespace wsk::testing {

namespace {

InvariantOutcome Skip(std::string why) {
  InvariantOutcome out;
  out.applicable = false;
  out.message = std::move(why);
  return out;
}

InvariantOutcome Fail(std::string why) {
  InvariantOutcome out;
  out.passed = false;
  out.message = std::move(why);
  return out;
}

std::string FormatPenalties(double a, double b) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "penalty %.17g vs %.17g", a, b);
  return buf;
}

// Rebuilds a dataset applying a point transform and a keyword-set
// transform to every object. Vocabulary strings are not carried over (the
// algorithms only consume document frequencies, which Dataset::Add
// re-records).
template <typename PointFn, typename DocFn>
Dataset RebuildDataset(const Dataset& dataset, PointFn&& point_fn,
                       DocFn&& doc_fn) {
  Dataset out;
  for (const SpatialObject& o : dataset.objects()) {
    out.Add(point_fn(o.loc), doc_fn(o.doc));
  }
  return out;
}

}  // namespace

InvariantOutcome CheckDominatedInsertion(const Dataset& dataset,
                                         const SpatialKeywordQuery& query,
                                         const std::vector<ObjectId>& missing,
                                         const WhyNotOptions& options,
                                         const WhyNotSolver& solver) {
  // Premise: some bounding-box corner lies strictly farther from the query
  // than every missing object. An object there with a keyword no candidate
  // can contain scores strictly below min_i ST(m_i, q') for every candidate
  // q' (the textual term is 0 and the spatial term is smaller), so it can
  // never enter any rank R(M, q') and the refined query must not move.
  const Rect& bounds = dataset.bounding_rect();
  if (bounds.Empty()) return Skip("empty dataset");
  double max_missing_dist = 0.0;
  for (ObjectId id : missing) {
    max_missing_dist = std::max(
        max_missing_dist, Distance(dataset.object(id).loc, query.loc));
  }
  const Point corners[4] = {Point{bounds.min_x, bounds.min_y},
                            Point{bounds.min_x, bounds.max_y},
                            Point{bounds.max_x, bounds.min_y},
                            Point{bounds.max_x, bounds.max_y}};
  const Point* decoy_loc = nullptr;
  double best_dist = max_missing_dist;
  for (const Point& corner : corners) {
    const double d = Distance(corner, query.loc);
    if (d > best_dist) {
      best_dist = d;
      decoy_loc = &corner;
    }
  }
  if (decoy_loc == nullptr) {
    return Skip("no bounding-box corner farther than the missing objects");
  }

  StatusOr<WhyNotResult> baseline =
      solver(dataset, query, missing, options);
  if (!baseline.ok()) return Fail("baseline: " + baseline.status().ToString());

  Dataset modified = RebuildDataset(
      dataset, [](const Point& p) { return p; },
      [](const KeywordSet& doc) { return doc; });
  // A term id one past the vocabulary: disjoint from every candidate
  // (candidates are subsets of doc0 ∪ M.doc), so TextualSimilarity is 0.
  const TermId fresh = dataset.vocabulary().num_terms();
  modified.Add(*decoy_loc, KeywordSet{fresh});

  StatusOr<WhyNotResult> with_decoy =
      solver(modified, query, missing, options);
  if (!with_decoy.ok()) return Fail("decoy: " + with_decoy.status().ToString());

  const RefinedQuery& a = baseline.value().refined;
  const RefinedQuery& b = with_decoy.value().refined;
  if (a.penalty != b.penalty) {
    return Fail("dominated insertion changed the penalty: " +
                FormatPenalties(a.penalty, b.penalty));
  }
  if (a.rank != b.rank || a.k != b.k || a.edit_distance != b.edit_distance ||
      !(a.doc == b.doc)) {
    return Fail("dominated insertion changed the refined query: " +
                a.doc.ToString() + " k=" + std::to_string(a.k) + " vs " +
                b.doc.ToString() + " k=" + std::to_string(b.k));
  }
  return InvariantOutcome{};
}

InvariantOutcome CheckGeometryInvariance(const Dataset& dataset,
                                         const SpatialKeywordQuery& query,
                                         const std::vector<ObjectId>& missing,
                                         const WhyNotOptions& options,
                                         const WhyNotSolver& solver,
                                         double scale, double dx, double dy) {
  if (!(scale > 0.0)) return Skip("non-positive scale");
  StatusOr<WhyNotResult> baseline = solver(dataset, query, missing, options);
  if (!baseline.ok()) return Fail("baseline: " + baseline.status().ToString());

  auto transform = [scale, dx, dy](const Point& p) {
    return Point{p.x * scale + dx, p.y * scale + dy};
  };
  Dataset moved = RebuildDataset(
      dataset, transform, [](const KeywordSet& doc) { return doc; });
  SpatialKeywordQuery moved_query = query;
  moved_query.loc = transform(query.loc);

  StatusOr<WhyNotResult> transformed =
      solver(moved, moved_query, missing, options);
  if (!transformed.ok()) {
    return Fail("transformed: " + transformed.status().ToString());
  }

  const RefinedQuery& a = baseline.value().refined;
  const RefinedQuery& b = transformed.value().refined;
  if (std::fabs(a.penalty - b.penalty) > 1e-9) {
    return Fail("geometry transform changed the penalty: " +
                FormatPenalties(a.penalty, b.penalty));
  }
  if (!(a.doc == b.doc) || a.k != b.k) {
    return Fail("geometry transform changed the refinement: " +
                a.doc.ToString() + " k=" + std::to_string(a.k) + " vs " +
                b.doc.ToString() + " k=" + std::to_string(b.k));
  }
  return InvariantOutcome{};
}

InvariantOutcome CheckVocabularyPermutation(
    const Dataset& dataset, const SpatialKeywordQuery& query,
    const std::vector<ObjectId>& missing, const WhyNotOptions& options,
    const WhyNotSolver& solver, uint64_t perm_seed) {
  StatusOr<WhyNotResult> baseline = solver(dataset, query, missing, options);
  if (!baseline.ok()) return Fail("baseline: " + baseline.status().ToString());

  const uint32_t num_terms = dataset.vocabulary().num_terms();
  if (num_terms < 2) return Skip("vocabulary too small to permute");
  std::vector<TermId> perm(num_terms);
  std::iota(perm.begin(), perm.end(), 0u);
  Rng rng(perm_seed * 0x2545f4914f6cdd1dull + 7);
  rng.Shuffle(perm);

  auto map_doc = [&perm](const KeywordSet& doc) {
    std::vector<TermId> mapped;
    mapped.reserve(doc.size());
    for (TermId t : doc) mapped.push_back(perm[t]);
    return KeywordSet(std::move(mapped));
  };
  Dataset renamed = RebuildDataset(
      dataset, [](const Point& p) { return p; }, map_doc);
  SpatialKeywordQuery renamed_query = query;
  renamed_query.doc = map_doc(query.doc);

  StatusOr<WhyNotResult> permuted =
      solver(renamed, renamed_query, missing, options);
  if (!permuted.ok()) return Fail("permuted: " + permuted.status().ToString());

  const RefinedQuery& a = baseline.value().refined;
  const RefinedQuery& b = permuted.value().refined;
  if (a.penalty != b.penalty) {
    return Fail("vocabulary permutation changed the penalty: " +
                FormatPenalties(a.penalty, b.penalty));
  }
  if (baseline.value().already_in_result !=
      permuted.value().already_in_result) {
    return Fail("vocabulary permutation flipped already_in_result");
  }
  // The permuted winner must still revive the missing objects.
  if (!permuted.value().already_in_result) {
    SpatialKeywordQuery refined = renamed_query;
    refined.doc = b.doc;
    const uint32_t rank = OracleRank(renamed, refined, missing);
    if (rank > std::max(b.k, renamed_query.k)) {
      return Fail("permuted refinement does not revive the missing set: "
                  "rank " +
                  std::to_string(rank) + " > k' " + std::to_string(b.k));
    }
  }
  return InvariantOutcome{};
}

InvariantOutcome CheckZeroPenaltyIff(const Dataset& dataset,
                                     const SpatialKeywordQuery& query,
                                     const std::vector<ObjectId>& missing,
                                     const WhyNotOptions& options,
                                     const WhyNotSolver& solver) {
  if (options.lambda <= 0.0 || options.lambda >= 1.0) {
    return Skip("zero-penalty iff only holds for lambda in (0, 1)");
  }
  const uint32_t rank = OracleRank(dataset, query, missing);
  const bool in_topk = rank <= query.k;

  StatusOr<WhyNotResult> result = solver(dataset, query, missing, options);
  if (!result.ok()) return Fail("solver: " + result.status().ToString());
  const WhyNotResult& r = result.value();

  if (r.already_in_result != in_topk) {
    return Fail("already_in_result=" + std::to_string(r.already_in_result) +
                " but reference rank " + std::to_string(rank) + " vs k0 " +
                std::to_string(query.k));
  }
  if (in_topk) {
    if (r.refined.penalty != 0.0 || !(r.refined.doc == query.doc)) {
      return Fail("in-top-k instance must refine to the original query with "
                  "penalty 0, got " +
                  std::to_string(r.refined.penalty));
    }
  } else if (!(r.refined.penalty > 0.0)) {
    return Fail("missing objects outside the top-k but penalty is " +
                std::to_string(r.refined.penalty));
  }
  return InvariantOutcome{};
}

namespace {

// Bit-exact comparison; returns an empty string on equality, else a
// diagnostic naming the first divergence.
std::string DiffTopK(const std::vector<ScoredObject>& a,
                     const std::vector<ScoredObject>& b) {
  if (a.size() != b.size()) {
    return "result sizes differ: " + std::to_string(a.size()) + " vs " +
           std::to_string(b.size());
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].score != b[i].score) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "position %zu: (%u, %.17g) vs (%u, %.17g)", i, a[i].id,
                    a[i].score, b[i].id, b[i].score);
      return buf;
    }
  }
  return {};
}

std::string DiffWhyNot(const WhyNotResult& a, const WhyNotResult& b) {
  if (a.already_in_result != b.already_in_result) {
    return "already_in_result flipped";
  }
  if (a.refined.penalty != b.refined.penalty) {
    return FormatPenalties(a.refined.penalty, b.refined.penalty);
  }
  if (!(a.refined.doc == b.refined.doc) || a.refined.k != b.refined.k ||
      a.refined.rank != b.refined.rank ||
      a.refined.edit_distance != b.refined.edit_distance) {
    return "refined query changed: " + a.refined.doc.ToString() + " k=" +
           std::to_string(a.refined.k) + " vs " + b.refined.doc.ToString() +
           " k=" + std::to_string(b.refined.k);
  }
  return {};
}

}  // namespace

InvariantOutcome CheckInsertThenDeleteIdentity(
    const MutationHarness& harness, const SpatialKeywordQuery& query,
    Point loc, const std::vector<std::string>& keywords) {
  StatusOr<std::vector<ScoredObject>> before = harness.topk(query);
  if (!before.ok()) return Fail("baseline: " + before.status().ToString());
  StatusOr<WhyNotResult> whynot_before = Status::Internal("unset");
  if (harness.whynot) {
    whynot_before = harness.whynot();
    if (!whynot_before.ok()) {
      return Fail("baseline why-not: " + whynot_before.status().ToString());
    }
  }

  StatusOr<ObjectId> id = harness.insert(loc, keywords);
  if (!id.ok()) return Fail("insert: " + id.status().ToString());
  if (Status status = harness.remove(id.value()); !status.ok()) {
    return Fail("delete: " + status.ToString());
  }

  StatusOr<std::vector<ScoredObject>> after = harness.topk(query);
  if (!after.ok()) return Fail("after: " + after.status().ToString());
  if (std::string diff = DiffTopK(before.value(), after.value());
      !diff.empty()) {
    return Fail("insert-then-delete changed the top-k: " + diff);
  }
  if (harness.whynot) {
    StatusOr<WhyNotResult> whynot_after = harness.whynot();
    if (!whynot_after.ok()) {
      return Fail("after why-not: " + whynot_after.status().ToString());
    }
    if (std::string diff =
            DiffWhyNot(whynot_before.value(), whynot_after.value());
        !diff.empty()) {
      return Fail("insert-then-delete changed the why-not answer: " + diff);
    }
  }
  return InvariantOutcome{};
}

InvariantOutcome CheckDominatedInsertUnchangedTopK(
    const MutationHarness& harness, const SpatialKeywordQuery& query,
    const Rect& bounds, double diagonal) {
  if (bounds.Empty() || !(diagonal > 0.0)) return Skip("empty dataset");

  StatusOr<std::vector<ScoredObject>> before = harness.topk(query);
  if (!before.ok()) return Fail("baseline: " + before.status().ToString());
  if (before.value().size() < query.k) {
    return Skip("fewer than k results: any insert may enter the top-k");
  }
  const double kth_score = before.value().back().score;

  // A fresh keyword no query or document contains makes the textual term 0
  // (set-overlap models score disjoint sets 0), so the decoy's score is
  // pure spatial: alpha * (1 - dist / diagonal). Pick the corner with the
  // lowest such score; dominance requires it strictly below the kth score.
  const Point corners[4] = {Point{bounds.min_x, bounds.min_y},
                            Point{bounds.min_x, bounds.max_y},
                            Point{bounds.max_x, bounds.min_y},
                            Point{bounds.max_x, bounds.max_y}};
  const Point* decoy_loc = nullptr;
  double decoy_score = kth_score;
  for (const Point& corner : corners) {
    const double score =
        query.alpha * (1.0 - Distance(corner, query.loc) / diagonal);
    if (score < decoy_score) {
      decoy_score = score;
      decoy_loc = &corner;
    }
  }
  if (decoy_loc == nullptr) {
    return Skip("no bounding-box corner scores below the kth result");
  }

  StatusOr<ObjectId> id =
      harness.insert(*decoy_loc, {"__metamorphic_dominated_decoy__"});
  if (!id.ok()) return Fail("insert: " + id.status().ToString());

  StatusOr<std::vector<ScoredObject>> with_decoy = harness.topk(query);
  std::string diff;
  if (!with_decoy.ok()) {
    diff = "query: " + with_decoy.status().ToString();
  } else {
    diff = DiffTopK(before.value(), with_decoy.value());
  }
  // Restore the dataset before reporting either way.
  if (Status status = harness.remove(id.value()); !status.ok()) {
    return Fail("delete: " + status.ToString());
  }
  if (!diff.empty()) {
    return Fail("dominated insert changed the top-k: " + diff);
  }
  return InvariantOutcome{};
}

InvariantOutcome CheckMergeInvariance(const MutationHarness& harness,
                                      const SpatialKeywordQuery& query) {
  if (!harness.merge) return Skip("backend has no merge operation");

  StatusOr<std::vector<ScoredObject>> before = harness.topk(query);
  if (!before.ok()) return Fail("baseline: " + before.status().ToString());
  StatusOr<WhyNotResult> whynot_before = Status::Internal("unset");
  if (harness.whynot) {
    whynot_before = harness.whynot();
    if (!whynot_before.ok()) {
      return Fail("baseline why-not: " + whynot_before.status().ToString());
    }
  }

  if (Status status = harness.merge(); !status.ok()) {
    return Fail("merge: " + status.ToString());
  }

  StatusOr<std::vector<ScoredObject>> after = harness.topk(query);
  if (!after.ok()) return Fail("after: " + after.status().ToString());
  if (std::string diff = DiffTopK(before.value(), after.value());
      !diff.empty()) {
    return Fail("merge changed the top-k: " + diff);
  }
  if (harness.whynot) {
    StatusOr<WhyNotResult> whynot_after = harness.whynot();
    if (!whynot_after.ok()) {
      return Fail("after why-not: " + whynot_after.status().ToString());
    }
    if (std::string diff =
            DiffWhyNot(whynot_before.value(), whynot_after.value());
        !diff.empty()) {
      return Fail("merge changed the why-not answer: " + diff);
    }
  }
  return InvariantOutcome{};
}

}  // namespace wsk::testing
