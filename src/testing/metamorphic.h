// Metamorphic invariants over why-not solvers.
//
// Each check derives a transformed instance whose correct answer is known
// from the original instance's answer — no oracle enumeration needed — and
// verifies that the solver's outputs relate as the theory demands:
//   * DominatedInsertion — adding an object that scores strictly below
//     every missing object under every candidate query cannot change the
//     refined query (its penalty, rank, or keywords);
//   * GeometryInvariance — uniformly scaling and translating all
//     coordinates (and the query location) preserves the refinement, since
//     SDist is normalized by the dataset diagonal;
//   * VocabularyPermutation — renaming term ids by any permutation
//     preserves the minimum penalty (set algebra and document frequencies
//     are carried along by the renaming);
//   * ZeroPenaltyIff — for lambda in (0, 1), Penalty(q, q') == 0 holds iff
//     the missing objects already rank within the original top-k.
//
// Mutation invariants (for live backends, docs/SEGMENTS.md) work the same
// way but over a MutationHarness of callbacks instead of a Dataset:
//   * InsertThenDeleteIdentity — inserting an object and deleting it again
//     is a logical no-op: every answer afterwards is bit-identical;
//   * DominatedInsertUnchangedTopK — an object whose score is provably
//     below the current kth score cannot enter the top-k;
//   * MergeInvariance — compaction reorganizes storage, never answers:
//     top-k and why-not results are bit-identical across a forced merge.
//
// Checks are solver-agnostic: pass a callback that runs BS, AdvancedBS,
// KcRBased, or any future algorithm against the dataset it is handed.
#ifndef WSK_TESTING_METAMORPHIC_H_
#define WSK_TESTING_METAMORPHIC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/whynot.h"
#include "data/dataset.h"
#include "data/query.h"

namespace wsk::testing {

// Runs one why-not algorithm against the given (possibly transformed)
// instance. The dataset reference is only valid for the duration of the
// call.
using WhyNotSolver = std::function<StatusOr<WhyNotResult>(
    const Dataset& dataset, const SpatialKeywordQuery& query,
    const std::vector<ObjectId>& missing, const WhyNotOptions& options)>;

struct InvariantOutcome {
  bool applicable = true;  // the check's premise held for this instance
  bool passed = true;
  std::string message;  // diagnostics when !passed (or why skipped)
};

// Adds a decoy object (fresh keyword, placed at the bounding-box corner
// farthest from the query) and asserts the refined query is unchanged.
// Inapplicable when no corner lies strictly farther than every missing
// object — then no provably dominated placement exists.
InvariantOutcome CheckDominatedInsertion(const Dataset& dataset,
                                         const SpatialKeywordQuery& query,
                                         const std::vector<ObjectId>& missing,
                                         const WhyNotOptions& options,
                                         const WhyNotSolver& solver);

// Rebuilds the instance under p -> scale * p + (dx, dy) (scale > 0) and
// asserts penalty (tolerance 1e-9 for float re-association), keywords, and
// k' are preserved. Powers of two for `scale` minimize rounding noise.
InvariantOutcome CheckGeometryInvariance(const Dataset& dataset,
                                         const SpatialKeywordQuery& query,
                                         const std::vector<ObjectId>& missing,
                                         const WhyNotOptions& options,
                                         const WhyNotSolver& solver,
                                         double scale, double dx, double dy);

// Rebuilds the instance under a random permutation of term ids (seeded by
// perm_seed) and asserts the minimum penalty is bit-identical and that the
// returned refinement still revives the missing objects. The winning
// keyword set may legitimately differ: the canonical tie-break order
// depends on term-id order.
InvariantOutcome CheckVocabularyPermutation(
    const Dataset& dataset, const SpatialKeywordQuery& query,
    const std::vector<ObjectId>& missing, const WhyNotOptions& options,
    const WhyNotSolver& solver, uint64_t perm_seed);

// Asserts already_in_result/zero-penalty agree with the reference rank.
// Inapplicable at lambda == 0 or lambda == 1, where a zero penalty does not
// imply membership in the original top-k.
InvariantOutcome CheckZeroPenaltyIff(const Dataset& dataset,
                                     const SpatialKeywordQuery& query,
                                     const std::vector<ObjectId>& missing,
                                     const WhyNotOptions& options,
                                     const WhyNotSolver& solver);

// Callback surface over a live, mutable backend (e.g. SegmentedEngine).
// The checks never see the backend type, so they run against any future
// live implementation. `merge` and `whynot` may be null: merge-dependent
// checks report inapplicable, and why-not comparisons are skipped.
struct MutationHarness {
  std::function<StatusOr<std::vector<ScoredObject>>(
      const SpatialKeywordQuery&)>
      topk;
  std::function<StatusOr<ObjectId>(Point,
                                   const std::vector<std::string>&)>
      insert;
  std::function<Status(ObjectId)> remove;
  std::function<Status()> merge;  // synchronous forced compaction
  // One fixed why-not instance, bound by the caller (algorithm, missing
  // set, and options baked in).
  std::function<StatusOr<WhyNotResult>()> whynot;
};

// Insert `loc`/`keywords`, delete the returned id, and assert the top-k
// (and the why-not answer, when bound) is bit-identical to before. The
// round trip must also restore document frequencies, so a subsequent
// why-not sees identical particularity weights.
InvariantOutcome CheckInsertThenDeleteIdentity(
    const MutationHarness& harness, const SpatialKeywordQuery& query,
    Point loc, const std::vector<std::string>& keywords);

// Insert an object that provably cannot enter the query's top-k — a fresh
// keyword (textual similarity 0 against the query) at the bounding-box
// corner spatially scored below the current kth score — and assert the
// top-k is bit-identical. The object is deleted again before returning.
// Inapplicable when the result holds fewer than k objects (any insert may
// then enter) or when no corner scores strictly below the kth score.
InvariantOutcome CheckDominatedInsertUnchangedTopK(
    const MutationHarness& harness, const SpatialKeywordQuery& query,
    const Rect& bounds, double diagonal);

// Force a compaction and assert the top-k (and the why-not answer, when
// bound) is bit-identical across it.
InvariantOutcome CheckMergeInvariance(const MutationHarness& harness,
                                      const SpatialKeywordQuery& query);

}  // namespace wsk::testing

#endif  // WSK_TESTING_METAMORPHIC_H_
