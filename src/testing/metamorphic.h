// Metamorphic invariants over why-not solvers.
//
// Each check derives a transformed instance whose correct answer is known
// from the original instance's answer — no oracle enumeration needed — and
// verifies that the solver's outputs relate as the theory demands:
//   * DominatedInsertion — adding an object that scores strictly below
//     every missing object under every candidate query cannot change the
//     refined query (its penalty, rank, or keywords);
//   * GeometryInvariance — uniformly scaling and translating all
//     coordinates (and the query location) preserves the refinement, since
//     SDist is normalized by the dataset diagonal;
//   * VocabularyPermutation — renaming term ids by any permutation
//     preserves the minimum penalty (set algebra and document frequencies
//     are carried along by the renaming);
//   * ZeroPenaltyIff — for lambda in (0, 1), Penalty(q, q') == 0 holds iff
//     the missing objects already rank within the original top-k.
//
// Checks are solver-agnostic: pass a callback that runs BS, AdvancedBS,
// KcRBased, or any future algorithm against the dataset it is handed.
#ifndef WSK_TESTING_METAMORPHIC_H_
#define WSK_TESTING_METAMORPHIC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/whynot.h"
#include "data/dataset.h"
#include "data/query.h"

namespace wsk::testing {

// Runs one why-not algorithm against the given (possibly transformed)
// instance. The dataset reference is only valid for the duration of the
// call.
using WhyNotSolver = std::function<StatusOr<WhyNotResult>(
    const Dataset& dataset, const SpatialKeywordQuery& query,
    const std::vector<ObjectId>& missing, const WhyNotOptions& options)>;

struct InvariantOutcome {
  bool applicable = true;  // the check's premise held for this instance
  bool passed = true;
  std::string message;  // diagnostics when !passed (or why skipped)
};

// Adds a decoy object (fresh keyword, placed at the bounding-box corner
// farthest from the query) and asserts the refined query is unchanged.
// Inapplicable when no corner lies strictly farther than every missing
// object — then no provably dominated placement exists.
InvariantOutcome CheckDominatedInsertion(const Dataset& dataset,
                                         const SpatialKeywordQuery& query,
                                         const std::vector<ObjectId>& missing,
                                         const WhyNotOptions& options,
                                         const WhyNotSolver& solver);

// Rebuilds the instance under p -> scale * p + (dx, dy) (scale > 0) and
// asserts penalty (tolerance 1e-9 for float re-association), keywords, and
// k' are preserved. Powers of two for `scale` minimize rounding noise.
InvariantOutcome CheckGeometryInvariance(const Dataset& dataset,
                                         const SpatialKeywordQuery& query,
                                         const std::vector<ObjectId>& missing,
                                         const WhyNotOptions& options,
                                         const WhyNotSolver& solver,
                                         double scale, double dx, double dy);

// Rebuilds the instance under a random permutation of term ids (seeded by
// perm_seed) and asserts the minimum penalty is bit-identical and that the
// returned refinement still revives the missing objects. The winning
// keyword set may legitimately differ: the canonical tie-break order
// depends on term-id order.
InvariantOutcome CheckVocabularyPermutation(
    const Dataset& dataset, const SpatialKeywordQuery& query,
    const std::vector<ObjectId>& missing, const WhyNotOptions& options,
    const WhyNotSolver& solver, uint64_t perm_seed);

// Asserts already_in_result/zero-penalty agree with the reference rank.
// Inapplicable at lambda == 0 or lambda == 1, where a zero penalty does not
// imply membership in the original top-k.
InvariantOutcome CheckZeroPenaltyIff(const Dataset& dataset,
                                     const SpatialKeywordQuery& query,
                                     const std::vector<ObjectId>& missing,
                                     const WhyNotOptions& options,
                                     const WhyNotSolver& solver);

}  // namespace wsk::testing

#endif  // WSK_TESTING_METAMORPHIC_H_
