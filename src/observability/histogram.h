// Shared latency-bucket math for every histogram in the system.
//
// Both the cumulative LatencyHistogram (service/metrics.h) and the rolling
// per-second windows (observability/telemetry.h) bin samples into the same
// 30 exponential buckets — bucket i covers (2^(i-1), 2^i] microseconds,
// spanning 1 us .. ~17 min — and read quantiles from the bucket boundaries.
// Keeping the bucket index, boundary, and quantile computations here means
// a windowed p99 and a cumulative p99 can never disagree on what a bucket
// means (the duplication this file replaced was the bug surface).
#ifndef WSK_OBSERVABILITY_HISTOGRAM_H_
#define WSK_OBSERVABILITY_HISTOGRAM_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace wsk {

inline constexpr size_t kLatencyBuckets = 30;

// Upper bound of bucket `i` in milliseconds.
inline double LatencyBucketBoundMs(size_t i) {
  return static_cast<double>(uint64_t{1} << i) / 1000.0;
}

// Bucket index for one sample. Negatives and NaN land in the first bucket.
inline size_t LatencyBucketIndex(double ms) {
  if (!(ms > 0.0)) return 0;
  const double us = ms * 1000.0;
  if (us <= 1.0) return 0;
  const uint64_t ceil_us = static_cast<uint64_t>(std::ceil(us));
  size_t bucket = 0;
  uint64_t bound = 1;
  while (bound < ceil_us && bucket + 1 < kLatencyBuckets) {
    bound <<= 1;
    ++bucket;
  }
  return bucket;
}

// Smallest bucket bound (ms) below which at least fraction `q` of the
// `total` samples in `counts` fall. `total` must equal the sum of counts;
// returns 0 when there are no samples. Resolution is a factor of two —
// ample for p50/p95/p99 tail reporting.
inline double LatencyQuantileMs(const uint64_t counts[kLatencyBuckets],
                                uint64_t total, double q) {
  if (total == 0) return 0.0;
  const uint64_t want =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  uint64_t seen = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    seen += counts[i];
    if (seen >= want) return LatencyBucketBoundMs(i);
  }
  return LatencyBucketBoundMs(kLatencyBuckets - 1);
}

}  // namespace wsk

#endif  // WSK_OBSERVABILITY_HISTOGRAM_H_
