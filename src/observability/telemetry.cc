#include "observability/telemetry.h"

#include <algorithm>
#include <cinttypes>
#include <cstring>
#include <utility>

#if defined(__linux__)
#include <unistd.h>
#endif

namespace wsk {

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

// Captured during static initialization — effectively process start.
const std::chrono::steady_clock::time_point kProcessEpoch =
    std::chrono::steady_clock::now();

}  // namespace

double ProcessUptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       kProcessEpoch)
      .count();
}

uint64_t ProcessResidentBytes() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    unsigned long long pages = 0, resident = 0;
    const int fields = std::fscanf(f, "%llu %llu", &pages, &resident);
    std::fclose(f);
    if (fields == 2) {
      return static_cast<uint64_t>(resident) *
             static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
    }
  }
#endif
  return 0;
}

const char* ProfileKindName(ProfileKind kind) {
  switch (kind) {
    case ProfileKind::kTopK:
      return "topk";
    case ProfileKind::kWhyNot:
      return "whynot";
    case ProfileKind::kBatch:
      return "batch";
  }
  return "unknown";
}

double QueryProfile::StageSumMs() const {
  uint64_t total_us = 0;
  for (size_t i = 0; i < kNumTraceStages; ++i) total_us += stage_total_us[i];
  return static_cast<double>(total_us) / 1000.0;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "\"id\":%" PRIu64 ",\"kind\":\"%s\"", id,
                ProfileKindName(kind));
  out += buf;
  out += ",\"algorithm\":";
  AppendJsonString(algorithm, &out);
  std::snprintf(buf, sizeof(buf), ",\"fingerprint\":\"%016" PRIx64 "\"",
                fingerprint);
  out += buf;
  out += ",\"status\":";
  AppendJsonString(status, &out);
  std::snprintf(buf, sizeof(buf),
                ",\"ok\":%s,\"cache_hit\":%s,\"sampled\":%s,\"slow\":%s,"
                "\"wall_ms\":%.3f,\"queue_ms\":%.3f",
                ok ? "true" : "false", cache_hit ? "true" : "false",
                sampled ? "true" : "false", slow ? "true" : "false", wall_ms,
                queue_ms);
  out += buf;
  out += ",\"stages\":{";
  bool first = true;
  for (size_t i = 0; i < kNumTraceStages; ++i) {
    if (stage_count[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "\"%s\":{\"count\":%" PRIu64 ",\"total_ms\":%.3f}",
                  TraceStageName(static_cast<TraceStage>(i)), stage_count[i],
                  static_cast<double>(stage_total_us[i]) / 1000.0);
    out += buf;
  }
  out += "},\"counters\":{";
  first = true;
  for (size_t i = 0; i < kNumTraceCounters; ++i) {
    if (counters[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64,
                  TraceCounterName(static_cast<TraceCounter>(i)), counters[i]);
    out += buf;
  }
  out += "}";
  std::snprintf(buf, sizeof(buf),
                ",\"io\":{\"physical\":%" PRIu64 ",\"mapped\":%" PRIu64
                ",\"node_cache_hits\":%" PRIu64 "},\"dropped_events\":%" PRIu64
                "}",
                io_physical, io_mapped, io_cache_hits, dropped_events);
  out += buf;
  return out;
}

std::string QueryProfile::ToChromeTraceJson() const {
  return ChromeTraceJsonFromEvents(events, counters, dropped_events);
}

std::string QueryProfile::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "#%-5" PRIu64 " %-6s %-8s %-18s wall %9.3f ms  queue %7.3f ms"
                "  stages %9.3f ms  events %zu%s%s",
                id, ProfileKindName(kind), algorithm.c_str(), status.c_str(),
                wall_ms, queue_ms, StageSumMs(), events.size(),
                sampled ? "  [sampled]" : "", slow ? "  [slow]" : "");
  return buf;
}

RollingWindows::RollingWindows() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t RollingWindows::NowSeconds() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

RollingWindows::Slot& RollingWindows::Claim(uint64_t now_s) {
  Slot& slot = slots_[now_s % kSlots];
  uint64_t tag = slot.second.load(std::memory_order_relaxed);
  while (tag != now_s) {
    // One writer wins the CAS and zeroes the stale slot; losers observe
    // the new tag and just increment. A loser that increments before the
    // winner finishes zeroing loses that increment — accepted slack.
    if (slot.second.compare_exchange_weak(tag, now_s,
                                          std::memory_order_relaxed)) {
      slot.requests.store(0, std::memory_order_relaxed);
      slot.ok.store(0, std::memory_order_relaxed);
      slot.shed.store(0, std::memory_order_relaxed);
      slot.cache_hits.store(0, std::memory_order_relaxed);
      slot.lat_count.store(0, std::memory_order_relaxed);
      slot.lat_sum_us.store(0, std::memory_order_relaxed);
      for (size_t i = 0; i < kLatencyBuckets; ++i) {
        slot.lat_buckets[i].store(0, std::memory_order_relaxed);
      }
      break;
    }
  }
  return slot;
}

void RollingWindows::RecordRequest(bool ok, bool cache_hit, double wall_ms) {
  Slot& slot = Claim(NowSeconds());
  slot.requests.fetch_add(1, std::memory_order_relaxed);
  if (ok) slot.ok.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit) slot.cache_hits.fetch_add(1, std::memory_order_relaxed);
  slot.lat_buckets[LatencyBucketIndex(wall_ms)].fetch_add(
      1, std::memory_order_relaxed);
  slot.lat_count.fetch_add(1, std::memory_order_relaxed);
  const double us = wall_ms > 0.0 ? wall_ms * 1000.0 : 0.0;
  slot.lat_sum_us.fetch_add(static_cast<uint64_t>(us),
                            std::memory_order_relaxed);
}

void RollingWindows::RecordShed() {
  Claim(NowSeconds()).shed.fetch_add(1, std::memory_order_relaxed);
}

RollingWindows::Snapshot RollingWindows::Take(uint64_t window_s) const {
  Snapshot snap;
  snap.window_s = window_s;
  if (window_s == 0) return snap;
  const uint64_t now_s = NowSeconds();
  const uint64_t oldest = now_s >= window_s - 1 ? now_s - (window_s - 1) : 0;
  uint64_t buckets[kLatencyBuckets] = {};
  uint64_t lat_sum_us = 0;
  for (uint64_t s = oldest; s <= now_s; ++s) {
    const Slot& slot = slots_[s % kSlots];
    if (slot.second.load(std::memory_order_relaxed) != s) continue;
    snap.requests += slot.requests.load(std::memory_order_relaxed);
    snap.ok += slot.ok.load(std::memory_order_relaxed);
    snap.shed += slot.shed.load(std::memory_order_relaxed);
    snap.cache_hits += slot.cache_hits.load(std::memory_order_relaxed);
    snap.latency_samples += slot.lat_count.load(std::memory_order_relaxed);
    lat_sum_us += slot.lat_sum_us.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kLatencyBuckets; ++i) {
      buckets[i] += slot.lat_buckets[i].load(std::memory_order_relaxed);
    }
  }
  snap.qps =
      static_cast<double>(snap.requests) / static_cast<double>(window_s);
  const uint64_t offered = snap.requests + snap.shed;
  if (offered > 0) {
    snap.shed_ratio =
        static_cast<double>(snap.shed) / static_cast<double>(offered);
  }
  if (snap.requests > 0) {
    snap.hit_ratio = static_cast<double>(snap.cache_hits) /
                     static_cast<double>(snap.requests);
  }
  if (snap.latency_samples > 0) {
    snap.mean_ms = static_cast<double>(lat_sum_us) / 1000.0 /
                   static_cast<double>(snap.latency_samples);
    snap.p50_ms = LatencyQuantileMs(buckets, snap.latency_samples, 0.50);
    snap.p99_ms = LatencyQuantileMs(buckets, snap.latency_samples, 0.99);
  }
  return snap;
}

TelemetryHub::TelemetryHub(const TelemetryConfig& config)
    : config_(config),
      slow_threshold_us_(static_cast<uint64_t>(
          config.slow_min_ms > 0.0 ? config.slow_min_ms * 1000.0 : 0.0)) {
  if (!config_.slow_log_path.empty()) {
    slow_sink_ = std::fopen(config_.slow_log_path.c_str(), "a");
  }
}

TelemetryHub::~TelemetryHub() {
  if (slow_sink_ != nullptr) std::fclose(slow_sink_);
}

size_t TelemetryHub::NextEventCapacity() {
  const uint64_t n =
      decision_counter_.fetch_add(1, std::memory_order_relaxed);
  if (config_.sample_every <= 1 || n % config_.sample_every == 0) {
    return config_.profile_event_capacity;
  }
  return 0;
}

void TelemetryHub::RefreshThreshold() {
  if (config_.slow_factor <= 0.0) return;  // fixed floor only
  const RollingWindows::Snapshot w = windows_.Take(60);
  double threshold_ms = config_.slow_min_ms;
  if (w.latency_samples > 0) {
    threshold_ms = std::max(threshold_ms, config_.slow_factor * w.p99_ms);
  }
  slow_threshold_us_.store(
      static_cast<uint64_t>(threshold_ms > 0.0 ? threshold_ms * 1000.0 : 0.0),
      std::memory_order_relaxed);
}

void TelemetryHub::Retain(std::vector<QueryProfile>* ring, size_t* next,
                          size_t capacity, QueryProfile profile) {
  if (capacity == 0) return;
  if (ring->size() < capacity) {
    ring->push_back(std::move(profile));
    *next = ring->size() % capacity;
  } else {
    (*ring)[*next] = std::move(profile);
    *next = (*next + 1) % capacity;
  }
}

void TelemetryHub::Report(QueryProfile profile, const TraceRecorder* trace) {
  profile.id = completions_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Batch dispatches are background work covering many client requests
  // (each of which reports its own completion): they may be sampled into
  // the reservoir but never feed the per-request windows or the slow
  // classification.
  const bool background = profile.kind == ProfileKind::kBatch;
  if (!background) {
    windows_.RecordRequest(profile.ok, profile.cache_hit, profile.wall_ms);
  }
  if (trace != nullptr) {
    for (size_t i = 0; i < kNumTraceStages; ++i) {
      profile.stage_total_us[i] =
          trace->StageTotalUs(static_cast<TraceStage>(i));
      profile.stage_count[i] = trace->StageCount(static_cast<TraceStage>(i));
    }
    for (size_t i = 0; i < kNumTraceCounters; ++i) {
      profile.counters[i] = trace->counter(static_cast<TraceCounter>(i));
    }
    profile.dropped_events = trace->dropped_events();
    if (trace->event_capacity() > 0) {
      profile.sampled = true;
      profile.events = trace->Events();
    }
  }
  const uint64_t threshold_us =
      slow_threshold_us_.load(std::memory_order_relaxed);
  profile.slow = !background &&
                 profile.wall_ms * 1000.0 >=
                     static_cast<double>(threshold_us) &&
                 threshold_us > 0;
  if (profile.sampled) profiles_sampled_.fetch_add(1, std::memory_order_relaxed);
  if (profile.slow) slow_queries_.fetch_add(1, std::memory_order_relaxed);
  if ((profile.id & kThresholdRefreshMask) == 0) RefreshThreshold();
  if (!profile.sampled && !profile.slow) return;

  std::lock_guard<std::mutex> lock(capture_mu_);
  if (profile.slow) {
    QueryProfile record = profile;
    record.events.clear();  // slow ring keeps the breakdown, not the events
    if (slow_sink_ != nullptr) {
      const std::string line = record.ToJson();
      std::fwrite(line.data(), 1, line.size(), slow_sink_);
      std::fputc('\n', slow_sink_);
      std::fflush(slow_sink_);
    }
    Retain(&slow_ring_, &next_slow_, config_.slow_log_capacity,
           std::move(record));
  }
  if (profile.sampled) {
    Retain(&reservoir_, &next_reservoir_, config_.profile_reservoir,
           std::move(profile));
  }
}

void TelemetryHub::ReportShed() { windows_.RecordShed(); }

std::vector<QueryProfile> TelemetryHub::Profiles() const {
  std::lock_guard<std::mutex> lock(capture_mu_);
  std::vector<QueryProfile> out;
  out.reserve(reservoir_.size());
  const size_t n = reservoir_.size();
  const size_t start = n < config_.profile_reservoir ? 0 : next_reservoir_;
  for (size_t i = 0; i < n; ++i) out.push_back(reservoir_[(start + i) % n]);
  return out;
}

std::vector<QueryProfile> TelemetryHub::SlowQueries() const {
  std::lock_guard<std::mutex> lock(capture_mu_);
  std::vector<QueryProfile> out;
  out.reserve(slow_ring_.size());
  const size_t n = slow_ring_.size();
  const size_t start = n < config_.slow_log_capacity ? 0 : next_slow_;
  for (size_t i = 0; i < n; ++i) out.push_back(slow_ring_[(start + i) % n]);
  return out;
}

TelemetryStats TelemetryHub::stats() const {
  TelemetryStats stats;
  stats.requests_observed = completions_.load(std::memory_order_relaxed);
  stats.profiles_sampled = profiles_sampled_.load(std::memory_order_relaxed);
  stats.slow_queries = slow_queries_.load(std::memory_order_relaxed);
  stats.slow_threshold_ms = slow_threshold_ms();
  std::lock_guard<std::mutex> lock(capture_mu_);
  stats.reservoir_size = reservoir_.size();
  stats.slow_log_size = slow_ring_.size();
  return stats;
}

}  // namespace wsk
