#include "observability/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <thread>

namespace wsk {

namespace {

constexpr const char* kStageNames[kNumTraceStages] = {
    "query",           "initial_rank",  "enumeration",      "candidate_eval",
    "dominator_probe", "rank_query",    "batch",            "leaf_scoring",
    "bound_tightening", "topk",         "explain",          "delta_scan",
    "shard_visit",      "batch.topk",
};

constexpr const char* kCounterNames[kNumTraceCounters] = {
    "candidates_enumerated",
    "candidates_kept",
    "candidates_pruned_early_stop",
    "candidates_pruned_dominator",
    "nodes_seen",
    "nodes_visited",
    "nodes_pruned",
    "leaf_objects_scored",
    "dominator_cache_probes",
    "kernel_invocations",
    "batches",
    "batch_candidates",
    "postings_scanned",
    "cells_visited",
    "delta_objects_scanned",
    "segments_visited",
    "shards_visited",
    "shards_pruned",
    "batch.queries",
    "batch.nodes_expanded",
    "batch.nodes_shared",
};

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

const char* TraceStageName(TraceStage stage) {
  const size_t i = static_cast<size_t>(stage);
  return i < kNumTraceStages ? kStageNames[i] : "unknown";
}

const char* TraceCounterName(TraceCounter counter) {
  const size_t i = static_cast<size_t>(counter);
  return i < kNumTraceCounters ? kCounterNames[i] : "unknown";
}

TraceRecorder::TraceRecorder(size_t event_capacity)
    : epoch_(std::chrono::steady_clock::now()), capacity_(event_capacity) {
  events_.resize(capacity_);
}

uint64_t TraceRecorder::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

uint32_t TraceRecorder::CurrentTid() {
  const size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  // Fold to 31 bits: Chrome readers treat tids as signed ints.
  return static_cast<uint32_t>((h ^ (h >> 32)) & 0x7fffffff);
}

void TraceRecorder::RecordSpan(TraceStage stage, uint64_t start_us,
                               uint64_t end_us) {
  const size_t s = static_cast<size_t>(stage);
  stage_total_us_[s].fetch_add(end_us - start_us, std::memory_order_relaxed);
  stage_count_[s].fetch_add(1, std::memory_order_relaxed);
  if (capacity_ == 0) return;
  const uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& e = events_[slot];
  e.stage = stage;
  e.instant = false;
  e.tid = CurrentTid();
  e.start_us = start_us;
  e.dur_us = end_us - start_us;
}

void TraceRecorder::Annotate(TraceStage stage, std::string detail,
                             int64_t arg) {
  const size_t s = static_cast<size_t>(stage);
  stage_count_[s].fetch_add(1, std::memory_order_relaxed);
  if (capacity_ == 0) return;
  const uint64_t slot = next_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent& e = events_[slot];
  e.stage = stage;
  e.instant = true;
  e.tid = CurrentTid();
  e.start_us = NowUs();
  e.dur_us = 0;
  e.arg = arg;
  e.detail = std::move(detail);
}

size_t TraceRecorder::num_events() const {
  return static_cast<size_t>(
      std::min<uint64_t>(next_.load(std::memory_order_relaxed), capacity_));
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  return {events_.begin(),
          events_.begin() + static_cast<ptrdiff_t>(num_events())};
}

std::string ChromeTraceJsonFromEvents(
    const std::vector<TraceEvent>& events,
    const uint64_t (&counters)[kNumTraceCounters], uint64_t dropped_events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[192];
  bool first = true;
  const size_t n = events.size();
  for (size_t i = 0; i < n; ++i) {
    const TraceEvent& e = events[i];
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"wsk\",\"ph\":\"%s\",\"ts\":%" PRIu64
                  ",\"dur\":%" PRIu64 ",\"pid\":1,\"tid\":%u",
                  TraceStageName(e.stage), e.instant ? "i" : "X", e.start_us,
                  e.dur_us, e.tid);
    out += buf;
    if (e.instant) out += ",\"s\":\"t\"";
    if (e.arg >= 0 || !e.detail.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      if (e.arg >= 0) {
        std::snprintf(buf, sizeof(buf), "\"arg\":%lld",
                      static_cast<long long>(e.arg));
        out += buf;
        first_arg = false;
      }
      if (!e.detail.empty()) {
        if (!first_arg) out += ",";
        out += "\"detail\":\"";
        AppendJsonEscaped(e.detail, &out);
        out += "\"";
      }
      out += "}";
    }
    out += "}";
  }
  // Counters as one trailing instant so the numbers travel with the trace.
  // Stamped at the end of the last stored event (not the export-time
  // clock) so exporting the same recorder twice yields identical bytes.
  uint64_t counters_ts = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t end = events[i].start_us + events[i].dur_us;
    if (end > counters_ts) counters_ts = end;
  }
  if (!first) out += ",";
  out += "{\"name\":\"counters\",\"cat\":\"wsk\",\"ph\":\"i\",\"s\":\"g\","
         "\"ts\":";
  std::snprintf(buf, sizeof(buf), "%" PRIu64, counters_ts);
  out += buf;
  out += ",\"pid\":1,\"tid\":0,\"args\":{";
  for (size_t i = 0; i < kNumTraceCounters; ++i) {
    if (i > 0) out += ",";
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, kCounterNames[i],
                  counters[i]);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), ",\"dropped_events\":%" PRIu64,
                dropped_events);
  out += buf;
  out += "}}]}";
  return out;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  uint64_t counters[kNumTraceCounters];
  for (size_t i = 0; i < kNumTraceCounters; ++i) {
    counters[i] = counters_[i].load(std::memory_order_relaxed);
  }
  return ChromeTraceJsonFromEvents(Events(), counters, dropped_events());
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  const std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output file " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("short write to trace output file " + path);
  }
  return Status::Ok();
}

std::string TraceRecorder::Summary() const {
  std::string out;
  char line[160];
  out += "stage                 spans      total_ms\n";
  for (size_t s = 0; s < kNumTraceStages; ++s) {
    const uint64_t count = stage_count_[s].load(std::memory_order_relaxed);
    if (count == 0) continue;
    std::snprintf(line, sizeof(line), "%-20s %6" PRIu64 "  %12.3f\n",
                  kStageNames[s], count,
                  static_cast<double>(
                      stage_total_us_[s].load(std::memory_order_relaxed)) /
                      1000.0);
    out += line;
  }
  out += "counter                            value\n";
  for (size_t i = 0; i < kNumTraceCounters; ++i) {
    std::snprintf(line, sizeof(line), "%-28s %10" PRIu64 "\n",
                  kCounterNames[i],
                  counters_[i].load(std::memory_order_relaxed));
    out += line;
  }
  if (dropped_events() > 0) {
    std::snprintf(line, sizeof(line), "(%" PRIu64 " events dropped)\n",
                  dropped_events());
    out += line;
  }
  return out;
}

}  // namespace wsk
