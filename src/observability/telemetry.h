// Continuous telemetry: always-on sampled query profiles, slow-query
// capture, and rolling-window metrics (docs/OBSERVABILITY.md "Continuous
// telemetry").
//
// The hub sits beside the per-query TraceRecorder machinery (trace.h) and
// turns individual request completions into an operator-facing stream:
//
//   - Sampled profiling. A lock-light decision picks every Nth executed
//     request (one relaxed fetch_add) to carry an event-capacity
//     TraceRecorder instead of the capacity-0 aggregation recorder every
//     request already gets. Completed profiles land in a fixed-size ring
//     reservoir, queryable via `wsk_cli profiles` and dumpable as Chrome
//     trace-event JSON.
//   - Tail capture. Every completed request compares its execution wall
//     time against a rolling threshold max(slow_min_ms, slow_factor x
//     rolling-60s p99); requests over it are appended to a bounded
//     slow-query ring as structured records (fingerprint, algorithm,
//     per-stage wall breakdown, pruning counters, io disposition) and
//     streamed as JSONL when a sink path is configured — the replayable
//     workload feed the ROADMAP's tuner item asks for.
//   - Rolling windows. A ring of per-second slots aggregates request /
//     shed / cache-hit counts and latency buckets; 1s/10s/60s snapshots
//     export as wsk_window_* gauges and drive `wsk_cli statsz --top`.
//
// Thread safety: Report()/ReportShed()/NextEventCapacity() are safe for
// concurrent callers and wait-free except when a capture fires (reservoir
// and slow-log appends take a mutex; at sampled/tail rates that is rare by
// construction). Readers (Profiles(), SlowQueries(), Window()) may run
// concurrently with writers and see a mildly stale snapshot.
#ifndef WSK_OBSERVABILITY_TELEMETRY_H_
#define WSK_OBSERVABILITY_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "observability/histogram.h"
#include "observability/trace.h"

namespace wsk {

struct TelemetryConfig {
  // Master switch: disabled constructs no hub and every instrumentation
  // site reduces to a null-pointer test.
  bool enabled = true;
  // Every Nth executed request carries a full event-profile recorder
  // (0 or 1 = profile every request; useful for tests and `wsk_cli
  // profiles`).
  uint64_t sample_every = 1024;
  // Event capacity of a sampled request's recorder.
  size_t profile_event_capacity = 4096;
  // Completed sampled/slow profiles retained (ring of the most recent).
  size_t profile_reservoir = 32;
  // Slow-query records retained in memory (ring of the most recent).
  size_t slow_log_capacity = 256;
  // A request is slow when its execution wall time reaches
  // max(slow_min_ms, slow_factor * rolling-60s p99). slow_factor <= 0
  // disables the p99 term (the floor alone decides).
  double slow_factor = 2.0;
  double slow_min_ms = 50.0;
  // When non-empty, every slow-query record is appended to this file as
  // one JSON line at capture time (JSONL stream for offline replay).
  std::string slow_log_path;
};

// What kind of work a profile describes.
enum class ProfileKind : uint8_t { kTopK, kWhyNot, kBatch };
const char* ProfileKindName(ProfileKind kind);

// One completed request's telemetry snapshot: metadata plus the counters,
// stage totals, and (for sampled requests) the event buffer of its
// TraceRecorder. Used both as the reservoir entry and as the slow-query
// record; the slow-query JSONL serialization omits the events.
struct QueryProfile {
  uint64_t id = 0;  // hub-assigned completion ordinal
  ProfileKind kind = ProfileKind::kTopK;
  std::string algorithm;    // "topk", "bs", "advanced", "kcr", "batch"
  uint64_t fingerprint = 0;  // hash of the cache key; 0 = bypass/none
  std::string status;        // terminal status code name
  bool ok = false;
  bool cache_hit = false;
  bool sampled = false;  // carried an event-capacity recorder
  bool slow = false;     // exceeded the rolling slow threshold
  double wall_ms = 0.0;   // execution wall (around the backend call)
  double queue_ms = 0.0;  // admission -> execution start
  // Request-attributed I/O deltas (approximate under concurrency, exactly
  // as the io.* registry counters are).
  uint64_t io_physical = 0;
  uint64_t io_mapped = 0;
  uint64_t io_cache_hits = 0;
  // Copied from the request's recorder.
  uint64_t stage_total_us[kNumTraceStages] = {};
  uint64_t stage_count[kNumTraceStages] = {};
  uint64_t counters[kNumTraceCounters] = {};
  uint64_t dropped_events = 0;
  std::vector<TraceEvent> events;  // empty for aggregation-only recorders

  // Sum of all stage wall totals in milliseconds. Nested spans overlap
  // their parents, so this is >= the root span's coverage of wall_ms.
  double StageSumMs() const;
  // One structured JSON object (single line, no trailing newline):
  // metadata, non-zero stages, non-zero counters, io. The slow-query
  // JSONL format.
  std::string ToJson() const;
  // Chrome trace-event JSON of the stored events (sampled profiles).
  std::string ToChromeTraceJson() const;
  // One human-readable line for `wsk_cli profiles` listings.
  std::string Summary() const;
};

// Sliding per-second aggregation. 64 slots cover the 60 s window with
// headroom; a writer landing on a slot tagged with a stale second CASes
// the tag forward and zeroes the slot. Readers sum only slots whose tag
// falls inside the requested window, so an idle second contributes
// nothing. Counts may be mildly inconsistent around a slot reset (a racing
// writer's increment can land mid-zeroing) — the same tolerance every
// relaxed-atomic metric in the system already has.
class RollingWindows {
 public:
  static constexpr size_t kSlots = 64;

  struct Snapshot {
    uint64_t window_s = 0;
    uint64_t requests = 0;
    uint64_t ok = 0;
    uint64_t shed = 0;
    uint64_t cache_hits = 0;
    double qps = 0.0;
    double shed_ratio = 0.0;   // shed / (requests + shed)
    double hit_ratio = 0.0;    // cache_hits / requests
    uint64_t latency_samples = 0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
  };

  RollingWindows();

  // One completed request (not shed). `wall_ms` feeds the window latency
  // quantiles.
  void RecordRequest(bool ok, bool cache_hit, double wall_ms);
  // One admission rejection.
  void RecordShed();

  // Aggregate over the last `window_s` seconds (<= kSlots - 2; 1, 10 and
  // 60 are the exported windows).
  Snapshot Take(uint64_t window_s) const;

 private:
  struct Slot {
    std::atomic<uint64_t> second{UINT64_MAX};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> ok{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> lat_count{0};
    std::atomic<uint64_t> lat_sum_us{0};
    std::atomic<uint64_t> lat_buckets[kLatencyBuckets] = {};
  };

  uint64_t NowSeconds() const;
  // Claims the slot for the current second (resetting it if stale) and
  // returns it.
  Slot& Claim(uint64_t now_s);

  const std::chrono::steady_clock::time_point epoch_;
  Slot slots_[kSlots];
};

// Point-in-time summary of the hub for reports.
struct TelemetryStats {
  uint64_t requests_observed = 0;
  uint64_t profiles_sampled = 0;
  uint64_t slow_queries = 0;
  size_t reservoir_size = 0;
  size_t slow_log_size = 0;
  double slow_threshold_ms = 0.0;
};

// Process-level gauges accompanying wsk_build_info in the Prometheus
// exposition: seconds since process start (a static-initialization epoch)
// and resident set size in bytes (/proc/self/statm; 0 where unavailable).
double ProcessUptimeSeconds();
uint64_t ProcessResidentBytes();

class TelemetryHub {
 public:
  explicit TelemetryHub(const TelemetryConfig& config);
  ~TelemetryHub();

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  const TelemetryConfig& config() const { return config_; }

  // Sampling decision for one request about to execute: the event
  // capacity its TraceRecorder should be built with — the configured
  // profile capacity for every sample_every'th call, 0 (aggregation-only)
  // otherwise. One relaxed fetch_add.
  size_t NextEventCapacity();

  // Completion report. `profile` carries the request metadata (wall,
  // status, fingerprint, io); `trace` is the request's quiescent recorder
  // or nullptr (cache hits, windows-only paths). The hub fills the
  // recorder-derived fields, updates the windows, retains the profile when
  // it was sampled or lands over the slow threshold, and appends slow
  // records to the JSONL sink.
  void Report(QueryProfile profile, const TraceRecorder* trace);
  // Admission rejection (windows only).
  void ReportShed();

  RollingWindows::Snapshot Window(uint64_t window_s) const {
    return windows_.Take(window_s);
  }
  // Current slow-capture threshold in milliseconds.
  double slow_threshold_ms() const {
    return slow_threshold_us_.load(std::memory_order_relaxed) / 1000.0;
  }

  // Most recent retained profiles, oldest first (copies; events included).
  std::vector<QueryProfile> Profiles() const;
  // Most recent slow-query records, oldest first (events omitted).
  std::vector<QueryProfile> SlowQueries() const;
  TelemetryStats stats() const;

 private:
  // Recomputes the slow threshold from the rolling 60 s p99; called every
  // kThresholdRefreshMask+1 completions.
  void RefreshThreshold();
  void Retain(std::vector<QueryProfile>* ring, size_t* next, size_t capacity,
              QueryProfile profile);

  static constexpr uint64_t kThresholdRefreshMask = 255;

  const TelemetryConfig config_;
  RollingWindows windows_;
  std::atomic<uint64_t> decision_counter_{0};
  std::atomic<uint64_t> completions_{0};
  std::atomic<uint64_t> profiles_sampled_{0};
  std::atomic<uint64_t> slow_queries_{0};
  std::atomic<uint64_t> slow_threshold_us_;

  mutable std::mutex capture_mu_;  // reservoir, slow ring, sink
  std::vector<QueryProfile> reservoir_;   // ring, next_reservoir_ is oldest
  size_t next_reservoir_ = 0;
  std::vector<QueryProfile> slow_ring_;   // ring, next_slow_ is oldest
  size_t next_slow_ = 0;
  std::FILE* slow_sink_ = nullptr;
};

}  // namespace wsk

#endif  // WSK_OBSERVABILITY_TELEMETRY_H_
