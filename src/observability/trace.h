// Per-query tracing: wall-time spans and pruning-effectiveness counters
// for the why-not algorithms and the top-k traversals beneath them.
//
// Design constraints (docs/OBSERVABILITY.md):
//   - Disabled is free. Every instrumentation site receives a
//     `TraceRecorder*` that is nullptr by default; TraceSpan then reads no
//     clock and touches no memory beyond the pointer test, and counter
//     flushes are skipped entirely. The CI trace-overhead gate holds the
//     disabled path to the bench baseline.
//   - Enabled is cheap and thread-safe. Counters are relaxed atomics;
//     spans append to a bounded, pre-allocated event buffer through a
//     relaxed fetch_add index. When the buffer fills, further events are
//     dropped (and counted) instead of wrapping — a dropped tail is easier
//     to reason about in a profile than interleaved overwrites, and it
//     keeps writers free of any writer/writer coordination.
//   - Aggregation works without events. Per-stage wall-time totals and
//     span counts are tracked in atomics independent of the event buffer,
//     so a recorder built with event_capacity = 0 (QueryService's
//     aggregation mode) costs two fetch_adds per span and nothing else.
//
// Readers (Events(), exporters) expect a quiescent recorder — export after
// the traced query returns, not concurrently with it.
#ifndef WSK_OBSERVABILITY_TRACE_H_
#define WSK_OBSERVABILITY_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace wsk {

// Span taxonomy. One enum value per algorithm stage; the glossary in
// docs/OBSERVABILITY.md maps each to the paper's pseudocode.
enum class TraceStage : uint8_t {
  kQuery = 0,        // root span: one whole why-not / top-k invocation
  kInitialRank,      // R(M, q) under the original query (Alg. 2/4 line 1)
  kEnumeration,      // candidate enumeration + Opt2 ordering
  kCandidateEval,    // one BS/AdvancedBS candidate, end to end
  kDominatorProbe,   // Opt3 cached-dominator re-scoring for one candidate
  kRankQuery,        // one rank traversal (Eqn 3, bounded per Eqn 6)
  kBatch,            // one KcR Algorithm 3 batch traversal
  kLeafScoring,      // exact scoring of a KcR leaf against the batch
  kBoundTightening,  // KcR child MaxDom/MinDom bounds + reassessment
  kTopK,             // stand-alone top-k traversal (service / CLI)
  kExplain,          // ExplainMiss annotation scope
  kDeltaScan,        // linear scan of in-memory delta segments (live path)
  kShardVisit,       // one shard's top-k under the scatter-gather fan-out
  kBatchTopK,        // one multi-query shared traversal (docs/BATCHING.md)
};
inline constexpr size_t kNumTraceStages = 14;
const char* TraceStageName(TraceStage stage);

// Pruning-effectiveness counters. The candidate family satisfies
//   enumerated = kept + pruned_early_stop + pruned_dominator
// and the node family satisfies
//   nodes_seen = nodes_visited + nodes_pruned
// whenever a query runs to completion (asserted by tests/trace_e2e_test).
enum class TraceCounter : uint8_t {
  kCandidatesEnumerated = 0,  // candidate sets produced by the enumerator
  kCandidatesKept,            // evaluated to a rank / converged bounds
  kCandidatesPrunedEarlyStop,  // Eqn 6 bound, order stop, KcR bound prune
  kCandidatesPrunedDominator,  // Opt3 dominator-cache filtering
  kNodesSeen,          // index nodes considered (enqueued or bounded)
  kNodesVisited,       // index nodes expanded (one page/cache access each)
  kNodesPruned,        // seen but never expanded (bound or termination)
  kLeafObjectsScored,  // objects exactly scored during traversals
  kDominatorCacheProbes,  // cached dominators re-scored by Opt3
  kKernelInvocations,     // bitmask-kernel scoring calls (docs/PERF.md)
  kBatches,               // KcR Algorithm 3 traversals run
  kBatchCandidates,       // candidates entering those traversals
  kPostingsScanned,       // inverted-grid posting lists decoded
  kCellsVisited,          // inverted-grid cells swept spatially
  kDeltaObjectsScanned,   // delta-segment objects scored by a live query
  kSegmentsVisited,       // segments consulted by a live query
  kShardsVisited,         // shards whose top-k actually ran (scatter-gather)
  kShardsPruned,          // shards skipped by the cross-shard MaxScore bound
  kBatchQueries,          // queries answered by a shared batched traversal
  kBatchNodesExpanded,    // physical node expansions a batched walk performed
  kBatchNodesShared,      // per-query node openings served by those
                          // expansions beyond the first (amortized accesses)
};
inline constexpr size_t kNumTraceCounters = 21;
const char* TraceCounterName(TraceCounter counter);

struct TraceEvent {
  TraceStage stage = TraceStage::kQuery;
  bool instant = false;  // annotation rather than a duration span
  uint32_t tid = 0;      // stable hash of the recording thread's id
  uint64_t start_us = 0;  // microseconds since the recorder's epoch
  uint64_t dur_us = 0;    // 0 for instants
  int64_t arg = -1;       // optional numeric payload (object id, count, …)
  std::string detail;     // optional annotation text
};

// Chrome trace-event JSON ({"traceEvents": [...]}) over an event list plus
// the counter table (appended as one trailing instant event, stamped at the
// end of the last stored event so identical inputs serialize to identical
// bytes). Shared by TraceRecorder::ToChromeTraceJson and the telemetry
// layer's retained QueryProfile exports.
std::string ChromeTraceJsonFromEvents(const std::vector<TraceEvent>& events,
                                      const uint64_t (&counters)[kNumTraceCounters],
                                      uint64_t dropped_events);

class TraceRecorder {
 public:
  static constexpr size_t kDefaultEventCapacity = 1 << 14;

  // `event_capacity` bounds the stored events; 0 keeps only counters and
  // per-stage totals (the cheapest aggregation-only mode).
  explicit TraceRecorder(size_t event_capacity = kDefaultEventCapacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // --- write side (thread-safe, wait-free) ---

  void Add(TraceCounter counter, uint64_t delta = 1) {
    counters_[static_cast<size_t>(counter)].fetch_add(
        delta, std::memory_order_relaxed);
  }

  // Microseconds since the recorder's construction.
  uint64_t NowUs() const;

  // Records a completed span; normally called by ~TraceSpan.
  void RecordSpan(TraceStage stage, uint64_t start_us, uint64_t end_us);

  // Records an instant annotation event (e.g. one ExplainMiss verdict).
  void Annotate(TraceStage stage, std::string detail, int64_t arg = -1);

  // --- read side (quiescent recorder only) ---

  uint64_t counter(TraceCounter counter) const {
    return counters_[static_cast<size_t>(counter)].load(
        std::memory_order_relaxed);
  }
  uint64_t StageTotalUs(TraceStage stage) const {
    return stage_total_us_[static_cast<size_t>(stage)].load(
        std::memory_order_relaxed);
  }
  uint64_t StageCount(TraceStage stage) const {
    return stage_count_[static_cast<size_t>(stage)].load(
        std::memory_order_relaxed);
  }

  size_t event_capacity() const { return capacity_; }
  size_t num_events() const;
  uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  // Stored events in recording order.
  std::vector<TraceEvent> Events() const;

  // Chrome trace-event JSON ({"traceEvents": [...]}), loadable in Perfetto
  // or chrome://tracing. Counters ride along as one final instant event.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  // Human-readable stage/counter table for CLI output.
  std::string Summary() const;

 private:
  static uint32_t CurrentTid();

  const std::chrono::steady_clock::time_point epoch_;
  const size_t capacity_;
  std::vector<TraceEvent> events_;  // pre-allocated slots [0, capacity_)
  std::atomic<uint64_t> next_{0};   // next free slot (may overshoot)
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> counters_[kNumTraceCounters] = {};
  std::atomic<uint64_t> stage_total_us_[kNumTraceStages] = {};
  std::atomic<uint64_t> stage_count_[kNumTraceStages] = {};
};

// RAII scope for one stage. With a null recorder the constructor and
// destructor reduce to a pointer test — no clock read, no stores.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, TraceStage stage)
      : recorder_(recorder), stage_(stage) {
    if (recorder_ != nullptr) start_us_ = recorder_->NowUs();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->RecordSpan(stage_, start_us_, recorder_->NowUs());
    }
  }

 private:
  TraceRecorder* recorder_;
  TraceStage stage_;
  uint64_t start_us_ = 0;
};

}  // namespace wsk

#endif  // WSK_OBSERVABILITY_TRACE_H_
