// Fixed-size-page file storage.
//
// Pager owns one file divided into pages of `page_size` bytes (4 KiB by
// default, matching the paper's setup). Pages are append-allocated;
// AllocatePages(n) hands out n *consecutive* page ids, which the blob store
// and the tree node format rely on for multi-page records. All physical
// reads and writes are counted in IoStats.
#ifndef WSK_STORAGE_PAGER_H_
#define WSK_STORAGE_PAGER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "storage/io_stats.h"

namespace wsk {

using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = 0xffffffffu;
inline constexpr uint32_t kDefaultPageSize = 4096;

// Thread-safe paged file. Create() truncates/creates the backing file; Open()
// re-opens an existing one (page count is inferred from the file size).
class Pager {
 public:
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  static StatusOr<std::unique_ptr<Pager>> Create(const std::string& path,
                                                 uint32_t page_size =
                                                     kDefaultPageSize);
  static StatusOr<std::unique_ptr<Pager>> Open(const std::string& path,
                                               uint32_t page_size =
                                                   kDefaultPageSize);

  // Reserves `count` fresh consecutive pages and returns the first id. The
  // pages hold unspecified bytes until written.
  PageId AllocatePages(uint32_t count);

  // Reads/writes exactly one page. `buffer` must hold page_size() bytes.
  Status ReadPage(PageId id, uint8_t* buffer);
  Status WritePage(PageId id, const uint8_t* buffer);

  // Switches the pager into mapped read mode: the file is extended to
  // num_pages() * page_size() bytes (allocated-but-unwritten tail pages
  // read as zeros, matching ReadPage) and mapped read-only, with madvise
  // hints for random node access. After this succeeds, MappedSpan() serves
  // borrowed zero-copy views straight from the OS page cache and WritePage
  // is rejected — the file is frozen. Fails with FailedPrecondition when
  // the file is empty or the platform has no mmap; callers fall back to the
  // buffered pread path (ReadPage through the buffer pool), which stays
  // fully supported.
  Status EnableMappedReads();

  // True once EnableMappedReads() succeeded.
  bool mapped() const {
    return map_.load(std::memory_order_acquire) != nullptr;
  }

  // A borrowed pointer to `length` contiguous bytes starting at page
  // `first` of the mapping, valid for the pager's lifetime. Counts one
  // mapped read per page spanned when `record` is true (a header peek
  // passes false so a node read is counted exactly once). Fails with
  // FailedPrecondition when not mapped, OutOfRange past the mapping.
  StatusOr<const uint8_t*> MappedSpan(PageId first, uint64_t length,
                                      bool record = true);

  uint32_t page_size() const { return page_size_; }
  PageId num_pages() const;

  IoStats& io_stats() { return io_stats_; }
  const IoStats& io_stats() const { return io_stats_; }

  // Test hook: when set, every physical read first consults the hook and
  // fails with the returned non-OK status (fault injection).
  void set_read_fault_hook(std::function<Status(PageId)> hook) {
    std::lock_guard<std::mutex> lock(mu_);
    read_fault_hook_ = std::move(hook);
  }

 private:
  Pager(std::FILE* file, uint32_t page_size, PageId num_pages);

  mutable std::mutex mu_;
  std::FILE* file_;
  const uint32_t page_size_;
  PageId num_pages_;
  std::function<Status(PageId)> read_fault_hook_;
  IoStats io_stats_;
  // Read-only mapping; set once under mu_ (release) and read lock-free
  // (acquire) on the query hot path. map_bytes_ is published before map_.
  std::atomic<const uint8_t*> map_{nullptr};
  uint64_t map_bytes_ = 0;
};

}  // namespace wsk

#endif  // WSK_STORAGE_PAGER_H_
