#include "storage/node_codec_v2.h"

namespace wsk {
namespace {

// Header field offsets within the 16-byte v2 header.
constexpr size_t kOffVersion = 0;
constexpr size_t kOffKind = 1;
constexpr size_t kOffCount = 2;
constexpr size_t kOffBodyBytes = 4;
constexpr size_t kOffChecksum = 8;
constexpr size_t kOffReserved = 12;

void PutU16Le(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

void PutU32Le(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

uint16_t GetU16Le(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32Le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

Status CorruptNode(PageId page, const std::string& what) {
  return Status::Corruption("v2 node at page " + std::to_string(page) +
                            ": " + what);
}

// Parses and validates the 16-byte header at `p`. On success fills the
// record's header fields (body still unset).
Status ParseHeader(PageId page, const uint8_t* p, uint32_t page_size,
                   PageId num_pages, bool* is_leaf, uint32_t* count,
                   uint32_t* body_bytes, uint32_t* pages) {
  if (p[kOffVersion] != kNodeFormatV2) {
    return CorruptNode(page, "bad version byte " +
                                 std::to_string(p[kOffVersion]));
  }
  const uint8_t kind = p[kOffKind];
  if (kind > 1) {
    return CorruptNode(page, "bad kind byte " + std::to_string(kind));
  }
  *is_leaf = (kind == 0);
  *count = GetU16Le(p + kOffCount);
  *body_bytes = GetU32Le(p + kOffBodyBytes);
  const uint64_t total = kNodeHeaderBytesV2 + static_cast<uint64_t>(
                                                  *body_bytes);
  const uint64_t span = (total + page_size - 1) / page_size;
  if (static_cast<uint64_t>(page) + span > num_pages) {
    return CorruptNode(page, "record extends past end of file");
  }
  *pages = static_cast<uint32_t>(span);
  return Status::Ok();
}

}  // namespace

void PutVarint(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

void PutDeltaU32s(std::vector<uint8_t>* out, const uint32_t* ids,
                  size_t count) {
  uint32_t prev = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i == 0) {
      PutVarint(out, ids[0]);
    } else {
      WSK_CHECK(ids[i] > prev);  // encoder input must be strictly ascending
      PutVarint(out, ids[i] - prev);
    }
    prev = ids[i];
  }
}

uint32_t Fnv1a32(const uint8_t* data, size_t size) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

bool CheckedReader::GetU8(uint8_t* out) {
  if (!ok_ || data_ == end_) return Fail();
  *out = *data_++;
  return true;
}

bool CheckedReader::GetVarint(uint64_t* out) {
  if (!ok_) return false;
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (data_ == end_) return Fail();
    const uint8_t byte = *data_++;
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical padding bytes past the top of u64.
      if (shift == 63 && byte > 1) return Fail();
      *out = value;
      return true;
    }
  }
  return Fail();  // more than 10 continuation bytes
}

bool CheckedReader::GetVarint32(uint32_t* out) {
  uint64_t wide = 0;
  if (!GetVarint(&wide)) return false;
  if (wide > 0xffffffffull) return Fail();
  *out = static_cast<uint32_t>(wide);
  return true;
}

bool CheckedReader::GetDouble(double* out) {
  if (!ok_ || remaining() < sizeof(double)) return Fail();
  std::memcpy(out, data_, sizeof(double));
  data_ += sizeof(double);
  return true;
}

bool CheckedReader::GetRect(Rect* out) {
  return GetDouble(&out->min_x) && GetDouble(&out->min_y) &&
         GetDouble(&out->max_x) && GetDouble(&out->max_y);
}

bool CheckedReader::GetBytes(const uint8_t** out, size_t size) {
  if (!ok_ || remaining() < size) return Fail();
  *out = data_;
  data_ += size;
  return true;
}

bool CheckedReader::GetDeltaU32s(size_t count, std::vector<uint32_t>* out) {
  uint64_t value = 0;
  for (size_t i = 0; i < count; ++i) {
    uint64_t step = 0;
    if (!GetVarint(&step)) return false;
    if (i == 0) {
      value = step;
    } else {
      if (step == 0) return Fail();  // ids must be strictly ascending
      value += step;
    }
    if (value > 0xffffffffull) return Fail();
    out->push_back(static_cast<uint32_t>(value));
  }
  return true;
}

Status EncodeNodeRecordV2(bool is_leaf, uint32_t count,
                          const std::vector<uint8_t>& body,
                          uint32_t page_size, std::vector<uint8_t>* out) {
  if (count > kMaxNodeCountV2) {
    return Status::InvalidArgument("v2 node count exceeds u16");
  }
  const uint64_t total = kNodeHeaderBytesV2 + body.size();
  const uint64_t padded =
      (total + page_size - 1) / page_size * page_size;
  out->assign(padded, 0);
  uint8_t* h = out->data();
  h[kOffVersion] = kNodeFormatV2;
  h[kOffKind] = is_leaf ? 0 : 1;
  PutU16Le(h + kOffCount, static_cast<uint16_t>(count));
  PutU32Le(h + kOffBodyBytes, static_cast<uint32_t>(body.size()));
  PutU32Le(h + kOffChecksum, Fnv1a32(body.data(), body.size()));
  PutU32Le(h + kOffReserved, 0);
  std::memcpy(out->data() + kNodeHeaderBytesV2, body.data(), body.size());
  return Status::Ok();
}

StatusOr<PageId> AppendNodeRecordV2(BufferPool* pool, bool is_leaf,
                                    uint32_t count,
                                    const std::vector<uint8_t>& body) {
  const uint32_t page_size = pool->pager()->page_size();
  std::vector<uint8_t> record;
  WSK_RETURN_IF_ERROR(
      EncodeNodeRecordV2(is_leaf, count, body, page_size, &record));
  const uint32_t pages = static_cast<uint32_t>(record.size() / page_size);
  const PageId first = pool->pager()->AllocatePages(pages);
  for (uint32_t i = 0; i < pages; ++i) {
    auto handle = pool->Fetch(first + i);
    WSK_RETURN_IF_ERROR(handle.status());
    std::memcpy(handle.value().data(),
                record.data() + static_cast<size_t>(i) * page_size,
                page_size);
    handle.value().MarkDirty();
  }
  return first;
}

StatusOr<NodeRecordV2> ReadNodeRecordV2(BufferPool* pool, PageId page,
                                        ChecksumLedger* ledger) {
  Pager* pager = pool->pager();
  const uint32_t page_size = pager->page_size();
  const PageId num_pages = pager->num_pages();
  if (page >= num_pages) {
    return CorruptNode(page, "page id past end of file");
  }
  NodeRecordV2 rec;

  if (pager->mapped()) {
    // Peek the header without recording a read, then take the full span —
    // the record is counted exactly once, per page spanned.
    auto head = pager->MappedSpan(page, kNodeHeaderBytesV2,
                                  /*record=*/false);
    WSK_RETURN_IF_ERROR(head.status());
    WSK_RETURN_IF_ERROR(ParseHeader(page, head.value(), page_size,
                                    num_pages, &rec.is_leaf_, &rec.count_,
                                    &rec.body_bytes_, &rec.pages_));
    auto span = pager->MappedSpan(
        page, static_cast<uint64_t>(rec.pages_) * page_size);
    WSK_RETURN_IF_ERROR(span.status());
    rec.body_ = span.value() + kNodeHeaderBytesV2;
    rec.mapped_ = true;
  } else {
    auto first = pool->Fetch(page);
    WSK_RETURN_IF_ERROR(first.status());
    WSK_RETURN_IF_ERROR(ParseHeader(page, first.value().data(), page_size,
                                    num_pages, &rec.is_leaf_, &rec.count_,
                                    &rec.body_bytes_, &rec.pages_));
    if (rec.pages_ == 1) {
      rec.body_ = first.value().data() + kNodeHeaderBytesV2;
      rec.pin_ = std::move(first.value());
      rec.body_ = rec.pin_.data() + kNodeHeaderBytesV2;
    } else {
      // Multi-page record: gather into an owned scratch buffer.
      rec.scratch_.resize(static_cast<size_t>(rec.pages_) * page_size);
      std::memcpy(rec.scratch_.data(), first.value().data(), page_size);
      first.value().Release();
      for (uint32_t i = 1; i < rec.pages_; ++i) {
        auto handle = pool->Fetch(page + i);
        WSK_RETURN_IF_ERROR(handle.status());
        std::memcpy(rec.scratch_.data() +
                        static_cast<size_t>(i) * page_size,
                    handle.value().data(), page_size);
      }
      rec.body_ = rec.scratch_.data() + kNodeHeaderBytesV2;
    }
  }

  if (ledger == nullptr || !ledger->Verified(page)) {
    const uint32_t sum = Fnv1a32(rec.body_, rec.body_bytes_);
    const uint8_t* header = rec.body_ - kNodeHeaderBytesV2;
    if (sum != GetU32Le(header + kOffChecksum)) {
      return CorruptNode(page, "body checksum mismatch");
    }
    if (ledger != nullptr) ledger->MarkVerified(page, num_pages);
  }
  return rec;
}

}  // namespace wsk
