// Shared decoded-node cache (docs/STORAGE.md "Node cache").
//
// The trees are immutable after bulk load (the read-path contract the
// service layer documents), so a node decoded once can be shared by every
// concurrent query instead of being re-read from the BufferPool and
// re-materialized per visit. NodeCache is a sharded, byte-budgeted LRU
// keyed by (tree-id, PageId); values are type-erased `shared_ptr<const
// void>` so each index caches its own decoded representation (KcrTree /
// SetRTree decoded nodes, inverted-grid posting lists) without the storage
// layer knowing their shapes. A hit hands out a shared_ptr copy, so an
// entry evicted mid-query stays alive until the last reader drops it.
//
// Thread safety: all methods are safe for concurrent callers; each shard
// serializes on its own mutex, and eviction never runs payload destructors
// under the shard lock.
//
// Immutability checking: Insert may register a fingerprint function. When
// verification is enabled (default in debug builds; tests can force it via
// set_verify_fingerprints), every Lookup recomputes the fingerprint and
// aborts if the cached payload changed since insertion — no cached node may
// ever be mutated.
#ifndef WSK_STORAGE_NODE_CACHE_H_
#define WSK_STORAGE_NODE_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace wsk {

// FNV-1a accumulator used by fingerprint functions to digest the primary
// payload of a cached value. Cheap, order-sensitive, and good enough to
// catch accidental in-place mutation.
class FingerprintHasher {
 public:
  void Mix(const void* data, size_t size) {
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 1099511628211ull;
    }
  }
  void MixU64(uint64_t value) { Mix(&value, sizeof(value)); }
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ull;
};

class NodeCache {
 public:
  // Recomputes a digest of the cached payload; must be a pure function of
  // the value's logical contents.
  using Fingerprint = uint64_t (*)(const void*);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;       // capacity evictions only
    uint64_t bytes_inserted = 0;  // cumulative charge of all inserts
    size_t bytes_in_use = 0;      // current resident charge (gauge)
    size_t entries = 0;           // current resident entries (gauge)
    size_t capacity_bytes = 0;
  };

  // `capacity_bytes` is split statically across `num_shards` (same scheme
  // as BufferPool). A capacity of 0 disables insertion: every Lookup
  // misses and every Insert is rejected.
  explicit NodeCache(size_t capacity_bytes, size_t num_shards = 8);

  NodeCache(const NodeCache&) = delete;
  NodeCache& operator=(const NodeCache&) = delete;

  // Returns the cached value or nullptr, promoting the entry to MRU.
  std::shared_ptr<const void> Lookup(uint32_t tree_id, uint32_t key);

  template <typename T>
  std::shared_ptr<const T> LookupAs(uint32_t tree_id, uint32_t key) {
    return std::static_pointer_cast<const T>(Lookup(tree_id, key));
  }

  // Inserts `value` with the given byte charge, evicting LRU entries of
  // the same shard until the shard budget holds. Returns false (and caches
  // nothing) when the charge alone exceeds the shard budget, so one
  // oversized node cannot flush a whole shard. Re-inserting a resident key
  // keeps the existing entry (concurrent decoders race benignly: both
  // materialized identical payloads).
  bool Insert(uint32_t tree_id, uint32_t key,
              std::shared_ptr<const void> value, size_t charge,
              Fingerprint fingerprint = nullptr);

  // Drops one key / every key of one tree / everything. Outstanding
  // shared_ptrs held by readers stay valid.
  void Erase(uint32_t tree_id, uint32_t key);
  void EraseTree(uint32_t tree_id);
  void Clear();

  Stats GetStats() const;

  size_t capacity_bytes() const { return capacity_bytes_; }

  void set_verify_fingerprints(bool on) {
    verify_fingerprints_.store(on, std::memory_order_relaxed);
  }
  bool verify_fingerprints() const {
    return verify_fingerprints_.load(std::memory_order_relaxed);
  }

  // Process-wide unique id generator so every tree (and every posting-list
  // namespace) attached to a shared cache gets a disjoint key space.
  static uint32_t NextTreeId();

 private:
  struct Entry {
    uint64_t key = 0;
    std::shared_ptr<const void> value;
    size_t charge = 0;
    Fingerprint fingerprint = nullptr;
    uint64_t fingerprint_value = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    size_t bytes = 0;
  };

  static uint64_t MakeKey(uint32_t tree_id, uint32_t key) {
    return (static_cast<uint64_t>(tree_id) << 32) | key;
  }
  Shard& ShardFor(uint64_t key) {
    // Mix tree id and page so consecutive pages of one tree spread out.
    uint64_t h = key * 0x9e3779b97f4a7c15ull;
    return *shards_[(h >> 32) % num_shards_];
  }

  const size_t capacity_bytes_;
  const size_t num_shards_;
  const size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> bytes_inserted_{0};
  std::atomic<bool> verify_fingerprints_;
};

}  // namespace wsk

#endif  // WSK_STORAGE_NODE_CACHE_H_
