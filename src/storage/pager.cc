#include "storage/pager.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define WSK_HAVE_MMAP 1
#else
#define WSK_HAVE_MMAP 0
#endif

namespace wsk {

Pager::Pager(std::FILE* file, uint32_t page_size, PageId num_pages)
    : file_(file), page_size_(page_size), num_pages_(num_pages) {}

Pager::~Pager() {
#if WSK_HAVE_MMAP
  const uint8_t* map = map_.load(std::memory_order_acquire);
  if (map != nullptr) {
    ::munmap(const_cast<uint8_t*>(map), map_bytes_);
  }
#endif
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<Pager>> Pager::Create(const std::string& path,
                                               uint32_t page_size) {
  if (page_size < 64) {
    return Status::InvalidArgument("page size too small");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IoError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<Pager>(new Pager(f, page_size, 0));
}

StatusOr<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                             uint32_t page_size) {
  if (page_size < 64) {
    return Status::InvalidArgument("page size too small");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError("cannot seek " + path);
  }
  const long size = std::ftell(f);
  if (size < 0 || static_cast<uint64_t>(size) % page_size != 0) {
    std::fclose(f);
    return Status::Corruption(path + ": size is not a multiple of page size");
  }
  const PageId pages = static_cast<PageId>(
      static_cast<uint64_t>(size) / page_size);
  return std::unique_ptr<Pager>(new Pager(f, page_size, pages));
}

PageId Pager::AllocatePages(uint32_t count) {
  WSK_CHECK(count > 0);
  std::lock_guard<std::mutex> lock(mu_);
  const PageId first = num_pages_;
  num_pages_ += count;
  return first;
}

PageId Pager::num_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_pages_;
}

Status Pager::ReadPage(PageId id, uint8_t* buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= num_pages_) {
    return Status::OutOfRange("read past end of pager file");
  }
  if (read_fault_hook_) {
    WSK_RETURN_IF_ERROR(read_fault_hook_(id));
  }
  io_stats_.RecordPhysicalRead();
  const uint64_t offset = static_cast<uint64_t>(id) * page_size_;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  const size_t got = std::fread(buffer, 1, page_size_, file_);
  if (got < page_size_) {
    // Pages allocated but never written read back as zeros.
    if (std::feof(file_)) {
      std::memset(buffer + got, 0, page_size_ - got);
      std::clearerr(file_);
      return Status::Ok();
    }
    return Status::IoError("short read");
  }
  return Status::Ok();
}

Status Pager::EnableMappedReads() {
#if WSK_HAVE_MMAP
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.load(std::memory_order_relaxed) != nullptr) {
    return Status::Ok();
  }
  if (num_pages_ == 0) {
    return Status::FailedPrecondition("cannot map an empty pager file");
  }
  const uint64_t bytes = static_cast<uint64_t>(num_pages_) * page_size_;
  // Flush buffered writes, then extend the file to cover every allocated
  // page so unwritten tail pages read back as zeros, exactly like ReadPage.
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush before mmap failed");
  }
  const int fd = ::fileno(file_);
  if (fd < 0) {
    return Status::IoError("fileno failed");
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    return Status::IoError(std::string("ftruncate before mmap failed: ") +
                           std::strerror(errno));
  }
  void* addr = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
  if (addr == MAP_FAILED) {
    return Status::IoError(std::string("mmap failed: ") +
                           std::strerror(errno));
  }
  // Node access is random; these hints are best-effort, errors ignored.
  ::madvise(addr, bytes, MADV_RANDOM);
  ::madvise(addr, bytes, MADV_WILLNEED);
  map_bytes_ = bytes;
  map_.store(static_cast<const uint8_t*>(addr), std::memory_order_release);
  return Status::Ok();
#else
  return Status::FailedPrecondition("mmap unavailable on this platform");
#endif
}

StatusOr<const uint8_t*> Pager::MappedSpan(PageId first, uint64_t length,
                                           bool record) {
  const uint8_t* map = map_.load(std::memory_order_acquire);
  if (map == nullptr) {
    return Status::FailedPrecondition("pager is not in mapped read mode");
  }
  const uint64_t offset = static_cast<uint64_t>(first) * page_size_;
  if (length == 0 || offset >= map_bytes_ || length > map_bytes_ - offset) {
    return Status::OutOfRange("mapped span past end of pager file");
  }
  if (record) {
    io_stats_.RecordMappedRead((length + page_size_ - 1) / page_size_);
  }
  return map + offset;
}

Status Pager::WritePage(PageId id, const uint8_t* buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.load(std::memory_order_relaxed) != nullptr) {
    return Status::FailedPrecondition(
        "pager is in mapped read mode; the file is frozen");
  }
  if (id >= num_pages_) {
    return Status::OutOfRange("write past end of pager file");
  }
  io_stats_.RecordPhysicalWrite();
  const uint64_t offset = static_cast<uint64_t>(id) * page_size_;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  if (std::fwrite(buffer, 1, page_size_, file_) != page_size_) {
    return Status::IoError("short write");
  }
  return Status::Ok();
}

}  // namespace wsk
