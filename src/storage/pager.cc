#include "storage/pager.h"

#include <cerrno>
#include <cstring>

namespace wsk {

Pager::Pager(std::FILE* file, uint32_t page_size, PageId num_pages)
    : file_(file), page_size_(page_size), num_pages_(num_pages) {}

Pager::~Pager() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<Pager>> Pager::Create(const std::string& path,
                                               uint32_t page_size) {
  if (page_size < 64) {
    return Status::InvalidArgument("page size too small");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IoError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<Pager>(new Pager(f, page_size, 0));
}

StatusOr<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                             uint32_t page_size) {
  if (page_size < 64) {
    return Status::InvalidArgument("page size too small");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::IoError("cannot seek " + path);
  }
  const long size = std::ftell(f);
  if (size < 0 || static_cast<uint64_t>(size) % page_size != 0) {
    std::fclose(f);
    return Status::Corruption(path + ": size is not a multiple of page size");
  }
  const PageId pages = static_cast<PageId>(
      static_cast<uint64_t>(size) / page_size);
  return std::unique_ptr<Pager>(new Pager(f, page_size, pages));
}

PageId Pager::AllocatePages(uint32_t count) {
  WSK_CHECK(count > 0);
  std::lock_guard<std::mutex> lock(mu_);
  const PageId first = num_pages_;
  num_pages_ += count;
  return first;
}

PageId Pager::num_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_pages_;
}

Status Pager::ReadPage(PageId id, uint8_t* buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= num_pages_) {
    return Status::OutOfRange("read past end of pager file");
  }
  if (read_fault_hook_) {
    WSK_RETURN_IF_ERROR(read_fault_hook_(id));
  }
  io_stats_.RecordPhysicalRead();
  const uint64_t offset = static_cast<uint64_t>(id) * page_size_;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  const size_t got = std::fread(buffer, 1, page_size_, file_);
  if (got < page_size_) {
    // Pages allocated but never written read back as zeros.
    if (std::feof(file_)) {
      std::memset(buffer + got, 0, page_size_ - got);
      std::clearerr(file_);
      return Status::Ok();
    }
    return Status::IoError("short read");
  }
  return Status::Ok();
}

Status Pager::WritePage(PageId id, const uint8_t* buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= num_pages_) {
    return Status::OutOfRange("write past end of pager file");
  }
  io_stats_.RecordPhysicalWrite();
  const uint64_t offset = static_cast<uint64_t>(id) * page_size_;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  if (std::fwrite(buffer, 1, page_size_, file_) != page_size_) {
    return Status::IoError("short write");
  }
  return Status::Ok();
}

}  // namespace wsk
