#include "storage/node_cache.h"

#include <utility>

#include "common/macros.h"

namespace wsk {
namespace {

bool DefaultVerifyFingerprints() {
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

}  // namespace

NodeCache::NodeCache(size_t capacity_bytes, size_t num_shards)
    : capacity_bytes_(capacity_bytes),
      num_shards_(num_shards == 0 ? 1 : num_shards),
      shard_capacity_(capacity_bytes_ / (num_shards == 0 ? 1 : num_shards)),
      verify_fingerprints_(DefaultVerifyFingerprints()) {
  shards_.reserve(num_shards_);
  for (size_t i = 0; i < num_shards_; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const void> NodeCache::Lookup(uint32_t tree_id, uint32_t key) {
  const uint64_t full_key = MakeKey(tree_id, key);
  Shard& shard = ShardFor(full_key);
  std::shared_ptr<const void> value;
  Fingerprint fingerprint = nullptr;
  uint64_t expected = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(full_key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    value = it->second->value;
    fingerprint = it->second->fingerprint;
    expected = it->second->fingerprint_value;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (fingerprint != nullptr && verify_fingerprints()) {
    // Payloads are immutable: a digest mismatch means someone mutated a
    // cached node after insertion. Abort loudly rather than serve it.
    WSK_CHECK_MSG(fingerprint(value.get()) == expected,
                  "NodeCache: cached node mutated after insertion");
  }
  return value;
}

bool NodeCache::Insert(uint32_t tree_id, uint32_t key,
                       std::shared_ptr<const void> value, size_t charge,
                       Fingerprint fingerprint) {
  if (charge > shard_capacity_ || value == nullptr) {
    return false;
  }
  const uint64_t full_key = MakeKey(tree_id, key);
  Shard& shard = ShardFor(full_key);
  // Destroy displaced payloads after the lock is released.
  std::vector<std::shared_ptr<const void>> doomed;
  size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.index.find(full_key) != shard.index.end()) {
      return false;  // first decoder won; payloads are identical anyway
    }
    Entry entry;
    entry.key = full_key;
    entry.value = std::move(value);
    entry.charge = charge;
    entry.fingerprint = fingerprint;
    if (fingerprint != nullptr) {
      entry.fingerprint_value = fingerprint(entry.value.get());
    }
    shard.lru.push_front(std::move(entry));
    shard.index.emplace(full_key, shard.lru.begin());
    shard.bytes += charge;
    while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
      Entry& victim = shard.lru.back();
      shard.bytes -= victim.charge;
      shard.index.erase(victim.key);
      doomed.push_back(std::move(victim.value));
      shard.lru.pop_back();
      ++evicted;
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  bytes_inserted_.fetch_add(charge, std::memory_order_relaxed);
  if (evicted != 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
  }
  return true;
}

void NodeCache::Erase(uint32_t tree_id, uint32_t key) {
  const uint64_t full_key = MakeKey(tree_id, key);
  Shard& shard = ShardFor(full_key);
  std::shared_ptr<const void> doomed;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(full_key);
    if (it == shard.index.end()) {
      return;
    }
    shard.bytes -= it->second->charge;
    doomed = std::move(it->second->value);
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
}

void NodeCache::EraseTree(uint32_t tree_id) {
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = *shards_[i];
    std::vector<std::shared_ptr<const void>> doomed;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if ((it->key >> 32) == tree_id) {
        shard.bytes -= it->charge;
        shard.index.erase(it->key);
        doomed.push_back(std::move(it->value));
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void NodeCache::Clear() {
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = *shards_[i];
    std::list<Entry> doomed;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      doomed.swap(shard.lru);
      shard.index.clear();
      shard.bytes = 0;
    }
  }
}

NodeCache::Stats NodeCache::GetStats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.inserts = inserts_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.bytes_inserted = bytes_inserted_.load(std::memory_order_relaxed);
  stats.capacity_bytes = capacity_bytes_;
  for (size_t i = 0; i < num_shards_; ++i) {
    const Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.bytes_in_use += shard.bytes;
    stats.entries += shard.lru.size();
  }
  return stats;
}

uint32_t NodeCache::NextTreeId() {
  static std::atomic<uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace wsk
