// LRU buffer pool over a Pager.
//
// Every index traversal goes through Fetch(); a hit costs nothing, a miss
// issues one physical page read (the unit of the paper's I/O metric). The
// default capacity used by the experiments is 4 MiB, as in Section VII-A1.
//
// Thread safety: all operations are internally synchronized; a pinned page's
// bytes may be read without holding any pool lock because pinned frames are
// never evicted or recycled.
//
// Concurrency: pools with at least kShardThreshold frames are partitioned
// into kNumShards independent shards (pages hash to a shard by id, frames
// are statically divided among shards), so concurrent queries from the
// service layer don't serialize on one global mutex. Each shard runs its
// own LRU — a slight approximation of global LRU that does not change hit
// behavior for uniformly spread page ids. Small pools keep a single shard
// and therefore exact global LRU order.
#ifndef WSK_STORAGE_BUFFER_POOL_H_
#define WSK_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/pager.h"

namespace wsk {

class BufferPool;

// RAII pin on a buffered page. Move-only; unpins on destruction. A
// default-constructed handle is invalid.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  // Raw page bytes; stable while the handle is alive.
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }

  // Marks the page dirty so eviction/FlushAll writes it back.
  void MarkDirty();

  // Explicit early unpin (also happens on destruction).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame, PageId page_id, uint8_t* data)
      : pool_(pool), frame_(frame), page_id_(page_id), data_(data) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
  uint8_t* data_ = nullptr;
};

class BufferPool {
 public:
  // `capacity_bytes` is rounded down to whole frames; at least one frame is
  // always available. Does not take ownership of `pager`.
  BufferPool(Pager* pager, size_t capacity_bytes);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Pins the page, reading it from disk on a miss. Fails if every frame is
  // pinned or the read fails.
  StatusOr<PageHandle> Fetch(PageId id);

  // Allocates a fresh page from the pager and pins a zeroed, dirty frame
  // for it (no physical read). Fails only if every frame is pinned.
  StatusOr<PageHandle> NewPage();

  // Writes back all dirty frames.
  Status FlushAll();

  // Drops every unpinned frame (writing back dirty ones); useful to make
  // experiment I/O counts independent of index-build history.
  Status InvalidateAll();

  size_t num_frames() const { return frames_.size(); }
  uint64_t hits() const;
  uint64_t misses() const;

  Pager* pager() { return pager_; }

 private:
  friend class PageHandle;

  // Pools with fewer frames than this keep one shard (exact global LRU).
  static constexpr size_t kShardThreshold = 64;
  static constexpr size_t kNumShards = 8;

  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool valid = false;
    bool in_lru = false;
    std::list<size_t>::iterator lru_it;
    std::vector<uint8_t> data;
  };

  // One independently locked partition: frame f belongs to shard
  // f % num_shards_, page id p to shard p % num_shards_, and frames only
  // ever cache pages of their own shard.
  struct Shard {
    mutable std::mutex mu;
    std::vector<size_t> free_frames;
    std::list<size_t> lru;  // front = coldest
    std::unordered_map<PageId, size_t> page_to_frame;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  Shard& ShardForPage(PageId id) { return shards_[id % num_shards_]; }
  Shard& ShardForFrame(size_t frame) { return shards_[frame % num_shards_]; }

  void Unpin(size_t frame);
  void MarkFrameDirty(size_t frame);

  // Returns a usable frame index of `shard` (from its free list or by
  // evicting its coldest unpinned frame), or an error if all of the
  // shard's frames are pinned. Requires shard.mu held.
  StatusOr<size_t> GrabFrameLocked(Shard& shard);

  Pager* const pager_;
  size_t num_shards_ = 1;
  std::vector<Frame> frames_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace wsk

#endif  // WSK_STORAGE_BUFFER_POOL_H_
