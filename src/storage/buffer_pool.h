// LRU buffer pool over a Pager.
//
// Every index traversal goes through Fetch(); a hit costs nothing, a miss
// issues one physical page read (the unit of the paper's I/O metric). The
// default capacity used by the experiments is 4 MiB, as in Section VII-A1.
//
// Thread safety: all operations are internally synchronized; a pinned page's
// bytes may be read without holding the pool lock because pinned frames are
// never evicted or recycled.
#ifndef WSK_STORAGE_BUFFER_POOL_H_
#define WSK_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/pager.h"

namespace wsk {

class BufferPool;

// RAII pin on a buffered page. Move-only; unpins on destruction. A
// default-constructed handle is invalid.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  // Raw page bytes; stable while the handle is alive.
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }

  // Marks the page dirty so eviction/FlushAll writes it back.
  void MarkDirty();

  // Explicit early unpin (also happens on destruction).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame, PageId page_id, uint8_t* data)
      : pool_(pool), frame_(frame), page_id_(page_id), data_(data) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
  uint8_t* data_ = nullptr;
};

class BufferPool {
 public:
  // `capacity_bytes` is rounded down to whole frames; at least one frame is
  // always available. Does not take ownership of `pager`.
  BufferPool(Pager* pager, size_t capacity_bytes);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Pins the page, reading it from disk on a miss. Fails if every frame is
  // pinned or the read fails.
  StatusOr<PageHandle> Fetch(PageId id);

  // Allocates a fresh page from the pager and pins a zeroed, dirty frame
  // for it (no physical read). Fails only if every frame is pinned.
  StatusOr<PageHandle> NewPage();

  // Writes back all dirty frames.
  Status FlushAll();

  // Drops every unpinned frame (writing back dirty ones); useful to make
  // experiment I/O counts independent of index-build history.
  Status InvalidateAll();

  size_t num_frames() const { return frames_.size(); }
  uint64_t hits() const;
  uint64_t misses() const;

  Pager* pager() { return pager_; }

 private:
  friend class PageHandle;

  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool valid = false;
    bool in_lru = false;
    std::list<size_t>::iterator lru_it;
    std::vector<uint8_t> data;
  };

  void Unpin(size_t frame);
  void MarkFrameDirty(size_t frame);

  // Returns a usable frame index (from the free list or by evicting the
  // coldest unpinned frame), or an error if all frames are pinned.
  // Requires mu_ held.
  StatusOr<size_t> GrabFrameLocked();

  Pager* const pager_;
  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::list<size_t> lru_;  // front = coldest
  std::unordered_map<PageId, size_t> page_to_frame_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace wsk

#endif  // WSK_STORAGE_BUFFER_POOL_H_
