#include "storage/buffer_pool.h"

#include <cstring>

namespace wsk {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::MarkDirty() {
  WSK_CHECK(valid());
  pool_->MarkFrameDirty(frame_);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity_bytes) : pager_(pager) {
  WSK_CHECK(pager != nullptr);
  size_t n = capacity_bytes / pager->page_size();
  if (n == 0) n = 1;
  num_shards_ = n >= kShardThreshold ? kNumShards : 1;
  frames_.resize(n);
  shards_ = std::make_unique<Shard[]>(num_shards_);
  // Hand out low frame indexes first within each shard (as the unsharded
  // pool did globally).
  for (size_t i = 0; i < n; ++i) {
    frames_[i].data.resize(pager->page_size());
    const size_t f = n - 1 - i;
    ShardForFrame(f).free_frames.push_back(f);
  }
}

StatusOr<size_t> BufferPool::GrabFrameLocked(Shard& shard) {
  if (!shard.free_frames.empty()) {
    const size_t f = shard.free_frames.back();
    shard.free_frames.pop_back();
    return f;
  }
  if (shard.lru.empty()) {
    return Status::FailedPrecondition("buffer pool exhausted: all pinned");
  }
  const size_t f = shard.lru.front();
  shard.lru.pop_front();
  Frame& frame = frames_[f];
  frame.in_lru = false;
  if (frame.dirty) {
    WSK_RETURN_IF_ERROR(pager_->WritePage(frame.page_id, frame.data.data()));
    frame.dirty = false;
  }
  shard.page_to_frame.erase(frame.page_id);
  frame.valid = false;
  return f;
}

StatusOr<PageHandle> BufferPool::Fetch(PageId id) {
  pager_->io_stats().RecordLogicalRead();
  Shard& shard = ShardForPage(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.page_to_frame.find(id);
  if (it != shard.page_to_frame.end()) {
    ++shard.hits;
    Frame& frame = frames_[it->second];
    if (frame.in_lru) {
      shard.lru.erase(frame.lru_it);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return PageHandle(this, it->second, id, frame.data.data());
  }
  ++shard.misses;
  StatusOr<size_t> grabbed = GrabFrameLocked(shard);
  if (!grabbed.ok()) return grabbed.status();
  const size_t f = grabbed.value();
  Frame& frame = frames_[f];
  Status read = pager_->ReadPage(id, frame.data.data());
  if (!read.ok()) {
    shard.free_frames.push_back(f);
    return read;
  }
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.valid = true;
  shard.page_to_frame[id] = f;
  return PageHandle(this, f, id, frame.data.data());
}

StatusOr<PageHandle> BufferPool::NewPage() {
  // The page id must be known before picking a shard. If the shard then
  // has no free frame the freshly allocated id is abandoned — harmless for
  // an append-only pager, and the caller treats the failure as fatal.
  const PageId id = pager_->AllocatePages(1);
  Shard& shard = ShardForPage(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  StatusOr<size_t> grabbed = GrabFrameLocked(shard);
  if (!grabbed.ok()) return grabbed.status();
  const size_t f = grabbed.value();
  Frame& frame = frames_[f];
  std::memset(frame.data.data(), 0, frame.data.size());
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = true;
  frame.valid = true;
  shard.page_to_frame[id] = f;
  return PageHandle(this, f, id, frame.data.data());
}

Status BufferPool::FlushAll() {
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t f = s; f < frames_.size(); f += num_shards_) {
      Frame& frame = frames_[f];
      if (frame.valid && frame.dirty) {
        WSK_RETURN_IF_ERROR(
            pager_->WritePage(frame.page_id, frame.data.data()));
        frame.dirty = false;
      }
    }
  }
  return Status::Ok();
}

Status BufferPool::InvalidateAll() {
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t f = s; f < frames_.size(); f += num_shards_) {
      Frame& frame = frames_[f];
      if (!frame.valid || frame.pin_count > 0) continue;
      if (frame.dirty) {
        WSK_RETURN_IF_ERROR(
            pager_->WritePage(frame.page_id, frame.data.data()));
        frame.dirty = false;
      }
      if (frame.in_lru) {
        shard.lru.erase(frame.lru_it);
        frame.in_lru = false;
      }
      shard.page_to_frame.erase(frame.page_id);
      frame.valid = false;
      shard.free_frames.push_back(f);
    }
  }
  return Status::Ok();
}

uint64_t BufferPool::hits() const {
  uint64_t total = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].hits;
  }
  return total;
}

uint64_t BufferPool::misses() const {
  uint64_t total = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].misses;
  }
  return total;
}

void BufferPool::Unpin(size_t frame_index) {
  Shard& shard = ShardForFrame(frame_index);
  std::lock_guard<std::mutex> lock(shard.mu);
  Frame& frame = frames_[frame_index];
  WSK_CHECK(frame.pin_count > 0);
  if (--frame.pin_count == 0) {
    shard.lru.push_back(frame_index);
    frame.lru_it = std::prev(shard.lru.end());
    frame.in_lru = true;
  }
}

void BufferPool::MarkFrameDirty(size_t frame_index) {
  Shard& shard = ShardForFrame(frame_index);
  std::lock_guard<std::mutex> lock(shard.mu);
  frames_[frame_index].dirty = true;
}

}  // namespace wsk
