#include "storage/buffer_pool.h"

#include <cstring>

namespace wsk {

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageHandle::~PageHandle() { Release(); }

void PageHandle::MarkDirty() {
  WSK_CHECK(valid());
  pool_->MarkFrameDirty(frame_);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(Pager* pager, size_t capacity_bytes) : pager_(pager) {
  WSK_CHECK(pager != nullptr);
  size_t n = capacity_bytes / pager->page_size();
  if (n == 0) n = 1;
  frames_.resize(n);
  free_frames_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    frames_[i].data.resize(pager->page_size());
    free_frames_.push_back(n - 1 - i);  // hand out low indexes first
  }
}

StatusOr<size_t> BufferPool::GrabFrameLocked() {
  if (!free_frames_.empty()) {
    const size_t f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  if (lru_.empty()) {
    return Status::FailedPrecondition("buffer pool exhausted: all pinned");
  }
  const size_t f = lru_.front();
  lru_.pop_front();
  Frame& frame = frames_[f];
  frame.in_lru = false;
  if (frame.dirty) {
    WSK_RETURN_IF_ERROR(pager_->WritePage(frame.page_id, frame.data.data()));
    frame.dirty = false;
  }
  page_to_frame_.erase(frame.page_id);
  frame.valid = false;
  return f;
}

StatusOr<PageHandle> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  pager_->io_stats().RecordLogicalRead();
  auto it = page_to_frame_.find(id);
  if (it != page_to_frame_.end()) {
    ++hits_;
    Frame& frame = frames_[it->second];
    if (frame.in_lru) {
      lru_.erase(frame.lru_it);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return PageHandle(this, it->second, id, frame.data.data());
  }
  ++misses_;
  StatusOr<size_t> grabbed = GrabFrameLocked();
  if (!grabbed.ok()) return grabbed.status();
  const size_t f = grabbed.value();
  Frame& frame = frames_[f];
  Status read = pager_->ReadPage(id, frame.data.data());
  if (!read.ok()) {
    free_frames_.push_back(f);
    return read;
  }
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.valid = true;
  page_to_frame_[id] = f;
  return PageHandle(this, f, id, frame.data.data());
}

StatusOr<PageHandle> BufferPool::NewPage() {
  std::lock_guard<std::mutex> lock(mu_);
  StatusOr<size_t> grabbed = GrabFrameLocked();
  if (!grabbed.ok()) return grabbed.status();
  const size_t f = grabbed.value();
  const PageId id = pager_->AllocatePages(1);
  Frame& frame = frames_[f];
  std::memset(frame.data.data(), 0, frame.data.size());
  frame.page_id = id;
  frame.pin_count = 1;
  frame.dirty = true;
  frame.valid = true;
  page_to_frame_[id] = f;
  return PageHandle(this, f, id, frame.data.data());
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& frame : frames_) {
    if (frame.valid && frame.dirty) {
      WSK_RETURN_IF_ERROR(pager_->WritePage(frame.page_id, frame.data.data()));
      frame.dirty = false;
    }
  }
  return Status::Ok();
}

Status BufferPool::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t f = 0; f < frames_.size(); ++f) {
    Frame& frame = frames_[f];
    if (!frame.valid || frame.pin_count > 0) continue;
    if (frame.dirty) {
      WSK_RETURN_IF_ERROR(pager_->WritePage(frame.page_id, frame.data.data()));
      frame.dirty = false;
    }
    if (frame.in_lru) {
      lru_.erase(frame.lru_it);
      frame.in_lru = false;
    }
    page_to_frame_.erase(frame.page_id);
    frame.valid = false;
    free_frames_.push_back(f);
  }
  return Status::Ok();
}

uint64_t BufferPool::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t BufferPool::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void BufferPool::Unpin(size_t frame_index) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& frame = frames_[frame_index];
  WSK_CHECK(frame.pin_count > 0);
  if (--frame.pin_count == 0) {
    lru_.push_back(frame_index);
    frame.lru_it = std::prev(lru_.end());
    frame.in_lru = true;
  }
}

void BufferPool::MarkFrameDirty(size_t frame_index) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_[frame_index].dirty = true;
}

}  // namespace wsk
