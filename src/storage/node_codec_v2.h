// Compact v2 static node format.
//
// v1 nodes are fixed-slot records: every node occupies `pages_per_node`
// consecutive pages sized for a full-capacity node, entries are loose
// fixed-width structs, and per-entry keyword payloads live out-of-line in
// the blob store. That layout is simple to update in place, which the
// dynamic (insert/remove) path needs — but frozen trees never update, so
// they pay for slack they cannot use.
//
// v2 is a write-once record format for frozen trees:
//
//   header (16 bytes, fixed)                body (variable, checksummed)
//   +----------+----------+-----------+     +--------------------------+
//   | u8  ver  | u8  kind | u16 count |     | entries, varint-packed   |
//   | u32 body_bytes      |           |     | keyword ids delta-coded  |
//   | u32 checksum (FNV-1a over body) |     | child refs tagged u64s   |
//   | u32 reserved (0)                |     +--------------------------+
//   +---------------------------------+
//
// Records are padded to a whole number of pages and read back in place —
// from a borrowed buffer-pool pin or straight from a read-only mapping —
// with zero allocation on the single-page hot path. Child references pack
// the leaf/internal discriminator into bit 0 of a u64 with the page id in
// the high bits (after LeviDB's index_format tagged-offset scheme), so one
// varint carries both. Sorted term ids are delta-encoded: strictly
// ascending ids make every delta positive, and the common dense-id case
// fits one byte per term instead of four.
//
// Decoding is fully checked: CheckedReader never reads past the record and
// never aborts, so a corrupt or truncated record surfaces as a Corruption
// Status from the tree, not as UB.
#ifndef WSK_STORAGE_NODE_CODEC_V2_H_
#define WSK_STORAGE_NODE_CODEC_V2_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace wsk {

// Node format versions, stored both in the tree meta page and in byte 0 of
// every v2 node header. v1 has no per-node version byte; its meta version
// field identifies it.
inline constexpr uint8_t kNodeFormatV1 = 1;
inline constexpr uint8_t kNodeFormatV2 = 2;

inline constexpr uint32_t kNodeHeaderBytesV2 = 16;

// v2 stores the entry count in a u16.
inline constexpr uint32_t kMaxNodeCountV2 = 0xffff;

// --- Tagged child references (leaf bit in bit 0, page id above) ---------

inline uint64_t MakeChildRef(PageId page, bool child_is_leaf) {
  return (static_cast<uint64_t>(page) << 1) |
         (child_is_leaf ? 1u : 0u);
}

inline PageId ChildRefPage(uint64_t ref) {
  return static_cast<PageId>(ref >> 1);
}

inline bool ChildRefIsLeaf(uint64_t ref) { return (ref & 1u) != 0; }

// --- Varint encoding (LEB128) -------------------------------------------

void PutVarint(std::vector<uint8_t>* out, uint64_t value);

// Appends `count` strictly ascending u32 ids as a raw first id plus
// positive deltas, all varint-coded.
void PutDeltaU32s(std::vector<uint8_t>* out, const uint32_t* ids,
                  size_t count);

// FNV-1a over `size` bytes; seeds the per-record checksum.
uint32_t Fnv1a32(const uint8_t* data, size_t size);

// --- Checked in-place reader --------------------------------------------

// Bounds-checked cursor over a borrowed record body. Every getter returns
// false (and leaves its output untouched) once the cursor would pass the
// end or a varint is malformed; the error is sticky. Callers check ok()
// or the per-call bool and translate failure into Status::Corruption.
class CheckedReader {
 public:
  CheckedReader(const uint8_t* data, size_t size)
      : data_(data), end_(data + size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - data_); }

  bool GetU8(uint8_t* out);
  bool GetVarint(uint64_t* out);
  // Varint that must fit u32.
  bool GetVarint32(uint32_t* out);
  bool GetDouble(double* out);
  bool GetRect(Rect* out);
  bool GetBytes(const uint8_t** out, size_t size);

  // Reads `count` delta-coded ascending u32 ids (PutDeltaU32s inverse)
  // into `out` (appended). Fails on overrun, non-positive delta, or u32
  // overflow.
  bool GetDeltaU32s(size_t count, std::vector<uint32_t>* out);

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  const uint8_t* data_;
  const uint8_t* end_;
  bool ok_ = true;
};

// --- Record encode / decode ---------------------------------------------

// Serializes header + body, padded with zeros to a whole number of
// `page_size` pages. Public so corruption tests can craft records (valid
// or deliberately broken via later byte surgery) without private access.
// Fails if count exceeds kMaxNodeCountV2.
Status EncodeNodeRecordV2(bool is_leaf, uint32_t count,
                          const std::vector<uint8_t>& body,
                          uint32_t page_size, std::vector<uint8_t>* out);

// Encodes and appends a record to fresh pages allocated from the pool's
// pager, returning the first page id.
StatusOr<PageId> AppendNodeRecordV2(BufferPool* pool, bool is_leaf,
                                    uint32_t count,
                                    const std::vector<uint8_t>& body);

// Remembers which record pages already passed their body-checksum check.
// v2 records are write-once (the trees reject Insert/Remove), so a record
// that verified cleanly once cannot go bad underneath a live tree, and the
// byte-serial FNV-1a re-hash — the single largest warm-decode cost — can
// be skipped on every later read. First read of each record still hashes,
// so corruption introduced before the first touch is always caught.
//
// Thread-safe: bits only ever flip 0 -> 1, recorded with relaxed atomics;
// the bitmap itself is allocated once (sized to the file at first use) and
// published with acquire/release. Pages past the first-use file size are
// simply re-verified every time.
class ChecksumLedger {
 public:
  ChecksumLedger() = default;
  ~ChecksumLedger() { delete map_.load(std::memory_order_relaxed); }
  ChecksumLedger(const ChecksumLedger&) = delete;
  ChecksumLedger& operator=(const ChecksumLedger&) = delete;

  bool Verified(PageId page) const {
    const Bitmap* map = map_.load(std::memory_order_acquire);
    if (map == nullptr || page >= map->size_pages) return false;
    return (map->words[page >> 6].load(std::memory_order_relaxed) >>
            (page & 63)) &
           1u;
  }

  // Marks `page` verified; `num_pages` sizes the bitmap on first use.
  void MarkVerified(PageId page, PageId num_pages) {
    Bitmap* map = map_.load(std::memory_order_acquire);
    if (map == nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      map = map_.load(std::memory_order_relaxed);
      if (map == nullptr) {
        map = new Bitmap(num_pages);
        map_.store(map, std::memory_order_release);
      }
    }
    if (page < map->size_pages) {
      map->words[page >> 6].fetch_or(uint64_t{1} << (page & 63),
                                     std::memory_order_relaxed);
    }
  }

 private:
  struct Bitmap {
    explicit Bitmap(PageId n)
        : size_pages(n), words((static_cast<size_t>(n) + 63) / 64) {}
    PageId size_pages;
    std::vector<std::atomic<uint64_t>> words;  // value-initialized to 0
  };

  std::atomic<Bitmap*> map_{nullptr};
  std::mutex mu_;
};

// A decoded v2 record header plus a borrowed view of its body. The body
// pointer stays valid for the lifetime of this object: it borrows a
// buffer-pool pin (single-page records), the pager's read-only mapping
// (mapped mode, any size), or an owned scratch copy (multi-page records
// read through the pool).
class NodeRecordV2 {
 public:
  NodeRecordV2() = default;

  bool is_leaf() const { return is_leaf_; }
  uint32_t count() const { return count_; }
  const uint8_t* body() const { return body_; }
  uint32_t body_bytes() const { return body_bytes_; }
  // Pages the record spans on disk (header + body, page-padded).
  uint32_t pages() const { return pages_; }
  bool zero_copy() const { return pin_.valid() || mapped_; }

 private:
  friend StatusOr<NodeRecordV2> ReadNodeRecordV2(BufferPool* pool,
                                                 PageId page,
                                                 ChecksumLedger* ledger);

  bool is_leaf_ = false;
  uint32_t count_ = 0;
  uint32_t body_bytes_ = 0;
  uint32_t pages_ = 0;
  const uint8_t* body_ = nullptr;
  bool mapped_ = false;
  PageHandle pin_;
  std::vector<uint8_t> scratch_;
};

// Reads and validates the record starting at `page`. Validates the
// version byte, kind, count, record extent against the file, and the body
// checksum; any violation is Status::Corruption naming the page. With a
// ledger, the checksum is verified on the record's first read only (see
// ChecksumLedger); without one it is verified every time.
StatusOr<NodeRecordV2> ReadNodeRecordV2(BufferPool* pool, PageId page,
                                        ChecksumLedger* ledger = nullptr);

}  // namespace wsk

#endif  // WSK_STORAGE_NODE_CODEC_V2_H_
