#include "storage/blob_store.h"

#include <cstring>

namespace wsk {

namespace {

void PutU32(uint8_t* out, uint32_t v) { std::memcpy(out, &v, sizeof(v)); }
uint32_t GetU32(const uint8_t* in) {
  uint32_t v;
  std::memcpy(&v, in, sizeof(v));
  return v;
}

}  // namespace

void BlobRef::Serialize(uint8_t* out) const {
  PutU32(out, page);
  PutU32(out + 4, offset);
  PutU32(out + 8, length);
}

BlobRef BlobRef::Deserialize(const uint8_t* in) {
  BlobRef ref;
  ref.page = GetU32(in);
  ref.offset = GetU32(in + 4);
  ref.length = GetU32(in + 8);
  return ref;
}

BlobStore::BlobStore(BufferPool* pool)
    : pool_(pool), page_size_(pool->pager()->page_size()) {
  current_.resize(page_size_);
}

StatusOr<BlobRef> BlobStore::Append(const uint8_t* data, uint32_t length) {
  Pager* pager = pool_->pager();
  if (length > page_size_) {
    // Multi-page blob: close the open page, then write whole pages into a
    // dedicated consecutive run.
    WSK_RETURN_IF_ERROR(Flush());
    const uint32_t pages = (length + page_size_ - 1) / page_size_;
    const PageId first = pager->AllocatePages(pages);
    std::vector<uint8_t> buf(page_size_, 0);
    uint32_t written = 0;
    for (uint32_t i = 0; i < pages; ++i) {
      const uint32_t chunk =
          std::min<uint32_t>(page_size_, length - written);
      std::memcpy(buf.data(), data + written, chunk);
      if (chunk < page_size_) {
        std::memset(buf.data() + chunk, 0, page_size_ - chunk);
      }
      WSK_RETURN_IF_ERROR(pager->WritePage(first + i, buf.data()));
      written += chunk;
    }
    return BlobRef{first, 0, length};
  }

  if (current_page_ == kInvalidPageId ||
      current_offset_ + length > page_size_) {
    WSK_RETURN_IF_ERROR(Flush());
    current_page_ = pager->AllocatePages(1);
    current_offset_ = 0;
    std::memset(current_.data(), 0, page_size_);
  }
  if (length != 0) {
    // memcpy with a null source is UB even at length 0, and empty blobs
    // legitimately pass data == nullptr.
    std::memcpy(current_.data() + current_offset_, data, length);
  }
  const BlobRef ref{current_page_, current_offset_, length};
  current_offset_ += length;
  return ref;
}

Status BlobStore::Flush() {
  if (current_page_ == kInvalidPageId) return Status::Ok();
  WSK_RETURN_IF_ERROR(
      pool_->pager()->WritePage(current_page_, current_.data()));
  current_page_ = kInvalidPageId;
  current_offset_ = 0;
  return Status::Ok();
}

Status BlobStore::ReadRange(const BlobRef& ref, uint32_t offset,
                            uint32_t length, std::vector<uint8_t>* out) const {
  if (offset > ref.length || length > ref.length - offset) {
    return Status::OutOfRange("blob range read past end");
  }
  BlobRef sub = ref;
  sub.page += (ref.offset + offset) / page_size_;
  sub.offset = (ref.offset + offset) % page_size_;
  sub.length = length;
  return Read(sub, out);
}

Status BlobStore::Read(const BlobRef& ref, std::vector<uint8_t>* out) const {
  if (ref.length == 0) {
    out->clear();
    return Status::Ok();
  }
  if (ref.page == kInvalidPageId) {
    return Status::InvalidArgument("invalid blob reference");
  }
  if (ref.offset >= page_size_) {
    // A reference decoded from a corrupted page: honoring the offset would
    // read beyond the fetched page's buffer.
    return Status::Corruption("blob reference offset past the page end");
  }
  if (ref.page == current_page_) {
    // The blob lives on the still-open page, which exists only in memory;
    // serving it from the buffer also keeps the buffer pool from caching a
    // stale on-disk image of this page. Small blobs never straddle pages,
    // so the whole blob is in current_.
    if (static_cast<uint64_t>(ref.offset) + ref.length > page_size_) {
      return Status::Corruption("blob reference overruns the open page");
    }
    out->resize(ref.length);
    std::memcpy(out->data(), current_.data() + ref.offset, ref.length);
    return Status::Ok();
  }
  const uint64_t span_pages =
      (static_cast<uint64_t>(ref.offset) + ref.length + page_size_ - 1) /
      page_size_;
  if (static_cast<uint64_t>(ref.page) + span_pages >
      pool_->pager()->num_pages()) {
    // Bounds the allocation below by the file size before any page is
    // fetched; a corrupted length field can otherwise demand gigabytes.
    return Status::Corruption("blob reference extends past the file");
  }
  if (pool_->pager()->mapped()) {
    // Mapped read mode: copy straight from the OS page cache; the span
    // was bounds-checked against the file above and again by the pager.
    StatusOr<const uint8_t*> span = pool_->pager()->MappedSpan(
        ref.page, static_cast<uint64_t>(ref.offset) + ref.length);
    if (span.ok()) {
      out->resize(ref.length);
      std::memcpy(out->data(), span.value() + ref.offset, ref.length);
      return Status::Ok();
    }
    // Fall through to the buffered path.
  }
  out->resize(ref.length);
  uint32_t copied = 0;
  uint32_t offset = ref.offset;
  PageId page = ref.page;
  while (copied < ref.length) {
    StatusOr<PageHandle> handle = pool_->Fetch(page);
    if (!handle.ok()) return handle.status();
    const uint32_t chunk =
        std::min<uint32_t>(page_size_ - offset, ref.length - copied);
    std::memcpy(out->data() + copied, handle.value().data() + offset, chunk);
    copied += chunk;
    offset = 0;
    ++page;
  }
  return Status::Ok();
}

}  // namespace wsk
