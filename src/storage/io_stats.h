// I/O accounting. The paper evaluates every algorithm by "number of I/Os";
// here that is the number of physical page reads issued by the pager, i.e.
// buffer-pool misses, under the experiment's buffer configuration (4 MiB by
// default, as in Section VII-A1).
#ifndef WSK_STORAGE_IO_STATS_H_
#define WSK_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>

namespace wsk {

// Thread-safe counters. Snapshot() gives a consistent-enough view for
// experiment reporting (counters are monotone between Reset() calls).
//
// These counters sit on the query hot path (one logical read per page
// fetch) and are shared by every query running against an engine, so they
// are atomics with relaxed ordering: each increment is an independent
// event count that synchronizes nothing — sequential consistency here
// would buy no correctness and cost a fence per page access. Reset() must
// not race with in-flight queries (see WhyNotEngine's thread-safety
// contract); the relaxed stores keep even a misuse data-race-free.
class IoStats {
 public:
  struct Snapshot {
    uint64_t physical_reads = 0;
    uint64_t physical_writes = 0;
    uint64_t logical_reads = 0;
    uint64_t node_cache_hits = 0;
    uint64_t node_cache_misses = 0;
    uint64_t mapped_reads = 0;
  };

  void RecordPhysicalRead() {
    physical_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordPhysicalWrite() {
    physical_writes_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordLogicalRead() {
    logical_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  // Decoded-node cache accesses. A hit serves the node without touching
  // the buffer pool, so it records neither a logical nor a physical read —
  // the cache is accounted separately, never double-counted as page I/O.
  void RecordNodeCacheHit() {
    node_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordNodeCacheMiss() {
    node_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  // Page spans served from a read-only memory mapping (Pager::MappedSpan),
  // counted per page spanned. Mapped reads hit the OS page cache directly —
  // they are neither buffer-pool logical reads nor physical reads, so they
  // get their own counter and never inflate the paper's I/O metric.
  void RecordMappedRead(uint64_t pages) {
    mapped_reads_.fetch_add(pages, std::memory_order_relaxed);
  }

  uint64_t physical_reads() const {
    return physical_reads_.load(std::memory_order_relaxed);
  }
  uint64_t physical_writes() const {
    return physical_writes_.load(std::memory_order_relaxed);
  }
  uint64_t logical_reads() const {
    return logical_reads_.load(std::memory_order_relaxed);
  }
  uint64_t node_cache_hits() const {
    return node_cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t node_cache_misses() const {
    return node_cache_misses_.load(std::memory_order_relaxed);
  }
  uint64_t mapped_reads() const {
    return mapped_reads_.load(std::memory_order_relaxed);
  }

  Snapshot TakeSnapshot() const {
    return Snapshot{physical_reads(),  physical_writes(),
                    logical_reads(),   node_cache_hits(),
                    node_cache_misses(), mapped_reads()};
  }

  void Reset() {
    physical_reads_.store(0, std::memory_order_relaxed);
    physical_writes_.store(0, std::memory_order_relaxed);
    logical_reads_.store(0, std::memory_order_relaxed);
    node_cache_hits_.store(0, std::memory_order_relaxed);
    node_cache_misses_.store(0, std::memory_order_relaxed);
    mapped_reads_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> physical_reads_{0};
  std::atomic<uint64_t> physical_writes_{0};
  std::atomic<uint64_t> logical_reads_{0};
  std::atomic<uint64_t> node_cache_hits_{0};
  std::atomic<uint64_t> node_cache_misses_{0};
  std::atomic<uint64_t> mapped_reads_{0};
};

}  // namespace wsk

#endif  // WSK_STORAGE_IO_STATS_H_
