// Variable-length record storage on top of the pager.
//
// Both trees keep textual payloads out of line: the SetR-tree's per-node
// union/intersection keyword sets (`pku`/`pki`), per-object keyword sets
// (`pks`), and the KcR-tree's keyword-count maps (`pcm`) are blobs
// referenced from node entries. Blobs written consecutively are packed
// sequentially on disk, mirroring the paper's note that a node's keyword
// sets are "stored sequentially on disk to reduce the number of disk
// seeks"; reading a blob costs one buffered page fetch per page spanned.
#ifndef WSK_STORAGE_BLOB_STORE_H_
#define WSK_STORAGE_BLOB_STORE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace wsk {

// Locates a blob: `length` bytes starting at byte `offset` of page `page`
// (continuing into physically consecutive pages when it does not fit).
struct BlobRef {
  PageId page = kInvalidPageId;
  uint32_t offset = 0;
  uint32_t length = 0;

  static constexpr size_t kSerializedSize = 12;

  void Serialize(uint8_t* out) const;
  static BlobRef Deserialize(const uint8_t* in);

  friend bool operator==(const BlobRef& a, const BlobRef& b) {
    return a.page == b.page && a.offset == b.offset && a.length == b.length;
  }
};

// Append-only writer + random-access reader. Small blobs are packed within
// a page and never straddle a page boundary; blobs larger than one page get
// dedicated consecutive pages. Writes bypass the buffer pool (index
// construction is not part of the query I/O metric); call Flush() before
// reading what was appended.
class BlobStore {
 public:
  explicit BlobStore(BufferPool* pool);

  BlobStore(const BlobStore&) = delete;
  BlobStore& operator=(const BlobStore&) = delete;

  StatusOr<BlobRef> Append(const uint8_t* data, uint32_t length);
  StatusOr<BlobRef> Append(const std::vector<uint8_t>& data) {
    return Append(data.data(), static_cast<uint32_t>(data.size()));
  }

  // Writes out the partially filled current page, if any.
  Status Flush();

  // Reads the blob through the buffer pool (so reads are cached + counted).
  Status Read(const BlobRef& ref, std::vector<uint8_t>* out) const;

  // Reads `length` bytes starting `offset` bytes into the blob, fetching
  // only the pages actually spanned — the random-access path for large
  // array blobs (object tables, posting directories).
  Status ReadRange(const BlobRef& ref, uint32_t offset, uint32_t length,
                   std::vector<uint8_t>* out) const;

 private:
  BufferPool* const pool_;
  const uint32_t page_size_;
  std::vector<uint8_t> current_;     // in-memory image of the open page
  PageId current_page_ = kInvalidPageId;
  uint32_t current_offset_ = 0;      // next free byte in current_
};

}  // namespace wsk

#endif  // WSK_STORAGE_BLOB_STORE_H_
