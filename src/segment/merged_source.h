// Best-first top-k over a multi-segment snapshot (docs/SEGMENTS.md).
//
// Presents one logical TopKSource to TopKIterator / IndexTopK over N
// per-segment tree sources (SetR-trees for top-k and the BS rank
// traversals, KcR-trees for the KcR-based algorithm's rank source) plus the
// in-memory delta objects. The iterator's contract — every entry's bound is
// an upper bound on any object below it, exact for object entries — is
// preserved:
//
//   * A virtual root fans out to every segment root at +inf bound, so each
//     segment's own bounds take over immediately; delta objects enter the
//     frontier as exactly-scored object entries (Score with the pinned
//     dataset diagonal, the same arithmetic the tree leaves use — scores
//     are bit-identical to a freshly built tree over the same objects).
//   * Child PageIds are namespaced per segment ((segment+1) << 26 | local),
//     a monotone per-segment transform, so at equal bounds the expansion
//     order within one segment matches the plain single-tree order.
//   * Tombstoned objects are dropped at expansion via the per-segment
//     visibility filter; at most one version of an id is visible in the
//     whole snapshot, so the merged stream needs no dedup.
//
// Cross-segment kth-score bound pruning falls out of the best-first
// traversal: the iterator's global frontier is ordered by bound, so once k
// objects have emitted, no segment node whose bound is below the running
// kth score is ever expanded — segments prune each other through the shared
// heap.
#ifndef WSK_SEGMENT_MERGED_SOURCE_H_
#define WSK_SEGMENT_MERGED_SOURCE_H_

#include <vector>

#include "core/whynot_kcr.h"
#include "data/dataset.h"
#include "data/query.h"
#include "index/topk.h"
#include "observability/trace.h"

namespace wsk {

// One segment's contribution to a merged traversal.
struct MergedSegment {
  const TopKSource* source = nullptr;
  // nullptr: every object in the segment is visible.
  const ObjectVisibility* visibility = nullptr;
};

class MergedTopKSource : public TopKSource {
 public:
  // 64 segment namespaces of 2^26 local pages each; kVirtualRoot sits just
  // below kInvalidPageId, outside every namespace.
  static constexpr PageId kVirtualRoot = 0xfffffffeu;
  static constexpr uint32_t kSegmentShift = 26;

  // `extras` are borrowed pointers into delta-segment entries (stable for
  // the snapshot's lifetime); callers pass only visible objects. `trace`
  // (optional, borrowed) receives the segment.* counters.
  MergedTopKSource(std::vector<MergedSegment> segments,
                   std::vector<const SpatialObject*> extras, double diagonal,
                   TraceRecorder* trace = nullptr);

  PageId SearchRoot() const override;
  Status ExpandNode(PageId node, const SpatialKeywordQuery& query,
                    bool use_cache, std::vector<SearchEntry>* out)
      const override;
  // Delegates the shared expansion to the owning segment's source (one
  // decode for the whole batch), then re-applies the per-segment namespace
  // and visibility transform per query. The virtual root stays per-query:
  // delta objects are scored per query anyway (docs/BATCHING.md).
  Status ExpandNodeBatch(PageId node,
                         const SpatialKeywordQuery* const* queries,
                         std::vector<SearchEntry>* const* outs, size_t count,
                         bool use_cache) const override;

 private:
  static constexpr PageId kLocalMask = (1u << kSegmentShift) - 1;

  std::vector<MergedSegment> segments_;
  std::vector<const SpatialObject*> extras_;
  double diagonal_;
  TraceRecorder* trace_;
};

}  // namespace wsk

#endif  // WSK_SEGMENT_MERGED_SOURCE_H_
