#include "segment/delta_segment.h"

#include "common/macros.h"

namespace wsk {

DeltaSegment::DeltaSegment(uint32_t capacity)
    : capacity_(capacity), entries_(new Entry[capacity]) {
  WSK_CHECK_MSG(capacity > 0, "delta segment capacity must be positive");
}

uint32_t DeltaSegment::Add(SpatialObject object, uint64_t add_seq) {
  const uint32_t index = size_.load(std::memory_order_relaxed);
  WSK_CHECK_MSG(index < capacity_, "delta segment overflow");
  Entry& e = entries_[index];
  e.object = std::move(object);
  e.add_seq = add_seq;
  e.del_seq.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    for (TermId t : e.object.doc) postings_[t].push_back(index);
    by_id_[e.object.id].push_back(index);
  }
  size_.store(index + 1, std::memory_order_release);
  return index;
}

void DeltaSegment::MarkDeleted(uint32_t index, uint64_t del_seq) {
  WSK_CHECK(index < size());
  entries_[index].del_seq.store(del_seq, std::memory_order_release);
}

uint32_t DeltaSegment::FindLatest(ObjectId id, uint64_t seq) const {
  std::vector<uint32_t> indices;
  {
    std::lock_guard<std::mutex> lock(map_mu_);
    auto it = by_id_.find(id);
    if (it == by_id_.end()) return kNotFound;
    indices = it->second;
  }
  for (auto it = indices.rbegin(); it != indices.rend(); ++it) {
    const Entry& e = entries_[*it];
    if (e.add_seq > seq) continue;
    const uint64_t del = e.del_seq.load(std::memory_order_relaxed);
    if (del != 0 && del <= seq) continue;
    return *it;
  }
  return kNotFound;
}

const SpatialObject* DeltaSegment::FindVisible(ObjectId id,
                                               uint64_t seq) const {
  const uint32_t index = FindLatest(id, seq);
  return index == kNotFound ? nullptr : &entries_[index].object;
}

uint32_t DeltaSegment::CountVisible(uint64_t seq) const {
  uint32_t count = 0;
  ForEachVisible(seq, [&count](const Entry&) { ++count; });
  return count;
}

uint32_t DeltaSegment::VisibleDocFrequency(TermId term, uint64_t seq) const {
  uint32_t count = 0;
  ForEachVisibleWithTerm(term, seq, [&count](const Entry&) { ++count; });
  return count;
}

}  // namespace wsk
