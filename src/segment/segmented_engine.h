// SegmentedEngine: the live-dataset QueryBackend (docs/SEGMENTS.md).
//
// Wraps a SegmentManager and answers the full query surface over
// point-in-time snapshots: top-k and the BS/AdvancedBS rank traversals run
// on a MergedTopKSource over the frozen SetR-trees plus the delta objects;
// the KcR-based algorithm traverses every frozen KcR-tree at once with
// per-segment tombstone masks and the delta objects as exactly-scored
// extras (whynot_kcr.h). The SDist normalizer is pinned to the seed
// dataset's diagonal at build time, so scores stay comparable across
// segments and across the dataset's whole lifetime.
//
// Unlike WhyNotEngine, the engine owns its vocabulary (a copy of the
// seed's, so term ids keep matching the seed) and does not reference the
// seed dataset after Build returns.
#ifndef WSK_SEGMENT_SEGMENTED_ENGINE_H_
#define WSK_SEGMENT_SEGMENTED_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/backend.h"
#include "segment/merged_source.h"
#include "segment/segment_manager.h"

namespace wsk {

// ObjectStore over one snapshot: id lookups resolve newest-first across
// active / sealed / frozen segments under the snapshot's visibility rule.
// The snapshot's shared_ptr keeps every segment alive, so returned object
// pointers stay valid for the store's lifetime.
class SnapshotStore : public ObjectStore {
 public:
  SnapshotStore(const Vocabulary* vocabulary,
                SegmentManager::Snapshot snapshot);

  const SpatialObject* FindObject(ObjectId id) const override;
  size_t num_objects() const override { return num_objects_; }
  const Vocabulary& vocabulary() const override { return *vocabulary_; }

  const SegmentManager::Snapshot& snapshot() const { return snapshot_; }

 private:
  const Vocabulary* vocabulary_;
  SegmentManager::Snapshot snapshot_;
  size_t num_objects_ = 0;
};

class SegmentedEngine : public QueryBackend {
 public:
  struct Config {
    std::string work_dir = "/tmp";
    uint32_t page_size = kDefaultPageSize;
    size_t buffer_bytes = 4u << 20;  // per index file, per segment
    uint32_t node_capacity = 100;
    SimilarityModel model = SimilarityModel::kJaccard;
    size_t node_cache_bytes = 8u << 20;  // shared across all segments
    // Merge policy knobs (docs/SEGMENTS.md "Merge policy").
    uint32_t delta_capacity = 4096;
    bool auto_merge = true;
    // When set, the engine interns and records document frequencies
    // through this externally owned vocabulary instead of copying the
    // seed's. The shard coordinator points every shard engine at one
    // global vocabulary so term ids and corpus-wide df stay identical to
    // an unsharded engine (docs/SHARDING.md). Must outlive the engine.
    Vocabulary* shared_vocabulary = nullptr;
  };

  // Seeds the engine with `seed`'s objects as the initial frozen segment
  // and a copy of its vocabulary; `seed` is not referenced afterwards.
  static StatusOr<std::unique_ptr<SegmentedEngine>> Build(const Dataset& seed,
                                                          const Config& config);

  ~SegmentedEngine() override;
  SegmentedEngine(const SegmentedEngine&) = delete;
  SegmentedEngine& operator=(const SegmentedEngine&) = delete;

  // --- QueryBackend query surface (thread-safe) ---

  StatusOr<std::vector<ScoredObject>> TopK(
      const SpatialKeywordQuery& query, const CancelToken* cancel = nullptr,
      TraceRecorder* trace = nullptr) const override;
  // One snapshot + one shared merged-source walk for all items; per-item
  // results bit-identical to TopK against that snapshot (docs/BATCHING.md).
  std::vector<BackendBatchResult> TopKBatch(
      const std::vector<BackendBatchItem>& items,
      TraceRecorder* trace = nullptr) const override;
  StatusOr<WhyNotResult> Answer(WhyNotAlgorithm algorithm,
                                const SpatialKeywordQuery& query,
                                const std::vector<ObjectId>& missing,
                                const WhyNotOptions& options) const override;

  BackendIoSnapshot io_snapshot() const override;
  NodeCache* node_cache() const override { return node_cache_.get(); }
  uint64_t dataset_version() const override;
  SegmentCountersSnapshot segment_counters() const override;

  // --- QueryBackend mutation surface (thread-safe, serialized) ---

  StatusOr<ObjectId> Insert(
      Point loc, const std::vector<std::string>& keywords) const override;
  Status Update(ObjectId id, Point loc,
                const std::vector<std::string>& keywords) const override;
  Status Delete(ObjectId id) const override;

  // Insert under a caller-chosen id (the shard coordinator allocates ids
  // globally so sharded and unsharded runs assign identical ids).
  StatusOr<ObjectId> InsertWithId(
      ObjectId id, Point loc,
      const std::vector<std::string>& keywords) const;

  // --- live-dataset extras ---

  // Synchronous compaction (tests, CLI, benchmarks).
  Status ForceMerge() const { return manager_->ForceMerge(); }

  // R(object, query) over the current snapshot (Eqn 3).
  StatusOr<uint32_t> Rank(const SpatialKeywordQuery& query,
                          ObjectId object) const;

  SegmentManager::Snapshot GetSnapshot() const {
    return manager_->GetSnapshot();
  }
  SegmentManager* manager() const { return manager_.get(); }
  const Vocabulary& vocabulary() const { return *vocab(); }
  double diagonal() const { return manager_->diagonal(); }
  const Config& config() const { return config_; }

  // Per-query traversal state: visibility filters must outlive the merged
  // sources that point at them. Public so the shard coordinator can
  // concatenate per-shard plans into one cross-shard merged source.
  struct QueryPlan {
    SegmentManager::Snapshot snapshot;
    std::vector<std::unique_ptr<FrozenVisibility>> visibility;
    std::vector<const SpatialObject*> extras;
    std::vector<MergedSegment> setr_segments;
    KcrMultiSource kcr;
  };
  QueryPlan CollectPlan(bool want_kcr) const { return MakePlan(want_kcr); }

 private:
  SegmentedEngine() = default;

  QueryPlan MakePlan(bool want_kcr) const;

  // The interning vocabulary: shared (coordinator-owned) or this engine's
  // own copy of the seed's.
  Vocabulary* vocab() const {
    return shared_vocab_ != nullptr ? shared_vocab_ : vocabulary_.get();
  }

  Config config_;
  Vocabulary* shared_vocab_ = nullptr;
  std::unique_ptr<Vocabulary> vocabulary_;
  std::unique_ptr<NodeCache> node_cache_;
  std::unique_ptr<ThreadPool> merge_pool_;
  std::unique_ptr<SegmentManager> manager_;  // declared last: drains merges
};

}  // namespace wsk

#endif  // WSK_SEGMENT_SEGMENTED_ENGINE_H_
