// In-memory mutable segment (docs/SEGMENTS.md).
//
// The write head of a live dataset: a bounded, append-only array of
// versioned entries. Every mutation carries the manager-issued sequence
// number that created it; an entry is visible to a snapshot at sequence S
// iff it was added at or before S and not tombstoned at or before S:
//
//   add_seq <= S  &&  (del_seq == 0 || del_seq > S)
//
// Concurrency contract: all writes (Add, MarkDeleted) happen under the
// SegmentManager's writer mutex, one writer at a time. Readers never take
// that mutex — they acquire-load size() once and scan entries [0, size);
// entry payloads are fully written before the size is release-published,
// and tombstones are atomic stores readers may observe at any time (the
// visibility rule makes late observation harmless: a tombstone's sequence
// is always above the reader's snapshot). Sealed deltas simply stop
// receiving Add calls; tombstones keep landing until the segment is merged
// away.
//
// Entries are stored in a fixed preallocated array (atomics pin them in
// place), so `const SpatialObject*` pointers into a delta stay valid for
// the lifetime of the segment — snapshots hand such pointers to the query
// algorithms as exactly-scored extra objects.
#ifndef WSK_SEGMENT_DELTA_SEGMENT_H_
#define WSK_SEGMENT_DELTA_SEGMENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"

namespace wsk {

class DeltaSegment {
 public:
  struct Entry {
    SpatialObject object;
    uint64_t add_seq = 0;
    std::atomic<uint64_t> del_seq{0};  // 0 = live
  };

  explicit DeltaSegment(uint32_t capacity);

  DeltaSegment(const DeltaSegment&) = delete;
  DeltaSegment& operator=(const DeltaSegment&) = delete;

  uint32_t capacity() const { return capacity_; }
  bool full() const { return size_.load(std::memory_order_relaxed) >= capacity_; }

  // --- writer side (under the manager's writer mutex) ---

  // Appends a new version; the segment must not be full. Returns the entry
  // index. Publishes the entry with a release store of the size, so any
  // reader that observes the new size sees the payload complete.
  uint32_t Add(SpatialObject object, uint64_t add_seq);

  // Tombstones the entry at `index` as of `del_seq`.
  void MarkDeleted(uint32_t index, uint64_t del_seq);

  // Newest entry holding `id` that is visible at snapshot `seq` (writers
  // pass the sequence *preceding* their mutation to find the version they
  // are superseding). Returns the entry index or kNotFound.
  static constexpr uint32_t kNotFound = 0xffffffffu;
  uint32_t FindLatest(ObjectId id, uint64_t seq) const;

  // --- reader side (lock-free over the entry array) ---

  uint32_t size() const { return size_.load(std::memory_order_acquire); }
  const Entry& entry(uint32_t index) const { return entries_[index]; }

  // Newest version of `id` visible at snapshot `seq`, or nullptr. At most
  // one version per id is visible at any sequence (writers tombstone the
  // predecessor in the same mutation that adds a successor).
  const SpatialObject* FindVisible(ObjectId id, uint64_t seq) const;

  // Invokes fn(const Entry&) for every entry visible at `seq`, in insertion
  // order.
  template <typename Fn>
  void ForEachVisible(uint64_t seq, Fn&& fn) const {
    const uint32_t n = size();
    for (uint32_t i = 0; i < n; ++i) {
      const Entry& e = entries_[i];
      if (e.add_seq > seq) continue;
      const uint64_t del = e.del_seq.load(std::memory_order_relaxed);
      if (del != 0 && del <= seq) continue;
      fn(e);
    }
  }

  uint32_t CountVisible(uint64_t seq) const;

  // --- inverted keyword map ---
  //
  // term -> indices of entries whose document contains the term (insertion
  // order, duplicates impossible: each entry is indexed once at Add).
  // Guarded by its own mutex so readers (df-reconciliation checks, term
  // scans) can consult it while a writer appends.

  // Invokes fn(const Entry&) for every *visible* entry containing `term`.
  template <typename Fn>
  void ForEachVisibleWithTerm(TermId term, uint64_t seq, Fn&& fn) const {
    std::vector<uint32_t> indices;
    {
      std::lock_guard<std::mutex> lock(map_mu_);
      auto it = postings_.find(term);
      if (it == postings_.end()) return;
      indices = it->second;
    }
    for (uint32_t i : indices) {
      const Entry& e = entries_[i];
      if (e.add_seq > seq) continue;
      const uint64_t del = e.del_seq.load(std::memory_order_relaxed);
      if (del != 0 && del <= seq) continue;
      fn(e);
    }
  }

  // Number of visible documents containing `term` (delta-side document
  // frequency; the differential tests reconcile delta + frozen df against
  // the vocabulary's live n_t).
  uint32_t VisibleDocFrequency(TermId term, uint64_t seq) const;

 private:
  const uint32_t capacity_;
  std::unique_ptr<Entry[]> entries_;
  std::atomic<uint32_t> size_{0};

  mutable std::mutex map_mu_;
  std::unordered_map<TermId, std::vector<uint32_t>> postings_;
  std::unordered_map<ObjectId, std::vector<uint32_t>> by_id_;
};

}  // namespace wsk

#endif  // WSK_SEGMENT_DELTA_SEGMENT_H_
