#include "segment/segment_manager.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/timer.h"

namespace wsk {

SegmentManager::SegmentManager(const Options& options, double diagonal,
                               Vocabulary* vocabulary, NodeCache* node_cache,
                               ThreadPool* merge_pool)
    : options_(options),
      diagonal_(diagonal),
      vocabulary_(vocabulary),
      node_cache_(node_cache),
      merge_pool_(merge_pool) {
  WSK_CHECK(vocabulary_ != nullptr);
  WSK_CHECK(merge_pool_ != nullptr);
  WSK_CHECK(diagonal_ > 0.0);
  auto view = std::make_shared<SegmentView>();
  view->active = std::make_shared<DeltaSegment>(options_.delta_capacity);
  current_ = std::move(view);
}

SegmentManager::~SegmentManager() {
  std::unique_lock<std::mutex> lock(writer_mu_);
  shutdown_ = true;  // suppresses pending-merge rescheduling
  merge_cv_.wait(lock, [this] { return !merge_running_; });
}

Status SegmentManager::SeedFrozen(std::vector<SpatialObject> objects) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  WSK_CHECK_MSG(next_seq_ == 0 && current_->frozen.empty() &&
                    current_->sealed.empty() && current_->active->size() == 0,
                "SeedFrozen must run on a pristine manager");
  ObjectId max_id = 0;
  for (const SpatialObject& o : objects) max_id = std::max(max_id, o.id + 1);
  const size_t count = objects.size();
  auto next = std::make_shared<SegmentView>();
  if (!objects.empty()) {
    FrozenSegment::Options seg_options;
    seg_options.work_dir = options_.work_dir;
    seg_options.page_size = options_.page_size;
    seg_options.buffer_bytes = options_.buffer_bytes;
    seg_options.node_capacity = options_.node_capacity;
    seg_options.model = options_.model;
    seg_options.node_format = options_.node_format;
    seg_options.mmap_reads = options_.mmap_reads;
    StatusOr<std::shared_ptr<FrozenSegment>> built = FrozenSegment::Build(
        std::move(objects), diagonal_, seg_options, node_cache_, &retired_);
    if (!built.ok()) return built.status();
    next->frozen.push_back(std::move(built).value());
  }
  next->active = current_->active;
  PublishViewLocked(std::move(next));
  next_id_ = max_id;
  live_count_.store(count, std::memory_order_relaxed);
  return Status::Ok();
}

SegmentManager::Snapshot SegmentManager::GetSnapshot() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    snap.view = current_;
  }
  snap.seq = snap.view->seq.load(std::memory_order_acquire);
  return snap;
}

uint64_t SegmentManager::current_seq() const { return GetSnapshot().seq; }

StatusOr<ObjectId> SegmentManager::Insert(Point loc, KeywordSet doc,
                                          ObjectId forced_id) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  ObjectId id;
  if (forced_id != kInvalidObjectId) {
    if (LocateCurrentLocked(forced_id, next_seq_).object != nullptr) {
      return Status::InvalidArgument("forced insert id is already live");
    }
    id = forced_id;
    next_id_ = std::max(next_id_, forced_id + 1);
  } else {
    id = next_id_++;
  }
  const uint64_t seq = next_seq_ + 1;
  EnsureActiveSpaceLocked();
  vocabulary_->RecordDocument(doc);
  current_->active->Add(SpatialObject{id, loc, std::move(doc)}, seq);
  next_seq_ = seq;
  current_->seq.store(seq, std::memory_order_release);
  live_count_.fetch_add(1, std::memory_order_relaxed);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  MaybeScheduleMergeLocked();
  return id;
}

Status SegmentManager::Update(ObjectId id, Point loc, KeywordSet doc) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const Located cur = LocateCurrentLocked(id, next_seq_);
  if (cur.object == nullptr) {
    return Status::NotFound("no live object with this id");
  }
  const uint64_t seq = next_seq_ + 1;
  EnsureActiveSpaceLocked();
  vocabulary_->UnrecordDocument(cur.object->doc);
  vocabulary_->RecordDocument(doc);
  if (cur.delta != nullptr) {
    cur.delta->MarkDeleted(cur.delta_index, seq);
  } else {
    WSK_CHECK(cur.frozen->Shadow(id, seq));
  }
  current_->active->Add(SpatialObject{id, loc, std::move(doc)}, seq);
  next_seq_ = seq;
  current_->seq.store(seq, std::memory_order_release);
  updates_.fetch_add(1, std::memory_order_relaxed);
  MaybeScheduleMergeLocked();
  return Status::Ok();
}

Status SegmentManager::Delete(ObjectId id) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const Located cur = LocateCurrentLocked(id, next_seq_);
  if (cur.object == nullptr) {
    return Status::NotFound("no live object with this id");
  }
  const uint64_t seq = next_seq_ + 1;
  vocabulary_->UnrecordDocument(cur.object->doc);
  if (cur.delta != nullptr) {
    cur.delta->MarkDeleted(cur.delta_index, seq);
  } else {
    WSK_CHECK(cur.frozen->Shadow(id, seq));
  }
  next_seq_ = seq;
  current_->seq.store(seq, std::memory_order_release);
  live_count_.fetch_sub(1, std::memory_order_relaxed);
  deletes_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

SegmentManager::Located SegmentManager::LocateCurrentLocked(
    ObjectId id, uint64_t at_seq) const {
  Located found;
  // Newest first: active, sealed (newest to oldest), frozen (newest to
  // oldest). At most one version is visible, so the first hit is it.
  const uint32_t index = current_->active->FindLatest(id, at_seq);
  if (index != DeltaSegment::kNotFound) {
    found.delta = current_->active;
    found.delta_index = index;
    found.object = &current_->active->entry(index).object;
    return found;
  }
  for (auto it = current_->sealed.rbegin(); it != current_->sealed.rend();
       ++it) {
    const uint32_t i = (*it)->FindLatest(id, at_seq);
    if (i != DeltaSegment::kNotFound) {
      found.delta = *it;
      found.delta_index = i;
      found.object = &(*it)->entry(i).object;
      return found;
    }
  }
  for (auto it = current_->frozen.rbegin(); it != current_->frozen.rend();
       ++it) {
    if ((*it)->VisibleAt(id, at_seq)) {
      found.frozen = *it;
      found.object = (*it)->Find(id);
      return found;
    }
  }
  return found;
}

void SegmentManager::RotateLocked() {
  auto next = std::make_shared<SegmentView>();
  next->frozen = current_->frozen;
  next->sealed = current_->sealed;
  next->sealed.push_back(current_->active);
  next->active = std::make_shared<DeltaSegment>(options_.delta_capacity);
  PublishViewLocked(std::move(next));
  rotations_.fetch_add(1, std::memory_order_relaxed);
}

void SegmentManager::EnsureActiveSpaceLocked() {
  if (current_->active->full()) RotateLocked();
}

void SegmentManager::PublishViewLocked(std::shared_ptr<SegmentView> next) {
  next->seq.store(next_seq_, std::memory_order_release);
  std::lock_guard<std::mutex> lock(view_mu_);
  current_ = std::move(next);
}

void SegmentManager::MaybeScheduleMergeLocked() {
  if (!options_.auto_merge || shutdown_) return;
  if (current_->sealed.empty()) return;
  if (merge_running_) {
    merge_pending_ = true;
    return;
  }
  merge_running_ = true;
  merge_pool_->Submit([this] { RunMerge(); });
}

Status SegmentManager::ForceMerge() {
  std::unique_lock<std::mutex> lock(writer_mu_);
  const bool dirty =
      current_->frozen.size() > 1 || !current_->sealed.empty() ||
      current_->active->size() > 0 ||
      (!current_->frozen.empty() && current_->frozen[0]->shadow_total() > 0);
  if (merge_running_) {
    // Join the running merge, then run one more pass covering this call
    // point (the running merge's watermark may predate it).
    merge_pending_ = true;
  } else if (dirty) {
    merge_running_ = true;
    merge_pool_->Submit([this] { RunMerge(); });
  } else {
    return Status::Ok();
  }
  merge_cv_.wait(lock, [this] { return !merge_running_ && !merge_pending_; });
  return Status::Ok();
}

void SegmentManager::RunMerge() {
  // One pass = rotate + build + swap; the busy-time counters make merge
  // stalls attributable from the service's wsk_bg_* metrics.
  const Timer merge_timer;
  const auto account_pass = [&] {
    const uint64_t us = static_cast<uint64_t>(merge_timer.ElapsedMicros());
    merge_busy_us_.fetch_add(us, std::memory_order_relaxed);
    merge_last_us_.store(us, std::memory_order_relaxed);
  };
  std::vector<std::shared_ptr<FrozenSegment>> in_frozen;
  std::vector<std::shared_ptr<DeltaSegment>> in_sealed;
  uint64_t watermark = 0;
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    WSK_CHECK(merge_running_);
    // Seal the write head so every input stops receiving additions;
    // tombstones keep landing on the inputs and are replayed at the swap.
    if (current_->active->size() > 0) RotateLocked();
    watermark = next_seq_;
    in_frozen = current_->frozen;
    in_sealed = current_->sealed;
    hook = before_swap_hook_;
  }

  // Build phase (unlocked): the merged object table = everything visible at
  // the watermark, in id order so a from-scratch rebuild of the same
  // logical set packs bit-identical trees.
  std::vector<SpatialObject> objects;
  for (const auto& frozen : in_frozen) {
    const std::vector<SpatialObject>& table = frozen->objects();
    for (uint32_t i = 0; i < table.size(); ++i) {
      const uint64_t del = frozen->shadow_seq(i);
      if (del == 0 || del > watermark) objects.push_back(table[i]);
    }
  }
  for (const auto& sealed : in_sealed) {
    sealed->ForEachVisible(watermark, [&objects](const DeltaSegment::Entry& e) {
      objects.push_back(e.object);
    });
  }
  std::sort(objects.begin(), objects.end(),
            [](const SpatialObject& a, const SpatialObject& b) {
              return a.id < b.id;
            });

  std::shared_ptr<FrozenSegment> merged;
  if (!objects.empty()) {
    FrozenSegment::Options seg_options;
    seg_options.work_dir = options_.work_dir;
    seg_options.page_size = options_.page_size;
    seg_options.buffer_bytes = options_.buffer_bytes;
    seg_options.node_capacity = options_.node_capacity;
    seg_options.model = options_.model;
    seg_options.node_format = options_.node_format;
    seg_options.mmap_reads = options_.mmap_reads;
    StatusOr<std::shared_ptr<FrozenSegment>> built = FrozenSegment::Build(
        std::move(objects), diagonal_, seg_options, node_cache_, &retired_);
    if (!built.ok()) {
      // Failed merges leave the published view untouched; the inputs stay
      // live and a later merge retries.
      std::lock_guard<std::mutex> lock(writer_mu_);
      account_pass();
      merge_running_ = false;
      merge_pending_ = false;
      merge_cv_.notify_all();
      return;
    }
    merged = std::move(built).value();
  }

  if (hook) hook();  // mid-merge window for tests

  bool reschedule = false;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    WSK_CHECK_MSG(current_->frozen.size() == in_frozen.size(),
                  "frozen set changed under a running merge");
    // Replay tombstones that landed on the inputs after the watermark. Any
    // such object was visible at the watermark (its predecessor versions
    // were already dead), so it is present in the merged table.
    if (merged != nullptr) {
      uint64_t replayed = 0;
      for (const auto& frozen : in_frozen) {
        const std::vector<SpatialObject>& table = frozen->objects();
        for (uint32_t i = 0; i < table.size(); ++i) {
          const uint64_t del = frozen->shadow_seq(i);
          if (del > watermark) {
            WSK_CHECK(merged->Shadow(table[i].id, del));
            ++replayed;
          }
        }
      }
      for (const auto& sealed : in_sealed) {
        const uint32_t n = sealed->size();
        for (uint32_t i = 0; i < n; ++i) {
          const DeltaSegment::Entry& e = sealed->entry(i);
          const uint64_t del = e.del_seq.load(std::memory_order_relaxed);
          if (del > watermark) {
            WSK_CHECK(e.add_seq <= watermark);
            WSK_CHECK(merged->Shadow(e.object.id, del));
            ++replayed;
          }
        }
      }
      tombstones_replayed_.fetch_add(replayed, std::memory_order_relaxed);
    }
    auto next = std::make_shared<SegmentView>();
    if (merged != nullptr) next->frozen.push_back(std::move(merged));
    // Deltas sealed after the merge started survive the swap.
    next->sealed.assign(current_->sealed.begin() + in_sealed.size(),
                        current_->sealed.end());
    next->active = current_->active;
    next->seq.store(next_seq_, std::memory_order_release);
    {
      // Fold the inputs' I/O and swap the view in one view_mu_ critical
      // section: io_snapshot() reads under the same mutex, so it sees
      // either (old view, unfolded) or (new view, folded) — the aggregate
      // counters neither dip nor double-count across the swap. Destructors
      // later fold only post-swap growth, which is monotone.
      std::lock_guard<std::mutex> view_lock(view_mu_);
      for (const auto& frozen : in_frozen) frozen->FoldIntoRetired();
      current_ = std::move(next);
    }
    merges_.fetch_add(1, std::memory_order_relaxed);
    account_pass();
    // Drop the merge's own input references before signaling completion:
    // with no snapshots outstanding, ForceMerge callers then observe the
    // inputs fully retired (node-cache entries erased, I/O folded), not
    // lingering on this worker's stack.
    in_frozen.clear();
    in_sealed.clear();
    merge_pending_ = merge_pending_ && !shutdown_;
    reschedule = merge_pending_;
    merge_pending_ = false;
    if (reschedule) {
      merge_pool_->Submit([this] { RunMerge(); });
    } else {
      merge_running_ = false;
    }
    merge_cv_.notify_all();
  }
}

SegmentCountersSnapshot SegmentManager::counters() const {
  SegmentCountersSnapshot snap;
  snap.valid = true;
  snap.inserts = inserts_.load(std::memory_order_relaxed);
  snap.updates = updates_.load(std::memory_order_relaxed);
  snap.deletes = deletes_.load(std::memory_order_relaxed);
  snap.merges = merges_.load(std::memory_order_relaxed);
  snap.rotations = rotations_.load(std::memory_order_relaxed);
  snap.segments_retired =
      retired_.segments_retired.load(std::memory_order_relaxed);
  snap.merge_busy_us = merge_busy_us_.load(std::memory_order_relaxed);
  snap.merge_last_us = merge_last_us_.load(std::memory_order_relaxed);
  snap.tombstones_replayed =
      tombstones_replayed_.load(std::memory_order_relaxed);
  const Snapshot s = GetSnapshot();
  snap.frozen_segments = s.view->frozen.size();
  uint64_t delta_objects = s.view->active->size();
  for (const auto& sealed : s.view->sealed) delta_objects += sealed->size();
  snap.delta_objects = delta_objects;
  snap.live_objects = live_count_.load(std::memory_order_relaxed);
  return snap;
}

BackendIoSnapshot SegmentManager::io_snapshot() const {
  // Under view_mu_ so a concurrent merge swap (which folds its inputs into
  // the retired accumulator in the same critical section) can never be
  // observed half-done.
  std::lock_guard<std::mutex> lock(view_mu_);
  BackendIoSnapshot snap;
  snap.setr_physical = retired_.setr_physical.load(std::memory_order_relaxed);
  snap.setr_logical = retired_.setr_logical.load(std::memory_order_relaxed);
  snap.setr_mapped = retired_.setr_mapped.load(std::memory_order_relaxed);
  snap.setr_cache_hits =
      retired_.setr_cache_hits.load(std::memory_order_relaxed);
  snap.setr_cache_misses =
      retired_.setr_cache_misses.load(std::memory_order_relaxed);
  snap.kcr_physical = retired_.kcr_physical.load(std::memory_order_relaxed);
  snap.kcr_logical = retired_.kcr_logical.load(std::memory_order_relaxed);
  snap.kcr_mapped = retired_.kcr_mapped.load(std::memory_order_relaxed);
  snap.kcr_cache_hits = retired_.kcr_cache_hits.load(std::memory_order_relaxed);
  snap.kcr_cache_misses =
      retired_.kcr_cache_misses.load(std::memory_order_relaxed);
  for (const auto& frozen : current_->frozen) {
    const IoStats& setr = frozen->setr_io();
    const IoStats& kcr = frozen->kcr_io();
    snap.setr_physical += setr.physical_reads();
    snap.setr_logical += setr.logical_reads();
    snap.setr_mapped += setr.mapped_reads();
    snap.setr_cache_hits += setr.node_cache_hits();
    snap.setr_cache_misses += setr.node_cache_misses();
    snap.kcr_physical += kcr.physical_reads();
    snap.kcr_logical += kcr.logical_reads();
    snap.kcr_mapped += kcr.mapped_reads();
    snap.kcr_cache_hits += kcr.node_cache_hits();
    snap.kcr_cache_misses += kcr.node_cache_misses();
  }
  return snap;
}

void SegmentManager::set_before_swap_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  before_swap_hook_ = std::move(hook);
}

}  // namespace wsk
