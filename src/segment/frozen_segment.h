// Sealed on-disk segment (docs/SEGMENTS.md).
//
// An immutable object table with a SetR-tree and a KcR-tree STR-packed over
// it (the existing bulk-load path, pinned to the dataset's global diagonal
// so every segment scores with the same SDist normalizer), each in its own
// paged file with its own buffer pool. The only mutable state is the shadow
// array: one atomic tombstone sequence per object, set when a later
// mutation deletes or supersedes an object that lives here. Queries resolve
// visibility per object against their snapshot sequence; the trees
// themselves are never modified, so decoded-node caching and the shared
// NodeCache remain sound.
//
// Retirement: when the last snapshot referencing a retired segment drops
// it, the destructor (a) erases both trees' entries from the shared
// NodeCache by tree id — their ids are never reused, so no later segment
// can collide — and (b) folds the segment's cumulative I/O counters into
// the manager's retired-I/O accumulator, keeping the backend's aggregate
// counters monotone across merges. Index files are deleted on destruction.
#ifndef WSK_SEGMENT_FROZEN_SEGMENT_H_
#define WSK_SEGMENT_FROZEN_SEGMENT_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/whynot_kcr.h"
#include "data/dataset.h"
#include "index/kcr_tree.h"
#include "index/setr_tree.h"
#include "storage/buffer_pool.h"
#include "storage/node_cache.h"
#include "storage/pager.h"
#include "text/similarity.h"

namespace wsk {

// Retired segments fold their I/O counters here (relaxed atomics; the sums
// are monotone event counts).
struct RetiredIoAccumulator {
  std::atomic<uint64_t> setr_physical{0};
  std::atomic<uint64_t> setr_logical{0};
  std::atomic<uint64_t> setr_mapped{0};
  std::atomic<uint64_t> setr_cache_hits{0};
  std::atomic<uint64_t> setr_cache_misses{0};
  std::atomic<uint64_t> kcr_physical{0};
  std::atomic<uint64_t> kcr_logical{0};
  std::atomic<uint64_t> kcr_mapped{0};
  std::atomic<uint64_t> kcr_cache_hits{0};
  std::atomic<uint64_t> kcr_cache_misses{0};
  std::atomic<uint64_t> segments_retired{0};
};

class FrozenSegment {
 public:
  struct Options {
    std::string work_dir = "/tmp";
    uint32_t page_size = kDefaultPageSize;
    size_t buffer_bytes = 4u << 20;
    uint32_t node_capacity = 100;
    SimilarityModel model = SimilarityModel::kJaccard;
    // Frozen segments are immutable by construction, which makes them the
    // natural home for the compact static node format: smaller files and
    // zero-copy decode. v1 remains available for differential runs.
    uint8_t node_format = kNodeFormatV2;
    // Switch both pagers to mmap-backed reads after the build finalizes.
    // Falls back silently to the buffered pread path if the platform (or
    // an empty file) cannot map.
    bool mmap_reads = true;
  };

  // Builds both trees over `objects` (ids preserved, need not be dense).
  // `node_cache` (optional) is attached to both trees; `retired` (optional)
  // receives the segment's I/O totals at destruction. Both borrowed
  // pointers must outlive the segment.
  static StatusOr<std::shared_ptr<FrozenSegment>> Build(
      std::vector<SpatialObject> objects, double diagonal,
      const Options& options, NodeCache* node_cache,
      RetiredIoAccumulator* retired);

  ~FrozenSegment();
  FrozenSegment(const FrozenSegment&) = delete;
  FrozenSegment& operator=(const FrozenSegment&) = delete;

  const SetRTree& setr() const { return *setr_tree_; }
  const KcrTree& kcr() const { return *kcr_tree_; }

  size_t num_objects() const { return objects_.size(); }
  const std::vector<SpatialObject>& objects() const { return objects_; }

  // The object with `id` regardless of shadow state, or nullptr.
  const SpatialObject* Find(ObjectId id) const;

  bool VisibleAt(ObjectId id, uint64_t seq) const;

  // Tombstone sequence of the object at table position `index`; 0 = live.
  uint64_t shadow_seq(uint32_t index) const {
    return shadow_[index].load(std::memory_order_relaxed);
  }

  // Writer side (under the manager's writer mutex): tombstones `id` as of
  // `del_seq`. Returns false when the id is not in this segment.
  bool Shadow(ObjectId id, uint64_t del_seq);

  // Total tombstones ever applied — an upper bound on the objects hidden
  // from any snapshot, which is what the KcR MinDom slack needs
  // (whynot_kcr.h: an upper bound is sound, tighter is faster).
  uint32_t shadow_total() const {
    return shadow_total_.load(std::memory_order_relaxed);
  }

  // Objects hidden at snapshot `seq` (exact; scans the shadow array, safe
  // against concurrent tombstoning).
  uint32_t ShadowedAt(uint64_t seq) const;

  const IoStats& setr_io() const { return setr_pager_->io_stats(); }
  const IoStats& kcr_io() const { return kcr_pager_->io_stats(); }

  // Folds counter growth since the last fold into the retired accumulator
  // (no double counting: a baseline tracks what was already folded). The
  // manager calls this when the segment leaves the published view, so the
  // backend's aggregate counters never dip while old snapshots wind down;
  // the destructor folds the remainder. Callers must not race this with
  // itself (swap-time call runs under the writer mutex; the destructor runs
  // strictly after, when the last reference drops).
  void FoldIntoRetired();

 private:
  FrozenSegment() = default;

  std::vector<SpatialObject> objects_;
  std::unordered_map<ObjectId, uint32_t> index_;
  std::unique_ptr<std::atomic<uint64_t>[]> shadow_;
  std::atomic<uint32_t> shadow_total_{0};

  std::string setr_path_;
  std::string kcr_path_;
  std::unique_ptr<Pager> setr_pager_;
  std::unique_ptr<Pager> kcr_pager_;
  std::unique_ptr<BufferPool> setr_pool_;
  std::unique_ptr<BufferPool> kcr_pool_;
  std::unique_ptr<SetRTree> setr_tree_;
  std::unique_ptr<KcrTree> kcr_tree_;
  NodeCache* node_cache_ = nullptr;
  RetiredIoAccumulator* retired_ = nullptr;
  IoStats::Snapshot folded_setr_;
  IoStats::Snapshot folded_kcr_;
};

// Exact per-snapshot visibility filter over one frozen segment, handed to
// the KcR traversal (whynot_kcr.h) and the merged top-k source.
class FrozenVisibility : public ObjectVisibility {
 public:
  FrozenVisibility(const FrozenSegment* segment, uint64_t seq)
      : segment_(segment), seq_(seq) {}
  bool IsVisible(ObjectId id) const override {
    return segment_->VisibleAt(id, seq_);
  }

 private:
  const FrozenSegment* segment_;
  uint64_t seq_;
};

}  // namespace wsk

#endif  // WSK_SEGMENT_FROZEN_SEGMENT_H_
