#include "segment/merged_source.h"

#include <limits>

#include "common/macros.h"

namespace wsk {

MergedTopKSource::MergedTopKSource(std::vector<MergedSegment> segments,
                                   std::vector<const SpatialObject*> extras,
                                   double diagonal, TraceRecorder* trace)
    : segments_(std::move(segments)),
      extras_(std::move(extras)),
      diagonal_(diagonal),
      trace_(trace) {
  WSK_CHECK_MSG(segments_.size() < 64, "too many segments for one snapshot");
  for (const MergedSegment& seg : segments_) WSK_CHECK(seg.source != nullptr);
}

PageId MergedTopKSource::SearchRoot() const {
  if (!extras_.empty()) return kVirtualRoot;
  for (const MergedSegment& seg : segments_) {
    if (seg.source->SearchRoot() != kInvalidPageId) return kVirtualRoot;
  }
  return kInvalidPageId;
}

Status MergedTopKSource::ExpandNode(PageId node,
                                    const SpatialKeywordQuery& query,
                                    bool use_cache,
                                    std::vector<SearchEntry>* out) const {
  if (node == kVirtualRoot) {
    // Segment roots at +inf: they are expanded before any object emits, so
    // each segment's own bounds gate the traversal from the first level.
    for (size_t i = 0; i < segments_.size(); ++i) {
      const PageId root = segments_[i].source->SearchRoot();
      if (root == kInvalidPageId) continue;
      WSK_CHECK_MSG(root <= kLocalMask, "segment root outside namespace");
      SearchEntry entry;
      entry.bound = std::numeric_limits<double>::infinity();
      entry.node = static_cast<PageId>((i + 1) << kSegmentShift) | root;
      out->push_back(entry);
    }
    // Delta objects: exact scores, emitted straight into the frontier.
    {
      TraceSpan span(trace_, TraceStage::kDeltaScan);
      for (const SpatialObject* object : extras_) {
        SearchEntry entry;
        entry.bound = Score(*object, query, diagonal_);
        entry.is_object = true;
        entry.object = object->id;
        out->push_back(entry);
      }
    }
    if (trace_ != nullptr) {
      trace_->Add(TraceCounter::kSegmentsVisited,
                  segments_.size() + (extras_.empty() ? 0 : 1));
      trace_->Add(TraceCounter::kDeltaObjectsScanned, extras_.size());
    }
    return Status::Ok();
  }

  const size_t seg_index = (node >> kSegmentShift) - 1;
  WSK_CHECK_MSG(seg_index < segments_.size(), "page outside any segment");
  const MergedSegment& seg = segments_[seg_index];
  std::vector<SearchEntry> scratch;
  WSK_RETURN_IF_ERROR(
      seg.source->ExpandNode(node & kLocalMask, query, use_cache, &scratch));
  for (SearchEntry& entry : scratch) {
    if (entry.is_object) {
      if (seg.visibility != nullptr &&
          !seg.visibility->IsVisible(entry.object)) {
        continue;  // tombstoned at this snapshot
      }
    } else {
      WSK_CHECK_MSG(entry.node <= kLocalMask, "child page outside namespace");
      entry.node =
          static_cast<PageId>((seg_index + 1) << kSegmentShift) | entry.node;
    }
    out->push_back(entry);
  }
  return Status::Ok();
}

Status MergedTopKSource::ExpandNodeBatch(
    PageId node, const SpatialKeywordQuery* const* queries,
    std::vector<SearchEntry>* const* outs, size_t count,
    bool use_cache) const {
  if (node == kVirtualRoot) {
    // Per-query fan-out: the root emits exactly-scored delta objects, which
    // depend on each query individually — nothing physical to amortize.
    for (size_t qi = 0; qi < count; ++qi) {
      WSK_RETURN_IF_ERROR(ExpandNode(node, *queries[qi], use_cache, outs[qi]));
    }
    return Status::Ok();
  }
  const size_t seg_index = (node >> kSegmentShift) - 1;
  WSK_CHECK_MSG(seg_index < segments_.size(), "page outside any segment");
  const MergedSegment& seg = segments_[seg_index];
  std::vector<std::vector<SearchEntry>> scratch(count);
  std::vector<std::vector<SearchEntry>*> scratch_ptrs(count);
  for (size_t qi = 0; qi < count; ++qi) scratch_ptrs[qi] = &scratch[qi];
  WSK_RETURN_IF_ERROR(seg.source->ExpandNodeBatch(
      node & kLocalMask, queries, scratch_ptrs.data(), count, use_cache));
  for (size_t qi = 0; qi < count; ++qi) {
    for (SearchEntry& entry : scratch[qi]) {
      if (entry.is_object) {
        if (seg.visibility != nullptr &&
            !seg.visibility->IsVisible(entry.object)) {
          continue;  // tombstoned at this snapshot
        }
      } else {
        WSK_CHECK_MSG(entry.node <= kLocalMask,
                      "child page outside namespace");
        entry.node =
            static_cast<PageId>((seg_index + 1) << kSegmentShift) | entry.node;
      }
      outs[qi]->push_back(entry);
    }
  }
  return Status::Ok();
}

}  // namespace wsk
