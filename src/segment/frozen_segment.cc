#include "segment/frozen_segment.h"

#include <atomic>
#include <cstdio>

#include <unistd.h>

#include "common/macros.h"

namespace wsk {

namespace {

std::string UniqueSegmentPath(const std::string& work_dir, const char* kind) {
  static std::atomic<uint64_t> counter{0};
  const uint64_t id = counter.fetch_add(1);
  return work_dir + "/wsk_seg_" + std::to_string(getpid()) + "_" +
         std::to_string(id) + "_" + kind + ".idx";
}

}  // namespace

StatusOr<std::shared_ptr<FrozenSegment>> FrozenSegment::Build(
    std::vector<SpatialObject> objects, double diagonal,
    const Options& options, NodeCache* node_cache,
    RetiredIoAccumulator* retired) {
  std::shared_ptr<FrozenSegment> segment(new FrozenSegment());
  segment->objects_ = std::move(objects);
  segment->node_cache_ = node_cache;
  segment->retired_ = retired;

  const size_t n = segment->objects_.size();
  segment->index_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const bool inserted =
        segment->index_
            .emplace(segment->objects_[i].id, static_cast<uint32_t>(i))
            .second;
    WSK_CHECK_MSG(inserted, "duplicate object id in frozen segment");
  }
  segment->shadow_.reset(new std::atomic<uint64_t>[n > 0 ? n : 1]);
  for (size_t i = 0; i < n; ++i) {
    segment->shadow_[i].store(0, std::memory_order_relaxed);
  }

  segment->setr_path_ = UniqueSegmentPath(options.work_dir, "setr");
  segment->kcr_path_ = UniqueSegmentPath(options.work_dir, "kcr");

  StatusOr<std::unique_ptr<Pager>> setr_pager =
      Pager::Create(segment->setr_path_, options.page_size);
  if (!setr_pager.ok()) return setr_pager.status();
  segment->setr_pager_ = std::move(setr_pager).value();
  segment->setr_pool_ = std::make_unique<BufferPool>(
      segment->setr_pager_.get(), options.buffer_bytes);

  StatusOr<std::unique_ptr<Pager>> kcr_pager =
      Pager::Create(segment->kcr_path_, options.page_size);
  if (!kcr_pager.ok()) return kcr_pager.status();
  segment->kcr_pager_ = std::move(kcr_pager).value();
  segment->kcr_pool_ = std::make_unique<BufferPool>(segment->kcr_pager_.get(),
                                                    options.buffer_bytes);

  SetRTree::Options setr_options;
  setr_options.capacity = options.node_capacity;
  setr_options.model = options.model;
  setr_options.format = options.node_format;
  StatusOr<std::unique_ptr<SetRTree>> setr = SetRTree::BulkLoadObjects(
      segment->objects_, diagonal, segment->setr_pool_.get(), setr_options);
  if (!setr.ok()) return setr.status();
  segment->setr_tree_ = std::move(setr).value();

  KcrTree::Options kcr_options;
  kcr_options.capacity = options.node_capacity;
  kcr_options.model = options.model;
  kcr_options.format = options.node_format;
  StatusOr<std::unique_ptr<KcrTree>> kcr = KcrTree::BulkLoadObjects(
      segment->objects_, diagonal, segment->kcr_pool_.get(), kcr_options);
  if (!kcr.ok()) return kcr.status();
  segment->kcr_tree_ = std::move(kcr).value();

  if (options.mmap_reads) {
    // The segment is sealed from here on; map both files read-only. A
    // non-OK result (platform without mmap, empty file) just leaves the
    // buffered pread path in place — correctness is identical.
    (void)segment->setr_pager_->EnableMappedReads();
    (void)segment->kcr_pager_->EnableMappedReads();
  }

  if (node_cache != nullptr) {
    segment->setr_tree_->AttachNodeCache(node_cache);
    segment->kcr_tree_->AttachNodeCache(node_cache);
  }
  return segment;
}

FrozenSegment::~FrozenSegment() {
  if (node_cache_ != nullptr) {
    if (setr_tree_ != nullptr) node_cache_->EraseTree(setr_tree_->cache_tree_id());
    if (kcr_tree_ != nullptr) node_cache_->EraseTree(kcr_tree_->cache_tree_id());
  }
  FoldIntoRetired();
  if (retired_ != nullptr) {
    retired_->segments_retired.fetch_add(1, std::memory_order_relaxed);
  }
  // Trees and pools must close before the backing files are removed.
  setr_tree_.reset();
  kcr_tree_.reset();
  setr_pool_.reset();
  kcr_pool_.reset();
  setr_pager_.reset();
  kcr_pager_.reset();
  if (!setr_path_.empty()) std::remove(setr_path_.c_str());
  if (!kcr_path_.empty()) std::remove(kcr_path_.c_str());
}

const SpatialObject* FrozenSegment::Find(ObjectId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &objects_[it->second];
}

bool FrozenSegment::VisibleAt(ObjectId id, uint64_t seq) const {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  const uint64_t del = shadow_[it->second].load(std::memory_order_relaxed);
  return del == 0 || del > seq;
}

bool FrozenSegment::Shadow(ObjectId id, uint64_t del_seq) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  uint64_t expected = 0;
  if (!shadow_[it->second].compare_exchange_strong(
          expected, del_seq, std::memory_order_release,
          std::memory_order_relaxed)) {
    return false;  // already tombstoned (earlier sequence wins)
  }
  shadow_total_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FrozenSegment::FoldIntoRetired() {
  if (retired_ == nullptr || setr_pager_ == nullptr || kcr_pager_ == nullptr) {
    return;
  }
  const IoStats::Snapshot s = setr_pager_->io_stats().TakeSnapshot();
  const IoStats::Snapshot k = kcr_pager_->io_stats().TakeSnapshot();
  retired_->setr_physical.fetch_add(
      s.physical_reads - folded_setr_.physical_reads,
      std::memory_order_relaxed);
  retired_->setr_logical.fetch_add(s.logical_reads - folded_setr_.logical_reads,
                                   std::memory_order_relaxed);
  retired_->setr_mapped.fetch_add(s.mapped_reads - folded_setr_.mapped_reads,
                                  std::memory_order_relaxed);
  retired_->setr_cache_hits.fetch_add(
      s.node_cache_hits - folded_setr_.node_cache_hits,
      std::memory_order_relaxed);
  retired_->setr_cache_misses.fetch_add(
      s.node_cache_misses - folded_setr_.node_cache_misses,
      std::memory_order_relaxed);
  retired_->kcr_physical.fetch_add(
      k.physical_reads - folded_kcr_.physical_reads, std::memory_order_relaxed);
  retired_->kcr_logical.fetch_add(k.logical_reads - folded_kcr_.logical_reads,
                                  std::memory_order_relaxed);
  retired_->kcr_mapped.fetch_add(k.mapped_reads - folded_kcr_.mapped_reads,
                                 std::memory_order_relaxed);
  retired_->kcr_cache_hits.fetch_add(
      k.node_cache_hits - folded_kcr_.node_cache_hits,
      std::memory_order_relaxed);
  retired_->kcr_cache_misses.fetch_add(
      k.node_cache_misses - folded_kcr_.node_cache_misses,
      std::memory_order_relaxed);
  folded_setr_ = s;
  folded_kcr_ = k;
}

uint32_t FrozenSegment::ShadowedAt(uint64_t seq) const {
  uint32_t count = 0;
  const size_t n = objects_.size();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t del = shadow_[i].load(std::memory_order_relaxed);
    if (del != 0 && del <= seq) ++count;
  }
  return count;
}

}  // namespace wsk
