#include "segment/segmented_engine.h"

#include <optional>
#include <utility>

#include "common/macros.h"
#include "core/whynot_bs.h"
#include "core/whynot_kcr.h"
#include "index/batch_topk.h"
#include "index/topk.h"
#include "observability/trace.h"

namespace wsk {

SnapshotStore::SnapshotStore(const Vocabulary* vocabulary,
                             SegmentManager::Snapshot snapshot)
    : vocabulary_(vocabulary), snapshot_(std::move(snapshot)) {
  const SegmentManager::SegmentView& view = *snapshot_.view;
  const uint64_t seq = snapshot_.seq;
  size_t count = view.active->CountVisible(seq);
  for (const auto& sealed : view.sealed) count += sealed->CountVisible(seq);
  for (const auto& frozen : view.frozen) {
    count += frozen->num_objects() - frozen->ShadowedAt(seq);
  }
  num_objects_ = count;
}

const SpatialObject* SnapshotStore::FindObject(ObjectId id) const {
  const SegmentManager::SegmentView& view = *snapshot_.view;
  const uint64_t seq = snapshot_.seq;
  if (const SpatialObject* o = view.active->FindVisible(id, seq)) return o;
  for (auto it = view.sealed.rbegin(); it != view.sealed.rend(); ++it) {
    if (const SpatialObject* o = (*it)->FindVisible(id, seq)) return o;
  }
  for (auto it = view.frozen.rbegin(); it != view.frozen.rend(); ++it) {
    if ((*it)->VisibleAt(id, seq)) return (*it)->Find(id);
  }
  return nullptr;
}

StatusOr<std::unique_ptr<SegmentedEngine>> SegmentedEngine::Build(
    const Dataset& seed, const Config& config) {
  std::unique_ptr<SegmentedEngine> engine(new SegmentedEngine());
  engine->config_ = config;
  if (config.shared_vocabulary != nullptr) {
    engine->shared_vocab_ = config.shared_vocabulary;
  } else {
    engine->vocabulary_ = std::make_unique<Vocabulary>(seed.vocabulary());
  }
  if (config.node_cache_bytes > 0) {
    engine->node_cache_ = std::make_unique<NodeCache>(config.node_cache_bytes);
  }
  engine->merge_pool_ = std::make_unique<ThreadPool>(1);
  SegmentManager::Options options;
  options.work_dir = config.work_dir;
  options.page_size = config.page_size;
  options.buffer_bytes = config.buffer_bytes;
  options.node_capacity = config.node_capacity;
  options.model = config.model;
  options.delta_capacity = config.delta_capacity;
  options.auto_merge = config.auto_merge;
  engine->manager_ = std::make_unique<SegmentManager>(
      options, seed.diagonal(), engine->vocab(),
      engine->node_cache_.get(), engine->merge_pool_.get());
  WSK_RETURN_IF_ERROR(engine->manager_->SeedFrozen(seed.objects()));
  return engine;
}

SegmentedEngine::~SegmentedEngine() = default;

SegmentedEngine::QueryPlan SegmentedEngine::MakePlan(bool want_kcr) const {
  QueryPlan plan;
  plan.snapshot = manager_->GetSnapshot();
  const SegmentManager::SegmentView& view = *plan.snapshot.view;
  const uint64_t seq = plan.snapshot.seq;
  for (const auto& frozen : view.frozen) {
    const FrozenVisibility* vis = nullptr;
    // A tombstone applied after the check would carry a sequence above this
    // snapshot — invisible to the filter anyway — so skipping the filter
    // for shadow-free segments is exact, not just an optimization.
    if (frozen->shadow_total() > 0) {
      plan.visibility.push_back(
          std::make_unique<FrozenVisibility>(frozen.get(), seq));
      vis = plan.visibility.back().get();
    }
    plan.setr_segments.push_back(MergedSegment{&frozen->setr(), vis});
    if (want_kcr) {
      plan.kcr.segments.push_back(
          KcrSegmentSource{&frozen->kcr(), vis, frozen->shadow_total()});
    }
  }
  const auto collect = [&plan](const DeltaSegment::Entry& e) {
    plan.extras.push_back(&e.object);
  };
  for (const auto& sealed : view.sealed) sealed->ForEachVisible(seq, collect);
  view.active->ForEachVisible(seq, collect);
  if (want_kcr) {
    plan.kcr.extras = plan.extras;
    plan.kcr.diagonal = manager_->diagonal();
  }
  return plan;
}

StatusOr<std::vector<ScoredObject>> SegmentedEngine::TopK(
    const SpatialKeywordQuery& query, const CancelToken* cancel,
    TraceRecorder* trace) const {
  TraceSpan root_span(trace, TraceStage::kQuery);
  const QueryPlan plan = MakePlan(/*want_kcr=*/false);
  MergedTopKSource source(plan.setr_segments, plan.extras,
                          manager_->diagonal(), trace);
  return IndexTopK(source, query, cancel, /*use_cache=*/true, trace);
}

std::vector<BackendBatchResult> SegmentedEngine::TopKBatch(
    const std::vector<BackendBatchItem>& items, TraceRecorder* trace) const {
  TraceSpan root_span(trace, TraceStage::kQuery);
  // One snapshot for the whole batch: every item answers against the same
  // point-in-time view, exactly what solo execution at batch-formation time
  // would have seen.
  const QueryPlan plan = MakePlan(/*want_kcr=*/false);
  MergedTopKSource source(plan.setr_segments, plan.extras,
                          manager_->diagonal(), trace);
  std::vector<BatchTopKRequest> requests(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    requests[i].query = items[i].query;
    requests[i].cancel = items[i].cancel;
  }
  std::vector<BatchTopKResult> raw =
      BatchedIndexTopK(source, requests, /*use_cache=*/true, trace);
  std::vector<BackendBatchResult> results(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    results[i].status = std::move(raw[i].status);
    results[i].topk = std::move(raw[i].topk);
  }
  return results;
}

StatusOr<WhyNotResult> SegmentedEngine::Answer(
    WhyNotAlgorithm algorithm, const SpatialKeywordQuery& query,
    const std::vector<ObjectId>& missing, const WhyNotOptions& options) const {
  if (options.cancel != nullptr) {
    WSK_RETURN_IF_ERROR(options.cancel->Check());
  }
  TraceSpan root_span(options.trace, TraceStage::kQuery);
  const bool kcr = algorithm == WhyNotAlgorithm::kKcrBased;
  QueryPlan plan = MakePlan(kcr);
  const SnapshotStore store(vocab(), plan.snapshot);
  const double diagonal = manager_->diagonal();
  const BackendIoSnapshot before = io_snapshot();

  StatusOr<WhyNotResult> result = Status::Internal("unreachable");
  switch (algorithm) {
    case WhyNotAlgorithm::kBasic: {
      WhyNotOptions plain = options;
      plain.opt_early_stop = false;
      plain.opt_enumeration_order = false;
      plain.opt_keyword_filtering = false;
      MergedTopKSource source(plan.setr_segments, plan.extras, diagonal,
                              options.trace);
      result = AnswerWhyNotBasic(store, source, diagonal, query, missing,
                                 plain);
      break;
    }
    case WhyNotAlgorithm::kAdvanced: {
      MergedTopKSource source(plan.setr_segments, plan.extras, diagonal,
                              options.trace);
      result = AnswerWhyNotBasic(store, source, diagonal, query, missing,
                                 options);
      break;
    }
    case WhyNotAlgorithm::kKcrBased: {
      // The rank source mirrors the traversal's segment set over the same
      // visibility filters, so R(M, q') and the dominator bounds agree on
      // what exists.
      std::vector<MergedSegment> kcr_segments;
      kcr_segments.reserve(plan.kcr.segments.size());
      for (const KcrSegmentSource& seg : plan.kcr.segments) {
        kcr_segments.push_back(MergedSegment{seg.tree, seg.visibility});
      }
      MergedTopKSource rank_source(std::move(kcr_segments), plan.extras,
                                   diagonal, options.trace);
      plan.kcr.rank_source = &rank_source;
      result = AnswerWhyNotKcr(store, plan.kcr, query, missing, options);
      break;
    }
  }
  if (result.ok()) {
    // Frozen segments serve node reads from the mmap path by default, so a
    // page access lands in either the physical or the mapped counter —
    // io_reads stays "pages fetched from the index file" in both modes.
    const BackendIoSnapshot after = io_snapshot();
    result.value().stats.io_reads =
        kcr ? (after.kcr_physical - before.kcr_physical) +
                  (after.kcr_mapped - before.kcr_mapped)
            : (after.setr_physical - before.setr_physical) +
                  (after.setr_mapped - before.setr_mapped);
  }
  return result;
}

StatusOr<uint32_t> SegmentedEngine::Rank(const SpatialKeywordQuery& query,
                                         ObjectId object) const {
  const QueryPlan plan = MakePlan(/*want_kcr=*/false);
  const SnapshotStore store(vocab(), plan.snapshot);
  const SpatialObject* o = store.FindObject(object);
  if (o == nullptr) {
    return Status::InvalidArgument("object id not visible in this snapshot");
  }
  const double score = Score(*o, query, manager_->diagonal());
  MergedTopKSource source(plan.setr_segments, plan.extras,
                          manager_->diagonal(), nullptr);
  TopKIterator it(&source, query);
  uint32_t strictly_better = 0;
  std::optional<ScoredObject> next;
  for (;;) {
    WSK_RETURN_IF_ERROR(it.Next(&next));
    if (!next || next->score <= score) break;
    ++strictly_better;
  }
  return strictly_better + 1;
}

BackendIoSnapshot SegmentedEngine::io_snapshot() const {
  return manager_->io_snapshot();
}

uint64_t SegmentedEngine::dataset_version() const {
  return manager_->current_seq();
}

SegmentCountersSnapshot SegmentedEngine::segment_counters() const {
  return manager_->counters();
}

StatusOr<ObjectId> SegmentedEngine::Insert(
    Point loc, const std::vector<std::string>& keywords) const {
  return manager_->Insert(loc, vocab()->InternAll(keywords));
}

StatusOr<ObjectId> SegmentedEngine::InsertWithId(
    ObjectId id, Point loc, const std::vector<std::string>& keywords) const {
  return manager_->Insert(loc, vocab()->InternAll(keywords), id);
}

Status SegmentedEngine::Update(
    ObjectId id, Point loc, const std::vector<std::string>& keywords) const {
  return manager_->Update(id, loc, vocab()->InternAll(keywords));
}

Status SegmentedEngine::Delete(ObjectId id) const {
  return manager_->Delete(id);
}

}  // namespace wsk
