// Segment lifecycle: one active delta, N sealed deltas, M frozen segments,
// and a background merge (docs/SEGMENTS.md).
//
// Concurrency model
// -----------------
// Writers serialize on `writer_mu_`; readers never take it. The published
// state is a SegmentView — an immutable list-of-segments object plus an
// atomic sequence watermark. A reader snapshot is two loads: copy the view
// pointer (under the tiny `view_mu_`), then acquire-load the view's
// watermark. Every mutation with sequence <= the watermark is fully
// published (the writer release-stores the watermark after writing the
// mutation's data), and anything newer is filtered out by the visibility
// rule, so a snapshot is a consistent point-in-time database. The
// shared_ptr copies keep every segment of the snapshot alive until the last
// reader drops it — epoch-based reclamation by reference count, so readers
// never block writers and merges never invalidate in-flight queries.
//
// Merge protocol (no mutation log needed)
// ---------------------------------------
// 1. Under writer_mu_: rotate the active delta into the sealed list, record
//    the merge watermark s_m = current sequence, and take the input set =
//    all frozen + all sealed segments. New mutations keep flowing into a
//    fresh active delta (and tombstones keep landing on input segments).
// 2. Unlocked: collect every object visible at s_m from the inputs (sorted
//    by id, so a from-scratch rebuild over the same logical set produces
//    bit-identical trees) and STR-pack a new frozen segment F'.
// 3. Under writer_mu_: replay post-s_m tombstones onto F' by scanning the
//    inputs for del_seq > s_m (inputs can gain no *additions* after step 1,
//    so tombstones are the only divergence and they are all still present
//    in the inputs — no log required), then publish a new view
//    {frozen = [F'], sealed = segments sealed after step 1, active, seq}.
// Old-view readers keep the inputs alive; the inputs retire when the last
// snapshot drops, at which point their node-cache entries are erased and
// their I/O counters fold into the retired accumulator.
#ifndef WSK_SEGMENT_SEGMENT_MANAGER_H_
#define WSK_SEGMENT_SEGMENT_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/backend.h"
#include "segment/delta_segment.h"
#include "segment/frozen_segment.h"
#include "storage/node_cache.h"
#include "text/vocabulary.h"

namespace wsk {

class SegmentManager {
 public:
  struct Options {
    std::string work_dir = "/tmp";
    uint32_t page_size = kDefaultPageSize;
    size_t buffer_bytes = 4u << 20;
    uint32_t node_capacity = 100;
    SimilarityModel model = SimilarityModel::kJaccard;
    // Node format and read mode for frozen segments (see
    // FrozenSegment::Options). Deltas are in-memory and unaffected.
    uint8_t node_format = kNodeFormatV2;
    bool mmap_reads = true;
    // Active-delta rotation threshold: when the active delta reaches this
    // many entries it is sealed and (with auto_merge) a compaction starts.
    uint32_t delta_capacity = 4096;
    bool auto_merge = true;
  };

  // Immutable after publication except `seq`, which only the writer stores.
  struct SegmentView {
    std::vector<std::shared_ptr<FrozenSegment>> frozen;  // oldest -> newest
    std::vector<std::shared_ptr<DeltaSegment>> sealed;   // oldest -> newest
    std::shared_ptr<DeltaSegment> active;
    std::atomic<uint64_t> seq{0};
  };

  struct Snapshot {
    std::shared_ptr<const SegmentView> view;
    uint64_t seq = 0;
  };

  // `vocabulary`, `node_cache` (nullable), and `merge_pool` are borrowed
  // and must outlive the manager.
  SegmentManager(const Options& options, double diagonal,
                 Vocabulary* vocabulary, NodeCache* node_cache,
                 ThreadPool* merge_pool);
  ~SegmentManager();

  SegmentManager(const SegmentManager&) = delete;
  SegmentManager& operator=(const SegmentManager&) = delete;

  // Installs the initial frozen segment (sequence 0 state). Must run before
  // any mutation or snapshot; ids in `objects` must be unique, and ids for
  // future inserts continue above the largest seed id.
  Status SeedFrozen(std::vector<SpatialObject> objects);

  Snapshot GetSnapshot() const;

  // Mutations (thread-safe; serialized internally). Documents arrive with
  // terms already interned through the shared vocabulary; the manager
  // maintains the vocabulary's document frequencies.
  //
  // Insert normally assigns the next sequential id. A caller that owns id
  // allocation (the shard coordinator hands out globally sequential ids
  // across per-shard managers) passes `forced_id`; it must not collide
  // with a live object, and future automatic ids continue above it.
  StatusOr<ObjectId> Insert(Point loc, KeywordSet doc,
                            ObjectId forced_id = kInvalidObjectId);
  Status Update(ObjectId id, Point loc, KeywordSet doc);
  Status Delete(ObjectId id);

  // Runs (or joins) a full compaction and returns when the view holds at
  // most one frozen segment, no sealed deltas, and an empty active delta —
  // unless concurrent writers keep adding, in which case it returns after
  // the compaction that covered its call point.
  Status ForceMerge();

  uint64_t current_seq() const;
  double diagonal() const { return diagonal_; }
  size_t live_objects() const {
    return live_count_.load(std::memory_order_relaxed);
  }

  SegmentCountersSnapshot counters() const;
  BackendIoSnapshot io_snapshot() const;
  const RetiredIoAccumulator& retired_io() const { return retired_; }

  // Test hook: runs on the merge thread after the new frozen segment is
  // built, before the swap lock is taken — mid-merge queries and mutations
  // issued from the hook exercise the protocol's concurrent window.
  void set_before_swap_hook(std::function<void()> hook);

 private:
  struct Located {
    std::shared_ptr<DeltaSegment> delta;  // set when found in a delta
    uint32_t delta_index = 0;
    std::shared_ptr<FrozenSegment> frozen;  // set when found frozen
    const SpatialObject* object = nullptr;  // nullptr = not found
  };

  // All *_Locked members require writer_mu_.
  Located LocateCurrentLocked(ObjectId id, uint64_t at_seq) const;
  void RotateLocked();
  void EnsureActiveSpaceLocked();
  void PublishViewLocked(std::shared_ptr<SegmentView> next);
  void MaybeScheduleMergeLocked();
  void RunMerge();

  const Options options_;
  const double diagonal_;
  Vocabulary* const vocabulary_;
  NodeCache* const node_cache_;
  ThreadPool* const merge_pool_;

  mutable std::mutex writer_mu_;
  std::condition_variable merge_cv_;
  uint64_t next_seq_ = 0;  // last issued sequence
  ObjectId next_id_ = 0;
  bool merge_running_ = false;
  bool merge_pending_ = false;
  bool shutdown_ = false;
  std::function<void()> before_swap_hook_;

  mutable std::mutex view_mu_;
  std::shared_ptr<SegmentView> current_;

  std::atomic<size_t> live_count_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> updates_{0};
  std::atomic<uint64_t> deletes_{0};
  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> rotations_{0};
  // Merge-pass telemetry: cumulative busy wall time, the last pass's
  // duration, and post-watermark tombstones replayed at swaps
  // (SegmentCountersSnapshot, docs/OBSERVABILITY.md).
  std::atomic<uint64_t> merge_busy_us_{0};
  std::atomic<uint64_t> merge_last_us_{0};
  std::atomic<uint64_t> tombstones_replayed_{0};
  RetiredIoAccumulator retired_;
};

}  // namespace wsk

#endif  // WSK_SEGMENT_SEGMENT_MANAGER_H_
