#include "data/dataset.h"

#include <algorithm>

#include "common/macros.h"

namespace wsk {

ObjectId Dataset::Add(Point loc, KeywordSet doc) {
  return AddWithId(next_id_, loc, std::move(doc));
}

ObjectId Dataset::Add(Point loc, const std::vector<std::string>& keywords) {
  return Add(loc, vocabulary_.InternAll(keywords));
}

ObjectId Dataset::AddWithId(ObjectId id, Point loc, KeywordSet doc) {
  WSK_CHECK_MSG(FindObject(id) == nullptr, "duplicate object id");
  vocabulary_.RecordDocument(doc);
  bounds_.Extend(loc);
  const uint32_t position = static_cast<uint32_t>(objects_.size());
  if (dense_ && id != position) {
    // Backfill the map for every object appended while still dense.
    dense_ = false;
    for (uint32_t i = 0; i < position; ++i) index_.emplace(objects_[i].id, i);
  }
  if (!dense_) index_.emplace(id, position);
  objects_.push_back(SpatialObject{id, loc, std::move(doc)});
  next_id_ = std::max(next_id_, id + 1);
  return id;
}

const SpatialObject* Dataset::FindObject(ObjectId id) const {
  if (dense_) {
    return id < objects_.size() ? &objects_[id] : nullptr;
  }
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &objects_[it->second];
}

const SpatialObject& Dataset::object(ObjectId id) const {
  const SpatialObject* found = FindObject(id);
  WSK_CHECK(found != nullptr);
  return *found;
}

double Dataset::diagonal() const {
  if (diagonal_override_ > 0.0) return diagonal_override_;
  if (bounds_.Empty()) return 1.0;
  const double d = Distance(Point{bounds_.min_x, bounds_.min_y},
                            Point{bounds_.max_x, bounds_.max_y});
  return d > 0.0 ? d : 1.0;
}

KeywordSet Dataset::UnionDocs(const std::vector<ObjectId>& ids) const {
  KeywordSet out;
  for (ObjectId id : ids) out = out.Union(object(id).doc);
  return out;
}

}  // namespace wsk
