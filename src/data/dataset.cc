#include "data/dataset.h"

#include "common/macros.h"

namespace wsk {

ObjectId Dataset::Add(Point loc, KeywordSet doc) {
  const ObjectId id = static_cast<ObjectId>(objects_.size());
  vocabulary_.RecordDocument(doc);
  bounds_.Extend(loc);
  objects_.push_back(SpatialObject{id, loc, std::move(doc)});
  return id;
}

ObjectId Dataset::Add(Point loc, const std::vector<std::string>& keywords) {
  return Add(loc, vocabulary_.InternAll(keywords));
}

const SpatialObject& Dataset::object(ObjectId id) const {
  WSK_CHECK(id < objects_.size());
  return objects_[id];
}

double Dataset::diagonal() const {
  if (bounds_.Empty()) return 1.0;
  const double d = Distance(Point{bounds_.min_x, bounds_.min_y},
                            Point{bounds_.max_x, bounds_.max_y});
  return d > 0.0 ? d : 1.0;
}

KeywordSet Dataset::UnionDocs(const std::vector<ObjectId>& ids) const {
  KeywordSet out;
  for (ObjectId id : ids) out = out.Union(object(id).doc);
  return out;
}

}  // namespace wsk
