// CSV import/export for datasets.
//
// Line format: `x,y,keyword keyword keyword`. This is the interchange
// format a user would export real POI data (EURO / GN style dumps) into;
// the examples and tests use it for small fixtures.
#ifndef WSK_DATA_DATASET_IO_H_
#define WSK_DATA_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace wsk {

// Parses `path` into a dataset. Empty lines and lines starting with '#' are
// skipped. Fails with InvalidArgument on malformed rows (row number in the
// message).
StatusOr<Dataset> LoadDatasetCsv(const std::string& path);

// Writes `dataset` to `path` in the same format.
Status SaveDatasetCsv(const Dataset& dataset, const std::string& path);

}  // namespace wsk

#endif  // WSK_DATA_DATASET_IO_H_
