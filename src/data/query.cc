#include "data/query.h"

#include <algorithm>

#include "common/macros.h"

namespace wsk {

double Score(const SpatialObject& object, const SpatialKeywordQuery& query,
             double diagonal) {
  WSK_CHECK(query.alpha > 0.0 && query.alpha < 1.0);
  WSK_CHECK(diagonal > 0.0);
  const double sdist = Distance(object.loc, query.loc) / diagonal;
  const double tsim = TextualSimilarity(object.doc, query.doc, query.model);
  return query.alpha * (1.0 - sdist) + (1.0 - query.alpha) * tsim;
}

std::vector<ScoredObject> BruteForceTopK(const Dataset& dataset,
                                         const SpatialKeywordQuery& query) {
  const double diagonal = dataset.diagonal();
  std::vector<ScoredObject> scored;
  scored.reserve(dataset.size());
  for (const SpatialObject& o : dataset.objects()) {
    scored.push_back(ScoredObject{o.id, Score(o, query, diagonal)});
  }
  const size_t k = std::min<size_t>(query.k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    ScoreGreater());
  scored.resize(k);
  return scored;
}

uint32_t BruteForceRank(const Dataset& dataset,
                        const SpatialKeywordQuery& query, ObjectId target) {
  const double diagonal = dataset.diagonal();
  const double target_score =
      Score(dataset.object(target), query, diagonal);
  uint32_t better = 0;
  for (const SpatialObject& o : dataset.objects()) {
    if (Score(o, query, diagonal) > target_score) ++better;
  }
  return better + 1;
}

}  // namespace wsk
