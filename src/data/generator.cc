#include "data/generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"

namespace wsk {

GeneratorConfig EuroLikeConfig(double scale) {
  WSK_CHECK(scale > 0.0);
  GeneratorConfig config;
  config.num_objects = static_cast<uint32_t>(162033 * scale);
  config.vocab_size = static_cast<uint32_t>(35315 * scale);
  config.num_clusters = 48;
  config.seed = 20160516;  // ICDE 2016
  return config;
}

GeneratorConfig GnLikeConfig(double scale) {
  WSK_CHECK(scale > 0.0);
  GeneratorConfig config;
  config.num_objects = static_cast<uint32_t>(1868821 * scale);
  config.vocab_size = static_cast<uint32_t>(222407 * scale);
  config.num_clusters = 128;
  config.uniform_fraction = 0.35;  // GN covers wilderness features too
  config.seed = 19900101;
  return config;
}

Dataset GenerateDataset(const GeneratorConfig& config) {
  WSK_CHECK(config.num_objects > 0);
  WSK_CHECK(config.vocab_size > 0);
  WSK_CHECK(config.doc_size_min >= 1);
  Dataset dataset;
  Rng rng(config.seed);

  // Pre-intern the vocabulary so term ids are dense and deterministic.
  // Zipf rank r maps to term id r: low ids are the frequent terms.
  for (uint32_t i = 0; i < config.vocab_size; ++i) {
    dataset.vocabulary().Intern("term" + std::to_string(i));
  }

  // Spatial mixture components.
  struct Cluster {
    Point center;
    double stddev;
  };
  std::vector<Cluster> clusters(std::max<uint32_t>(1, config.num_clusters));
  for (Cluster& c : clusters) {
    c.center = Point{rng.NextDouble(), rng.NextDouble()};
    // Vary cluster tightness: cities of different sizes.
    c.stddev = config.cluster_stddev * rng.NextDouble(0.5, 2.0);
  }

  ZipfSampler zipf(config.vocab_size, config.zipf_skew);

  const double extra_mean =
      std::max(0.0, config.doc_size_mean - config.doc_size_min);
  for (uint32_t i = 0; i < config.num_objects; ++i) {
    Point loc;
    if (rng.NextBool(config.uniform_fraction)) {
      loc = Point{rng.NextDouble(), rng.NextDouble()};
    } else {
      const Cluster& c =
          clusters[rng.NextUint64(clusters.size())];
      // Clamp into the unit square so the normalization diagonal is stable.
      loc.x = std::clamp(c.center.x + rng.NextGaussian() * c.stddev, 0.0, 1.0);
      loc.y = std::clamp(c.center.y + rng.NextGaussian() * c.stddev, 0.0, 1.0);
    }

    const uint32_t doc_size = config.doc_size_min +
                              static_cast<uint32_t>(
                                  rng.NextPoisson(extra_mean));
    std::vector<TermId> terms;
    terms.reserve(doc_size);
    // Rejection-sample distinct terms; the universe is much larger than a
    // document, so this terminates fast.
    int attempts = 0;
    while (terms.size() < doc_size && attempts < 1000) {
      const TermId t = zipf.Sample(rng);
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
      ++attempts;
    }
    dataset.Add(loc, KeywordSet(std::move(terms)));
  }
  return dataset;
}

}  // namespace wsk
