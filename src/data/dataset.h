// In-memory object table: the database D of spatial web objects.
//
// Each object is a (location, keyword set) pair (Section III-A). The
// dataset also owns the vocabulary (term dictionary + document frequencies
// for the Eqn 7 particularity weights) and the normalization diagonal used
// to map Euclidean distances into [0, 1].
#ifndef WSK_DATA_DATASET_H_
#define WSK_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/geometry.h"
#include "text/keyword_set.h"
#include "text/vocabulary.h"

namespace wsk {

using ObjectId = uint32_t;

inline constexpr ObjectId kInvalidObjectId = 0xffffffffu;

struct SpatialObject {
  ObjectId id = kInvalidObjectId;
  Point loc;
  KeywordSet doc;
};

// Read-only lookup surface shared by Dataset and live segment snapshots.
// The why-not algorithms only need point lookups by id, the visible object
// count, and the vocabulary, so they are written against this interface and
// run unchanged over a frozen Dataset or a mutable multi-segment snapshot
// (docs/SEGMENTS.md).
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  // The (visible) object with `id`, or nullptr when no such object exists.
  virtual const SpatialObject* FindObject(ObjectId id) const = 0;

  // Number of (visible) objects.
  virtual size_t num_objects() const = 0;

  virtual const Vocabulary& vocabulary() const = 0;
};

class Dataset : public ObjectStore {
 public:
  Dataset() = default;

  // Move-only: the vocabulary and object table can be large.
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  // Appends an object whose keywords are already interned and returns its
  // id. Updates document frequencies and the bounding rectangle.
  ObjectId Add(Point loc, KeywordSet doc);

  // Convenience: interns keyword strings through the vocabulary.
  ObjectId Add(Point loc, const std::vector<std::string>& keywords);

  // Appends an object under an explicit id (ids need not be dense or
  // ordered — used to rebuild reference datasets that mirror a mutated
  // engine, where deletions leave holes in the id space). The id must be
  // unused. Storage stays dense in insertion order; `object(id)` falls back
  // to an id -> index map once ids diverge from positions.
  ObjectId AddWithId(ObjectId id, Point loc, KeywordSet doc);

  const SpatialObject& object(ObjectId id) const;
  const SpatialObject* FindObject(ObjectId id) const override;
  size_t size() const { return objects_.size(); }
  size_t num_objects() const override { return objects_.size(); }
  const std::vector<SpatialObject>& objects() const { return objects_; }

  Vocabulary& vocabulary() { return vocabulary_; }
  const Vocabulary& vocabulary() const override { return vocabulary_; }

  const Rect& bounding_rect() const { return bounds_; }

  // Maximum possible distance between two points of D (the SDist
  // normalizer of Eqn 1): the diagonal of the bounding rectangle. Returns 1
  // for datasets with fewer than two distinct points so division is safe.
  // An override pins the value regardless of the bounding rectangle, so a
  // rebuilt reference dataset can score with the same normalizer as the
  // live engine it mirrors.
  double diagonal() const;
  void OverrideDiagonal(double diagonal) { diagonal_override_ = diagonal; }

  // Union of the keyword sets of the given objects (the paper's M.doc).
  KeywordSet UnionDocs(const std::vector<ObjectId>& ids) const;

 private:
  std::vector<SpatialObject> objects_;
  Vocabulary vocabulary_;
  Rect bounds_;
  // Lookup support for sparse ids: `dense_` stays true while every object's
  // id equals its position (the common bulk-load case, no map overhead).
  std::unordered_map<ObjectId, uint32_t> index_;
  bool dense_ = true;
  ObjectId next_id_ = 0;
  double diagonal_override_ = 0.0;
};

}  // namespace wsk

#endif  // WSK_DATA_DATASET_H_
