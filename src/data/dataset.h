// In-memory object table: the database D of spatial web objects.
//
// Each object is a (location, keyword set) pair (Section III-A). The
// dataset also owns the vocabulary (term dictionary + document frequencies
// for the Eqn 7 particularity weights) and the normalization diagonal used
// to map Euclidean distances into [0, 1].
#ifndef WSK_DATA_DATASET_H_
#define WSK_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "text/keyword_set.h"
#include "text/vocabulary.h"

namespace wsk {

using ObjectId = uint32_t;

inline constexpr ObjectId kInvalidObjectId = 0xffffffffu;

struct SpatialObject {
  ObjectId id = kInvalidObjectId;
  Point loc;
  KeywordSet doc;
};

class Dataset {
 public:
  Dataset() = default;

  // Move-only: the vocabulary and object table can be large.
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  // Appends an object whose keywords are already interned and returns its
  // id. Updates document frequencies and the bounding rectangle.
  ObjectId Add(Point loc, KeywordSet doc);

  // Convenience: interns keyword strings through the vocabulary.
  ObjectId Add(Point loc, const std::vector<std::string>& keywords);

  const SpatialObject& object(ObjectId id) const;
  size_t size() const { return objects_.size(); }
  const std::vector<SpatialObject>& objects() const { return objects_; }

  Vocabulary& vocabulary() { return vocabulary_; }
  const Vocabulary& vocabulary() const { return vocabulary_; }

  const Rect& bounding_rect() const { return bounds_; }

  // Maximum possible distance between two points of D (the SDist
  // normalizer of Eqn 1): the diagonal of the bounding rectangle. Returns 1
  // for datasets with fewer than two distinct points so division is safe.
  double diagonal() const;

  // Union of the keyword sets of the given objects (the paper's M.doc).
  KeywordSet UnionDocs(const std::vector<ObjectId>& ids) const;

 private:
  std::vector<SpatialObject> objects_;
  Vocabulary vocabulary_;
  Rect bounds_;
};

}  // namespace wsk

#endif  // WSK_DATA_DATASET_H_
