// Dataset statistics — the numbers behind Table II and the generator's
// calibration: cardinalities, document-length moments, and the shape of the
// term-frequency distribution.
#ifndef WSK_DATA_STATS_H_
#define WSK_DATA_STATS_H_

#include <string>

#include "data/dataset.h"

namespace wsk {

struct DatasetStats {
  size_t num_objects = 0;
  size_t num_distinct_terms = 0;  // terms with document frequency > 0
  size_t total_term_occurrences = 0;
  double avg_doc_length = 0.0;
  size_t min_doc_length = 0;
  size_t max_doc_length = 0;
  uint32_t max_document_frequency = 0;   // the most popular term's df
  double top10_frequency_share = 0.0;    // occurrence share of top-10 terms
  Rect bounding_rect;
  double diagonal = 1.0;

  // A Table II-style two-column summary.
  std::string ToString() const;
};

DatasetStats ComputeStats(const Dataset& dataset);

}  // namespace wsk

#endif  // WSK_DATA_STATS_H_
