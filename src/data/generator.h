// Synthetic dataset generators standing in for the paper's EURO and GN
// datasets (Section VII-A2).
//
// The originals are proprietary/third-party POI collections; what drives
// the algorithms is their *statistics*, which the generators reproduce:
//   * clustered spatial distribution (POIs concentrate in cities) — a
//     Gaussian-mixture over the unit square plus a uniform background;
//   * skewed keyword usage — term ids drawn from a Zipf distribution, so a
//     few terms ("restaurant", "hotel") are extremely common and the long
//     tail is rare, matching the IDF spread that the particularity ordering
//     (Eqn 7) relies on;
//   * short documents — per-object keyword-set sizes follow a shifted
//     Poisson, averaging around 6 terms.
// EuroLikeConfig() and GnLikeConfig() mirror the cardinalities of Table II;
// both accept a scale factor so the benches can run at container-friendly
// sizes while preserving shape (see DESIGN.md, Substitutions).
#ifndef WSK_DATA_GENERATOR_H_
#define WSK_DATA_GENERATOR_H_

#include <cstdint>

#include "data/dataset.h"

namespace wsk {

struct GeneratorConfig {
  uint32_t num_objects = 10000;
  uint32_t vocab_size = 2000;
  double zipf_skew = 1.0;         // term-frequency skew
  double doc_size_mean = 6.0;     // mean keywords per object
  uint32_t doc_size_min = 1;
  uint32_t num_clusters = 32;     // spatial Gaussian mixture components
  double cluster_stddev = 0.02;   // per-cluster spread (unit square)
  double uniform_fraction = 0.2;  // objects placed uniformly at random
  uint64_t seed = 42;
};

// EURO: 162,033 points of interest, 35,315 distinct words (Table II).
// scale = 1.0 reproduces those cardinalities.
GeneratorConfig EuroLikeConfig(double scale = 1.0);

// GN: 1,868,821 geographic objects, 222,407 distinct words (Table II).
GeneratorConfig GnLikeConfig(double scale = 1.0);

// Builds a dataset from `config`. Deterministic in `config.seed`.
Dataset GenerateDataset(const GeneratorConfig& config);

}  // namespace wsk

#endif  // WSK_DATA_GENERATOR_H_
