#include "data/stats.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace wsk {

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.num_objects = dataset.size();
  stats.bounding_rect = dataset.bounding_rect();
  stats.diagonal = dataset.diagonal();

  stats.min_doc_length = stats.num_objects == 0 ? 0 : SIZE_MAX;
  for (const SpatialObject& o : dataset.objects()) {
    stats.total_term_occurrences += o.doc.size();
    stats.min_doc_length = std::min(stats.min_doc_length, o.doc.size());
    stats.max_doc_length = std::max(stats.max_doc_length, o.doc.size());
  }
  if (stats.num_objects > 0) {
    stats.avg_doc_length = static_cast<double>(stats.total_term_occurrences) /
                           stats.num_objects;
  }

  const Vocabulary& vocab = dataset.vocabulary();
  std::vector<uint32_t> frequencies;
  for (TermId t = 0; t < vocab.num_terms(); ++t) {
    const uint32_t df = vocab.DocumentFrequency(t);
    if (df > 0) {
      ++stats.num_distinct_terms;
      frequencies.push_back(df);
    }
  }
  if (!frequencies.empty()) {
    std::sort(frequencies.begin(), frequencies.end(),
              std::greater<uint32_t>());
    stats.max_document_frequency = frequencies.front();
    uint64_t top10 = 0;
    for (size_t i = 0; i < std::min<size_t>(10, frequencies.size()); ++i) {
      top10 += frequencies[i];
    }
    if (stats.total_term_occurrences > 0) {
      stats.top10_frequency_share =
          static_cast<double>(top10) / stats.total_term_occurrences;
    }
  }
  return stats;
}

std::string DatasetStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "Total # of objects        %zu\n"
      "Total # of distinct words %zu\n"
      "Total word occurrences    %zu\n"
      "Words per object          avg %.2f (min %zu, max %zu)\n"
      "Most frequent word df     %u\n"
      "Top-10 words' share       %.1f%%\n"
      "Bounding box              %s (diagonal %.4f)",
      num_objects, num_distinct_terms, total_term_occurrences, avg_doc_length,
      min_doc_length, max_doc_length, max_document_frequency,
      top10_frequency_share * 100.0, bounding_rect.ToString().c_str(),
      diagonal);
  return buf;
}

}  // namespace wsk
