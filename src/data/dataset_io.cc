#include "data/dataset_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace wsk {

StatusOr<Dataset> LoadDatasetCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  Dataset dataset;
  std::string line;
  size_t row = 0;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty() || line[0] == '#') continue;
    const size_t comma1 = line.find(',');
    const size_t comma2 =
        comma1 == std::string::npos ? std::string::npos
                                    : line.find(',', comma1 + 1);
    if (comma2 == std::string::npos) {
      return Status::InvalidArgument(path + " row " + std::to_string(row) +
                                     ": expected `x,y,keywords`");
    }
    char* end = nullptr;
    const std::string xs = line.substr(0, comma1);
    const std::string ys = line.substr(comma1 + 1, comma2 - comma1 - 1);
    const double x = std::strtod(xs.c_str(), &end);
    if (end == xs.c_str()) {
      return Status::InvalidArgument(path + " row " + std::to_string(row) +
                                     ": bad x coordinate");
    }
    const double y = std::strtod(ys.c_str(), &end);
    if (end == ys.c_str()) {
      return Status::InvalidArgument(path + " row " + std::to_string(row) +
                                     ": bad y coordinate");
    }
    std::vector<std::string> keywords;
    std::istringstream words(line.substr(comma2 + 1));
    std::string word;
    while (words >> word) keywords.push_back(word);
    if (keywords.empty()) {
      return Status::InvalidArgument(path + " row " + std::to_string(row) +
                                     ": object has no keywords");
    }
    dataset.Add(Point{x, y}, keywords);
  }
  return dataset;
}

Status SaveDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  const Vocabulary& vocab = dataset.vocabulary();
  for (const SpatialObject& o : dataset.objects()) {
    out << o.loc.x << ',' << o.loc.y << ',';
    bool first = true;
    for (TermId t : o.doc) {
      if (!first) out << ' ';
      out << vocab.TermString(t);
      first = false;
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

}  // namespace wsk
