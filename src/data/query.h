// Spatial keyword top-k query semantics (Definitions in Section III-A).
//
// This header defines the query tuple and the *reference* semantics:
// scoring (Eqn 1), rank (Eqn 3), and brute-force top-k / rank evaluation
// over the in-memory dataset. The disk-based indexes must agree with these
// functions exactly; the test suite enforces that.
#ifndef WSK_DATA_QUERY_H_
#define WSK_DATA_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "data/dataset.h"
#include "text/similarity.h"

namespace wsk {

// q = (loc, doc, k, alpha) plus the similarity model of footnote 1.
struct SpatialKeywordQuery {
  Point loc;
  KeywordSet doc;
  uint32_t k = 10;
  double alpha = 0.5;  // must lie strictly inside (0, 1)
  SimilarityModel model = SimilarityModel::kJaccard;
};

struct ScoredObject {
  ObjectId id = kInvalidObjectId;
  double score = 0.0;
};

// Deterministic result ordering: score descending, then id ascending.
struct ScoreGreater {
  bool operator()(const ScoredObject& a, const ScoredObject& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  }
};

// ST(o, q) of Eqn 1; `diagonal` is the SDist normalizer (Dataset::diagonal).
double Score(const SpatialObject& object, const SpatialKeywordQuery& query,
             double diagonal);

// Brute-force evaluation helpers (reference semantics for tests and tiny
// datasets; the indexes provide the scalable path).

// The k best objects ordered by (score desc, id asc).
std::vector<ScoredObject> BruteForceTopK(const Dataset& dataset,
                                         const SpatialKeywordQuery& query);

// R(target, q) per Eqn 3: 1 + number of objects scoring strictly higher.
uint32_t BruteForceRank(const Dataset& dataset,
                        const SpatialKeywordQuery& query, ObjectId target);

}  // namespace wsk

#endif  // WSK_DATA_QUERY_H_
