#include "index/inverted_grid_index.h"

#include <algorithm>
#include <cmath>

#include "index/node_codec.h"
#include "text/score_kernel.h"

namespace wsk {

namespace {

constexpr uint32_t kMagic = 0x47494b57;  // "WKIG"
constexpr uint32_t kVersion = 1;
constexpr size_t kObjectEntryBytes = 16 + BlobRef::kSerializedSize;  // 28

std::vector<uint8_t> EncodeIds(const std::vector<ObjectId>& ids) {
  std::vector<uint8_t> bytes;
  ByteWriter writer(&bytes);
  writer.PutU32(static_cast<uint32_t>(ids.size()));
  for (ObjectId id : ids) writer.PutU32(id);
  return bytes;
}

std::vector<ObjectId> DecodeIds(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes.data(), bytes.size());
  const uint32_t count = reader.GetU32();
  std::vector<ObjectId> ids(count);
  for (uint32_t i = 0; i < count; ++i) ids[i] = reader.GetU32();
  return ids;
}

}  // namespace

InvertedGridIndex::InvertedGridIndex(BufferPool* pool)
    : pool_(pool), blobs_(pool) {}

StatusOr<std::unique_ptr<InvertedGridIndex>> InvertedGridIndex::Build(
    const Dataset& dataset, BufferPool* pool, const Options& options) {
  if (pool->pager()->num_pages() != 0) {
    return Status::FailedPrecondition(
        "InvertedGridIndex::Build requires a fresh pager file");
  }
  std::unique_ptr<InvertedGridIndex> index(new InvertedGridIndex(pool));
  index->options_ = options;
  index->meta_page_ = pool->pager()->AllocatePages(1);
  index->num_objects_ = dataset.size();
  // The term universe spans the vocabulary *and* any raw term ids used
  // directly in keyword sets without interning.
  uint32_t max_term_plus_one = dataset.vocabulary().num_terms();
  for (const SpatialObject& o : dataset.objects()) {
    if (!o.doc.empty()) {
      max_term_plus_one =
          std::max(max_term_plus_one, o.doc.terms().back() + 1);
    }
  }
  index->num_terms_ = max_term_plus_one;
  index->bounds_ = dataset.bounding_rect();
  index->diagonal_ = dataset.diagonal();
  index->grid_ = options.grid_resolution != 0
                     ? options.grid_resolution
                     : std::max<uint32_t>(
                           1, static_cast<uint32_t>(std::ceil(
                                  std::sqrt(dataset.size() / 64.0))));

  // 1. Per-object keyword blobs + the object table.
  std::vector<uint8_t> table;
  table.reserve(dataset.size() * kObjectEntryBytes);
  {
    ByteWriter writer(&table);
    for (const SpatialObject& o : dataset.objects()) {
      std::vector<uint8_t> doc_bytes;
      o.doc.Serialize(&doc_bytes);
      StatusOr<BlobRef> doc_ref = index->blobs_.Append(doc_bytes);
      if (!doc_ref.ok()) return doc_ref.status();
      writer.PutDouble(o.loc.x);
      writer.PutDouble(o.loc.y);
      uint8_t ref[BlobRef::kSerializedSize];
      doc_ref.value().Serialize(ref);
      writer.PutBytes(ref, sizeof(ref));
    }
  }
  StatusOr<BlobRef> table_ref = index->blobs_.Append(table);
  if (!table_ref.ok()) return table_ref.status();
  index->object_table_ = table_ref.value();

  // 2. Term postings + directory.
  std::vector<std::vector<ObjectId>> postings(index->num_terms_);
  for (const SpatialObject& o : dataset.objects()) {
    for (TermId t : o.doc) postings[t].push_back(o.id);
  }
  std::vector<uint8_t> term_dir;
  {
    ByteWriter writer(&term_dir);
    for (const std::vector<ObjectId>& posting : postings) {
      StatusOr<BlobRef> ref = index->blobs_.Append(EncodeIds(posting));
      if (!ref.ok()) return ref.status();
      uint8_t buf[BlobRef::kSerializedSize];
      ref.value().Serialize(buf);
      writer.PutBytes(buf, sizeof(buf));
    }
  }
  StatusOr<BlobRef> term_dir_ref = index->blobs_.Append(term_dir);
  if (!term_dir_ref.ok()) return term_dir_ref.status();
  index->term_directory_ = term_dir_ref.value();

  // 3. Grid cell postings + directory.
  const uint32_t g = index->grid_;
  std::vector<std::vector<ObjectId>> cells(static_cast<size_t>(g) * g);
  const double width = std::max(index->bounds_.max_x - index->bounds_.min_x,
                                1e-12);
  const double height = std::max(index->bounds_.max_y - index->bounds_.min_y,
                                 1e-12);
  for (const SpatialObject& o : dataset.objects()) {
    const uint32_t cx = std::min<uint32_t>(
        g - 1, static_cast<uint32_t>((o.loc.x - index->bounds_.min_x) /
                                     width * g));
    const uint32_t cy = std::min<uint32_t>(
        g - 1, static_cast<uint32_t>((o.loc.y - index->bounds_.min_y) /
                                     height * g));
    cells[static_cast<size_t>(cy) * g + cx].push_back(o.id);
  }
  std::vector<uint8_t> cell_dir;
  {
    ByteWriter writer(&cell_dir);
    for (const std::vector<ObjectId>& cell : cells) {
      StatusOr<BlobRef> ref = index->blobs_.Append(EncodeIds(cell));
      if (!ref.ok()) return ref.status();
      uint8_t buf[BlobRef::kSerializedSize];
      ref.value().Serialize(buf);
      writer.PutBytes(buf, sizeof(buf));
    }
  }
  StatusOr<BlobRef> cell_dir_ref = index->blobs_.Append(cell_dir);
  if (!cell_dir_ref.ok()) return cell_dir_ref.status();
  index->cell_directory_ = cell_dir_ref.value();

  WSK_RETURN_IF_ERROR(index->blobs_.Flush());
  WSK_RETURN_IF_ERROR(index->WriteMeta());
  WSK_RETURN_IF_ERROR(pool->FlushAll());
  return index;
}

StatusOr<std::unique_ptr<InvertedGridIndex>> InvertedGridIndex::Open(
    BufferPool* pool) {
  std::unique_ptr<InvertedGridIndex> index(new InvertedGridIndex(pool));
  index->meta_page_ = 0;
  WSK_RETURN_IF_ERROR(index->ReadMeta());
  return index;
}

Status InvertedGridIndex::WriteMeta() {
  std::vector<uint8_t> bytes;
  ByteWriter writer(&bytes);
  writer.PutU32(kMagic);
  writer.PutU32(kVersion);
  writer.PutU64(num_objects_);
  writer.PutU32(num_terms_);
  writer.PutU32(grid_);
  writer.PutRect(bounds_);
  writer.PutDouble(diagonal_);
  writer.PutU8(static_cast<uint8_t>(options_.model));
  uint8_t ref[BlobRef::kSerializedSize];
  object_table_.Serialize(ref);
  writer.PutBytes(ref, sizeof(ref));
  term_directory_.Serialize(ref);
  writer.PutBytes(ref, sizeof(ref));
  cell_directory_.Serialize(ref);
  writer.PutBytes(ref, sizeof(ref));
  bytes.resize(pool_->pager()->page_size(), 0);
  return WriteNodeBytes(pool_, meta_page_, 1, bytes.data());
}

Status InvertedGridIndex::ReadMeta() {
  // Meta pages are single-page by construction: zero-copy view.
  StatusOr<NodeView> view = NodeView::Read(pool_, meta_page_, 1);
  if (!view.ok()) return view.status();
  ByteReader reader(view.value().data(), view.value().size());
  if (reader.GetU32() != kMagic) {
    return Status::Corruption("not an inverted-grid index file");
  }
  if (reader.GetU32() != kVersion) {
    return Status::Corruption("unsupported inverted-grid index version");
  }
  num_objects_ = reader.GetU64();
  num_terms_ = reader.GetU32();
  grid_ = reader.GetU32();
  bounds_ = reader.GetRect();
  diagonal_ = reader.GetDouble();
  options_.model = static_cast<SimilarityModel>(reader.GetU8());
  object_table_ =
      BlobRef::Deserialize(reader.GetBytes(BlobRef::kSerializedSize));
  term_directory_ =
      BlobRef::Deserialize(reader.GetBytes(BlobRef::kSerializedSize));
  cell_directory_ =
      BlobRef::Deserialize(reader.GetBytes(BlobRef::kSerializedSize));
  return Status::Ok();
}

StatusOr<InvertedGridIndex::ObjectEntry> InvertedGridIndex::ReadObjectEntry(
    ObjectId id) const {
  std::vector<uint8_t> bytes;
  WSK_RETURN_IF_ERROR(blobs_.ReadRange(
      object_table_, static_cast<uint32_t>(id * kObjectEntryBytes),
      kObjectEntryBytes, &bytes));
  ByteReader reader(bytes.data(), bytes.size());
  ObjectEntry entry;
  entry.loc.x = reader.GetDouble();
  entry.loc.y = reader.GetDouble();
  entry.doc = BlobRef::Deserialize(reader.GetBytes(BlobRef::kSerializedSize));
  return entry;
}

void InvertedGridIndex::AttachNodeCache(NodeCache* cache) {
  cache_ = cache;
  if (cache != nullptr && term_cache_ns_ == 0) {
    term_cache_ns_ = NodeCache::NextTreeId();
    cell_cache_ns_ = NodeCache::NextTreeId();
  }
}

namespace {

// Digest of a cached posting list, for the cache's no-mutation check.
uint64_t FingerprintPosting(const void* value) {
  const auto* ids = static_cast<const std::vector<ObjectId>*>(value);
  FingerprintHasher hasher;
  hasher.MixU64(ids->size());
  hasher.Mix(ids->data(), ids->size() * sizeof(ObjectId));
  return hasher.digest();
}

}  // namespace

StatusOr<std::shared_ptr<const std::vector<ObjectId>>>
InvertedGridIndex::ReadPosting(const BlobRef& directory, uint32_t slot,
                               uint32_t cache_ns) const {
  if (cache_ != nullptr) {
    std::shared_ptr<const std::vector<ObjectId>> hit =
        cache_->LookupAs<std::vector<ObjectId>>(cache_ns, slot);
    IoStats& io = pool_->pager()->io_stats();
    if (hit != nullptr) {
      io.RecordNodeCacheHit();
      return StatusOr<std::shared_ptr<const std::vector<ObjectId>>>(
          std::move(hit));
    }
    io.RecordNodeCacheMiss();
  }
  std::vector<uint8_t> ref_bytes;
  WSK_RETURN_IF_ERROR(blobs_.ReadRange(directory,
                                       slot * BlobRef::kSerializedSize,
                                       BlobRef::kSerializedSize, &ref_bytes));
  const BlobRef ref = BlobRef::Deserialize(ref_bytes.data());
  std::vector<uint8_t> bytes;
  WSK_RETURN_IF_ERROR(blobs_.Read(ref, &bytes));
  auto ids = std::make_shared<std::vector<ObjectId>>(DecodeIds(bytes));
  if (cache_ != nullptr) {
    cache_->Insert(cache_ns, slot, ids,
                   sizeof(std::vector<ObjectId>) +
                       ids->size() * sizeof(ObjectId),
                   &FingerprintPosting);
  }
  return StatusOr<std::shared_ptr<const std::vector<ObjectId>>>(
      std::move(ids));
}

Rect InvertedGridIndex::CellRect(uint32_t cx, uint32_t cy) const {
  const double width = std::max(bounds_.max_x - bounds_.min_x, 1e-12);
  const double height = std::max(bounds_.max_y - bounds_.min_y, 1e-12);
  Rect rect;
  rect.min_x = bounds_.min_x + width * cx / grid_;
  rect.max_x = bounds_.min_x + width * (cx + 1) / grid_;
  rect.min_y = bounds_.min_y + height * cy / grid_;
  rect.max_y = bounds_.min_y + height * (cy + 1) / grid_;
  return rect;
}

Status InvertedGridIndex::ScoreTextualCandidates(
    const SpatialKeywordQuery& query, std::vector<ScoredObject>* scored,
    std::vector<bool>* seen, TraceRecorder* trace) const {
  TraceSpan span(trace, TraceStage::kLeafScoring);
  seen->assign(num_objects_, false);
  // Scoring kernel: the query doc is the universe; each candidate object is
  // footprinted once (bit-identical to TextualSimilarity; docs/PERF.md).
  const CandidateUniverse qu = CandidateUniverse::Build(query.doc);
  const CandidateMask qmask = qu.valid() ? qu.FullMask() : 0;
  if (trace != nullptr && qu.valid()) {
    trace->Add(TraceCounter::kKernelInvocations);
  }
  for (TermId t : query.doc) {
    if (t >= num_terms_) continue;  // unknown term: empty posting
    StatusOr<std::shared_ptr<const std::vector<ObjectId>>> posting =
        ReadPosting(term_directory_, t, term_cache_ns_);
    if (!posting.ok()) return posting.status();
    if (trace != nullptr) {
      trace->Add(TraceCounter::kPostingsScanned);
    }
    for (ObjectId id : *posting.value()) {
      if ((*seen)[id]) continue;
      (*seen)[id] = true;
      StatusOr<ObjectEntry> entry = ReadObjectEntry(id);
      if (!entry.ok()) return entry.status();
      std::vector<uint8_t> doc_bytes;
      WSK_RETURN_IF_ERROR(blobs_.Read(entry.value().doc, &doc_bytes));
      const KeywordSet doc =
          KeywordSet::Deserialize(doc_bytes.data(), doc_bytes.size());
      const double sdist =
          Distance(entry.value().loc, query.loc) / diagonal_;
      const double tsim =
          qu.valid() ? ScoreCandidate(qu.FootprintOf(doc), qmask,
                                      options_.model)
                     : TextualSimilarity(doc, query.doc, options_.model);
      scored->push_back(ScoredObject{
          id, query.alpha * (1.0 - sdist) + (1.0 - query.alpha) * tsim});
      if (trace != nullptr) {
        trace->Add(TraceCounter::kLeafObjectsScored);
      }
    }
  }
  return Status::Ok();
}

StatusOr<std::vector<ScoredObject>> InvertedGridIndex::TopK(
    const SpatialKeywordQuery& query, TraceRecorder* trace) const {
  if (query.alpha <= 0.0 || query.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must lie strictly inside (0, 1)");
  }
  TraceSpan span(trace, TraceStage::kTopK);
  std::vector<ScoredObject> scored;
  std::vector<bool> seen;
  if (num_objects_ == 0) return scored;
  WSK_RETURN_IF_ERROR(ScoreTextualCandidates(query, &scored, &seen, trace));

  // Spatial phase: every object not sharing a term has TSim = 0, so its
  // score is alpha (1 - SDist). Visit grid cells in MinDist order while
  // they could still contribute to the top-k.
  struct CellDist {
    double min_dist;
    uint32_t slot;
  };
  std::vector<CellDist> order;
  order.reserve(static_cast<size_t>(grid_) * grid_);
  for (uint32_t cy = 0; cy < grid_; ++cy) {
    for (uint32_t cx = 0; cx < grid_; ++cx) {
      order.push_back(
          CellDist{MinDist(query.loc, CellRect(cx, cy)), cy * grid_ + cx});
    }
  }
  std::sort(order.begin(), order.end(),
            [](const CellDist& a, const CellDist& b) {
              if (a.min_dist != b.min_dist) return a.min_dist < b.min_dist;
              return a.slot < b.slot;
            });

  // The k-th best textual score so far gates the sweep.
  auto kth_score = [&]() {
    if (scored.size() < query.k) {
      return -std::numeric_limits<double>::infinity();
    }
    std::vector<double> scores;
    scores.reserve(scored.size());
    for (const ScoredObject& s : scored) scores.push_back(s.score);
    std::nth_element(scores.begin(), scores.begin() + (query.k - 1),
                     scores.end(), std::greater<double>());
    return scores[query.k - 1];
  };

  double gate = kth_score();
  for (const CellDist& cell : order) {
    const double bound = query.alpha * (1.0 - cell.min_dist / diagonal_);
    if (bound <= gate) break;
    StatusOr<std::shared_ptr<const std::vector<ObjectId>>> posting =
        ReadPosting(cell_directory_, cell.slot, cell_cache_ns_);
    if (!posting.ok()) return posting.status();
    if (trace != nullptr) {
      trace->Add(TraceCounter::kCellsVisited);
      trace->Add(TraceCounter::kPostingsScanned);
    }
    bool added = false;
    for (ObjectId id : *posting.value()) {
      if (seen[id]) continue;
      seen[id] = true;
      StatusOr<ObjectEntry> entry = ReadObjectEntry(id);
      if (!entry.ok()) return entry.status();
      const double sdist = Distance(entry.value().loc, query.loc) / diagonal_;
      scored.push_back(ScoredObject{id, query.alpha * (1.0 - sdist)});
      added = true;
    }
    if (added) gate = kth_score();
  }

  std::sort(scored.begin(), scored.end(), ScoreGreater());
  if (scored.size() > query.k) scored.resize(query.k);
  return scored;
}

StatusOr<uint32_t> InvertedGridIndex::RankOfScore(
    const SpatialKeywordQuery& query, double target_score,
    TraceRecorder* trace) const {
  TraceSpan span(trace, TraceStage::kRankQuery);
  std::vector<ScoredObject> scored;
  std::vector<bool> seen;
  if (num_objects_ == 0) return 1;
  WSK_RETURN_IF_ERROR(ScoreTextualCandidates(query, &scored, &seen, trace));
  uint32_t better = 0;
  for (const ScoredObject& s : scored) {
    if (s.score > target_score) ++better;
  }
  // Spatial-only objects beat the target exactly when
  // alpha (1 - SDist) > target, i.e. inside a disk around the query.
  for (uint32_t cy = 0; cy < grid_; ++cy) {
    for (uint32_t cx = 0; cx < grid_; ++cx) {
      const double bound =
          query.alpha *
          (1.0 - MinDist(query.loc, CellRect(cx, cy)) / diagonal_);
      if (bound <= target_score) continue;
      StatusOr<std::shared_ptr<const std::vector<ObjectId>>> posting =
          ReadPosting(cell_directory_, cy * grid_ + cx, cell_cache_ns_);
      if (!posting.ok()) return posting.status();
      if (trace != nullptr) {
        trace->Add(TraceCounter::kCellsVisited);
        trace->Add(TraceCounter::kPostingsScanned);
      }
      for (ObjectId id : *posting.value()) {
        if (seen[id]) continue;
        StatusOr<ObjectEntry> entry = ReadObjectEntry(id);
        if (!entry.ok()) return entry.status();
        const double sdist =
            Distance(entry.value().loc, query.loc) / diagonal_;
        if (query.alpha * (1.0 - sdist) > target_score) ++better;
      }
    }
  }
  return better + 1;
}

}  // namespace wsk
