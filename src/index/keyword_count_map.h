// Keyword-count map (kcm): the textual summary attached to every KcR-tree
// child entry (Section V-A). Maps each term occurring in a subtree to the
// number of objects in that subtree containing it.
#ifndef WSK_INDEX_KEYWORD_COUNT_MAP_H_
#define WSK_INDEX_KEYWORD_COUNT_MAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "text/keyword_set.h"

namespace wsk {

class KeywordCountMap {
 public:
  KeywordCountMap() = default;

  // A single document: every term has count 1.
  static KeywordCountMap FromDoc(const KeywordSet& doc);

  // Adopts pre-sorted (term, count) pairs without re-sorting; the caller
  // guarantees strictly ascending terms and positive counts (the v2 node
  // decoder enforces both while reading).
  static KeywordCountMap FromSortedPairs(
      std::vector<std::pair<TermId, uint32_t>> pairs) {
    KeywordCountMap kcm;
    kcm.pairs_ = std::move(pairs);
    return kcm;
  }

  // Adds a document's terms (each +1).
  void AddDoc(const KeywordSet& doc);

  // Adds another map's counts (merging a child subtree's summary).
  void Merge(const KeywordCountMap& other);

  // N.count(t); 0 when absent.
  uint32_t CountOf(TermId t) const;

  // Sum of all counts = Σ_o |o.doc| over the subtree.
  uint64_t TotalCount() const;

  size_t num_terms() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  // (term, count) pairs sorted by term.
  const std::vector<std::pair<TermId, uint32_t>>& pairs() const {
    return pairs_;
  }

  // Layout: u32 n, then n (u32 term, u32 count) pairs sorted by term.
  void Serialize(std::vector<uint8_t>* out) const;
  static KeywordCountMap Deserialize(const uint8_t* data, size_t size);
  size_t SerializedSize() const { return 4 + 8 * pairs_.size(); }

  friend bool operator==(const KeywordCountMap& a, const KeywordCountMap& b) {
    return a.pairs_ == b.pairs_;
  }

 private:
  std::vector<std::pair<TermId, uint32_t>> pairs_;
};

}  // namespace wsk

#endif  // WSK_INDEX_KEYWORD_COUNT_MAP_H_
