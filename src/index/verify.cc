#include "index/verify.h"

#include <string>

namespace wsk {

namespace {

Status CorruptionAt(PageId page, const std::string& what) {
  return Status::Corruption("node " + std::to_string(page) + ": " + what);
}

struct SetRFacts {
  Rect mbr;
  KeywordSet uni;
  KeywordSet inter;
  uint64_t objects = 0;
};

Status WalkSetR(const SetRTree& tree, PageId page, uint32_t level,
                VerifyStats* stats, SetRFacts* out) {
  StatusOr<SetRTree::Node> read = tree.ReadNode(page);
  if (!read.ok()) return read.status();
  const SetRTree::Node node = std::move(read).value();
  ++stats->nodes_visited;

  if (node.size() == 0) return CorruptionAt(page, "empty node");
  if (node.size() > tree.options().capacity) {
    return CorruptionAt(page, "fan-out exceeds capacity");
  }
  if (node.is_leaf != (level == 1)) {
    return CorruptionAt(page, "leaf flag inconsistent with depth");
  }

  SetRFacts facts;
  bool first = true;
  if (node.is_leaf) {
    for (const SetRTree::LeafEntry& e : node.leaf_entries) {
      StatusOr<KeywordSet> doc = tree.ReadKeywordSet(e.keywords);
      if (!doc.ok()) return doc.status();
      ++stats->blobs_read;
      ++stats->objects_seen;
      facts.mbr.Extend(e.loc);
      facts.uni = facts.uni.Union(doc.value());
      facts.inter = first ? doc.value() : facts.inter.Intersect(doc.value());
      facts.objects += 1;
      first = false;
    }
  } else {
    for (const SetRTree::InnerEntry& e : node.inner_entries) {
      SetRFacts child;
      WSK_RETURN_IF_ERROR(WalkSetR(tree, e.child, level - 1, stats, &child));
      if (!e.mbr.ContainsRect(child.mbr)) {
        return CorruptionAt(page, "entry MBR does not contain its subtree");
      }
      StatusOr<KeywordSet> uni = tree.ReadKeywordSet(e.union_set);
      if (!uni.ok()) return uni.status();
      StatusOr<KeywordSet> inter = tree.ReadKeywordSet(e.inter_set);
      if (!inter.ok()) return inter.status();
      stats->blobs_read += 2;
      if (!(uni.value() == child.uni)) {
        return CorruptionAt(page, "entry union set differs from subtree");
      }
      if (!(inter.value() == child.inter)) {
        return CorruptionAt(page,
                            "entry intersection set differs from subtree");
      }
      facts.mbr.Extend(child.mbr);
      facts.uni = facts.uni.Union(child.uni);
      facts.inter = first ? child.inter : facts.inter.Intersect(child.inter);
      facts.objects += child.objects;
      first = false;
    }
  }
  *out = std::move(facts);
  return Status::Ok();
}

struct KcrFacts {
  Rect mbr;
  KeywordCountMap kcm;
  uint64_t objects = 0;
};

Status WalkKcr(const KcrTree& tree, PageId page, uint32_t level,
               VerifyStats* stats, KcrFacts* out) {
  StatusOr<KcrTree::Node> read = tree.ReadNode(page);
  if (!read.ok()) return read.status();
  const KcrTree::Node node = std::move(read).value();
  ++stats->nodes_visited;

  if (node.size() == 0) return CorruptionAt(page, "empty node");
  if (node.size() > tree.options().capacity) {
    return CorruptionAt(page, "fan-out exceeds capacity");
  }
  if (node.is_leaf != (level == 1)) {
    return CorruptionAt(page, "leaf flag inconsistent with depth");
  }

  KcrFacts facts;
  if (node.is_leaf) {
    for (const KcrTree::LeafEntry& e : node.leaf_entries) {
      StatusOr<KeywordSet> doc = tree.ReadKeywordSet(e.keywords);
      if (!doc.ok()) return doc.status();
      ++stats->blobs_read;
      ++stats->objects_seen;
      facts.mbr.Extend(e.loc);
      facts.kcm.AddDoc(doc.value());
      facts.objects += 1;
    }
  } else {
    for (const KcrTree::InnerEntry& e : node.inner_entries) {
      KcrFacts child;
      WSK_RETURN_IF_ERROR(WalkKcr(tree, e.child, level - 1, stats, &child));
      if (!e.mbr.ContainsRect(child.mbr)) {
        return CorruptionAt(page, "entry MBR does not contain its subtree");
      }
      if (e.cnt != child.objects) {
        return CorruptionAt(page, "entry cnt differs from subtree");
      }
      StatusOr<KeywordCountMap> kcm = tree.ReadKcm(e.kcm);
      if (!kcm.ok()) return kcm.status();
      ++stats->blobs_read;
      if (!(kcm.value() == child.kcm)) {
        return CorruptionAt(page, "entry keyword-count map differs");
      }
      facts.mbr.Extend(child.mbr);
      facts.kcm.Merge(child.kcm);
      facts.objects += child.objects;
    }
  }
  *out = std::move(facts);
  return Status::Ok();
}

}  // namespace

Status VerifySetRTree(const SetRTree& tree, VerifyStats* stats) {
  VerifyStats local;
  if (stats == nullptr) stats = &local;
  *stats = VerifyStats{};
  if (tree.height() == 0) {
    if (tree.num_objects() != 0) {
      return Status::Corruption("empty tree claims objects");
    }
    return Status::Ok();
  }
  SetRFacts facts;
  WSK_RETURN_IF_ERROR(
      WalkSetR(tree, tree.SearchRoot(), tree.height(), stats, &facts));
  if (facts.objects != tree.num_objects()) {
    return Status::Corruption("reachable objects differ from num_objects");
  }
  return Status::Ok();
}

Status VerifyKcrTree(const KcrTree& tree, VerifyStats* stats) {
  VerifyStats local;
  if (stats == nullptr) stats = &local;
  *stats = VerifyStats{};
  if (tree.height() == 0) {
    if (tree.num_objects() != 0) {
      return Status::Corruption("empty tree claims objects");
    }
    return Status::Ok();
  }
  KcrFacts facts;
  WSK_RETURN_IF_ERROR(
      WalkKcr(tree, tree.SearchRoot(), tree.height(), stats, &facts));
  if (facts.objects != tree.num_objects()) {
    return Status::Corruption("reachable objects differ from num_objects");
  }
  if (facts.objects != tree.root_cnt()) {
    return Status::Corruption("root cnt differs from reachable objects");
  }
  StatusOr<KeywordCountMap> root_kcm = tree.ReadRootKcm();
  if (!root_kcm.ok()) return root_kcm.status();
  if (!(root_kcm.value() == facts.kcm)) {
    return Status::Corruption("root keyword-count map differs from subtree");
  }
  return Status::Ok();
}

}  // namespace wsk
