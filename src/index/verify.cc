#include "index/verify.h"

#include <string>

namespace wsk {

namespace {

Status CorruptionAt(PageId page, const std::string& what) {
  return Status::Corruption("node " + std::to_string(page) + ": " + what);
}

struct SetRFacts {
  Rect mbr;
  KeywordSet uni;
  KeywordSet inter;
  uint64_t objects = 0;
};

// Walks over fully materialized nodes (ReadDecodedNode, uncached), which
// makes the checks format-agnostic: v1 payloads come from the blob store,
// v2 payloads decode inline, and the invariants are identical. blobs_read
// counts verified payloads either way, so expectations carry across
// formats.
Status WalkSetR(const SetRTree& tree, PageId page, uint32_t level,
                VerifyStats* stats, SetRFacts* out) {
  // Structural checks run on the bare node before any payload is
  // materialized: a node whose header lies about its kind carries garbage
  // payload references, and dereferencing them must not happen.
  StatusOr<SetRTree::Node> head = tree.ReadNode(page);
  if (!head.ok()) return head.status();
  ++stats->nodes_visited;

  if (head.value().size() == 0) return CorruptionAt(page, "empty node");
  if (head.value().size() > tree.options().capacity) {
    return CorruptionAt(page, "fan-out exceeds capacity");
  }
  if (head.value().is_leaf != (level == 1)) {
    return CorruptionAt(page, "leaf flag inconsistent with depth");
  }

  StatusOr<std::shared_ptr<const SetRTree::DecodedNode>> read =
      tree.ReadDecodedNode(page, /*use_cache=*/false);
  if (!read.ok()) return read.status();
  const SetRTree::DecodedNode& decoded = *read.value();
  const SetRTree::Node& node = decoded.node;

  SetRFacts facts;
  bool first = true;
  if (node.is_leaf) {
    for (size_t i = 0; i < node.leaf_entries.size(); ++i) {
      const SetRTree::LeafEntry& e = node.leaf_entries[i];
      const KeywordSet& doc = decoded.leaf_docs[i];
      ++stats->blobs_read;
      ++stats->objects_seen;
      facts.mbr.Extend(e.loc);
      facts.uni = facts.uni.Union(doc);
      facts.inter = first ? doc : facts.inter.Intersect(doc);
      facts.objects += 1;
      first = false;
    }
  } else {
    for (size_t i = 0; i < node.inner_entries.size(); ++i) {
      const SetRTree::InnerEntry& e = node.inner_entries[i];
      SetRFacts child;
      WSK_RETURN_IF_ERROR(WalkSetR(tree, e.child, level - 1, stats, &child));
      if (!e.mbr.ContainsRect(child.mbr)) {
        return CorruptionAt(page, "entry MBR does not contain its subtree");
      }
      const KeywordSet& uni = decoded.child_union[i];
      const KeywordSet& inter = decoded.child_inter[i];
      stats->blobs_read += 2;
      if (!(uni == child.uni)) {
        return CorruptionAt(page, "entry union set differs from subtree");
      }
      if (!(inter == child.inter)) {
        return CorruptionAt(page,
                            "entry intersection set differs from subtree");
      }
      facts.mbr.Extend(child.mbr);
      facts.uni = facts.uni.Union(child.uni);
      facts.inter = first ? child.inter : facts.inter.Intersect(child.inter);
      facts.objects += child.objects;
      first = false;
    }
  }
  *out = std::move(facts);
  return Status::Ok();
}

struct KcrFacts {
  Rect mbr;
  KeywordCountMap kcm;
  uint64_t objects = 0;
};

Status WalkKcr(const KcrTree& tree, PageId page, uint32_t level,
               VerifyStats* stats, KcrFacts* out) {
  // Same ordering as WalkSetR: structural checks before payloads.
  StatusOr<KcrTree::Node> head = tree.ReadNode(page);
  if (!head.ok()) return head.status();
  ++stats->nodes_visited;

  if (head.value().size() == 0) return CorruptionAt(page, "empty node");
  if (head.value().size() > tree.options().capacity) {
    return CorruptionAt(page, "fan-out exceeds capacity");
  }
  if (head.value().is_leaf != (level == 1)) {
    return CorruptionAt(page, "leaf flag inconsistent with depth");
  }

  StatusOr<std::shared_ptr<const KcrTree::DecodedNode>> read =
      tree.ReadDecodedNode(page, /*use_cache=*/false);
  if (!read.ok()) return read.status();
  const KcrTree::DecodedNode& decoded = *read.value();
  const KcrTree::Node& node = decoded.node;

  KcrFacts facts;
  if (node.is_leaf) {
    for (size_t i = 0; i < node.leaf_entries.size(); ++i) {
      const KcrTree::LeafEntry& e = node.leaf_entries[i];
      ++stats->blobs_read;
      ++stats->objects_seen;
      facts.mbr.Extend(e.loc);
      facts.kcm.AddDoc(decoded.leaf_docs[i]);
      facts.objects += 1;
    }
  } else {
    for (size_t i = 0; i < node.inner_entries.size(); ++i) {
      const KcrTree::InnerEntry& e = node.inner_entries[i];
      KcrFacts child;
      WSK_RETURN_IF_ERROR(WalkKcr(tree, e.child, level - 1, stats, &child));
      if (!e.mbr.ContainsRect(child.mbr)) {
        return CorruptionAt(page, "entry MBR does not contain its subtree");
      }
      if (e.cnt != child.objects) {
        return CorruptionAt(page, "entry cnt differs from subtree");
      }
      ++stats->blobs_read;
      if (!(decoded.child_kcms[i] == child.kcm)) {
        return CorruptionAt(page, "entry keyword-count map differs");
      }
      facts.mbr.Extend(child.mbr);
      facts.kcm.Merge(child.kcm);
      facts.objects += child.objects;
    }
  }
  *out = std::move(facts);
  return Status::Ok();
}

}  // namespace

Status VerifySetRTree(const SetRTree& tree, VerifyStats* stats) {
  VerifyStats local;
  if (stats == nullptr) stats = &local;
  *stats = VerifyStats{};
  if (tree.height() == 0) {
    if (tree.num_objects() != 0) {
      return Status::Corruption("empty tree claims objects");
    }
    return Status::Ok();
  }
  SetRFacts facts;
  WSK_RETURN_IF_ERROR(
      WalkSetR(tree, tree.SearchRoot(), tree.height(), stats, &facts));
  if (facts.objects != tree.num_objects()) {
    return Status::Corruption("reachable objects differ from num_objects");
  }
  return Status::Ok();
}

Status VerifyKcrTree(const KcrTree& tree, VerifyStats* stats) {
  VerifyStats local;
  if (stats == nullptr) stats = &local;
  *stats = VerifyStats{};
  if (tree.height() == 0) {
    if (tree.num_objects() != 0) {
      return Status::Corruption("empty tree claims objects");
    }
    return Status::Ok();
  }
  KcrFacts facts;
  WSK_RETURN_IF_ERROR(
      WalkKcr(tree, tree.SearchRoot(), tree.height(), stats, &facts));
  if (facts.objects != tree.num_objects()) {
    return Status::Corruption("reachable objects differ from num_objects");
  }
  if (facts.objects != tree.root_cnt()) {
    return Status::Corruption("root cnt differs from reachable objects");
  }
  StatusOr<KeywordCountMap> root_kcm = tree.ReadRootKcm();
  if (!root_kcm.ok()) return root_kcm.status();
  if (!(root_kcm.value() == facts.kcm)) {
    return Status::Corruption("root keyword-count map differs from subtree");
  }
  return Status::Ok();
}

}  // namespace wsk
