#include "index/node_codec.h"

namespace wsk {

Status ReadNodeBytes(BufferPool* pool, PageId first, uint32_t num_pages,
                     std::vector<uint8_t>* out) {
  const uint32_t page_size = pool->pager()->page_size();
  out->resize(static_cast<size_t>(num_pages) * page_size);
  for (uint32_t i = 0; i < num_pages; ++i) {
    StatusOr<PageHandle> handle = pool->Fetch(first + i);
    if (!handle.ok()) return handle.status();
    std::memcpy(out->data() + static_cast<size_t>(i) * page_size,
                handle.value().data(), page_size);
  }
  return Status::Ok();
}

Status WriteNodeBytes(BufferPool* pool, PageId first, uint32_t num_pages,
                      const uint8_t* data) {
  const uint32_t page_size = pool->pager()->page_size();
  for (uint32_t i = 0; i < num_pages; ++i) {
    StatusOr<PageHandle> handle = pool->Fetch(first + i);
    if (!handle.ok()) return handle.status();
    std::memcpy(handle.value().data(),
                data + static_cast<size_t>(i) * page_size, page_size);
    handle.value().MarkDirty();
  }
  return Status::Ok();
}

}  // namespace wsk
