#include "index/node_codec.h"

namespace wsk {

StatusOr<NodeView> NodeView::Read(BufferPool* pool, PageId first,
                                  uint32_t num_pages) {
  const uint32_t page_size = pool->pager()->page_size();
  NodeView view;
  if (pool->pager()->mapped()) {
    // Mapped read mode: borrow the span straight from the OS page cache,
    // zero-copy at any node size and without touching the buffer pool.
    StatusOr<const uint8_t*> span = pool->pager()->MappedSpan(
        first, static_cast<uint64_t>(num_pages) * page_size);
    if (span.ok()) {
      view.data_ = span.value();
      view.size_ = static_cast<size_t>(num_pages) * page_size;
      view.mapped_ = true;
      return StatusOr<NodeView>(std::move(view));
    }
    // Fall through to the buffered path (e.g. span validation failed).
  }
  if (num_pages == 1) {
    // Zero-copy fast path: borrow the pinned frame's span directly.
    StatusOr<PageHandle> handle = pool->Fetch(first);
    if (!handle.ok()) return handle.status();
    view.pin_ = std::move(handle).value();
    view.data_ = view.pin_.data();
    view.size_ = page_size;
    return StatusOr<NodeView>(std::move(view));
  }
  WSK_RETURN_IF_ERROR(ReadNodeBytes(pool, first, num_pages, &view.scratch_));
  view.data_ = view.scratch_.data();
  view.size_ = view.scratch_.size();
  return StatusOr<NodeView>(std::move(view));
}

Status ReadNodeBytes(BufferPool* pool, PageId first, uint32_t num_pages,
                     std::vector<uint8_t>* out) {
  const uint32_t page_size = pool->pager()->page_size();
  out->resize(static_cast<size_t>(num_pages) * page_size);
  for (uint32_t i = 0; i < num_pages; ++i) {
    StatusOr<PageHandle> handle = pool->Fetch(first + i);
    if (!handle.ok()) return handle.status();
    std::memcpy(out->data() + static_cast<size_t>(i) * page_size,
                handle.value().data(), page_size);
  }
  return Status::Ok();
}

Status WriteNodeBytes(BufferPool* pool, PageId first, uint32_t num_pages,
                      const uint8_t* data) {
  const uint32_t page_size = pool->pager()->page_size();
  for (uint32_t i = 0; i < num_pages; ++i) {
    StatusOr<PageHandle> handle = pool->Fetch(first + i);
    if (!handle.ok()) return handle.status();
    std::memcpy(handle.value().data(),
                data + static_cast<size_t>(i) * page_size, page_size);
    handle.value().MarkDirty();
  }
  return Status::Ok();
}

}  // namespace wsk
