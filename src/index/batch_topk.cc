#include "index/batch_topk.h"

#include <limits>
#include <queue>
#include <unordered_map>

namespace wsk {

namespace {

// Per-query traversal state: exactly a solo TopKIterator's heap plus its
// IndexTopK result accumulation, advanced in lockstep with the batch.
struct QueryState {
  const SpatialKeywordQuery* query = nullptr;
  const CancelToken* cancel = nullptr;
  std::priority_queue<SearchEntry, std::vector<SearchEntry>, SearchEntryLess>
      heap;
  std::vector<ScoredObject> topk;
  Status status;
  bool done = false;
  uint64_t nodes_seen = 0;
  uint64_t nodes_visited = 0;
  uint64_t objects_scored = 0;
};

// Pops ready objects until the query finishes or needs a node expansion.
// Mirrors IndexTopK's loop: stop pulling once k results have emitted, and
// an exhausted frontier ends the query with fewer than k.
void DrainObjects(QueryState* q) {
  while (!q->done) {
    if (q->topk.size() >= q->query->k) {
      q->done = true;
      return;
    }
    if (q->heap.empty()) {
      q->done = true;
      return;
    }
    const SearchEntry top = q->heap.top();
    if (!top.is_object) return;  // frontier blocked on a node visit
    q->heap.pop();
    q->topk.push_back(ScoredObject{top.object, top.bound});
  }
}

}  // namespace

std::vector<BatchTopKResult> BatchedIndexTopK(
    const TopKSource& source, const std::vector<BatchTopKRequest>& requests,
    bool use_cache, TraceRecorder* trace) {
  TraceSpan span(trace, TraceStage::kBatchTopK);
  std::vector<QueryState> states(requests.size());
  const PageId root = source.SearchRoot();
  for (size_t i = 0; i < requests.size(); ++i) {
    QueryState& q = states[i];
    q.query = requests[i].query;
    q.cancel = requests[i].cancel;
    if (root == kInvalidPageId) {
      q.done = true;  // empty index: every query finishes with no results
      continue;
    }
    SearchEntry entry;
    entry.bound = std::numeric_limits<double>::infinity();
    entry.node = root;
    q.heap.push(entry);
    ++q.nodes_seen;
  }

  // Scheduling scratch, reused across rounds. Groups preserve first-seen
  // order so the expansion sequence is deterministic.
  std::unordered_map<PageId, size_t> group_of;
  std::vector<PageId> group_nodes;
  std::vector<std::vector<size_t>> group_members;
  std::vector<const SpatialKeywordQuery*> expand_queries;
  std::vector<std::vector<SearchEntry>> expand_scratch;
  std::vector<std::vector<SearchEntry>*> expand_outs;
  uint64_t batch_nodes_expanded = 0;
  uint64_t batch_nodes_shared = 0;

  for (;;) {
    group_of.clear();
    group_nodes.clear();
    group_members.clear();
    bool any_active = false;
    for (size_t i = 0; i < states.size(); ++i) {
      QueryState& q = states[i];
      DrainObjects(&q);
      if (q.done) continue;
      any_active = true;
      const PageId node = q.heap.top().node;
      auto [it, inserted] = group_of.emplace(node, group_nodes.size());
      if (inserted) {
        group_nodes.push_back(node);
        group_members.emplace_back();
      }
      group_members[it->second].push_back(i);
    }
    if (!any_active) break;

    for (size_t g = 0; g < group_nodes.size(); ++g) {
      expand_queries.clear();
      expand_outs.clear();
      std::vector<size_t> live;
      for (size_t i : group_members[g]) {
        QueryState& q = states[i];
        // Same order as the solo iterator: the node entry is popped, then
        // the cancel token gates the expansion — the traversal's I/O unit.
        q.heap.pop();
        if (q.cancel != nullptr) {
          const Status check = q.cancel->Check();
          if (!check.ok()) {
            q.status = check;
            q.done = true;
            continue;
          }
        }
        live.push_back(i);
      }
      if (live.empty()) continue;
      if (expand_scratch.size() < live.size()) {
        expand_scratch.resize(live.size());
      }
      for (size_t j = 0; j < live.size(); ++j) {
        expand_scratch[j].clear();
        expand_queries.push_back(states[live[j]].query);
        expand_outs.push_back(&expand_scratch[j]);
      }
      const Status expanded = source.ExpandNodeBatch(
          group_nodes[g], expand_queries.data(), expand_outs.data(),
          live.size(), use_cache);
      if (!expanded.ok()) {
        // The node itself failed to materialize; every query that needed
        // it fails the same way a solo walk would.
        for (size_t i : live) {
          states[i].status = expanded;
          states[i].done = true;
        }
        continue;
      }
      ++batch_nodes_expanded;
      batch_nodes_shared += live.size() - 1;
      for (size_t j = 0; j < live.size(); ++j) {
        QueryState& q = states[live[j]];
        ++q.nodes_visited;
        for (const SearchEntry& child : expand_scratch[j]) {
          if (child.is_object) {
            ++q.objects_scored;
          } else {
            ++q.nodes_seen;
          }
          q.heap.push(child);
        }
      }
    }
  }

  std::vector<BatchTopKResult> results(states.size());
  uint64_t nodes_seen = 0;
  uint64_t nodes_visited = 0;
  uint64_t objects_scored = 0;
  for (size_t i = 0; i < states.size(); ++i) {
    results[i].status = states[i].status;
    if (states[i].status.ok()) results[i].topk = std::move(states[i].topk);
    nodes_seen += states[i].nodes_seen;
    nodes_visited += states[i].nodes_visited;
    objects_scored += states[i].objects_scored;
  }
  if (trace != nullptr) {
    trace->Add(TraceCounter::kNodesSeen, nodes_seen);
    trace->Add(TraceCounter::kNodesVisited, nodes_visited);
    trace->Add(TraceCounter::kNodesPruned, nodes_seen - nodes_visited);
    trace->Add(TraceCounter::kLeafObjectsScored, objects_scored);
    trace->Add(TraceCounter::kBatchQueries, states.size());
    trace->Add(TraceCounter::kBatchNodesExpanded, batch_nodes_expanded);
    trace->Add(TraceCounter::kBatchNodesShared, batch_nodes_shared);
  }
  return results;
}

}  // namespace wsk
