// Sort-Tile-Recursive packing: groups items into nodes of at most
// `capacity` members using x-slabs subdivided by y (Leutenegger et al.).
// Shared by both tree bulk loaders.
#ifndef WSK_INDEX_STR_PACK_H_
#define WSK_INDEX_STR_PACK_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/macros.h"

namespace wsk {

// Returns groups of indexes into `centers`, each of size <= capacity, and
// all but possibly the last few of size == capacity. Deterministic.
inline std::vector<std::vector<uint32_t>> StrPack(
    const std::vector<Point>& centers, uint32_t capacity) {
  WSK_CHECK(capacity >= 2);
  const size_t n = centers.size();
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);

  const size_t num_nodes = (n + capacity - 1) / capacity;
  const size_t num_slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_nodes))));
  const size_t slab_size = num_slabs == 0 ? n : (n + num_slabs - 1) / num_slabs;

  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (centers[a].x != centers[b].x) return centers[a].x < centers[b].x;
    if (centers[a].y != centers[b].y) return centers[a].y < centers[b].y;
    return a < b;
  });

  std::vector<std::vector<uint32_t>> groups;
  groups.reserve(num_nodes);
  for (size_t slab_start = 0; slab_start < n; slab_start += slab_size) {
    const size_t slab_end = std::min(n, slab_start + slab_size);
    std::sort(order.begin() + slab_start, order.begin() + slab_end,
              [&](uint32_t a, uint32_t b) {
                if (centers[a].y != centers[b].y)
                  return centers[a].y < centers[b].y;
                if (centers[a].x != centers[b].x)
                  return centers[a].x < centers[b].x;
                return a < b;
              });
    for (size_t i = slab_start; i < slab_end; i += capacity) {
      const size_t end = std::min(slab_end, i + capacity);
      groups.emplace_back(order.begin() + i, order.begin() + end);
    }
  }
  return groups;
}

}  // namespace wsk

#endif  // WSK_INDEX_STR_PACK_H_
