#include "index/dom_bounds.h"

#include <algorithm>
#include <bit>

#include "common/macros.h"

namespace wsk {

namespace {

// Counts of the candidate's terms that occur in the node, i.e. the counts
// of S ∩ N.doc.
std::vector<uint32_t> RelevantCounts(const NodeDomStats& stats,
                                     const KeywordSet& candidate) {
  std::vector<uint32_t> rel;
  rel.reserve(candidate.size());
  for (TermId t : candidate) {
    const uint32_t c = stats.CountOf(t);
    if (c > 0) rel.push_back(c);
  }
  return rel;
}

// Same, but selecting precomputed universe counts by mask bit. Bits are
// consumed in ascending position = ascending term id, so the vector is
// identical to RelevantCounts over the equivalent KeywordSet.
std::vector<uint32_t> RelevantCountsFromMask(const NodeUniverseCounts& uc,
                                             CandidateMask mask) {
  std::vector<uint32_t> rel;
  rel.reserve(static_cast<size_t>(std::popcount(mask)));
  while (mask != 0) {
    const int i = std::countr_zero(mask);
    mask &= mask - 1;
    const uint32_t c = uc.counts[static_cast<size_t>(i)];
    if (c > 0) rel.push_back(c);
  }
  return rel;
}

uint32_t CountGe(const std::vector<uint32_t>& values, uint32_t threshold) {
  uint32_t n = 0;
  for (uint32_t v : values) {
    if (v >= threshold) ++n;
  }
  return n;
}

uint32_t MaxDomCore(const NodeDomStats& stats,
                    const std::vector<uint32_t>& rel, double query_size,
                    double threshold) {
  const uint32_t cnt = stats.cnt();
  uint64_t rel_total = 0;
  for (uint32_t c : rel) rel_total += c;

  // Walk ans from cnt downward, maintaining
  //   c_rel  = Σ_{t ∈ S∩N} min(count(t), ans)        (max relevant mass on
  //                                                    the remaining objects)
  //   c_irr  = Σ_{t ∈ N−S} max(0, count(t) − pruned) (min irrelevant mass
  //                                                    left on them)
  // and return the first ans whose pseudo similarity clears the threshold
  // (Theorem 3 necessary condition).
  double c_rel = static_cast<double>(rel_total);
  double c_irr = static_cast<double>(stats.total_count() - rel_total);
  for (uint32_t ans = cnt; ans >= 1; --ans) {
    const uint32_t pruned = cnt - ans;
    if (pruned > 0) {
      // Stepping from ans+1 to ans: relevant terms with count > ans lose
      // one forced occurrence; every irrelevant term with a remaining
      // occurrence parks one on the newly pruned object.
      c_rel -= CountGe(rel, ans + 1);
      const uint32_t all_ge = stats.NumTermsGe(pruned);
      const uint32_t rel_ge = CountGe(rel, pruned);
      c_irr -= (all_ge - rel_ge);
    }
    const double pseudo_denom = query_size * ans + c_irr;
    if (c_rel >= threshold * pseudo_denom) return ans;
  }
  return 0;
}

uint32_t MinDomCore(const NodeDomStats& stats,
                    const std::vector<uint32_t>& rel, double query_size,
                    double threshold) {
  const uint32_t cnt = stats.cnt();
  uint64_t rel_total = 0;
  for (uint32_t c : rel) rel_total += c;

  // Walk ans upward, maintaining
  //   lhs     = Σ_{t ∈ S∩N} max(0, count(t) − ans)   (relevant mass that
  //              cannot be packed onto ans dominators)
  //   irr_max = Σ_{t ∈ N−S} min(count(t), cnt − ans) (max irrelevant mass
  //              available to dilute the non-dominators)
  // and return the first ans for which the non-dominators can plausibly
  // all sit at or below the threshold:
  //   lhs <= threshold * (|S| (cnt − ans) + irr_max).
  double lhs = static_cast<double>(rel_total);
  double irr_max = static_cast<double>(stats.total_count() - rel_total);
  for (uint32_t ans = 0; ans <= cnt; ++ans) {
    if (ans > 0) {
      // ans-1 -> ans: relevant terms with count >= ans park one more
      // occurrence on a dominator; the non-dominator pool shrinks by one,
      // costing every term with count >= (cnt - ans + 1) one unit of
      // dilution capacity.
      lhs -= CountGe(rel, ans);
      const uint32_t b_old = cnt - ans + 1;
      const uint32_t all_ge = stats.NumTermsGe(b_old);
      const uint32_t rel_ge = CountGe(rel, b_old);
      irr_max -= (all_ge - rel_ge);
    }
    const double rhs =
        threshold * (query_size * (cnt - ans) + irr_max);
    if (lhs <= rhs) return ans;
  }
  return cnt;
}

}  // namespace

NodeDomStats::NodeDomStats(const KeywordCountMap* kcm, uint32_t cnt,
                           const Rect& mbr)
    : kcm_(kcm), cnt_(cnt), mbr_(mbr) {
  uint32_t max_count = 0;
  for (const auto& [term, count] : kcm->pairs()) {
    total_ += count;
    max_count = std::max(max_count, count);
  }
  // Histogram, then suffix-accumulate: ge_[c] = #terms with count >= c.
  ge_.assign(max_count + 1, 0);
  for (const auto& [term, count] : kcm->pairs()) ++ge_[count];
  for (uint32_t c = max_count; c >= 1; --c) ge_[c - 1] += ge_[c];
}

NodeUniverseCounts NodeUniverseCounts::Build(
    const NodeDomStats& stats, const CandidateUniverse& universe) {
  NodeUniverseCounts uc;
  uc.counts.resize(universe.size());
  for (size_t i = 0; i < universe.size(); ++i) {
    uc.counts[i] = stats.CountOf(universe.term(i));
  }
  return uc;
}

double DominatorThresholdLow(const Rect& node_mbr, const DomContext& ctx,
                             double tsim_missing) {
  WSK_CHECK(ctx.alpha > 0.0 && ctx.alpha < 1.0);
  const double min_sdist = MinDist(ctx.query_loc, node_mbr) / ctx.diagonal;
  return ctx.alpha / (1.0 - ctx.alpha) * (min_sdist - ctx.missing_sdist) +
         tsim_missing;
}

double DominatorThresholdHigh(const Rect& node_mbr, const DomContext& ctx,
                              double tsim_missing) {
  WSK_CHECK(ctx.alpha > 0.0 && ctx.alpha < 1.0);
  const double max_sdist = MaxDist(ctx.query_loc, node_mbr) / ctx.diagonal;
  return ctx.alpha / (1.0 - ctx.alpha) * (max_sdist - ctx.missing_sdist) +
         tsim_missing;
}

uint32_t MaxDom(const NodeDomStats& stats, const KeywordSet& candidate,
                double tsim_missing, const DomContext& ctx) {
  const uint32_t cnt = stats.cnt();
  if (cnt == 0) return 0;
  const double threshold = DominatorThresholdLow(stats.mbr(), ctx,
                                                 tsim_missing);
  // A dominator needs TSim > threshold; TSim ranges over [0, 1].
  if (threshold < 0.0) return cnt;  // every object clears the bar
  if (threshold >= 1.0) return 0;   // nothing can
  if (candidate.empty()) return 0;  // TSim == 0 for every object
  return MaxDomCore(stats, RelevantCounts(stats, candidate),
                    static_cast<double>(candidate.size()), threshold);
}

uint32_t MinDom(const NodeDomStats& stats, const KeywordSet& candidate,
                double tsim_missing, const DomContext& ctx) {
  const uint32_t cnt = stats.cnt();
  if (cnt == 0) return 0;
  const double threshold = DominatorThresholdHigh(stats.mbr(), ctx,
                                                  tsim_missing);
  if (threshold < 0.0) return cnt;  // TSim >= 0 > U: all surely dominate
  if (threshold >= 1.0) return 0;
  if (candidate.empty()) return 0;
  return MinDomCore(stats, RelevantCounts(stats, candidate),
                    static_cast<double>(candidate.size()), threshold);
}

uint32_t MaxDom(const NodeDomStats& stats, const NodeUniverseCounts& uc,
                CandidateMask candidate, uint32_t cand_size,
                double tsim_missing, const DomContext& ctx) {
  const uint32_t cnt = stats.cnt();
  if (cnt == 0) return 0;
  const double threshold = DominatorThresholdLow(stats.mbr(), ctx,
                                                 tsim_missing);
  if (threshold < 0.0) return cnt;
  if (threshold >= 1.0) return 0;
  if (candidate == 0) return 0;
  return MaxDomCore(stats, RelevantCountsFromMask(uc, candidate),
                    static_cast<double>(cand_size), threshold);
}

uint32_t MinDom(const NodeDomStats& stats, const NodeUniverseCounts& uc,
                CandidateMask candidate, uint32_t cand_size,
                double tsim_missing, const DomContext& ctx) {
  const uint32_t cnt = stats.cnt();
  if (cnt == 0) return 0;
  const double threshold = DominatorThresholdHigh(stats.mbr(), ctx,
                                                  tsim_missing);
  if (threshold < 0.0) return cnt;
  if (threshold >= 1.0) return 0;
  if (candidate == 0) return 0;
  return MinDomCore(stats, RelevantCountsFromMask(uc, candidate),
                    static_cast<double>(cand_size), threshold);
}

}  // namespace wsk
