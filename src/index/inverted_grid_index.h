// Inverted-file + grid baseline index — the pre-IR-tree architecture of
// the related work (Zhou et al. [34], Martins et al. [25]): textual
// retrieval through per-term posting lists, spatial retrieval through a
// uniform grid, combined at query time.
//
// Serves as a comparison substrate for the SetR-/KcR-trees: it answers the
// same spatial keyword top-k queries (exactly) with very different I/O
// behaviour — cheap for keyword-selective queries, expensive when the
// spatial component dominates, since grid cells carry no textual summary.
//
// Disk layout (all payloads in a BlobStore; refs in the metadata page):
//   object table   n   × (x f64, y f64, doc BlobRef)    random access
//   term directory T   × posting BlobRef                random access
//   postings       one blob per term: sorted object ids
//   cell directory G*G × posting BlobRef                random access
//   cell postings  one blob per grid cell: object ids
#ifndef WSK_INDEX_INVERTED_GRID_INDEX_H_
#define WSK_INDEX_INVERTED_GRID_INDEX_H_

#include <memory>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/query.h"
#include "observability/trace.h"
#include "storage/blob_store.h"
#include "storage/buffer_pool.h"
#include "storage/node_cache.h"
#include "text/similarity.h"

namespace wsk {

class InvertedGridIndex {
 public:
  struct Options {
    SimilarityModel model = SimilarityModel::kJaccard;
    // Grid cells per axis; 0 chooses ceil(sqrt(n / 64)) so cells hold ~64
    // objects on average.
    uint32_t grid_resolution = 0;
  };

  static StatusOr<std::unique_ptr<InvertedGridIndex>> Build(
      const Dataset& dataset, BufferPool* pool, const Options& options);
  static StatusOr<std::unique_ptr<InvertedGridIndex>> Open(BufferPool* pool);

  // Exact spatial keyword top-k, ordered (score desc, id asc). `trace`
  // (optional, borrowed) records a topk span plus posting/cell counters.
  StatusOr<std::vector<ScoredObject>> TopK(const SpatialKeywordQuery& query,
                                           TraceRecorder* trace = nullptr)
      const;

  // 1 + number of objects scoring strictly above `target_score`.
  StatusOr<uint32_t> RankOfScore(const SpatialKeywordQuery& query,
                                 double target_score,
                                 TraceRecorder* trace = nullptr) const;

  double diagonal() const { return diagonal_; }
  uint64_t num_objects() const { return num_objects_; }
  uint32_t grid_resolution() const { return grid_; }

  // Attaches a shared decoded-node cache (not owned) for posting lists;
  // term and cell postings register disjoint cache namespaces. Pass
  // nullptr to detach.
  void AttachNodeCache(NodeCache* cache);

 private:
  explicit InvertedGridIndex(BufferPool* pool);

  struct ObjectEntry {
    Point loc;
    BlobRef doc;
  };

  Status WriteMeta();
  Status ReadMeta();

  StatusOr<ObjectEntry> ReadObjectEntry(ObjectId id) const;
  // Decodes the posting list at `slot`; served from the attached cache
  // (namespace `cache_ns`: term or cell postings) when possible.
  StatusOr<std::shared_ptr<const std::vector<ObjectId>>> ReadPosting(
      const BlobRef& directory, uint32_t slot, uint32_t cache_ns) const;
  Rect CellRect(uint32_t cx, uint32_t cy) const;

  // Scores every object that shares a term with the query (exact) and
  // returns them; `seen` marks their ids for the spatial phase.
  Status ScoreTextualCandidates(const SpatialKeywordQuery& query,
                                std::vector<ScoredObject>* scored,
                                std::vector<bool>* seen,
                                TraceRecorder* trace) const;

  BufferPool* const pool_;
  NodeCache* cache_ = nullptr;  // not owned; see AttachNodeCache
  uint32_t term_cache_ns_ = 0;
  uint32_t cell_cache_ns_ = 0;
  mutable BlobStore blobs_;
  Options options_;
  PageId meta_page_ = kInvalidPageId;
  uint64_t num_objects_ = 0;
  uint32_t num_terms_ = 0;
  uint32_t grid_ = 1;
  Rect bounds_;
  double diagonal_ = 1.0;
  BlobRef object_table_;
  BlobRef term_directory_;
  BlobRef cell_directory_;
};

}  // namespace wsk

#endif  // WSK_INDEX_INVERTED_GRID_INDEX_H_
