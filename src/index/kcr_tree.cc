#include "index/kcr_tree.h"

#include <algorithm>
#include <limits>
#include <string>

#include "index/node_codec.h"
#include "index/str_pack.h"
#include "text/score_kernel.h"

namespace wsk {

namespace {

constexpr uint32_t kMagic = 0x43524b57;  // "WKRC"
constexpr size_t kHeaderBytes = 8;
constexpr size_t kLeafEntryBytes = 4 + 16 + BlobRef::kSerializedSize;  // 32
constexpr size_t kInnerEntryBytes =
    4 + 32 + 4 + BlobRef::kSerializedSize;  // 52

size_t NodeBytes(uint32_t capacity) {
  return kHeaderBytes +
         static_cast<size_t>(capacity) *
             std::max(kLeafEntryBytes, kInnerEntryBytes);
}

void SerializeNode(const KcrTree::Node& node, std::vector<uint8_t>* out) {
  out->clear();
  ByteWriter writer(out);
  writer.PutU8(node.is_leaf ? 0 : 1);
  writer.PutU8(0);
  writer.PutU8(0);
  writer.PutU8(0);
  writer.PutU32(static_cast<uint32_t>(node.size()));
  uint8_t ref[BlobRef::kSerializedSize];
  if (node.is_leaf) {
    for (const KcrTree::LeafEntry& e : node.leaf_entries) {
      writer.PutU32(e.object);
      writer.PutDouble(e.loc.x);
      writer.PutDouble(e.loc.y);
      e.keywords.Serialize(ref);
      writer.PutBytes(ref, sizeof(ref));
    }
  } else {
    for (const KcrTree::InnerEntry& e : node.inner_entries) {
      writer.PutU32(e.child);
      writer.PutRect(e.mbr);
      writer.PutU32(e.cnt);
      e.kcm.Serialize(ref);
      writer.PutBytes(ref, sizeof(ref));
    }
  }
}

// Validates the header before decoding: a corrupted kind byte or entry
// count must surface as Corruption, not as a decode overrun. Parses in
// place over whatever span the caller holds (typically a zero-copy
// NodeView over the pinned page).
StatusOr<KcrTree::Node> DeserializeNode(PageId page, const uint8_t* data,
                                        size_t size) {
  ByteReader reader(data, size);
  KcrTree::Node node;
  const uint8_t kind = reader.GetU8();
  if (kind > 1) {
    return Status::Corruption("node " + std::to_string(page) +
                              ": unknown node kind");
  }
  node.is_leaf = kind == 0;
  reader.GetU8();
  reader.GetU8();
  reader.GetU8();
  const uint32_t count = reader.GetU32();
  const size_t entry_bytes =
      node.is_leaf ? kLeafEntryBytes : kInnerEntryBytes;
  if (count > (size - kHeaderBytes) / entry_bytes) {
    return Status::Corruption("node " + std::to_string(page) +
                              ": entry count overflows the node");
  }
  if (node.is_leaf) {
    node.leaf_entries.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      KcrTree::LeafEntry e;
      e.object = reader.GetU32();
      e.loc.x = reader.GetDouble();
      e.loc.y = reader.GetDouble();
      e.keywords =
          BlobRef::Deserialize(reader.GetBytes(BlobRef::kSerializedSize));
      node.leaf_entries.push_back(e);
    }
  } else {
    node.inner_entries.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      KcrTree::InnerEntry e;
      e.child = reader.GetU32();
      e.mbr = reader.GetRect();
      e.cnt = reader.GetU32();
      e.kcm = BlobRef::Deserialize(reader.GetBytes(BlobRef::kSerializedSize));
      node.inner_entries.push_back(e);
    }
  }
  return node;
}

// v2 body encoding of one keyword set: varint term count, then the sorted
// ids delta-coded.
void PutKeywordSetV2(std::vector<uint8_t>* body, const KeywordSet& set) {
  const std::vector<TermId>& terms = set.terms();
  PutVarint(body, terms.size());
  PutDeltaU32s(body, terms.data(), terms.size());
}

bool GetKeywordSetV2(CheckedReader* reader, KeywordSet* out) {
  uint32_t count = 0;
  if (!reader->GetVarint32(&count)) return false;
  std::vector<TermId> terms;
  terms.reserve(std::min<size_t>(count, reader->remaining()));
  if (!reader->GetDeltaU32s(count, &terms)) return false;
  *out = KeywordSet::FromSorted(std::move(terms));
  return true;
}

// v2 body encoding of a keyword-count map: varint pair count, then per
// pair the term delta (strictly ascending, like a keyword set) followed by
// its count as a plain varint.
void PutKcmV2(std::vector<uint8_t>* body, const KeywordCountMap& map) {
  const auto& pairs = map.pairs();
  PutVarint(body, pairs.size());
  uint32_t prev = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i == 0) {
      PutVarint(body, pairs[0].first);
    } else {
      WSK_CHECK(pairs[i].first > prev);
      PutVarint(body, pairs[i].first - prev);
    }
    prev = pairs[i].first;
    PutVarint(body, pairs[i].second);
  }
}

bool GetKcmV2(CheckedReader* reader, KeywordCountMap* out) {
  uint32_t n = 0;
  if (!reader->GetVarint32(&n)) return false;
  std::vector<std::pair<TermId, uint32_t>> pairs;
  pairs.reserve(std::min<size_t>(n, reader->remaining()));
  uint64_t term = 0;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t step = 0;
    if (!reader->GetVarint(&step)) return false;
    if (i == 0) {
      term = step;
    } else {
      if (step == 0) return false;  // terms must be strictly ascending
      term += step;
    }
    if (term > 0xffffffffull) return false;
    uint32_t count = 0;
    if (!reader->GetVarint32(&count) || count == 0) return false;
    pairs.emplace_back(static_cast<TermId>(term), count);
  }
  *out = KeywordCountMap::FromSortedPairs(std::move(pairs));
  return true;
}

// Digest of a decoded node's primary payload, used by the cache's
// no-mutation check (debug builds / sanitizer tests).
uint64_t FingerprintDecodedNode(const void* value) {
  const auto* decoded = static_cast<const KcrTree::DecodedNode*>(value);
  FingerprintHasher hasher;
  hasher.MixU64(decoded->node.is_leaf ? 1 : 0);
  hasher.MixU64(decoded->node.size());
  if (decoded->node.is_leaf) {
    for (size_t i = 0; i < decoded->node.leaf_entries.size(); ++i) {
      const KcrTree::LeafEntry& e = decoded->node.leaf_entries[i];
      hasher.MixU64(e.object);
      hasher.Mix(&e.loc, sizeof(e.loc));
      const std::vector<TermId>& terms = decoded->leaf_docs[i].terms();
      hasher.Mix(terms.data(), terms.size() * sizeof(TermId));
    }
  } else {
    for (size_t i = 0; i < decoded->node.inner_entries.size(); ++i) {
      const KcrTree::InnerEntry& e = decoded->node.inner_entries[i];
      hasher.MixU64(e.child);
      hasher.Mix(&e.mbr, sizeof(e.mbr));
      hasher.MixU64(e.cnt);
      const auto& pairs = decoded->child_kcms[i].pairs();
      hasher.Mix(pairs.data(), pairs.size() * sizeof(pairs[0]));
    }
  }
  return hasher.digest();
}

}  // namespace

Rect KcrTree::Node::ComputeMbr() const {
  Rect mbr;
  if (is_leaf) {
    for (const LeafEntry& e : leaf_entries) mbr.Extend(e.loc);
  } else {
    for (const InnerEntry& e : inner_entries) mbr.Extend(e.mbr);
  }
  return mbr;
}

KcrTree::KcrTree(BufferPool* pool, const Options& options, double diagonal)
    : pool_(pool), blobs_(pool), options_(options), diagonal_(diagonal) {
  const uint32_t page_size = pool->pager()->page_size();
  pages_per_node_ = static_cast<uint32_t>(
      (NodeBytes(options.capacity) + page_size - 1) / page_size);
}

StatusOr<std::unique_ptr<KcrTree>> KcrTree::CreateEmpty(
    BufferPool* pool, double diagonal, const Options& options) {
  if (options.capacity < 2) {
    return Status::InvalidArgument("node capacity must be at least 2");
  }
  if (options.format != kNodeFormatV1 && options.format != kNodeFormatV2) {
    return Status::InvalidArgument("unknown node format");
  }
  if (options.format == kNodeFormatV2 &&
      options.capacity > kMaxNodeCountV2) {
    return Status::InvalidArgument("v2 node capacity exceeds u16");
  }
  if (pool->pager()->num_pages() != 0) {
    return Status::FailedPrecondition(
        "KcrTree::CreateEmpty requires a fresh pager file");
  }
  if (diagonal <= 0.0) {
    return Status::InvalidArgument("diagonal must be positive");
  }
  std::unique_ptr<KcrTree> tree(new KcrTree(pool, options, diagonal));
  tree->meta_page_ = pool->pager()->AllocatePages(1);
  WSK_RETURN_IF_ERROR(tree->WriteMeta());
  return tree;
}

StatusOr<std::unique_ptr<KcrTree>> KcrTree::BulkLoad(const Dataset& dataset,
                                                     BufferPool* pool,
                                                     const Options& options) {
  return BulkLoadObjects(dataset.objects(), dataset.diagonal(), pool, options);
}

StatusOr<std::unique_ptr<KcrTree>> KcrTree::BulkLoadObjects(
    const std::vector<SpatialObject>& objects, double diagonal,
    BufferPool* pool, const Options& options) {
  StatusOr<std::unique_ptr<KcrTree>> created =
      CreateEmpty(pool, diagonal, options);
  if (!created.ok()) return created.status();
  std::unique_ptr<KcrTree> tree = std::move(created).value();
  if (objects.empty()) {
    WSK_RETURN_IF_ERROR(tree->Finalize());
    return tree;
  }

  struct Pending {
    PageId page;
    Summary summary;
    Point center;
  };

  std::vector<Point> centers;
  centers.reserve(objects.size());
  for (const SpatialObject& o : objects) centers.push_back(o.loc);
  std::vector<std::vector<uint32_t>> groups =
      StrPack(centers, options.capacity);

  const bool v2 = options.format == kNodeFormatV2;
  std::vector<Pending> level;
  level.reserve(groups.size());
  for (const std::vector<uint32_t>& group : groups) {
    Node node;
    node.is_leaf = true;
    Summary summary;
    std::vector<const KeywordSet*> docs;  // v2: payloads inline in the node
    for (uint32_t idx : group) {
      const SpatialObject& o = objects[idx];
      BlobRef ref;
      if (v2) {
        docs.push_back(&o.doc);
      } else {
        StatusOr<BlobRef> written = tree->WriteKeywordSet(o.doc);
        if (!written.ok()) return written.status();
        ref = written.value();
      }
      node.leaf_entries.push_back(LeafEntry{o.id, o.loc, ref});
      summary.mbr.Extend(o.loc);
      summary.kcm.AddDoc(o.doc);
      ++summary.cnt;
    }
    PageId page;
    if (v2) {
      StatusOr<PageId> appended = tree->AppendNodeV2(
          node, docs, {}, /*children_are_leaves=*/false);
      if (!appended.ok()) return appended.status();
      page = appended.value();
    } else {
      page = tree->AllocateNodeSlot();
      WSK_RETURN_IF_ERROR(tree->WriteNode(page, node));
    }
    const Point center{(summary.mbr.min_x + summary.mbr.max_x) / 2,
                       (summary.mbr.min_y + summary.mbr.max_y) / 2};
    level.push_back(Pending{page, std::move(summary), center});
  }
  tree->height_ = 1;
  tree->num_objects_ = objects.size();

  bool children_are_leaves = true;
  while (level.size() > 1) {
    centers.clear();
    for (const Pending& p : level) centers.push_back(p.center);
    groups = StrPack(centers, options.capacity);
    std::vector<Pending> next;
    next.reserve(groups.size());
    for (const std::vector<uint32_t>& group : groups) {
      Node node;
      node.is_leaf = false;
      Summary summary;
      std::vector<const KeywordCountMap*> kcms;
      for (uint32_t idx : group) {
        const Pending& child = level[idx];
        BlobRef kcm_ref;
        if (v2) {
          kcms.push_back(&child.summary.kcm);
        } else {
          StatusOr<BlobRef> kcm = tree->WriteKcm(child.summary.kcm);
          if (!kcm.ok()) return kcm.status();
          kcm_ref = kcm.value();
        }
        node.inner_entries.push_back(InnerEntry{
            child.page, child.summary.mbr, child.summary.cnt, kcm_ref});
        summary.mbr.Extend(child.summary.mbr);
        summary.kcm.Merge(child.summary.kcm);
        summary.cnt += child.summary.cnt;
      }
      PageId page;
      if (v2) {
        StatusOr<PageId> appended =
            tree->AppendNodeV2(node, {}, kcms, children_are_leaves);
        if (!appended.ok()) return appended.status();
        page = appended.value();
      } else {
        page = tree->AllocateNodeSlot();
        WSK_RETURN_IF_ERROR(tree->WriteNode(page, node));
      }
      const Point center{(summary.mbr.min_x + summary.mbr.max_x) / 2,
                         (summary.mbr.min_y + summary.mbr.max_y) / 2};
      next.push_back(Pending{page, std::move(summary), center});
    }
    level = std::move(next);
    children_are_leaves = false;
    ++tree->height_;
  }
  tree->root_ = level.front().page;
  tree->root_mbr_ = level.front().summary.mbr;
  tree->root_cnt_ = level.front().summary.cnt;
  StatusOr<BlobRef> root_kcm = tree->WriteKcm(level.front().summary.kcm);
  if (!root_kcm.ok()) return root_kcm.status();
  tree->root_kcm_ = root_kcm.value();
  WSK_RETURN_IF_ERROR(tree->Finalize());
  return tree;
}

StatusOr<std::unique_ptr<KcrTree>> KcrTree::Open(BufferPool* pool) {
  std::unique_ptr<KcrTree> tree(new KcrTree(pool, Options{}, 1.0));
  tree->meta_page_ = 0;
  WSK_RETURN_IF_ERROR(tree->ReadMeta());
  return tree;
}

PageId KcrTree::AllocateNodeSlot() {
  return pool_->pager()->AllocatePages(pages_per_node_);
}

Status KcrTree::WriteNode(PageId page, const Node& node) {
  WSK_CHECK_MSG(node.size() <= options_.capacity, "node overflow: %zu",
                node.size());
  std::vector<uint8_t> bytes;
  SerializeNode(node, &bytes);
  bytes.resize(static_cast<size_t>(pages_per_node_) *
                   pool_->pager()->page_size(),
               0);
  // Invalidate before the write lands so no reader can re-cache the stale
  // decoding between the store and the erase.
  if (cache_ != nullptr) cache_->Erase(cache_tree_id_, page);
  return WriteNodeBytes(pool_, page, pages_per_node_, bytes.data());
}

StatusOr<PageId> KcrTree::AppendNodeV2(
    const Node& node, const std::vector<const KeywordSet*>& docs,
    const std::vector<const KeywordCountMap*>& kcms,
    bool children_are_leaves) {
  std::vector<uint8_t> body;
  if (node.is_leaf) {
    for (size_t i = 0; i < node.leaf_entries.size(); ++i) {
      const LeafEntry& e = node.leaf_entries[i];
      PutVarint(&body, e.object);
      ByteWriter writer(&body);
      writer.PutDouble(e.loc.x);
      writer.PutDouble(e.loc.y);
      PutKeywordSetV2(&body, *docs[i]);
    }
  } else {
    for (size_t i = 0; i < node.inner_entries.size(); ++i) {
      const InnerEntry& e = node.inner_entries[i];
      PutVarint(&body, MakeChildRef(e.child, children_are_leaves));
      ByteWriter writer(&body);
      writer.PutRect(e.mbr);
      PutVarint(&body, e.cnt);
      PutKcmV2(&body, *kcms[i]);
    }
  }
  return AppendNodeRecordV2(pool_, node.is_leaf,
                            static_cast<uint32_t>(node.size()), body);
}

StatusOr<std::shared_ptr<const KcrTree::DecodedNode>>
KcrTree::MaterializeNodeV2(PageId page) const {
  StatusOr<NodeRecordV2> record = ReadNodeRecordV2(pool_, page, &checksum_ledger_);
  if (!record.ok()) return record.status();
  const NodeRecordV2& rec = record.value();
  auto corrupt = [page](const char* what) {
    return Status::Corruption("v2 node at page " + std::to_string(page) +
                              ": " + what);
  };
  auto decoded = std::make_shared<DecodedNode>();
  decoded->node.is_leaf = rec.is_leaf();
  CheckedReader reader(rec.body(), rec.body_bytes());
  size_t bytes = sizeof(DecodedNode);
  if (rec.is_leaf()) {
    decoded->node.leaf_entries.reserve(rec.count());
    decoded->leaf_docs.reserve(rec.count());
    for (uint32_t i = 0; i < rec.count(); ++i) {
      LeafEntry e;
      uint64_t object = 0;
      if (!reader.GetVarint(&object) || object > 0xffffffffull) {
        return corrupt("bad object id");
      }
      e.object = static_cast<ObjectId>(object);
      if (!reader.GetDouble(&e.loc.x) || !reader.GetDouble(&e.loc.y)) {
        return corrupt("truncated leaf entry");
      }
      KeywordSet doc;
      if (!GetKeywordSetV2(&reader, &doc)) {
        return corrupt("malformed leaf keyword set");
      }
      bytes += sizeof(LeafEntry) + sizeof(KeywordSet) + doc.SerializedSize();
      decoded->node.leaf_entries.push_back(e);
      decoded->leaf_docs.push_back(std::move(doc));
    }
  } else {
    const PageId num_pages = pool_->pager()->num_pages();
    decoded->node.inner_entries.reserve(rec.count());
    // Fill child_kcms completely before building child_stats: NodeDomStats
    // keeps a pointer to its map, so the vector must never reallocate
    // afterwards.
    decoded->child_kcms.reserve(rec.count());
    for (uint32_t i = 0; i < rec.count(); ++i) {
      InnerEntry e;
      uint64_t ref = 0;
      if (!reader.GetVarint(&ref)) return corrupt("bad child reference");
      const PageId child = ChildRefPage(ref);
      if (child == 0 || child >= num_pages ||
          (ref >> 1) > 0xffffffffull) {
        return corrupt("child reference out of range");
      }
      e.child = child;
      if (!reader.GetRect(&e.mbr)) return corrupt("truncated inner entry");
      if (!reader.GetVarint32(&e.cnt)) return corrupt("bad subtree count");
      KeywordCountMap kcm;
      if (!GetKcmV2(&reader, &kcm)) {
        return corrupt("malformed keyword-count map");
      }
      bytes += sizeof(InnerEntry) + sizeof(KeywordCountMap) +
               kcm.SerializedSize();
      decoded->node.inner_entries.push_back(e);
      decoded->child_kcms.push_back(std::move(kcm));
    }
    decoded->child_stats.reserve(rec.count());
    for (size_t i = 0; i < decoded->node.inner_entries.size(); ++i) {
      const InnerEntry& e = decoded->node.inner_entries[i];
      decoded->child_stats.emplace_back(&decoded->child_kcms[i], e.cnt,
                                        e.mbr);
      bytes += decoded->child_stats.back().MemoryBytes();
    }
  }
  if (reader.remaining() != 0) {
    return corrupt("trailing bytes after the last entry");
  }
  decoded->memory_bytes = bytes;
  return StatusOr<std::shared_ptr<const DecodedNode>>(std::move(decoded));
}

StatusOr<KcrTree::Node> KcrTree::ReadNode(PageId page) const {
  if (options_.format == kNodeFormatV2) {
    StatusOr<std::shared_ptr<const DecodedNode>> decoded =
        MaterializeNodeV2(page);
    if (!decoded.ok()) return decoded.status();
    return decoded.value()->node;
  }
  StatusOr<NodeView> view = NodeView::Read(pool_, page, pages_per_node_);
  if (!view.ok()) return view.status();
  return DeserializeNode(page, view.value().data(), view.value().size());
}

StatusOr<NodeStat> KcrTree::StatNode(PageId page) const {
  NodeStat stat;
  if (options_.format == kNodeFormatV2) {
    StatusOr<NodeRecordV2> record = ReadNodeRecordV2(pool_, page, &checksum_ledger_);
    if (!record.ok()) return record.status();
    stat.is_leaf = record.value().is_leaf();
    stat.entries = record.value().count();
    stat.record_bytes = kNodeHeaderBytesV2 + record.value().body_bytes();
    stat.record_pages = record.value().pages();
    return stat;
  }
  StatusOr<Node> node = ReadNode(page);
  if (!node.ok()) return node.status();
  stat.is_leaf = node.value().is_leaf;
  stat.entries = static_cast<uint32_t>(node.value().size());
  stat.record_bytes = static_cast<uint32_t>(
      kHeaderBytes + node.value().size() *
                         (stat.is_leaf ? kLeafEntryBytes : kInnerEntryBytes));
  stat.record_pages = pages_per_node_;
  return stat;
}

void KcrTree::AttachNodeCache(NodeCache* cache) {
  cache_ = cache;
  if (cache != nullptr && cache_tree_id_ == 0) {
    cache_tree_id_ = NodeCache::NextTreeId();
  }
}

StatusOr<std::shared_ptr<const KcrTree::DecodedNode>> KcrTree::MaterializeNode(
    PageId page) const {
  auto decoded = std::make_shared<DecodedNode>();
  {
    StatusOr<NodeView> view = NodeView::Read(pool_, page, pages_per_node_);
    if (!view.ok()) return view.status();
    StatusOr<Node> node =
        DeserializeNode(page, view.value().data(), view.value().size());
    if (!node.ok()) return node.status();
    decoded->node = std::move(node).value();
  }  // drop the page pin before the blob reads below
  const Node& node = decoded->node;
  size_t bytes = sizeof(DecodedNode);
  if (node.is_leaf) {
    bytes += node.leaf_entries.size() * sizeof(LeafEntry);
    decoded->leaf_docs.reserve(node.leaf_entries.size());
    for (const LeafEntry& e : node.leaf_entries) {
      StatusOr<KeywordSet> doc = ReadKeywordSet(e.keywords);
      if (!doc.ok()) return doc.status();
      bytes += sizeof(KeywordSet) + doc.value().SerializedSize();
      decoded->leaf_docs.push_back(std::move(doc).value());
    }
  } else {
    bytes += node.inner_entries.size() * sizeof(InnerEntry);
    // Fill child_kcms completely before building child_stats: NodeDomStats
    // keeps a pointer to its map, so the vector must never reallocate
    // afterwards.
    decoded->child_kcms.reserve(node.inner_entries.size());
    for (const InnerEntry& e : node.inner_entries) {
      StatusOr<KeywordCountMap> kcm = ReadKcm(e.kcm);
      if (!kcm.ok()) return kcm.status();
      bytes += sizeof(KeywordCountMap) + kcm.value().SerializedSize();
      decoded->child_kcms.push_back(std::move(kcm).value());
    }
    decoded->child_stats.reserve(node.inner_entries.size());
    for (size_t i = 0; i < node.inner_entries.size(); ++i) {
      const InnerEntry& e = node.inner_entries[i];
      decoded->child_stats.emplace_back(&decoded->child_kcms[i], e.cnt,
                                        e.mbr);
      bytes += decoded->child_stats.back().MemoryBytes();
    }
  }
  decoded->memory_bytes = bytes;
  return StatusOr<std::shared_ptr<const DecodedNode>>(std::move(decoded));
}

StatusOr<std::shared_ptr<const KcrTree::DecodedNode>> KcrTree::ReadDecodedNode(
    PageId page, bool use_cache) const {
  NodeCache* cache = use_cache ? cache_ : nullptr;
  if (cache != nullptr) {
    std::shared_ptr<const DecodedNode> hit =
        cache->LookupAs<DecodedNode>(cache_tree_id_, page);
    IoStats& io = pool_->pager()->io_stats();
    if (hit != nullptr) {
      io.RecordNodeCacheHit();
      return StatusOr<std::shared_ptr<const DecodedNode>>(std::move(hit));
    }
    io.RecordNodeCacheMiss();
  }
  StatusOr<std::shared_ptr<const DecodedNode>> decoded =
      options_.format == kNodeFormatV2 ? MaterializeNodeV2(page)
                                       : MaterializeNode(page);
  if (!decoded.ok()) return decoded.status();
  if (cache != nullptr) {
    // Mapped leaves re-decode straight from the OS page cache with no
    // buffer-pool traffic, so caching them would only evict inner-node
    // skeletons that are worth far more per byte. Keep inner nodes.
    const bool cheap_to_redecode =
        decoded.value()->node.is_leaf && pool_->pager()->mapped();
    if (!cheap_to_redecode) {
      cache->Insert(cache_tree_id_, page, decoded.value(),
                    decoded.value()->memory_bytes, &FingerprintDecodedNode);
    }
  }
  return decoded;
}

StatusOr<BlobRef> KcrTree::WriteKeywordSet(const KeywordSet& set) {
  std::vector<uint8_t> bytes;
  set.Serialize(&bytes);
  return blobs_.Append(bytes);
}

StatusOr<BlobRef> KcrTree::WriteKcm(const KeywordCountMap& map) {
  std::vector<uint8_t> bytes;
  map.Serialize(&bytes);
  return blobs_.Append(bytes);
}

StatusOr<KeywordSet> KcrTree::ReadKeywordSet(const BlobRef& ref) const {
  std::vector<uint8_t> bytes;
  WSK_RETURN_IF_ERROR(blobs_.Read(ref, &bytes));
  return KeywordSet::Deserialize(bytes.data(), bytes.size());
}

StatusOr<KeywordCountMap> KcrTree::ReadKcm(const BlobRef& ref) const {
  std::vector<uint8_t> bytes;
  WSK_RETURN_IF_ERROR(blobs_.Read(ref, &bytes));
  return KeywordCountMap::Deserialize(bytes.data(), bytes.size());
}

StatusOr<KeywordCountMap> KcrTree::ReadRootKcm() const {
  if (height_ == 0) return KeywordCountMap();
  return ReadKcm(root_kcm_);
}

Status KcrTree::WriteMeta() {
  std::vector<uint8_t> bytes;
  ByteWriter writer(&bytes);
  writer.PutU32(kMagic);
  writer.PutU32(options_.format);  // meta version == node format
  writer.PutU32(options_.capacity);
  writer.PutU32(pages_per_node_);
  writer.PutU32(root_);
  writer.PutU32(height_);
  writer.PutU64(num_objects_);
  writer.PutDouble(diagonal_);
  writer.PutU8(static_cast<uint8_t>(options_.model));
  writer.PutU32(root_cnt_);
  writer.PutRect(root_mbr_);
  uint8_t ref[BlobRef::kSerializedSize];
  root_kcm_.Serialize(ref);
  writer.PutBytes(ref, sizeof(ref));
  bytes.resize(pool_->pager()->page_size(), 0);
  return WriteNodeBytes(pool_, meta_page_, 1, bytes.data());
}

Status KcrTree::ReadMeta() {
  // Meta pages are single-page by construction: zero-copy view.
  StatusOr<NodeView> view = NodeView::Read(pool_, meta_page_, 1);
  if (!view.ok()) return view.status();
  ByteReader reader(view.value().data(), view.value().size());
  if (reader.GetU32() != kMagic) {
    return Status::Corruption("not a KcR-tree file");
  }
  const uint32_t version = reader.GetU32();
  if (version != kNodeFormatV1 && version != kNodeFormatV2) {
    return Status::Corruption("unsupported KcR-tree version");
  }
  options_.format = static_cast<uint8_t>(version);
  options_.capacity = reader.GetU32();
  pages_per_node_ = reader.GetU32();
  root_ = reader.GetU32();
  height_ = reader.GetU32();
  num_objects_ = reader.GetU64();
  diagonal_ = reader.GetDouble();
  options_.model = static_cast<SimilarityModel>(reader.GetU8());
  root_cnt_ = reader.GetU32();
  root_mbr_ = reader.GetRect();
  root_kcm_ = BlobRef::Deserialize(reader.GetBytes(BlobRef::kSerializedSize));
  return Status::Ok();
}

Status KcrTree::Finalize() {
  WSK_RETURN_IF_ERROR(blobs_.Flush());
  WSK_RETURN_IF_ERROR(WriteMeta());
  return pool_->FlushAll();
}

PageId KcrTree::SearchRoot() const {
  return height_ == 0 ? kInvalidPageId : root_;
}

namespace {

// Same kernel shortcut as SetRTree: one universe per node visit, one
// footprint + popcount per object (bit-identical scores).
void AppendKcrLeafEntries(const KcrTree::DecodedNode& decoded, double diagonal,
                          const SpatialKeywordQuery& query,
                          std::vector<SearchEntry>* out) {
  const KcrTree::Node& node = decoded.node;
  const double alpha = query.alpha;
  const CandidateUniverse qu = CandidateUniverse::Build(query.doc);
  const CandidateMask qmask = qu.valid() ? qu.FullMask() : 0;
  for (size_t i = 0; i < node.leaf_entries.size(); ++i) {
    const KcrTree::LeafEntry& e = node.leaf_entries[i];
    const KeywordSet& doc = decoded.leaf_docs[i];
    const double sdist = Distance(e.loc, query.loc) / diagonal;
    const double tsim =
        qu.valid() ? ScoreCandidate(qu.FootprintOf(doc), qmask, query.model)
                   : TextualSimilarity(doc, query.doc, query.model);
    SearchEntry entry;
    entry.bound = alpha * (1.0 - sdist) + (1.0 - alpha) * tsim;
    entry.is_object = true;
    entry.object = e.object;
    out->push_back(entry);
  }
}

void AppendKcrInnerEntries(const KcrTree::DecodedNode& decoded,
                           double diagonal,
                           const SpatialKeywordQuery& query,
                           std::vector<SearchEntry>* out) {
  const KcrTree::Node& node = decoded.node;
  const double alpha = query.alpha;
  for (size_t i = 0; i < node.inner_entries.size(); ++i) {
    const KcrTree::InnerEntry& e = node.inner_entries[i];
    const KeywordCountMap& kcm = decoded.child_kcms[i];
    // Textual bound from the count map: an object below the child can share
    // at most the number of query terms present in the subtree.
    size_t present = 0;
    for (TermId t : query.doc) {
      if (kcm.CountOf(t) > 0) ++present;
    }
    double tsim_bound;
    switch (query.model) {
      case SimilarityModel::kJaccard:
        // |o ∩ q| <= present and |o ∪ q| >= |q|.
        tsim_bound = query.doc.empty()
                         ? 0.0
                         : static_cast<double>(present) / query.doc.size();
        break;
      case SimilarityModel::kDice:
        // |o.doc| >= 1 whenever the intersection is non-empty.
        tsim_bound = query.doc.empty()
                         ? 0.0
                         : 2.0 * present / (1.0 + query.doc.size());
        break;
      case SimilarityModel::kOverlap:
        tsim_bound = present > 0 ? 1.0 : 0.0;
        break;
      default:
        tsim_bound = 1.0;
        break;
    }
    const double min_sdist = MinDist(query.loc, e.mbr) / diagonal;
    SearchEntry entry;
    entry.bound = alpha * (1.0 - min_sdist) + (1.0 - alpha) * tsim_bound;
    entry.node = e.child;
    out->push_back(entry);
  }
}

}  // namespace

Status KcrTree::ExpandNode(PageId page, const SpatialKeywordQuery& query,
                           bool use_cache, std::vector<SearchEntry>* out)
    const {
  StatusOr<std::shared_ptr<const DecodedNode>> read =
      ReadDecodedNode(page, use_cache);
  if (!read.ok()) return read.status();
  const DecodedNode& decoded = *read.value();
  if (decoded.node.is_leaf) {
    AppendKcrLeafEntries(decoded, diagonal_, query, out);
  } else {
    AppendKcrInnerEntries(decoded, diagonal_, query, out);
  }
  return Status::Ok();
}

Status KcrTree::ExpandNodeBatch(PageId page,
                                const SpatialKeywordQuery* const* queries,
                                std::vector<SearchEntry>* const* outs,
                                size_t count, bool use_cache) const {
  if (count == 0) return Status::Ok();
  StatusOr<std::shared_ptr<const DecodedNode>> read =
      ReadDecodedNode(page, use_cache);
  if (!read.ok()) return read.status();
  const DecodedNode& decoded = *read.value();
  const Node& node = decoded.node;
  if (!node.is_leaf) {
    for (size_t qi = 0; qi < count; ++qi) {
      AppendKcrInnerEntries(decoded, diagonal_, *queries[qi], outs[qi]);
    }
    return Status::Ok();
  }
  // Leaf: one union universe + one footprint per object for the whole
  // batch, bit-identical per query (see SetRTree::ExpandNodeBatch).
  KeywordSet union_doc = queries[0]->doc;
  bool mixed_models = false;
  for (size_t qi = 1; qi < count; ++qi) {
    union_doc = union_doc.Union(queries[qi]->doc);
    if (queries[qi]->model != queries[0]->model) mixed_models = true;
  }
  const CandidateUniverse qu = CandidateUniverse::Build(union_doc);
  if (!qu.valid()) {
    for (size_t qi = 0; qi < count; ++qi) {
      AppendKcrLeafEntries(decoded, diagonal_, *queries[qi], outs[qi]);
    }
    return Status::Ok();
  }
  std::vector<CandidateMask> qmasks(count);
  for (size_t qi = 0; qi < count; ++qi) {
    qmasks[qi] = qu.MaskOf(queries[qi]->doc);
  }
  std::vector<double> tsims(count);
  for (size_t i = 0; i < node.leaf_entries.size(); ++i) {
    const LeafEntry& e = node.leaf_entries[i];
    const Footprint fp = qu.FootprintOf(decoded.leaf_docs[i]);
    if (mixed_models) {
      for (size_t qi = 0; qi < count; ++qi) {
        tsims[qi] = ScoreCandidate(fp, qmasks[qi], queries[qi]->model);
      }
    } else {
      ScoreAllCandidates(fp, qmasks.data(), count, queries[0]->model,
                         tsims.data());
    }
    for (size_t qi = 0; qi < count; ++qi) {
      const SpatialKeywordQuery& query = *queries[qi];
      const double sdist = Distance(e.loc, query.loc) / diagonal_;
      SearchEntry entry;
      entry.bound = query.alpha * (1.0 - sdist) +
                    (1.0 - query.alpha) * tsims[qi];
      entry.is_object = true;
      entry.object = e.object;
      outs[qi]->push_back(entry);
    }
  }
  return Status::Ok();
}

StatusOr<KcrTree::Summary> KcrTree::ComputeSummary(const Node& node) const {
  Summary summary;
  if (node.is_leaf) {
    for (const LeafEntry& e : node.leaf_entries) {
      StatusOr<KeywordSet> doc = ReadKeywordSet(e.keywords);
      if (!doc.ok()) return doc.status();
      summary.mbr.Extend(e.loc);
      summary.kcm.AddDoc(doc.value());
      ++summary.cnt;
    }
  } else {
    for (const InnerEntry& e : node.inner_entries) {
      StatusOr<KeywordCountMap> kcm = ReadKcm(e.kcm);
      if (!kcm.ok()) return kcm.status();
      summary.mbr.Extend(e.mbr);
      summary.kcm.Merge(kcm.value());
      summary.cnt += e.cnt;
    }
  }
  return summary;
}

void KcrTree::QuadraticSplit(Node* node, Node* sibling) const {
  sibling->is_leaf = node->is_leaf;
  const size_t total = node->size();
  const size_t min_fill = std::max<size_t>(1, options_.capacity * 2 / 5);

  auto rect_of = [&](size_t i) -> Rect {
    if (node->is_leaf) return Rect::FromPoint(node->leaf_entries[i].loc);
    return node->inner_entries[i].mbr;
  };

  size_t seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < total; ++i) {
    for (size_t j = i + 1; j < total; ++j) {
      Rect u = rect_of(i);
      u.Extend(rect_of(j));
      const double waste = u.Area() - rect_of(i).Area() - rect_of(j).Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<bool> to_sibling(total, false);
  std::vector<bool> assigned(total, false);
  Rect mbr_a = rect_of(seed_a);
  Rect mbr_b = rect_of(seed_b);
  size_t count_a = 1, count_b = 1;
  assigned[seed_a] = assigned[seed_b] = true;
  to_sibling[seed_b] = true;

  for (size_t remaining = total - 2; remaining > 0; --remaining) {
    size_t pick = total;
    bool pick_b = false;
    if (count_a + remaining == min_fill) {
      for (size_t i = 0; i < total; ++i)
        if (!assigned[i]) {
          pick = i;
          pick_b = false;
          break;
        }
    } else if (count_b + remaining == min_fill) {
      for (size_t i = 0; i < total; ++i)
        if (!assigned[i]) {
          pick = i;
          pick_b = true;
          break;
        }
    } else {
      double best_diff = -1.0;
      for (size_t i = 0; i < total; ++i) {
        if (assigned[i]) continue;
        const double da = mbr_a.Enlargement(rect_of(i));
        const double db = mbr_b.Enlargement(rect_of(i));
        const double diff = std::abs(da - db);
        if (diff > best_diff) {
          best_diff = diff;
          pick = i;
          pick_b = db < da ||
                   (da == db &&
                    (mbr_b.Area() < mbr_a.Area() ||
                     (mbr_a.Area() == mbr_b.Area() && count_b < count_a)));
        }
      }
    }
    WSK_CHECK(pick < total);
    assigned[pick] = true;
    if (pick_b) {
      to_sibling[pick] = true;
      mbr_b.Extend(rect_of(pick));
      ++count_b;
    } else {
      mbr_a.Extend(rect_of(pick));
      ++count_a;
    }
  }

  if (node->is_leaf) {
    std::vector<LeafEntry> keep;
    for (size_t i = 0; i < total; ++i) {
      (to_sibling[i] ? sibling->leaf_entries : keep)
          .push_back(node->leaf_entries[i]);
    }
    node->leaf_entries = std::move(keep);
  } else {
    std::vector<InnerEntry> keep;
    for (size_t i = 0; i < total; ++i) {
      (to_sibling[i] ? sibling->inner_entries : keep)
          .push_back(node->inner_entries[i]);
    }
    node->inner_entries = std::move(keep);
  }
}

Status KcrTree::InsertInto(PageId page, uint32_t level,
                           const SpatialObject& object, BlobRef keywords_ref,
                           ChildUpdate* out) {
  StatusOr<Node> read = ReadNode(page);
  if (!read.ok()) return read.status();
  Node node = std::move(read).value();

  if (level == 1) {
    WSK_CHECK(node.is_leaf);
    node.leaf_entries.push_back(
        LeafEntry{object.id, object.loc, keywords_ref});
  } else {
    WSK_CHECK(!node.is_leaf);
    size_t best = 0;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    const Rect point_rect = Rect::FromPoint(object.loc);
    for (size_t i = 0; i < node.inner_entries.size(); ++i) {
      const Rect& mbr = node.inner_entries[i].mbr;
      const double enlargement = mbr.Enlargement(point_rect);
      const double area = mbr.Area();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = i;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    ChildUpdate child_update;
    WSK_RETURN_IF_ERROR(InsertInto(node.inner_entries[best].child, level - 1,
                                   object, keywords_ref, &child_update));
    InnerEntry& entry = node.inner_entries[best];
    entry.mbr = child_update.updated.mbr;
    entry.cnt = child_update.updated.cnt;
    StatusOr<BlobRef> kcm = WriteKcm(child_update.updated.kcm);
    if (!kcm.ok()) return kcm.status();
    entry.kcm = kcm.value();
    if (child_update.split) {
      StatusOr<BlobRef> kcm2 = WriteKcm(child_update.sibling.kcm);
      if (!kcm2.ok()) return kcm2.status();
      node.inner_entries.push_back(
          InnerEntry{child_update.new_child, child_update.sibling.mbr,
                     child_update.sibling.cnt, kcm2.value()});
    }
  }

  out->split = node.size() > options_.capacity;
  if (out->split) {
    Node sibling;
    QuadraticSplit(&node, &sibling);
    StatusOr<Summary> sib_summary = ComputeSummary(sibling);
    if (!sib_summary.ok()) return sib_summary.status();
    out->sibling = std::move(sib_summary).value();
    out->new_child = AllocateNodeSlot();
    WSK_RETURN_IF_ERROR(WriteNode(out->new_child, sibling));
  }
  StatusOr<Summary> summary = ComputeSummary(node);
  if (!summary.ok()) return summary.status();
  out->updated = std::move(summary).value();
  WSK_RETURN_IF_ERROR(WriteNode(page, node));
  return Status::Ok();
}

Status KcrTree::RemoveFrom(PageId page, uint32_t level, ObjectId object,
                           Point loc, RemoveUpdate* out) {
  StatusOr<Node> read = ReadNode(page);
  if (!read.ok()) return read.status();
  Node node = std::move(read).value();
  out->found = false;

  if (level == 1) {
    for (size_t i = 0; i < node.leaf_entries.size(); ++i) {
      if (node.leaf_entries[i].object == object) {
        node.leaf_entries.erase(node.leaf_entries.begin() + i);
        out->found = true;
        break;
      }
    }
  } else {
    for (size_t i = 0; i < node.inner_entries.size(); ++i) {
      InnerEntry& entry = node.inner_entries[i];
      if (!entry.mbr.Contains(loc)) continue;
      RemoveUpdate child_update;
      WSK_RETURN_IF_ERROR(RemoveFrom(entry.child, level - 1, object, loc,
                                     &child_update));
      if (!child_update.found) continue;
      out->found = true;
      if (child_update.now_empty) {
        node.inner_entries.erase(node.inner_entries.begin() + i);
      } else {
        entry.mbr = child_update.updated.mbr;
        entry.cnt = child_update.updated.cnt;
        StatusOr<BlobRef> kcm = WriteKcm(child_update.updated.kcm);
        if (!kcm.ok()) return kcm.status();
        entry.kcm = kcm.value();
      }
      break;
    }
  }
  if (!out->found) return Status::Ok();

  out->now_empty = node.size() == 0;
  if (!out->now_empty) {
    StatusOr<Summary> summary = ComputeSummary(node);
    if (!summary.ok()) return summary.status();
    out->updated = std::move(summary).value();
  }
  return WriteNode(page, node);
}

Status KcrTree::Remove(ObjectId object, Point loc) {
  if (options_.format == kNodeFormatV2) {
    return Status::FailedPrecondition(
        "v2 KcR-trees are immutable; rebuild instead of removing");
  }
  if (height_ == 0) return Status::NotFound("tree is empty");
  RemoveUpdate update;
  WSK_RETURN_IF_ERROR(RemoveFrom(root_, height_, object, loc, &update));
  if (!update.found) return Status::NotFound("object not in the tree");
  --num_objects_;
  if (update.now_empty) {
    root_ = kInvalidPageId;
    height_ = 0;
    root_mbr_ = Rect{};
    root_cnt_ = 0;
    root_kcm_ = BlobRef{};
    WSK_CHECK(num_objects_ == 0);
    return Status::Ok();
  }
  root_mbr_ = update.updated.mbr;
  root_cnt_ = update.updated.cnt;
  StatusOr<BlobRef> root_kcm = WriteKcm(update.updated.kcm);
  if (!root_kcm.ok()) return root_kcm.status();
  root_kcm_ = root_kcm.value();
  return Status::Ok();
}

Status KcrTree::Insert(const SpatialObject& object) {
  if (options_.format == kNodeFormatV2) {
    return Status::FailedPrecondition(
        "v2 KcR-trees are immutable; rebuild instead of inserting");
  }
  StatusOr<BlobRef> keywords = WriteKeywordSet(object.doc);
  if (!keywords.ok()) return keywords.status();

  if (height_ == 0) {
    Node root;
    root.is_leaf = true;
    root.leaf_entries.push_back(
        LeafEntry{object.id, object.loc, keywords.value()});
    root_ = AllocateNodeSlot();
    WSK_RETURN_IF_ERROR(WriteNode(root_, root));
    height_ = 1;
    num_objects_ = 1;
    root_mbr_ = Rect::FromPoint(object.loc);
    root_cnt_ = 1;
    KeywordCountMap kcm = KeywordCountMap::FromDoc(object.doc);
    StatusOr<BlobRef> root_kcm = WriteKcm(kcm);
    if (!root_kcm.ok()) return root_kcm.status();
    root_kcm_ = root_kcm.value();
    return Status::Ok();
  }

  ChildUpdate update;
  WSK_RETURN_IF_ERROR(
      InsertInto(root_, height_, object, keywords.value(), &update));
  Summary root_summary = update.updated;
  if (update.split) {
    Node new_root;
    new_root.is_leaf = false;
    StatusOr<BlobRef> kcm = WriteKcm(update.updated.kcm);
    if (!kcm.ok()) return kcm.status();
    new_root.inner_entries.push_back(InnerEntry{
        root_, update.updated.mbr, update.updated.cnt, kcm.value()});
    StatusOr<BlobRef> kcm2 = WriteKcm(update.sibling.kcm);
    if (!kcm2.ok()) return kcm2.status();
    new_root.inner_entries.push_back(
        InnerEntry{update.new_child, update.sibling.mbr, update.sibling.cnt,
                   kcm2.value()});
    root_ = AllocateNodeSlot();
    WSK_RETURN_IF_ERROR(WriteNode(root_, new_root));
    ++height_;
    root_summary.mbr = update.updated.mbr;
    root_summary.mbr.Extend(update.sibling.mbr);
    root_summary.kcm.Merge(update.sibling.kcm);
    root_summary.cnt = update.updated.cnt + update.sibling.cnt;
  }
  root_mbr_ = root_summary.mbr;
  root_cnt_ = root_summary.cnt;
  StatusOr<BlobRef> root_kcm = WriteKcm(root_summary.kcm);
  if (!root_kcm.ok()) return root_kcm.status();
  root_kcm_ = root_kcm.value();
  ++num_objects_;
  return Status::Ok();
}

}  // namespace wsk
