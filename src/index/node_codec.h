// Byte-level encode/decode helpers for tree node and metadata pages, plus
// multi-page node I/O through the buffer pool.
//
// A tree node occupies a fixed number of physically consecutive pages (its
// "slot"); reading a node costs one buffered fetch per page, which is how
// the experiments account I/O for node accesses.
#ifndef WSK_INDEX_NODE_CODEC_H_
#define WSK_INDEX_NODE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace wsk {

// Sequential little-endian writer over a caller-owned buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutRect(const Rect& r) {
    PutDouble(r.min_x);
    PutDouble(r.min_y);
    PutDouble(r.max_x);
    PutDouble(r.max_y);
  }
  void PutBytes(const uint8_t* data, size_t n) { PutRaw(data, n); }

  size_t size() const { return out_->size(); }

 private:
  void PutRaw(const void* data, size_t n) {
    const size_t base = out_->size();
    out_->resize(base + n);
    std::memcpy(out_->data() + base, data, n);
  }

  std::vector<uint8_t>* out_;
};

// Sequential reader; bounds-checked via WSK_CHECK (format errors inside the
// library's own pages indicate corruption bugs, not user input).
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t GetU8() { return data_[Advance(1)]; }
  uint32_t GetU32() { return Get<uint32_t>(); }
  uint64_t GetU64() { return Get<uint64_t>(); }
  double GetDouble() { return Get<double>(); }
  Rect GetRect() {
    Rect r;
    r.min_x = GetDouble();
    r.min_y = GetDouble();
    r.max_x = GetDouble();
    r.max_y = GetDouble();
    return r;
  }
  const uint8_t* GetBytes(size_t n) { return data_ + Advance(n); }

  size_t remaining() const { return size_ - pos_; }

 private:
  template <typename T>
  T Get() {
    T v;
    std::memcpy(&v, data_ + Advance(sizeof(T)), sizeof(T));
    return v;
  }
  size_t Advance(size_t n) {
    WSK_CHECK_MSG(pos_ + n <= size_, "decode overrun (%zu + %zu > %zu)", pos_,
                  n, size_);
    const size_t p = pos_;
    pos_ += n;
    return p;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Zero-copy view over a node's serialized bytes.
//
// For a single-page node (the common case: every meta page, and any tree
// built with a small enough capacity) the view *borrows* the pinned page
// span directly — no scratch buffer, no memcpy; the PageHandle held inside
// the view keeps the frame pinned (and its data() stable) for the view's
// lifetime. Multi-page nodes fall back to one gathered copy into an owned
// scratch buffer, since buffer-pool frames are not physically contiguous.
//
// The bytes are read-only; decode them in place with ByteReader. Keep the
// view alive until decoding finishes, and drop it promptly afterwards —
// it may be pinning a buffer-pool frame.
class NodeView {
 public:
  NodeView() = default;  // empty view (data() == nullptr); see Read
  NodeView(NodeView&&) = default;
  NodeView& operator=(NodeView&&) = default;
  NodeView(const NodeView&) = delete;
  NodeView& operator=(const NodeView&) = delete;

  // Reads the `num_pages` consecutive pages starting at `first`.
  static StatusOr<NodeView> Read(BufferPool* pool, PageId first,
                                 uint32_t num_pages);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  // True when the view borrows storage-owned bytes (a pinned page or the
  // pager's read-only mapping) instead of owning a copy.
  bool zero_copy() const { return pin_.valid() || mapped_; }

 private:
  PageHandle pin_;                // single-page path: keeps the span alive
  std::vector<uint8_t> scratch_;  // multi-page path: gathered copy
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;  // borrowing the pager's mapping (any size)
};

// Reads the `num_pages` consecutive pages starting at `first` into `out`
// (resized to num_pages * page_size). Prefer NodeView::Read, which skips
// the copy entirely for single-page nodes.
Status ReadNodeBytes(BufferPool* pool, PageId first, uint32_t num_pages,
                     std::vector<uint8_t>* out);

// Writes `data` (num_pages * page_size bytes) over the slot at `first`.
Status WriteNodeBytes(BufferPool* pool, PageId first, uint32_t num_pages,
                      const uint8_t* data);

}  // namespace wsk

#endif  // WSK_INDEX_NODE_CODEC_H_
