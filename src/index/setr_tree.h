// SetR-tree: the disk-resident hybrid index of Section IV-B.
//
// A variant of the IR-tree. Leaf entries are (object, point, pks) where
// pks points at the object's keyword set; non-leaf entries are
// (child, mbr, pku, pki) where pku/pki point at the union / intersection of
// all keyword sets in the child's subtree. Theorem 1 turns those two sets
// into an upper bound on the ranking score of any object below a node,
// which drives best-first top-k search (TopKSource).
//
// Storage layout: node slots of `pages_per_node` consecutive 4 KiB pages;
// keyword payloads live in a BlobStore and are written adjacent to the node
// that references them ("stored sequentially on disk", Section IV-B). A
// metadata page (page 0) persists the tree header so an index file can be
// reopened.
#ifndef WSK_INDEX_SETR_TREE_H_
#define WSK_INDEX_SETR_TREE_H_

#include <memory>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/query.h"
#include "index/topk.h"
#include "storage/blob_store.h"
#include "storage/buffer_pool.h"
#include "storage/node_cache.h"
#include "storage/node_codec_v2.h"
#include "text/keyword_set.h"
#include "text/similarity.h"

namespace wsk {

// Per-node layout facts for introspection (wsk_cli inspect).
struct NodeStat {
  bool is_leaf = true;
  uint32_t entries = 0;
  uint32_t record_bytes = 0;  // serialized bytes before page padding
  uint32_t record_pages = 0;  // pages the record occupies on disk
};

class SetRTree : public TopKSource {
 public:
  struct Options {
    uint32_t capacity = 100;  // max entries per node (Section VII-A1)
    SimilarityModel model = SimilarityModel::kJaccard;
    // Node format for newly built trees. v1 (default) is the fixed-slot
    // dynamic format (Insert/Remove supported, payloads in the blob
    // store); v2 is the compact static format (varint/delta-packed,
    // checksummed, payloads inline) — bulk-load only, immutable after
    // Finalize. Open() reads the format from the meta page, so either
    // kind of file reopens transparently.
    uint8_t format = kNodeFormatV1;
  };

  struct LeafEntry {
    ObjectId object = kInvalidObjectId;
    Point loc;
    BlobRef keywords;  // pks
  };

  struct InnerEntry {
    PageId child = kInvalidPageId;
    Rect mbr;
    BlobRef union_set;  // pku
    BlobRef inter_set;  // pki
  };

  struct Node {
    bool is_leaf = true;
    std::vector<LeafEntry> leaf_entries;
    std::vector<InnerEntry> inner_entries;

    size_t size() const {
      return is_leaf ? leaf_entries.size() : inner_entries.size();
    }
    Rect ComputeMbr() const;
  };

  // Builds the tree bottom-up with Sort-Tile-Recursive packing; the normal
  // path for the (static) experiment datasets. The buffer pool's pager must
  // be fresh (no pages allocated yet).
  static StatusOr<std::unique_ptr<SetRTree>> BulkLoad(
      const Dataset& dataset, BufferPool* pool, const Options& options);

  // STR-packs an explicit object list (ids are preserved as given, need not
  // be dense) with a pinned SDist normalizer — the segment build path,
  // where every tree of a live dataset must share one diagonal.
  static StatusOr<std::unique_ptr<SetRTree>> BulkLoadObjects(
      const std::vector<SpatialObject>& objects, double diagonal,
      BufferPool* pool, const Options& options);

  // An empty tree ready for Insert(); `diagonal` is the SDist normalizer.
  static StatusOr<std::unique_ptr<SetRTree>> CreateEmpty(
      BufferPool* pool, double diagonal, const Options& options);

  // Reopens a finalized index file.
  static StatusOr<std::unique_ptr<SetRTree>> Open(BufferPool* pool);

  // Dynamic insertion with Guttman quadratic splits; union/intersection
  // summaries along the root path are updated incrementally.
  Status Insert(const SpatialObject& object);

  // Removes the object (matched by id; `loc` guides the descent and must
  // equal the stored location). Ancestor summaries are recomputed; nodes
  // that empty out are unlinked (no re-insertion/min-fill enforcement —
  // lazy deletion, as is common for mostly-static workloads). Returns
  // NotFound if the object is not in the tree.
  Status Remove(ObjectId object, Point loc);

  // Flushes blobs, the metadata page, and all dirty buffers. Must be called
  // after building/inserting and before reading (or reopening).
  Status Finalize();

  // TopKSource:
  PageId SearchRoot() const override;
  Status ExpandNode(PageId node, const SpatialKeywordQuery& query,
                    bool use_cache, std::vector<SearchEntry>* out)
      const override;
  // One decode + one footprint per object for the whole batch; bit-exact
  // per-query entries (docs/BATCHING.md).
  Status ExpandNodeBatch(PageId node,
                         const SpatialKeywordQuery* const* queries,
                         std::vector<SearchEntry>* const* outs, size_t count,
                         bool use_cache) const override;

  // A node decoded all the way down: structural entries plus every keyword
  // payload materialized from the blob store (object docs for leaves,
  // union/intersection summaries for inner nodes). Immutable once built —
  // the unit the NodeCache shares across queries.
  struct DecodedNode {
    Node node;
    std::vector<KeywordSet> leaf_docs;     // leaves: per-entry doc
    std::vector<KeywordSet> child_union;   // inner: per-entry pku
    std::vector<KeywordSet> child_inter;   // inner: per-entry pki
    size_t memory_bytes = 0;               // cache charge estimate
  };

  // Attaches a shared decoded-node cache (not owned). Call after bulk load;
  // pass nullptr to detach.
  void AttachNodeCache(NodeCache* cache);

  // This tree's key namespace in the attached cache (0 = never attached).
  // Segment retirement uses it to drop the tree's entries (EraseTree).
  uint32_t cache_tree_id() const { return cache_tree_id_; }

  // Reads a fully materialized node, through the cache when attached and
  // `use_cache` is true; with `use_cache` false the read is byte-identical
  // to the uncached path (no lookup/insert/counters).
  StatusOr<std::shared_ptr<const DecodedNode>> ReadDecodedNode(
      PageId page, bool use_cache = true) const;

  double diagonal() const { return diagonal_; }
  uint32_t height() const { return height_; }  // 0 = empty, 1 = leaf root
  uint64_t num_objects() const { return num_objects_; }
  uint32_t pages_per_node() const { return pages_per_node_; }
  const Options& options() const { return options_; }

  // Introspection (tests and the why-not algorithms). For v2 trees the
  // returned entries carry empty BlobRefs — payloads are inline; use
  // ReadDecodedNode for them.
  StatusOr<Node> ReadNode(PageId page) const;
  StatusOr<KeywordSet> ReadKeywordSet(const BlobRef& ref) const;

  // Layout facts of one node without materializing payloads.
  StatusOr<NodeStat> StatNode(PageId page) const;

 private:
  SetRTree(BufferPool* pool, const Options& options, double diagonal);

  // Summary of a subtree as seen from its parent entry.
  struct Summary {
    Rect mbr;
    KeywordSet uni;
    KeywordSet inter;
  };

  // Result of inserting into a child subtree.
  struct ChildUpdate {
    Summary updated;  // new summary of the original child
    bool split = false;
    PageId new_child = kInvalidPageId;
    Summary sibling;  // summary of the split-off sibling
  };

  PageId AllocateNodeSlot();
  StatusOr<std::shared_ptr<const DecodedNode>> MaterializeNode(
      PageId page) const;
  StatusOr<std::shared_ptr<const DecodedNode>> MaterializeNodeV2(
      PageId page) const;
  // v2 write path: encodes the node with its keyword payloads inline
  // (leaves: `primary` = per-entry docs; inner: `primary` = unions,
  // `secondary` = intersections) and appends it to fresh pages.
  StatusOr<PageId> AppendNodeV2(const Node& node,
                                const std::vector<const KeywordSet*>& primary,
                                const std::vector<const KeywordSet*>& secondary,
                                bool children_are_leaves);
  Status WriteNode(PageId page, const Node& node);
  StatusOr<BlobRef> WriteKeywordSet(const KeywordSet& set);
  Status WriteMeta();
  Status ReadMeta();

  // Recomputes a node's summary by reading its entry payloads.
  StatusOr<Summary> ComputeSummary(const Node& node) const;

  Status InsertInto(PageId page, uint32_t level, const SpatialObject& object,
                    BlobRef keywords_ref, ChildUpdate* out);

  // Result of removing from a subtree: whether the object was found there
  // and the subtree's new state.
  struct RemoveUpdate {
    bool found = false;
    bool now_empty = false;
    Summary updated;  // valid when found && !now_empty
  };
  Status RemoveFrom(PageId page, uint32_t level, ObjectId object, Point loc,
                    RemoveUpdate* out);

  // Splits `node` (which has exactly capacity+1 entries) in place, moving
  // part of the entries into `*sibling` (Guttman quadratic split).
  void QuadraticSplit(Node* node, Node* sibling) const;

  BufferPool* const pool_;
  NodeCache* cache_ = nullptr;  // not owned; see AttachNodeCache
  uint32_t cache_tree_id_ = 0;
  mutable BlobStore blobs_;
  // First-touch body-checksum ledger for v2 records (v2 trees are
  // immutable, so one clean verification per record is enough).
  mutable ChecksumLedger checksum_ledger_;
  Options options_;
  uint32_t pages_per_node_ = 0;
  PageId meta_page_ = kInvalidPageId;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 0;
  uint64_t num_objects_ = 0;
  double diagonal_ = 1.0;
};

}  // namespace wsk

#endif  // WSK_INDEX_SETR_TREE_H_
