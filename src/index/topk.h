// Incremental best-first spatial keyword top-k search.
//
// Both the SetR-tree (Section IV-B) and the KcR-tree (Section V-A) expose
// the TopKSource interface: given a node, produce child search entries
// whose `bound` is an upper bound on the ranking score ST (Eqn 1) of any
// object below the child (exact for object entries). TopKIterator then
// emits objects one at a time in non-increasing score order — exactly what
// the why-not algorithms need to "process the query until the missing
// object appears" or until the Eqn 6 rank bound is exceeded.
#ifndef WSK_INDEX_TOPK_H_
#define WSK_INDEX_TOPK_H_

#include <optional>
#include <queue>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "data/query.h"
#include "observability/trace.h"
#include "storage/pager.h"

namespace wsk {

struct SearchEntry {
  double bound = 0.0;      // score upper bound (exact for objects)
  bool is_object = false;
  PageId node = kInvalidPageId;        // when !is_object
  ObjectId object = kInvalidObjectId;  // when is_object
};

// Max-heap order: higher bound first; at equal bound objects before nodes
// and lower ids first, so the emission order is fully deterministic.
struct SearchEntryLess {
  bool operator()(const SearchEntry& a, const SearchEntry& b) const {
    if (a.bound != b.bound) return a.bound < b.bound;
    if (a.is_object != b.is_object) return !a.is_object;
    if (a.is_object) return a.object > b.object;
    return a.node > b.node;
  }
};

// An index capable of best-first spatial keyword search.
class TopKSource {
 public:
  virtual ~TopKSource() = default;

  // Root node slot, or kInvalidPageId for an empty index.
  virtual PageId SearchRoot() const = 0;

  // Appends one SearchEntry per child of `node` to `out`. `use_cache`
  // selects whether an attached decoded-node cache may serve the node;
  // with false the expansion behaves exactly like the uncached read path.
  virtual Status ExpandNode(PageId node, const SpatialKeywordQuery& query,
                            bool use_cache,
                            std::vector<SearchEntry>* out) const = 0;

  // Expands `node` once for `count` queries at a time: outs[i] receives
  // exactly the entries ExpandNode(node, *queries[i], ...) would append —
  // bit-identical bounds, same order — so a batched traversal can substitute
  // one shared expansion for N solo ones (docs/BATCHING.md). The base
  // implementation loops over ExpandNode; tree sources override it to
  // decode/pin the node once and score the whole batch against it.
  virtual Status ExpandNodeBatch(PageId node,
                                 const SpatialKeywordQuery* const* queries,
                                 std::vector<SearchEntry>* const* outs,
                                 size_t count, bool use_cache) const;
};

// Streams objects in (score desc, id asc) order. Typical use:
//
//   TopKIterator it(tree, query);
//   std::optional<ScoredObject> next;
//   while (it.Next(&next).ok() && next) { ... }
class TopKIterator {
 public:
  // `cancel` (optional, borrowed; must outlive the iterator) is consulted
  // before every node expansion — the traversal's unit of I/O — so a
  // cancelled or timed-out search unwinds within one page visit. `trace`
  // (optional, borrowed) receives the traversal's node/object counters
  // when the iterator is destroyed.
  TopKIterator(const TopKSource* source, SpatialKeywordQuery query,
               const CancelToken* cancel = nullptr, bool use_cache = true,
               TraceRecorder* trace = nullptr);
  ~TopKIterator();

  TopKIterator(const TopKIterator&) = delete;
  TopKIterator& operator=(const TopKIterator&) = delete;

  // Sets *out to the next object, or nullopt when the index is exhausted.
  // Returns kCancelled / kDeadlineExceeded when the cancel token fired.
  Status Next(std::optional<ScoredObject>* out);

  // Objects emitted so far.
  size_t num_emitted() const { return num_emitted_; }

  // Nodes expanded so far (pages/cached nodes materialized). Counted even
  // without a trace recorder — the why-not stats report it per query.
  uint64_t num_expanded() const { return nodes_visited_; }

 private:
  const TopKSource* source_;
  SpatialKeywordQuery query_;
  const CancelToken* cancel_ = nullptr;
  bool use_cache_ = true;
  TraceRecorder* trace_ = nullptr;
  std::priority_queue<SearchEntry, std::vector<SearchEntry>, SearchEntryLess>
      heap_;
  std::vector<SearchEntry> scratch_;
  size_t num_emitted_ = 0;
  // Plain members (one iterator is single-threaded); flushed to the trace
  // recorder in one batch by the destructor.
  uint64_t nodes_seen_ = 0;
  uint64_t nodes_visited_ = 0;
  uint64_t objects_scored_ = 0;
};

// Convenience wrappers over the iterator.

// The k best objects.
StatusOr<std::vector<ScoredObject>> IndexTopK(
    const TopKSource& source, const SpatialKeywordQuery& query,
    const CancelToken* cancel = nullptr, bool use_cache = true,
    TraceRecorder* trace = nullptr);

// Rank (Eqn 3) of an object whose exact score is `target_score`: emits
// objects until the stream drops to or below `target_score` and counts the
// strictly-better ones. If `give_up_after_rank` > 0 and more than that many
// strictly-better objects are seen, stops early and reports the count so
// far + 1 with `*exceeded = true` (the Section IV-C1 early stop).
StatusOr<uint32_t> IndexRankOfScore(const TopKSource& source,
                                    const SpatialKeywordQuery& query,
                                    double target_score,
                                    int64_t give_up_after_rank,
                                    bool* exceeded,
                                    const CancelToken* cancel = nullptr,
                                    bool use_cache = true,
                                    TraceRecorder* trace = nullptr);

}  // namespace wsk

#endif  // WSK_INDEX_TOPK_H_
