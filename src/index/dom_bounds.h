// MaxDom / MinDom: bounds on the number of objects under a KcR-tree node
// that dominate (rank strictly above) the missing object for a candidate
// keyword set S (Section V-B).
//
// Theorem 2 gives a textual-similarity threshold L: an object o in node N
// can dominate the missing object m only if
//   TSim(o, S) > L = alpha/(1-alpha) * (MinDist(N,q) - SDist(m,q)) + TSim(m,S)
// (distances normalized). Algorithm 2 then uses the node's keyword-count
// map to find the largest number `ans` of objects that could all satisfy
// the pseudo-similarity necessary condition of Theorem 3 — that is MaxDom.
//
// MinDom is the dual, which the paper omits "as it is done similarly": with
// U defined like L but using MaxDist, any object with TSim(o,S) > U surely
// dominates; MinDom is the smallest `ans` such that the keyword counts can
// be arranged with only `ans` objects above U (see DESIGN.md).
//
// Both bounds are implemented for the Jaccard model, the model the paper's
// Theorem 3 algebra assumes.
#ifndef WSK_INDEX_DOM_BOUNDS_H_
#define WSK_INDEX_DOM_BOUNDS_H_

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "index/keyword_count_map.h"
#include "text/keyword_set.h"
#include "text/score_kernel.h"

namespace wsk {

// Query- and missing-object-dependent constants shared by every bound
// computation of one why-not query.
struct DomContext {
  Point query_loc;
  double alpha = 0.5;
  double diagonal = 1.0;
  double missing_sdist = 0.0;  // SDist(m, q), normalized
};

// Per-node statistics derived from a keyword-count map once and reused for
// every candidate keyword set: suffix counts over the count histogram give
// O(1) access to |{t : count(t) >= c}|.
class NodeDomStats {
 public:
  NodeDomStats(const KeywordCountMap* kcm, uint32_t cnt, const Rect& mbr);

  uint32_t cnt() const { return cnt_; }
  const Rect& mbr() const { return mbr_; }
  uint64_t total_count() const { return total_; }
  uint32_t CountOf(TermId t) const { return kcm_->CountOf(t); }

  // Number of terms (over the whole map) with count >= c; 0 for c > max.
  uint32_t NumTermsGe(uint32_t c) const {
    if (c == 0) return static_cast<uint32_t>(kcm_->num_terms());
    if (c >= ge_.size()) return 0;
    return ge_[c];
  }

  // Approximate heap footprint, for node-cache byte budgeting (the
  // referenced KeywordCountMap is charged by its owner).
  size_t MemoryBytes() const {
    return sizeof(*this) + ge_.capacity() * sizeof(uint32_t);
  }

 private:
  const KeywordCountMap* kcm_;
  uint32_t cnt_;
  Rect mbr_;
  uint64_t total_ = 0;
  std::vector<uint32_t> ge_;  // ge_[c] = #terms with count >= c
};

// The counts of one candidate universe's terms inside one node, gathered
// once per (node, batch). The per-candidate kernel overloads of MaxDom /
// MinDom below select a candidate's counts from here by mask bit instead of
// probing the keyword-count map per term per candidate.
struct NodeUniverseCounts {
  std::vector<uint32_t> counts;  // counts[i] = node count of universe term i

  static NodeUniverseCounts Build(const NodeDomStats& stats,
                                  const CandidateUniverse& universe);
};

// Theorem 2 threshold with MinDist (objects can dominate only if above it).
double DominatorThresholdLow(const Rect& node_mbr, const DomContext& ctx,
                             double tsim_missing);

// Dual threshold with MaxDist (objects above it surely dominate).
double DominatorThresholdHigh(const Rect& node_mbr, const DomContext& ctx,
                              double tsim_missing);

// Upper bound on the number of dominators of the missing object inside the
// node, for candidate keyword set S with TSim(m, S) = tsim_missing.
// Algorithm 2 with O(1) incremental updates per iteration.
uint32_t MaxDom(const NodeDomStats& stats, const KeywordSet& candidate,
                double tsim_missing, const DomContext& ctx);

// Lower bound (guaranteed dominators).
uint32_t MinDom(const NodeDomStats& stats, const KeywordSet& candidate,
                double tsim_missing, const DomContext& ctx);

// Kernel overloads: identical results for the candidate whose universe mask
// is `candidate` (bit-for-bit — the same count vector feeds the same
// arithmetic). `cand_size` is popcount(candidate).
uint32_t MaxDom(const NodeDomStats& stats, const NodeUniverseCounts& uc,
                CandidateMask candidate, uint32_t cand_size,
                double tsim_missing, const DomContext& ctx);
uint32_t MinDom(const NodeDomStats& stats, const NodeUniverseCounts& uc,
                CandidateMask candidate, uint32_t cand_size,
                double tsim_missing, const DomContext& ctx);

}  // namespace wsk

#endif  // WSK_INDEX_DOM_BOUNDS_H_
