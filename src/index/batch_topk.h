// Multi-query best-first top-k: one shared index walk for N queries
// (docs/BATCHING.md).
//
// Each query keeps its own frontier heap and result list running exactly
// the solo TopKIterator semantics — same SearchEntryLess tie-breaks, same
// pop order, same early termination at its own kth score — so every
// query's top-k is bit-identical to IndexTopK run alone. The sharing is
// purely physical: a round-based scheduler drains each query's ready
// object emissions, then groups the still-active queries by the node at
// the top of their frontiers and performs one ExpandNodeBatch per distinct
// node, amortizing the page read, node decode, and cache probe across
// every query that was about to open that node. Queries whose frontiers
// diverge simply stop sharing; their walks degrade gracefully to solo
// cost plus negligible bookkeeping.
//
// A query leaves the walk the moment its own k results have emitted (its
// kth score has pruned its remaining frontier) or its cancel token fires;
// cancellation and deadlines are honored at node-visit granularity, the
// same unit of I/O the solo iterator checks at.
#ifndef WSK_INDEX_BATCH_TOPK_H_
#define WSK_INDEX_BATCH_TOPK_H_

#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "data/query.h"
#include "index/topk.h"
#include "observability/trace.h"

namespace wsk {

// One query's slot in a batched traversal. `query` is borrowed and must
// outlive the call; `cancel` is optional (borrowed).
struct BatchTopKRequest {
  const SpatialKeywordQuery* query = nullptr;
  const CancelToken* cancel = nullptr;
};

struct BatchTopKResult {
  Status status;                  // kCancelled / kDeadlineExceeded / IO error
  std::vector<ScoredObject> topk;  // valid only when status.ok()
};

// Runs every request to completion over one shared traversal of `source`.
// results[i] corresponds to requests[i]; a failed slot does not disturb the
// others. `trace` (optional, borrowed) receives one kBatchTopK span, the
// aggregate node/object counters of the whole batch, and the batch.*
// amortization counters.
std::vector<BatchTopKResult> BatchedIndexTopK(
    const TopKSource& source, const std::vector<BatchTopKRequest>& requests,
    bool use_cache = true, TraceRecorder* trace = nullptr);

}  // namespace wsk

#endif  // WSK_INDEX_BATCH_TOPK_H_
