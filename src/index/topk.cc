#include "index/topk.h"

namespace wsk {

Status TopKSource::ExpandNodeBatch(PageId node,
                                   const SpatialKeywordQuery* const* queries,
                                   std::vector<SearchEntry>* const* outs,
                                   size_t count, bool use_cache) const {
  for (size_t i = 0; i < count; ++i) {
    WSK_RETURN_IF_ERROR(ExpandNode(node, *queries[i], use_cache, outs[i]));
  }
  return Status::Ok();
}

TopKIterator::TopKIterator(const TopKSource* source, SpatialKeywordQuery query,
                           const CancelToken* cancel, bool use_cache,
                           TraceRecorder* trace)
    : source_(source),
      query_(std::move(query)),
      cancel_(cancel),
      use_cache_(use_cache),
      trace_(trace) {
  const PageId root = source_->SearchRoot();
  if (root != kInvalidPageId) {
    // The root has no parent entry to bound it; expand it unconditionally.
    SearchEntry entry;
    entry.bound = std::numeric_limits<double>::infinity();
    entry.node = root;
    heap_.push(entry);
    ++nodes_seen_;
  }
}

TopKIterator::~TopKIterator() {
  if (trace_ == nullptr) return;
  // nodes_pruned is derived (seen - visited): heap leftovers at early
  // termination plus nothing else, since every enqueued node was seen.
  trace_->Add(TraceCounter::kNodesSeen, nodes_seen_);
  trace_->Add(TraceCounter::kNodesVisited, nodes_visited_);
  trace_->Add(TraceCounter::kNodesPruned, nodes_seen_ - nodes_visited_);
  trace_->Add(TraceCounter::kLeafObjectsScored, objects_scored_);
}

Status TopKIterator::Next(std::optional<ScoredObject>* out) {
  out->reset();
  while (!heap_.empty()) {
    const SearchEntry top = heap_.top();
    heap_.pop();
    if (top.is_object) {
      ++num_emitted_;
      *out = ScoredObject{top.object, top.bound};
      return Status::Ok();
    }
    if (cancel_ != nullptr) WSK_RETURN_IF_ERROR(cancel_->Check());
    scratch_.clear();
    WSK_RETURN_IF_ERROR(
        source_->ExpandNode(top.node, query_, use_cache_, &scratch_));
    ++nodes_visited_;
    for (const SearchEntry& child : scratch_) {
      if (child.is_object) {
        ++objects_scored_;
      } else {
        ++nodes_seen_;
      }
      heap_.push(child);
    }
  }
  return Status::Ok();
}

StatusOr<std::vector<ScoredObject>> IndexTopK(
    const TopKSource& source, const SpatialKeywordQuery& query,
    const CancelToken* cancel, bool use_cache, TraceRecorder* trace) {
  TraceSpan span(trace, TraceStage::kTopK);
  TopKIterator it(&source, query, cancel, use_cache, trace);
  std::vector<ScoredObject> result;
  result.reserve(query.k);
  std::optional<ScoredObject> next;
  while (result.size() < query.k) {
    WSK_RETURN_IF_ERROR(it.Next(&next));
    if (!next) break;
    result.push_back(*next);
  }
  return result;
}

StatusOr<uint32_t> IndexRankOfScore(const TopKSource& source,
                                    const SpatialKeywordQuery& query,
                                    double target_score,
                                    int64_t give_up_after_rank,
                                    bool* exceeded,
                                    const CancelToken* cancel,
                                    bool use_cache, TraceRecorder* trace) {
  *exceeded = false;
  TraceSpan span(trace, TraceStage::kRankQuery);
  TopKIterator it(&source, query, cancel, use_cache, trace);
  uint32_t strictly_better = 0;
  std::optional<ScoredObject> next;
  for (;;) {
    WSK_RETURN_IF_ERROR(it.Next(&next));
    if (!next || next->score <= target_score) break;
    ++strictly_better;
    if (give_up_after_rank > 0 &&
        static_cast<int64_t>(strictly_better) + 1 > give_up_after_rank) {
      *exceeded = true;
      break;
    }
  }
  return strictly_better + 1;
}

}  // namespace wsk
