#include "index/keyword_count_map.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"

namespace wsk {

KeywordCountMap KeywordCountMap::FromDoc(const KeywordSet& doc) {
  KeywordCountMap map;
  map.pairs_.reserve(doc.size());
  for (TermId t : doc) map.pairs_.emplace_back(t, 1);
  return map;
}

void KeywordCountMap::AddDoc(const KeywordSet& doc) {
  Merge(FromDoc(doc));
}

void KeywordCountMap::Merge(const KeywordCountMap& other) {
  std::vector<std::pair<TermId, uint32_t>> merged;
  merged.reserve(pairs_.size() + other.pairs_.size());
  auto a = pairs_.begin();
  auto b = other.pairs_.begin();
  while (a != pairs_.end() && b != other.pairs_.end()) {
    if (a->first < b->first) {
      merged.push_back(*a++);
    } else if (b->first < a->first) {
      merged.push_back(*b++);
    } else {
      merged.emplace_back(a->first, a->second + b->second);
      ++a;
      ++b;
    }
  }
  merged.insert(merged.end(), a, pairs_.end());
  merged.insert(merged.end(), b, other.pairs_.end());
  pairs_ = std::move(merged);
}

uint32_t KeywordCountMap::CountOf(TermId t) const {
  const auto it = std::lower_bound(
      pairs_.begin(), pairs_.end(), t,
      [](const std::pair<TermId, uint32_t>& p, TermId v) {
        return p.first < v;
      });
  if (it == pairs_.end() || it->first != t) return 0;
  return it->second;
}

uint64_t KeywordCountMap::TotalCount() const {
  uint64_t total = 0;
  for (const auto& [term, count] : pairs_) total += count;
  return total;
}

void KeywordCountMap::Serialize(std::vector<uint8_t>* out) const {
  const size_t base = out->size();
  out->resize(base + SerializedSize());
  const uint32_t n = static_cast<uint32_t>(pairs_.size());
  std::memcpy(out->data() + base, &n, 4);
  uint8_t* p = out->data() + base + 4;
  for (const auto& [term, count] : pairs_) {
    std::memcpy(p, &term, 4);
    std::memcpy(p + 4, &count, 4);
    p += 8;
  }
}

KeywordCountMap KeywordCountMap::Deserialize(const uint8_t* data,
                                             size_t size) {
  WSK_CHECK(size >= 4);
  uint32_t n;
  std::memcpy(&n, data, 4);
  WSK_CHECK(size >= 4 + 8ull * n);
  KeywordCountMap map;
  map.pairs_.resize(n);
  const uint8_t* p = data + 4;
  for (uint32_t i = 0; i < n; ++i) {
    std::memcpy(&map.pairs_[i].first, p, 4);
    std::memcpy(&map.pairs_[i].second, p + 4, 4);
    p += 8;
  }
  return map;
}

}  // namespace wsk
