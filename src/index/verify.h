// Index integrity verification (fsck for the tree files).
//
// Walks a finalized SetR-tree or KcR-tree and checks every structural
// invariant the query algorithms rely on:
//   * node fan-out within [1, capacity];
//   * leaf depth uniform and equal to the recorded height;
//   * every inner entry's MBR contains its subtree's points;
//   * SetR: entry union/intersection sets equal the recomputed subtree
//     union/intersection;
//   * KcR: entry cnt and keyword-count map equal the recomputed subtree
//     aggregates, and the root summary in the metadata matches;
//   * every referenced blob deserializes;
//   * the number of reachable objects equals num_objects().
// Returns OK or a Corruption status naming the first violated invariant.
#ifndef WSK_INDEX_VERIFY_H_
#define WSK_INDEX_VERIFY_H_

#include "common/status.h"
#include "index/kcr_tree.h"
#include "index/setr_tree.h"

namespace wsk {

struct VerifyStats {
  uint64_t nodes_visited = 0;
  uint64_t objects_seen = 0;
  uint64_t blobs_read = 0;
};

Status VerifySetRTree(const SetRTree& tree, VerifyStats* stats = nullptr);
Status VerifyKcrTree(const KcrTree& tree, VerifyStats* stats = nullptr);

}  // namespace wsk

#endif  // WSK_INDEX_VERIFY_H_
