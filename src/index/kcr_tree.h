// KcR-tree: the Keyword-count R-tree of Section V-A.
//
// An R-tree whose non-leaf entries carry, besides the child MBR, the number
// of objects in the child's subtree (cnt) and a pointer to its keyword-count
// map (pcm). Those summaries let the bound-and-prune algorithm estimate,
// for a candidate keyword set, how many objects under a node dominate the
// missing object (MaxDom / MinDom, see dom_bounds.h) without unfolding it.
//
// The storage scheme mirrors the SetR-tree: fixed node slots plus a blob
// store for the maps; the metadata page additionally records the root's own
// cnt / MBR / kcm so a traversal can bound the whole tree before the first
// node access (Algorithm 3, lines 2-6).
#ifndef WSK_INDEX_KCR_TREE_H_
#define WSK_INDEX_KCR_TREE_H_

#include <memory>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/query.h"
#include "index/dom_bounds.h"
#include "index/keyword_count_map.h"
#include "index/topk.h"
#include "index/setr_tree.h"  // NodeStat
#include "storage/blob_store.h"
#include "storage/buffer_pool.h"
#include "storage/node_cache.h"
#include "storage/node_codec_v2.h"
#include "text/similarity.h"

namespace wsk {

class KcrTree : public TopKSource {
 public:
  struct Options {
    uint32_t capacity = 100;
    SimilarityModel model = SimilarityModel::kJaccard;
    // Node format for newly built trees; see SetRTree::Options::format.
    // v2 is bulk-load only and immutable; Open() detects the format from
    // the meta page. The root kcm stays a blob in both formats.
    uint8_t format = kNodeFormatV1;
  };

  struct LeafEntry {
    ObjectId object = kInvalidObjectId;
    Point loc;
    BlobRef keywords;  // pks
  };

  struct InnerEntry {
    PageId child = kInvalidPageId;
    Rect mbr;
    uint32_t cnt = 0;  // objects in the child's subtree
    BlobRef kcm;       // pcm
  };

  struct Node {
    bool is_leaf = true;
    std::vector<LeafEntry> leaf_entries;
    std::vector<InnerEntry> inner_entries;

    size_t size() const {
      return is_leaf ? leaf_entries.size() : inner_entries.size();
    }
    Rect ComputeMbr() const;
  };

  static StatusOr<std::unique_ptr<KcrTree>> BulkLoad(
      const Dataset& dataset, BufferPool* pool, const Options& options);
  // Explicit object list + pinned diagonal (segment build path); ids are
  // preserved as given and need not be dense.
  static StatusOr<std::unique_ptr<KcrTree>> BulkLoadObjects(
      const std::vector<SpatialObject>& objects, double diagonal,
      BufferPool* pool, const Options& options);
  static StatusOr<std::unique_ptr<KcrTree>> CreateEmpty(
      BufferPool* pool, double diagonal, const Options& options);
  static StatusOr<std::unique_ptr<KcrTree>> Open(BufferPool* pool);

  Status Insert(const SpatialObject& object);

  // Removes the object (matched by id; `loc` guides the descent). Ancestor
  // counts and keyword-count maps are recomputed; emptied nodes are
  // unlinked (lazy deletion, no min-fill enforcement). Returns NotFound if
  // the object is absent.
  Status Remove(ObjectId object, Point loc);

  Status Finalize();

  // TopKSource (used to determine R(m, q), Algorithm 4 line 1):
  PageId SearchRoot() const override;
  Status ExpandNode(PageId node, const SpatialKeywordQuery& query,
                    bool use_cache, std::vector<SearchEntry>* out)
      const override;
  // One decode + one footprint per object for the whole batch; bit-exact
  // per-query entries (docs/BATCHING.md).
  Status ExpandNodeBatch(PageId node,
                         const SpatialKeywordQuery* const* queries,
                         std::vector<SearchEntry>* const* outs, size_t count,
                         bool use_cache) const override;

  // A node decoded all the way down: the structural entries plus every
  // entry payload materialized from the blob store, and the
  // query-independent dominator statistics precomputed per child. Immutable
  // once built — this is the unit the NodeCache shares across queries.
  struct DecodedNode {
    Node node;
    // Leaf nodes: decoded keyword set per leaf entry (same index).
    std::vector<KeywordSet> leaf_docs;
    // Inner nodes: decoded count map + suffix-histogram stats per child
    // (same index). child_stats[i] points into child_kcms[i], which is why
    // both live together inside one shared, immutable allocation.
    std::vector<KeywordCountMap> child_kcms;
    std::vector<NodeDomStats> child_stats;
    size_t memory_bytes = 0;  // cache charge estimate
  };

  // Attaches a shared decoded-node cache (not owned). Call after bulk load;
  // the tree registers itself under a fresh cache tree-id. Pass nullptr to
  // detach.
  void AttachNodeCache(NodeCache* cache);

  // This tree's key namespace in the attached cache (0 = never attached).
  // Segment retirement uses it to drop the tree's entries (EraseTree).
  uint32_t cache_tree_id() const { return cache_tree_id_; }

  // Reads a fully materialized node, through the cache when one is attached
  // and `use_cache` is true. With `use_cache` false the read behaves
  // exactly like the uncached path (no lookup, no insert, no counters), so
  // differential runs can replay both paths.
  StatusOr<std::shared_ptr<const DecodedNode>> ReadDecodedNode(
      PageId page, bool use_cache = true) const;

  double diagonal() const { return diagonal_; }
  uint32_t height() const { return height_; }
  uint64_t num_objects() const { return num_objects_; }
  uint32_t pages_per_node() const { return pages_per_node_; }
  const Options& options() const { return options_; }

  // Root summary for Algorithm 3's initial bounds.
  const Rect& root_mbr() const { return root_mbr_; }
  uint32_t root_cnt() const { return root_cnt_; }
  StatusOr<KeywordCountMap> ReadRootKcm() const;

  // For v2 trees the returned entries carry empty BlobRefs — payloads are
  // inline; use ReadDecodedNode for them.
  StatusOr<Node> ReadNode(PageId page) const;
  StatusOr<KeywordSet> ReadKeywordSet(const BlobRef& ref) const;
  StatusOr<KeywordCountMap> ReadKcm(const BlobRef& ref) const;

  // Layout facts of one node without materializing payloads.
  StatusOr<NodeStat> StatNode(PageId page) const;

 private:
  KcrTree(BufferPool* pool, const Options& options, double diagonal);

  struct Summary {
    Rect mbr;
    KeywordCountMap kcm;
    uint32_t cnt = 0;
  };

  struct ChildUpdate {
    Summary updated;
    bool split = false;
    PageId new_child = kInvalidPageId;
    Summary sibling;
  };

  PageId AllocateNodeSlot();
  StatusOr<std::shared_ptr<const DecodedNode>> MaterializeNode(
      PageId page) const;
  StatusOr<std::shared_ptr<const DecodedNode>> MaterializeNodeV2(
      PageId page) const;
  // v2 write path: encodes the node with its payloads inline (leaves:
  // per-entry docs; inner: per-entry count maps) and appends it to fresh
  // pages.
  StatusOr<PageId> AppendNodeV2(
      const Node& node, const std::vector<const KeywordSet*>& docs,
      const std::vector<const KeywordCountMap*>& kcms,
      bool children_are_leaves);
  Status WriteNode(PageId page, const Node& node);
  StatusOr<BlobRef> WriteKeywordSet(const KeywordSet& set);
  StatusOr<BlobRef> WriteKcm(const KeywordCountMap& map);
  Status WriteMeta();
  Status ReadMeta();

  StatusOr<Summary> ComputeSummary(const Node& node) const;
  Status InsertInto(PageId page, uint32_t level, const SpatialObject& object,
                    BlobRef keywords_ref, ChildUpdate* out);

  struct RemoveUpdate {
    bool found = false;
    bool now_empty = false;
    Summary updated;
  };
  Status RemoveFrom(PageId page, uint32_t level, ObjectId object, Point loc,
                    RemoveUpdate* out);
  void QuadraticSplit(Node* node, Node* sibling) const;

  BufferPool* const pool_;
  NodeCache* cache_ = nullptr;  // not owned; see AttachNodeCache
  uint32_t cache_tree_id_ = 0;
  mutable BlobStore blobs_;
  // First-touch body-checksum ledger for v2 records (v2 trees are
  // immutable, so one clean verification per record is enough).
  mutable ChecksumLedger checksum_ledger_;
  Options options_;
  uint32_t pages_per_node_ = 0;
  PageId meta_page_ = kInvalidPageId;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 0;
  uint64_t num_objects_ = 0;
  double diagonal_ = 1.0;
  Rect root_mbr_;
  uint32_t root_cnt_ = 0;
  BlobRef root_kcm_;
};

}  // namespace wsk

#endif  // WSK_INDEX_KCR_TREE_H_
