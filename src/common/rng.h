// Deterministic random number generation for data synthesis and tests.
//
// Rng wraps the SplitMix64 generator: tiny state, excellent statistical
// quality for simulation purposes, and fully reproducible across platforms
// (unlike std::default_random_engine distributions, whose outputs are not
// specified). ZipfSampler draws ranks from a Zipf(s) distribution over
// {0, ..., n-1}, matching the skewed keyword frequencies of real POI
// datasets (EURO / GN).
#ifndef WSK_COMMON_RNG_H_
#define WSK_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wsk {

// SplitMix64 pseudo-random generator. Not cryptographically secure.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextUint64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Bernoulli trial.
  bool NextBool(double p_true);

  // Poisson-distributed count with the given mean (Knuth's method; fine for
  // small means as used by the document-length model).
  int NextPoisson(double mean);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextUint64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_;
};

// Draws ranks 0..n-1 with P(rank = i) proportional to 1/(i+1)^s using a
// precomputed inverse CDF (binary search per draw).
class ZipfSampler {
 public:
  // n: universe size (> 0); s: skew (>= 0; 0 = uniform).
  ZipfSampler(uint32_t n, double s);

  uint32_t Sample(Rng& rng) const;

  uint32_t universe_size() const { return n_; }

 private:
  uint32_t n_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i), cdf_.back() == 1.
};

}  // namespace wsk

#endif  // WSK_COMMON_RNG_H_
