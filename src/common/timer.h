// Wall-clock stopwatch used by the benchmark harness and examples.
#ifndef WSK_COMMON_TIMER_H_
#define WSK_COMMON_TIMER_H_

#include <chrono>

namespace wsk {

// Starts running on construction; ElapsedMillis()/ElapsedMicros() read the
// wall clock since the last Reset() (or construction).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wsk

#endif  // WSK_COMMON_TIMER_H_
