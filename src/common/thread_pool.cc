#include "common/thread_pool.h"

#include "common/macros.h"

namespace wsk {

ThreadPool::ThreadPool(int num_threads) {
  WSK_CHECK(num_threads >= 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // inline mode
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace wsk
