#include "common/thread_pool.h"

#include <cstdio>

#include "common/macros.h"

namespace wsk {

ThreadPool::ThreadPool(int num_threads, size_t queue_limit)
    : queue_limit_(queue_limit) {
  WSK_CHECK(num_threads >= 0);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunTask(std::function<void()>& task) {
  try {
    task();
  } catch (const std::exception& e) {
    task_exceptions_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "[wsk] thread pool task threw: %s\n", e.what());
  } catch (...) {
    task_exceptions_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "[wsk] thread pool task threw a non-std exception\n");
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    RunTask(task);  // inline mode
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  if (workers_.empty()) {
    RunTask(task);  // inline mode: nothing ever queues
    return true;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_limit_ > 0 && queue_.size() >= queue_limit_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

size_t ThreadPool::queue_depth() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    RunTask(task);
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace wsk
