// Build identity for the wsk_build_info metric and CLI banners.
//
// The version tracks the PR sequence (major.PR); the ISA string is injected
// by the build (WSK_ISA cache variable -> WSK_ISA_STRING definition) so
// dashboards can join performance numbers to the codegen baseline they were
// measured under (docs/PERF.md).
#ifndef WSK_COMMON_VERSION_H_
#define WSK_COMMON_VERSION_H_

namespace wsk {

inline constexpr const char kBuildVersion[] = "0.10.0";

// Newest on-disk node format this build can read and write
// (storage/node_codec_v2.h); surfaced as the node_format label.
inline constexpr const char kNodeFormatName[] = "v1+v2";

inline const char* BuildIsa() {
#ifdef WSK_ISA_STRING
  return WSK_ISA_STRING;
#else
  return "unknown";
#endif
}

}  // namespace wsk

#endif  // WSK_COMMON_VERSION_H_
