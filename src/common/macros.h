// Low-level assertion and utility macros shared across the wsk library.
//
// The library does not use C++ exceptions (fallible operations return
// wsk::Status); WSK_CHECK guards against programmer errors and aborts with a
// diagnostic when violated.
#ifndef WSK_COMMON_MACROS_H_
#define WSK_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Aborts the process with a source location when `condition` is false.
// Used for invariants that indicate a bug in the caller or in the library,
// never for recoverable runtime conditions.
#define WSK_CHECK(condition)                                                  \
  do {                                                                        \
    if (!(condition)) {                                                       \
      std::fprintf(stderr, "WSK_CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #condition);                                     \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

// Like WSK_CHECK but with a printf-style message appended.
#define WSK_CHECK_MSG(condition, ...)                                         \
  do {                                                                        \
    if (!(condition)) {                                                       \
      std::fprintf(stderr, "WSK_CHECK failed at %s:%d: %s: ", __FILE__,       \
                   __LINE__, #condition);                                     \
      std::fprintf(stderr, __VA_ARGS__);                                      \
      std::fprintf(stderr, "\n");                                             \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#endif  // WSK_COMMON_MACROS_H_
