// A fixed-size worker pool used to process candidate keyword sets in
// parallel (the paper's Section IV-C4 optimization and Fig. 10 experiment)
// and, through the service layer, to execute concurrent client queries.
#ifndef WSK_COMMON_THREAD_POOL_H_
#define WSK_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wsk {

// Spawns `num_threads` workers at construction. Submit() enqueues a task;
// Wait() blocks until the queue is drained and all workers are idle. The
// pool is reusable: Submit() may be called again after Wait().
//
// With num_threads == 0 the pool degenerates to inline execution (Submit()
// runs the task on the calling thread), which keeps single-threaded
// configurations free of synchronization noise in benchmarks.
//
// Exception safety: the library is exception-free by contract, but a task
// that throws anyway (std::bad_alloc, a bug) must not take the process
// down via an escape from a worker thread. Tasks are run under a
// catch-all; the escape is counted (num_task_exceptions()) so a service
// layer can surface it through its error accounting.
//
// Backpressure: `queue_limit` bounds the number of *pending* tasks.
// TrySubmit() refuses (returns false) once the bound is reached — the
// admission-control primitive for the service layer. Submit() always
// enqueues regardless of the bound (the algorithm-internal fan-out paths
// submit exactly num_threads tasks and must never be refused).
class ThreadPool {
 public:
  // `queue_limit` == 0 means unbounded.
  explicit ThreadPool(int num_threads, size_t queue_limit = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Enqueues unless the pending queue is at `queue_limit`; returns whether
  // the task was accepted. Inline pools (0 workers) always accept.
  bool TrySubmit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }
  size_t queue_limit() const { return queue_limit_; }

  // Tasks currently waiting for a worker (diagnostics; racy by nature).
  size_t queue_depth() const;

  // Tasks whose exceptions were caught and swallowed by the pool.
  uint64_t num_task_exceptions() const {
    return task_exceptions_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();
  // Runs `task` under a catch-all, counting escapes.
  void RunTask(std::function<void()>& task);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signalled when tasks arrive / stop
  std::condition_variable idle_cv_;   // signalled when the pool drains
  std::deque<std::function<void()>> queue_;
  const size_t queue_limit_;
  int active_ = 0;
  bool stop_ = false;
  std::atomic<uint64_t> task_exceptions_{0};
  std::vector<std::thread> workers_;
};

}  // namespace wsk

#endif  // WSK_COMMON_THREAD_POOL_H_
