// A fixed-size worker pool used to process candidate keyword sets in
// parallel (the paper's Section IV-C4 optimization and Fig. 10 experiment).
#ifndef WSK_COMMON_THREAD_POOL_H_
#define WSK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wsk {

// Spawns `num_threads` workers at construction. Submit() enqueues a task;
// Wait() blocks until the queue is drained and all workers are idle. The
// pool is reusable: Submit() may be called again after Wait().
//
// With num_threads == 0 the pool degenerates to inline execution (Submit()
// runs the task on the calling thread), which keeps single-threaded
// configurations free of synchronization noise in benchmarks.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled when tasks arrive / stop
  std::condition_variable idle_cv_;   // signalled when the pool drains
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wsk

#endif  // WSK_COMMON_THREAD_POOL_H_
