// Error-handling vocabulary for the wsk library.
//
// The library is exception-free: operations that can fail at runtime (file
// I/O, malformed input) return wsk::Status, or wsk::StatusOr<T> when they
// also produce a value. Programmer errors are guarded by WSK_CHECK instead.
#ifndef WSK_COMMON_STATUS_H_
#define WSK_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/macros.h"

namespace wsk {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kCancelled,          // the caller abandoned the operation (CancelToken)
  kDeadlineExceeded,   // the operation's deadline passed (CancelToken)
  kResourceExhausted,  // admission control rejected the request (overload)
};

// Returns a stable human-readable name for `code` ("OK", "IO_ERROR", ...).
const char* StatusCodeName(StatusCode code);

// A lightweight success-or-error result. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or an error Status. Access to the value
// when !ok() is a checked programmer error.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    WSK_CHECK(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    WSK_CHECK_MSG(ok(), "%s", status_.ToString().c_str());
    return value_;
  }
  T& value() & {
    WSK_CHECK_MSG(ok(), "%s", status_.ToString().c_str());
    return value_;
  }
  T&& value() && {
    WSK_CHECK_MSG(ok(), "%s", status_.ToString().c_str());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace wsk

// Propagates a non-OK Status to the caller.
#define WSK_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::wsk::Status wsk_status__ = (expr);       \
    if (!wsk_status__.ok()) return wsk_status__; \
  } while (0)

#endif  // WSK_COMMON_STATUS_H_
