#include "common/geometry.h"

#include <cstdio>

namespace wsk {

double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

void Rect::Extend(const Point& p) {
  min_x = std::min(min_x, p.x);
  min_y = std::min(min_y, p.y);
  max_x = std::max(max_x, p.x);
  max_y = std::max(max_y, p.y);
}

void Rect::Extend(const Rect& r) {
  if (r.Empty()) return;
  min_x = std::min(min_x, r.min_x);
  min_y = std::min(min_y, r.min_y);
  max_x = std::max(max_x, r.max_x);
  max_y = std::max(max_y, r.max_y);
}

double Rect::Enlargement(const Rect& r) const {
  Rect u = *this;
  u.Extend(r);
  return u.Area() - Area();
}

std::string Rect::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%g,%g]x[%g,%g]", min_x, max_x, min_y,
                max_y);
  return buf;
}

double MinDist(const Point& p, const Rect& r) {
  if (r.Empty()) return std::numeric_limits<double>::infinity();
  const double dx = std::max({r.min_x - p.x, 0.0, p.x - r.max_x});
  const double dy = std::max({r.min_y - p.y, 0.0, p.y - r.max_y});
  return std::sqrt(dx * dx + dy * dy);
}

double MaxDist(const Point& p, const Rect& r) {
  if (r.Empty()) return std::numeric_limits<double>::infinity();
  const double dx = std::max(std::abs(p.x - r.min_x), std::abs(p.x - r.max_x));
  const double dy = std::max(std::abs(p.y - r.min_y), std::abs(p.y - r.max_y));
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace wsk
