#include "common/cancel.h"

namespace wsk {

CancelToken CancelToken::Create() {
  return CancelToken(std::make_shared<State>());
}

CancelToken CancelToken::WithTimeout(double timeout_ms) {
  auto state = std::make_shared<State>();
  state->has_deadline = true;
  state->deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(timeout_ms));
  return CancelToken(std::move(state));
}

CancelToken CancelToken::DeriveWithTimeout(double timeout_ms) const {
  CancelToken derived = WithTimeout(timeout_ms);
  derived.state_->parent = state_;
  return derived;
}

void CancelToken::Cancel() {
  if (state_ != nullptr) {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }
}

bool CancelToken::cancelled() const {
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_relaxed)) return true;
  }
  return false;
}

Status CancelToken::Check() const {
  if (state_ == nullptr) return Status::Ok();
  if (cancelled()) return Status::Cancelled("query cancelled by caller");
  const Clock::time_point now = Clock::now();
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->has_deadline && now >= s->deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
  }
  return Status::Ok();
}

}  // namespace wsk
