// 2-D geometry primitives used by the spatial indexes.
//
// All object locations live in an arbitrary coordinate space; queries
// normalize Euclidean distances by the space diagonal so that SDist in the
// paper's ranking function (Eqn 1) falls in [0, 1].
#ifndef WSK_COMMON_GEOMETRY_H_
#define WSK_COMMON_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace wsk {

// A point in the plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

// An axis-aligned rectangle. Empty() rectangles act as the identity for
// Extend()/Union and return +inf MinDist.
struct Rect {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  static Rect FromPoint(const Point& p) { return Rect{p.x, p.y, p.x, p.y}; }

  bool Empty() const { return min_x > max_x || min_y > max_y; }

  double Area() const {
    if (Empty()) return 0.0;
    return (max_x - min_x) * (max_y - min_y);
  }

  // Half-perimeter; the classic R-tree "margin" metric.
  double Margin() const {
    if (Empty()) return 0.0;
    return (max_x - min_x) + (max_y - min_y);
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool ContainsRect(const Rect& r) const {
    if (r.Empty()) return true;
    return r.min_x >= min_x && r.max_x <= max_x && r.min_y >= min_y &&
           r.max_y <= max_y;
  }

  bool Intersects(const Rect& r) const {
    if (Empty() || r.Empty()) return false;
    return !(r.min_x > max_x || r.max_x < min_x || r.min_y > max_y ||
             r.max_y < min_y);
  }

  // Grows this rectangle to cover `p` / `r`.
  void Extend(const Point& p);
  void Extend(const Rect& r);

  // Area of the union with `r` minus this rectangle's area (the classic
  // R-tree enlargement heuristic).
  double Enlargement(const Rect& r) const;

  std::string ToString() const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

// Minimum Euclidean distance from `p` to any point of `r`; 0 if `p` is
// inside. +inf for an empty rectangle.
double MinDist(const Point& p, const Rect& r);

// Maximum Euclidean distance from `p` to any point of `r` (attained at a
// corner). +inf for an empty rectangle — a conservative upper bound.
double MaxDist(const Point& p, const Rect& r);

}  // namespace wsk

#endif  // WSK_COMMON_GEOMETRY_H_
