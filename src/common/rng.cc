#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace wsk {

uint64_t Rng::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextUint64(uint64_t bound) {
  WSK_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  WSK_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box-Muller; draws until the uniform is nonzero to keep log() finite.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

int Rng::NextPoisson(double mean) {
  WSK_CHECK(mean >= 0.0);
  const double limit = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > limit);
  return k - 1;
}

ZipfSampler::ZipfSampler(uint32_t n, double s) : n_(n) {
  WSK_CHECK(n > 0);
  WSK_CHECK(s >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i) + 1.0, s);
    cdf_[i] = sum;
  }
  for (uint32_t i = 0; i < n; ++i) cdf_[i] /= sum;
  cdf_.back() = 1.0;
}

uint32_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint32_t>(it - cdf_.begin());
}

}  // namespace wsk
