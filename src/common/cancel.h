// Cooperative cancellation and deadlines for long-running queries.
//
// The why-not algorithms (BS / AdvancedBS / KcRBased) can run for seconds
// on large candidate sets; a CancelToken lets a caller — typically the
// service layer — abandon such a query mid-flight. Cancellation is
// cooperative: the algorithms call Check() at node-visit / candidate
// granularity and unwind with kCancelled or kDeadlineExceeded. All
// intermediate state is per-query and RAII-managed (buffer-pool pins are
// PageHandles), so an unwound query leaves the engine consistent.
//
// A default-constructed token is null: it never cancels and costs nothing
// to check, so `const CancelToken*` parameters can default to nullptr and
// cold paths stay branch-predictable.
#ifndef WSK_COMMON_CANCEL_H_
#define WSK_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "common/status.h"

namespace wsk {

// Copyable handle over shared cancellation state. Thread-safe: any thread
// may call Cancel() while others Check().
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  // Null token: cancelled() is always false, Check() always OK.
  CancelToken() = default;

  // A live token with no deadline (cancel-only).
  static CancelToken Create();

  // A live token whose Check() starts returning kDeadlineExceeded once
  // `timeout_ms` elapses (measured from this call).
  static CancelToken WithTimeout(double timeout_ms);

  // A token observing this token's cancellation *and* an additional
  // deadline `timeout_ms` from now; the effective deadline is the earlier
  // of the two. Deriving from a null token is equivalent to WithTimeout().
  // Cancelling the derived token does not cancel this one.
  CancelToken DeriveWithTimeout(double timeout_ms) const;

  // Requests cancellation. Visible to every copy of this token and to
  // tokens derived from it. No-op on a null token.
  void Cancel();

  bool valid() const { return state_ != nullptr; }

  // True once Cancel() was called (deadlines do not set this flag).
  bool cancelled() const;

  // OK, or kCancelled / kDeadlineExceeded. kCancelled wins when both
  // conditions hold (the explicit request is the stronger signal).
  Status Check() const;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    Clock::time_point deadline{};
    std::shared_ptr<const State> parent;  // chained cancellation scope
  };

  explicit CancelToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

}  // namespace wsk

#endif  // WSK_COMMON_CANCEL_H_
