#include "storage/node_codec_v2.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/pager.h"
#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

TEST(NodeCodecV2Test, VarintRoundTrip) {
  const uint64_t values[] = {0,      1,        127,        128,
                             16383,  16384,    0xffffffff, 1ull << 40,
                             ~0ull};
  std::vector<uint8_t> buf;
  for (uint64_t v : values) PutVarint(&buf, v);
  CheckedReader reader(buf.data(), buf.size());
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(reader.GetVarint(&got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_TRUE(reader.ok());
}

TEST(NodeCodecV2Test, VarintSmallValuesAreOneByte) {
  std::vector<uint8_t> buf;
  PutVarint(&buf, 87);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(NodeCodecV2Test, DeltaU32RoundTrip) {
  const std::vector<uint32_t> ids = {3, 4, 9, 100, 101, 70000, 0xfffffffe};
  std::vector<uint8_t> buf;
  PutDeltaU32s(&buf, ids.data(), ids.size());
  // Dense ascending ids cost ~1 byte each after the first.
  EXPECT_LT(buf.size(), ids.size() * 4);
  CheckedReader reader(buf.data(), buf.size());
  std::vector<uint32_t> got;
  ASSERT_TRUE(reader.GetDeltaU32s(ids.size(), &got));
  EXPECT_EQ(got, ids);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(NodeCodecV2Test, TaggedChildRefs) {
  EXPECT_EQ(ChildRefPage(MakeChildRef(0, false)), 0u);
  EXPECT_FALSE(ChildRefIsLeaf(MakeChildRef(0, false)));
  EXPECT_TRUE(ChildRefIsLeaf(MakeChildRef(0, true)));
  const PageId page = 0x7fffffffu;
  const uint64_t ref = MakeChildRef(page, true);
  EXPECT_EQ(ChildRefPage(ref), page);
  EXPECT_TRUE(ChildRefIsLeaf(ref));
}

TEST(NodeCodecV2Test, CheckedReaderOverrunIsStickyAndSafe) {
  std::vector<uint8_t> buf;
  PutVarint(&buf, 5);
  CheckedReader reader(buf.data(), buf.size());
  uint64_t v = 0;
  ASSERT_TRUE(reader.GetVarint(&v));
  EXPECT_EQ(v, 5u);
  double d = 1.5;
  EXPECT_FALSE(reader.GetDouble(&d));  // past the end
  EXPECT_EQ(d, 1.5);                   // output untouched
  EXPECT_FALSE(reader.ok());
  uint8_t b = 0;
  EXPECT_FALSE(reader.GetU8(&b));  // sticky: still failed
}

TEST(NodeCodecV2Test, CheckedReaderRejectsTruncatedVarint) {
  const uint8_t bytes[] = {0x80, 0x80};  // continuation bits, no terminator
  CheckedReader reader(bytes, sizeof(bytes));
  uint64_t v = 0;
  EXPECT_FALSE(reader.GetVarint(&v));
  EXPECT_FALSE(reader.ok());
}

TEST(NodeCodecV2Test, CheckedReaderRejectsNonCanonicalVarint) {
  // 11 continuation bytes: a u64 varint never needs more than 10.
  std::vector<uint8_t> bytes(11, 0x80);
  bytes.back() = 0x01;
  CheckedReader reader(bytes.data(), bytes.size());
  uint64_t v = 0;
  EXPECT_FALSE(reader.GetVarint(&v));
}

TEST(NodeCodecV2Test, DeltaDecodeRejectsZeroStep) {
  // first id 7, then delta 0 — ids must be strictly ascending.
  std::vector<uint8_t> buf;
  PutVarint(&buf, 7);
  PutVarint(&buf, 0);
  CheckedReader reader(buf.data(), buf.size());
  std::vector<uint32_t> got;
  EXPECT_FALSE(reader.GetDeltaU32s(2, &got));
}

TEST(NodeCodecV2Test, DeltaDecodeRejectsU32Overflow) {
  std::vector<uint8_t> buf;
  PutVarint(&buf, 0xffffffffull);  // first id = u32 max
  PutVarint(&buf, 1);              // next would overflow
  CheckedReader reader(buf.data(), buf.size());
  std::vector<uint32_t> got;
  EXPECT_FALSE(reader.GetDeltaU32s(2, &got));
}

TEST(NodeCodecV2Test, GetVarint32RejectsWideValues) {
  std::vector<uint8_t> buf;
  PutVarint(&buf, 1ull << 33);
  CheckedReader reader(buf.data(), buf.size());
  uint32_t v = 0;
  EXPECT_FALSE(reader.GetVarint32(&v));
}

TEST(NodeCodecV2Test, EncodePadsToWholePages) {
  std::vector<uint8_t> body(100, 0xaa);
  std::vector<uint8_t> record;
  ASSERT_TRUE(
      EncodeNodeRecordV2(true, 4, body, kDefaultPageSize, &record).ok());
  EXPECT_EQ(record.size(), kDefaultPageSize);
  EXPECT_EQ(record[0], kNodeFormatV2);

  std::vector<uint8_t> big(2 * kDefaultPageSize, 0x55);
  ASSERT_TRUE(EncodeNodeRecordV2(false, 9, big, kDefaultPageSize, &record).ok());
  EXPECT_EQ(record.size(), 3 * kDefaultPageSize);
}

TEST(NodeCodecV2Test, EncodeRejectsOversizedCount) {
  std::vector<uint8_t> body;
  std::vector<uint8_t> record;
  const Status status = EncodeNodeRecordV2(true, kMaxNodeCountV2 + 1, body,
                                           kDefaultPageSize, &record);
  EXPECT_FALSE(status.ok());
}

// Appends one record via the pool and returns its first page.
PageId AppendRecord(BufferPool* pool, bool is_leaf, uint32_t count,
                    const std::vector<uint8_t>& body) {
  StatusOr<PageId> page = AppendNodeRecordV2(pool, is_leaf, count, body);
  EXPECT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_TRUE(pool->FlushAll().ok());
  return page.value();
}

TEST(NodeCodecV2Test, AppendReadRoundTripSinglePage) {
  TempFile file("codec_v2_rt1");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 1u << 20);
  std::vector<uint8_t> body = {1, 2, 3, 4, 5, 6, 7};
  const PageId page = AppendRecord(&pool, true, 3, body);

  StatusOr<NodeRecordV2> record = ReadNodeRecordV2(&pool, page);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_TRUE(record.value().is_leaf());
  EXPECT_EQ(record.value().count(), 3u);
  EXPECT_EQ(record.value().body_bytes(), body.size());
  EXPECT_EQ(record.value().pages(), 1u);
  // Single-page records borrow the frame: no copy.
  EXPECT_TRUE(record.value().zero_copy());
  EXPECT_EQ(std::memcmp(record.value().body(), body.data(), body.size()), 0);
}

TEST(NodeCodecV2Test, AppendReadRoundTripMultiPage) {
  TempFile file("codec_v2_rtn");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 1u << 20);
  std::vector<uint8_t> body(3 * kDefaultPageSize / 2);
  for (size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<uint8_t>(i * 31);
  }
  const PageId page = AppendRecord(&pool, false, 77, body);

  StatusOr<NodeRecordV2> record = ReadNodeRecordV2(&pool, page);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_FALSE(record.value().is_leaf());
  EXPECT_EQ(record.value().count(), 77u);
  EXPECT_EQ(record.value().pages(), 2u);
  // Multi-page pool reads gather into scratch.
  EXPECT_FALSE(record.value().zero_copy());
  EXPECT_EQ(std::memcmp(record.value().body(), body.data(), body.size()), 0);
}

TEST(NodeCodecV2Test, MappedReadIsZeroCopyAndByteIdentical) {
  TempFile file("codec_v2_map");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 1u << 20);
  std::vector<uint8_t> small = {9, 8, 7};
  std::vector<uint8_t> large(5 * kDefaultPageSize / 2, 0x3c);
  const PageId p_small = AppendRecord(&pool, true, 1, small);
  const PageId p_large = AppendRecord(&pool, false, 2, large);

  ASSERT_TRUE(pager->EnableMappedReads().ok());
  const uint64_t mapped_before = pager->io_stats().mapped_reads();

  StatusOr<NodeRecordV2> rec_small = ReadNodeRecordV2(&pool, p_small);
  ASSERT_TRUE(rec_small.ok()) << rec_small.status().ToString();
  EXPECT_TRUE(rec_small.value().zero_copy());
  EXPECT_EQ(std::memcmp(rec_small.value().body(), small.data(), small.size()),
            0);

  // Mapped mode serves multi-page records zero-copy too.
  StatusOr<NodeRecordV2> rec_large = ReadNodeRecordV2(&pool, p_large);
  ASSERT_TRUE(rec_large.ok()) << rec_large.status().ToString();
  EXPECT_TRUE(rec_large.value().zero_copy());
  EXPECT_EQ(std::memcmp(rec_large.value().body(), large.data(), large.size()),
            0);

  EXPECT_GT(pager->io_stats().mapped_reads(), mapped_before);
}

TEST(NodeCodecV2Test, ChecksumLedgerVerifiesFirstTouchOnly) {
  TempFile file("codec_v2_ledger");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 1u << 20);
  std::vector<uint8_t> body = {4, 5, 6, 7};
  const PageId page = AppendRecord(&pool, true, 2, body);

  // Corruption present before the first ledgered read is always caught.
  ChecksumLedger cold;
  {
    std::vector<uint8_t> bad(pager->page_size());
    ASSERT_TRUE(pager->ReadPage(page, bad.data()).ok());
    bad[kNodeHeaderBytesV2 + 1] ^= 0x40;
    ASSERT_TRUE(pager->WritePage(page, bad.data()).ok());
    ASSERT_TRUE(pool.InvalidateAll().ok());
    EXPECT_EQ(ReadNodeRecordV2(&pool, page, &cold).status().code(),
              StatusCode::kCorruption);
    bad[kNodeHeaderBytesV2 + 1] ^= 0x40;  // restore
    ASSERT_TRUE(pager->WritePage(page, bad.data()).ok());
    ASSERT_TRUE(pool.InvalidateAll().ok());
  }

  // A clean first read marks the record; later reads skip the re-hash.
  // That is the contract the trees rely on: v2 records are write-once, so
  // one clean verification per ledger lifetime is enough — a byte flipped
  // *after* that read is deliberately not re-detected through the same
  // ledger (an unledgered read still hashes every time and catches it).
  ChecksumLedger ledger;
  ASSERT_TRUE(ReadNodeRecordV2(&pool, page, &ledger).ok());
  std::vector<uint8_t> flipped(pager->page_size());
  ASSERT_TRUE(pager->ReadPage(page, flipped.data()).ok());
  flipped[kNodeHeaderBytesV2 + 1] ^= 0x40;
  ASSERT_TRUE(pager->WritePage(page, flipped.data()).ok());
  ASSERT_TRUE(pool.InvalidateAll().ok());
  EXPECT_TRUE(ReadNodeRecordV2(&pool, page, &ledger).ok());
  EXPECT_EQ(ReadNodeRecordV2(&pool, page).status().code(),
            StatusCode::kCorruption);
}

TEST(NodeCodecV2Test, ReadRejectsPagePastEndOfFile) {
  TempFile file("codec_v2_oor");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 1u << 20);
  AppendRecord(&pool, true, 1, {1});
  StatusOr<NodeRecordV2> record = ReadNodeRecordV2(&pool, 40);
  EXPECT_EQ(record.status().code(), StatusCode::kCorruption);
}

// Writes `record` bytes over the pages starting at `page` and drops cached
// frames so the next read sees the surgery.
void OverwriteRecord(Pager* pager, BufferPool* pool, PageId page,
                     const std::vector<uint8_t>& record) {
  ASSERT_EQ(record.size() % pager->page_size(), 0u);
  for (size_t off = 0; off < record.size(); off += pager->page_size()) {
    ASSERT_TRUE(
        pager->WritePage(page + off / pager->page_size(), record.data() + off)
            .ok());
  }
  ASSERT_TRUE(pool->InvalidateAll().ok());
}

class NodeCodecV2CorruptionTest : public ::testing::Test {
 protected:
  NodeCodecV2CorruptionTest() : file_("codec_v2_corrupt") {
    pager_ = Pager::Create(file_.path()).value();
    pool_ = std::make_unique<BufferPool>(pager_.get(), 1u << 20);
    body_ = {10, 20, 30, 40, 50};
    page_ = AppendRecord(pool_.get(), true, 2, body_);
    EXPECT_TRUE(
        EncodeNodeRecordV2(true, 2, body_, pager_->page_size(), &record_)
            .ok());
  }

  Status ReadBack() {
    return ReadNodeRecordV2(pool_.get(), page_).status();
  }

  TempFile file_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<uint8_t> body_;
  std::vector<uint8_t> record_;
  PageId page_ = 0;
};

TEST_F(NodeCodecV2CorruptionTest, BadVersionByte) {
  std::vector<uint8_t> broken = record_;
  broken[0] = 7;
  OverwriteRecord(pager_.get(), pool_.get(), page_, broken);
  const Status status = ReadBack();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("version"), std::string::npos)
      << status.ToString();
}

TEST_F(NodeCodecV2CorruptionTest, BadKindByte) {
  std::vector<uint8_t> broken = record_;
  broken[1] = 9;
  OverwriteRecord(pager_.get(), pool_.get(), page_, broken);
  EXPECT_EQ(ReadBack().code(), StatusCode::kCorruption);
}

TEST_F(NodeCodecV2CorruptionTest, BodyChecksumMismatch) {
  std::vector<uint8_t> broken = record_;
  broken[kNodeHeaderBytesV2 + 1] ^= 0xff;  // flip one body byte
  OverwriteRecord(pager_.get(), pool_.get(), page_, broken);
  const Status status = ReadBack();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("checksum"), std::string::npos)
      << status.ToString();
}

TEST_F(NodeCodecV2CorruptionTest, TruncatedRecordExtent) {
  // body_bytes claims more than the file holds.
  std::vector<uint8_t> broken = record_;
  const uint32_t huge = 100 * kDefaultPageSize;
  std::memcpy(&broken[4], &huge, sizeof(huge));
  OverwriteRecord(pager_.get(), pool_.get(), page_, broken);
  const Status status = ReadBack();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("extends past end"), std::string::npos)
      << status.ToString();
}

// Random single-byte flips anywhere in the record must surface as either a
// clean decode (flips in the padding, or in header bits the checksum does
// not cover but later validation tolerates) or a Status — never a crash.
TEST_F(NodeCodecV2CorruptionTest, ByteFlipFuzzNeverCrashes) {
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<size_t> pos(0, record_.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> broken = record_;
    broken[pos(rng)] ^= static_cast<uint8_t>(1u << bit(rng));
    OverwriteRecord(pager_.get(), pool_.get(), page_, broken);
    StatusOr<NodeRecordV2> read = ReadNodeRecordV2(pool_.get(), page_);
    if (read.ok()) {
      // Survivable flips must still hand back an in-bounds body.
      EXPECT_LE(read.value().body_bytes(),
                read.value().pages() * pager_->page_size());
    } else {
      EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
    }
  }
}

}  // namespace
}  // namespace wsk
