// QueryService over a live SegmentedEngine backend (docs/SERVICE.md
// "Mutations and cache invalidation"): the mutation entry points work end
// to end, cached pre-mutation answers are never served after a mutation
// (version-keyed fingerprints), read-only backends keep rejecting writes
// through the service, and the segment counters surface in both metric
// report formats.
#include "service/query_service.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "segment/segmented_engine.h"

namespace wsk {
namespace {

class SegmentServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_objects = 400;
    config.vocab_size = 60;
    config.seed = 4242;
    dataset_ = GenerateDataset(config);

    SegmentedEngine::Config engine_config;
    engine_config.node_capacity = 16;
    engine_config.delta_capacity = 32;
    engine_config.auto_merge = false;  // deterministic segment counts
    engine_ = SegmentedEngine::Build(dataset_, engine_config).value();
  }

  SpatialKeywordQuery Query() const {
    SpatialKeywordQuery q;
    q.loc = Point{0.5, 0.5};
    std::vector<TermId> terms(dataset_.object(7).doc.begin(),
                              dataset_.object(7).doc.end());
    if (terms.size() > 3) terms.resize(3);
    q.doc = KeywordSet(std::move(terms));
    q.k = 5;
    q.alpha = 0.5;
    return q;
  }

  // Keyword strings of the query's terms: an object carrying all of them
  // placed at the query point scores 1.0 and must enter the top-k.
  std::vector<std::string> QueryKeywords(const SpatialKeywordQuery& q) const {
    std::vector<std::string> out;
    for (TermId t : q.doc) out.push_back(dataset_.vocabulary().TermString(t));
    return out;
  }

  Dataset dataset_;
  std::unique_ptr<SegmentedEngine> engine_;
};

TEST_F(SegmentServiceTest, MutationsRoundTripThroughService) {
  QueryService service(engine_.get(), {});
  const uint64_t v0 = engine_->dataset_version();

  const auto inserted =
      service.Insert(Point{0.1, 0.1}, {"alpha", "beta"});
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_GT(inserted.value().dataset_version, v0);
  EXPECT_GE(inserted.value().latency_ms, 0.0);
  const ObjectId id = inserted.value().id;

  const auto updated = service.Update(id, Point{0.2, 0.2}, {"alpha"});
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(updated.value().id, id);
  EXPECT_GT(updated.value().dataset_version,
            inserted.value().dataset_version);

  const auto deleted = service.Delete(id);
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_EQ(deleted.value().id, id);
  EXPECT_GT(deleted.value().dataset_version,
            updated.value().dataset_version);

  // Failed mutations surface the backend's status and count separately.
  EXPECT_EQ(service.Delete(id).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.metrics().counter("mutations.insert").value(), 1u);
  EXPECT_EQ(service.metrics().counter("mutations.update").value(), 1u);
  EXPECT_EQ(service.metrics().counter("mutations.delete").value(), 1u);
  EXPECT_EQ(service.metrics().counter("mutations.failed").value(), 1u);
}

// The regression the version-keyed fingerprints exist for: answer, cache,
// mutate something that changes the answer, ask again — the service must
// return the fresh answer, not the cached pre-mutation one.
TEST_F(SegmentServiceTest, StaleCachedResultsAreNeverServedAfterMutation) {
  QueryService service(engine_.get(), {});
  const SpatialKeywordQuery query = Query();

  const auto before = service.TopK(query);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_FALSE(before.value().cache_hit);
  const auto repeat = service.TopK(query);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat.value().cache_hit);  // cache demonstrably works

  // A perfect-score object: exactly the query's keywords at the query
  // point. It must displace the old top-1.
  const auto inserted = service.Insert(query.loc, QueryKeywords(query));
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();

  const auto after = service.TopK(query);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after.value().cache_hit);  // old entry is unreachable
  ASSERT_FALSE(after.value().results.empty());
  EXPECT_EQ(after.value().results[0].id, inserted.value().id);
  ASSERT_FALSE(before.value().results.empty());
  EXPECT_NE(after.value().results[0].id, before.value().results[0].id);

  // Why-not answers are version-keyed the same way: a cached answer is
  // only reachable at the version it was computed under.
  const auto post = service.TopK(query);
  ASSERT_TRUE(post.ok());
  EXPECT_TRUE(post.value().cache_hit);  // fresh answer re-cached
}

TEST_F(SegmentServiceTest, FingerprintEmbedsDatasetVersion) {
  const SpatialKeywordQuery query = Query();
  const std::string v1 = FingerprintTopK(query, 1e-6, 1);
  const std::string v2 = FingerprintTopK(query, 1e-6, 2);
  EXPECT_NE(v1, v2);
  // Default version 0 == legacy key: read-only backends are unchanged.
  EXPECT_EQ(FingerprintTopK(query, 1e-6), FingerprintTopK(query, 1e-6, 0));

  WhyNotOptions options;
  const std::string w1 = FingerprintWhyNot(WhyNotAlgorithm::kAdvanced, query,
                                           {3}, options, 1e-6, 1);
  const std::string w2 = FingerprintWhyNot(WhyNotAlgorithm::kAdvanced, query,
                                           {3}, options, 1e-6, 2);
  EXPECT_NE(w1, w2);
  EXPECT_EQ(FingerprintWhyNot(WhyNotAlgorithm::kAdvanced, query, {3}, options,
                              1e-6),
            FingerprintWhyNot(WhyNotAlgorithm::kAdvanced, query, {3}, options,
                              1e-6, 0));
}

TEST_F(SegmentServiceTest, ReadOnlyBackendRejectsMutationsThroughService) {
  std::unique_ptr<WhyNotEngine> frozen =
      WhyNotEngine::Build(&dataset_, {}).value();
  QueryService service(frozen.get(), {});

  EXPECT_EQ(service.Insert(Point{0.0, 0.0}, {"x"}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Update(0, Point{0.0, 0.0}, {"x"}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Delete(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.metrics().counter("mutations.failed").value(), 3u);

  // Static backends report no segment counters, and the reports omit the
  // segment section.
  EXPECT_EQ(service.MetricsReport().find("segments  frozen"),
            std::string::npos);
  EXPECT_EQ(service.PrometheusReport().find("wsk_segment_"),
            std::string::npos);
}

TEST_F(SegmentServiceTest, SegmentCountersSurfaceInReports) {
  QueryService service(engine_.get(), {});
  ASSERT_TRUE(service.Insert(Point{0.3, 0.3}, {"gamma"}).ok());

  const std::string report = service.MetricsReport();
  EXPECT_NE(report.find("segments  frozen"), std::string::npos) << report;
  EXPECT_NE(report.find("compaction"), std::string::npos) << report;

  const std::string prom = service.PrometheusReport();
  EXPECT_NE(prom.find("wsk_segment_inserts_total"), std::string::npos);
  EXPECT_NE(prom.find("wsk_segment_live_objects"), std::string::npos);
  EXPECT_NE(prom.find("wsk_segment_dataset_version"), std::string::npos);
}

}  // namespace
}  // namespace wsk
