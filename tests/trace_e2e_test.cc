// End-to-end tracing acceptance (docs/OBSERVABILITY.md): each why-not
// algorithm runs with a TraceRecorder attached and the exported profile
// must (a) be well-formed Chrome trace JSON whose stage spans nest inside
// a root `query` span covering the query's wall time, and (b) satisfy the
// pruning-counter partition invariants exactly.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/whynot.h"
#include "data/generator.h"
#include "observability/trace.h"

namespace wsk {
namespace {

constexpr WhyNotAlgorithm kAlgorithms[] = {
    WhyNotAlgorithm::kBasic,
    WhyNotAlgorithm::kAdvanced,
    WhyNotAlgorithm::kKcrBased,
};

class TraceE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_objects = 400;
    config.vocab_size = 40;
    config.seed = 97;
    dataset_ = GenerateDataset(config);
    WhyNotEngine::Config engine_config;
    engine_config.node_capacity = 16;
    auto built = WhyNotEngine::Build(&dataset_, engine_config);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    engine_ = std::move(built).value();

    query_.loc = Point{0.4, 0.6};
    query_.doc = dataset_.object(11).doc;
    query_.k = 5;
    query_.alpha = 0.5;
    auto missing = engine_->ObjectAtPosition(query_, 26);
    ASSERT_TRUE(missing.ok()) << missing.status().ToString();
    missing_ = {missing.value()};
  }

  Dataset dataset_;
  std::unique_ptr<WhyNotEngine> engine_;
  SpatialKeywordQuery query_;
  std::vector<ObjectId> missing_;
};

TEST_F(TraceE2eTest, EveryAlgorithmSatisfiesSpanAndCounterContracts) {
  for (WhyNotAlgorithm algorithm : kAlgorithms) {
    SCOPED_TRACE(WhyNotAlgorithmName(algorithm));
    TraceRecorder recorder;
    WhyNotOptions options;
    options.trace = &recorder;
    auto got = engine_->Answer(algorithm, query_, missing_, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const WhyNotStats& stats = got.value().stats;
    ASSERT_FALSE(got.value().already_in_result);

    // --- (a) span structure ---
    const std::vector<TraceEvent> events = recorder.Events();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(recorder.dropped_events(), 0u);
    // Exactly one root span, recorded last (RAII destruction order).
    ASSERT_EQ(recorder.StageCount(TraceStage::kQuery), 1u);
    const TraceEvent* root = nullptr;
    for (const TraceEvent& e : events) {
      if (e.stage == TraceStage::kQuery && !e.instant) root = &e;
    }
    ASSERT_NE(root, nullptr);
    // The root encloses the algorithm's own wall-clock measurement: spans
    // cover at least 95% of the query's elapsed time by construction.
    EXPECT_GE(static_cast<double>(root->dur_us),
              0.95 * stats.elapsed_ms * 1000.0);
    // Every other event nests inside the root interval.
    const uint64_t root_begin = root->start_us;
    const uint64_t root_end = root->start_us + root->dur_us;
    for (const TraceEvent& e : events) {
      EXPECT_GE(e.start_us, root_begin);
      EXPECT_LE(e.start_us + e.dur_us, root_end);
    }
    // The stage pipeline ran: initial rank and enumeration exactly once.
    EXPECT_EQ(recorder.StageCount(TraceStage::kInitialRank), 1u);
    EXPECT_EQ(recorder.StageCount(TraceStage::kEnumeration), 1u);

    // --- (a) export well-formedness (spot checks; structural balance is
    // covered by trace_test's shared helper over the same exporter) ---
    const std::string json = recorder.ToChromeTraceJson();
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"counters\""), std::string::npos);
    EXPECT_EQ(json.back(), '}');

    // --- (b) counter invariants ---
    const uint64_t enumerated =
        recorder.counter(TraceCounter::kCandidatesEnumerated);
    const uint64_t kept = recorder.counter(TraceCounter::kCandidatesKept);
    const uint64_t pruned_early =
        recorder.counter(TraceCounter::kCandidatesPrunedEarlyStop);
    const uint64_t pruned_dom =
        recorder.counter(TraceCounter::kCandidatesPrunedDominator);
    EXPECT_EQ(enumerated, kept + pruned_early + pruned_dom);
    EXPECT_GT(enumerated, 0u);

    const uint64_t seen = recorder.counter(TraceCounter::kNodesSeen);
    const uint64_t visited = recorder.counter(TraceCounter::kNodesVisited);
    const uint64_t pruned = recorder.counter(TraceCounter::kNodesPruned);
    EXPECT_EQ(seen, visited + pruned);
    EXPECT_GT(visited, 0u);

    // The trace counters and WhyNotStats tell the same story.
    EXPECT_EQ(enumerated, stats.candidates_total);
    EXPECT_EQ(kept, stats.candidates_evaluated);
    EXPECT_EQ(pruned_dom, stats.candidates_filtered);
    EXPECT_EQ(pruned_early, stats.candidates_pruned_bounds +
                                stats.candidates_skipped_order);
  }
}

TEST_F(TraceE2eTest, AlgorithmSpecificStagesAppear) {
  {
    TraceRecorder recorder;
    WhyNotOptions options;
    options.trace = &recorder;
    ASSERT_TRUE(engine_
                    ->Answer(WhyNotAlgorithm::kAdvanced, query_, missing_,
                             options)
                    .ok());
    // AdvancedBS evaluates candidates through rank queries, with the Opt3
    // dominator cache probed along the way.
    EXPECT_GT(recorder.StageCount(TraceStage::kCandidateEval), 0u);
    EXPECT_GT(recorder.StageCount(TraceStage::kRankQuery), 0u);
    EXPECT_GT(recorder.counter(TraceCounter::kDominatorCacheProbes), 0u);
    EXPECT_GT(recorder.counter(TraceCounter::kKernelInvocations), 0u);
  }
  {
    TraceRecorder recorder;
    WhyNotOptions options;
    options.trace = &recorder;
    ASSERT_TRUE(engine_
                    ->Answer(WhyNotAlgorithm::kKcrBased, query_, missing_,
                             options)
                    .ok());
    // KcRBased runs batched Algorithm 3 traversals over the KcR-tree.
    const uint64_t batches = recorder.counter(TraceCounter::kBatches);
    EXPECT_GT(batches, 0u);
    EXPECT_EQ(recorder.StageCount(TraceStage::kBatch), batches);
    EXPECT_GT(recorder.counter(TraceCounter::kBatchCandidates), 0u);
    EXPECT_GT(recorder.StageCount(TraceStage::kLeafScoring), 0u);
    EXPECT_GT(recorder.StageCount(TraceStage::kBoundTightening), 0u);
    EXPECT_GT(recorder.counter(TraceCounter::kLeafObjectsScored), 0u);
  }
}

TEST_F(TraceE2eTest, ParallelEvaluationKeepsInvariants) {
  for (WhyNotAlgorithm algorithm :
       {WhyNotAlgorithm::kAdvanced, WhyNotAlgorithm::kKcrBased}) {
    SCOPED_TRACE(WhyNotAlgorithmName(algorithm));
    TraceRecorder recorder;
    WhyNotOptions options;
    options.trace = &recorder;
    options.num_threads = 4;
    auto got = engine_->Answer(algorithm, query_, missing_, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(recorder.counter(TraceCounter::kCandidatesEnumerated),
              recorder.counter(TraceCounter::kCandidatesKept) +
                  recorder.counter(TraceCounter::kCandidatesPrunedEarlyStop) +
                  recorder.counter(TraceCounter::kCandidatesPrunedDominator));
    EXPECT_EQ(recorder.counter(TraceCounter::kNodesSeen),
              recorder.counter(TraceCounter::kNodesVisited) +
                  recorder.counter(TraceCounter::kNodesPruned));
  }
}

TEST_F(TraceE2eTest, TopKTraversalRecordsNodeCounters) {
  TraceRecorder recorder;
  auto top = engine_->TopK(query_, /*cancel=*/nullptr, &recorder);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_EQ(recorder.StageCount(TraceStage::kQuery), 1u);
  EXPECT_EQ(recorder.StageCount(TraceStage::kTopK), 1u);
  EXPECT_GT(recorder.counter(TraceCounter::kNodesVisited), 0u);
  EXPECT_GT(recorder.counter(TraceCounter::kLeafObjectsScored), 0u);
  EXPECT_EQ(recorder.counter(TraceCounter::kNodesSeen),
            recorder.counter(TraceCounter::kNodesVisited) +
                recorder.counter(TraceCounter::kNodesPruned));
}

}  // namespace
}  // namespace wsk
