#include "storage/blob_store.h"

#include <gtest/gtest.h>

#include <numeric>

#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

class BlobStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = std::make_unique<TempFile>("blob");
    pager_ = Pager::Create(file_->path(), 256).value();
    pool_ = std::make_unique<BufferPool>(pager_.get(), 256 * 16);
    store_ = std::make_unique<BlobStore>(pool_.get());
  }

  std::vector<uint8_t> Bytes(size_t n, uint8_t seed) {
    std::vector<uint8_t> v(n);
    std::iota(v.begin(), v.end(), seed);
    return v;
  }

  std::unique_ptr<TempFile> file_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BlobStore> store_;
};

TEST_F(BlobStoreTest, RoundTripSmall) {
  const auto data = Bytes(40, 1);
  auto ref = store_->Append(data);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(store_->Flush().ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(store_->Read(ref.value(), &out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(BlobStoreTest, SmallBlobsPackIntoOnePage) {
  const auto a = Bytes(50, 1);
  const auto b = Bytes(60, 9);
  auto ra = store_->Append(a);
  auto rb = store_->Append(b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.value().page, rb.value().page);
  EXPECT_EQ(rb.value().offset, 50u);
  ASSERT_TRUE(store_->Flush().ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(store_->Read(ra.value(), &out).ok());
  EXPECT_EQ(out, a);
  ASSERT_TRUE(store_->Read(rb.value(), &out).ok());
  EXPECT_EQ(out, b);
}

TEST_F(BlobStoreTest, BlobNeverStraddlesPageUnlessLarge) {
  // 200 bytes then 100 bytes: the second cannot fit in the 256-byte page
  // and must start a fresh one.
  auto ra = store_->Append(Bytes(200, 1));
  auto rb = store_->Append(Bytes(100, 2));
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_NE(ra.value().page, rb.value().page);
  EXPECT_EQ(rb.value().offset, 0u);
}

TEST_F(BlobStoreTest, MultiPageBlobRoundTrip) {
  const auto big = Bytes(1000, 3);  // spans 4 pages of 256
  auto ref = store_->Append(big);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref.value().offset, 0u);
  ASSERT_TRUE(store_->Flush().ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(store_->Read(ref.value(), &out).ok());
  EXPECT_EQ(out, big);
}

TEST_F(BlobStoreTest, MixedSizesRoundTrip) {
  std::vector<std::pair<BlobRef, std::vector<uint8_t>>> blobs;
  for (int i = 0; i < 50; ++i) {
    const size_t n = 1 + (i * 37) % 700;
    auto data = Bytes(n, static_cast<uint8_t>(i));
    auto ref = store_->Append(data);
    ASSERT_TRUE(ref.ok());
    blobs.emplace_back(ref.value(), std::move(data));
  }
  ASSERT_TRUE(store_->Flush().ok());
  for (const auto& [ref, data] : blobs) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(store_->Read(ref, &out).ok());
    EXPECT_EQ(out, data);
  }
}

TEST_F(BlobStoreTest, EmptyBlob) {
  auto ref = store_->Append(nullptr, 0);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(store_->Flush().ok());
  std::vector<uint8_t> out{1, 2, 3};
  ASSERT_TRUE(store_->Read(ref.value(), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(BlobStoreTest, ReadInvalidRefFails) {
  BlobRef bogus;
  bogus.length = 10;
  std::vector<uint8_t> out;
  EXPECT_EQ(store_->Read(bogus, &out).code(), StatusCode::kInvalidArgument);
}

TEST_F(BlobStoreTest, SerializeRefRoundTrip) {
  BlobRef ref{12, 34, 56};
  uint8_t buf[BlobRef::kSerializedSize];
  ref.Serialize(buf);
  EXPECT_EQ(BlobRef::Deserialize(buf), ref);
}

TEST_F(BlobStoreTest, ReadRangeWithinSinglePageBlob) {
  const auto data = Bytes(100, 4);
  auto ref = store_->Append(data);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(store_->Flush().ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(store_->ReadRange(ref.value(), 30, 20, &out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(data.begin() + 30, data.begin() + 50));
  // Zero-length range at the end is fine.
  ASSERT_TRUE(store_->ReadRange(ref.value(), 100, 0, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(BlobStoreTest, ReadRangeAcrossPagesOfLargeBlob) {
  const auto big = Bytes(900, 6);  // 4 pages of 256
  auto ref = store_->Append(big);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(store_->Flush().ok());
  std::vector<uint8_t> out;
  // Range straddling the 256-byte page boundary.
  ASSERT_TRUE(store_->ReadRange(ref.value(), 250, 20, &out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(big.begin() + 250, big.begin() + 270));
  // A range entirely inside the third page costs a single fetch.
  ASSERT_TRUE(pool_->InvalidateAll().ok());
  pager_->io_stats().Reset();
  ASSERT_TRUE(store_->ReadRange(ref.value(), 600, 10, &out).ok());
  EXPECT_EQ(pager_->io_stats().physical_reads(), 1u);
  EXPECT_EQ(out, std::vector<uint8_t>(big.begin() + 600, big.begin() + 610));
}

TEST_F(BlobStoreTest, ReadRangePastEndFails) {
  auto ref = store_->Append(Bytes(50, 8));
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(store_->Flush().ok());
  std::vector<uint8_t> out;
  EXPECT_EQ(store_->ReadRange(ref.value(), 40, 20, &out).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(store_->ReadRange(ref.value(), 60, 1, &out).code(),
            StatusCode::kOutOfRange);
}

TEST_F(BlobStoreTest, ReadCostsOneFetchPerPageSpanned) {
  const auto big = Bytes(700, 5);  // 3 pages
  auto ref = store_->Append(big);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(store_->Flush().ok());
  ASSERT_TRUE(pool_->InvalidateAll().ok());
  pager_->io_stats().Reset();
  std::vector<uint8_t> out;
  ASSERT_TRUE(store_->Read(ref.value(), &out).ok());
  EXPECT_EQ(pager_->io_stats().physical_reads(), 3u);
}

}  // namespace
}  // namespace wsk
