#include "service/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace wsk {
namespace {

TEST(CounterTest, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogramTest, EmptySnapshot) {
  LatencyHistogram h;
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50_ms, 0.0);
  EXPECT_EQ(s.p99_ms, 0.0);
  EXPECT_EQ(s.max_ms, 0.0);
}

TEST(LatencyHistogramTest, PercentilesFromBucketBounds) {
  LatencyHistogram h;
  // 95 fast samples (1 ms) and 5 slow ones (1000 ms).
  for (int i = 0; i < 95; ++i) h.Record(1.0);
  for (int i = 0; i < 5; ++i) h.Record(1000.0);
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 100u);
  // 1 ms = 1000 us lands in the (512, 1024] us bucket: bound 1.024 ms.
  EXPECT_DOUBLE_EQ(s.p50_ms, 1.024);
  EXPECT_DOUBLE_EQ(s.p95_ms, 1.024);
  // 1000 ms lands in the (2^19, 2^20] us bucket: bound 1048.576 ms.
  EXPECT_DOUBLE_EQ(s.p99_ms, 1048.576);
  EXPECT_DOUBLE_EQ(s.max_ms, 1048.576);
  EXPECT_NEAR(s.mean_ms, (95.0 * 1.0 + 5.0 * 1000.0) / 100.0, 0.01);
}

TEST(LatencyHistogramTest, DegenerateSamplesLandInFirstBucket) {
  LatencyHistogram h;
  h.Record(0.0);
  h.Record(-5.0);
  h.Record(0.0005);  // 0.5 us: within the first bucket's (0, 1] us range
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.p50_ms, 0.001);
  EXPECT_DOUBLE_EQ(s.max_ms, 0.001);
}

TEST(LatencyHistogramTest, HugeSampleClampsToLastBucket) {
  LatencyHistogram h;
  h.Record(1e12);
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GT(s.max_ms, 0.0);
}

TEST(MetricsRegistryTest, InterningReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests.total");
  Counter& b = registry.counter("requests.total");
  EXPECT_EQ(&a, &b);
  LatencyHistogram& ha = registry.histogram("latency.ms");
  LatencyHistogram& hb = registry.histogram("latency.ms");
  EXPECT_EQ(&ha, &hb);
}

TEST(MetricsRegistryTest, ReportListsAllMetrics) {
  MetricsRegistry registry;
  registry.counter("zeta").Increment(7);
  registry.counter("alpha").Increment(3);
  registry.histogram("lat").Record(2.0);
  const std::string report = registry.Report();
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("zeta"), std::string::npos);
  EXPECT_NE(report.find("lat"), std::string::npos);
  EXPECT_NE(report.find("p99"), std::string::npos);
  // std::map ordering: counters come out sorted.
  EXPECT_LT(report.find("alpha"), report.find("zeta"));
}

TEST(MetricsRegistryTest, ConcurrentInterningAndRecording) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, t] {
      const std::string name = "metric." + std::to_string(t % 4);
      for (int i = 0; i < 1000; ++i) {
        registry.counter(name).Increment();
        registry.histogram("shared").Record(0.5);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  uint64_t total = 0;
  for (int m = 0; m < 4; ++m) {
    total += registry.counter("metric." + std::to_string(m)).value();
  }
  EXPECT_EQ(total, 8000u);
  EXPECT_EQ(registry.histogram("shared").TakeSnapshot().count, 8000u);
}

}  // namespace
}  // namespace wsk
