#include "service/metrics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

namespace wsk {
namespace {

TEST(CounterTest, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogramTest, EmptySnapshot) {
  LatencyHistogram h;
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50_ms, 0.0);
  EXPECT_EQ(s.p99_ms, 0.0);
  EXPECT_EQ(s.max_ms, 0.0);
}

TEST(LatencyHistogramTest, PercentilesFromBucketBounds) {
  LatencyHistogram h;
  // 95 fast samples (1 ms) and 5 slow ones (1000 ms).
  for (int i = 0; i < 95; ++i) h.Record(1.0);
  for (int i = 0; i < 5; ++i) h.Record(1000.0);
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 100u);
  // 1 ms = 1000 us lands in the (512, 1024] us bucket: bound 1.024 ms.
  EXPECT_DOUBLE_EQ(s.p50_ms, 1.024);
  EXPECT_DOUBLE_EQ(s.p95_ms, 1.024);
  // 1000 ms lands in the (2^19, 2^20] us bucket: bound 1048.576 ms.
  EXPECT_DOUBLE_EQ(s.p99_ms, 1048.576);
  // max is the exact observed sample, not the bucket bound.
  EXPECT_DOUBLE_EQ(s.max_ms, 1000.0);
  EXPECT_NEAR(s.mean_ms, (95.0 * 1.0 + 5.0 * 1000.0) / 100.0, 0.01);
}

TEST(LatencyHistogramTest, DegenerateSamplesLandInFirstBucket) {
  LatencyHistogram h;
  h.Record(0.0);
  h.Record(-5.0);
  h.Record(0.0005);  // 0.5 us: within the first bucket's (0, 1] us range
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.p50_ms, 0.001);
  // max preserves the sub-microsecond sample exactly (negatives clamp to 0).
  EXPECT_DOUBLE_EQ(s.max_ms, 0.0005);
}

TEST(LatencyHistogramTest, HugeSampleClampsToLastBucket) {
  LatencyHistogram h;
  h.Record(1e12);
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, 1u);
  // The bucket clamps but the observed max does not.
  EXPECT_DOUBLE_EQ(s.max_ms, 1e12);
}

TEST(LatencyHistogramTest, MaxIsExactUnderConcurrentRecording) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < 1000; ++i) {
        h.Record(static_cast<double>(t * 1000 + i) / 7.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto s = h.TakeSnapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * 1000);
  EXPECT_DOUBLE_EQ(s.max_ms, (kThreads * 1000 - 1) / 7.0);
}

TEST(LatencyHistogramTest, SnapshotExposesBucketCounts) {
  LatencyHistogram h;
  h.Record(0.001);  // 1 us: first bucket
  h.Record(1.0);    // 1000 us: bucket 10, bound 1.024 ms
  const auto s = h.TakeSnapshot();
  uint64_t total = 0;
  for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    total += s.bucket_counts[i];
  }
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(s.bucket_counts[0], 1u);
  EXPECT_DOUBLE_EQ(LatencyHistogram::BucketBoundMs(10), 1.024);
  EXPECT_EQ(s.bucket_counts[10], 1u);
}

TEST(MetricsRegistryTest, InterningReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests.total");
  Counter& b = registry.counter("requests.total");
  EXPECT_EQ(&a, &b);
  LatencyHistogram& ha = registry.histogram("latency.ms");
  LatencyHistogram& hb = registry.histogram("latency.ms");
  EXPECT_EQ(&ha, &hb);
}

TEST(MetricsRegistryTest, ReportListsAllMetrics) {
  MetricsRegistry registry;
  registry.counter("zeta").Increment(7);
  registry.counter("alpha").Increment(3);
  registry.histogram("lat").Record(2.0);
  const std::string report = registry.Report();
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("zeta"), std::string::npos);
  EXPECT_NE(report.find("lat"), std::string::npos);
  EXPECT_NE(report.find("p99"), std::string::npos);
  // std::map ordering: counters come out sorted.
  EXPECT_LT(report.find("alpha"), report.find("zeta"));
}

TEST(MetricsRegistryTest, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.counter("requests.total").Increment(42);
  registry.histogram("latency.whynot.ms").Record(2.0);
  registry.histogram("latency.whynot.ms").Record(8.0);
  const std::string text = registry.PrometheusText();

  EXPECT_NE(text.find("# TYPE wsk_requests_total_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("wsk_requests_total_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wsk_latency_whynot_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("wsk_latency_whynot_ms_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("wsk_latency_whynot_ms_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("wsk_latency_whynot_ms_sum 0.01\n"), std::string::npos);
  EXPECT_NE(text.find("wsk_latency_whynot_ms_max 0.008\n"),
            std::string::npos);

  // Bucket series are cumulative: counts never decrease as `le` grows.
  uint64_t prev = 0;
  size_t pos = 0;
  int buckets_seen = 0;
  while ((pos = text.find("_bucket{le=", pos)) != std::string::npos) {
    const size_t value_at = text.find("} ", pos) + 2;
    const uint64_t count = std::strtoull(text.c_str() + value_at, nullptr, 10);
    EXPECT_GE(count, prev);
    prev = count;
    pos = value_at;
    ++buckets_seen;
  }
  EXPECT_EQ(buckets_seen,
            static_cast<int>(LatencyHistogram::kNumBuckets) + 1);
  // Every non-comment line is `name[{labels}] value`.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* end = nullptr;
    std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << line;
  }
}

TEST(MetricsRegistryTest, ConcurrentInterningAndRecording) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry, t] {
      const std::string name = "metric." + std::to_string(t % 4);
      for (int i = 0; i < 1000; ++i) {
        registry.counter(name).Increment();
        registry.histogram("shared").Record(0.5);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  uint64_t total = 0;
  for (int m = 0; m < 4; ++m) {
    total += registry.counter("metric." + std::to_string(m)).value();
  }
  EXPECT_EQ(total, 8000u);
  EXPECT_EQ(registry.histogram("shared").TakeSnapshot().count, 8000u);
}

}  // namespace
}  // namespace wsk
