// Tests at the paper's index configuration: node capacity 100 over 4 KiB
// pages, which makes every tree node span TWO consecutive pages. Most unit
// tests use small capacities (single-page nodes); this file pins down the
// multi-page node slot path end to end.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "data/generator.h"
#include "index/verify.h"
#include "test_util.h"

namespace wsk {
namespace {

class PaperScaleConfigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_objects = 2500;  // several levels at fan-out 100
    config.vocab_size = 300;
    config.seed = 777;
    dataset_ = GenerateDataset(config);
    WhyNotEngine::Config engine_config;  // defaults = the paper's setup
    engine_ = WhyNotEngine::Build(&dataset_, engine_config).value();
  }

  Dataset dataset_;
  std::unique_ptr<WhyNotEngine> engine_;
};

TEST_F(PaperScaleConfigTest, NodesSpanTwoPages) {
  EXPECT_EQ(engine_->setr_tree().pages_per_node(), 2u);
  EXPECT_EQ(engine_->kcr_tree().pages_per_node(), 2u);
  EXPECT_GE(engine_->setr_tree().height(), 2u);
}

TEST_F(PaperScaleConfigTest, BothTreesVerifyClean) {
  VerifyStats stats;
  EXPECT_TRUE(VerifySetRTree(engine_->setr_tree(), &stats).ok());
  EXPECT_EQ(stats.objects_seen, dataset_.size());
  EXPECT_TRUE(VerifyKcrTree(engine_->kcr_tree(), &stats).ok());
  EXPECT_EQ(stats.objects_seen, dataset_.size());
}

TEST_F(PaperScaleConfigTest, TopKMatchesBruteForce) {
  Rng rng(1);
  for (int iter = 0; iter < 3; ++iter) {
    SpatialKeywordQuery q;
    q.loc = Point{rng.NextDouble(), rng.NextDouble()};
    q.doc = dataset_
                .object(static_cast<ObjectId>(rng.NextUint64(dataset_.size())))
                .doc;
    q.k = 25;
    q.alpha = 0.5;
    const auto expected = BruteForceTopK(dataset_, q);
    const auto actual = engine_->TopK(q).value();
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i].id);
    }
  }
}

TEST_F(PaperScaleConfigTest, WhyNotAlgorithmsAgreeWithBruteForce) {
  Rng rng(2);
  SpatialKeywordQuery q;
  q.loc = Point{rng.NextDouble(), rng.NextDouble()};
  q.doc = dataset_.object(42).doc;
  q.k = 10;
  q.alpha = 0.5;
  const ObjectId missing = engine_->ObjectAtPosition(q, 51).value();
  const auto reference =
      testing::SolveWhyNotBruteForce(dataset_, q, {missing}, 0.5);
  if (reference.already_in_result) GTEST_SKIP();
  WhyNotOptions options;
  for (WhyNotAlgorithm algorithm :
       {WhyNotAlgorithm::kAdvanced, WhyNotAlgorithm::kKcrBased}) {
    const WhyNotResult result =
        engine_->Answer(algorithm, q, {missing}, options).value();
    EXPECT_NEAR(result.refined.penalty, reference.refined.penalty, 1e-9)
        << WhyNotAlgorithmName(algorithm);
  }
}

TEST_F(PaperScaleConfigTest, TinyBufferStillCorrect) {
  // A buffer of only 16 frames forces constant eviction of two-page nodes;
  // results must not change.
  WhyNotEngine::Config config;
  config.buffer_bytes = 16 * 4096;
  auto tiny = WhyNotEngine::Build(&dataset_, config).value();
  SpatialKeywordQuery q;
  q.loc = Point{0.4, 0.4};
  q.doc = dataset_.object(7).doc;
  q.k = 20;
  q.alpha = 0.5;
  const auto expected = BruteForceTopK(dataset_, q);
  const auto actual = tiny->TopK(q).value();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id);
  }
}

}  // namespace
}  // namespace wsk
