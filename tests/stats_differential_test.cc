// Differential check of WhyNotStats against the brute-force oracle: the
// shared accounting fields must mean the same thing in all three
// algorithms, and every enumerated candidate must land in exactly one
// disposition bucket (the partition documented in core/whynot.h).
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/whynot.h"
#include "testing/oracle.h"
#include "testing/scenario_gen.h"

namespace wsk {
namespace {

constexpr WhyNotAlgorithm kAlgorithms[] = {
    WhyNotAlgorithm::kBasic,
    WhyNotAlgorithm::kAdvanced,
    WhyNotAlgorithm::kKcrBased,
};

class StatsDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StatsDifferentialTest, StatsAgreeWithOracleCounts) {
  const uint64_t seed = GetParam();
  std::optional<testing::WhyNotScenario> scenario =
      testing::MakeScenario(seed, testing::ScenarioOptions{});
  if (!scenario.has_value()) {
    GTEST_SKIP() << "seed " << seed << " yields no usable instance";
  }
  SCOPED_TRACE(scenario->Describe());

  const testing::OracleResult oracle = testing::SolveWhyNotOracle(
      scenario->dataset, scenario->query, scenario->missing,
      scenario->options.lambda);

  WhyNotEngine::Config config;
  config.node_capacity = 16;
  auto built = WhyNotEngine::Build(&scenario->dataset, config);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::unique_ptr<WhyNotEngine>& engine = built.value();

  for (WhyNotAlgorithm algorithm : kAlgorithms) {
    SCOPED_TRACE(WhyNotAlgorithmName(algorithm));
    auto got = engine->Answer(algorithm, scenario->query, scenario->missing,
                              scenario->options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    const WhyNotStats& stats = got.value().stats;

    EXPECT_EQ(stats.initial_rank, oracle.initial_rank);
    if (got.value().already_in_result) continue;

    // The candidate universe is fixed by (doc0, M): every algorithm
    // enumerates the same non-empty subsets of doc0 ∪ M.doc minus doc0
    // itself, which the oracle counts including doc0.
    EXPECT_EQ(stats.candidates_total, oracle.refinements_enumerated - 1);

    // The disposition partition is exact, not approximate.
    EXPECT_EQ(stats.candidates_total,
              stats.candidates_evaluated + stats.candidates_filtered +
                  stats.candidates_skipped_order +
                  stats.candidates_pruned_bounds);

    EXPECT_GT(stats.nodes_expanded, 0u);
  }

  // The unoptimized baseline evaluates every candidate: nothing may be
  // filtered, skipped, or bound-pruned when the optimizations are off.
  auto basic = engine->Answer(WhyNotAlgorithm::kBasic, scenario->query,
                              scenario->missing, scenario->options);
  ASSERT_TRUE(basic.ok()) << basic.status().ToString();
  if (!basic.value().already_in_result) {
    const WhyNotStats& stats = basic.value().stats;
    EXPECT_EQ(stats.candidates_evaluated, stats.candidates_total);
    EXPECT_EQ(stats.candidates_filtered, 0u);
    EXPECT_EQ(stats.candidates_skipped_order, 0u);
    EXPECT_EQ(stats.candidates_pruned_bounds, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsDifferentialTest,
                         ::testing::Range(uint64_t{300}, uint64_t{330}));

}  // namespace
}  // namespace wsk
