// Batched-vs-solo differential suite (docs/BATCHING.md): for 120 seeded
// scenarios, a pool of derived queries runs through QueryBackend::TopKBatch
// at batch sizes {2, 4, 8} on all three backends — frozen WhyNotEngine,
// live SegmentedEngine (with mutations applied so delta segments and
// tombstones participate), and a 3-shard ShardCoordinator — and every
// slot is compared bit for bit (ids and score doubles) against the same
// backend's solo TopK. A second pass injects a pre-cancelled token and an
// expired deadline mid-batch and checks the failed slots' statuses while
// the surviving slots stay bit-exact.
//
// Sharded like differential_oracle_test via GTEST_TOTAL_SHARDS (see
// tests/CMakeLists.txt). Failures print the scenario seed.
#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "core/engine.h"
#include "data/query.h"
#include "segment/segmented_engine.h"
#include "shard/shard_coordinator.h"
#include "testing/scenario_gen.h"

namespace wsk {
namespace {

constexpr uint64_t kFirstSeed = 1;
constexpr uint64_t kLastSeed = 120;  // inclusive
constexpr size_t kBatchSizes[] = {2, 4, 8};

void ExpectBitIdentical(const std::vector<ScoredObject>& got,
                        const std::vector<ScoredObject>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "position " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "position " << i;
  }
}

// Eight derived queries spanning k, alpha, location, doc, and similarity
// model — deterministic functions of the scenario query.
std::vector<SpatialKeywordQuery> DeriveQueries(
    const testing::WhyNotScenario& scenario) {
  const SpatialKeywordQuery& base = scenario.query;
  std::vector<SpatialKeywordQuery> queries(8, base);
  queries[1].k = 1;
  queries[2].k = base.k + 5;
  queries[3].alpha = 0.3;
  queries[4].alpha = 0.7;
  queries[5].loc = Point{base.loc.x * 0.9 + 0.05, base.loc.y * 0.9 + 0.02};
  if (base.doc.size() > 2) {
    std::vector<TermId> head(base.doc.begin(), base.doc.end());
    head.resize(2);
    queries[6].doc = KeywordSet(std::move(head));
  } else {
    queries[6].k = base.k + 1;
  }
  queries[7].model = SimilarityModel::kDice;  // mixed-model batches
  return queries;
}

// Solo-vs-batched differential over one backend.
void RunDifferential(const QueryBackend& backend,
                     const std::vector<SpatialKeywordQuery>& queries) {
  std::vector<std::vector<ScoredObject>> solo;
  for (const SpatialKeywordQuery& q : queries) {
    StatusOr<std::vector<ScoredObject>> got = backend.TopK(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    solo.push_back(std::move(got).value());
  }
  for (size_t batch_size : kBatchSizes) {
    SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
    for (size_t start = 0; start < queries.size(); start += batch_size) {
      const size_t end = std::min(start + batch_size, queries.size());
      std::vector<BackendBatchItem> items;
      for (size_t i = start; i < end; ++i) {
        items.push_back(BackendBatchItem{&queries[i], nullptr});
      }
      std::vector<BackendBatchResult> batched = backend.TopKBatch(items);
      ASSERT_EQ(batched.size(), items.size());
      for (size_t i = start; i < end; ++i) {
        SCOPED_TRACE("query=" + std::to_string(i));
        ASSERT_TRUE(batched[i - start].status.ok())
            << batched[i - start].status.ToString();
        ExpectBitIdentical(batched[i - start].topk, solo[i]);
      }
    }
  }
}

// A batch where slot 1 is pre-cancelled and slot 2 carries an expired
// deadline: the two failed slots report their own status, the rest stay
// bit-identical to solo.
void RunCancellationDifferential(
    const QueryBackend& backend,
    const std::vector<SpatialKeywordQuery>& queries) {
  ASSERT_GE(queries.size(), 4u);
  CancelToken cancelled = CancelToken::Create();
  cancelled.Cancel();
  CancelToken expired = CancelToken::WithTimeout(0.0001);
  while (expired.Check().ok()) {
  }
  std::vector<BackendBatchItem> items = {
      BackendBatchItem{&queries[0], nullptr},
      BackendBatchItem{&queries[1], &cancelled},
      BackendBatchItem{&queries[2], &expired},
      BackendBatchItem{&queries[3], nullptr},
  };
  std::vector<BackendBatchResult> batched = backend.TopKBatch(items);
  ASSERT_EQ(batched.size(), 4u);
  EXPECT_EQ(batched[1].status.code(), StatusCode::kCancelled);
  EXPECT_EQ(batched[2].status.code(), StatusCode::kDeadlineExceeded);
  for (size_t i : {0u, 3u}) {
    SCOPED_TRACE("slot=" + std::to_string(i));
    ASSERT_TRUE(batched[i].status.ok()) << batched[i].status.ToString();
    StatusOr<std::vector<ScoredObject>> solo = backend.TopK(queries[i]);
    ASSERT_TRUE(solo.ok());
    ExpectBitIdentical(batched[i].topk, solo.value());
  }
}

class BatchDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchDifferentialTest, FrozenEngineBatchedMatchesSolo) {
  const uint64_t seed = GetParam();
  std::optional<testing::WhyNotScenario> scenario =
      testing::MakeScenario(seed, testing::ScenarioOptions{});
  if (!scenario.has_value()) {
    GTEST_SKIP() << "seed " << seed << " yields no usable instance";
  }
  SCOPED_TRACE(scenario->Describe());

  WhyNotEngine::Config config;
  config.node_capacity = 16;
  StatusOr<std::unique_ptr<WhyNotEngine>> engine =
      WhyNotEngine::Build(&scenario->dataset, config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const std::vector<SpatialKeywordQuery> queries = DeriveQueries(*scenario);
  RunDifferential(*engine.value(), queries);
  RunCancellationDifferential(*engine.value(), queries);
}

TEST_P(BatchDifferentialTest, LiveEngineBatchedMatchesSolo) {
  const uint64_t seed = GetParam();
  std::optional<testing::WhyNotScenario> scenario =
      testing::MakeScenario(seed, testing::ScenarioOptions{});
  if (!scenario.has_value()) {
    GTEST_SKIP() << "seed " << seed << " yields no usable instance";
  }
  SCOPED_TRACE(scenario->Describe());

  SegmentedEngine::Config config;
  config.node_capacity = 16;
  config.delta_capacity = 8;
  config.auto_merge = false;
  StatusOr<std::unique_ptr<SegmentedEngine>> engine =
      SegmentedEngine::Build(scenario->dataset, config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Mutations so the batch walks frozen pages, delta segments, and
  // tombstoned visibility at once: delete two seeded objects, re-insert
  // keyword sets sampled from the corpus at fresh locations.
  const Dataset& data = scenario->dataset;
  ASSERT_TRUE(engine.value()->Delete(0).ok());
  ASSERT_TRUE(engine.value()->Delete(data.size() / 2).ok());
  for (size_t i = 0; i < 3; ++i) {
    const SpatialObject& donor = data.object((i * 7 + 1) % data.size());
    std::vector<std::string> keywords;
    for (TermId t : donor.doc) {
      keywords.push_back(data.vocabulary().TermString(t));
    }
    const double frac = 0.2 + 0.2 * static_cast<double>(i);
    ASSERT_TRUE(
        engine.value()->Insert(Point{frac, 1.0 - frac}, keywords).ok());
  }

  const std::vector<SpatialKeywordQuery> queries = DeriveQueries(*scenario);
  RunDifferential(*engine.value(), queries);
  RunCancellationDifferential(*engine.value(), queries);
}

TEST_P(BatchDifferentialTest, ShardedBatchedMatchesSolo) {
  const uint64_t seed = GetParam();
  std::optional<testing::WhyNotScenario> scenario =
      testing::MakeScenario(seed, testing::ScenarioOptions{});
  if (!scenario.has_value()) {
    GTEST_SKIP() << "seed " << seed << " yields no usable instance";
  }
  SCOPED_TRACE(scenario->Describe());

  ShardCoordinator::Config config;
  config.num_shards = 3;
  config.node_capacity = 16;
  StatusOr<std::unique_ptr<ShardCoordinator>> coordinator =
      ShardCoordinator::Build(scenario->dataset, config);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();

  const std::vector<SpatialKeywordQuery> queries = DeriveQueries(*scenario);
  RunDifferential(*coordinator.value(), queries);
  RunCancellationDifferential(*coordinator.value(), queries);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDifferentialTest,
                         ::testing::Range<uint64_t>(kFirstSeed, kLastSeed + 1));

}  // namespace
}  // namespace wsk
