#include "index/topk.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "index/setr_tree.h"
#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

class TopKTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_objects = 250;
    config.vocab_size = 30;
    config.seed = 404;
    dataset_ = GenerateDataset(config);
    file_ = std::make_unique<TempFile>("topk");
    pager_ = Pager::Create(file_->path()).value();
    pool_ = std::make_unique<BufferPool>(pager_.get(), 4u << 20);
    SetRTree::Options options;
    options.capacity = 8;
    tree_ = SetRTree::BulkLoad(dataset_, pool_.get(), options).value();
  }

  SpatialKeywordQuery Query() const {
    SpatialKeywordQuery q;
    q.loc = Point{0.5, 0.5};
    q.doc = dataset_.object(0).doc;
    q.k = 10;
    q.alpha = 0.5;
    return q;
  }

  Dataset dataset_;
  std::unique_ptr<TempFile> file_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<SetRTree> tree_;
};

TEST_F(TopKTest, StreamsInNonIncreasingScoreOrder) {
  TopKIterator it(tree_.get(), Query());
  std::optional<ScoredObject> next;
  double prev = std::numeric_limits<double>::infinity();
  size_t count = 0;
  for (;;) {
    ASSERT_TRUE(it.Next(&next).ok());
    if (!next) break;
    EXPECT_LE(next->score, prev + 1e-12);
    prev = next->score;
    ++count;
  }
  EXPECT_EQ(count, dataset_.size());
  EXPECT_EQ(it.num_emitted(), dataset_.size());
}

TEST_F(TopKTest, StreamExhaustsThenStaysEmpty) {
  TopKIterator it(tree_.get(), Query());
  std::optional<ScoredObject> next;
  for (size_t i = 0; i < dataset_.size(); ++i) {
    ASSERT_TRUE(it.Next(&next).ok());
    ASSERT_TRUE(next.has_value());
  }
  ASSERT_TRUE(it.Next(&next).ok());
  EXPECT_FALSE(next.has_value());
  ASSERT_TRUE(it.Next(&next).ok());
  EXPECT_FALSE(next.has_value());
}

TEST_F(TopKTest, EmitsEveryObjectExactlyOnce) {
  TopKIterator it(tree_.get(), Query());
  std::vector<bool> seen(dataset_.size(), false);
  std::optional<ScoredObject> next;
  for (;;) {
    ASSERT_TRUE(it.Next(&next).ok());
    if (!next) break;
    EXPECT_FALSE(seen[next->id]) << "object emitted twice: " << next->id;
    seen[next->id] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST_F(TopKTest, TieBreakById) {
  // Duplicate objects produce equal scores; the stream must order them by
  // ascending id.
  Dataset d;
  for (int i = 0; i < 5; ++i) d.Add(Point{0.5, 0.5}, KeywordSet{1});
  d.Add(Point{0.9, 0.9}, KeywordSet{2});
  TempFile file("topk_ties");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 1u << 20);
  SetRTree::Options options;
  options.capacity = 4;
  auto tree = SetRTree::BulkLoad(d, &pool, options).value();
  SpatialKeywordQuery q;
  q.loc = Point{0.5, 0.5};
  q.doc = KeywordSet{1};
  q.k = 5;
  q.alpha = 0.5;
  const auto top = IndexTopK(*tree, q).value();
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(top[i].id, i);
}

TEST_F(TopKTest, IndexRankOfScoreMatchesBruteForce) {
  const SpatialKeywordQuery q = Query();
  for (ObjectId id : std::vector<ObjectId>{0, 17, 101, 249}) {
    const double score = Score(dataset_.object(id), q, dataset_.diagonal());
    bool exceeded = false;
    const uint32_t rank =
        IndexRankOfScore(*tree_, q, score, 0, &exceeded).value();
    EXPECT_FALSE(exceeded);
    EXPECT_EQ(rank, BruteForceRank(dataset_, q, id));
  }
}

TEST_F(TopKTest, IndexRankOfScoreGivesUpAtLimit) {
  const SpatialKeywordQuery q = Query();
  // Worst-ranked object: use a score below everything.
  bool exceeded = false;
  const uint32_t rank =
      IndexRankOfScore(*tree_, q, -1.0, 10, &exceeded).value();
  EXPECT_TRUE(exceeded);
  EXPECT_EQ(rank, 11u);
}

TEST_F(TopKTest, IoErrorsPropagate) {
  ASSERT_TRUE(pool_->InvalidateAll().ok());
  pager_->set_read_fault_hook(
      [](PageId) { return Status::IoError("injected"); });
  TopKIterator it(tree_.get(), Query());
  std::optional<ScoredObject> next;
  const Status s = it.Next(&next);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  pager_->set_read_fault_hook(nullptr);
}

}  // namespace
}  // namespace wsk
