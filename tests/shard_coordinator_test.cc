// ShardCoordinator unit tests (docs/SHARDING.md): deterministic STR
// tiling, sound per-shard Theorem 1 bounds, cross-shard pruning on
// clustered data, routed mutations with coordinator-allocated ids, the
// version vector / topology fingerprint the result cache keys off, and
// the shard-scoped cache validation predicate. Bit-exactness against the
// unsharded engine at scale lives in shard_differential_test.
#include "shard/shard_coordinator.h"

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/generator.h"
#include "data/query.h"
#include "shard/shard_partition.h"
#include "shard/shard_summary.h"

namespace wsk {
namespace {

Dataset ClusteredDataset(uint32_t num_objects = 400) {
  GeneratorConfig config;
  config.num_objects = num_objects;
  config.vocab_size = 60;
  config.num_clusters = 4;
  config.cluster_stddev = 0.01;
  config.uniform_fraction = 0.0;
  config.seed = 90210;
  return GenerateDataset(config);
}

// Two well-separated clusters with disjoint vocabularies, `per_cluster`
// objects each: cluster A near (0.1, 0.1) tagged coffee/wifi, cluster B
// near (0.9, 0.9) tagged museum/art. With two shards the STR split puts
// each cluster in its own tile.
Dataset TwoClusterDataset(int per_cluster = 8) {
  Dataset dataset;
  for (int i = 0; i < per_cluster; ++i) {
    const double off = 0.002 * i;
    dataset.Add(Point{0.1 + off, 0.1 + off},
                std::vector<std::string>{"coffee", "wifi",
                                         "a" + std::to_string(i % 4)});
  }
  for (int i = 0; i < per_cluster; ++i) {
    const double off = 0.002 * i;
    dataset.Add(Point{0.9 - off, 0.9 - off},
                std::vector<std::string>{"museum", "art",
                                         "b" + std::to_string(i % 4)});
  }
  return dataset;
}

SpatialKeywordQuery QueryAt(Dataset& dataset, Point loc,
                            const std::vector<std::string>& keywords,
                            uint32_t k = 3) {
  SpatialKeywordQuery q;
  q.loc = loc;
  q.doc = dataset.vocabulary().InternAll(keywords);
  q.k = k;
  q.alpha = 0.5;
  return q;
}

TEST(ShardPartitionTest, DeterministicAndCoversEveryObjectOnce) {
  const Dataset seed = ClusteredDataset();
  for (uint32_t num_shards : {1u, 2u, 3u, 5u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    const ShardPartition a = PartitionDataset(seed, num_shards);
    const ShardPartition b = PartitionDataset(seed, num_shards);
    ASSERT_EQ(a.tiles.size(), b.tiles.size());
    ASSERT_LE(a.tiles.size(), num_shards);

    std::set<ObjectId> seen;
    for (size_t t = 0; t < a.tiles.size(); ++t) {
      ASSERT_EQ(a.tiles[t].size(), b.tiles[t].size());
      EXPECT_EQ(a.tiles[t].diagonal(), seed.diagonal());
      ObjectId previous = 0;
      for (size_t i = 0; i < a.tiles[t].objects().size(); ++i) {
        const SpatialObject& o = a.tiles[t].objects()[i];
        EXPECT_EQ(o.id, b.tiles[t].objects()[i].id);  // deterministic
        EXPECT_TRUE(seen.insert(o.id).second) << "duplicate id " << o.id;
        if (i > 0) EXPECT_GT(o.id, previous);  // ascending ids in a tile
        previous = o.id;
        // The tile preserves the object verbatim under its original id.
        const SpatialObject& original = seed.object(o.id);
        EXPECT_EQ(o.loc.x, original.loc.x);
        EXPECT_TRUE(o.doc == original.doc);
      }
    }
    EXPECT_EQ(seen.size(), seed.size());
  }
}

TEST(ShardPartitionTest, EmptyDatasetYieldsOneEmptyTile) {
  Dataset empty;
  const ShardPartition partition = PartitionDataset(empty, 4);
  ASSERT_EQ(partition.tiles.size(), 1u);
  EXPECT_EQ(partition.tiles[0].size(), 0u);
}

TEST(ShardSummaryTest, UpperBoundDominatesEveryObjectScore) {
  Dataset seed = ClusteredDataset();
  const ShardPartition partition = PartitionDataset(seed, 4);
  const SpatialKeywordQuery query = QueryAt(
      seed, seed.objects()[3].loc,
      {seed.vocabulary().TermString(*seed.objects()[3].doc.begin())});

  for (const Dataset& tile : partition.tiles) {
    ShardSummary summary;
    for (const SpatialObject& o : tile.objects()) {
      AbsorbObject(&summary, o.loc, o.doc);
    }
    const double bound = ShardUpperBound(summary, query, seed.diagonal());
    // Theorem 1: no object in the tile may outscore its shard's bound.
    const std::vector<ScoredObject> best = BruteForceTopK(tile, query);
    if (!best.empty()) {
      EXPECT_GE(bound, best[0].score) << "bound not an upper bound";
    }
  }
}

TEST(ShardCoordinatorTest, ClusteredQueriesPruneShardsAndMatchSingleEngine) {
  Dataset seed = ClusteredDataset();
  ShardCoordinator::Config config;
  config.num_shards = 4;
  config.node_capacity = 16;
  auto coordinator = ShardCoordinator::Build(seed, config).value();
  ASSERT_EQ(coordinator->num_shards(), 4u);

  WhyNotEngine::Config single_config;
  single_config.node_capacity = 16;
  auto single = WhyNotEngine::Build(&seed, single_config).value();

  // Queries anchored at objects, distance-dominant (high alpha): the
  // keyword half of a shard's bound saturates (a whole tile's keyword
  // union nearly always covers the query terms), so it is the spatial
  // term that pushes far tiles below the kth score.
  for (int i = 0; i < 16; ++i) {
    const SpatialObject& anchor = seed.objects()[i * 7];
    SpatialKeywordQuery q;
    q.loc = anchor.loc;
    q.doc = anchor.doc;
    q.k = 5;
    q.alpha = 0.9;
    const auto sharded = coordinator->TopK(q);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    const auto reference = single->TopK(q);
    ASSERT_TRUE(reference.ok());
    ASSERT_EQ(sharded.value().size(), reference.value().size());
    for (size_t p = 0; p < sharded.value().size(); ++p) {
      EXPECT_EQ(sharded.value()[p].id, reference.value()[p].id);
      EXPECT_EQ(sharded.value()[p].score, reference.value()[p].score);
    }
  }

  const ShardCountersSnapshot counters = coordinator->shard_counters();
  ASSERT_TRUE(counters.valid);
  EXPECT_EQ(counters.num_shards, 4u);
  EXPECT_EQ(counters.queries, 16u);
  EXPECT_GT(counters.shards_pruned, 0u) << "bound never pruned a shard";
  EXPECT_GT(counters.shards_visited, 0u);
  EXPECT_EQ(counters.per_shard_visited.size(), 4u);
  uint64_t per_shard_total = 0;
  for (uint64_t v : counters.per_shard_visited) per_shard_total += v;
  EXPECT_EQ(per_shard_total, counters.shards_visited);
}

TEST(ShardCoordinatorTest, FrozenCoordinatorRejectsMutations) {
  Dataset seed = TwoClusterDataset();
  ShardCoordinator::Config config;
  config.num_shards = 2;
  auto coordinator = ShardCoordinator::Build(seed, config).value();
  EXPECT_FALSE(coordinator->live());
  EXPECT_EQ(coordinator->Insert(Point{0.5, 0.5}, {"x"}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(coordinator->Update(0, Point{0.5, 0.5}, {"x"}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(coordinator->Delete(0).code(), StatusCode::kFailedPrecondition);
}

TEST(ShardCoordinatorTest, RoutedMutationsTrackOwnershipAndVersions) {
  Dataset seed = TwoClusterDataset();
  ShardCoordinator::Config config;
  config.num_shards = 2;
  config.live = true;
  config.node_capacity = 16;
  config.delta_capacity = 64;
  config.auto_merge = false;
  auto coordinator = ShardCoordinator::Build(seed, config).value();
  ASSERT_EQ(coordinator->num_shards(), 2u);
  ASSERT_TRUE(coordinator->live());

  const std::vector<uint64_t> v0 = coordinator->version_vector();
  ASSERT_EQ(v0.size(), 2u);

  // An insert deep inside cluster B routes to B's shard; ids continue the
  // seed's sequence exactly as an unsharded engine would assign them.
  const auto inserted =
      coordinator->Insert(Point{0.9, 0.9}, {"museum", "art"});
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_EQ(inserted.value(), static_cast<ObjectId>(seed.size()));
  const int owner = coordinator->OwnerShard(inserted.value());
  ASSERT_GE(owner, 0);

  // Exactly one shard's version moved.
  const std::vector<uint64_t> v1 = coordinator->version_vector();
  int changed = 0;
  for (size_t i = 0; i < v1.size(); ++i) changed += (v1[i] != v0[i]) ? 1 : 0;
  EXPECT_EQ(changed, 1);
  EXPECT_NE(v1[static_cast<size_t>(owner)], v0[static_cast<size_t>(owner)]);

  // The new object is queryable through the coordinator: a perfect-score
  // match at its own location.
  const SpatialKeywordQuery q =
      QueryAt(seed, Point{0.9, 0.9}, {"museum", "art"});
  const auto topk = coordinator->TopK(q);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  ASSERT_FALSE(topk.value().empty());
  EXPECT_EQ(topk.value()[0].id, inserted.value());

  // Update and delete route to the owner; a deleted id loses its owner.
  ASSERT_TRUE(
      coordinator->Update(inserted.value(), Point{0.85, 0.85}, {"museum"})
          .ok());
  EXPECT_EQ(coordinator->OwnerShard(inserted.value()), owner);
  ASSERT_TRUE(coordinator->Delete(inserted.value()).ok());
  EXPECT_EQ(coordinator->OwnerShard(inserted.value()), -1);
  EXPECT_EQ(coordinator->Delete(inserted.value()).code(),
            StatusCode::kNotFound);

  const ShardCountersSnapshot counters = coordinator->shard_counters();
  ASSERT_TRUE(counters.valid);
  uint64_t mutations = 0;
  for (uint64_t m : counters.per_shard_mutations) mutations += m;
  EXPECT_EQ(mutations, 3u);
}

TEST(ShardCoordinatorTest, TopologyFingerprintReflectsTileLayout) {
  Dataset seed = ClusteredDataset();
  ShardCoordinator::Config two;
  two.num_shards = 2;
  ShardCoordinator::Config four;
  four.num_shards = 4;
  auto a = ShardCoordinator::Build(seed, two).value();
  auto b = ShardCoordinator::Build(seed, two).value();
  auto c = ShardCoordinator::Build(seed, four).value();
  EXPECT_NE(a->topology_fingerprint(), 0u);  // 0 is the unsharded sentinel
  EXPECT_EQ(a->topology_fingerprint(), b->topology_fingerprint());
  EXPECT_NE(a->topology_fingerprint(), c->topology_fingerprint());

  // Unsharded backends keep the legacy constant-0 fingerprint.
  auto single = WhyNotEngine::Build(&seed, {}).value();
  EXPECT_EQ(single->topology_fingerprint(), 0u);
}

// The predicate the result cache keys off: a mutation in a provably
// irrelevant shard keeps a cached top-k valid; a mutation in the answering
// shard invalidates it.
TEST(ShardCoordinatorTest, TopKCacheValidIsShardScoped) {
  Dataset seed = TwoClusterDataset();
  ShardCoordinator::Config config;
  config.num_shards = 2;
  config.live = true;
  config.node_capacity = 16;
  config.auto_merge = false;
  auto coordinator = ShardCoordinator::Build(seed, config).value();
  ASSERT_EQ(coordinator->num_shards(), 2u);

  const SpatialKeywordQuery query_a =
      QueryAt(seed, Point{0.1, 0.1}, {"coffee", "wifi"});
  const auto results_a = coordinator->TopK(query_a).value();
  ASSERT_GE(results_a.size(), query_a.k);
  const std::vector<uint64_t> versions = coordinator->version_vector();
  EXPECT_TRUE(coordinator->TopKCacheValid(versions, query_a, results_a));

  // Mutate cluster B's shard: far away, keyword-disjoint — its bound for
  // query A stays below the cached kth score, so A's entry survives.
  ASSERT_TRUE(coordinator->Insert(Point{0.9, 0.9}, {"museum", "art"}).ok());
  EXPECT_TRUE(coordinator->TopKCacheValid(versions, query_a, results_a));

  // Mutate cluster A's shard: the changed shard owns the cached results.
  const std::vector<uint64_t> fresh = coordinator->version_vector();
  ASSERT_TRUE(coordinator->Insert(Point{0.1, 0.1}, {"coffee", "wifi"}).ok());
  EXPECT_FALSE(coordinator->TopKCacheValid(fresh, query_a, results_a));

  // Why-not entries demand exact version equality.
  EXPECT_FALSE(coordinator->WhyNotCacheValid(fresh));
  EXPECT_TRUE(coordinator->WhyNotCacheValid(coordinator->version_vector()));
}

TEST(ShardCoordinatorTest, DatasetVersionSumsShardsAndIoAggregates) {
  Dataset seed = TwoClusterDataset();
  ShardCoordinator::Config config;
  config.num_shards = 2;
  config.live = true;
  config.auto_merge = false;
  auto coordinator = ShardCoordinator::Build(seed, config).value();
  const uint64_t v0 = coordinator->dataset_version();
  ASSERT_TRUE(coordinator->Insert(Point{0.1, 0.1}, {"coffee"}).ok());
  ASSERT_TRUE(coordinator->Insert(Point{0.9, 0.9}, {"art"}).ok());
  EXPECT_EQ(coordinator->dataset_version(), v0 + 2);

  SpatialKeywordQuery q = QueryAt(seed, Point{0.5, 0.5}, {"coffee"});
  q.k = 2;
  ASSERT_TRUE(coordinator->TopK(q).ok());
  const BackendIoSnapshot io = coordinator->io_snapshot();
  EXPECT_GT(io.setr_logical, 0u);  // per-shard reads aggregate coherently
}

}  // namespace
}  // namespace wsk
