#include "text/similarity.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace wsk {
namespace {

TEST(SimilarityTest, JaccardBasics) {
  const KeywordSet a{1, 2, 3};
  const KeywordSet b{2, 3, 4};
  EXPECT_DOUBLE_EQ(TextualSimilarity(a, b), 0.5);
  EXPECT_DOUBLE_EQ(TextualSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(TextualSimilarity(a, KeywordSet{9}), 0.0);
  EXPECT_DOUBLE_EQ(TextualSimilarity(KeywordSet(), KeywordSet()), 0.0);
}

TEST(SimilarityTest, PaperExampleValues) {
  // Fig. 1(b): TSim against doc0 = {t1, t2}.
  const KeywordSet doc0{1, 2};
  EXPECT_NEAR(TextualSimilarity(KeywordSet{1, 2, 3}, doc0), 0.66, 0.01);
  EXPECT_DOUBLE_EQ(TextualSimilarity(KeywordSet{1}, doc0), 0.5);
  EXPECT_NEAR(TextualSimilarity(KeywordSet{1, 3}, doc0), 0.33, 0.01);
  EXPECT_DOUBLE_EQ(TextualSimilarity(KeywordSet{1, 2}, doc0), 1.0);
}

TEST(SimilarityTest, DiceBasics) {
  const KeywordSet a{1, 2, 3};
  const KeywordSet b{2, 3, 4};
  EXPECT_DOUBLE_EQ(TextualSimilarity(a, b, SimilarityModel::kDice), 4.0 / 6);
  EXPECT_DOUBLE_EQ(TextualSimilarity(a, a, SimilarityModel::kDice), 1.0);
}

TEST(SimilarityTest, OverlapBasics) {
  const KeywordSet a{1, 2, 3};
  const KeywordSet b{2, 3};
  EXPECT_DOUBLE_EQ(TextualSimilarity(a, b, SimilarityModel::kOverlap), 1.0);
  EXPECT_DOUBLE_EQ(TextualSimilarity(a, KeywordSet{3, 9},
                                     SimilarityModel::kOverlap),
                   0.5);
}

TEST(SimilarityTest, ModelNames) {
  EXPECT_STREQ(SimilarityModelName(SimilarityModel::kJaccard), "jaccard");
  EXPECT_STREQ(SimilarityModelName(SimilarityModel::kDice), "dice");
  EXPECT_STREQ(SimilarityModelName(SimilarityModel::kOverlap), "overlap");
}

// Property: the Theorem 1 node bound dominates the exact similarity of any
// "object" set sandwiched between a random intersection and union set.
class NodeBoundProperty
    : public ::testing::TestWithParam<SimilarityModel> {};

TEST_P(NodeBoundProperty, BoundsSandwichedObjects) {
  const SimilarityModel model = GetParam();
  Rng rng(123);
  for (int iter = 0; iter < 300; ++iter) {
    // Build inter ⊆ object ⊆ union over a small universe.
    std::vector<TermId> inter_v, object_v, union_v, query_v;
    for (TermId t = 0; t < 14; ++t) {
      const double roll = rng.NextDouble();
      if (roll < 0.2) {
        inter_v.push_back(t);
        object_v.push_back(t);
        union_v.push_back(t);
      } else if (roll < 0.45) {
        object_v.push_back(t);
        union_v.push_back(t);
      } else if (roll < 0.7) {
        union_v.push_back(t);
      }
      if (rng.NextBool(0.4)) query_v.push_back(t);
    }
    if (object_v.empty() || query_v.empty()) continue;
    const KeywordSet inter(std::move(inter_v));
    const KeywordSet object(std::move(object_v));
    const KeywordSet uni(std::move(union_v));
    const KeywordSet query(std::move(query_v));

    const double exact = TextualSimilarity(object, query, model);
    const double bound = NodeSimilarityUpperBound(
        uni.IntersectionSize(query), inter.UnionSize(query), inter.size(),
        query.size(), model);
    EXPECT_GE(bound + 1e-12, exact)
        << "model=" << SimilarityModelName(model)
        << " object=" << object.ToString() << " query=" << query.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, NodeBoundProperty,
                         ::testing::Values(SimilarityModel::kJaccard,
                                           SimilarityModel::kDice,
                                           SimilarityModel::kOverlap));

// Regression: the Dice and Overlap node bounds used to exceed 1.0 when the
// node's union set intersected the query in more terms than the raw
// denominator — e.g. Overlap with |N_u ∩ q| = 4, |N_i| = 1, |q| = 4 gave
// 4/1 = 4.0. Similarity is capped at 1, so a bound above 1 is pure slack
// (and breaks callers that treat bounds as similarities, e.g. score
// composition against 1 - sdist). All models must stay within [0, 1].
TEST(NodeSimilarityUpperBoundTest, NeverExceedsOne) {
  for (size_t union_inter_query = 0; union_inter_query <= 12;
       ++union_inter_query) {
    for (size_t inter_union_query = 1; inter_union_query <= 12;
         ++inter_union_query) {
      for (size_t inter_size = 0; inter_size <= 6; ++inter_size) {
        for (size_t query_size = 0; query_size <= 6; ++query_size) {
          for (const SimilarityModel model :
               {SimilarityModel::kJaccard, SimilarityModel::kDice,
                SimilarityModel::kOverlap}) {
            const double bound = NodeSimilarityUpperBound(
                union_inter_query, inter_union_query, inter_size, query_size,
                model);
            EXPECT_GE(bound, 0.0);
            EXPECT_LE(bound, 1.0)
                << SimilarityModelName(model) << " u∩q=" << union_inter_query
                << " i∪q=" << inter_union_query << " |i|=" << inter_size
                << " |q|=" << query_size;
          }
        }
      }
    }
  }
  // The concrete case from the bug report: Overlap bound 4/1 before the fix.
  EXPECT_EQ(NodeSimilarityUpperBound(4, 5, 1, 4, SimilarityModel::kOverlap),
            1.0);
}

}  // namespace
}  // namespace wsk
