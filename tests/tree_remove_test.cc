// Deletion tests for both trees: remove objects, check NotFound behaviour,
// structural invariants (via the verifier), and that queries over the
// survivors match brute force on the reduced dataset.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "index/topk.h"
#include "index/verify.h"
#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

Dataset SmallDataset(uint32_t n, uint64_t seed) {
  GeneratorConfig config;
  config.num_objects = n;
  config.vocab_size = 30;
  config.seed = seed;
  return GenerateDataset(config);
}

// Brute-force reference over a subset of surviving object ids.
std::vector<ScoredObject> SurvivorTopK(const Dataset& dataset,
                                       const std::vector<bool>& removed,
                                       const SpatialKeywordQuery& query) {
  std::vector<ScoredObject> scored;
  for (const SpatialObject& o : dataset.objects()) {
    if (removed[o.id]) continue;
    scored.push_back(
        ScoredObject{o.id, Score(o, query, dataset.diagonal())});
  }
  std::sort(scored.begin(), scored.end(), ScoreGreater());
  if (scored.size() > query.k) scored.resize(query.k);
  return scored;
}

TEST(SetRTreeRemoveTest, RemoveHalfThenQuery) {
  const Dataset dataset = SmallDataset(200, 1);
  TempFile file("rm_setr");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  SetRTree::Options options;
  options.capacity = 8;
  auto tree = SetRTree::BulkLoad(dataset, &pool, options).value();

  Rng rng(7);
  std::vector<bool> removed(dataset.size(), false);
  for (int i = 0; i < 100; ++i) {
    ObjectId victim;
    do {
      victim = static_cast<ObjectId>(rng.NextUint64(dataset.size()));
    } while (removed[victim]);
    ASSERT_TRUE(tree->Remove(victim, dataset.object(victim).loc).ok());
    removed[victim] = true;
  }
  EXPECT_EQ(tree->num_objects(), dataset.size() - 100);
  EXPECT_TRUE(VerifySetRTree(*tree).ok());

  SpatialKeywordQuery q;
  q.loc = Point{0.4, 0.6};
  q.doc = dataset.object(3).doc;
  q.k = 20;
  q.alpha = 0.5;
  const auto expected = SurvivorTopK(dataset, removed, q);
  const auto actual = IndexTopK(*tree, q).value();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id) << "position " << i;
  }
}

TEST(SetRTreeRemoveTest, RemoveMissingObjectIsNotFound) {
  const Dataset dataset = SmallDataset(50, 2);
  TempFile file("rm_setr_nf");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  SetRTree::Options options;
  options.capacity = 8;
  auto tree = SetRTree::BulkLoad(dataset, &pool, options).value();
  // Unknown id at a real location.
  EXPECT_EQ(tree->Remove(9999, dataset.object(0).loc).code(),
            StatusCode::kNotFound);
  // Known id at the wrong location (descent cannot reach it).
  const Point far{dataset.object(0).loc.x + 10.0, 0.0};
  EXPECT_EQ(tree->Remove(0, far).code(), StatusCode::kNotFound);
  // Double delete.
  ASSERT_TRUE(tree->Remove(0, dataset.object(0).loc).ok());
  EXPECT_EQ(tree->Remove(0, dataset.object(0).loc).code(),
            StatusCode::kNotFound);
}

TEST(SetRTreeRemoveTest, RemoveEverythingEmptiesTheTree) {
  const Dataset dataset = SmallDataset(60, 3);
  TempFile file("rm_setr_all");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  SetRTree::Options options;
  options.capacity = 4;
  auto tree = SetRTree::BulkLoad(dataset, &pool, options).value();
  for (const SpatialObject& o : dataset.objects()) {
    ASSERT_TRUE(tree->Remove(o.id, o.loc).ok());
  }
  EXPECT_EQ(tree->num_objects(), 0u);
  EXPECT_EQ(tree->SearchRoot(), kInvalidPageId);
  EXPECT_EQ(tree->Remove(1, Point{0, 0}).code(), StatusCode::kNotFound);
  // Insert works again after emptying.
  ASSERT_TRUE(tree->Insert(dataset.object(5)).ok());
  EXPECT_EQ(tree->num_objects(), 1u);
  EXPECT_TRUE(VerifySetRTree(*tree).ok());
}

TEST(KcrTreeRemoveTest, RemoveHalfKeepsInvariantsAndQueries) {
  const Dataset dataset = SmallDataset(200, 4);
  TempFile file("rm_kcr");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  KcrTree::Options options;
  options.capacity = 8;
  auto tree = KcrTree::BulkLoad(dataset, &pool, options).value();

  Rng rng(9);
  std::vector<bool> removed(dataset.size(), false);
  for (int i = 0; i < 100; ++i) {
    ObjectId victim;
    do {
      victim = static_cast<ObjectId>(rng.NextUint64(dataset.size()));
    } while (removed[victim]);
    ASSERT_TRUE(tree->Remove(victim, dataset.object(victim).loc).ok());
    removed[victim] = true;
  }
  EXPECT_EQ(tree->num_objects(), dataset.size() - 100);
  EXPECT_EQ(tree->root_cnt(), dataset.size() - 100);
  EXPECT_TRUE(VerifyKcrTree(*tree).ok());

  SpatialKeywordQuery q;
  q.loc = Point{0.2, 0.8};
  q.doc = dataset.object(11).doc;
  q.k = 15;
  q.alpha = 0.5;
  const auto expected = SurvivorTopK(dataset, removed, q);
  const auto actual = IndexTopK(*tree, q).value();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id) << "position " << i;
  }
}

TEST(KcrTreeRemoveTest, InterleavedInsertAndRemove) {
  const Dataset dataset = SmallDataset(120, 5);
  TempFile file("rm_kcr_mix");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  KcrTree::Options options;
  options.capacity = 6;
  auto tree =
      KcrTree::CreateEmpty(&pool, dataset.diagonal(), options).value();

  // Insert everything, remove the odd ids, re-insert a few.
  for (const SpatialObject& o : dataset.objects()) {
    ASSERT_TRUE(tree->Insert(o).ok());
  }
  for (ObjectId id = 1; id < dataset.size(); id += 2) {
    ASSERT_TRUE(tree->Remove(id, dataset.object(id).loc).ok());
  }
  for (ObjectId id : std::vector<ObjectId>{1, 3, 5}) {
    ASSERT_TRUE(tree->Insert(dataset.object(id)).ok());
  }
  ASSERT_TRUE(tree->Finalize().ok());
  EXPECT_EQ(tree->num_objects(), dataset.size() / 2 + 3);
  EXPECT_TRUE(VerifyKcrTree(*tree).ok());
}

}  // namespace
}  // namespace wsk
