#include "core/location_refinement.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "test_util.h"

namespace wsk {
namespace {

Dataset SmallDataset(uint32_t n, uint64_t seed) {
  GeneratorConfig config;
  config.num_objects = n;
  config.vocab_size = 30;
  config.seed = seed;
  return GenerateDataset(config);
}

uint32_t RankWithLoc(const Dataset& dataset,
                     const SpatialKeywordQuery& original, Point loc,
                     const std::vector<ObjectId>& missing) {
  SpatialKeywordQuery q = original;
  q.loc = loc;
  return testing::BruteForceSetRank(dataset, q, missing);
}

TEST(LocationRefinementTest, AlreadyInResult) {
  const Dataset dataset = SmallDataset(100, 1);
  SpatialKeywordQuery q;
  q.loc = dataset.object(3).loc;
  q.doc = dataset.object(3).doc;
  q.k = 10;
  q.alpha = 0.5;
  const auto result =
      RefineLocationApproximate(dataset, q, {3}, 0.5).value();
  EXPECT_TRUE(result.already_in_result);
}

TEST(LocationRefinementTest, RefinedLocationRevivesMissing) {
  const Dataset dataset = SmallDataset(200, 2);
  Rng rng(2);
  int tested = 0;
  for (int iter = 0; iter < 6 && tested < 3; ++iter) {
    SpatialKeywordQuery q;
    q.loc = Point{rng.NextDouble(), rng.NextDouble()};
    q.doc = dataset.object(static_cast<ObjectId>(
                                rng.NextUint64(dataset.size())))
                .doc;
    q.k = 5;
    q.alpha = 0.5;
    SpatialKeywordQuery probe = q;
    probe.k = 25;
    const ObjectId missing = BruteForceTopK(dataset, probe).back().id;
    const auto result =
        RefineLocationApproximate(dataset, q, {missing}, 0.5).value();
    if (result.already_in_result) continue;
    ++tested;
    EXPECT_LE(RankWithLoc(dataset, q, result.loc, {missing}), result.k);
    // Never worse than the basic refinement.
    EXPECT_LE(result.penalty, 0.5 + 1e-12);
    EXPECT_EQ(result.rank, RankWithLoc(dataset, q, result.loc, {missing}));
  }
  EXPECT_GT(tested, 0);
}

TEST(LocationRefinementTest, MovingOntoTheMissingObjectHelps) {
  // One perfect-keyword object far away; moving the query toward it makes
  // it rank 1 with a location-only refinement.
  Dataset dataset;
  const TermId kw = dataset.vocabulary().Intern("match");
  const TermId other = dataset.vocabulary().Intern("other");
  dataset.Add(Point{0.9, 0.0}, KeywordSet{kw});    // missing, far
  dataset.Add(Point{0.05, 0.0}, KeywordSet{kw});   // near competitor
  dataset.Add(Point{0.10, 0.0}, KeywordSet{kw});   // near competitor
  dataset.Add(Point{0.0, 1.0}, KeywordSet{other}); // diagonal spreader
  SpatialKeywordQuery q;
  q.loc = Point{0.0, 0.0};
  q.doc = KeywordSet{kw};
  q.k = 1;
  q.alpha = 0.7;
  // lambda = 1: moving is free, only dk is penalized -> the optimum should
  // revive the object with zero k change by moving toward it.
  const auto result =
      RefineLocationApproximate(dataset, q, {0}, 1.0).value();
  ASSERT_FALSE(result.already_in_result);
  EXPECT_EQ(result.rank, 1u);
  EXPECT_DOUBLE_EQ(result.penalty, 0.0);
  EXPECT_GT(result.loc.x, 0.4);  // moved a long way toward x = 0.9
}

TEST(LocationRefinementTest, MoreSamplesNeverWorse) {
  const Dataset dataset = SmallDataset(150, 5);
  SpatialKeywordQuery q;
  q.loc = Point{0.2, 0.2};
  q.doc = dataset.object(11).doc;
  q.k = 5;
  q.alpha = 0.5;
  SpatialKeywordQuery probe = q;
  probe.k = 30;
  const ObjectId missing = BruteForceTopK(dataset, probe).back().id;
  const auto coarse =
      RefineLocationApproximate(dataset, q, {missing}, 0.5, 8).value();
  const auto fine =
      RefineLocationApproximate(dataset, q, {missing}, 0.5, 256).value();
  if (coarse.already_in_result) GTEST_SKIP();
  // Both sample the same segment, but the local-shrink phase starts from
  // different brackets, so the results are only comparable up to a small
  // tolerance; dense sampling must not be materially worse.
  EXPECT_LE(fine.penalty, coarse.penalty + 1e-3);
  EXPECT_LE(fine.penalty, 0.5 + 1e-12);  // never above the basic refinement
}

TEST(LocationRefinementTest, InvalidInputsRejected) {
  const Dataset dataset = SmallDataset(50, 7);
  SpatialKeywordQuery q;
  q.loc = Point{0.5, 0.5};
  q.doc = dataset.object(0).doc;
  q.k = 5;
  q.alpha = 0.5;
  EXPECT_FALSE(RefineLocationApproximate(dataset, q, {}, 0.5).ok());
  EXPECT_FALSE(RefineLocationApproximate(dataset, q, {9999}, 0.5).ok());
  EXPECT_FALSE(RefineLocationApproximate(dataset, q, {1}, -0.5).ok());
  EXPECT_FALSE(RefineLocationApproximate(dataset, q, {1}, 0.5, 1).ok());
  SpatialKeywordQuery bad = q;
  bad.alpha = 1.0;
  EXPECT_FALSE(RefineLocationApproximate(dataset, bad, {1}, 0.5).ok());
}

}  // namespace
}  // namespace wsk
