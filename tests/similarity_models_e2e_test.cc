// End-to-end checks of the non-default similarity models (footnote 1):
// the indexes and the basic-family why-not algorithms must stay exact
// under Dice and Overlap, not just Jaccard.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/engine.h"
#include "data/generator.h"
#include "test_util.h"

namespace wsk {
namespace {

struct ModelInstance {
  Dataset dataset;
  std::unique_ptr<WhyNotEngine> engine;
};

ModelInstance MakeInstance(SimilarityModel model, uint64_t seed) {
  GeneratorConfig config;
  config.num_objects = 260;
  config.vocab_size = 35;
  config.seed = seed;
  ModelInstance instance;
  instance.dataset = GenerateDataset(config);
  WhyNotEngine::Config engine_config;
  engine_config.node_capacity = 8;
  engine_config.model = model;
  instance.engine =
      WhyNotEngine::Build(&instance.dataset, engine_config).value();
  return instance;
}

class ModelSweep
    : public ::testing::TestWithParam<std::tuple<SimilarityModel, double>> {};

TEST_P(ModelSweep, IndexTopKMatchesBruteForce) {
  const auto [model, alpha] = GetParam();
  ModelInstance instance = MakeInstance(model, 42);
  Rng rng(7);
  for (int iter = 0; iter < 4; ++iter) {
    SpatialKeywordQuery q;
    q.loc = Point{rng.NextDouble(), rng.NextDouble()};
    q.doc = instance.dataset
                .object(static_cast<ObjectId>(
                    rng.NextUint64(instance.dataset.size())))
                .doc;
    q.k = 15;
    q.alpha = alpha;
    q.model = model;
    const auto expected = BruteForceTopK(instance.dataset, q);
    const auto actual = instance.engine->TopK(q).value();
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i].id)
          << SimilarityModelName(model) << " alpha=" << alpha << " pos " << i;
    }
  }
}

TEST_P(ModelSweep, AdvancedWhyNotMatchesBruteForce) {
  const auto [model, alpha] = GetParam();
  ModelInstance instance = MakeInstance(model, 43);
  Rng rng(9);
  SpatialKeywordQuery q;
  q.loc = Point{rng.NextDouble(), rng.NextDouble()};
  q.doc = instance.dataset.object(3).doc;
  q.k = 5;
  q.alpha = alpha;
  q.model = model;
  auto missing_or = instance.engine->ObjectAtPosition(q, 17);
  if (!missing_or.ok()) GTEST_SKIP();
  const ObjectId missing = missing_or.value();
  const auto reference = testing::SolveWhyNotBruteForce(
      instance.dataset, q, {missing}, 0.5);
  if (reference.already_in_result) GTEST_SKIP();
  WhyNotOptions options;
  const WhyNotResult result =
      instance.engine->Answer(WhyNotAlgorithm::kAdvanced, q, {missing},
                              options)
          .value();
  EXPECT_NEAR(result.refined.penalty, reference.refined.penalty, 1e-9)
      << SimilarityModelName(model) << " alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(
    Models, ModelSweep,
    ::testing::Combine(::testing::Values(SimilarityModel::kDice,
                                         SimilarityModel::kOverlap),
                       ::testing::Values(0.3, 0.5, 0.7)));

TEST(ModelEdgeTest, KcrRejectsNonJaccardButBasicFamilyAccepts) {
  ModelInstance instance = MakeInstance(SimilarityModel::kDice, 44);
  SpatialKeywordQuery q;
  q.loc = Point{0.5, 0.5};
  q.doc = instance.dataset.object(0).doc;
  q.k = 5;
  q.alpha = 0.5;
  q.model = SimilarityModel::kDice;
  WhyNotOptions options;
  EXPECT_FALSE(
      instance.engine->Answer(WhyNotAlgorithm::kKcrBased, q, {9}, options)
          .ok());
  EXPECT_TRUE(
      instance.engine->Answer(WhyNotAlgorithm::kAdvanced, q, {9}, options)
          .ok());
}

}  // namespace
}  // namespace wsk
