// Randomized round-trip testing of every serialized structure: whatever the
// writers produce, the readers must reconstruct bit-exactly, across sizes
// from empty to multi-page.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "index/keyword_count_map.h"
#include "index/node_codec.h"
#include "storage/blob_store.h"
#include "text/keyword_set.h"
#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

TEST(SerializationFuzzTest, KeywordSetRoundTrips) {
  Rng rng(1);
  for (int iter = 0; iter < 300; ++iter) {
    const size_t n = rng.NextUint64(64);
    std::vector<TermId> terms;
    for (size_t i = 0; i < n; ++i) {
      terms.push_back(static_cast<TermId>(rng.Next()));  // full 32-bit ids
    }
    const KeywordSet set(std::move(terms));
    std::vector<uint8_t> bytes;
    set.Serialize(&bytes);
    ASSERT_EQ(bytes.size(), set.SerializedSize());
    EXPECT_EQ(KeywordSet::Deserialize(bytes.data(), bytes.size()), set);
  }
}

TEST(SerializationFuzzTest, KeywordCountMapRoundTrips) {
  Rng rng(2);
  for (int iter = 0; iter < 300; ++iter) {
    KeywordCountMap map;
    const size_t docs = rng.NextUint64(20);
    for (size_t d = 0; d < docs; ++d) {
      std::vector<TermId> terms;
      const size_t n = rng.NextUint64(10);
      for (size_t i = 0; i < n; ++i) {
        terms.push_back(static_cast<TermId>(rng.NextUint64(50)));
      }
      map.AddDoc(KeywordSet(std::move(terms)));
    }
    std::vector<uint8_t> bytes;
    map.Serialize(&bytes);
    ASSERT_EQ(bytes.size(), map.SerializedSize());
    EXPECT_TRUE(KeywordCountMap::Deserialize(bytes.data(), bytes.size()) ==
                map);
  }
}

TEST(SerializationFuzzTest, BlobRefRoundTrips) {
  Rng rng(3);
  for (int iter = 0; iter < 200; ++iter) {
    BlobRef ref{static_cast<PageId>(rng.Next()),
                static_cast<uint32_t>(rng.Next()),
                static_cast<uint32_t>(rng.Next())};
    uint8_t buf[BlobRef::kSerializedSize];
    ref.Serialize(buf);
    EXPECT_EQ(BlobRef::Deserialize(buf), ref);
  }
}

TEST(SerializationFuzzTest, RandomBlobSequencesRoundTrip) {
  TempFile file("fuzz_blobs");
  auto pager = Pager::Create(file.path(), 128).value();
  BufferPool pool(pager.get(), 128 * 32);
  BlobStore store(&pool);
  Rng rng(4);

  std::vector<std::pair<BlobRef, std::vector<uint8_t>>> blobs;
  for (int iter = 0; iter < 200; ++iter) {
    // Mix of empty, sub-page, page-boundary, and multi-page sizes.
    size_t n;
    switch (rng.NextUint64(5)) {
      case 0:
        n = 0;
        break;
      case 1:
        n = 1 + rng.NextUint64(100);
        break;
      case 2:
        n = 127 + rng.NextUint64(3);  // around the 128-byte page boundary
        break;
      default:
        n = rng.NextUint64(700);
        break;
    }
    std::vector<uint8_t> data(n);
    for (uint8_t& b : data) b = static_cast<uint8_t>(rng.Next());
    auto ref = store.Append(data);
    ASSERT_TRUE(ref.ok());
    // Interleave reads of earlier blobs while later ones are appended —
    // exercises the open-page read path.
    if (!blobs.empty() && rng.NextBool(0.3)) {
      const auto& [old_ref, old_data] =
          blobs[rng.NextUint64(blobs.size())];
      std::vector<uint8_t> out;
      ASSERT_TRUE(store.Read(old_ref, &out).ok());
      ASSERT_EQ(out, old_data);
    }
    blobs.emplace_back(ref.value(), std::move(data));
  }
  ASSERT_TRUE(store.Flush().ok());
  for (const auto& [ref, data] : blobs) {
    std::vector<uint8_t> out;
    ASSERT_TRUE(store.Read(ref, &out).ok());
    EXPECT_EQ(out, data);
    if (data.size() >= 2) {
      const uint32_t offset =
          static_cast<uint32_t>(rng.NextUint64(data.size() - 1));
      const uint32_t length = static_cast<uint32_t>(
          1 + rng.NextUint64(data.size() - offset));
      ASSERT_TRUE(store.ReadRange(ref, offset, length, &out).ok());
      EXPECT_EQ(out, std::vector<uint8_t>(data.begin() + offset,
                                          data.begin() + offset + length));
    }
  }
}

TEST(SerializationFuzzTest, ByteWriterReaderRandomSequences) {
  Rng rng(5);
  for (int iter = 0; iter < 100; ++iter) {
    // Record a random schema, write it, read it back.
    std::vector<int> schema;
    std::vector<uint64_t> ints;
    std::vector<double> doubles;
    std::vector<uint8_t> bytes;
    ByteWriter writer(&bytes);
    const size_t fields = 1 + rng.NextUint64(20);
    for (size_t i = 0; i < fields; ++i) {
      switch (rng.NextUint64(4)) {
        case 0: {
          const uint8_t v = static_cast<uint8_t>(rng.Next());
          writer.PutU8(v);
          schema.push_back(0);
          ints.push_back(v);
          break;
        }
        case 1: {
          const uint32_t v = static_cast<uint32_t>(rng.Next());
          writer.PutU32(v);
          schema.push_back(1);
          ints.push_back(v);
          break;
        }
        case 2: {
          const uint64_t v = rng.Next();
          writer.PutU64(v);
          schema.push_back(2);
          ints.push_back(v);
          break;
        }
        default: {
          const double v = rng.NextDouble(-1e6, 1e6);
          writer.PutDouble(v);
          schema.push_back(3);
          doubles.push_back(v);
          break;
        }
      }
    }
    ByteReader reader(bytes.data(), bytes.size());
    size_t int_index = 0, double_index = 0;
    for (int kind : schema) {
      switch (kind) {
        case 0:
          EXPECT_EQ(reader.GetU8(), static_cast<uint8_t>(ints[int_index++]));
          break;
        case 1:
          EXPECT_EQ(reader.GetU32(),
                    static_cast<uint32_t>(ints[int_index++]));
          break;
        case 2:
          EXPECT_EQ(reader.GetU64(), ints[int_index++]);
          break;
        default:
          EXPECT_DOUBLE_EQ(reader.GetDouble(), doubles[double_index++]);
          break;
      }
    }
    EXPECT_EQ(reader.remaining(), 0u);
  }
}

}  // namespace
}  // namespace wsk
