#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/engine.h"
#include "data/generator.h"
#include "test_util.h"

namespace wsk {
namespace {

using testing::SolveWhyNotBruteForce;

std::unique_ptr<WhyNotEngine> MakeEngine(const Dataset& dataset,
                                         uint32_t capacity = 8) {
  WhyNotEngine::Config config;
  config.node_capacity = capacity;
  return WhyNotEngine::Build(&dataset, config).value();
}

Dataset SmallDataset(uint32_t n, uint64_t seed, uint32_t vocab = 30) {
  GeneratorConfig config;
  config.num_objects = n;
  config.vocab_size = vocab;
  config.seed = seed;
  config.doc_size_mean = 4.0;
  return GenerateDataset(config);
}

// Picks a query whose keywords come from a random object's doc and a
// missing object at (roughly) the requested position in the ranking.
struct Scenario {
  SpatialKeywordQuery query;
  ObjectId missing;
};

Scenario MakeScenario(const WhyNotEngine& engine, Rng& rng, uint32_t k,
                      uint32_t missing_position, double alpha) {
  const Dataset& dataset = engine.dataset();
  Scenario scenario;
  scenario.query.loc = Point{rng.NextDouble(), rng.NextDouble()};
  scenario.query.doc =
      dataset.object(static_cast<ObjectId>(rng.NextUint64(dataset.size())))
          .doc;
  scenario.query.k = k;
  scenario.query.alpha = alpha;
  scenario.missing =
      engine.ObjectAtPosition(scenario.query, missing_position).value();
  return scenario;
}

TEST(WhyNotAlgorithmsTest, Figure1ExampleMatchesBruteForce) {
  TermId t1, t2, t3;
  const Dataset dataset = testing::Figure1Dataset(&t1, &t2, &t3);
  const SpatialKeywordQuery query = testing::Figure1Query(t1, t2);
  auto engine = MakeEngine(dataset, 4);
  const auto reference = SolveWhyNotBruteForce(dataset, query, {2}, 0.5);
  EXPECT_EQ(reference.initial_rank, 3u);

  WhyNotOptions options;
  for (WhyNotAlgorithm algorithm :
       {WhyNotAlgorithm::kBasic, WhyNotAlgorithm::kAdvanced,
        WhyNotAlgorithm::kKcrBased}) {
    const WhyNotResult result =
        engine->Answer(algorithm, query, {2}, options).value();
    EXPECT_FALSE(result.already_in_result);
    EXPECT_EQ(result.stats.initial_rank, 3u);
    EXPECT_NEAR(result.refined.penalty, reference.refined.penalty, 1e-12)
        << WhyNotAlgorithmName(algorithm);
    // The refined query must actually contain the missing object.
    SpatialKeywordQuery refined = query;
    refined.doc = result.refined.doc;
    EXPECT_LE(BruteForceRank(dataset, refined, 2), result.refined.k);
  }
}

// The flagship property: all three algorithms find a refined query with the
// brute-force-optimal penalty, across a parameter sweep.
class AlgorithmEquivalence
    : public ::testing::TestWithParam<std::tuple<double, double, uint32_t>> {};

TEST_P(AlgorithmEquivalence, OptimalPenaltyMatchesBruteForce) {
  const auto [alpha, lambda, k] = GetParam();
  const Dataset dataset = SmallDataset(250, 1000 + k);
  auto engine = MakeEngine(dataset);
  Rng rng(42 + k);
  WhyNotOptions options;
  options.lambda = lambda;

  int tested = 0;
  for (int attempt = 0; attempt < 8 && tested < 3; ++attempt) {
    const Scenario scenario =
        MakeScenario(*engine, rng, k, 3 * k + 1, alpha);
    const auto reference = SolveWhyNotBruteForce(dataset, scenario.query,
                                                 {scenario.missing}, lambda);
    if (reference.already_in_result) continue;  // ties can skip
    ++tested;
    for (WhyNotAlgorithm algorithm :
         {WhyNotAlgorithm::kBasic, WhyNotAlgorithm::kAdvanced,
          WhyNotAlgorithm::kKcrBased}) {
      const WhyNotResult result =
          engine->Answer(algorithm, scenario.query, {scenario.missing},
                         options)
              .value();
      EXPECT_EQ(result.stats.initial_rank, reference.initial_rank);
      EXPECT_NEAR(result.refined.penalty, reference.refined.penalty, 1e-9)
          << WhyNotAlgorithmName(algorithm) << " alpha=" << alpha
          << " lambda=" << lambda << " k=" << k;
      // The returned refined query revives the missing object.
      SpatialKeywordQuery refined = scenario.query;
      refined.doc = result.refined.doc;
      EXPECT_LE(BruteForceRank(dataset, refined, scenario.missing),
                std::max(result.refined.k, scenario.query.k))
          << WhyNotAlgorithmName(algorithm);
    }
  }
  EXPECT_GT(tested, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgorithmEquivalence,
    ::testing::Combine(::testing::Values(0.3, 0.5, 0.7),
                       ::testing::Values(0.1, 0.5, 0.9),
                       ::testing::Values(3u, 10u)));

// Each optimization, toggled alone, must preserve the optimal result.
class OptimizationToggles : public ::testing::TestWithParam<int> {};

TEST_P(OptimizationToggles, PreserveOptimality) {
  const int toggle = GetParam();
  const Dataset dataset = SmallDataset(220, 555);
  auto engine = MakeEngine(dataset);
  Rng rng(toggle + 9);
  const Scenario scenario = MakeScenario(*engine, rng, 5, 16, 0.5);
  const auto reference =
      SolveWhyNotBruteForce(dataset, scenario.query, {scenario.missing}, 0.5);
  if (reference.already_in_result) GTEST_SKIP();

  WhyNotOptions options;
  options.opt_early_stop = toggle == 1;
  options.opt_enumeration_order = toggle == 2;
  options.opt_keyword_filtering = toggle == 3;
  options.num_threads = toggle == 4 ? 3 : 0;
  const WhyNotResult result =
      engine->Answer(WhyNotAlgorithm::kAdvanced, scenario.query,
                     {scenario.missing}, options)
          .value();
  EXPECT_NEAR(result.refined.penalty, reference.refined.penalty, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Toggles, OptimizationToggles,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(WhyNotAlgorithmsTest, MultipleMissingObjects) {
  const Dataset dataset = SmallDataset(260, 777);
  auto engine = MakeEngine(dataset);
  Rng rng(777);
  SpatialKeywordQuery query;
  query.loc = Point{rng.NextDouble(), rng.NextDouble()};
  query.doc = dataset.object(11).doc;
  query.k = 5;
  query.alpha = 0.5;
  // Missing objects drawn from positions 8, 12, 20 of the ranking.
  std::vector<ObjectId> missing;
  for (uint32_t pos : {8u, 12u, 20u}) {
    missing.push_back(engine->ObjectAtPosition(query, pos).value());
  }
  const auto reference =
      SolveWhyNotBruteForce(dataset, query, missing, 0.5);
  ASSERT_FALSE(reference.already_in_result);

  WhyNotOptions options;
  for (WhyNotAlgorithm algorithm :
       {WhyNotAlgorithm::kBasic, WhyNotAlgorithm::kAdvanced,
        WhyNotAlgorithm::kKcrBased}) {
    const WhyNotResult result =
        engine->Answer(algorithm, query, missing, options).value();
    EXPECT_NEAR(result.refined.penalty, reference.refined.penalty, 1e-9)
        << WhyNotAlgorithmName(algorithm);
    // All missing objects enter the refined result.
    SpatialKeywordQuery refined = query;
    refined.doc = result.refined.doc;
    for (ObjectId m : missing) {
      EXPECT_LE(BruteForceRank(dataset, refined, m),
                std::max(result.refined.k, query.k));
    }
  }
}

TEST(WhyNotAlgorithmsTest, AlreadyInResultShortCircuits) {
  const Dataset dataset = SmallDataset(100, 31);
  auto engine = MakeEngine(dataset);
  SpatialKeywordQuery query;
  query.loc = Point{0.5, 0.5};
  query.doc = dataset.object(0).doc;
  query.k = 10;
  query.alpha = 0.5;
  const ObjectId top = engine->ObjectAtPosition(query, 1).value();
  WhyNotOptions options;
  for (WhyNotAlgorithm algorithm :
       {WhyNotAlgorithm::kBasic, WhyNotAlgorithm::kAdvanced,
        WhyNotAlgorithm::kKcrBased}) {
    const WhyNotResult result =
        engine->Answer(algorithm, query, {top}, options).value();
    EXPECT_TRUE(result.already_in_result);
    EXPECT_DOUBLE_EQ(result.refined.penalty, 0.0);
    EXPECT_EQ(result.refined.doc, query.doc);
  }
}

TEST(WhyNotAlgorithmsTest, ApproximateNeverBeatsExactAndRevivesMissing) {
  const Dataset dataset = SmallDataset(240, 888);
  auto engine = MakeEngine(dataset);
  Rng rng(888);
  const Scenario scenario = MakeScenario(*engine, rng, 5, 21, 0.5);
  WhyNotOptions exact_options;
  const double exact_penalty =
      engine->Answer(WhyNotAlgorithm::kAdvanced, scenario.query,
                     {scenario.missing}, exact_options)
          .value()
          .refined.penalty;
  double prev_penalty = std::numeric_limits<double>::infinity();
  for (uint32_t sample : {2u, 8u, 32u, 4096u}) {
    WhyNotOptions options;
    options.sample_size = sample;
    const WhyNotResult result =
        engine->Answer(WhyNotAlgorithm::kAdvanced, scenario.query,
                       {scenario.missing}, options)
            .value();
    EXPECT_GE(result.refined.penalty, exact_penalty - 1e-12);
    // The approximate answer is still a valid refinement.
    SpatialKeywordQuery refined = scenario.query;
    refined.doc = result.refined.doc;
    EXPECT_LE(BruteForceRank(dataset, refined, scenario.missing),
              std::max(result.refined.k, scenario.query.k));
    // Larger samples cannot do worse here because smaller samples are
    // prefixes of larger ones under the same benefit order.
    EXPECT_LE(result.refined.penalty, prev_penalty + 1e-12);
    prev_penalty = result.refined.penalty;
  }
}

TEST(WhyNotAlgorithmsTest, ApproximateSampleAgreesAcrossAlgorithms) {
  // Section VII-B9: for a fixed sample size every algorithm returns the
  // same penalty because the sample space is identical.
  const Dataset dataset = SmallDataset(200, 999);
  auto engine = MakeEngine(dataset);
  Rng rng(999);
  const Scenario scenario = MakeScenario(*engine, rng, 5, 18, 0.5);
  WhyNotOptions options;
  options.sample_size = 16;
  double penalties[3];
  int i = 0;
  for (WhyNotAlgorithm algorithm :
       {WhyNotAlgorithm::kBasic, WhyNotAlgorithm::kAdvanced,
        WhyNotAlgorithm::kKcrBased}) {
    penalties[i++] = engine
                         ->Answer(algorithm, scenario.query,
                                  {scenario.missing}, options)
                         .value()
                         .refined.penalty;
  }
  EXPECT_NEAR(penalties[0], penalties[1], 1e-9);
  EXPECT_NEAR(penalties[0], penalties[2], 1e-9);
}

TEST(WhyNotAlgorithmsTest, LambdaExtremesBehave) {
  const Dataset dataset = SmallDataset(200, 1234);
  auto engine = MakeEngine(dataset);
  Rng rng(1234);
  const Scenario scenario = MakeScenario(*engine, rng, 5, 16, 0.5);

  // lambda = 1: modifying keywords is free in the k-term but any keyword
  // change costs nothing textually — the optimum can be any penalty <= 1;
  // compare against brute force.
  for (double lambda : {0.0, 1.0}) {
    const auto reference = SolveWhyNotBruteForce(dataset, scenario.query,
                                                 {scenario.missing}, lambda);
    if (reference.already_in_result) continue;
    WhyNotOptions options;
    options.lambda = lambda;
    for (WhyNotAlgorithm algorithm :
         {WhyNotAlgorithm::kAdvanced, WhyNotAlgorithm::kKcrBased}) {
      const WhyNotResult result =
          engine->Answer(algorithm, scenario.query, {scenario.missing},
                         options)
              .value();
      EXPECT_NEAR(result.refined.penalty, reference.refined.penalty, 1e-9)
          << "lambda=" << lambda << " " << WhyNotAlgorithmName(algorithm);
    }
  }
}

TEST(WhyNotAlgorithmsTest, InvalidInputsRejected) {
  const Dataset dataset = SmallDataset(50, 5);
  auto engine = MakeEngine(dataset);
  WhyNotOptions options;
  SpatialKeywordQuery query;
  query.loc = Point{0.5, 0.5};
  query.doc = dataset.object(0).doc;
  query.k = 5;
  query.alpha = 0.5;

  // No missing objects.
  EXPECT_FALSE(
      engine->Answer(WhyNotAlgorithm::kAdvanced, query, {}, options).ok());
  // Out-of-range missing id.
  EXPECT_FALSE(engine
                   ->Answer(WhyNotAlgorithm::kAdvanced, query, {999999},
                            options)
                   .ok());
  // Bad alpha.
  SpatialKeywordQuery bad = query;
  bad.alpha = 1.0;
  EXPECT_FALSE(
      engine->Answer(WhyNotAlgorithm::kAdvanced, bad, {1}, options).ok());
  // Empty keywords.
  bad = query;
  bad.doc = KeywordSet();
  EXPECT_FALSE(
      engine->Answer(WhyNotAlgorithm::kAdvanced, bad, {1}, options).ok());
  // Bad lambda.
  WhyNotOptions bad_options;
  bad_options.lambda = 1.5;
  EXPECT_FALSE(
      engine->Answer(WhyNotAlgorithm::kAdvanced, query, {1}, bad_options)
          .ok());
  // KcR-based requires Jaccard.
  bad = query;
  bad.model = SimilarityModel::kDice;
  EXPECT_FALSE(
      engine->Answer(WhyNotAlgorithm::kKcrBased, bad, {1}, options).ok());
}

TEST(WhyNotAlgorithmsTest, DiceModelSupportedByBasicFamily) {
  const Dataset dataset = SmallDataset(150, 2024);
  auto engine = MakeEngine(dataset);
  Rng rng(2024);
  SpatialKeywordQuery query;
  query.loc = Point{rng.NextDouble(), rng.NextDouble()};
  query.doc = dataset.object(3).doc;
  query.k = 5;
  query.alpha = 0.5;
  query.model = SimilarityModel::kDice;
  const ObjectId missing = engine->ObjectAtPosition(query, 16).value();
  const auto reference = SolveWhyNotBruteForce(dataset, query, {missing}, 0.5);
  if (reference.already_in_result) GTEST_SKIP();
  WhyNotOptions options;
  const WhyNotResult result =
      engine->Answer(WhyNotAlgorithm::kAdvanced, query, {missing}, options)
          .value();
  EXPECT_NEAR(result.refined.penalty, reference.refined.penalty, 1e-9);
}

}  // namespace
}  // namespace wsk
