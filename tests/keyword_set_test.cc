#include "text/keyword_set.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace wsk {
namespace {

TEST(KeywordSetTest, ConstructionSortsAndDedupes) {
  const KeywordSet set(std::vector<TermId>{5, 1, 3, 1, 5});
  EXPECT_EQ(set.terms(), (std::vector<TermId>{1, 3, 5}));
  EXPECT_EQ(set.size(), 3u);
}

TEST(KeywordSetTest, Contains) {
  const KeywordSet set{2, 4, 6};
  EXPECT_TRUE(set.Contains(4));
  EXPECT_FALSE(set.Contains(5));
  EXPECT_FALSE(KeywordSet().Contains(0));
}

TEST(KeywordSetTest, IntersectionAndUnionSizes) {
  const KeywordSet a{1, 2, 3, 4};
  const KeywordSet b{3, 4, 5};
  EXPECT_EQ(a.IntersectionSize(b), 2u);
  EXPECT_EQ(a.UnionSize(b), 5u);
  EXPECT_EQ(a.IntersectionSize(KeywordSet()), 0u);
  EXPECT_EQ(a.UnionSize(KeywordSet()), 4u);
}

TEST(KeywordSetTest, SetAlgebra) {
  const KeywordSet a{1, 2, 3};
  const KeywordSet b{2, 3, 4};
  EXPECT_EQ(a.Union(b), (KeywordSet{1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), (KeywordSet{2, 3}));
  EXPECT_EQ(a.Subtract(b), (KeywordSet{1}));
  EXPECT_EQ(b.Subtract(a), (KeywordSet{4}));
}

TEST(KeywordSetTest, WithWithout) {
  const KeywordSet a{1, 3};
  EXPECT_EQ(a.With(2), (KeywordSet{1, 2, 3}));
  EXPECT_EQ(a.With(3), a);
  EXPECT_EQ(a.Without(1), (KeywordSet{3}));
  EXPECT_EQ(a.Without(2), a);
}

TEST(KeywordSetTest, SerializationRoundTrip) {
  const KeywordSet a{10, 20, 4000000000u};
  std::vector<uint8_t> bytes;
  a.Serialize(&bytes);
  EXPECT_EQ(bytes.size(), a.SerializedSize());
  EXPECT_EQ(KeywordSet::Deserialize(bytes.data(), bytes.size()), a);

  const KeywordSet empty;
  bytes.clear();
  empty.Serialize(&bytes);
  EXPECT_EQ(KeywordSet::Deserialize(bytes.data(), bytes.size()), empty);
}

TEST(KeywordSetTest, EditDistance) {
  const KeywordSet doc0{1, 2};
  EXPECT_EQ(EditDistance(doc0, doc0), 0u);
  EXPECT_EQ(EditDistance(doc0, KeywordSet{1, 2, 3}), 1u);  // one insert
  EXPECT_EQ(EditDistance(doc0, KeywordSet{1}), 1u);        // one delete
  EXPECT_EQ(EditDistance(doc0, KeywordSet{3, 4}), 4u);     // replace both
  EXPECT_EQ(EditDistance(KeywordSet(), doc0), 2u);
}

TEST(KeywordSetTest, OrderingIsLexicographic) {
  EXPECT_LT(KeywordSet({1, 2}), KeywordSet({1, 3}));
  EXPECT_LT(KeywordSet({1}), KeywordSet({1, 2}));
}

TEST(KeywordSetTest, ToString) {
  EXPECT_EQ((KeywordSet{3, 1}).ToString(), "{1, 3}");
  EXPECT_EQ(KeywordSet().ToString(), "{}");
}

// Property sweep: algebra identities on random sets.
TEST(KeywordSetTest, AlgebraPropertiesRandom) {
  Rng rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<TermId> va, vb;
    for (int i = 0; i < 12; ++i) {
      if (rng.NextBool(0.5)) va.push_back(static_cast<TermId>(i));
      if (rng.NextBool(0.5)) vb.push_back(static_cast<TermId>(i));
    }
    const KeywordSet a(std::move(va)), b(std::move(vb));
    EXPECT_EQ(a.Union(b), b.Union(a));
    EXPECT_EQ(a.Intersect(b), b.Intersect(a));
    EXPECT_EQ(a.Union(b).size(), a.UnionSize(b));
    EXPECT_EQ(a.Intersect(b).size(), a.IntersectionSize(b));
    EXPECT_EQ(a.Subtract(b).size() + a.IntersectionSize(b), a.size());
    EXPECT_EQ(EditDistance(a, b), a.Subtract(b).size() + b.Subtract(a).size());
  }
}

// The three intersection paths (scalar merge, galloping, SIMD/portable
// block) and the size-based dispatcher must agree on every input,
// including the block-boundary sizes (multiples of the 4/8-wide chunks,
// plus/minus one) and heavily skewed pairs that trip the galloping cutoff.
TEST(KeywordSetTest, IntersectionPathsAgree) {
  Rng rng(20213);
  const size_t sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                          24, 31, 32, 33, 64, 100, 333, 1000};
  for (const size_t na : sizes) {
    for (const size_t nb : sizes) {
      // Densities chosen so overlap varies from near-empty to near-total.
      const double density = rng.NextDouble(0.05, 0.9);
      std::vector<TermId> va, vb;
      TermId t = 0;
      while (va.size() < na) {
        t += 1 + static_cast<TermId>(rng.NextUint64(6));
        if (rng.NextBool(density)) va.push_back(t);
      }
      t = 0;
      while (vb.size() < nb) {
        t += 1 + static_cast<TermId>(rng.NextUint64(6));
        if (rng.NextBool(density)) vb.push_back(t);
      }
      const KeywordSet a = KeywordSet::FromSorted(std::move(va));
      const KeywordSet b = KeywordSet::FromSorted(std::move(vb));

      const size_t expected = internal::IntersectionSizeScalar(
          a.terms().data(), a.size(), b.terms().data(), b.size());
      EXPECT_EQ(internal::IntersectionSizeBlock(a.terms().data(), a.size(),
                                                b.terms().data(), b.size()),
                expected)
          << "block na=" << na << " nb=" << nb;
      // Galloping requires the smaller set first.
      const KeywordSet& s = a.size() <= b.size() ? a : b;
      const KeywordSet& l = a.size() <= b.size() ? b : a;
      EXPECT_EQ(internal::IntersectionSizeGalloping(
                    s.terms().data(), s.size(), l.terms().data(), l.size()),
                expected)
          << "gallop na=" << na << " nb=" << nb;
      EXPECT_EQ(a.IntersectionSize(b), expected)
          << "dispatch na=" << na << " nb=" << nb;
      EXPECT_EQ(b.IntersectionSize(a), expected)
          << "dispatch(swapped) na=" << na << " nb=" << nb;
    }
  }
}

TEST(KeywordSetTest, IntersectionIdenticalSetsAndSharedTails) {
  // Equal arrays maximize the block path's all-equal compares; a shared
  // tail after a disjoint prefix exercises the advance-on-tie logic.
  std::vector<TermId> v;
  for (TermId t = 0; t < 50; ++t) v.push_back(t * 3);
  const KeywordSet a = KeywordSet::FromSorted(v);
  EXPECT_EQ(a.IntersectionSize(a), a.size());

  std::vector<TermId> prefix_a, prefix_b;
  for (TermId t = 0; t < 20; ++t) {
    prefix_a.push_back(t * 2);       // evens
    prefix_b.push_back(t * 2 + 1);   // odds
  }
  for (TermId t = 1000; t < 1040; ++t) {
    prefix_a.push_back(t);
    prefix_b.push_back(t);
  }
  const KeywordSet sa = KeywordSet::FromSorted(std::move(prefix_a));
  const KeywordSet sb = KeywordSet::FromSorted(std::move(prefix_b));
  EXPECT_EQ(sa.IntersectionSize(sb), 40u);
}

}  // namespace
}  // namespace wsk
