#include "index/kcr_tree.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "data/generator.h"
#include "index/setr_tree.h"
#include "index/topk.h"
#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

struct TreeBundle {
  std::unique_ptr<TempFile> file;
  std::unique_ptr<Pager> pager;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<KcrTree> tree;
};

TreeBundle BulkLoad(const Dataset& dataset, uint32_t capacity = 8) {
  TreeBundle bundle;
  bundle.file = std::make_unique<TempFile>("kcr");
  bundle.pager = Pager::Create(bundle.file->path()).value();
  bundle.pool = std::make_unique<BufferPool>(bundle.pager.get(), 4u << 20);
  KcrTree::Options options;
  options.capacity = capacity;
  bundle.tree = KcrTree::BulkLoad(dataset, bundle.pool.get(), options).value();
  return bundle;
}

Dataset SmallDataset(uint32_t n, uint64_t seed) {
  GeneratorConfig config;
  config.num_objects = n;
  config.vocab_size = 40;
  config.seed = seed;
  return GenerateDataset(config);
}

struct SubtreeFacts {
  Rect mbr;
  KeywordCountMap kcm;
  uint32_t objects = 0;
};

SubtreeFacts CheckSubtree(const KcrTree& tree, const Dataset& dataset,
                          PageId page) {
  SubtreeFacts facts;
  const KcrTree::Node node = tree.ReadNode(page).value();
  EXPECT_GE(node.size(), 1u);
  EXPECT_LE(node.size(), tree.options().capacity);
  if (node.is_leaf) {
    for (const KcrTree::LeafEntry& e : node.leaf_entries) {
      const KeywordSet doc = tree.ReadKeywordSet(e.keywords).value();
      EXPECT_EQ(doc, dataset.object(e.object).doc);
      facts.mbr.Extend(e.loc);
      facts.kcm.AddDoc(doc);
      facts.objects += 1;
    }
  } else {
    for (const KcrTree::InnerEntry& e : node.inner_entries) {
      const SubtreeFacts child = CheckSubtree(tree, dataset, e.child);
      EXPECT_TRUE(e.mbr.ContainsRect(child.mbr));
      EXPECT_EQ(e.cnt, child.objects);
      EXPECT_TRUE(tree.ReadKcm(e.kcm).value() == child.kcm);
      facts.mbr.Extend(child.mbr);
      facts.kcm.Merge(child.kcm);
      facts.objects += child.objects;
    }
  }
  return facts;
}

TEST(KcrTreeTest, BulkLoadStructuralInvariants) {
  const Dataset dataset = SmallDataset(300, 11);
  TreeBundle bundle = BulkLoad(dataset);
  EXPECT_EQ(bundle.tree->num_objects(), dataset.size());
  const SubtreeFacts facts =
      CheckSubtree(*bundle.tree, dataset, bundle.tree->SearchRoot());
  EXPECT_EQ(facts.objects, dataset.size());
  // The root summary in the metadata matches the recomputed facts.
  EXPECT_EQ(bundle.tree->root_cnt(), facts.objects);
  EXPECT_TRUE(bundle.tree->root_mbr().ContainsRect(facts.mbr));
  EXPECT_TRUE(bundle.tree->ReadRootKcm().value() == facts.kcm);
}

TEST(KcrTreeTest, RootKcmCountsMatchDocumentFrequencies) {
  const Dataset dataset = SmallDataset(200, 13);
  TreeBundle bundle = BulkLoad(dataset);
  const KeywordCountMap root = bundle.tree->ReadRootKcm().value();
  for (const auto& [term, count] : root.pairs()) {
    EXPECT_EQ(count, dataset.vocabulary().DocumentFrequency(term));
  }
}

class KcrTopKSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, double>> {};

TEST_P(KcrTopKSweep, MatchesBruteForce) {
  const auto [k, alpha] = GetParam();
  const Dataset dataset = SmallDataset(400, 29);
  TreeBundle bundle = BulkLoad(dataset);
  Rng rng(100 + k);
  for (int q_iter = 0; q_iter < 5; ++q_iter) {
    SpatialKeywordQuery q;
    q.loc = Point{rng.NextDouble(), rng.NextDouble()};
    q.doc = dataset
                .object(static_cast<ObjectId>(rng.NextUint64(dataset.size())))
                .doc;
    q.k = k;
    q.alpha = alpha;
    const auto expected = BruteForceTopK(dataset, q);
    const auto actual = IndexTopK(*bundle.tree, q).value();
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i].id) << "position " << i;
      EXPECT_NEAR(actual[i].score, expected[i].score, 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KcrTopKSweep,
                         ::testing::Combine(::testing::Values(1u, 5u, 20u,
                                                              100u),
                                            ::testing::Values(0.1, 0.5,
                                                              0.9)));

TEST(KcrTreeTest, InsertBuiltTreeInvariants) {
  const Dataset dataset = SmallDataset(150, 37);
  TreeBundle bundle;
  bundle.file = std::make_unique<TempFile>("kcr_ins");
  bundle.pager = Pager::Create(bundle.file->path()).value();
  bundle.pool = std::make_unique<BufferPool>(bundle.pager.get(), 4u << 20);
  KcrTree::Options options;
  options.capacity = 8;
  bundle.tree = KcrTree::CreateEmpty(bundle.pool.get(), dataset.diagonal(),
                                     options)
                    .value();
  for (const SpatialObject& o : dataset.objects()) {
    ASSERT_TRUE(bundle.tree->Insert(o).ok());
  }
  ASSERT_TRUE(bundle.tree->Finalize().ok());
  const SubtreeFacts facts =
      CheckSubtree(*bundle.tree, dataset, bundle.tree->SearchRoot());
  EXPECT_EQ(facts.objects, dataset.size());
  EXPECT_TRUE(bundle.tree->ReadRootKcm().value() == facts.kcm);

  SpatialKeywordQuery q;
  q.loc = Point{0.4, 0.6};
  q.doc = dataset.object(5).doc;
  q.k = 30;
  q.alpha = 0.5;
  const auto expected = BruteForceTopK(dataset, q);
  const auto actual = IndexTopK(*bundle.tree, q).value();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id);
  }
}

TEST(KcrTreeTest, ReopenFinalizedIndex) {
  const Dataset dataset = SmallDataset(120, 43);
  TempFile file("kcr_reopen");
  {
    auto pager = Pager::Create(file.path()).value();
    BufferPool pool(pager.get(), 4u << 20);
    KcrTree::Options options;
    options.capacity = 8;
    auto tree = KcrTree::BulkLoad(dataset, &pool, options).value();
    ASSERT_TRUE(tree->Finalize().ok());
  }
  auto pager = Pager::Open(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  auto tree = KcrTree::Open(&pool).value();
  EXPECT_EQ(tree->num_objects(), dataset.size());
  EXPECT_EQ(tree->root_cnt(), dataset.size());
  const SubtreeFacts facts = CheckSubtree(*tree, dataset, tree->SearchRoot());
  EXPECT_EQ(facts.objects, dataset.size());
}

TEST(KcrTreeTest, OpenRejectsSetRFile) {
  // Cross-format confusion must be caught by the magic check.
  const Dataset dataset = SmallDataset(50, 47);
  TempFile file("kcr_magic");
  {
    auto pager = Pager::Create(file.path()).value();
    BufferPool pool(pager.get(), 4u << 20);
    SetRTree::Options options;
    options.capacity = 8;
    auto tree = SetRTree::BulkLoad(dataset, &pool, options).value();
    ASSERT_TRUE(tree->Finalize().ok());
  }
  auto pager = Pager::Open(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  auto tree = KcrTree::Open(&pool);
  EXPECT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kCorruption);
}

TEST(KcrTreeTest, EmptyTree) {
  Dataset dataset;
  TreeBundle bundle = BulkLoad(dataset);
  EXPECT_EQ(bundle.tree->SearchRoot(), kInvalidPageId);
  EXPECT_TRUE(bundle.tree->ReadRootKcm().value().empty());
}

TreeBundle BulkLoadV2(const Dataset& dataset, uint32_t capacity = 8) {
  TreeBundle bundle;
  bundle.file = std::make_unique<TempFile>("kcr_v2");
  bundle.pager = Pager::Create(bundle.file->path()).value();
  bundle.pool = std::make_unique<BufferPool>(bundle.pager.get(), 4u << 20);
  KcrTree::Options options;
  options.capacity = capacity;
  options.format = kNodeFormatV2;
  bundle.tree = KcrTree::BulkLoad(dataset, bundle.pool.get(), options).value();
  return bundle;
}

TEST(KcrTreeTest, V2BulkLoadMatchesV1AndShrinksFile) {
  const Dataset dataset = SmallDataset(300, 41);
  TreeBundle v1 = BulkLoad(dataset);
  TreeBundle v2 = BulkLoadV2(dataset);
  ASSERT_TRUE(v1.tree->Finalize().ok());
  ASSERT_TRUE(v2.tree->Finalize().ok());
  EXPECT_EQ(v2.tree->options().format, kNodeFormatV2);
  EXPECT_EQ(v2.tree->num_objects(), v1.tree->num_objects());
  EXPECT_EQ(v2.tree->height(), v1.tree->height());
  EXPECT_EQ(v2.tree->root_cnt(), v1.tree->root_cnt());
  EXPECT_TRUE(v2.tree->ReadRootKcm().value() ==
              v1.tree->ReadRootKcm().value());
  EXPECT_LT(v2.pager->num_pages(), v1.pager->num_pages());

  SpatialKeywordQuery q;
  q.loc = Point{0.4, 0.4};
  q.doc = dataset.object(3).doc;
  q.k = 10;
  q.alpha = 0.5;
  const auto top_v1 = IndexTopK(*v1.tree, q).value();
  const auto top_v2 = IndexTopK(*v2.tree, q).value();
  ASSERT_EQ(top_v1.size(), top_v2.size());
  for (size_t i = 0; i < top_v1.size(); ++i) {
    EXPECT_EQ(top_v1[i].id, top_v2[i].id);
    EXPECT_EQ(top_v1[i].score, top_v2[i].score);  // bit-exact
  }
}

TEST(KcrTreeTest, V2IsImmutable) {
  const Dataset dataset = SmallDataset(60, 43);
  TreeBundle v2 = BulkLoadV2(dataset);
  SpatialObject extra;
  extra.id = 1000;
  extra.loc = Point{0.5, 0.5};
  extra.doc = dataset.object(0).doc;
  EXPECT_EQ(v2.tree->Insert(extra).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(
      v2.tree->Remove(dataset.object(0).id, dataset.object(0).loc).code(),
      StatusCode::kFailedPrecondition);
}

TEST(KcrTreeTest, V2ReopenAndMappedReadsPreserveSummaries) {
  const Dataset dataset = SmallDataset(250, 47);
  TempFile file("kcr_v2_reopen");
  uint32_t want_root_cnt;
  {
    auto pager = Pager::Create(file.path()).value();
    BufferPool pool(pager.get(), 4u << 20);
    KcrTree::Options options;
    options.capacity = 8;
    options.format = kNodeFormatV2;
    auto tree = KcrTree::BulkLoad(dataset, &pool, options).value();
    ASSERT_TRUE(tree->Finalize().ok());
    want_root_cnt = tree->root_cnt();
  }
  auto pager = Pager::Open(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  auto tree = KcrTree::Open(&pool).value();
  EXPECT_EQ(tree->options().format, kNodeFormatV2);
  EXPECT_EQ(tree->root_cnt(), want_root_cnt);
  ASSERT_TRUE(pager->EnableMappedReads().ok());
  pager->io_stats().Reset();
  // Decoded nodes (with their per-child dominator stats) come off the map.
  const auto decoded =
      tree->ReadDecodedNode(tree->SearchRoot(), /*use_cache=*/false);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  if (!decoded.value()->node.is_leaf) {
    EXPECT_EQ(decoded.value()->child_stats.size(),
              decoded.value()->node.inner_entries.size());
  }
  EXPECT_GT(pager->io_stats().mapped_reads(), 0u);
  EXPECT_EQ(pager->io_stats().physical_reads(), 0u);
}

TEST(KcrTreeTest, V2DetectsCorruptedNode) {
  const Dataset dataset = SmallDataset(250, 53);
  TempFile file("kcr_v2_corrupt");
  PageId victim;
  {
    auto pager = Pager::Create(file.path()).value();
    BufferPool pool(pager.get(), 4u << 20);
    KcrTree::Options options;
    options.capacity = 8;
    options.format = kNodeFormatV2;
    auto tree = KcrTree::BulkLoad(dataset, &pool, options).value();
    ASSERT_TRUE(tree->Finalize().ok());
    victim = tree->SearchRoot();
  }
  {
    auto pager = Pager::Open(file.path()).value();
    std::vector<uint8_t> page(pager->page_size());
    ASSERT_TRUE(pager->ReadPage(victim, page.data()).ok());
    page[kNodeHeaderBytesV2 + 5] ^= 0x10;
    ASSERT_TRUE(pager->WritePage(victim, page.data()).ok());
  }
  auto pager = Pager::Open(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  auto tree = KcrTree::Open(&pool).value();
  const auto read = tree->ReadDecodedNode(victim, /*use_cache=*/false);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace wsk
