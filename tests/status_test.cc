#include "common/status.h"

#include <gtest/gtest.h>

namespace wsk {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.ok());
  const std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

Status Inner(bool fail) {
  if (fail) return Status::Internal("inner failed");
  return Status::Ok();
}

Status Outer(bool fail) {
  WSK_RETURN_IF_ERROR(Inner(fail));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Outer(false).ok());
  EXPECT_EQ(Outer(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace wsk
