#include "common/geometry.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace wsk {
namespace {

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(Distance({-1, 0}, {1, 0}), 2.0);
}

TEST(RectTest, EmptyRect) {
  Rect r;
  EXPECT_TRUE(r.Empty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 0.0);
  EXPECT_FALSE(r.Contains(Point{0, 0}));
}

TEST(RectTest, ExtendFromEmpty) {
  Rect r;
  r.Extend(Point{2, 3});
  EXPECT_FALSE(r.Empty());
  EXPECT_EQ(r, Rect::FromPoint(Point{2, 3}));
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  EXPECT_TRUE(r.Contains(Point{2, 3}));
}

TEST(RectTest, ExtendGrows) {
  Rect r = Rect::FromPoint(Point{0, 0});
  r.Extend(Point{2, 1});
  EXPECT_DOUBLE_EQ(r.Area(), 2.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 3.0);
  EXPECT_TRUE(r.Contains(Point{1, 0.5}));
  EXPECT_FALSE(r.Contains(Point{3, 0.5}));
}

TEST(RectTest, ExtendRectIgnoresEmpty) {
  Rect r = Rect::FromPoint(Point{1, 1});
  Rect empty;
  r.Extend(empty);
  EXPECT_EQ(r, Rect::FromPoint(Point{1, 1}));
  empty.Extend(r);
  EXPECT_EQ(empty, r);
}

TEST(RectTest, ContainsRect) {
  const Rect outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.ContainsRect(Rect{1, 1, 2, 2}));
  EXPECT_TRUE(outer.ContainsRect(outer));
  EXPECT_FALSE(outer.ContainsRect(Rect{5, 5, 11, 6}));
  EXPECT_TRUE(outer.ContainsRect(Rect{}));  // empty is everywhere
}

TEST(RectTest, Intersects) {
  const Rect a{0, 0, 2, 2};
  EXPECT_TRUE(a.Intersects(Rect{1, 1, 3, 3}));
  EXPECT_TRUE(a.Intersects(Rect{2, 2, 3, 3}));  // touching counts
  EXPECT_FALSE(a.Intersects(Rect{2.1, 0, 3, 1}));
  EXPECT_FALSE(a.Intersects(Rect{}));
}

TEST(RectTest, Enlargement) {
  const Rect a{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect{0.2, 0.2, 0.8, 0.8}), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect{0, 0, 2, 1}), 1.0);
}

TEST(MinMaxDistTest, PointInside) {
  const Rect r{0, 0, 2, 2};
  EXPECT_DOUBLE_EQ(MinDist(Point{1, 1}, r), 0.0);
  EXPECT_DOUBLE_EQ(MaxDist(Point{1, 1}, r), Distance({1, 1}, {0, 0}));
}

TEST(MinMaxDistTest, PointOutside) {
  const Rect r{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(MinDist(Point{3, 0.5}, r), 2.0);
  EXPECT_DOUBLE_EQ(MaxDist(Point{3, 0.5}, r), Distance({3, 0.5}, {0, 0}));
  EXPECT_DOUBLE_EQ(MinDist(Point{2, 2}, r), Distance({2, 2}, {1, 1}));
}

TEST(MinMaxDistTest, EmptyRectIsInfinite) {
  const Rect r;
  EXPECT_TRUE(std::isinf(MinDist(Point{0, 0}, r)));
  EXPECT_TRUE(std::isinf(MaxDist(Point{0, 0}, r)));
}

// Property: for random rectangles and points, MinDist <= distance to any
// contained point <= MaxDist.
TEST(MinMaxDistTest, BoundsEveryContainedPoint) {
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    Rect r;
    r.Extend(Point{rng.NextDouble(), rng.NextDouble()});
    r.Extend(Point{rng.NextDouble(), rng.NextDouble()});
    const Point q{rng.NextDouble(-1, 2), rng.NextDouble(-1, 2)};
    const double lo = MinDist(q, r);
    const double hi = MaxDist(q, r);
    EXPECT_LE(lo, hi);
    for (int s = 0; s < 20; ++s) {
      const Point p{rng.NextDouble(r.min_x, r.max_x),
                    rng.NextDouble(r.min_y, r.max_y)};
      const double d = Distance(q, p);
      EXPECT_LE(lo, d + 1e-12);
      EXPECT_GE(hi, d - 1e-12);
    }
  }
}

TEST(RectTest, ToStringIsReadable) {
  const Rect r{0, 1, 2, 3};
  EXPECT_EQ(r.ToString(), "[0,2]x[1,3]");
}

}  // namespace
}  // namespace wsk
