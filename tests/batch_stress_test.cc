// Batch-collector stress test (CTest label: stress; CI reruns it under
// TSan). Eight client threads fire top-k requests at a batching
// QueryService — duplicates that dedupe, bypass-cache requests that must
// not, tiny deadlines that expire inside the collection window, and
// shared tokens a canceller thread fires mid-flight (exercising the
// solo-fallback path for deduped duplicates). Every future must resolve
// with a sane status and every OK answer must be bit-identical to the
// sequential baseline; the teardown path must drain a collector that
// still holds pending requests.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "service/query_service.h"

namespace wsk {
namespace {

class BatchStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_objects = 400;
    config.vocab_size = 60;
    config.seed = 55555;
    dataset_ = GenerateDataset(config);
    WhyNotEngine::Config engine_config;
    engine_config.node_capacity = 8;
    engine_ = WhyNotEngine::Build(&dataset_, engine_config).value();

    for (int i = 0; i < 6; ++i) {
      SpatialKeywordQuery q;
      q.loc = Point{0.15 * i + 0.1, 0.9 - 0.12 * i};
      std::vector<TermId> terms(dataset_.object(9 * i + 2).doc.begin(),
                                dataset_.object(9 * i + 2).doc.end());
      if (terms.size() > 4) terms.resize(4);
      q.doc = KeywordSet(std::move(terms));
      q.k = 5 + i;
      q.alpha = 0.5;
      queries_.push_back(q);
      baselines_.push_back(engine_->TopK(q).value());
    }
  }

  void ExpectMatchesBaseline(const std::vector<ScoredObject>& got,
                             size_t which) {
    const std::vector<ScoredObject>& want = baselines_[which];
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
      EXPECT_EQ(got[i].score, want[i].score);
    }
  }

  Dataset dataset_;
  std::unique_ptr<WhyNotEngine> engine_;
  std::vector<SpatialKeywordQuery> queries_;
  std::vector<std::vector<ScoredObject>> baselines_;
};

TEST_F(BatchStressTest, ConcurrentClientsGetExactAnswers) {
  QueryServiceConfig config;
  config.num_workers = 4;
  config.batch_max_size = 8;
  config.batch_window_ms = 0.5;
  QueryService service(engine_.get(), config);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 120;
  std::atomic<int> bad_status{0};

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t]() {
      // A shared token this thread cancels partway through its run, while
      // requests carrying it may sit in anyone's batch.
      CancelToken shared = CancelToken::Create();
      for (int i = 0; i < kPerThread; ++i) {
        const size_t which = static_cast<size_t>((t + i) % queries_.size());
        RequestOptions opts;
        const int mode = i % 10;
        if (mode == 7) opts.bypass_cache = true;
        if (mode == 8) opts.timeout_ms = 0.01;  // expires in the window
        if (mode == 9) opts.cancel = shared;
        if (i == kPerThread / 2) shared.Cancel();
        StatusOr<QueryService::TopKResponse> got =
            service.TopK(queries_[which], opts);
        switch (got.status().code()) {
          case StatusCode::kOk:
            ExpectMatchesBaseline(got.value().results, which);
            break;
          case StatusCode::kCancelled:
          case StatusCode::kDeadlineExceeded:
          case StatusCode::kResourceExhausted:
            break;
          default:
            bad_status.fetch_add(1);
            break;
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(bad_status.load(), 0);
  EXPECT_EQ(service.inflight(), 0u);

  const uint64_t batched = service.metrics().counter("batch.queries").value();
  EXPECT_GT(batched, 0u);
  // Reports stay coherent under load.
  EXPECT_NE(service.MetricsReport().find("batching "), std::string::npos);
}

TEST_F(BatchStressTest, TeardownDrainsPendingCollector) {
  // Destroy the service while futures are still pending in the collector:
  // the destructor must flush every one of them (no hung futures).
  std::vector<std::future<StatusOr<QueryService::TopKResponse>>> futures;
  {
    QueryServiceConfig config;
    config.num_workers = 2;
    config.batch_max_size = 16;
    config.batch_window_ms = 200.0;  // requests will still be pending
    QueryService service(engine_.get(), config);
    for (int i = 0; i < 24; ++i) {
      futures.push_back(
          service.SubmitTopK(queries_[static_cast<size_t>(i) % queries_.size()]));
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    StatusOr<QueryService::TopKResponse> got = futures[i].get();
    ASSERT_TRUE(got.ok()) << "future " << i << ": " << got.status().ToString();
    ExpectMatchesBaseline(got.value().results, i % queries_.size());
  }
}

}  // namespace
}  // namespace wsk
