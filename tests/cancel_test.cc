#include "common/cancel.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace wsk {
namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(CancelTokenTest, NullTokenNeverCancels) {
  CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check().ok());
  token.Cancel();  // no-op, not a crash
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, CreateThenCancel) {
  CancelToken token = CancelToken::Create();
  EXPECT_TRUE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check().ok());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, CopiesShareState) {
  CancelToken a = CancelToken::Create();
  CancelToken b = a;
  b.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_EQ(a.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, DeadlineExpires) {
  CancelToken token = CancelToken::WithTimeout(1.0);
  SleepMs(10);
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
  // A deadline is not a cancellation request.
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelTokenTest, GenerousDeadlineStaysOk) {
  CancelToken token = CancelToken::WithTimeout(60 * 1000.0);
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, DerivedObservesParentCancellation) {
  CancelToken parent = CancelToken::Create();
  CancelToken derived = parent.DeriveWithTimeout(60 * 1000.0);
  EXPECT_TRUE(derived.Check().ok());
  parent.Cancel();
  EXPECT_TRUE(derived.cancelled());
  EXPECT_EQ(derived.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, DerivedCancellationDoesNotPropagateUp) {
  CancelToken parent = CancelToken::Create();
  CancelToken derived = parent.DeriveWithTimeout(60 * 1000.0);
  derived.Cancel();
  EXPECT_FALSE(parent.cancelled());
  EXPECT_TRUE(parent.Check().ok());
  EXPECT_EQ(derived.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, DerivedDeadlineExpiresIndependently) {
  CancelToken parent = CancelToken::Create();
  CancelToken derived = parent.DeriveWithTimeout(1.0);
  SleepMs(10);
  EXPECT_EQ(derived.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(parent.Check().ok());
}

TEST(CancelTokenTest, DeriveFromNullIsDeadlineOnly) {
  CancelToken null_token;
  CancelToken derived = null_token.DeriveWithTimeout(1.0);
  EXPECT_TRUE(derived.valid());
  SleepMs(10);
  EXPECT_EQ(derived.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, CancellationWinsOverExpiredDeadline) {
  CancelToken token = CancelToken::WithTimeout(1.0);
  token.Cancel();
  SleepMs(10);  // deadline also expired by now
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ConcurrentCancelIsSafe) {
  CancelToken token = CancelToken::Create();
  std::thread canceller([token]() mutable { token.Cancel(); });
  while (!token.cancelled()) {
    // spin until the other thread's request becomes visible
  }
  canceller.join();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace wsk
