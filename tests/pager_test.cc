#include "storage/pager.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

std::vector<uint8_t> PatternPage(uint32_t page_size, uint8_t seed) {
  std::vector<uint8_t> page(page_size);
  for (uint32_t i = 0; i < page_size; ++i) {
    page[i] = static_cast<uint8_t>(seed + i);
  }
  return page;
}

TEST(PagerTest, CreateRejectsTinyPageSize) {
  TempFile file("pager_tiny");
  auto pager = Pager::Create(file.path(), 16);
  EXPECT_FALSE(pager.ok());
  EXPECT_EQ(pager.status().code(), StatusCode::kInvalidArgument);
}

TEST(PagerTest, AllocateIsConsecutive) {
  TempFile file("pager_alloc");
  auto pager = Pager::Create(file.path()).value();
  EXPECT_EQ(pager->AllocatePages(1), 0u);
  EXPECT_EQ(pager->AllocatePages(3), 1u);
  EXPECT_EQ(pager->AllocatePages(2), 4u);
  EXPECT_EQ(pager->num_pages(), 6u);
}

TEST(PagerTest, WriteReadRoundTrip) {
  TempFile file("pager_rw");
  auto pager = Pager::Create(file.path()).value();
  const PageId id = pager->AllocatePages(2);
  const auto page0 = PatternPage(pager->page_size(), 3);
  const auto page1 = PatternPage(pager->page_size(), 99);
  ASSERT_TRUE(pager->WritePage(id, page0.data()).ok());
  ASSERT_TRUE(pager->WritePage(id + 1, page1.data()).ok());

  std::vector<uint8_t> buf(pager->page_size());
  ASSERT_TRUE(pager->ReadPage(id, buf.data()).ok());
  EXPECT_EQ(buf, page0);
  ASSERT_TRUE(pager->ReadPage(id + 1, buf.data()).ok());
  EXPECT_EQ(buf, page1);
}

TEST(PagerTest, UnwrittenPageReadsAsZeros) {
  TempFile file("pager_zero");
  auto pager = Pager::Create(file.path()).value();
  const PageId id = pager->AllocatePages(1);
  std::vector<uint8_t> buf(pager->page_size(), 0xab);
  ASSERT_TRUE(pager->ReadPage(id, buf.data()).ok());
  for (uint8_t b : buf) EXPECT_EQ(b, 0);
}

TEST(PagerTest, OutOfRangeAccessFails) {
  TempFile file("pager_oor");
  auto pager = Pager::Create(file.path()).value();
  std::vector<uint8_t> buf(pager->page_size());
  EXPECT_EQ(pager->ReadPage(0, buf.data()).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(pager->WritePage(5, buf.data()).code(), StatusCode::kOutOfRange);
}

TEST(PagerTest, CountsPhysicalIo) {
  TempFile file("pager_io");
  auto pager = Pager::Create(file.path()).value();
  const PageId id = pager->AllocatePages(1);
  std::vector<uint8_t> buf(pager->page_size(), 1);
  ASSERT_TRUE(pager->WritePage(id, buf.data()).ok());
  ASSERT_TRUE(pager->ReadPage(id, buf.data()).ok());
  ASSERT_TRUE(pager->ReadPage(id, buf.data()).ok());
  EXPECT_EQ(pager->io_stats().physical_writes(), 1u);
  EXPECT_EQ(pager->io_stats().physical_reads(), 2u);
  pager->io_stats().Reset();
  EXPECT_EQ(pager->io_stats().physical_reads(), 0u);
}

TEST(PagerTest, ReopenSeesData) {
  TempFile file("pager_reopen");
  const auto page = PatternPage(kDefaultPageSize, 42);
  {
    auto pager = Pager::Create(file.path()).value();
    const PageId id = pager->AllocatePages(1);
    ASSERT_TRUE(pager->WritePage(id, page.data()).ok());
  }
  auto pager = Pager::Open(file.path()).value();
  EXPECT_EQ(pager->num_pages(), 1u);
  std::vector<uint8_t> buf(pager->page_size());
  ASSERT_TRUE(pager->ReadPage(0, buf.data()).ok());
  EXPECT_EQ(buf, page);
}

TEST(PagerTest, OpenMissingFileFails) {
  auto pager = Pager::Open("/tmp/wsk_definitely_missing_file.idx");
  EXPECT_FALSE(pager.ok());
  EXPECT_EQ(pager.status().code(), StatusCode::kIoError);
}

// Page-size sweep: the stack must work for any reasonable page size.
class PagerPageSizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PagerPageSizeSweep, RoundTripsAtEverySize) {
  const uint32_t page_size = GetParam();
  TempFile file("pager_size_" + std::to_string(page_size));
  auto pager = Pager::Create(file.path(), page_size).value();
  EXPECT_EQ(pager->page_size(), page_size);
  const PageId id = pager->AllocatePages(3);
  for (uint32_t i = 0; i < 3; ++i) {
    const auto page = PatternPage(page_size, static_cast<uint8_t>(i * 11));
    ASSERT_TRUE(pager->WritePage(id + i, page.data()).ok());
  }
  std::vector<uint8_t> buf(page_size);
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(pager->ReadPage(id + i, buf.data()).ok());
    EXPECT_EQ(buf, PatternPage(page_size, static_cast<uint8_t>(i * 11)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PagerPageSizeSweep,
                         ::testing::Values(64u, 128u, 512u, 4096u, 16384u));

// Pins the Open() size validation: a file whose length is not a whole
// number of pages (torn tail write, wrong page_size) must be rejected as
// Corruption instead of silently truncating to the last full page.
TEST(PagerTest, OpenRejectsNonPageMultiple) {
  TempFile file("pager_torn");
  {
    auto pager = Pager::Create(file.path()).value();
    const PageId id = pager->AllocatePages(1);
    std::vector<uint8_t> page(pager->page_size(), 5);
    ASSERT_TRUE(pager->WritePage(id, page.data()).ok());
  }
  {
    std::FILE* f = std::fopen(file.path().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char tail[3] = {1, 2, 3};
    ASSERT_EQ(std::fwrite(tail, 1, sizeof(tail), f), sizeof(tail));
    std::fclose(f);
  }
  auto pager = Pager::Open(file.path());
  ASSERT_FALSE(pager.ok());
  EXPECT_EQ(pager.status().code(), StatusCode::kCorruption);
  EXPECT_NE(pager.status().message().find("not a multiple"),
            std::string::npos);
}

TEST(PagerTest, MappedReadsMatchBufferedReads) {
  TempFile file("pager_map_eq");
  auto pager = Pager::Create(file.path()).value();
  const PageId id = pager->AllocatePages(3);
  for (uint32_t i = 0; i < 3; ++i) {
    const auto page = PatternPage(pager->page_size(), static_cast<uint8_t>(i));
    ASSERT_TRUE(pager->WritePage(id + i, page.data()).ok());
  }
  EXPECT_FALSE(pager->mapped());
  ASSERT_TRUE(pager->EnableMappedReads().ok());
  EXPECT_TRUE(pager->mapped());
  // Idempotent.
  ASSERT_TRUE(pager->EnableMappedReads().ok());

  for (uint32_t i = 0; i < 3; ++i) {
    auto span = pager->MappedSpan(id + i, pager->page_size());
    ASSERT_TRUE(span.ok()) << span.status().ToString();
    const auto want = PatternPage(pager->page_size(), static_cast<uint8_t>(i));
    EXPECT_EQ(std::memcmp(span.value(), want.data(), want.size()), 0);
    // ReadPage (the pread path) keeps working under the map and agrees.
    std::vector<uint8_t> buf(pager->page_size());
    ASSERT_TRUE(pager->ReadPage(id + i, buf.data()).ok());
    EXPECT_EQ(buf, want);
  }
}

TEST(PagerTest, MappedSpanCountsMappedReadsNotPhysical) {
  TempFile file("pager_map_io");
  auto pager = Pager::Create(file.path()).value();
  const PageId id = pager->AllocatePages(4);
  std::vector<uint8_t> page(pager->page_size(), 1);
  ASSERT_TRUE(pager->WritePage(id, page.data()).ok());
  ASSERT_TRUE(pager->EnableMappedReads().ok());
  pager->io_stats().Reset();

  ASSERT_TRUE(pager->MappedSpan(0, pager->page_size()).ok());
  // A span across 3 pages counts 3 mapped reads.
  ASSERT_TRUE(pager->MappedSpan(1, 3 * pager->page_size()).ok());
  // record=false peeks without accounting.
  ASSERT_TRUE(pager->MappedSpan(0, 16, /*record=*/false).ok());
  EXPECT_EQ(pager->io_stats().mapped_reads(), 4u);
  EXPECT_EQ(pager->io_stats().physical_reads(), 0u);
}

TEST(PagerTest, MappedSpanRejectsOutOfRange) {
  TempFile file("pager_map_oor");
  auto pager = Pager::Create(file.path()).value();
  pager->AllocatePages(2);
  std::vector<uint8_t> page(pager->page_size(), 1);
  ASSERT_TRUE(pager->WritePage(0, page.data()).ok());

  // Not mapped yet: precondition failure, not a crash.
  EXPECT_EQ(pager->MappedSpan(0, 8).status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(pager->EnableMappedReads().ok());
  EXPECT_EQ(pager->MappedSpan(2, 8).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(pager->MappedSpan(0, 3 * pager->page_size()).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(pager->MappedSpan(0, 0).status().code(), StatusCode::kOutOfRange);
}

TEST(PagerTest, MappedModeFreezesWrites) {
  TempFile file("pager_map_frozen");
  auto pager = Pager::Create(file.path()).value();
  const PageId id = pager->AllocatePages(1);
  std::vector<uint8_t> page(pager->page_size(), 1);
  ASSERT_TRUE(pager->WritePage(id, page.data()).ok());
  ASSERT_TRUE(pager->EnableMappedReads().ok());
  EXPECT_EQ(pager->WritePage(id, page.data()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PagerTest, EnableMappedReadsRejectsEmptyFile) {
  TempFile file("pager_map_empty");
  auto pager = Pager::Create(file.path()).value();
  EXPECT_EQ(pager->EnableMappedReads().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(pager->mapped());
}

// Pages allocated but never written sit past the file's physical end; the
// map is sized to num_pages, so they must read as zeros, same as ReadPage.
TEST(PagerTest, MappedSpanOverUnwrittenTailReadsZeros) {
  TempFile file("pager_map_tail");
  auto pager = Pager::Create(file.path()).value();
  const PageId id = pager->AllocatePages(2);
  std::vector<uint8_t> page(pager->page_size(), 9);
  ASSERT_TRUE(pager->WritePage(id, page.data()).ok());  // page 1 unwritten
  ASSERT_TRUE(pager->EnableMappedReads().ok());
  auto span = pager->MappedSpan(id + 1, pager->page_size());
  ASSERT_TRUE(span.ok()) << span.status().ToString();
  for (uint32_t i = 0; i < pager->page_size(); ++i) {
    ASSERT_EQ(span.value()[i], 0);
  }
}

TEST(PagerTest, FaultInjectionHookFiresOnRead) {
  TempFile file("pager_fault");
  auto pager = Pager::Create(file.path()).value();
  const PageId id = pager->AllocatePages(2);
  std::vector<uint8_t> buf(pager->page_size(), 7);
  ASSERT_TRUE(pager->WritePage(id, buf.data()).ok());
  ASSERT_TRUE(pager->WritePage(id + 1, buf.data()).ok());

  pager->set_read_fault_hook([](PageId page) {
    if (page == 1) return Status::IoError("injected");
    return Status::Ok();
  });
  EXPECT_TRUE(pager->ReadPage(0, buf.data()).ok());
  const Status failed = pager->ReadPage(1, buf.data());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_EQ(failed.message(), "injected");

  pager->set_read_fault_hook(nullptr);
  EXPECT_TRUE(pager->ReadPage(1, buf.data()).ok());
}

}  // namespace
}  // namespace wsk
