// Prometheus exposition-format lint over QueryService::PrometheusReport()
// (docs/OBSERVABILITY.md "Prometheus export"). A scrape target that emits
// malformed exposition text fails silently at the collector, not in CI —
// so this test parses the full report like a strict scraper would:
//
//   - every # TYPE is immediately preceded by its # HELP, each family is
//     declared once, and the type is counter/gauge/histogram;
//   - every sample belongs to a previously declared family (exactly, or
//     via the _bucket/_sum/_count histogram suffixes);
//   - metric names and label keys obey the Prometheus grammar, label
//     values use only valid escapes, and values parse as finite numbers;
//   - counter families follow the _total naming convention and never go
//     negative;
//   - histogram buckets are cumulative (monotone non-decreasing), their
//     le bounds strictly increase, the +Inf bucket comes last and equals
//     _count, and _sum/_count are present.
//
// The linter itself is exercised against hand-written bad documents so a
// lint pass means the rules are actually enforced.
#include "service/query_service.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "data/generator.h"
#include "segment/segmented_engine.h"

namespace wsk {
namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_' ||
        name[0] == ':')) {
    return false;
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      return false;
    }
  }
  return true;
}

bool ValidLabelKey(const std::string& key) {
  if (key.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(key[0])) || key[0] == '_')) {
    return false;
  }
  for (char c : key) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

// Parses `name{k="v",...} value`; appends errors instead of throwing.
bool ParseSample(const std::string& line, Sample* out,
                 std::vector<std::string>* errors) {
  size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  out->name = line.substr(0, i);
  if (!ValidMetricName(out->name)) {
    errors->push_back("invalid metric name: " + line);
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      size_t eq = line.find('=', i);
      if (eq == std::string::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        errors->push_back("malformed labels: " + line);
        return false;
      }
      const std::string key = line.substr(i, eq - i);
      if (!ValidLabelKey(key)) {
        errors->push_back("invalid label key '" + key + "': " + line);
        return false;
      }
      std::string value;
      size_t j = eq + 2;  // past the opening quote
      for (; j < line.size() && line[j] != '"'; ++j) {
        if (line[j] == '\\') {
          if (j + 1 >= line.size() ||
              (line[j + 1] != '\\' && line[j + 1] != '"' &&
               line[j + 1] != 'n')) {
            errors->push_back("invalid label escape: " + line);
            return false;
          }
          ++j;
        }
        value += line[j];
      }
      if (j >= line.size()) {
        errors->push_back("unterminated label value: " + line);
        return false;
      }
      out->labels[key] = value;
      i = j + 1;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      errors->push_back("unterminated label set: " + line);
      return false;
    }
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') {
    errors->push_back("missing value separator: " + line);
    return false;
  }
  const std::string value_str = line.substr(i + 1);
  char* end = nullptr;
  out->value = std::strtod(value_str.c_str(), &end);
  if (end == value_str.c_str() || *end != '\0' || !std::isfinite(out->value)) {
    errors->push_back("unparseable sample value: " + line);
    return false;
  }
  return true;
}

// Strict single-pass lint of one exposition document. Returns every
// violation found (empty = clean).
std::vector<std::string> LintExposition(const std::string& text) {
  std::vector<std::string> errors;
  std::map<std::string, std::string> family_type;  // name -> type
  std::set<std::string> help_seen;
  struct Bucket {
    double le;
    bool inf;
    double count;
  };
  std::map<std::string, std::vector<Bucket>> buckets;
  std::map<std::string, double> hist_count;
  std::set<std::string> hist_sum;
  std::set<std::string> samples_seen;

  std::istringstream in(text);
  std::string line;
  std::string last_help_name;
  while (std::getline(in, line)) {
    if (line.empty()) {
      errors.push_back("blank line in exposition");
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string name;
      ls >> name;
      if (!ValidMetricName(name)) {
        errors.push_back("invalid HELP name: " + line);
      }
      if (!help_seen.insert(name).second) {
        errors.push_back("duplicate HELP for " + name);
      }
      last_help_name = name;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ls(line.substr(7));
      std::string name, type;
      ls >> name >> type;
      if (name != last_help_name) {
        errors.push_back("TYPE not immediately preceded by its HELP: " + line);
      }
      if (type != "counter" && type != "gauge" && type != "histogram") {
        errors.push_back("unknown type: " + line);
      }
      if (!family_type.emplace(name, type).second) {
        errors.push_back("family declared twice: " + name);
      }
      if (type == "counter" &&
          (name.size() < 6 ||
           name.compare(name.size() - 6, 6, "_total") != 0)) {
        errors.push_back("counter not named *_total: " + name);
      }
      continue;
    }
    if (line[0] == '#') {
      errors.push_back("unrecognized comment line: " + line);
      continue;
    }

    Sample sample;
    if (!ParseSample(line, &sample, &errors)) continue;
    samples_seen.insert(sample.name);

    // Resolve the declaring family: exact, or histogram suffix.
    std::string family = sample.name;
    std::string suffix;
    if (family_type.find(family) == family_type.end()) {
      for (const char* s : {"_bucket", "_sum", "_count"}) {
        const size_t n = std::string(s).size();
        if (family.size() > n &&
            family.compare(family.size() - n, n, s) == 0) {
          const std::string base = family.substr(0, family.size() - n);
          const auto it = family_type.find(base);
          if (it != family_type.end() && it->second == "histogram") {
            family = base;
            suffix = s;
            break;
          }
        }
      }
    }
    const auto it = family_type.find(family);
    if (it == family_type.end()) {
      errors.push_back("sample without preceding TYPE: " + sample.name);
      continue;
    }
    if (it->second == "counter" && sample.value < 0.0) {
      errors.push_back("negative counter: " + line);
    }
    if (it->second == "histogram") {
      if (suffix == "_bucket") {
        const auto le = sample.labels.find("le");
        if (le == sample.labels.end()) {
          errors.push_back("histogram bucket without le: " + line);
          continue;
        }
        Bucket b;
        b.inf = le->second == "+Inf";
        b.le = b.inf ? 0.0 : std::strtod(le->second.c_str(), nullptr);
        b.count = sample.value;
        buckets[family].push_back(b);
      } else if (suffix == "_count") {
        hist_count[family] = sample.value;
      } else if (suffix == "_sum") {
        hist_sum.insert(family);
      } else {
        errors.push_back("bare sample of histogram family: " + line);
      }
    }
  }

  for (const auto& [name, type] : family_type) {
    if (type != "histogram") continue;
    const auto bs = buckets.find(name);
    if (bs == buckets.end() || bs->second.empty()) {
      errors.push_back("histogram without buckets: " + name);
      continue;
    }
    if (hist_sum.find(name) == hist_sum.end()) {
      errors.push_back("histogram without _sum: " + name);
    }
    if (hist_count.find(name) == hist_count.end()) {
      errors.push_back("histogram without _count: " + name);
      continue;
    }
    const std::vector<Bucket>& bl = bs->second;
    for (size_t i = 0; i < bl.size(); ++i) {
      if (i > 0 && bl[i].count < bl[i - 1].count) {
        errors.push_back("non-cumulative buckets: " + name);
      }
      if (i > 0 && !bl[i].inf && bl[i].le <= bl[i - 1].le) {
        errors.push_back("le bounds not increasing: " + name);
      }
      if (bl[i].inf && i + 1 != bl.size()) {
        errors.push_back("+Inf bucket not last: " + name);
      }
    }
    if (!bl.back().inf) {
      errors.push_back("missing +Inf bucket: " + name);
    } else if (bl.back().count != hist_count[name]) {
      errors.push_back("+Inf bucket != _count: " + name);
    }
  }
  return errors;
}

std::string JoinErrors(const std::vector<std::string>& errors) {
  std::string out;
  for (const std::string& e : errors) out += e + "\n";
  return out;
}

SpatialKeywordQuery QueryFor(const Dataset& dataset, ObjectId seed_object) {
  SpatialKeywordQuery q;
  q.loc = Point{0.4, 0.4};
  std::vector<TermId> terms(dataset.object(seed_object).doc.begin(),
                            dataset.object(seed_object).doc.end());
  if (terms.size() > 3) terms.resize(3);
  q.doc = KeywordSet(std::move(terms));
  q.k = 5;
  q.alpha = 0.5;
  return q;
}

TEST(PrometheusLintTest, FrozenServiceReportIsCleanExposition) {
  GeneratorConfig gen;
  gen.num_objects = 800;
  gen.vocab_size = 80;
  gen.seed = 777;
  Dataset dataset = GenerateDataset(gen);
  auto engine = WhyNotEngine::Build(&dataset, {}).value();

  QueryServiceConfig config;
  config.telemetry.sample_every = 1;  // populate the telemetry families
  QueryService service(engine.get(), config);
  const SpatialKeywordQuery query = QueryFor(dataset, 12);
  ASSERT_TRUE(service.TopK(query).ok());
  ASSERT_TRUE(service.TopK(query).ok());  // cache hit
  const ObjectId missing = engine->ObjectAtPosition(query, 2 * query.k).value();
  ASSERT_TRUE(
      service.WhyNot(WhyNotAlgorithm::kKcrBased, query, {missing}, {}).ok());

  const std::string report = service.PrometheusReport();
  const std::vector<std::string> errors = LintExposition(report);
  EXPECT_TRUE(errors.empty()) << JoinErrors(errors);

  // The families this PR exports are present, not just well-formed.
  EXPECT_NE(report.find("wsk_trace_dropped_events_total"), std::string::npos);
  EXPECT_NE(report.find("wsk_telemetry_requests_observed_total"),
            std::string::npos);
  EXPECT_NE(report.find("wsk_window_request_rate{window=\"1s\"}"),
            std::string::npos);
  EXPECT_NE(report.find("wsk_window_latency_p99_seconds{window=\"60s\"}"),
            std::string::npos);
  EXPECT_NE(report.find("wsk_build_info{version="), std::string::npos);
  EXPECT_NE(report.find("wsk_process_uptime_seconds"), std::string::npos);
  EXPECT_NE(report.find("wsk_process_resident_memory_bytes"),
            std::string::npos);
}

TEST(PrometheusLintTest, LiveBatchServiceReportIsCleanExposition) {
  GeneratorConfig gen;
  gen.num_objects = 400;
  gen.vocab_size = 60;
  gen.seed = 4242;
  Dataset dataset = GenerateDataset(gen);
  SegmentedEngine::Config engine_config;
  engine_config.delta_capacity = 32;
  engine_config.auto_merge = false;
  auto engine = SegmentedEngine::Build(dataset, engine_config).value();

  QueryServiceConfig config;
  config.batch_max_size = 4;  // expose the batch gauge alongside the rest
  QueryService service(engine.get(), config);
  ASSERT_TRUE(service.Insert(Point{0.1, 0.1}, {"alpha", "beta"}).ok());
  ASSERT_TRUE(service.TopK(QueryFor(dataset, 7)).ok());

  const std::string report = service.PrometheusReport();
  const std::vector<std::string> errors = LintExposition(report);
  EXPECT_TRUE(errors.empty()) << JoinErrors(errors);

  // The live backend adds the segment and background-merge families.
  EXPECT_NE(report.find("wsk_segment_inserts_total"), std::string::npos);
  EXPECT_NE(report.find("wsk_bg_merge_passes_total"), std::string::npos);
  EXPECT_NE(report.find("wsk_bg_merge_busy_seconds_total"),
            std::string::npos);
  EXPECT_NE(report.find("wsk_batch_pending_requests"), std::string::npos);
}

// The linter must actually reject bad documents, or the pass above is
// meaningless.
TEST(PrometheusLintTest, LinterCatchesMalformedExposition) {
  EXPECT_TRUE(LintExposition("# HELP wsk_x Fine.\n"
                             "# TYPE wsk_x gauge\n"
                             "wsk_x 1\n")
                  .empty());

  // TYPE without its HELP line directly above.
  EXPECT_FALSE(LintExposition("# TYPE wsk_x gauge\nwsk_x 1\n").empty());
  // Sample of an undeclared family.
  EXPECT_FALSE(LintExposition("wsk_y 1\n").empty());
  // Counter without the _total suffix.
  EXPECT_FALSE(LintExposition("# HELP wsk_c Bad.\n"
                              "# TYPE wsk_c counter\n"
                              "wsk_c 1\n")
                   .empty());
  // Invalid metric name and unparseable value.
  EXPECT_FALSE(LintExposition("# HELP wsk_x Fine.\n"
                              "# TYPE wsk_x gauge\n"
                              "wsk-x 1\n")
                   .empty());
  EXPECT_FALSE(LintExposition("# HELP wsk_x Fine.\n"
                              "# TYPE wsk_x gauge\n"
                              "wsk_x one\n")
                   .empty());
  // Bad label escape.
  EXPECT_FALSE(LintExposition("# HELP wsk_x Fine.\n"
                              "# TYPE wsk_x gauge\n"
                              "wsk_x{l=\"a\\q\"} 1\n")
                   .empty());

  const std::string hist_prefix =
      "# HELP wsk_h Fine.\n"
      "# TYPE wsk_h histogram\n";
  // Non-cumulative bucket counts.
  EXPECT_FALSE(LintExposition(hist_prefix +
                              "wsk_h_bucket{le=\"0.1\"} 5\n"
                              "wsk_h_bucket{le=\"0.2\"} 3\n"
                              "wsk_h_bucket{le=\"+Inf\"} 5\n"
                              "wsk_h_sum 1\n"
                              "wsk_h_count 5\n")
                   .empty());
  // +Inf bucket disagrees with _count.
  EXPECT_FALSE(LintExposition(hist_prefix +
                              "wsk_h_bucket{le=\"0.1\"} 5\n"
                              "wsk_h_bucket{le=\"+Inf\"} 5\n"
                              "wsk_h_sum 1\n"
                              "wsk_h_count 6\n")
                   .empty());
  // Missing _sum.
  EXPECT_FALSE(LintExposition(hist_prefix +
                              "wsk_h_bucket{le=\"+Inf\"} 1\n"
                              "wsk_h_count 1\n")
                   .empty());
  // A clean histogram passes.
  EXPECT_TRUE(LintExposition(hist_prefix +
                             "wsk_h_bucket{le=\"0.1\"} 3\n"
                             "wsk_h_bucket{le=\"0.2\"} 5\n"
                             "wsk_h_bucket{le=\"+Inf\"} 5\n"
                             "wsk_h_sum 0.4\n"
                             "wsk_h_count 5\n")
                  .empty());
}

}  // namespace
}  // namespace wsk
