#include "core/explain.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "data/generator.h"
#include "observability/trace.h"

namespace wsk {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_objects = 300;
    config.vocab_size = 40;
    config.seed = 17;
    dataset_ = GenerateDataset(config);
    WhyNotEngine::Config engine_config;
    engine_config.node_capacity = 16;
    auto built = WhyNotEngine::Build(&dataset_, engine_config);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    engine_ = std::move(built).value();

    query_.loc = Point{0.5, 0.5};
    query_.doc = dataset_.object(7).doc;
    query_.k = 5;
    query_.alpha = 0.5;
  }

  ObjectId ObjectAt(uint32_t position) {
    auto id = engine_->ObjectAtPosition(query_, position);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return id.value();
  }

  Dataset dataset_;
  std::unique_ptr<WhyNotEngine> engine_;
  SpatialKeywordQuery query_;
};

TEST_F(ExplainTest, MissingObjectIsDecomposed) {
  const ObjectId missing = ObjectAt(20);
  auto got = ExplainMiss(*engine_, query_, missing);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const MissExplanation& e = got.value();

  EXPECT_FALSE(e.in_result);
  EXPECT_EQ(e.rank, 20u);
  EXPECT_EQ(e.k, query_.k);
  // The decomposition is exact: ST = spatial + textual (Eqn 1).
  EXPECT_NEAR(e.missing_score, e.spatial_term + e.textual_term, 1e-12);
  // A missing object scores below the k-th result.
  EXPECT_GT(e.kth_score, e.missing_score);
  EXPECT_NEAR(e.deficit, e.kth_score - e.missing_score, 1e-12);
  EXPECT_GT(e.deficit, 0.0);
  EXPECT_EQ(e.query_keywords, query_.doc.size());
  EXPECT_LE(e.matched_keywords, e.query_keywords);

  const std::string text = e.ToString();
  EXPECT_NE(text.find("ranks 20"), std::string::npos);
  EXPECT_NE(text.find("deficit"), std::string::npos);
}

TEST_F(ExplainTest, InResultObjectIsReported) {
  const ObjectId present = ObjectAt(1);
  auto got = ExplainMiss(*engine_, query_, present);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  const MissExplanation& e = got.value();
  EXPECT_TRUE(e.in_result);
  EXPECT_EQ(e.rank, 1u);
  EXPECT_EQ(e.deficit, 0.0);
  EXPECT_NE(e.ToString().find("inside the top-5"), std::string::npos);
}

TEST_F(ExplainTest, MatchedKeywordsCountIntersection) {
  // The query doc is object 7's doc, so object 7 matches every keyword.
  auto got = ExplainMiss(*engine_, query_, 7);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().matched_keywords, got.value().query_keywords);
}

TEST_F(ExplainTest, RejectsBadArguments) {
  EXPECT_FALSE(
      ExplainMiss(*engine_, query_, static_cast<ObjectId>(dataset_.size()))
          .ok());
  SpatialKeywordQuery zero_k = query_;
  zero_k.k = 0;
  EXPECT_FALSE(ExplainMiss(*engine_, zero_k, 0).ok());
}

TEST_F(ExplainTest, TraceReceivesSpanAndAnnotation) {
  const ObjectId missing = ObjectAt(20);
  TraceRecorder recorder;
  auto got = ExplainMiss(*engine_, query_, missing, &recorder);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  // One explain span plus one annotation carrying the explanation.
  EXPECT_EQ(recorder.StageCount(TraceStage::kExplain), 2u);
  bool found_annotation = false;
  for (const TraceEvent& e : recorder.Events()) {
    if (e.stage == TraceStage::kExplain && e.instant) {
      found_annotation = true;
      EXPECT_EQ(e.arg, static_cast<int64_t>(missing));
      EXPECT_EQ(e.detail, got.value().ToString());
    }
  }
  EXPECT_TRUE(found_annotation);
  // The inner ranking traversals report through the same recorder.
  EXPECT_GT(recorder.counter(TraceCounter::kNodesVisited), 0u);
  // The annotation lands in the exported JSON.
  EXPECT_NE(recorder.ToChromeTraceJson().find("\"name\":\"explain\""),
            std::string::npos);
}

}  // namespace
}  // namespace wsk
