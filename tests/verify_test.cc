#include "index/verify.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

Dataset SmallDataset(uint32_t n, uint64_t seed) {
  GeneratorConfig config;
  config.num_objects = n;
  config.vocab_size = 30;
  config.seed = seed;
  return GenerateDataset(config);
}

TEST(VerifyTest, BulkLoadedSetRTreePasses) {
  const Dataset dataset = SmallDataset(300, 1);
  TempFile file("verify_setr");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  SetRTree::Options options;
  options.capacity = 8;
  auto tree = SetRTree::BulkLoad(dataset, &pool, options).value();
  VerifyStats stats;
  EXPECT_TRUE(VerifySetRTree(*tree, &stats).ok());
  EXPECT_EQ(stats.objects_seen, dataset.size());
  EXPECT_GT(stats.nodes_visited, 1u);
}

TEST(VerifyTest, InsertBuiltSetRTreePasses) {
  const Dataset dataset = SmallDataset(120, 2);
  TempFile file("verify_setr_ins");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  SetRTree::Options options;
  options.capacity = 6;
  auto tree =
      SetRTree::CreateEmpty(&pool, dataset.diagonal(), options).value();
  for (const SpatialObject& o : dataset.objects()) {
    ASSERT_TRUE(tree->Insert(o).ok());
  }
  ASSERT_TRUE(tree->Finalize().ok());
  EXPECT_TRUE(VerifySetRTree(*tree).ok());
}

TEST(VerifyTest, BulkLoadedKcrTreePasses) {
  const Dataset dataset = SmallDataset(300, 3);
  TempFile file("verify_kcr");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  KcrTree::Options options;
  options.capacity = 8;
  auto tree = KcrTree::BulkLoad(dataset, &pool, options).value();
  VerifyStats stats;
  EXPECT_TRUE(VerifyKcrTree(*tree, &stats).ok());
  EXPECT_EQ(stats.objects_seen, dataset.size());
}

TEST(VerifyTest, InsertBuiltKcrTreePasses) {
  const Dataset dataset = SmallDataset(120, 4);
  TempFile file("verify_kcr_ins");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  KcrTree::Options options;
  options.capacity = 6;
  auto tree =
      KcrTree::CreateEmpty(&pool, dataset.diagonal(), options).value();
  for (const SpatialObject& o : dataset.objects()) {
    ASSERT_TRUE(tree->Insert(o).ok());
  }
  ASSERT_TRUE(tree->Finalize().ok());
  EXPECT_TRUE(VerifyKcrTree(*tree).ok());
}

TEST(VerifyTest, EmptyTreesPass) {
  Dataset dataset;
  TempFile file("verify_empty");
  auto pager = Pager::Create(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  SetRTree::Options options;
  auto tree = SetRTree::BulkLoad(dataset, &pool, options).value();
  EXPECT_TRUE(VerifySetRTree(*tree).ok());
}

TEST(VerifyTest, DetectsCorruptedNodePage) {
  const Dataset dataset = SmallDataset(300, 5);
  TempFile file("verify_corrupt");
  PageId victim;
  {
    auto pager = Pager::Create(file.path()).value();
    BufferPool pool(pager.get(), 4u << 20);
    SetRTree::Options options;
    options.capacity = 8;
    auto tree = SetRTree::BulkLoad(dataset, &pool, options).value();
    ASSERT_TRUE(tree->Finalize().ok());
    // The root is an inner node; smash the count field of its first child.
    const SetRTree::Node root = tree->ReadNode(tree->SearchRoot()).value();
    ASSERT_FALSE(root.is_leaf);
    victim = root.inner_entries[0].child;
  }
  {
    // Shrink the child's entry count to 1: the remaining entries vanish,
    // so the parent's recorded union/intersection sets (and the object
    // count) no longer match the reachable subtree.
    auto pager = Pager::Open(file.path()).value();
    std::vector<uint8_t> page(pager->page_size());
    ASSERT_TRUE(pager->ReadPage(victim, page.data()).ok());
    page[4] = 1;
    page[5] = page[6] = page[7] = 0;
    ASSERT_TRUE(pager->WritePage(victim, page.data()).ok());
  }
  auto pager = Pager::Open(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  auto tree = SetRTree::Open(&pool).value();
  const Status status = VerifySetRTree(*tree);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  // The diagnostic names the first violated invariant: the parent entry's
  // recorded union set no longer covers the (shrunken) subtree.
  EXPECT_NE(status.message().find("entry union set differs from subtree"),
            std::string::npos)
      << status.ToString();
}

TEST(VerifyTest, DetectsCountMismatchInKcrEntry) {
  const Dataset dataset = SmallDataset(200, 6);
  TempFile file("verify_kcr_cnt");
  PageId root_page;
  uint32_t pages_per_node;
  {
    auto pager = Pager::Create(file.path()).value();
    BufferPool pool(pager.get(), 4u << 20);
    KcrTree::Options options;
    options.capacity = 8;
    auto tree = KcrTree::BulkLoad(dataset, &pool, options).value();
    ASSERT_TRUE(tree->Finalize().ok());
    root_page = tree->SearchRoot();
    pages_per_node = tree->pages_per_node();
  }
  {
    // Flip a byte in the middle of the root node's entry area: with high
    // probability this lands in an entry's cnt or MBR.
    auto pager = Pager::Open(file.path()).value();
    std::vector<uint8_t> page(pager->page_size());
    ASSERT_TRUE(pager->ReadPage(root_page, page.data()).ok());
    page[8 + 36] ^= 0x5a;  // first entry's cnt field (child 4 + rect 32)
    ASSERT_TRUE(pager->WritePage(root_page, page.data()).ok());
    (void)pages_per_node;
  }
  auto pager = Pager::Open(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  auto tree = KcrTree::Open(&pool).value();
  const Status status = VerifyKcrTree(*tree);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("entry cnt differs from subtree"),
            std::string::npos)
      << status.ToString();
}

// Byte-level corruption injected through the pager must always surface as
// a Corruption status whose message names the violated invariant (and the
// offending page where the walk can attribute one) — never as a crash or a
// silent pass.

// Zeroing a child's entry-count field empties the node.
TEST(VerifyTest, DetectsEmptyNode) {
  const Dataset dataset = SmallDataset(300, 7);
  TempFile file("verify_empty_node");
  PageId victim;
  {
    auto pager = Pager::Create(file.path()).value();
    BufferPool pool(pager.get(), 4u << 20);
    SetRTree::Options options;
    options.capacity = 8;
    auto tree = SetRTree::BulkLoad(dataset, &pool, options).value();
    ASSERT_TRUE(tree->Finalize().ok());
    const SetRTree::Node root = tree->ReadNode(tree->SearchRoot()).value();
    ASSERT_FALSE(root.is_leaf);
    victim = root.inner_entries[0].child;
  }
  {
    auto pager = Pager::Open(file.path()).value();
    std::vector<uint8_t> page(pager->page_size());
    ASSERT_TRUE(pager->ReadPage(victim, page.data()).ok());
    page[4] = page[5] = page[6] = page[7] = 0;  // count u32 at offset 4
    ASSERT_TRUE(pager->WritePage(victim, page.data()).ok());
  }
  auto pager = Pager::Open(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  auto tree = SetRTree::Open(&pool).value();
  const Status status = VerifySetRTree(*tree);
  ASSERT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
  const std::string want =
      "node " + std::to_string(victim) + ": empty node";
  EXPECT_NE(status.message().find(want), std::string::npos)
      << status.ToString();
}

// Flipping a leaf's kind byte turns it into an inner node at depth 1.
TEST(VerifyTest, DetectsLeafFlagFlip) {
  const Dataset dataset = SmallDataset(300, 8);
  TempFile file("verify_leaf_flag");
  PageId victim;
  {
    auto pager = Pager::Create(file.path()).value();
    BufferPool pool(pager.get(), 4u << 20);
    SetRTree::Options options;
    options.capacity = 8;
    auto tree = SetRTree::BulkLoad(dataset, &pool, options).value();
    ASSERT_TRUE(tree->Finalize().ok());
    // Descend the leftmost path to a leaf.
    PageId page = tree->SearchRoot();
    SetRTree::Node node = tree->ReadNode(page).value();
    while (!node.is_leaf) {
      page = node.inner_entries[0].child;
      node = tree->ReadNode(page).value();
    }
    victim = page;
  }
  {
    auto pager = Pager::Open(file.path()).value();
    std::vector<uint8_t> page(pager->page_size());
    ASSERT_TRUE(pager->ReadPage(victim, page.data()).ok());
    ASSERT_EQ(page[0], 0);  // leaf kind
    page[0] = 1;            // now claims to be inner
    ASSERT_TRUE(pager->WritePage(victim, page.data()).ok());
  }
  auto pager = Pager::Open(file.path()).value();
  BufferPool pool(pager.get(), 4u << 20);
  auto tree = SetRTree::Open(&pool).value();
  const Status status = VerifySetRTree(*tree);
  ASSERT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
  const std::string want =
      "node " + std::to_string(victim) + ": leaf flag inconsistent with depth";
  EXPECT_NE(status.message().find(want), std::string::npos)
      << status.ToString();
}

// An entry count larger than the node can physically hold must be rejected
// at decode time (it would otherwise read past the node buffer).
TEST(VerifyTest, DetectsEntryCountOverflow) {
  const Dataset dataset = SmallDataset(200, 9);
  TempFile file("verify_count_overflow");
  PageId victim;
  for (const bool kcr : {false, true}) {
    SCOPED_TRACE(kcr ? "KcrTree" : "SetRTree");
    {
      auto pager = Pager::Create(file.path()).value();
      BufferPool pool(pager.get(), 4u << 20);
      if (kcr) {
        KcrTree::Options options;
        options.capacity = 8;
        auto tree = KcrTree::BulkLoad(dataset, &pool, options).value();
        ASSERT_TRUE(tree->Finalize().ok());
        victim = tree->SearchRoot();
      } else {
        SetRTree::Options options;
        options.capacity = 8;
        auto tree = SetRTree::BulkLoad(dataset, &pool, options).value();
        ASSERT_TRUE(tree->Finalize().ok());
        victim = tree->SearchRoot();
      }
    }
    {
      auto pager = Pager::Open(file.path()).value();
      std::vector<uint8_t> page(pager->page_size());
      ASSERT_TRUE(pager->ReadPage(victim, page.data()).ok());
      page[4] = page[5] = 0xff;  // count ~= 65535, far beyond any node
      ASSERT_TRUE(pager->WritePage(victim, page.data()).ok());
    }
    auto pager = Pager::Open(file.path()).value();
    BufferPool pool(pager.get(), 4u << 20);
    Status status;
    if (kcr) {
      auto tree = KcrTree::Open(&pool).value();
      status = VerifyKcrTree(*tree);
    } else {
      auto tree = SetRTree::Open(&pool).value();
      status = VerifySetRTree(*tree);
    }
    ASSERT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
    const std::string want = "node " + std::to_string(victim) +
                             ": entry count overflows the node";
    EXPECT_NE(status.message().find(want), std::string::npos)
        << status.ToString();
  }
}

}  // namespace
}  // namespace wsk
