// Tie-breaking contract: when several refinements achieve the exact
// minimum penalty, every algorithm returns the same documented winner —
// the basic refinement (doc0 with an enlarged k') if it ties the optimum,
// otherwise the co-optimal candidate earliest in the canonical enumeration
// order (edit distance ascending, benefit descending, keyword set
// ascending) — independent of optimization switches and thread count.
//
// Tie instances are mined from the seeded scenario stream using the
// oracle's co-optimal set, so the suite keeps covering real ties as the
// generator evolves instead of depending on one hand-built coincidence.
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/whynot.h"
#include "testing/oracle.h"
#include "testing/scenario_gen.h"

namespace wsk {
namespace {

constexpr WhyNotAlgorithm kAlgorithms[] = {
    WhyNotAlgorithm::kBasic,
    WhyNotAlgorithm::kAdvanced,
    WhyNotAlgorithm::kKcrBased,
};

struct TieInstance {
  testing::WhyNotScenario scenario;
  testing::OracleResult oracle;
};

// Scans the seed stream for instances whose minimum penalty is achieved by
// at least two refinements. Mined once and shared across the tests below.
class WhyNotTieBreakTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    instances_ = new std::vector<TieInstance>();
    constexpr uint64_t kMaxSeed = 400;
    constexpr size_t kWanted = 10;
    for (uint64_t seed = 1; seed <= kMaxSeed && instances_->size() < kWanted;
         ++seed) {
      std::optional<testing::WhyNotScenario> scenario =
          testing::MakeScenario(seed);
      if (!scenario.has_value()) continue;
      testing::OracleResult oracle = testing::SolveWhyNotOracle(
          scenario->dataset, scenario->query, scenario->missing,
          scenario->options.lambda);
      if (oracle.already_in_result || oracle.co_optimal.size() < 2) continue;
      instances_->push_back(
          TieInstance{*std::move(scenario), std::move(oracle)});
    }
  }

  static void TearDownTestSuite() {
    delete instances_;
    instances_ = nullptr;
  }

  static std::vector<TieInstance>* instances_;
};

std::vector<TieInstance>* WhyNotTieBreakTest::instances_ = nullptr;

StatusOr<WhyNotResult> Solve(const TieInstance& instance,
                             WhyNotAlgorithm algorithm, int num_threads) {
  WhyNotEngine::Config config;
  config.node_capacity = 16;
  StatusOr<std::unique_ptr<WhyNotEngine>> engine =
      WhyNotEngine::Build(&instance.scenario.dataset, config);
  if (!engine.ok()) return engine.status();
  WhyNotOptions options = instance.scenario.options;
  options.num_threads = num_threads;
  return engine.value()->Answer(algorithm, instance.scenario.query,
                                instance.scenario.missing, options);
}

TEST_F(WhyNotTieBreakTest, GeneratorYieldsTies) {
  // The contract below is vacuous without real tie instances; if the
  // generator drifts and stops producing them, this fails loudly instead.
  ASSERT_GE(instances_->size(), 5u);
}

TEST_F(WhyNotTieBreakTest, SeedWinsWhenBasicRefinementTies) {
  // Sanity on the oracle's own rule: whenever the canonical winner has
  // edit distance 0 it must literally be doc0.
  for (const TieInstance& instance : *instances_) {
    SCOPED_TRACE(instance.scenario.Describe());
    if (instance.oracle.best.edit_distance == 0) {
      EXPECT_TRUE(instance.oracle.best.doc == instance.scenario.query.doc);
    }
  }
}

TEST_F(WhyNotTieBreakTest, AllAlgorithmsReturnCanonicalWinner) {
  for (const TieInstance& instance : *instances_) {
    SCOPED_TRACE(instance.scenario.Describe());
    const testing::OracleRefinement& want = instance.oracle.best;
    for (WhyNotAlgorithm algorithm : kAlgorithms) {
      SCOPED_TRACE(WhyNotAlgorithmName(algorithm));
      StatusOr<WhyNotResult> got = Solve(instance, algorithm,
                                         /*num_threads=*/0);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got.value().refined.penalty, want.penalty);
      EXPECT_TRUE(got.value().refined.doc == want.doc)
          << "got " << got.value().refined.doc.ToString() << " want "
          << want.doc.ToString() << " among "
          << instance.oracle.co_optimal.size() << " co-optimal refinements";
      EXPECT_EQ(got.value().refined.k, want.k);
      EXPECT_EQ(got.value().refined.edit_distance, want.edit_distance);
    }
  }
}

TEST_F(WhyNotTieBreakTest, WinnerIsStableAcrossThreadCounts) {
  // The race this pins down: a stop flag (instead of a stop index) lets
  // the thread schedule decide whether an earlier co-optimal candidate is
  // evaluated at all.
  const size_t limit = std::min<size_t>(instances_->size(), 4);
  for (size_t i = 0; i < limit; ++i) {
    const TieInstance& instance = (*instances_)[i];
    SCOPED_TRACE(instance.scenario.Describe());
    for (WhyNotAlgorithm algorithm :
         {WhyNotAlgorithm::kAdvanced, WhyNotAlgorithm::kKcrBased}) {
      SCOPED_TRACE(WhyNotAlgorithmName(algorithm));
      for (int num_threads : {0, 2, 4}) {
        for (int repeat = 0; repeat < 2; ++repeat) {
          StatusOr<WhyNotResult> got = Solve(instance, algorithm, num_threads);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          EXPECT_TRUE(got.value().refined.doc == instance.oracle.best.doc)
              << "threads=" << num_threads << " repeat=" << repeat << " got "
              << got.value().refined.doc.ToString() << " want "
              << instance.oracle.best.doc.ToString();
          EXPECT_EQ(got.value().refined.penalty,
                    instance.oracle.best.penalty);
        }
      }
    }
  }
}

}  // namespace
}  // namespace wsk
