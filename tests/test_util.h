// Shared test fixtures: temp files, small datasets, and a brute-force
// reference implementation of the why-not query.
#ifndef WSK_TESTS_TEST_UTIL_H_
#define WSK_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/candidates.h"
#include "core/penalty.h"
#include "core/whynot.h"
#include "data/dataset.h"
#include "data/query.h"

namespace wsk::testing {

// A unique temp path, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    static int counter = 0;
    path_ = std::string("/tmp/wsk_test_") + std::to_string(getpid()) + "_" +
            tag + "_" + std::to_string(counter++);
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// The dataset of Fig. 1 / Example 3, with the query at the origin. Object
// ids: 0 = o1 {t1}, 1 = o2 {t1,t3}, 2 = m {t1,t2,t3}, 3 = o3 {t1,t2}.
// All objects sit on the x-axis at distance SDist(o, q) from the origin; a
// fifth "dummy" object at x = 1.1 with an unmatched keyword stretches the
// bounding box so that the normalization diagonal is exactly 1, making the
// 1 - SDist values match the paper's table: m 0.5, o1 0.2, o2 0.9, o3 0.4.
// With doc0 = {t1, t2}, k0 = 1, alpha = 0.5, the scores reproduce
// Fig. 1(b): m 0.583, o1 0.35, o2 0.617, o3 0.7 — so R(m, q) = 3.
inline Dataset Figure1Dataset(TermId* t1, TermId* t2, TermId* t3) {
  Dataset d;
  *t1 = d.vocabulary().Intern("t1");
  *t2 = d.vocabulary().Intern("t2");
  *t3 = d.vocabulary().Intern("t3");
  const TermId t4 = d.vocabulary().Intern("t4");
  d.Add(Point{0.8, 0.0}, KeywordSet{*t1});             // o1
  d.Add(Point{0.1, 0.0}, KeywordSet{*t1, *t3});        // o2
  d.Add(Point{0.5, 0.0}, KeywordSet{*t1, *t2, *t3});   // m
  d.Add(Point{0.6, 0.0}, KeywordSet{*t1, *t2});        // o3
  d.Add(Point{1.1, 0.0}, KeywordSet{t4});              // diagonal anchor
  return d;
}

// The initial query of Example 3: loc = origin, doc0 = {t1, t2}, k0 = 1,
// alpha = 0.5.
inline SpatialKeywordQuery Figure1Query(TermId t1, TermId t2) {
  SpatialKeywordQuery q;
  q.loc = Point{0.0, 0.0};
  q.doc = KeywordSet{t1, t2};
  q.k = 1;
  q.alpha = 0.5;
  return q;
}

// Reference semantics for the keyword-adapted why-not query: enumerate
// every candidate subset and evaluate ranks by brute force.
struct BruteForceWhyNot {
  RefinedQuery refined;
  uint32_t initial_rank = 0;
  bool already_in_result = false;
};

inline uint32_t BruteForceSetRank(const Dataset& dataset,
                                  const SpatialKeywordQuery& query,
                                  const std::vector<ObjectId>& missing) {
  const double diagonal = dataset.diagonal();
  double min_score = std::numeric_limits<double>::infinity();
  for (ObjectId id : missing) {
    min_score =
        std::min(min_score, Score(dataset.object(id), query, diagonal));
  }
  uint32_t better = 0;
  for (const SpatialObject& o : dataset.objects()) {
    if (Score(o, query, diagonal) > min_score) ++better;
  }
  return better + 1;
}

inline BruteForceWhyNot SolveWhyNotBruteForce(
    const Dataset& dataset, const SpatialKeywordQuery& original,
    const std::vector<ObjectId>& missing, double lambda) {
  BruteForceWhyNot out;
  out.initial_rank = BruteForceSetRank(dataset, original, missing);
  if (out.initial_rank <= original.k) {
    out.already_in_result = true;
    out.refined.doc = original.doc;
    out.refined.k = original.k;
    out.refined.penalty = 0.0;
    return out;
  }
  std::vector<const KeywordSet*> docs;
  for (ObjectId id : missing) docs.push_back(&dataset.object(id).doc);
  CandidateEnumerator enumerator(original.doc, docs, dataset.vocabulary());
  const PenaltyModel pm(lambda, original.k, out.initial_rank,
                        enumerator.universe_size());

  out.refined.doc = original.doc;
  out.refined.k = out.initial_rank;
  out.refined.rank = out.initial_rank;
  out.refined.edit_distance = 0;
  out.refined.penalty = lambda;
  for (const Candidate& cand : enumerator.ordered()) {
    SpatialKeywordQuery q = original;
    q.doc = cand.doc;
    const uint32_t rank = BruteForceSetRank(dataset, q, missing);
    const double penalty = pm.Penalty(rank, cand.edit_distance);
    if (penalty < out.refined.penalty) {
      out.refined.doc = cand.doc;
      out.refined.rank = rank;
      out.refined.k = std::max(original.k, rank);
      out.refined.edit_distance = cand.edit_distance;
      out.refined.penalty = penalty;
    }
  }
  return out;
}

}  // namespace wsk::testing

#endif  // WSK_TESTS_TEST_UTIL_H_
