// Concurrency stress tests: the buffer pool and the disk indexes must be
// safe under parallel readers (the Section IV-C4 / VII-B7 parallel
// algorithms rely on it).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "core/engine.h"
#include "data/generator.h"
#include "index/topk.h"
#include "storage/io_stats.h"
#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

// Regression test for the io_stats counters: they were plain uint64_t
// before the service layer made concurrent queries first-class, which TSan
// flags as a data race. Hammering one IoStats from many threads must both
// run clean under TSan and lose no increments.
TEST(ConcurrencyTest, IoStatsCountersAreLossless) {
  IoStats stats;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats] {
      for (int i = 0; i < kPerThread; ++i) {
        stats.RecordLogicalRead();
        if ((i & 3) == 0) stats.RecordPhysicalRead();
        if ((i & 7) == 0) stats.RecordPhysicalWrite();
        // Concurrent readers race the writers by design; the loads must
        // still be tear-free.
        (void)stats.logical_reads();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(stats.logical_reads(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(stats.physical_reads(), uint64_t{kThreads} * kPerThread / 4);
  EXPECT_EQ(stats.physical_writes(), uint64_t{kThreads} * kPerThread / 8);
  const IoStats::Snapshot snap = stats.TakeSnapshot();
  EXPECT_EQ(snap.logical_reads, stats.logical_reads());
  stats.Reset();
  EXPECT_EQ(stats.logical_reads(), 0u);
}

TEST(ConcurrencyTest, BufferPoolParallelFetches) {
  TempFile file("conc_pool");
  auto pager = Pager::Create(file.path(), 256).value();
  const int kPages = 64;
  for (int i = 0; i < kPages; ++i) {
    const PageId id = pager->AllocatePages(1);
    std::vector<uint8_t> page(pager->page_size(),
                              static_cast<uint8_t>(id & 0xff));
    ASSERT_TRUE(pager->WritePage(id, page.data()).ok());
  }
  BufferPool pool(pager.get(), 256 * 8);  // far fewer frames than pages

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < 2000; ++i) {
        const PageId id = static_cast<PageId>(rng.NextUint64(kPages));
        auto handle = pool.Fetch(id);
        if (!handle.ok() ||
            handle.value().data()[0] != static_cast<uint8_t>(id & 0xff)) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(pool.hits() + pool.misses(), 4u * 2000u);
}

TEST(ConcurrencyTest, ParallelTopKQueriesAgree) {
  GeneratorConfig config;
  config.num_objects = 400;
  config.vocab_size = 40;
  config.seed = 11;
  const Dataset dataset = GenerateDataset(config);
  TempFile file("conc_tree");
  auto pager = Pager::Create(file.path()).value();
  // Tiny buffer: forces eviction churn under the concurrent queries.
  BufferPool pool(pager.get(), 64 * 1024);
  SetRTree::Options options;
  options.capacity = 8;
  auto tree = SetRTree::BulkLoad(dataset, &pool, options).value();

  SpatialKeywordQuery q;
  q.loc = Point{0.4, 0.6};
  q.doc = dataset.object(9).doc;
  q.k = 20;
  q.alpha = 0.5;
  const auto expected = IndexTopK(*tree, q).value();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        const auto got = IndexTopK(*tree, q);
        if (!got.ok() || got.value().size() != expected.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t j = 0; j < expected.size(); ++j) {
          if (got.value()[j].id != expected[j].id) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ParallelWhyNotMatchesSequential) {
  GeneratorConfig config;
  config.num_objects = 220;
  config.vocab_size = 30;
  config.seed = 21;
  const Dataset dataset = GenerateDataset(config);
  WhyNotEngine::Config engine_config;
  engine_config.node_capacity = 8;
  auto engine = WhyNotEngine::Build(&dataset, engine_config).value();

  SpatialKeywordQuery q;
  q.loc = Point{0.3, 0.3};
  q.doc = dataset.object(17).doc;
  q.k = 5;
  q.alpha = 0.5;
  const ObjectId missing = engine->ObjectAtPosition(q, 18).value();

  WhyNotOptions sequential;
  const double expected =
      engine->Answer(WhyNotAlgorithm::kAdvanced, q, {missing}, sequential)
          .value()
          .refined.penalty;

  // Repeat multi-threaded runs: any race would eventually yield a
  // different penalty or crash.
  for (int threads : {2, 4}) {
    for (int repeat = 0; repeat < 5; ++repeat) {
      WhyNotOptions parallel;
      parallel.num_threads = threads;
      const double got =
          engine->Answer(WhyNotAlgorithm::kAdvanced, q, {missing}, parallel)
              .value()
              .refined.penalty;
      EXPECT_NEAR(got, expected, 1e-12) << "threads=" << threads;
      const double kcr =
          engine->Answer(WhyNotAlgorithm::kKcrBased, q, {missing}, parallel)
              .value()
              .refined.penalty;
      EXPECT_NEAR(kcr, expected, 1e-12) << "kcr threads=" << threads;
    }
  }
}

TEST(ConcurrencyTest, SingleBatchKcrMatchesBatched) {
  GeneratorConfig config;
  config.num_objects = 220;
  config.vocab_size = 30;
  config.seed = 31;
  const Dataset dataset = GenerateDataset(config);
  WhyNotEngine::Config engine_config;
  engine_config.node_capacity = 8;
  auto engine = WhyNotEngine::Build(&dataset, engine_config).value();

  SpatialKeywordQuery q;
  q.loc = Point{0.7, 0.2};
  q.doc = dataset.object(5).doc;
  q.k = 5;
  q.alpha = 0.5;
  const ObjectId missing = engine->ObjectAtPosition(q, 21).value();

  WhyNotOptions batched;
  WhyNotOptions single;
  single.kcr_single_batch = true;
  const auto a =
      engine->Answer(WhyNotAlgorithm::kKcrBased, q, {missing}, batched)
          .value();
  const auto b =
      engine->Answer(WhyNotAlgorithm::kKcrBased, q, {missing}, single)
          .value();
  EXPECT_NEAR(a.refined.penalty, b.refined.penalty, 1e-12);
  // The single traversal must evaluate every candidate (no order stop).
  EXPECT_GE(b.stats.candidates_evaluated, a.stats.candidates_evaluated);
}

}  // namespace
}  // namespace wsk
