// Concurrent-service stress test (CTest label: stress; CI runs it under
// TSan). Eight client threads fire a mixed top-k / why-not workload at one
// QueryService with the shared result cache enabled, interleaving normal
// requests with tiny deadlines and pre-cancelled tokens. Every future must
// resolve with a sane status, every OK answer must match the sequential
// baseline, and the engine must come out consistent.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "data/generator.h"
#include "service/query_service.h"

namespace wsk {
namespace {

struct WhyNotCase {
  WhyNotAlgorithm algorithm;
  SpatialKeywordQuery query;
  std::vector<ObjectId> missing;
};

class ServiceStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_objects = 400;
    config.vocab_size = 60;
    config.seed = 90210;
    dataset_ = GenerateDataset(config);
    WhyNotEngine::Config engine_config;
    engine_config.node_capacity = 8;
    engine_ = WhyNotEngine::Build(&dataset_, engine_config).value();

    for (int i = 0; i < 6; ++i) {
      SpatialKeywordQuery q;
      q.loc = Point{0.15 * i + 0.1, 0.9 - 0.12 * i};
      std::vector<TermId> terms(dataset_.object(7 * i + 3).doc.begin(),
                                dataset_.object(7 * i + 3).doc.end());
      if (terms.size() > 4) terms.resize(4);
      q.doc = KeywordSet(std::move(terms));
      q.k = 5 + i;
      q.alpha = 0.5;
      topk_queries_.push_back(q);
      topk_baselines_.push_back(engine_->TopK(q).value());
    }

    // Why-not cases with a small candidate universe so even BS finishes in
    // milliseconds: missing objects are picked among small-doc objects that
    // rank outside the top-k.
    const WhyNotAlgorithm algorithms[] = {WhyNotAlgorithm::kBasic,
                                          WhyNotAlgorithm::kAdvanced,
                                          WhyNotAlgorithm::kKcrBased};
    int produced = 0;
    for (const SpatialKeywordQuery& q : topk_queries_) {
      const ObjectId missing = SmallDocMissing(q);
      if (missing == kInvalidObjectId) continue;
      WhyNotCase c;
      c.algorithm = algorithms[produced % 3];
      c.query = q;
      c.missing = {missing};
      whynot_baselines_.push_back(
          engine_->Answer(c.algorithm, c.query, c.missing, {}).value());
      whynot_cases_.push_back(std::move(c));
      ++produced;
    }
    ASSERT_GE(whynot_cases_.size(), 3u);
  }

  ObjectId SmallDocMissing(const SpatialKeywordQuery& query) const {
    for (ObjectId id = 0; id < dataset_.size(); ++id) {
      if (dataset_.object(id).doc.size() > 2) continue;
      if (query.doc.UnionSize(dataset_.object(id).doc) > 6) continue;
      const auto rank = engine_->Rank(query, id);
      if (rank.ok() && rank.value() > 2 * query.k) return id;
    }
    return kInvalidObjectId;
  }

  Dataset dataset_;
  std::unique_ptr<WhyNotEngine> engine_;
  std::vector<SpatialKeywordQuery> topk_queries_;
  std::vector<std::vector<ScoredObject>> topk_baselines_;
  std::vector<WhyNotCase> whynot_cases_;
  std::vector<WhyNotResult> whynot_baselines_;
};

TEST_F(ServiceStressTest, MixedWorkloadUnderContention) {
  QueryServiceConfig config;
  config.num_workers = 4;
  config.max_queue = 0;     // nothing is shed: every answer is checked
  config.max_inflight = 0;
  config.cache_capacity = 256;
  QueryService service(engine_.get(), config);

  constexpr int kClients = 8;
  constexpr int kPerClient = 40;
  std::atomic<int> wrong_results{0};
  std::atomic<int> unexpected_status{0};
  std::atomic<int> ok_count{0};
  std::atomic<int> interrupted_count{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int seq = c * kPerClient + i;
        RequestOptions opts;
        const bool tiny_deadline = seq % 7 == 3;
        const bool pre_cancelled = seq % 11 == 5;
        if (tiny_deadline) opts.timeout_ms = 0.05;
        if (pre_cancelled) {
          opts.cancel = CancelToken::Create();
          opts.cancel.Cancel();
        }
        const bool expect_interruptible = tiny_deadline || pre_cancelled;

        if (seq % 3 != 0) {
          const size_t qi = seq % topk_queries_.size();
          const auto r = service.TopK(topk_queries_[qi], opts);
          if (r.ok()) {
            ok_count.fetch_add(1);
            const auto& expected = topk_baselines_[qi];
            if (r.value().results.size() != expected.size()) {
              wrong_results.fetch_add(1);
            } else {
              for (size_t j = 0; j < expected.size(); ++j) {
                if (r.value().results[j].id != expected[j].id) {
                  wrong_results.fetch_add(1);
                  break;
                }
              }
            }
          } else if (expect_interruptible &&
                     (r.status().code() == StatusCode::kCancelled ||
                      r.status().code() == StatusCode::kDeadlineExceeded)) {
            interrupted_count.fetch_add(1);
          } else {
            unexpected_status.fetch_add(1);
          }
        } else {
          const size_t wi = seq % whynot_cases_.size();
          const WhyNotCase& wc = whynot_cases_[wi];
          const auto r =
              service.WhyNot(wc.algorithm, wc.query, wc.missing, {}, opts);
          if (r.ok()) {
            ok_count.fetch_add(1);
            const WhyNotResult& expected = whynot_baselines_[wi];
            if (r.value().result.refined.k != expected.refined.k ||
                r.value().result.refined.penalty != expected.refined.penalty ||
                !(r.value().result.refined.doc == expected.refined.doc)) {
              wrong_results.fetch_add(1);
            }
          } else if (expect_interruptible &&
                     (r.status().code() == StatusCode::kCancelled ||
                      r.status().code() == StatusCode::kDeadlineExceeded)) {
            interrupted_count.fetch_add(1);
          } else {
            unexpected_status.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(wrong_results.load(), 0);
  EXPECT_EQ(unexpected_status.load(), 0);
  // Pre-cancelled requests can never succeed, so some interruptions are
  // guaranteed; deadline outcomes depend on timing and may go either way.
  EXPECT_GT(interrupted_count.load(), 0);
  EXPECT_GT(ok_count.load(), 0);

  // Bookkeeping adds up across all clients.
  constexpr uint64_t kTotal = uint64_t{kClients} * kPerClient;
  EXPECT_EQ(service.metrics().counter("requests.total").value(), kTotal);
  EXPECT_EQ(service.metrics().counter("responses.ok").value() +
                service.metrics().counter("responses.cancelled").value() +
                service.metrics().counter("responses.deadline_exceeded").value(),
            kTotal);
  EXPECT_EQ(service.metrics().counter("responses.error").value(), 0u);
  EXPECT_EQ(service.inflight(), 0);

  // The repeated queries hit the shared cache (the workload has only a
  // handful of distinct fingerprints).
  EXPECT_GT(service.cache().stats().hits, 0u);

  // The engine survives: no leaked inflight marks, no pinned pages, and
  // answers are still exact.
  EXPECT_EQ(engine_->inflight_queries(), 0);
  EXPECT_TRUE(engine_->DropCaches().ok());
  const auto after = engine_->TopK(topk_queries_[0]).value();
  ASSERT_EQ(after.size(), topk_baselines_[0].size());
  for (size_t j = 0; j < after.size(); ++j) {
    EXPECT_EQ(after[j].id, topk_baselines_[0][j].id);
  }
}

}  // namespace
}  // namespace wsk
