// Kernel-vs-scalar differential (docs/PERF.md): every why-not algorithm
// must return the *identical* refined query with the score kernel enabled
// and disabled — same keywords, k, rank, edit distance, and penalty. The
// kernel's contract is bit-identical scoring, so even tie-breaks must not
// drift. Runs over seeded randomized instances (same generator as the
// oracle suite); failures print the seed-bearing scenario description.
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/whynot.h"
#include "testing/scenario_gen.h"

namespace wsk {
namespace {

constexpr uint64_t kFirstSeed = 1;
constexpr uint64_t kLastSeed = 120;

constexpr WhyNotAlgorithm kAlgorithms[] = {
    WhyNotAlgorithm::kBasic,
    WhyNotAlgorithm::kAdvanced,
    WhyNotAlgorithm::kKcrBased,
};

class KernelDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelDifferentialTest, KernelOnOffIdentical) {
  const uint64_t seed = GetParam();
  testing::ScenarioOptions opts;
  opts.vary_threads = true;  // cover the parallel BS path under TSan
  std::optional<testing::WhyNotScenario> scenario =
      testing::MakeScenario(seed, opts);
  if (!scenario.has_value()) {
    GTEST_SKIP() << "seed " << seed << " yields no usable instance";
  }
  SCOPED_TRACE(scenario->Describe());

  WhyNotEngine::Config config;
  config.node_capacity = 16;
  StatusOr<std::unique_ptr<WhyNotEngine>> built =
      WhyNotEngine::Build(&scenario->dataset, config);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::unique_ptr<WhyNotEngine>& engine = built.value();

  for (WhyNotAlgorithm algorithm : kAlgorithms) {
    SCOPED_TRACE(WhyNotAlgorithmName(algorithm));
    WhyNotOptions with_kernel = scenario->options;
    with_kernel.use_score_kernel = true;
    WhyNotOptions without_kernel = scenario->options;
    without_kernel.use_score_kernel = false;

    StatusOr<WhyNotResult> on =
        engine->Answer(algorithm, scenario->query, scenario->missing,
                       with_kernel);
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    StatusOr<WhyNotResult> off =
        engine->Answer(algorithm, scenario->query, scenario->missing,
                       without_kernel);
    ASSERT_TRUE(off.ok()) << off.status().ToString();

    EXPECT_EQ(on.value().already_in_result, off.value().already_in_result);
    const RefinedQuery& a = on.value().refined;
    const RefinedQuery& b = off.value().refined;
    EXPECT_EQ(a.doc, b.doc) << a.doc.ToString() << " vs " << b.doc.ToString();
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.edit_distance, b.edit_distance);
    // Bit-identical scoring implies bit-identical penalties — exact double
    // equality, no tolerance.
    EXPECT_EQ(a.penalty, b.penalty);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDifferentialTest,
                         ::testing::Range(kFirstSeed, kLastSeed + 1));

}  // namespace
}  // namespace wsk
