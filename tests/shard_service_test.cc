// QueryService over a ShardCoordinator backend (docs/SHARDING.md): the
// service fronts the sharded backend unchanged, the shard counters surface
// in both report formats, and — the regression the topology-aware version
// vector exists for — a mutation routed to one shard orphans only that
// shard's cached entries, while entries whose shards provably cannot be
// affected keep hitting.
#include "service/query_service.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/generator.h"
#include "shard/shard_coordinator.h"

namespace wsk {
namespace {

// Two well-separated, keyword-disjoint clusters; with two shards the STR
// split puts each in its own tile (see shard_coordinator_test).
Dataset TwoClusterDataset(int per_cluster = 8) {
  Dataset dataset;
  for (int i = 0; i < per_cluster; ++i) {
    const double off = 0.002 * i;
    dataset.Add(Point{0.1 + off, 0.1 + off},
                std::vector<std::string>{"coffee", "wifi",
                                         "a" + std::to_string(i % 4)});
  }
  for (int i = 0; i < per_cluster; ++i) {
    const double off = 0.002 * i;
    dataset.Add(Point{0.9 - off, 0.9 - off},
                std::vector<std::string>{"museum", "art",
                                         "b" + std::to_string(i % 4)});
  }
  return dataset;
}

SpatialKeywordQuery QueryAt(Dataset& dataset, Point loc,
                            const std::vector<std::string>& keywords,
                            uint32_t k = 3) {
  SpatialKeywordQuery q;
  q.loc = loc;
  q.doc = dataset.vocabulary().InternAll(keywords);
  q.k = k;
  q.alpha = 0.5;
  return q;
}

TEST(ShardServiceTest, CoordinatorServesQueriesThroughService) {
  GeneratorConfig gen;
  gen.num_objects = 300;
  gen.vocab_size = 50;
  gen.seed = 31337;
  Dataset dataset = GenerateDataset(gen);

  ShardCoordinator::Config config;
  config.num_shards = 3;
  config.node_capacity = 16;
  auto coordinator = ShardCoordinator::Build(dataset, config).value();
  QueryService service(coordinator.get(), {});

  const SpatialKeywordQuery query = QueryAt(
      dataset, dataset.objects()[11].loc,
      {dataset.vocabulary().TermString(*dataset.objects()[11].doc.begin())},
      5);
  const auto via_service = service.TopK(query);
  ASSERT_TRUE(via_service.ok()) << via_service.status().ToString();
  const auto direct = coordinator->TopK(query);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(via_service.value().results.size(), direct.value().size());
  for (size_t i = 0; i < direct.value().size(); ++i) {
    EXPECT_EQ(via_service.value().results[i].id, direct.value()[i].id);
  }

  // Why-not rides through the same front end.
  ASSERT_FALSE(direct.value().empty());
  const ObjectId beyond = direct.value().back().id;
  const auto whynot = service.WhyNot(WhyNotAlgorithm::kAdvanced, query,
                                     {beyond}, WhyNotOptions{});
  ASSERT_TRUE(whynot.ok()) << whynot.status().ToString();

  // Frozen coordinator: mutations are rejected through the service.
  EXPECT_EQ(service.Insert(Point{0.5, 0.5}, {"x"}).status().code(),
            StatusCode::kFailedPrecondition);

  // Shard counters surface in both report formats.
  const std::string report = service.MetricsReport();
  EXPECT_NE(report.find("shards    count 3"), std::string::npos) << report;
  EXPECT_NE(report.find("shard.0"), std::string::npos) << report;
  const std::string prom = service.PrometheusReport();
  EXPECT_NE(prom.find("wsk_shards 3"), std::string::npos);
  EXPECT_NE(prom.find("wsk_shards_visited_total"), std::string::npos);
  EXPECT_NE(prom.find("wsk_shards_pruned_total"), std::string::npos);
}

TEST(ShardServiceTest, UnshardedBackendsReportNoShardSection) {
  GeneratorConfig gen;
  gen.num_objects = 120;
  gen.vocab_size = 30;
  gen.seed = 5150;
  Dataset dataset = GenerateDataset(gen);
  auto engine = WhyNotEngine::Build(&dataset, {}).value();
  QueryService service(engine.get(), {});
  EXPECT_EQ(service.MetricsReport().find("shards    count"),
            std::string::npos);
  EXPECT_EQ(service.PrometheusReport().find("wsk_shards"),
            std::string::npos);
}

// The version-vector regression test: cache two queries answered by
// different shards, mutate one shard, and only that shard's entry may go
// stale. Before the topology-aware vector, ANY mutation bumped the single
// dataset version embedded in every key and orphaned both entries.
TEST(ShardServiceTest, MutationOrphansOnlyTheRoutedShardsCachedEntries) {
  Dataset dataset = TwoClusterDataset();
  ShardCoordinator::Config config;
  config.num_shards = 2;
  config.live = true;
  config.node_capacity = 16;
  config.auto_merge = false;
  auto coordinator = ShardCoordinator::Build(dataset, config).value();
  ASSERT_EQ(coordinator->num_shards(), 2u);
  QueryService service(coordinator.get(), {});

  const SpatialKeywordQuery query_a =
      QueryAt(dataset, Point{0.1, 0.1}, {"coffee", "wifi"});
  const SpatialKeywordQuery query_b =
      QueryAt(dataset, Point{0.9, 0.9}, {"museum", "art"});

  // Prime and verify both cache entries.
  ASSERT_FALSE(service.TopK(query_a).value().cache_hit);
  ASSERT_FALSE(service.TopK(query_b).value().cache_hit);
  const auto a_cached = service.TopK(query_a);
  ASSERT_TRUE(a_cached.value().cache_hit);
  ASSERT_TRUE(service.TopK(query_b).value().cache_hit);

  // Insert a perfect cluster-B object: routed to B's shard only.
  const auto inserted =
      service.Insert(Point{0.9, 0.9}, {"museum", "art"});
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();

  // Query A's shard is untouched and cluster B's bound for A stays below
  // A's kth score — its entry must still hit, with the same answer.
  const auto a_after = service.TopK(query_a);
  ASSERT_TRUE(a_after.ok());
  EXPECT_TRUE(a_after.value().cache_hit) << "cross-shard over-invalidation";
  ASSERT_EQ(a_after.value().results.size(),
            a_cached.value().results.size());
  for (size_t i = 0; i < a_after.value().results.size(); ++i) {
    EXPECT_EQ(a_after.value().results[i].id,
              a_cached.value().results[i].id);
  }

  // Query B's entry is owned by the mutated shard: stale, recomputed, and
  // the fresh answer surfaces the inserted perfect-score object.
  const auto b_after = service.TopK(query_b);
  ASSERT_TRUE(b_after.ok());
  EXPECT_FALSE(b_after.value().cache_hit);
  ASSERT_FALSE(b_after.value().results.empty());
  EXPECT_EQ(b_after.value().results[0].id, inserted.value().id);

  const ResultCache::Stats stats = service.cache().stats();
  EXPECT_EQ(stats.stale, 1u) << "exactly B's entry went stale";
}

// Why-not entries keep the strict contract: any version movement anywhere
// invalidates (the refinement aggregates bounds across every shard).
TEST(ShardServiceTest, WhyNotCacheInvalidatesOnAnyShardMutation) {
  Dataset dataset = TwoClusterDataset();
  ShardCoordinator::Config config;
  config.num_shards = 2;
  config.live = true;
  config.node_capacity = 16;
  config.auto_merge = false;
  auto coordinator = ShardCoordinator::Build(dataset, config).value();
  QueryService service(coordinator.get(), {});

  const SpatialKeywordQuery query_a =
      QueryAt(dataset, Point{0.1, 0.1}, {"coffee", "wifi"}, 2);
  const auto topk = service.TopK(query_a);
  ASSERT_TRUE(topk.ok());
  ASSERT_GT(topk.value().results.size(), 1u);
  const ObjectId missing = topk.value().results.back().id;

  SpatialKeywordQuery narrow = query_a;
  narrow.k = 1;
  ASSERT_FALSE(service
                   .WhyNot(WhyNotAlgorithm::kAdvanced, narrow, {missing},
                           WhyNotOptions{})
                   .value()
                   .cache_hit);
  ASSERT_TRUE(service
                  .WhyNot(WhyNotAlgorithm::kAdvanced, narrow, {missing},
                          WhyNotOptions{})
                  .value()
                  .cache_hit);

  // A mutation in the *other* cluster still invalidates why-not entries.
  ASSERT_TRUE(service.Insert(Point{0.9, 0.9}, {"museum"}).ok());
  EXPECT_FALSE(service
                   .WhyNot(WhyNotAlgorithm::kAdvanced, narrow, {missing},
                           WhyNotOptions{})
                   .value()
                   .cache_hit);
}

}  // namespace
}  // namespace wsk
