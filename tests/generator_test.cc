#include "data/generator.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace wsk {
namespace {

TEST(GeneratorTest, ProducesRequestedCardinality) {
  GeneratorConfig config;
  config.num_objects = 500;
  config.vocab_size = 100;
  const Dataset d = GenerateDataset(config);
  EXPECT_EQ(d.size(), 500u);
  EXPECT_EQ(d.vocabulary().num_terms(), 100u);
}

TEST(GeneratorTest, DeterministicInSeed) {
  GeneratorConfig config;
  config.num_objects = 200;
  config.vocab_size = 50;
  const Dataset a = GenerateDataset(config);
  const Dataset b = GenerateDataset(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.object(i).loc, b.object(i).loc);
    EXPECT_EQ(a.object(i).doc, b.object(i).doc);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig config;
  config.num_objects = 200;
  config.vocab_size = 50;
  const Dataset a = GenerateDataset(config);
  config.seed = 777;
  const Dataset b = GenerateDataset(config);
  int same = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.object(i).loc == b.object(i).loc) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(GeneratorTest, LocationsInsideUnitSquare) {
  GeneratorConfig config;
  config.num_objects = 1000;
  config.vocab_size = 100;
  const Dataset d = GenerateDataset(config);
  for (const SpatialObject& o : d.objects()) {
    EXPECT_GE(o.loc.x, 0.0);
    EXPECT_LE(o.loc.x, 1.0);
    EXPECT_GE(o.loc.y, 0.0);
    EXPECT_LE(o.loc.y, 1.0);
  }
}

TEST(GeneratorTest, DocSizesRespectMinAndMean) {
  GeneratorConfig config;
  config.num_objects = 2000;
  config.vocab_size = 500;
  config.doc_size_min = 2;
  config.doc_size_mean = 6.0;
  const Dataset d = GenerateDataset(config);
  double total = 0;
  for (const SpatialObject& o : d.objects()) {
    EXPECT_GE(o.doc.size(), 2u);
    total += o.doc.size();
  }
  EXPECT_NEAR(total / d.size(), 6.0, 0.5);
}

TEST(GeneratorTest, KeywordFrequenciesAreSkewed) {
  GeneratorConfig config;
  config.num_objects = 3000;
  config.vocab_size = 300;
  config.zipf_skew = 1.0;
  const Dataset d = GenerateDataset(config);
  const Vocabulary& v = d.vocabulary();
  // Term ids follow Zipf rank: id 0 should be far more frequent than a
  // mid-tail term.
  EXPECT_GT(v.DocumentFrequency(0), 10 * std::max(1u, v.DocumentFrequency(150)));
}

TEST(GeneratorTest, PaperScaleConfigs) {
  const GeneratorConfig euro = EuroLikeConfig(1.0);
  EXPECT_EQ(euro.num_objects, 162033u);
  EXPECT_EQ(euro.vocab_size, 35315u);
  const GeneratorConfig gn = GnLikeConfig(1.0);
  EXPECT_EQ(gn.num_objects, 1868821u);
  EXPECT_EQ(gn.vocab_size, 222407u);
  const GeneratorConfig small = EuroLikeConfig(0.01);
  EXPECT_EQ(small.num_objects, 1620u);
}

TEST(GeneratorTest, ClusteringBeatsUniformSpread) {
  // With tight clusters, many objects should share small neighbourhoods:
  // compare the average nearest-distance against a uniform layout.
  GeneratorConfig clustered;
  clustered.num_objects = 400;
  clustered.vocab_size = 50;
  clustered.num_clusters = 4;
  clustered.cluster_stddev = 0.005;
  clustered.uniform_fraction = 0.0;
  const Dataset d = GenerateDataset(clustered);
  // Count pairs closer than 0.02 — should be plentiful under clustering.
  int close_pairs = 0;
  for (size_t i = 0; i < 100; ++i) {
    for (size_t j = i + 1; j < 100; ++j) {
      if (Distance(d.object(i).loc, d.object(j).loc) < 0.02) ++close_pairs;
    }
  }
  EXPECT_GT(close_pairs, 100);
}

}  // namespace
}  // namespace wsk
