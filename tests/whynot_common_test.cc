#include "core/whynot_common.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "index/setr_tree.h"
#include "test_util.h"

namespace wsk {
namespace {

using internal::MissingSet;
using internal::RankFromIndex;
using internal::ValidateWhyNotInput;
using testing::TempFile;

TEST(MissingSetTest, BuildCollectsDocsAndUnion) {
  Dataset d;
  d.Add(Point{0, 0}, KeywordSet{1, 2});
  d.Add(Point{1, 0}, KeywordSet{2, 3});
  d.Add(Point{0, 1}, KeywordSet{4});
  const MissingSet set = MissingSet::Build(d, {0, 2}).value();
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.union_doc, (KeywordSet{1, 2, 4}));
  EXPECT_EQ(*set.docs[0], (KeywordSet{1, 2}));
}

TEST(MissingSetTest, DuplicatesIgnored) {
  Dataset d;
  d.Add(Point{0, 0}, KeywordSet{1});
  d.Add(Point{1, 0}, KeywordSet{2});
  const MissingSet set = MissingSet::Build(d, {0, 0, 1, 0}).value();
  EXPECT_EQ(set.size(), 2u);
}

TEST(MissingSetTest, RejectsBadIds) {
  Dataset d;
  d.Add(Point{0, 0}, KeywordSet{1});
  EXPECT_FALSE(MissingSet::Build(d, {5}).ok());
  EXPECT_FALSE(MissingSet::Build(d, {}).ok());
}

TEST(MissingSetTest, MinScoreIsWorstMissing) {
  Dataset d;
  d.Add(Point{0.1, 0}, KeywordSet{1});   // near: higher score
  d.Add(Point{0.9, 0}, KeywordSet{1});   // far: lower score
  d.Add(Point{1.0, 1.0}, KeywordSet{2});
  const MissingSet set = MissingSet::Build(d, {0, 1}).value();
  SpatialKeywordQuery q;
  q.loc = Point{0, 0};
  q.doc = KeywordSet{1};
  q.alpha = 0.5;
  const double min_score = set.MinScore(q, d.diagonal());
  EXPECT_DOUBLE_EQ(min_score, Score(d.object(1), q, d.diagonal()));
}

TEST(ValidateTest, AcceptsSaneInput) {
  SpatialKeywordQuery q;
  q.doc = KeywordSet{1};
  q.k = 5;
  q.alpha = 0.5;
  WhyNotOptions options;
  EXPECT_TRUE(ValidateWhyNotInput(q, {1}, options, 100).ok());
}

TEST(ValidateTest, RejectsOutOfDomain) {
  SpatialKeywordQuery good;
  good.doc = KeywordSet{1};
  good.k = 5;
  good.alpha = 0.5;
  WhyNotOptions options;

  SpatialKeywordQuery q = good;
  q.alpha = 0.0;
  EXPECT_FALSE(ValidateWhyNotInput(q, {1}, options, 100).ok());
  q = good;
  q.doc = KeywordSet();
  EXPECT_FALSE(ValidateWhyNotInput(q, {1}, options, 100).ok());
  q = good;
  q.k = 0;
  EXPECT_FALSE(ValidateWhyNotInput(q, {1}, options, 100).ok());
  EXPECT_FALSE(ValidateWhyNotInput(good, {}, options, 100).ok());
  WhyNotOptions bad_options;
  bad_options.lambda = -0.1;
  EXPECT_FALSE(ValidateWhyNotInput(good, {1}, bad_options, 100).ok());
  bad_options = options;
  bad_options.num_threads = -1;
  EXPECT_FALSE(ValidateWhyNotInput(good, {1}, bad_options, 100).ok());
}

class RankFromIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_objects = 200;
    config.vocab_size = 30;
    config.seed = 55;
    dataset_ = GenerateDataset(config);
    file_ = std::make_unique<TempFile>("rank_idx");
    pager_ = Pager::Create(file_->path()).value();
    pool_ = std::make_unique<BufferPool>(pager_.get(), 4u << 20);
    SetRTree::Options options;
    options.capacity = 8;
    tree_ = SetRTree::BulkLoad(dataset_, pool_.get(), options).value();
  }

  Dataset dataset_;
  std::unique_ptr<TempFile> file_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<SetRTree> tree_;
};

TEST_F(RankFromIndexTest, MatchesBruteForceSetRank) {
  SpatialKeywordQuery q;
  q.loc = Point{0.3, 0.3};
  q.doc = dataset_.object(4).doc;
  q.alpha = 0.5;
  const std::vector<ObjectId> missing{10, 60, 120};
  const MissingSet set = MissingSet::Build(dataset_, missing).value();
  const double min_score = set.MinScore(q, tree_->diagonal());
  bool exceeded = false;
  const uint32_t rank =
      RankFromIndex(*tree_, q, min_score, 0, &exceeded, nullptr).value();
  EXPECT_FALSE(exceeded);
  EXPECT_EQ(rank, testing::BruteForceSetRank(dataset_, q, missing));
}

TEST_F(RankFromIndexTest, CollectsDominators) {
  SpatialKeywordQuery q;
  q.loc = Point{0.3, 0.3};
  q.doc = dataset_.object(4).doc;
  q.alpha = 0.5;
  const double target = Score(dataset_.object(100), q, tree_->diagonal());
  bool exceeded = false;
  std::vector<ObjectId> dominators;
  const uint32_t rank =
      RankFromIndex(*tree_, q, target, 0, &exceeded, &dominators).value();
  EXPECT_EQ(dominators.size() + 1, rank);
  for (ObjectId id : dominators) {
    EXPECT_GT(Score(dataset_.object(id), q, tree_->diagonal()), target);
  }
}

TEST_F(RankFromIndexTest, LimitShortCircuits) {
  SpatialKeywordQuery q;
  q.loc = Point{0.3, 0.3};
  q.doc = dataset_.object(4).doc;
  q.alpha = 0.5;
  bool exceeded = false;
  const uint32_t rank =
      RankFromIndex(*tree_, q, -10.0, 5, &exceeded, nullptr).value();
  EXPECT_TRUE(exceeded);
  EXPECT_EQ(rank, 6u);
}

}  // namespace
}  // namespace wsk
