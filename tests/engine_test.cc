#include "core/engine.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "test_util.h"

namespace wsk {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_objects = 300;
    config.vocab_size = 40;
    config.seed = 9090;
    dataset_ = GenerateDataset(config);
    WhyNotEngine::Config engine_config;
    engine_config.node_capacity = 8;
    engine_ = WhyNotEngine::Build(&dataset_, engine_config).value();
  }

  SpatialKeywordQuery Query() const {
    SpatialKeywordQuery q;
    q.loc = Point{0.4, 0.4};
    q.doc = dataset_.object(12).doc;
    q.k = 10;
    q.alpha = 0.5;
    return q;
  }

  Dataset dataset_;
  std::unique_ptr<WhyNotEngine> engine_;
};

TEST_F(EngineTest, TopKMatchesBruteForce) {
  const auto expected = BruteForceTopK(dataset_, Query());
  const auto actual = engine_->TopK(Query()).value();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id);
  }
}

TEST_F(EngineTest, RankMatchesBruteForce) {
  for (ObjectId id : std::vector<ObjectId>{0, 50, 150, 299}) {
    EXPECT_EQ(engine_->Rank(Query(), id).value(),
              BruteForceRank(dataset_, Query(), id));
  }
  EXPECT_FALSE(engine_->Rank(Query(), 100000).ok());
}

TEST_F(EngineTest, ObjectAtPositionConsistentWithTopK) {
  const auto top = engine_->TopK(Query()).value();
  for (uint32_t pos = 1; pos <= top.size(); ++pos) {
    EXPECT_EQ(engine_->ObjectAtPosition(Query(), pos).value(),
              top[pos - 1].id);
  }
  EXPECT_FALSE(engine_->ObjectAtPosition(Query(), 0).ok());
  EXPECT_FALSE(engine_->ObjectAtPosition(Query(), 100000).ok());
}

TEST_F(EngineTest, AlgorithmNames) {
  EXPECT_STREQ(WhyNotAlgorithmName(WhyNotAlgorithm::kBasic), "BS");
  EXPECT_STREQ(WhyNotAlgorithmName(WhyNotAlgorithm::kAdvanced), "AdvancedBS");
  EXPECT_STREQ(WhyNotAlgorithmName(WhyNotAlgorithm::kKcrBased), "KcRBased");
}

TEST_F(EngineTest, AnswerReportsIoAndTiming) {
  const ObjectId missing = engine_->ObjectAtPosition(Query(), 31).value();
  WhyNotOptions options;
  ASSERT_TRUE(engine_->DropCaches().ok());
  const WhyNotResult result =
      engine_->Answer(WhyNotAlgorithm::kAdvanced, Query(), {missing}, options)
          .value();
  EXPECT_GT(result.stats.io_reads, 0u);
  EXPECT_GE(result.stats.elapsed_ms, 0.0);
  EXPECT_GT(result.stats.candidates_total, 0u);
}

TEST_F(EngineTest, KcrAnswerUsesKcrIndexIo) {
  const ObjectId missing = engine_->ObjectAtPosition(Query(), 31).value();
  WhyNotOptions options;
  ASSERT_TRUE(engine_->DropCaches().ok());
  engine_->ResetIoStats();
  const WhyNotResult result =
      engine_->Answer(WhyNotAlgorithm::kKcrBased, Query(), {missing}, options)
          .value();
  EXPECT_GT(result.stats.io_reads, 0u);
  EXPECT_EQ(engine_->kcr_io().physical_reads(), result.stats.io_reads);
  EXPECT_EQ(engine_->setr_io().physical_reads(), 0u);
}

TEST_F(EngineTest, WarmCacheReducesIo) {
  const ObjectId missing = engine_->ObjectAtPosition(Query(), 31).value();
  WhyNotOptions options;
  ASSERT_TRUE(engine_->DropCaches().ok());
  const uint64_t cold =
      engine_->Answer(WhyNotAlgorithm::kAdvanced, Query(), {missing}, options)
          .value()
          .stats.io_reads;
  const uint64_t warm =
      engine_->Answer(WhyNotAlgorithm::kAdvanced, Query(), {missing}, options)
          .value()
          .stats.io_reads;
  EXPECT_LT(warm, cold);
}

TEST_F(EngineTest, NodeCacheHitsAreNotCountedAsReads) {
  // io_stats audit (docs/STORAGE.md): a node-cache hit skips the buffer
  // pool entirely, so it must record NEITHER a logical nor a physical read
  // — only the node_cache_hits counter moves. A warm-up run populates the
  // cache; an identical second run must then be read-free.
  ASSERT_NE(engine_->node_cache(), nullptr);
  ASSERT_TRUE(engine_->TopK(Query()).ok());

  const IoStats::Snapshot before = engine_->setr_io().TakeSnapshot();
  ASSERT_TRUE(engine_->TopK(Query()).ok());
  const IoStats::Snapshot after = engine_->setr_io().TakeSnapshot();

  EXPECT_EQ(after.logical_reads, before.logical_reads);
  EXPECT_EQ(after.physical_reads, before.physical_reads);
  EXPECT_GT(after.node_cache_hits, before.node_cache_hits);
  EXPECT_EQ(after.node_cache_misses, before.node_cache_misses);
}

TEST_F(EngineTest, CacheOffEngineRereadsEveryNode) {
  // The cache-off control for the audit above: with node_cache_bytes == 0
  // there is no cache, every traversal re-reads its nodes through the
  // buffer pool, and the cache counters never move.
  WhyNotEngine::Config config;
  config.node_capacity = 8;
  config.node_cache_bytes = 0;
  auto engine = WhyNotEngine::Build(&dataset_, config).value();
  EXPECT_EQ(engine->node_cache(), nullptr);
  ASSERT_TRUE(engine->TopK(Query()).ok());

  const IoStats::Snapshot before = engine->setr_io().TakeSnapshot();
  ASSERT_TRUE(engine->TopK(Query()).ok());
  const IoStats::Snapshot after = engine->setr_io().TakeSnapshot();

  EXPECT_GT(after.logical_reads, before.logical_reads);
  EXPECT_EQ(after.node_cache_hits, 0u);
  EXPECT_EQ(after.node_cache_misses, 0u);
}

TEST_F(EngineTest, CachedTopKMatchesUncached) {
  WhyNotEngine::Config config;
  config.node_capacity = 8;
  config.node_cache_bytes = 0;
  auto uncached = WhyNotEngine::Build(&dataset_, config).value();
  const auto expected = uncached->TopK(Query()).value();
  const auto actual = engine_->TopK(Query()).value();  // cache on (default)
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id);
    EXPECT_EQ(actual[i].score, expected[i].score);  // bit-identical
  }
}

TEST_F(EngineTest, DropCachesClearsNodeCache) {
  ASSERT_NE(engine_->node_cache(), nullptr);
  ASSERT_TRUE(engine_->TopK(Query()).ok());
  EXPECT_GT(engine_->node_cache()->GetStats().entries, 0u);
  ASSERT_TRUE(engine_->DropCaches().ok());
  EXPECT_EQ(engine_->node_cache()->GetStats().entries, 0u);
  EXPECT_EQ(engine_->node_cache()->GetStats().bytes_in_use, 0u);
  // Cold again: the next traversal re-reads physically.
  const uint64_t physical_before = engine_->setr_io().physical_reads();
  ASSERT_TRUE(engine_->TopK(Query()).ok());
  EXPECT_GT(engine_->setr_io().physical_reads(), physical_before);
}

TEST_F(EngineTest, IndexFilesRemovedOnDestruction) {
  std::string setr_path, kcr_path;
  {
    GeneratorConfig config;
    config.num_objects = 50;
    config.vocab_size = 20;
    const Dataset tiny = GenerateDataset(config);
    WhyNotEngine::Config engine_config;
    engine_config.node_capacity = 8;
    auto engine = WhyNotEngine::Build(&tiny, engine_config).value();
    // Index files exist while the engine is alive; capture their paths via
    // a crude scan is unnecessary — just ensure Answer works, then drop.
    EXPECT_TRUE(engine->TopK(SpatialKeywordQuery{
                                 Point{0.5, 0.5}, tiny.object(0).doc, 5, 0.5,
                                 SimilarityModel::kJaccard})
                    .ok());
  }
  SUCCEED();
}

TEST_F(EngineTest, BuildRejectsNullDataset) {
  WhyNotEngine::Config config;
  EXPECT_FALSE(WhyNotEngine::Build(nullptr, config).ok());
}

TEST_F(EngineTest, NonDefaultPageSizeAndCapacity) {
  // The full stack must behave identically under a different disk layout.
  WhyNotEngine::Config config;
  config.page_size = 1024;
  config.buffer_bytes = 256 * 1024;
  config.node_capacity = 25;
  auto engine = WhyNotEngine::Build(&dataset_, config).value();
  const auto expected = BruteForceTopK(dataset_, Query());
  const auto actual = engine->TopK(Query()).value();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].id, expected[i].id);
  }
  const ObjectId missing = engine->ObjectAtPosition(Query(), 31).value();
  WhyNotOptions options;
  const double advanced =
      engine->Answer(WhyNotAlgorithm::kAdvanced, Query(), {missing}, options)
          .value()
          .refined.penalty;
  const double kcr =
      engine->Answer(WhyNotAlgorithm::kKcrBased, Query(), {missing}, options)
          .value()
          .refined.penalty;
  EXPECT_NEAR(advanced, kcr, 1e-12);
}

}  // namespace
}  // namespace wsk
