#include "data/dataset_io.h"

#include <gtest/gtest.h>

#include <fstream>

#include "test_util.h"

namespace wsk {
namespace {

using testing::TempFile;

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(DatasetIoTest, LoadBasicCsv) {
  TempFile file("csv_basic");
  WriteFile(file.path(),
            "# comment line\n"
            "0.5,0.25,hotel clean\n"
            "\n"
            "1.0,2.0,cafe\n");
  auto loaded = LoadDatasetCsv(file.path());
  ASSERT_TRUE(loaded.ok());
  const Dataset& d = loaded.value();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.object(0).loc.x, 0.5);
  EXPECT_DOUBLE_EQ(d.object(0).loc.y, 0.25);
  EXPECT_EQ(d.object(0).doc.size(), 2u);
  EXPECT_EQ(d.object(1).doc.size(), 1u);
  EXPECT_NE(d.vocabulary().Find("hotel"), Vocabulary::kInvalidTermId);
}

TEST(DatasetIoTest, RoundTrip) {
  Dataset d;
  d.Add(Point{0.1, 0.9}, {"alpha", "beta"});
  d.Add(Point{0.5, 0.5}, {"beta", "gamma", "delta"});
  TempFile file("csv_roundtrip");
  ASSERT_TRUE(SaveDatasetCsv(d, file.path()).ok());
  auto loaded = LoadDatasetCsv(file.path());
  ASSERT_TRUE(loaded.ok());
  const Dataset& back = loaded.value();
  ASSERT_EQ(back.size(), d.size());
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back.object(i).loc, d.object(i).loc);
    EXPECT_EQ(back.object(i).doc.size(), d.object(i).doc.size());
  }
  // Vocabulary strings survive (ids may be permuted).
  EXPECT_NE(back.vocabulary().Find("gamma"), Vocabulary::kInvalidTermId);
}

TEST(DatasetIoTest, MissingFileFails) {
  auto loaded = LoadDatasetCsv("/tmp/wsk_no_such_dataset.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(DatasetIoTest, MalformedRowReportsRowNumber) {
  TempFile file("csv_bad");
  WriteFile(file.path(), "0.5,0.25,ok keywords\nnot-a-row\n");
  auto loaded = LoadDatasetCsv(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("row 2"), std::string::npos);
}

TEST(DatasetIoTest, BadCoordinateFails) {
  TempFile file("csv_badnum");
  WriteFile(file.path(), "zero,0.25,word\n");
  auto loaded = LoadDatasetCsv(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("bad x"), std::string::npos);
}

TEST(DatasetIoTest, EmptyKeywordsFails) {
  TempFile file("csv_nokw");
  WriteFile(file.path(), "0.1,0.2,   \n");
  auto loaded = LoadDatasetCsv(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("no keywords"), std::string::npos);
}

}  // namespace
}  // namespace wsk
