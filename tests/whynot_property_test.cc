// Deep randomized differential testing of the why-not stack: many random
// instances, every algorithm against the brute-force reference, across the
// full parameter grid of Table III. Complements whynot_algorithms_test
// with breadth; instances are kept small so the whole file stays fast.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/engine.h"
#include "data/generator.h"
#include "segment/segmented_engine.h"
#include "test_util.h"
#include "testing/metamorphic.h"

namespace wsk {
namespace {

using testing::SolveWhyNotBruteForce;

struct Instance {
  Dataset dataset;
  std::unique_ptr<WhyNotEngine> engine;
};

// A fresh random instance per seed: clustered or uniform layout, varying
// vocabulary skew and document lengths.
Instance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  GeneratorConfig config;
  config.num_objects = 120 + static_cast<uint32_t>(rng.NextUint64(120));
  config.vocab_size = 20 + static_cast<uint32_t>(rng.NextUint64(30));
  config.zipf_skew = rng.NextDouble(0.0, 1.4);
  config.doc_size_mean = rng.NextDouble(2.5, 6.0);
  config.num_clusters = 1 + static_cast<uint32_t>(rng.NextUint64(16));
  config.uniform_fraction = rng.NextDouble(0.0, 1.0);
  config.seed = seed * 977 + 13;
  Instance instance;
  instance.dataset = GenerateDataset(config);
  WhyNotEngine::Config engine_config;
  engine_config.node_capacity = 4 + static_cast<uint32_t>(rng.NextUint64(8));
  instance.engine =
      WhyNotEngine::Build(&instance.dataset, engine_config).value();
  return instance;
}

class WhyNotRandomInstances : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WhyNotRandomInstances, AllAlgorithmsFindTheOptimum) {
  const uint64_t seed = GetParam();
  Instance instance = MakeInstance(seed);
  const Dataset& dataset = instance.dataset;
  Rng rng(seed * 31 + 1);

  int tested = 0;
  for (int attempt = 0; attempt < 10 && tested < 3; ++attempt) {
    SpatialKeywordQuery query;
    query.loc = Point{rng.NextDouble(), rng.NextDouble()};
    query.doc =
        dataset.object(static_cast<ObjectId>(rng.NextUint64(dataset.size())))
            .doc;
    query.k = 2 + static_cast<uint32_t>(rng.NextUint64(8));
    query.alpha = rng.NextDouble(0.15, 0.85);
    const double lambda = rng.NextDouble(0.05, 0.95);

    const uint32_t position =
        query.k + 2 + static_cast<uint32_t>(rng.NextUint64(2 * query.k));
    auto missing_or = instance.engine->ObjectAtPosition(query, position);
    if (!missing_or.ok()) continue;
    const ObjectId missing = missing_or.value();

    const auto reference =
        SolveWhyNotBruteForce(dataset, query, {missing}, lambda);
    if (reference.already_in_result) continue;
    ++tested;

    WhyNotOptions options;
    options.lambda = lambda;
    for (WhyNotAlgorithm algorithm :
         {WhyNotAlgorithm::kBasic, WhyNotAlgorithm::kAdvanced,
          WhyNotAlgorithm::kKcrBased}) {
      const WhyNotResult result =
          instance.engine->Answer(algorithm, query, {missing}, options)
              .value();
      ASSERT_NEAR(result.refined.penalty, reference.refined.penalty, 1e-9)
          << WhyNotAlgorithmName(algorithm) << " seed=" << seed
          << " lambda=" << lambda << " alpha=" << query.alpha
          << " k=" << query.k;
      // The refined query is a genuine fix.
      SpatialKeywordQuery refined = query;
      refined.doc = result.refined.doc;
      ASSERT_LE(BruteForceRank(dataset, refined, missing),
                std::max(result.refined.k, query.k));
    }
  }
  EXPECT_GT(tested, 0) << "seed " << seed
                       << " produced no testable scenario";
}

INSTANTIATE_TEST_SUITE_P(Seeds, WhyNotRandomInstances,
                         ::testing::Range<uint64_t>(1, 13));

class WhyNotRandomMultiMissing : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WhyNotRandomMultiMissing, AllAlgorithmsFindTheOptimum) {
  const uint64_t seed = GetParam();
  Instance instance = MakeInstance(seed + 1000);
  const Dataset& dataset = instance.dataset;
  Rng rng(seed * 53 + 7);

  SpatialKeywordQuery query;
  query.loc = Point{rng.NextDouble(), rng.NextDouble()};
  // Keep doc0 small so |doc0 ∪ M.doc| stays tractable for brute force.
  const KeywordSet pivot_doc =
      dataset.object(static_cast<ObjectId>(rng.NextUint64(dataset.size())))
          .doc;
  std::vector<TermId> terms(pivot_doc.begin(), pivot_doc.end());
  if (terms.size() > 3) terms.resize(3);
  query.doc = KeywordSet(std::move(terms));
  query.k = 4;
  query.alpha = 0.5;

  std::vector<ObjectId> missing;
  for (uint32_t position : {7u, 11u}) {
    auto id = instance.engine->ObjectAtPosition(query, position);
    if (!id.ok()) GTEST_SKIP();
    if (std::find(missing.begin(), missing.end(), id.value()) !=
        missing.end()) {
      GTEST_SKIP();
    }
    missing.push_back(id.value());
  }
  KeywordSet universe = query.doc;
  for (ObjectId m : missing) universe = universe.Union(dataset.object(m).doc);
  if (universe.size() > 14) GTEST_SKIP();  // keep 2^n enumerable

  const auto reference = SolveWhyNotBruteForce(dataset, query, missing, 0.5);
  if (reference.already_in_result) GTEST_SKIP();
  WhyNotOptions options;
  for (WhyNotAlgorithm algorithm :
       {WhyNotAlgorithm::kBasic, WhyNotAlgorithm::kAdvanced,
        WhyNotAlgorithm::kKcrBased}) {
    const WhyNotResult result =
        instance.engine->Answer(algorithm, query, missing, options).value();
    ASSERT_NEAR(result.refined.penalty, reference.refined.penalty, 1e-9)
        << WhyNotAlgorithmName(algorithm) << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WhyNotRandomMultiMissing,
                         ::testing::Range<uint64_t>(1, 9));

// Mutation metamorphic invariants (testing/metamorphic.h) over the live
// SegmentedEngine: insert-then-delete is a logical no-op, a provably
// dominated insert never enters the top-k, and a forced merge changes no
// answer. Random instances; the harness callbacks keep the checks
// backend-agnostic.
class LiveMutationInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LiveMutationInvariants, HoldOnRandomInstances) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 613 + 11);
  GeneratorConfig config;
  config.num_objects = 150 + static_cast<uint32_t>(rng.NextUint64(150));
  config.vocab_size = 25 + static_cast<uint32_t>(rng.NextUint64(25));
  config.zipf_skew = rng.NextDouble(0.0, 1.2);
  config.seed = seed * 881 + 3;
  const Dataset dataset = GenerateDataset(config);

  SegmentedEngine::Config engine_config;
  engine_config.node_capacity = 16;
  engine_config.delta_capacity = 16 + static_cast<uint32_t>(seed % 32);
  engine_config.auto_merge = false;  // merges only where the checks force one
  const auto built = SegmentedEngine::Build(dataset, engine_config);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SegmentedEngine* engine = built.value().get();

  SpatialKeywordQuery query;
  query.loc = Point{rng.NextDouble(), rng.NextDouble()};
  query.doc =
      dataset.object(static_cast<ObjectId>(rng.NextUint64(dataset.size())))
          .doc;
  query.k = 3 + static_cast<uint32_t>(rng.NextUint64(7));
  query.alpha = rng.NextDouble(0.2, 0.8);

  testing::MutationHarness harness;
  harness.topk = [engine](const SpatialKeywordQuery& q) {
    return engine->TopK(q);
  };
  harness.insert = [engine](Point loc,
                            const std::vector<std::string>& keywords) {
    return engine->Insert(loc, keywords);
  };
  harness.remove = [engine](ObjectId id) { return engine->Delete(id); };
  harness.merge = [engine] { return engine->ForceMerge(); };
  // Bind one why-not instance when the query admits one: a missing object
  // a few positions past k.
  const auto missing = engine->Rank(query, 0).ok()
                           ? StatusOr<ObjectId>(0u)
                           : StatusOr<ObjectId>(Status::Internal("none"));
  WhyNotOptions options;
  options.lambda = rng.NextDouble(0.1, 0.9);
  if (missing.ok()) {
    const ObjectId m = missing.value();
    harness.whynot = [engine, query, m, options] {
      return engine->Answer(WhyNotAlgorithm::kAdvanced, query, {m}, options);
    };
  }

  // Scatter some mutations first so the engine has delta + frozen state —
  // the invariants must hold on a genuinely mixed snapshot, not just a
  // freshly-seeded one.
  for (int i = 0; i < 20; ++i) {
    const uint64_t r = rng.Next();
    const auto id = engine->Insert(
        Point{rng.NextDouble(), rng.NextDouble()},
        {"m" + std::to_string(r % 7), "m" + std::to_string(r % 11)});
    ASSERT_TRUE(id.ok());
    if (r % 3 == 0) {
      ASSERT_TRUE(engine->Delete(id.value()).ok());
    }
  }

  const auto identity = testing::CheckInsertThenDeleteIdentity(
      harness, query, Point{rng.NextDouble(), rng.NextDouble()},
      {"m1", "m3"});
  EXPECT_TRUE(identity.passed) << identity.message;

  const auto dominated = testing::CheckDominatedInsertUnchangedTopK(
      harness, query, dataset.bounding_rect(), engine->diagonal());
  EXPECT_TRUE(dominated.passed) << dominated.message;

  const auto merge = testing::CheckMergeInvariance(harness, query);
  EXPECT_TRUE(merge.passed) << merge.message;
  ASSERT_TRUE(merge.applicable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiveMutationInvariants,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace wsk
